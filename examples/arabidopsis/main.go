// Arabidopsis: the complete demonstration scenario of Section 2 of the
// paper. A scientist investigates the effect of a gene and of light on
// Arabidopsis thaliana: samples and extracts are registered (with a
// misspelled annotation that the expert later merges), instrument data is
// imported and assigned, the "two group analysis" application is
// registered and run, and the results arrive as a ready workunit with a
// downloadable zip.
//
//	go run ./examples/arabidopsis
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/importer"
	"repro/internal/model"
	"repro/internal/provider"
	"repro/internal/store"
)

func main() {
	sys := core.MustNew(core.Options{})
	arrays := []string{"AT-1-control", "AT-2-control", "AT-3-control",
		"AT-1-treated", "AT-2-treated", "AT-3-treated"}
	gp, gpStore := provider.NewAffymetrixGeneChip("genechip", arrays)
	sys.Storage.Mount(gpStore)
	must(sys.Providers.Register(gp))

	// --- people and project -------------------------------------------------
	var project, alice int64
	must(sys.Update(func(tx *store.Tx) error {
		var err error
		alice, err = sys.DB.CreateUser(tx, "setup", model.User{
			Login: "alice", Role: model.RoleScientist, Active: true,
		})
		if err != nil {
			return err
		}
		if _, err := sys.DB.CreateUser(tx, "setup", model.User{
			Login: "eva", Role: model.RoleExpert, Active: true,
		}); err != nil {
			return err
		}
		project, err = sys.DB.CreateProject(tx, "setup", model.Project{
			Name: "p1000", Description: "Effect of gene X and light on Arabidopsis thaliana",
			Members: []int64{alice}, Area: "genomics",
		})
		return err
	}))

	// --- register samples/extracts with annotations (Figures 2-3) ------------
	fmt.Println("== registering samples and extracts ==")
	must(sys.Update(func(tx *store.Tx) error {
		// Alice adds a new annotation; it enters review (Figure 2).
		if _, err := sys.Vocab.AddTerm(tx, "alice", model.VocabSpecies, "Arabidopsis thaliana", false); err != nil {
			return err
		}
		sample, err := sys.DB.CreateSample(tx, "alice", model.Sample{
			Name: "AT-pool", Project: project, Owner: alice,
			Species: "Arabidopsis thaliana",
		})
		if err != nil {
			return err
		}
		for _, name := range arrays {
			if _, err := sys.DB.CreateExtract(tx, "alice", model.Extract{
				Name: name, Sample: sample,
			}); err != nil {
				return err
			}
		}
		fmt.Printf("sample AT-pool with %d extracts registered\n", len(arrays))
		return nil
	}))

	// Bob misspells the species; the detector flags it; Eva merges (Figs 4-7).
	fmt.Println("\n== annotation review and merge ==")
	must(sys.Update(func(tx *store.Tx) error {
		// Eva reviews and releases Alice's correctly spelled term (Figure 4).
		term, err := sys.Vocab.Lookup(tx, model.VocabSpecies, "Arabidopsis thaliana")
		if err != nil {
			return err
		}
		if err := sys.Vocab.Release(tx, "eva", term.ID); err != nil {
			return err
		}
		// Bob recreates it with a typo; it enters review as pending.
		_, err = sys.Vocab.AddTerm(tx, "bob", model.VocabSpecies, "Arabidopsis thalian", false)
		return err
	}))
	must(sys.Update(func(tx *store.Tx) error {
		recs, err := sys.Vocab.Recommendations(tx)
		if err != nil {
			return err
		}
		for pendingID, cands := range recs {
			pending, _ := sys.Vocab.Get(tx, pendingID)
			for _, c := range cands {
				fmt.Printf("detector: %q looks like %q (score %.3f)\n",
					pending.Value, c.Term.Value, c.Score)
				res, err := sys.Vocab.Merge(tx, "eva", c.Term.ID, pendingID, "")
				if err != nil {
					return err
				}
				fmt.Printf("eva merged; surviving term: %q\n", res.Winner.Value)
				break
			}
			break
		}
		return nil
	}))

	// --- import and assign (Figures 9-11) -------------------------------------
	fmt.Println("\n== instrument import ==")
	var imp importer.Result
	must(sys.Update(func(tx *store.Tx) error {
		var err error
		imp, err = sys.Importer.Import(tx, importer.Request{
			Provider: "genechip", Mode: importer.Copy,
			WorkunitName: "GeneChip arrays", Project: project,
			Owner: alice, Actor: "alice",
		})
		if err != nil {
			return err
		}
		matches, err := sys.Importer.BestMatches(tx, imp.Workunit)
		if err != nil {
			return err
		}
		fmt.Printf("imported %d arrays; %d best matches suggested\n", len(imp.Resources), len(matches))
		if err := sys.Importer.ApplyMatches(tx, "alice", matches); err != nil {
			return err
		}
		return sys.Importer.CompleteImport(tx, "alice", imp.WorkflowInstance)
	}))

	// --- register app, define and run experiment (Figures 12-16) ----------------
	fmt.Println("\n== two group analysis ==")
	var run apps.RunResult
	must(sys.Update(func(tx *store.Tx) error {
		appID, err := sys.DB.CreateApplication(tx, "eva", model.Application{
			Name: "two group analysis", Connector: "rserve", Program: "twogroup.R",
			InputSpec: []string{"resources"}, ParamSpec: []string{"reference_group"},
			Active: true,
		})
		if err != nil {
			return err
		}
		expID, err := sys.DB.CreateExperiment(tx, "alice", model.Experiment{
			Name: "AT light effect", Project: project, Owner: alice,
			Resources:  imp.Resources,
			Attributes: map[string]string{"species": "Arabidopsis thaliana", "treatment": "light"},
		})
		if err != nil {
			return err
		}
		run, err = sys.Executor.RunExperiment(tx, apps.RunRequest{
			Experiment: expID, Application: appID,
			WorkunitName: "AT light results",
			Params:       map[string]string{"reference_group": "control"},
			Actor:        "alice", Owner: alice,
		})
		return err
	}))
	if run.Failed {
		log.Fatalf("experiment failed: %s", run.Error)
	}

	must(sys.View(func(tx *store.Tx) error {
		wu, err := sys.DB.GetWorkunit(tx, run.Workunit)
		if err != nil {
			return err
		}
		fmt.Printf("result workunit %d: %s\n", run.Workunit, wu.State)
		rs, _ := sys.DB.ResourcesOfWorkunit(tx, run.Workunit)
		for _, r := range rs {
			if r.Name != "report.txt" {
				continue
			}
			data, err := sys.Storage.Open(r.URI)
			if err != nil {
				return err
			}
			fmt.Println("\n--- report.txt (first lines) ---")
			lines := strings.SplitN(string(data), "\n", 14)
			fmt.Println(strings.Join(lines[:len(lines)-1], "\n"))
		}
		return nil
	}))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
