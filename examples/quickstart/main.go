// Quickstart: the minimal end-to-end B-Fabric walk-through.
//
// It wires a system, registers a project, a sample and an extract, imports
// one instrument file, assigns the extract, and searches for the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/importer"
	"repro/internal/model"
	"repro/internal/provider"
	"repro/internal/store"
)

func main() {
	sys := core.MustNew(core.Options{})

	// Attach a simulated instrument as a data provider.
	gp, gpStore := provider.NewAffymetrixGeneChip("genechip", []string{"demo-sample"})
	sys.Storage.Mount(gpStore)
	if err := sys.Providers.Register(gp); err != nil {
		log.Fatal(err)
	}

	var project int64
	var imp importer.Result
	err := sys.Update(func(tx *store.Tx) error {
		var err error
		project, err = sys.DB.CreateProject(tx, "quickstart", model.Project{
			Name: "p1000", Description: "Quickstart project",
		})
		if err != nil {
			return err
		}
		sample, err := sys.DB.CreateSample(tx, "quickstart", model.Sample{
			Name: "demo-sample", Project: project,
		})
		if err != nil {
			return err
		}
		extract, err := sys.DB.CreateExtract(tx, "quickstart", model.Extract{
			Name: "demo-sample", Sample: sample,
		})
		if err != nil {
			return err
		}
		fmt.Printf("registered sample %d and extract %d\n", sample, extract)

		// Import the instrument file (copying it into internal storage).
		imp, err = sys.Importer.Import(tx, importer.Request{
			Provider: "genechip", Mode: importer.Copy,
			WorkunitName: "first import", Project: project, Actor: "quickstart",
		})
		if err != nil {
			return err
		}
		fmt.Printf("imported %d file(s) into workunit %d\n", len(imp.Resources), imp.Workunit)

		// The system suggests which extract belongs to which file.
		matches, err := sys.Importer.BestMatches(tx, imp.Workunit)
		if err != nil {
			return err
		}
		if err := sys.Importer.ApplyMatches(tx, "quickstart", matches); err != nil {
			return err
		}
		return sys.Importer.CompleteImport(tx, "quickstart", imp.WorkflowInstance)
	})
	if err != nil {
		log.Fatal(err)
	}

	// The workunit is ready; everything is searchable.
	_ = sys.View(func(tx *store.Tx) error {
		wu, _ := sys.DB.GetWorkunit(tx, imp.Workunit)
		fmt.Printf("workunit state: %s\n", wu.State)
		return nil
	})
	hits, err := sys.Search.Search("quickstart", "demo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full-text search for %q found %d object(s):\n", "demo", len(hits))
	for _, h := range hits {
		fmt.Printf("  %s/%d (score %.1f)\n", h.Kind, h.ID, h.Score)
	}
}
