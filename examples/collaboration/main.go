// Collaboration: moves a project between two B-Fabric instances, the
// enabling primitive for the "Infrastructure for Collaborative Research"
// generalization named in the paper's acknowledgements. Instance A runs
// the Arabidopsis workflow; the project — entity graph, annotations and
// file payloads — is exported as a self-contained archive and imported
// into instance B, where the analysis report is immediately readable and
// searchable.
//
//	go run ./examples/collaboration
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/importer"
	"repro/internal/model"
	"repro/internal/provider"
	"repro/internal/store"
)

func main() {
	// --- instance A: produce a project worth sharing -----------------------
	a := core.MustNew(core.Options{})
	arrays := []string{"AT-1-control", "AT-2-control", "AT-1-treated", "AT-2-treated"}
	gp, gpStore := provider.NewAffymetrixGeneChip("genechip", arrays)
	a.Storage.Mount(gpStore)
	must(a.Providers.Register(gp))

	var project int64
	must(a.Update(func(tx *store.Tx) error {
		var err error
		project, err = a.DB.CreateProject(tx, "zurich", model.Project{
			Name: "AT light response", Description: "shared with the Basel group",
		})
		if err != nil {
			return err
		}
		if _, err := a.Vocab.AddTerm(tx, "zurich", model.VocabSpecies, "Arabidopsis thaliana", true); err != nil {
			return err
		}
		sid, err := a.DB.CreateSample(tx, "zurich", model.Sample{
			Name: "AT-pool", Project: project, Species: "Arabidopsis thaliana",
		})
		if err != nil {
			return err
		}
		for _, name := range arrays {
			if _, err := a.DB.CreateExtract(tx, "zurich", model.Extract{Name: name, Sample: sid}); err != nil {
				return err
			}
		}
		imp, err := a.Importer.Import(tx, importer.Request{
			Provider: "genechip", Mode: importer.Copy,
			WorkunitName: "arrays", Project: project, Actor: "zurich",
		})
		if err != nil {
			return err
		}
		matches, err := a.Importer.BestMatches(tx, imp.Workunit)
		if err != nil {
			return err
		}
		if err := a.Importer.ApplyMatches(tx, "zurich", matches); err != nil {
			return err
		}
		if err := a.Importer.CompleteImport(tx, "zurich", imp.WorkflowInstance); err != nil {
			return err
		}
		appID, err := a.DB.CreateApplication(tx, "zurich", model.Application{
			Name: "two group analysis", Connector: "rserve", Program: "twogroup.R", Active: true,
		})
		if err != nil {
			return err
		}
		expID, err := a.DB.CreateExperiment(tx, "zurich", model.Experiment{
			Name: "light effect", Project: project, Resources: imp.Resources,
		})
		if err != nil {
			return err
		}
		run, err := a.Executor.RunExperiment(tx, apps.RunRequest{
			Experiment: expID, Application: appID, WorkunitName: "results",
			Params: map[string]string{"reference_group": "control"}, Actor: "zurich",
		})
		if err != nil {
			return err
		}
		if run.Failed {
			return fmt.Errorf("experiment failed: %s", run.Error)
		}
		return nil
	}))
	fmt.Println("instance A: project produced")
	fmt.Printf("instance A stats: %+v\n", a.DB.CollectStats())

	// --- export → archive → import into instance B ---------------------------
	var archive bytes.Buffer
	must(exchange.Export(a, project, &archive))
	fmt.Printf("\narchive size: %d bytes\n", archive.Len())

	b := core.MustNew(core.Options{})
	res, err := exchange.Import(b, archive.Bytes(), "basel")
	must(err)
	fmt.Printf("instance B imported project %d: %d samples, %d extracts, %d workunits, %d resources, %d terms added, %d payloads stored\n",
		res.Project, res.Samples, res.Extracts, res.Workunits, res.Resources,
		res.TermsAdded, res.PayloadsStored)

	// The report is readable and searchable on instance B.
	must(b.View(func(tx *store.Tx) error {
		wus, err := tx.Find(model.KindWorkunit, "project", res.Project)
		if err != nil {
			return err
		}
		for _, w := range wus {
			rs, err := b.DB.ResourcesOfWorkunit(tx, w.ID())
			if err != nil {
				return err
			}
			for _, r := range rs {
				if r.Name == "report.txt" && r.URI != "" {
					data, err := b.Storage.Open(r.URI)
					if err != nil {
						return err
					}
					fmt.Printf("\ninstance B reads the travelled report (%d bytes): %.60s...\n",
						len(data), data)
				}
			}
		}
		return nil
	}))
	hits, err := b.Search.Search("basel", "arabidopsis")
	must(err)
	fmt.Printf("instance B full-text search for \"arabidopsis\": %d hit(s)\n", len(hits))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
