// Deployment: reproduces the paper's final table — the FGCZ production
// figures as of January 2010 — by generating a deterministic synthetic
// population with the same counts and referential shape, then printing the
// paper's table next to the measured one.
//
//	go run ./examples/deployment            # full scale (~73k entities)
//	go run ./examples/deployment -scale 0.1 # faster
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/genload"
	"repro/internal/model"
)

func main() {
	scale := flag.Float64("scale", 1.0, "population scale (1.0 = full FGCZ deployment)")
	flag.Parse()

	sys := core.MustNew(core.Options{DisableSearch: true, DisableAudit: true})
	p := genload.FGCZJan2010.Scaled(*scale)

	start := time.Now()
	if err := genload.Generate(sys, p); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Println("B-Fabric deployment statistics")
	fmt.Println()
	fmt.Println("paper (FGCZ, January 2010):")
	fmt.Print(genload.StatsTable(model.Stats{
		Users: 1555, Projects: 750, Institutes: 224, Organizations: 59,
		Samples: 3151, Extracts: 3642, DataResources: 40005, Workunits: 23979,
	}))
	fmt.Printf("\nthis run (scale %.3f, generated in %v):\n", *scale, elapsed.Round(time.Millisecond))
	fmt.Print(genload.StatsTable(sys.DB.CollectStats()))
}
