// Proteomics: a mass-spectrometry workflow through B-Fabric. RAW
// acquisitions from a simulated LTQ-FT instrument are linked (not copied)
// into the repository, the MS QC application summarises them, and the
// results are inspected — demonstrating link-mode import, a second
// instrument class, and a second registered application.
//
//	go run ./examples/proteomics
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/importer"
	"repro/internal/model"
	"repro/internal/provider"
	"repro/internal/store"
)

func main() {
	sys := core.MustNew(core.Options{})
	runs := []string{"plasma-01", "plasma-02", "plasma-03"}
	ms, msStore := provider.NewMassSpec("ltqft", runs, 500)
	sys.Storage.Mount(msStore)
	must(sys.Providers.Register(ms))

	var project int64
	var imp importer.Result
	must(sys.Update(func(tx *store.Tx) error {
		var err error
		project, err = sys.DB.CreateProject(tx, "setup", model.Project{
			Name: "p2000", Description: "Plasma proteome profiling", Area: "proteomics",
		})
		if err != nil {
			return err
		}
		sample, err := sys.DB.CreateSample(tx, "carol", model.Sample{
			Name: "plasma-pool", Project: project,
		})
		if err != nil {
			return err
		}
		for _, r := range runs {
			if _, err := sys.DB.CreateExtract(tx, "carol", model.Extract{
				Name: r, Sample: sample,
			}); err != nil {
				return err
			}
		}
		// Link mode: the RAW files stay on the instrument store; B-Fabric
		// records references and serves the bytes transparently.
		imp, err = sys.Importer.Import(tx, importer.Request{
			Provider: "ltqft", Mode: importer.Link,
			WorkunitName: "LTQ-FT acquisitions", Project: project, Actor: "carol",
		})
		if err != nil {
			return err
		}
		matches, err := sys.Importer.BestMatches(tx, imp.Workunit)
		if err != nil {
			return err
		}
		if err := sys.Importer.ApplyMatches(tx, "carol", matches); err != nil {
			return err
		}
		return sys.Importer.CompleteImport(tx, "carol", imp.WorkflowInstance)
	}))

	must(sys.View(func(tx *store.Tx) error {
		rs, err := sys.DB.ResourcesOfWorkunit(tx, imp.Workunit)
		if err != nil {
			return err
		}
		fmt.Println("linked data resources:")
		for _, r := range rs {
			fmt.Printf("  %-16s linked=%v %s\n", r.Name, r.Linked, r.URI)
		}
		return nil
	}))

	// Run the MS QC application over the linked acquisitions.
	var run apps.RunResult
	must(sys.Update(func(tx *store.Tx) error {
		appID, err := sys.DB.CreateApplication(tx, "admin", model.Application{
			Name: "MS QC", Connector: "rserve", Program: "msqc.R",
			InputSpec: []string{"resources"}, Active: true,
		})
		if err != nil {
			return err
		}
		expID, err := sys.DB.CreateExperiment(tx, "carol", model.Experiment{
			Name: "plasma QC", Project: project, Resources: imp.Resources,
		})
		if err != nil {
			return err
		}
		run, err = sys.Executor.RunExperiment(tx, apps.RunRequest{
			Experiment: expID, Application: appID,
			WorkunitName: "plasma QC results", Actor: "carol",
		})
		return err
	}))
	if run.Failed {
		log.Fatalf("QC failed: %s", run.Error)
	}
	must(sys.View(func(tx *store.Tx) error {
		rs, _ := sys.DB.ResourcesOfWorkunit(tx, run.Workunit)
		for _, r := range rs {
			if r.Name != "msqc.csv" {
				continue
			}
			data, err := sys.Storage.Open(r.URI)
			if err != nil {
				return err
			}
			fmt.Printf("\nQC report:\n%s", data)
		}
		return nil
	}))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
