// Golden equivalence tests for aggregation pushdown: every aggregate the
// engine computes — whatever strategy the planner picks — must agree
// exactly with a hand-rolled scan-and-fold over the same snapshot, on the
// genload-populated store (the FGCZ deployment shape at reduced scale).
// Randomized predicate/group/aggregate combinations sweep the strategy
// space; the reporting consumers (model stats, tasks/audit summaries) are
// checked against the same baseline.
package repro_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/entity"
	"repro/internal/model"
	"repro/internal/store"
	"repro/internal/tasks"
)

// aggMatchEq is the type-strict Go-side equality the reference fold uses:
// exactly the comparisons the engine's index keys encode.
func aggMatchEq(v, want any) bool {
	switch w := want.(type) {
	case string:
		x, ok := v.(string)
		return ok && x == w
	case int64:
		x, ok := v.(int64)
		return ok && x == w
	case float64:
		x, ok := v.(float64)
		return ok && x == w
	case bool:
		x, ok := v.(bool)
		return ok && x == w
	case time.Time:
		x, ok := v.(time.Time)
		return ok && x.Equal(w)
	default:
		return false
	}
}

// refGroup is one group of the reference fold.
type refGroup struct {
	n    int
	sumI int64
	sumF float64
	isF  bool
}

// aggKeyString renders a group key the same way for engine and reference
// results, so maps compare.
func aggKeyString(v any) string {
	switch x := v.(type) {
	case time.Time:
		return "t:" + x.UTC().Format(time.RFC3339Nano)
	default:
		return fmt.Sprintf("%T:%v", v, v)
	}
}

func TestAggEquivalenceRandomized(t *testing.T) {
	sys := equivSystem(t)
	rng := rand.New(rand.NewSource(20100226))
	type kindShape struct {
		table       string
		predFields  []string // Eq/In candidates, indexed and not
		groupFields []string // GroupBy candidates, indexed and not
		sumField    string   // numeric field for Sum/Min/Max, "" = use id
	}
	shapes := []kindShape{
		{model.KindSample, []string{"project", "species", "disease_state", "tissue", "name"}, []string{"species", "disease_state", "project", "tissue"}, ""},
		{model.KindWorkunit, []string{"project", "state", "name"}, []string{"state", "project"}, ""},
		{model.KindDataResource, []string{"workunit", "format", "is_input"}, []string{"format", "linked"}, "size_bytes"},
		{model.KindExtract, []string{"sample", "label"}, []string{"label"}, "concentration"},
	}
	err := sys.View(func(tx *store.Tx) error {
		for _, shape := range shapes {
			// The scan baseline reads shared record refs; they are only read.
			all := scanRecords(t, tx, shape.table, func(store.Record) bool { return true })
			if len(all) == 0 {
				t.Fatalf("%s: empty population", shape.table)
			}
			for iter := 0; iter < 40; iter++ {
				// Random predicate set: 0..2 Eq/In predicates over values
				// that actually occur.
				var preds []store.Pred
				var keeps []func(store.Record) bool
				for range rng.Intn(3) {
					field := shape.predFields[rng.Intn(len(shape.predFields))]
					var vals []any
					for len(vals) < 1+rng.Intn(3) {
						v := all[rng.Intn(len(all))][field]
						if v == nil {
							break
						}
						vals = append(vals, v)
					}
					if len(vals) == 0 {
						continue
					}
					if len(vals) == 1 {
						preds = append(preds, store.Eq(field, vals[0]))
					} else {
						preds = append(preds, store.In(field, vals...))
					}
					f, vs := field, vals
					keeps = append(keeps, func(r store.Record) bool {
						for _, want := range vs {
							if aggMatchEq(r[f], want) {
								return true
							}
						}
						return false
					})
				}
				keep := func(r store.Record) bool {
					for _, k := range keeps {
						if !k(r) {
							return false
						}
					}
					return true
				}
				q := store.Query{Table: shape.table, Where: preds}

				sumField := shape.sumField
				if sumField == "" {
					sumField = store.IDField
				}
				grouped := rng.Intn(2) == 0
				var aq store.AggQuery
				var groupField string
				if grouped {
					groupField = shape.groupFields[rng.Intn(len(shape.groupFields))]
					aq = q.GroupBy(groupField, store.Count(), store.Sum(sumField))
				} else {
					aq = q.Aggregate(store.Count(), store.Sum(sumField))
				}

				res, err := tx.Aggregate(aq)
				if err != nil {
					return fmt.Errorf("%s iter %d: %w", shape.table, iter, err)
				}
				if ep, err := tx.ExplainAgg(aq); err != nil || ep.Agg != res.Plan().Agg {
					t.Errorf("%s iter %d: explain strategy %q (err %v) != executed %q",
						shape.table, iter, ep.Agg, err, res.Plan().Agg)
				}

				// Reference: scan, filter, fold.
				ref := map[string]*refGroup{}
				refKeys := map[string]any{}
				for _, r := range all {
					if !keep(r) {
						continue
					}
					gk := ""
					if grouped {
						gv := any(r.ID())
						if groupField != store.IDField {
							gv = r[groupField]
						}
						switch gv.(type) {
						case string, int64, float64, bool, time.Time:
						default:
							continue // unindexable grouping value: no group
						}
						gk = aggKeyString(gv)
						refKeys[gk] = gv
					}
					g := ref[gk]
					if g == nil {
						g = &refGroup{}
						ref[gk] = g
					}
					g.n++
					var sv any = r.ID()
					if sumField != store.IDField {
						sv = r[sumField]
					}
					switch x := sv.(type) {
					case int64:
						g.sumI += x
					case float64:
						g.sumF += x
						g.isF = true
					}
				}
				if !grouped && len(ref) == 0 {
					ref[""] = &refGroup{}
				}

				if len(res.Groups) != len(ref) {
					t.Errorf("%s iter %d (%s): %d groups, scan-fold %d",
						shape.table, iter, res.Plan(), len(res.Groups), len(ref))
					continue
				}
				for _, g := range res.Groups {
					gk := ""
					if grouped {
						gk = aggKeyString(g.Key)
					}
					want := ref[gk]
					if want == nil {
						t.Errorf("%s iter %d (%s): unexpected group %v",
							shape.table, iter, res.Plan(), g.Key)
						continue
					}
					if g.Count() != want.n {
						t.Errorf("%s iter %d (%s): group %v count %d, scan-fold %d",
							shape.table, iter, res.Plan(), g.Key, g.Count(), want.n)
					}
					switch got := g.Aggs[1].(type) {
					case int64:
						if want.isF || got != want.sumI {
							t.Errorf("%s iter %d: group %v sum %d, scan-fold %v/%v",
								shape.table, iter, g.Key, got, want.sumI, want.sumF)
						}
					case float64:
						wantSum := want.sumF + float64(want.sumI)
						if math.Abs(got-wantSum) > 1e-6*math.Max(1, math.Abs(wantSum)) {
							t.Errorf("%s iter %d: group %v sum %v, scan-fold %v",
								shape.table, iter, g.Key, got, wantSum)
						}
					default:
						t.Errorf("%s iter %d: group %v sum has type %T", shape.table, iter, g.Key, g.Aggs[1])
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAggStatsConsumers checks the reporting surfaces rebuilt onto the
// aggregate engine against the scan baseline: the dashboard stats, the
// per-project rollup and the grouped histogram backing /api/stats/{kind}.
func TestAggStatsConsumers(t *testing.T) {
	sys := equivSystem(t)
	db := sys.DB
	err := sys.View(func(tx *store.Tx) error {
		countScan := func(table string, keep func(store.Record) bool) int {
			return len(scanRecords(t, tx, table, keep))
		}
		everything := func(store.Record) bool { return true }

		st := db.CollectStatsTx(tx)
		for _, c := range []struct {
			kind string
			got  int
		}{
			{model.KindUser, st.Users}, {model.KindProject, st.Projects},
			{model.KindSample, st.Samples}, {model.KindExtract, st.Extracts},
			{model.KindDataResource, st.DataResources}, {model.KindWorkunit, st.Workunits},
		} {
			if want := countScan(c.kind, everything); c.got != want {
				t.Errorf("CollectStatsTx %s = %d, scan %d", c.kind, c.got, want)
			}
		}

		for pid := int64(1); pid <= 5; pid++ {
			ps, err := db.ProjectStats(tx, pid)
			if err != nil {
				return err
			}
			inProject := func(r store.Record) bool { return r.Int("project") == pid }
			if want := countScan(model.KindSample, inProject); ps.Samples != want {
				t.Errorf("ProjectStats(%d).Samples = %d, scan %d", pid, ps.Samples, want)
			}
			if want := countScan(model.KindWorkunit, inProject); ps.Workunits != want {
				t.Errorf("ProjectStats(%d).Workunits = %d, scan %d", pid, ps.Workunits, want)
			}
			sampleSet := map[int64]bool{}
			for _, r := range scanRecords(t, tx, model.KindSample, inProject) {
				sampleSet[r.ID()] = true
			}
			if want := countScan(model.KindExtract, func(r store.Record) bool { return sampleSet[r.Int("sample")] }); ps.Extracts != want {
				t.Errorf("ProjectStats(%d).Extracts = %d, scan %d", pid, ps.Extracts, want)
			}
			wuSet := map[int64]bool{}
			for _, r := range scanRecords(t, tx, model.KindWorkunit, inProject) {
				wuSet[r.ID()] = true
			}
			if want := countScan(model.KindDataResource, func(r store.Record) bool { return wuSet[r.Int("workunit")] }); ps.DataResources != want {
				t.Errorf("ProjectStats(%d).DataResources = %d, scan %d", pid, ps.DataResources, want)
			}
			wantStates := map[string]int{}
			for _, r := range scanRecords(t, tx, model.KindWorkunit, inProject) {
				wantStates[r.String("state")]++
			}
			if len(ps.WorkunitsByState) != len(wantStates) {
				t.Errorf("ProjectStats(%d) states %v, scan %v", pid, ps.WorkunitsByState, wantStates)
			}
			for s, n := range wantStates {
				if ps.WorkunitsByState[s] != n {
					t.Errorf("ProjectStats(%d) state %s = %d, scan %d", pid, s, ps.WorkunitsByState[s], n)
				}
			}
		}

		for _, c := range [][2]string{
			{model.KindWorkunit, "state"},
			{model.KindSample, "species"},
			{model.KindDataResource, "format"},
			{model.KindSample, "project"}, // Ref field: indexed via registry
			{model.KindUser, "login"},     // unique index groups too
		} {
			groups, err := db.CountsBy(tx, c[0], c[1])
			if err != nil {
				return fmt.Errorf("CountsBy(%s, %s): %w", c[0], c[1], err)
			}
			want := map[string]int{}
			for _, r := range scanRecords(t, tx, c[0], everything) {
				if v := r[c[1]]; v != nil {
					want[aggKeyString(v)]++
				}
			}
			if len(groups) != len(want) {
				t.Errorf("CountsBy(%s, %s): %d groups, scan %d", c[0], c[1], len(groups), len(want))
			}
			for _, g := range groups {
				if got, w := g.Count, want[aggKeyString(g.Key)]; got != w {
					t.Errorf("CountsBy(%s, %s) group %v = %d, scan %d", c[0], c[1], g.Key, got, w)
				}
			}
		}

		// Validation: unknown kinds 404-class, unindexed fields refuse.
		if _, err := db.CountsBy(tx, "nope", "state"); !errors.Is(err, entity.ErrUnknownKind) {
			t.Errorf("CountsBy(nope): %v, want ErrUnknownKind", err)
		}
		if _, err := db.CountsBy(tx, model.KindSample, "tissue"); !errors.Is(err, store.ErrBadQuery) {
			t.Errorf("CountsBy(sample, tissue): %v, want ErrBadQuery (not indexed)", err)
		}
		if _, err := db.CountsBy(tx, model.KindSample, "bogus"); !errors.Is(err, store.ErrBadQuery) {
			t.Errorf("CountsBy(sample, bogus): %v, want ErrBadQuery", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAggTaskAuditSummaries checks the tasks and audit rollups against
// the scan baseline on a mixed task population.
func TestAggTaskAuditSummaries(t *testing.T) {
	sys := equivSystem(t)
	err := sys.Update(func(tx *store.Tx) error {
		for i := 0; i < 30; i++ {
			task := tasks.Task{
				Type:  tasks.TypeAssignExtracts,
				Title: fmt.Sprintf("task %d", i),
				Kind:  model.KindWorkunit,
				Ref:   int64(i%5 + 1),
			}
			if i%2 == 0 {
				task.AssigneeRole = "expert"
			} else {
				task.AssigneeRole = "admin"
			}
			id, err := sys.Tasks.Create(tx, task)
			if err != nil {
				return err
			}
			if i%5 == 0 {
				if err := sys.Tasks.Complete(tx, "closer", id); err != nil {
					return err
				}
			} else if i%7 == 0 {
				if err := sys.Tasks.Cancel(tx, "closer", id); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = sys.View(func(tx *store.Tx) error {
		sum, err := sys.Tasks.Summarize(tx)
		if err != nil {
			return err
		}
		all := scanRecords(t, tx, "task", func(store.Record) bool { return true })
		if sum.Total != len(all) {
			t.Errorf("tasks total %d, scan %d", sum.Total, len(all))
		}
		wantState, wantRole := map[string]int{}, map[string]int{}
		for _, r := range all {
			wantState[r.String("state")]++
			if r.String("state") == tasks.StateOpen && r.String("assignee_role") != "" {
				wantRole[r.String("assignee_role")]++
			}
		}
		for s, n := range wantState {
			if sum.ByState[s] != n {
				t.Errorf("tasks state %s = %d, scan %d", s, sum.ByState[s], n)
			}
		}
		if len(sum.ByState) != len(wantState) {
			t.Errorf("tasks states %v, scan %v", sum.ByState, wantState)
		}
		for role, n := range wantRole {
			if sum.OpenByRole[role] != n {
				t.Errorf("tasks open role %s = %d, scan %d", role, sum.OpenByRole[role], n)
			}
		}
		if len(sum.OpenByRole) != len(wantRole) {
			t.Errorf("tasks roles %v, scan %v", sum.OpenByRole, wantRole)
		}

		n, err := sys.Tasks.CountOpen(tx)
		if err != nil {
			return err
		}
		if want := wantState[tasks.StateOpen]; n != want {
			t.Errorf("CountOpen = %d, scan %d", n, want)
		}

		asum, err := sys.Audit.Summarize(tx)
		if err != nil {
			return err
		}
		entries := scanRecords(t, tx, "_audit", func(store.Record) bool { return true })
		if asum.Total != len(entries) {
			t.Errorf("audit total %d, scan %d", asum.Total, len(entries))
		}
		wantTopic, wantActor := map[string]int{}, map[string]int{}
		for _, r := range entries {
			wantTopic[r.String("topic")]++
			wantActor[r.String("actor")]++
		}
		if len(asum.ByTopic) != len(wantTopic) || len(asum.ByActor) != len(wantActor) {
			t.Errorf("audit histogram sizes: topics %d/%d actors %d/%d",
				len(asum.ByTopic), len(wantTopic), len(asum.ByActor), len(wantActor))
		}
		for k, n := range wantTopic {
			if asum.ByTopic[k] != n {
				t.Errorf("audit topic %s = %d, scan %d", k, asum.ByTopic[k], n)
			}
		}
		for k, n := range wantActor {
			if asum.ByActor[k] != n {
				t.Errorf("audit actor %s = %d, scan %d", k, asum.ByActor[k], n)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
