// Benchmarks reproducing the paper's artifacts, one per table/figure of
// the experiment index in DESIGN.md. Absolute numbers are not comparable
// to the 2010 production deployment (different substrate); the benchmarks
// pin down the cost of every demonstrated behaviour and the scaling shape
// of the annotation, import and search machinery.
package repro_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/genload"
	"repro/internal/importer"
	"repro/internal/model"
	"repro/internal/provider"
	"repro/internal/store"
	"repro/internal/vocab"
)

// benchSystem builds a lean system (no search/audit unless asked) with one
// project and one scientist.
func benchSystem(b *testing.B, opts core.Options) (*core.System, int64) {
	b.Helper()
	sys := core.MustNew(opts)
	var project int64
	err := sys.Update(func(tx *store.Tx) error {
		alice, err := sys.DB.CreateUser(tx, "bench", model.User{Login: "alice", Active: true})
		if err != nil {
			return err
		}
		project, err = sys.DB.CreateProject(tx, "bench", model.Project{
			Name: "bench", Members: []int64{alice},
		})
		return err
	})
	if err != nil {
		b.Fatal(err)
	}
	return sys, project
}

// --- T1: deployment statistics table -----------------------------------------

func BenchmarkT1_DeploymentLoad(b *testing.B) {
	for _, scale := range []float64{0.01, 0.1, 1.0} {
		p := genload.FGCZJan2010.Scaled(scale)
		entities := p.Organizations + p.Institutes + p.Users + p.Projects +
			p.Samples + p.Extracts + p.Workunits + p.DataResources
		b.Run(fmt.Sprintf("scale=%.2f", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := core.MustNew(core.Options{DisableSearch: true, DisableAudit: true})
				if err := genload.Generate(sys, p); err != nil {
					b.Fatal(err)
				}
				st := sys.DB.CollectStats()
				if st.DataResources != p.DataResources {
					b.Fatalf("stats mismatch: %+v", st)
				}
			}
			b.ReportMetric(float64(entities*b.N)/b.Elapsed().Seconds(), "entities/s")
		})
	}
}

// --- F2/F3: sample and extract registration ------------------------------------

func BenchmarkF2_RegisterSample(b *testing.B) {
	sys, project := benchSystem(b, core.Options{DisableSearch: true, DisableAudit: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := sys.Update(func(tx *store.Tx) error {
			_, err := sys.DB.CreateSample(tx, "alice", model.Sample{
				Name: fmt.Sprintf("s%d", i), Project: project,
			})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF3_RegisterExtractBatch(b *testing.B) {
	for _, batch := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			sys, project := benchSystem(b, core.Options{DisableSearch: true, DisableAudit: true})
			var sample int64
			_ = sys.Update(func(tx *store.Tx) error {
				var err error
				sample, err = sys.DB.CreateSample(tx, "alice", model.Sample{Name: "s", Project: project})
				return err
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := sys.Update(func(tx *store.Tx) error {
					_, err := sys.DB.BatchCreateExtracts(tx, "alice", model.Extract{
						Name: "tpl", Sample: sample,
					}, fmt.Sprintf("b%d", i), batch)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "extracts/s")
		})
	}
}

// --- F4: annotation release ------------------------------------------------------

func BenchmarkF4_ReleaseAnnotation(b *testing.B) {
	sys, _ := benchSystem(b, core.Options{DisableSearch: true, DisableAudit: true})
	// One setup transaction regardless of b.N: unique checks probe the
	// overlay's own index maps, so transaction cost is linear in its
	// write-set size.
	terms := make([]vocab.Term, b.N)
	err := sys.Update(func(tx *store.Tx) error {
		for i := 0; i < b.N; i++ {
			t, err := sys.Vocab.AddTerm(tx, "alice", model.VocabTissue, fmt.Sprintf("tissue-%d", i), false)
			if err != nil {
				return err
			}
			terms[i] = t
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := sys.Update(func(tx *store.Tx) error {
			return sys.Vocab.Release(tx, "eva", terms[i].ID)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- F5: similarity scan ------------------------------------------------------------

func BenchmarkF5_SimilarityScan(b *testing.B) {
	for _, size := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("terms=%d", size), func(b *testing.B) {
			sys, _ := benchSystem(b, core.Options{DisableSearch: true, DisableAudit: true})
			err := sys.Update(func(tx *store.Tx) error {
				for i := 0; i < size; i++ {
					if _, err := sys.Vocab.AddTerm(tx, "g", model.VocabDiseaseState,
						fmt.Sprintf("disease state %06d", i), true); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := sys.View(func(tx *store.Tx) error {
					_, err := sys.Vocab.Similar(tx, model.VocabDiseaseState, "disease state 00004Z")
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(size*b.N)/b.Elapsed().Seconds(), "comparisons/s")
		})
	}
}

// --- F7: merge with re-association ---------------------------------------------------

func BenchmarkF7_MergeReassociation(b *testing.B) {
	for _, refs := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("referrers=%d", refs), func(b *testing.B) {
			b.StopTimer()
			for i := 0; i < b.N; i++ {
				sys, project := benchSystem(b, core.Options{DisableSearch: true, DisableAudit: true})
				var keep, drop vocab.Term
				err := sys.Update(func(tx *store.Tx) error {
					var err error
					keep, err = sys.Vocab.AddTerm(tx, "a", model.VocabDiseaseState, "Hopeless", true)
					if err != nil {
						return err
					}
					drop, err = sys.Vocab.AddTerm(tx, "b", model.VocabDiseaseState, "Hopeles", false)
					if err != nil {
						return err
					}
					for j := 0; j < refs; j++ {
						if _, err := sys.DB.CreateSample(tx, "b", model.Sample{
							Name: fmt.Sprintf("s%d", j), Project: project, DiseaseState: "Hopeles",
						}); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				err = sys.Update(func(tx *store.Tx) error {
					res, err := sys.Vocab.Merge(tx, "eva", keep.ID, drop.ID, "")
					if err != nil {
						return err
					}
					if res.Reassociated[model.KindSample] != refs {
						return fmt.Errorf("reassociated %v", res.Reassociated)
					}
					return nil
				})
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- F8: task list ---------------------------------------------------------------------

func BenchmarkF8_TaskList(b *testing.B) {
	sys, _ := benchSystem(b, core.Options{DisableSearch: true, DisableAudit: true})
	// 1000 open tasks for the expert role.
	err := sys.Update(func(tx *store.Tx) error {
		for i := 0; i < 1000; i++ {
			if _, err := sys.Vocab.AddTerm(tx, "alice", model.VocabTissue,
				fmt.Sprintf("t%04d", i), false); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := sys.View(func(tx *store.Tx) error {
			ts, err := sys.Tasks.ListOpen(tx, "eva", "expert")
			if err != nil {
				return err
			}
			if len(ts) != 1000 {
				return fmt.Errorf("tasks = %d", len(ts))
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- F9/F10: import -----------------------------------------------------------------------

func benchImportSystem(b *testing.B, files int) (*core.System, int64) {
	b.Helper()
	sys, project := benchSystem(b, core.Options{DisableSearch: true, DisableAudit: true})
	samples := make([]string, files)
	for i := range samples {
		samples[i] = fmt.Sprintf("arr-%04d", i)
	}
	gp, gpStore := provider.NewAffymetrixGeneChip("genechip", samples)
	sys.Storage.Mount(gpStore)
	if err := sys.Providers.Register(gp); err != nil {
		b.Fatal(err)
	}
	return sys, project
}

func BenchmarkF9_ImportWorkunit(b *testing.B) {
	for _, files := range []int{10, 100} {
		for _, mode := range []importer.Mode{importer.Copy, importer.Link} {
			b.Run(fmt.Sprintf("files=%d/mode=%s", files, mode), func(b *testing.B) {
				sys, project := benchImportSystem(b, files)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					err := sys.Update(func(tx *store.Tx) error {
						res, err := sys.Importer.Import(tx, importer.Request{
							Provider: "genechip", Mode: mode,
							WorkunitName: fmt.Sprintf("wu-%d", i),
							Project:      project, Actor: "alice",
						})
						if err != nil {
							return err
						}
						if len(res.Resources) != files {
							return fmt.Errorf("resources = %d", len(res.Resources))
						}
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(files*b.N)/b.Elapsed().Seconds(), "files/s")
			})
		}
	}
}

func BenchmarkF10_ImportWorkflow(b *testing.B) {
	// Measures the workflow round trip: import → assign → save → ready.
	sys, project := benchImportSystem(b, 4)
	var extracts []int64
	err := sys.Update(func(tx *store.Tx) error {
		sid, err := sys.DB.CreateSample(tx, "alice", model.Sample{Name: "s", Project: project})
		if err != nil {
			return err
		}
		for i := 0; i < 4; i++ {
			eid, err := sys.DB.CreateExtract(tx, "alice", model.Extract{
				Name: fmt.Sprintf("arr-%04d", i), Sample: sid,
			})
			if err != nil {
				return err
			}
			extracts = append(extracts, eid)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := sys.Update(func(tx *store.Tx) error {
			res, err := sys.Importer.Import(tx, importer.Request{
				Provider: "genechip", Mode: importer.Link,
				WorkunitName: fmt.Sprintf("flow-%d", i),
				Project:      project, Actor: "alice",
			})
			if err != nil {
				return err
			}
			matches, err := sys.Importer.BestMatches(tx, res.Workunit)
			if err != nil {
				return err
			}
			if err := sys.Importer.ApplyMatches(tx, "alice", matches); err != nil {
				return err
			}
			return sys.Importer.CompleteImport(tx, "alice", res.WorkflowInstance)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- F11: best-match computation ---------------------------------------------------------

func BenchmarkF11_BestMatch(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			sys, project := benchImportSystem(b, n)
			var wu int64
			err := sys.Update(func(tx *store.Tx) error {
				sid, err := sys.DB.CreateSample(tx, "alice", model.Sample{Name: "s", Project: project})
				if err != nil {
					return err
				}
				for i := 0; i < n; i++ {
					if _, err := sys.DB.CreateExtract(tx, "alice", model.Extract{
						Name: fmt.Sprintf("arr_%04d", i), Sample: sid,
					}); err != nil {
						return err
					}
				}
				res, err := sys.Importer.Import(tx, importer.Request{
					Provider: "genechip", Mode: importer.Link,
					WorkunitName: "wu", Project: project, Actor: "alice",
				})
				wu = res.Workunit
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := sys.View(func(tx *store.Tx) error {
					matches, err := sys.Importer.BestMatches(tx, wu)
					if err != nil {
						return err
					}
					if len(matches) != n {
						return fmt.Errorf("matches = %d", len(matches))
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n*n*b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// --- F12/F13: registration ------------------------------------------------------------------

func BenchmarkF12_RegisterApplication(b *testing.B) {
	sys, _ := benchSystem(b, core.Options{DisableSearch: true, DisableAudit: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := sys.Update(func(tx *store.Tx) error {
			_, err := sys.DB.CreateApplication(tx, "admin", model.Application{
				Name: fmt.Sprintf("app-%d", i), Connector: "rserve", Program: "x.R",
				InputSpec: []string{"resources"}, Active: true,
			})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF13_ExperimentDefinition(b *testing.B) {
	sys, project := benchImportSystem(b, 8)
	var resources []int64
	err := sys.Update(func(tx *store.Tx) error {
		res, err := sys.Importer.Import(tx, importer.Request{
			Provider: "genechip", Mode: importer.Link,
			WorkunitName: "wu", Project: project, Actor: "alice",
		})
		resources = res.Resources
		return err
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := sys.Update(func(tx *store.Tx) error {
			_, err := sys.DB.CreateExperiment(tx, "alice", model.Experiment{
				Name: fmt.Sprintf("exp-%d", i), Project: project,
				Resources:  resources,
				Attributes: map[string]string{"species": "A. thaliana", "treatment": "light"},
			})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- F14/F15/F16: experiment execution ---------------------------------------------------------

// benchExperiment prepares an importable 2x2 design with an experiment and
// registered application.
func benchExperiment(b *testing.B) (*core.System, int64, int64) {
	b.Helper()
	sys, project := benchSystem(b, core.Options{DisableSearch: true, DisableAudit: true})
	samples := []string{"a-1-control", "a-2-control", "a-1-treated", "a-2-treated"}
	gp, gpStore := provider.NewAffymetrixGeneChip("genechip", samples)
	sys.Storage.Mount(gpStore)
	if err := sys.Providers.Register(gp); err != nil {
		b.Fatal(err)
	}
	var expID, appID int64
	err := sys.Update(func(tx *store.Tx) error {
		res, err := sys.Importer.Import(tx, importer.Request{
			Provider: "genechip", Mode: importer.Copy,
			WorkunitName: "arrays", Project: project, Actor: "alice",
		})
		if err != nil {
			return err
		}
		appID, err = sys.DB.CreateApplication(tx, "admin", model.Application{
			Name: "two group analysis", Connector: "rserve", Program: "twogroup.R",
			ParamSpec: []string{"reference_group"}, Active: true,
		})
		if err != nil {
			return err
		}
		expID, err = sys.DB.CreateExperiment(tx, "alice", model.Experiment{
			Name: "exp", Project: project, Resources: res.Resources,
		})
		return err
	})
	if err != nil {
		b.Fatal(err)
	}
	return sys, expID, appID
}

func BenchmarkF14_RunExperiment(b *testing.B) {
	sys, expID, appID := benchExperiment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := sys.Update(func(tx *store.Tx) error {
			res, err := sys.Executor.RunExperiment(tx, apps.RunRequest{
				Experiment: expID, Application: appID,
				WorkunitName: fmt.Sprintf("run-%d", i),
				Params:       map[string]string{"reference_group": "control"},
				Actor:        "alice",
			})
			if err != nil {
				return err
			}
			if res.Failed {
				return fmt.Errorf("run failed: %s", res.Error)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF15_ExperimentWorkflow(b *testing.B) {
	// Isolates the workflow-engine overhead of an experiment run using a
	// no-op program on the same path.
	sys, expID, _ := benchExperiment(b)
	conn, err := sys.Connectors.Get("rserve")
	if err != nil {
		b.Fatal(err)
	}
	conn.(*apps.SimConnector).RegisterProgram("noop.R", func(apps.RunContext) ([]apps.OutputFile, error) {
		return []apps.OutputFile{{Name: "out.txt", Format: "txt", Data: []byte("ok")}}, nil
	})
	var noopApp int64
	_ = sys.Update(func(tx *store.Tx) error {
		noopApp, _ = sys.DB.CreateApplication(tx, "admin", model.Application{
			Name: "noop", Connector: "rserve", Program: "noop.R", Active: true,
		})
		return nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := sys.Update(func(tx *store.Tx) error {
			res, err := sys.Executor.RunExperiment(tx, apps.RunRequest{
				Experiment: expID, Application: noopApp,
				WorkunitName: fmt.Sprintf("noop-%d", i), Actor: "alice",
			})
			if err != nil {
				return err
			}
			if res.Failed {
				return fmt.Errorf("run failed: %s", res.Error)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF16_ResultZip(b *testing.B) {
	outputs := []apps.OutputFile{
		{Name: "results.csv", Data: make([]byte, 64<<10)},
		{Name: "report.txt", Data: make([]byte, 8<<10)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := apps.ZipOutputs(outputs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := apps.ReadZip(data); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(64<<10 + 8<<10))
}

// --- S-FT: full-text search ---------------------------------------------------------------------

func benchSearchSystem(b *testing.B, docs int) *core.System {
	b.Helper()
	sys, project := benchSystem(b, core.Options{DisableAudit: true})
	err := sys.Update(func(tx *store.Tx) error {
		for i := 0; i < docs; i++ {
			if _, err := sys.DB.CreateSample(tx, "alice", model.Sample{
				Name:        fmt.Sprintf("sample-%06d", i),
				Project:     project,
				Description: fmt.Sprintf("replicate %d of the arabidopsis light series batch %d", i%7, i%13),
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func BenchmarkSFT_Index(b *testing.B) {
	for _, docs := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("docs=%d", docs), func(b *testing.B) {
			sys := benchSearchSystem(b, docs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Search.ReindexAll()
				sys.Search.Flush()
			}
			b.ReportMetric(float64(docs*b.N)/b.Elapsed().Seconds(), "docs/s")
		})
	}
}

func BenchmarkSFT_Query(b *testing.B) {
	for _, docs := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("docs=%d", docs), func(b *testing.B) {
			sys := benchSearchSystem(b, docs)
			if _, err := sys.Search.Search("", "arabidopsis"); err != nil { // warm index
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hits, err := sys.Search.Search("", "arabidopsis light")
				if err != nil {
					b.Fatal(err)
				}
				if len(hits) != docs {
					b.Fatalf("hits = %d", len(hits))
				}
			}
		})
	}
}

// --- S-AU: audit logging --------------------------------------------------------------------------

func BenchmarkSAU_AuditLog(b *testing.B) {
	// Measures the overhead the audit subscription adds to entity writes.
	for _, audited := range []bool{false, true} {
		b.Run(fmt.Sprintf("audit=%v", audited), func(b *testing.B) {
			sys, project := benchSystem(b, core.Options{DisableSearch: true, DisableAudit: !audited})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := sys.Update(func(tx *store.Tx) error {
					_, err := sys.DB.CreateSample(tx, "alice", model.Sample{
						Name: fmt.Sprintf("s%d", i), Project: project,
					})
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- D1/D2: durability (WAL + group commit + recovery) -------------------------

// BenchmarkD1_DurableRegisterSample is F2 through the durable write path:
// every sample registration is WAL-logged before it is acknowledged. The
// sync policies bound the cost spectrum; the parallel group-commit
// variant shows concurrent registrations sharing fsyncs, which is how a
// facility-facing deployment would actually run SyncAlways.
func BenchmarkD1_DurableRegisterSample(b *testing.B) {
	durable := func(sync store.SyncPolicy) core.Options {
		return core.Options{
			DisableSearch: true, DisableAudit: true,
			DataDir: b.TempDir(), Sync: sync, SnapshotEvery: -1,
		}
	}
	register := func(sys *core.System, project int64, i int64) error {
		return sys.Update(func(tx *store.Tx) error {
			_, err := sys.DB.CreateSample(tx, "alice", model.Sample{
				Name: fmt.Sprintf("s%d", i), Project: project,
			})
			return err
		})
	}
	for _, sync := range []store.SyncPolicy{store.SyncOff, store.SyncInterval, store.SyncAlways} {
		b.Run("fsync-"+sync.String(), func(b *testing.B) {
			sys, project := benchSystem(b, durable(sync))
			defer sys.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := register(sys, project, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("fsync-always-group", func(b *testing.B) {
		sys, project := benchSystem(b, durable(store.SyncAlways))
		defer sys.Close()
		var seq atomic.Int64
		b.SetParallelism(64)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := register(sys, project, seq.Add(1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkD2_Recovery measures cold-start recovery (store.Open: snapshot
// load + WAL replay + index-free arming) of a generated FGCZ-shaped
// population, both from a pure WAL (worst case: every commit replayed)
// and from a compacted snapshot (the state bfabric-admin snapshot leaves
// behind).
func BenchmarkD2_Recovery(b *testing.B) {
	const scale = 0.1 // ~7.6k entities, ~4.7k annotation links
	build := func(b *testing.B, compact bool) string {
		dir := b.TempDir()
		s, err := store.Open(dir, store.DurabilityOptions{Sync: store.SyncOff, SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		sys, err := core.NewWithStore(s, core.Options{DisableSearch: true, DisableAudit: true})
		if err != nil {
			b.Fatal(err)
		}
		if err := genload.Generate(sys, genload.FGCZJan2010.Scaled(scale)); err != nil {
			b.Fatal(err)
		}
		if compact {
			if err := s.Snapshot(); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
		return dir
	}
	for _, variant := range []struct {
		name    string
		compact bool
	}{{"from-wal", false}, {"from-snapshot", true}} {
		b.Run(variant.name, func(b *testing.B) {
			dir := build(b, variant.compact)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := store.Open(dir, store.DurabilityOptions{Sync: store.SyncOff, SnapshotEvery: -1})
				if err != nil {
					b.Fatal(err)
				}
				if s.Count(model.KindWorkunit) == 0 {
					b.Fatal("incomplete recovery")
				}
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Q1/Q2/Q3: declarative query engine ------------------------------------------

// queryBenchSystem lazily generates one FGCZ-scale population (the full
// January 2010 deployment shape) shared by the read-only query
// benchmarks; generation costs seconds and the benchmarks never mutate it.
var (
	queryBenchOnce sync.Once
	queryBenchSys  *core.System
	queryBenchErr  error
)

func queryBenchSystem(b *testing.B) *core.System {
	b.Helper()
	queryBenchOnce.Do(func() {
		queryBenchSys = core.MustNew(core.Options{DisableSearch: true, DisableAudit: true})
		queryBenchErr = genload.Generate(queryBenchSys, genload.FGCZJan2010)
	})
	if queryBenchErr != nil {
		b.Fatal(queryBenchErr)
	}
	return queryBenchSys
}

// BenchmarkQ1_PointLookup is the cheapest planned query: a unique-index
// point lookup (user by login) through the full plan-and-execute path.
func BenchmarkQ1_PointLookup(b *testing.B) {
	sys := queryBenchSystem(b)
	q := store.Query{Table: model.KindUser, Where: []store.Pred{store.Eq("login", "user0777")}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := sys.View(func(tx *store.Tx) error {
			rows, err := tx.Query(q)
			if err != nil {
				return err
			}
			if !rows.Next() {
				return fmt.Errorf("user0777 not found")
			}
			return rows.Err()
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ2_IndexedMultiPredicate is the acceptance benchmark for the
// query engine: a two-predicate listing (samples of one project with one
// species annotation) over the deployment-scale sample table, once
// through the planner (which must drive from an index) and once through
// the retained full-scan baseline it replaced. The planned variant must
// beat the scan by ≥10x.
func BenchmarkQ2_IndexedMultiPredicate(b *testing.B) {
	sys := queryBenchSystem(b)
	const species = "Homo sapiens"
	// Pick the project with the most samples of the species so the result
	// is non-trivial.
	var project int64
	var expect int
	err := sys.View(func(tx *store.Tx) error {
		perProject := map[int64]int{}
		if err := tx.ScanRef(model.KindSample, func(r store.Record) bool {
			if r.String("species") == species {
				perProject[r.Int("project")]++
			}
			return true
		}); err != nil {
			return err
		}
		for p, n := range perProject {
			if n > expect {
				project, expect = p, n
			}
		}
		q := store.Query{Table: model.KindSample, Where: []store.Pred{
			store.Eq("project", project), store.Eq("species", species),
		}}
		plan, err := tx.Explain(q)
		if err != nil {
			return err
		}
		if plan.Access != store.AccessIndex {
			return fmt.Errorf("plan %s: want index access", plan)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	q := store.Query{Table: model.KindSample, Where: []store.Pred{
		store.Eq("project", project), store.Eq("species", species),
	}}

	b.Run("planned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := sys.View(func(tx *store.Tx) error {
				rows, err := tx.Query(q)
				if err != nil {
					return err
				}
				n := 0
				for rows.Next() {
					n++
				}
				if n != expect {
					return fmt.Errorf("planned matched %d, want %d", n, expect)
				}
				return rows.Err()
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})

	// The baseline every layer used before the engine: ordered full scan
	// plus Go-side filtering. Retained as the regression fence the planned
	// path is measured against.
	b.Run("full-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := sys.View(func(tx *store.Tx) error {
				n := 0
				if err := tx.ScanRef(model.KindSample, func(r store.Record) bool {
					if r.Int("project") == project && r.String("species") == species {
						n++
					}
					return true
				}); err != nil {
					return err
				}
				if n != expect {
					return fmt.Errorf("scan matched %d, want %d", n, expect)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQ3_OrderedPageUnderWriterLoad measures the portal's filtered
// browse shape — a keyset-cursor page of 50 format-filtered data
// resources — while a writer continuously rewrites rows in the same
// table. Readers pin MVCC versions and never block; this fences the
// engine's iterator against writer interference the way D3 fences raw
// scans.
func BenchmarkQ3_OrderedPageUnderWriterLoad(b *testing.B) {
	// A private, smaller population: the writer mutates it.
	sys := core.MustNew(core.Options{DisableSearch: true, DisableAudit: true})
	if err := genload.Generate(sys, genload.FGCZJan2010.Scaled(0.1)); err != nil {
		b.Fatal(err)
	}
	total := sys.Store.Count(model.KindDataResource)
	stop := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		var i int64
		for {
			select {
			case <-stop:
				writerDone <- nil
				return
			default:
			}
			i++
			err := sys.Update(func(tx *store.Tx) error {
				id := i%int64(total) + 1
				r, err := tx.Get(model.KindDataResource, id)
				if err != nil {
					return err
				}
				r["size_bytes"] = i
				return tx.Put(model.KindDataResource, id, r)
			})
			if err != nil {
				writerDone <- err
				return
			}
		}
	}()
	var cursor atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			err := sys.View(func(tx *store.Tx) error {
				rows, err := tx.Query(store.Query{
					Table:  model.KindDataResource,
					Where:  []store.Pred{store.Eq("format", "cel")},
					Limit:  50,
					Cursor: cursor.Load() % int64(total),
				})
				if err != nil {
					return err
				}
				n := 0
				var last int64
				for rows.Next() {
					n++
					last = rows.ID()
				}
				if n == 50 {
					cursor.Store(last)
				} else {
					cursor.Store(0) // wrapped off the end: restart the walk
				}
				return rows.Err()
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	close(stop)
	if err := <-writerDone; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQ4_AggCount is the acceptance benchmark for ungrouped
// aggregation pushdown: counting the samples of one species. The planned
// path answers from index postings lengths (count(postings)) without
// materializing a single row; the retained full-scan fold is the baseline
// every reporting call site used before, and the fence the >=10x claim is
// measured against.
func BenchmarkQ4_AggCount(b *testing.B) {
	sys := queryBenchSystem(b)
	const species = "Homo sapiens"
	q := store.Query{Table: model.KindSample, Where: []store.Pred{store.Eq("species", species)}}
	var expect int
	err := sys.View(func(tx *store.Tx) error {
		if err := tx.ScanRef(model.KindSample, func(r store.Record) bool {
			if r.String("species") == species {
				expect++
			}
			return true
		}); err != nil {
			return err
		}
		plan, err := tx.ExplainAgg(q.Count())
		if err != nil {
			return err
		}
		if plan.Agg != store.AggStrategyPostings {
			return fmt.Errorf("plan %s: want %s", plan, store.AggStrategyPostings)
		}
		return nil
	})
	if err != nil || expect == 0 {
		b.Fatalf("setup: expect=%d err=%v", expect, err)
	}

	b.Run("planned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := sys.View(func(tx *store.Tx) error {
				n, err := tx.QueryCount(q)
				if err != nil {
					return err
				}
				if n != expect {
					return fmt.Errorf("counted %d, want %d", n, expect)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("full-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := sys.View(func(tx *store.Tx) error {
				n := 0
				if err := tx.ScanRef(model.KindSample, func(r store.Record) bool {
					if r.String("species") == species {
						n++
					}
					return true
				}); err != nil {
					return err
				}
				if n != expect {
					return fmt.Errorf("scan counted %d, want %d", n, expect)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQ5_GroupBy is the acceptance benchmark for grouped aggregation
// pushdown: the species histogram over every sample (the
// /api/stats/sample?by=species shape). The planned path walks the species
// index's distinct keys — O(distinct values) — while the retained
// scan-and-fold baseline visits every row.
func BenchmarkQ5_GroupBy(b *testing.B) {
	sys := queryBenchSystem(b)
	aq := store.Query{Table: model.KindSample}.GroupBy("species")
	want := map[string]int{}
	err := sys.View(func(tx *store.Tx) error {
		if err := tx.ScanRef(model.KindSample, func(r store.Record) bool {
			if s := r.String("species"); s != "" {
				want[s]++
			}
			return true
		}); err != nil {
			return err
		}
		plan, err := tx.ExplainAgg(aq)
		if err != nil {
			return err
		}
		if plan.Agg != store.AggStrategyPostings {
			return fmt.Errorf("plan %s: want %s", plan, store.AggStrategyPostings)
		}
		return nil
	})
	if err != nil || len(want) == 0 {
		b.Fatalf("setup: %d species, err=%v", len(want), err)
	}

	b.Run("planned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := sys.View(func(tx *store.Tx) error {
				res, err := tx.Aggregate(aq)
				if err != nil {
					return err
				}
				if len(res.Groups) != len(want) {
					return fmt.Errorf("%d groups, want %d", len(res.Groups), len(want))
				}
				for _, g := range res.Groups {
					if g.Count() != want[g.Key.(string)] {
						return fmt.Errorf("group %v = %d, want %d", g.Key, g.Count(), want[g.Key.(string)])
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("full-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := sys.View(func(tx *store.Tx) error {
				got := map[string]int{}
				if err := tx.ScanRef(model.KindSample, func(r store.Record) bool {
					if s := r.String("species"); s != "" {
						got[s]++
					}
					return true
				}); err != nil {
					return err
				}
				if len(got) != len(want) {
					return fmt.Errorf("scan folded %d groups, want %d", len(got), len(want))
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- D3: MVCC non-blocking reads under write load -------------------------------

// BenchmarkD3_ReadUnderWriteLoad measures the portal's hot read shape — a
// paginated browse page plus a point lookup, zero-copy, inside one View —
// first against an idle store and then while a writer commits
// continuously into the same table. Under the MVCC store the two numbers
// must stay within a few percent of each other: readers pin a version and
// never touch a lock, so a committing writer cannot stall them. (Under
// the former single-RWMutex store, every commit stalled every reader;
// this benchmark is the regression fence for that interference.)
func BenchmarkD3_ReadUnderWriteLoad(b *testing.B) {
	const rows = 5000
	const page = 50
	setup := func(b *testing.B) *core.System {
		sys, project := benchSystem(b, core.Options{DisableSearch: true, DisableAudit: true})
		err := sys.Update(func(tx *store.Tx) error {
			for i := 0; i < rows; i++ {
				if _, err := sys.DB.CreateSample(tx, "alice", model.Sample{
					Name: fmt.Sprintf("s%d", i), Project: project,
				}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		return sys
	}
	readPage := func(sys *core.System, from int64) error {
		return sys.View(func(tx *store.Tx) error {
			n := 0
			if err := tx.ScanRangeRef(model.KindSample, from, 0, func(r store.Record) bool {
				n++
				return n < page
			}); err != nil {
				return err
			}
			_, err := tx.GetRef(model.KindSample, from%rows+1)
			return err
		})
	}

	b.Run("idle", func(b *testing.B) {
		sys := setup(b)
		var off atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := readPage(sys, off.Add(page)%rows+1); err != nil {
					b.Fatal(err)
				}
			}
		})
	})

	// runUnderWriter measures the readers while a background writer
	// commits single-row rewrites into the table being read — every
	// commit publishes a fresh store version and copies the touched
	// chunk, the worst case for reader cache reuse. interval 0 means an
	// unpaced, CPU-saturating writer.
	runUnderWriter := func(b *testing.B, interval time.Duration) {
		sys := setup(b)
		stop := make(chan struct{})
		writerDone := make(chan error, 1)
		var commits atomic.Int64
		go func() {
			var tick <-chan time.Time
			if interval > 0 {
				t := time.NewTicker(interval)
				defer t.Stop()
				tick = t.C
			}
			var i int64
			for {
				select {
				case <-stop:
					writerDone <- nil
					return
				default:
				}
				if tick != nil {
					select {
					case <-tick:
					case <-stop:
						writerDone <- nil
						return
					}
				}
				i++
				err := sys.Update(func(tx *store.Tx) error {
					return tx.Put(model.KindSample, i%rows+1, store.Record{
						"name": fmt.Sprintf("rewrite%d", i), "project": int64(1),
					})
				})
				if err != nil {
					writerDone <- err
					return
				}
				commits.Add(1)
			}
		}()
		var off atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := readPage(sys, off.Add(page)%rows+1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.ReportMetric(float64(commits.Load())/b.Elapsed().Seconds(), "commits/s")
		b.StopTimer()
		close(stop)
		if err := <-writerDone; err != nil {
			b.Fatal(err)
		}
	}

	// A write transaction held open across the whole measurement. Under
	// the former single-RWMutex store this configuration did not degrade
	// readers — it starved them outright (View blocked until the Update
	// returned). Under MVCC it must cost nothing at all: the open
	// transaction consumes no CPU and holds no lock a reader looks at.
	b.Run("writer-transaction-open", func(b *testing.B) {
		sys := setup(b)
		inTx := make(chan struct{})
		release := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = sys.Update(func(tx *store.Tx) error {
				_, err := tx.Insert(model.KindSample, store.Record{
					"name": "held-open", "project": int64(1),
				})
				close(inTx)
				<-release
				return err
			})
		}()
		<-inTx
		var off atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := readPage(sys, off.Add(page)%rows+1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.StopTimer()
		close(release)
		<-done
	})

	// 2000 commits/s is the "heavy bulk import" shape — orders of
	// magnitude above the original deployment's sustained write rate.
	// Readers never wait on these commits, so their throughput must stay
	// within a few percent of idle; what little they pay is the CPU the
	// writer itself consumes.
	b.Run("writer-2k-per-s", func(b *testing.B) {
		runUnderWriter(b, 500*time.Microsecond)
	})

	// An unpaced writer saturating a core. On few-core hosts this
	// measures CPU sharing between reader and writer goroutines, not
	// lock interference (there are no reader-visible locks left); it
	// bounds the worst case rather than the expected one.
	b.Run("writer-saturating", func(b *testing.B) {
		runUnderWriter(b, 0)
	})
}
