.PHONY: build test race bench verify

build:
	go build ./...

test:
	go test ./...

# The tier-1 gate: everything CI (and the next PR) must keep green.
verify:
	go build ./...
	go vet ./...
	go test ./...

# Race-checks the packages with dedicated concurrency tests (zero-copy read
# path and search flush).
race:
	go test -race ./internal/store/... ./internal/search/...

# Runs the full benchmark suite with -benchmem and refreshes
# BENCH_baseline.json. Override the per-benchmark budget with
# BENCHTIME=1s make bench
bench:
	scripts/bench.sh
