.PHONY: build test race bench

build:
	go build ./...

test:
	go test ./...

# Race-checks the packages with dedicated concurrency tests (zero-copy read
# path and search flush).
race:
	go test -race ./internal/store/... ./internal/search/...

# Runs the full benchmark suite with -benchmem and refreshes
# BENCH_baseline.json. Override the per-benchmark budget with
# BENCHTIME=1s make bench
bench:
	scripts/bench.sh
