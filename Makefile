.PHONY: build test race bench verify bench-compare bench-ingest bench-agg test-faults bench-faults bench-http bench-http-smoke bench-http-replicas bench-http-failover test-repl test-chaos

build:
	go build ./...

test:
	go test ./...

# The tier-1 gate: everything CI (and the next PR) must keep green. The
# -race pass covers the store's MVCC contract (snapshot readers, conflict
# detection, barrier) and the query engine's iterators under writer load —
# the tests most likely to catch a concurrency regression early. gofmt
# keeps the tree formatting-clean.
verify:
	go build ./...
	go vet ./...
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt: needs formatting:"; echo "$$unformatted"; exit 1; fi
	go test ./...
	go test -race ./internal/store ./internal/portal ./internal/repl
	$(MAKE) bench-http-smoke

# The full randomized crash-point campaign: injects a fault at EVERY
# mutating filesystem operation of the reference workload (write, fsync,
# rename, ENOSPC, torn write — across WAL append, rotation, snapshot and
# truncation) and proves committed-prefix recovery after each, under the
# race detector. The deterministic subset (every 5th fault point) already
# runs inside `make test`/`make verify`; this target buys the exhaustive
# sweep. Seed with BFABRIC_FAULT_SEED=n for a reproducible shuffle.
test-faults:
	BFABRIC_FAULTS=full go test -race -count=1 \
		-run 'TestFaultCampaign|TestDegraded|TestPoison|TestPortalDegraded' \
		./internal/store ./internal/portal

# The replication chaos campaign, exhaustive: every fault point on the
# follower replay path (BFABRIC_FAULTS=full), the kill -9 follower
# convergence test, the ScanRange pagination stress on a live follower,
# and the online-backup round trips — all under the race detector. The
# deterministic subsets of these already run inside `make test`/`make
# verify`; this target buys the full sweep. Seed the fault-mode shuffle
# with BFABRIC_FAULT_SEED=n for a reproducible run.
test-repl:
	BFABRIC_FAULTS=full go test -race -count=1 \
		-run 'TestFollowerFaultCampaign|TestKillNineFollowerConvergence|TestFollowerScanPaginationStress|TestDivergenceResync|TestBackup' \
		./internal/repl ./internal/store

# The promotion chaos campaign, exhaustive: every network fault mode
# (latency, throttle, torn connections, half-open stalls) injected
# against both followers mid-load, then primary partitioned away, a
# follower promoted, survivors re-pointed, and the zombie primary
# resurrected — asserting zero phantom commits, exact committed-prefix
# timelines per epoch, and byte-identical convergence after the fenced
# zombie resyncs via snapshot. The deterministic every-3rd-scenario
# subset already runs inside `make test`/`make verify`; this target buys
# the full sweep with randomized fault parameters. Seed with
# BFABRIC_CHAOS_SEED=n for a reproducible run.
test-chaos:
	BFABRIC_CHAOS=full go test -race -count=1 \
		-run 'TestPromotionChaosCampaign|TestFencedAheadRefusesZombie|TestPromoteDisconnectRepoints|TestHalfOpenFreezesLastContact' \
		./internal/repl

# Fence that the storefs indirection keeps the hot paths within noise:
# Q1 (filtered browse query), D3 (durable commit latency) and the bulk
# ingest benchmarks, diffed against the committed baseline.
bench-faults:
	BENCH='BenchmarkQ1_|BenchmarkD3_|BenchmarkT1_DeploymentLoad|BenchmarkD1_DurableRegisterSample' \
		scripts/bench_compare.sh

# Race-checks every package with dedicated concurrency tests (MVCC
# snapshot isolation, zero-copy read path, search flush).
race:
	go test -race ./internal/store/... ./internal/search/... ./internal/entity/... ./internal/portal/... ./internal/repl/...

# The ISUCON-style socket-level benchmark: boots the portal on a real TCP
# listener, logs in a pool of bench users, and drives a validated mixed
# read/write workload for DURATION (default 12s), merging req/s and
# p50/p95/p99 per operation class into BENCH_baseline.json as
# BenchmarkHTTPSocket entries. See docs/http-bench.md.
DURATION ?= 12s
bench-http:
	go run ./cmd/bfabric-loadbench -duration $(DURATION) \
		-merge-baseline BENCH_baseline.json

# Replicated read scaling: the same socket-level workload served by
# WAL-shipping read replicas — writers stay on the primary, readers
# spread across the follower portals (16 clients per serving instance,
# so the runs measure capacity, not a fixed load split thinner). Records
# BenchmarkHTTPSocket/replica-N/... rows next to the single-server ones;
# compare replica-1 vs replica-2 req/s for the scaling claim.
bench-http-replicas:
	go run ./cmd/bfabric-loadbench -duration $(DURATION) -replicas 1 \
		-merge-baseline BENCH_baseline.json
	go run ./cmd/bfabric-loadbench -duration $(DURATION) -replicas 2 \
		-merge-baseline BENCH_baseline.json

# The failover scenario at the socket: primary + follower under the
# mixed workload, primary portal killed mid-load, follower drained and
# promoted over HTTP, clients re-pointed. Fails if any acknowledged
# write is lost; records BenchmarkHTTPSocket/failover/... rows (req/s
# and p99 through the outage, plus the synthetic "switchover" op whose
# latency is the outage duration).
bench-http-failover:
	go run ./cmd/bfabric-loadbench -duration $(DURATION) -failover \
		-merge-baseline BENCH_baseline.json

# Short correctness-only pass over the load harness: boots the full
# server, runs the mixed workload briefly, and fails on any validation
# error. Part of `make verify`.
bench-http-smoke:
	go test ./internal/loadgen -run TestHarnessSmoke -short -count=1

# Re-runs the benchmark suite and diffs it against the committed
# BENCH_baseline.json without overwriting it.
bench-compare:
	scripts/bench_compare.sh

# Write-path benchmarks only (bulk ingest, registration, durable commit),
# diffed against the committed baseline — the quick regression fence for
# changes to the store's transaction/commit/fan-out path.
bench-ingest:
	BENCH='BenchmarkAblationTxBatchSize|BenchmarkAblationEventSubscribers|BenchmarkT1_DeploymentLoad|BenchmarkF2_RegisterSample|BenchmarkF3_RegisterExtractBatch|BenchmarkF4_ReleaseAnnotation|BenchmarkSAU_AuditLog|BenchmarkD1_DurableRegisterSample' \
		scripts/bench_compare.sh

# Aggregation-pushdown fence: the planned Count/GroupBy paths against
# their retained scan-and-fold baselines, plus the query benchmarks that
# share the planner, diffed against the committed baseline. The quick
# regression check for changes to the aggregate strategies or the index
# key walk.
bench-agg:
	BENCH='BenchmarkQ4_|BenchmarkQ5_|BenchmarkQ1_|BenchmarkQ2_' \
		scripts/bench_compare.sh

# Runs the full benchmark suite with -benchmem and refreshes
# BENCH_baseline.json. Override the per-benchmark budget with
# BENCHTIME=1s make bench
bench:
	scripts/bench.sh
