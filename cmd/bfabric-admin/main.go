// Command bfabric-admin provides B-Fabric's administrative functions from
// the shell: generating and inspecting deployments, reviewing pending
// annotations, merging duplicates, querying the audit log, and exporting
// object tables — operating on store snapshot files.
//
// Usage:
//
//	bfabric-admin gen    -out deploy.gob [-scale 0.1]
//	bfabric-admin stats  -in deploy.gob
//	bfabric-admin list   -in deploy.gob -kind sample [-limit 20]
//	bfabric-admin pending -in deploy.gob
//	bfabric-admin release -in deploy.gob -id 7 -actor eva -out deploy.gob
//	bfabric-admin merge  -in deploy.gob -keep 3 -drop 9 -actor eva -out deploy.gob
//	bfabric-admin audit  -in deploy.gob [-actor alice] [-n 20]
//	bfabric-admin export -in deploy.gob -kind sample
//	bfabric-admin export-project -in deploy.gob -project 3 -out project.zip
//	bfabric-admin import-project -in deploy.gob -archive project.zip -out deploy.gob
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/genload"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "gen":
		err = cmdGen(args)
	case "stats":
		err = cmdStats(args)
	case "list":
		err = cmdList(args)
	case "pending":
		err = cmdPending(args)
	case "release":
		err = cmdRelease(args)
	case "merge":
		err = cmdMerge(args)
	case "audit":
		err = cmdAudit(args)
	case "export":
		err = cmdExport(args)
	case "export-project":
		err = cmdExportProject(args)
	case "import-project":
		err = cmdImportProject(args)
	default:
		usage()
	}
	if err != nil {
		log.Fatalf("bfabric-admin %s: %v", cmd, err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bfabric-admin {gen|stats|list|pending|release|merge|audit|export|export-project|import-project} [flags]")
	os.Exit(2)
}

// openSystem loads a snapshot and wires a system over it. Search is
// disabled: admin commands never need the index and skipping it keeps
// start-up instant on large snapshots.
func openSystem(path string) (*core.System, error) {
	s := store.New()
	if err := s.LoadFile(path); err != nil {
		return nil, err
	}
	return core.NewWithStore(s, core.Options{DisableSearch: true})
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "deploy.gob", "snapshot output path")
	scale := fs.Float64("scale", 1.0, "population scale (1.0 = full FGCZ)")
	_ = fs.Parse(args)
	sys := core.MustNew(core.Options{DisableSearch: true, DisableAudit: true})
	p := genload.FGCZJan2010.Scaled(*scale)
	if err := genload.Generate(sys, p); err != nil {
		return err
	}
	if err := sys.Store.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("generated deployment (scale %.3f) -> %s\n", *scale, *out)
	fmt.Print(genload.StatsTable(sys.DB.CollectStats()))
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "deploy.gob", "snapshot path")
	_ = fs.Parse(args)
	sys, err := openSystem(*in)
	if err != nil {
		return err
	}
	fmt.Print(genload.StatsTable(sys.DB.CollectStats()))
	return nil
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	in := fs.String("in", "deploy.gob", "snapshot path")
	kind := fs.String("kind", "sample", "entity kind")
	limit := fs.Int("limit", 20, "max rows")
	_ = fs.Parse(args)
	sys, err := openSystem(*in)
	if err != nil {
		return err
	}
	n := 0
	return sys.View(func(tx *store.Tx) error {
		return tx.Scan(*kind, func(r store.Record) bool {
			name := r.String("name")
			if name == "" {
				name = r.String("value")
			}
			fmt.Printf("%6d  %s\n", r.ID(), name)
			n++
			return n < *limit
		})
	})
}

func cmdPending(args []string) error {
	fs := flag.NewFlagSet("pending", flag.ExitOnError)
	in := fs.String("in", "deploy.gob", "snapshot path")
	_ = fs.Parse(args)
	sys, err := openSystem(*in)
	if err != nil {
		return err
	}
	return sys.View(func(tx *store.Tx) error {
		pend, err := sys.Vocab.Pending(tx)
		if err != nil {
			return err
		}
		if len(pend) == 0 {
			fmt.Println("no pending annotations")
			return nil
		}
		recs, err := sys.Vocab.Recommendations(tx)
		if err != nil {
			return err
		}
		for _, t := range pend {
			fmt.Printf("%6d  %-20s %-24s by %s\n", t.ID, t.Vocabulary, t.Value, t.CreatedBy)
			for _, c := range recs[t.ID] {
				fmt.Printf("        similar to %d %q (score %.3f) — consider merge\n",
					c.Term.ID, c.Term.Value, c.Score)
			}
		}
		return nil
	})
}

func cmdRelease(args []string) error {
	fs := flag.NewFlagSet("release", flag.ExitOnError)
	in := fs.String("in", "deploy.gob", "snapshot path")
	out := fs.String("out", "", "output snapshot (default: overwrite input)")
	id := fs.Int64("id", 0, "annotation id")
	actor := fs.String("actor", "admin", "reviewing expert login")
	_ = fs.Parse(args)
	if *out == "" {
		*out = *in
	}
	sys, err := openSystem(*in)
	if err != nil {
		return err
	}
	if err := sys.Update(func(tx *store.Tx) error {
		return sys.Vocab.Release(tx, *actor, *id)
	}); err != nil {
		return err
	}
	fmt.Printf("released annotation %d\n", *id)
	return sys.Store.SaveFile(*out)
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	in := fs.String("in", "deploy.gob", "snapshot path")
	out := fs.String("out", "", "output snapshot (default: overwrite input)")
	keep := fs.Int64("keep", 0, "annotation id to keep")
	drop := fs.Int64("drop", 0, "annotation id to drop")
	newValue := fs.String("value", "", "optional new spelling for the merged term")
	actor := fs.String("actor", "admin", "merging expert login")
	_ = fs.Parse(args)
	if *out == "" {
		*out = *in
	}
	sys, err := openSystem(*in)
	if err != nil {
		return err
	}
	if err := sys.Update(func(tx *store.Tx) error {
		res, err := sys.Vocab.Merge(tx, *actor, *keep, *drop, *newValue)
		if err != nil {
			return err
		}
		fmt.Printf("merged into %q; re-associated: %v\n", res.Winner.Value, res.Reassociated)
		return nil
	}); err != nil {
		return err
	}
	return sys.Store.SaveFile(*out)
}

func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	in := fs.String("in", "deploy.gob", "snapshot path")
	actor := fs.String("actor", "", "filter by actor login")
	n := fs.Int("n", 20, "max entries")
	_ = fs.Parse(args)
	sys, err := openSystem(*in)
	if err != nil {
		return err
	}
	return sys.View(func(tx *store.Tx) error {
		entries, err := sys.Audit.Recent(tx, *n)
		if err != nil {
			return err
		}
		if *actor != "" {
			entries, err = sys.Audit.ByActor(tx, *actor)
			if err != nil {
				return err
			}
			if len(entries) > *n {
				entries = entries[len(entries)-*n:]
			}
		}
		for _, e := range entries {
			fmt.Printf("seq=%-6d %-24s %s/%d by %s\n", e.Seq, e.Topic, e.Kind, e.Ref, e.Actor)
		}
		return nil
	})
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	in := fs.String("in", "deploy.gob", "snapshot path")
	kind := fs.String("kind", "sample", "entity kind")
	limit := fs.Int("limit", 1000, "max rows")
	_ = fs.Parse(args)
	s := store.New()
	if err := s.LoadFile(*in); err != nil {
		return err
	}
	sys, err := core.NewWithStore(s, core.Options{DisableAudit: true})
	if err != nil {
		return err
	}
	var ids []int64
	if err := sys.View(func(tx *store.Tx) error {
		return tx.Scan(*kind, func(r store.Record) bool {
			ids = append(ids, r.ID())
			return len(ids) < *limit
		})
	}); err != nil {
		return err
	}
	return sys.Search.ExportRecordsCSV(os.Stdout, *kind, ids)
}

// cmdExportProject writes a self-contained project archive.
func cmdExportProject(args []string) error {
	fs := flag.NewFlagSet("export-project", flag.ExitOnError)
	in := fs.String("in", "deploy.gob", "snapshot path")
	project := fs.Int64("project", 0, "project id to export")
	out := fs.String("out", "project.zip", "archive output path")
	_ = fs.Parse(args)
	sys, err := openSystem(*in)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := exchange.Export(sys, *project, f); err != nil {
		f.Close()
		os.Remove(*out)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("exported project %d -> %s\n", *project, *out)
	return nil
}

// cmdImportProject ingests a project archive into a snapshot.
func cmdImportProject(args []string) error {
	fs := flag.NewFlagSet("import-project", flag.ExitOnError)
	in := fs.String("in", "deploy.gob", "snapshot path")
	archive := fs.String("archive", "project.zip", "archive to import")
	out := fs.String("out", "", "output snapshot (default: overwrite input)")
	actor := fs.String("actor", "admin", "importing login")
	_ = fs.Parse(args)
	if *out == "" {
		*out = *in
	}
	sys, err := openSystem(*in)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*archive)
	if err != nil {
		return err
	}
	res, err := exchange.Import(sys, data, *actor)
	if err != nil {
		return err
	}
	fmt.Printf("imported project %d: %d samples, %d extracts, %d workunits, %d resources, %d experiments (%d terms added, %d payloads)\n",
		res.Project, res.Samples, res.Extracts, res.Workunits, res.Resources,
		res.Experiments, res.TermsAdded, res.PayloadsStored)
	return sys.Store.SaveFile(*out)
}
