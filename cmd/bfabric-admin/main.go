// Command bfabric-admin provides B-Fabric's administrative functions from
// the shell: generating and inspecting deployments, reviewing pending
// annotations, merging duplicates, querying the audit log, exporting
// object tables, and managing durable data directories (forced snapshots,
// WAL inspection).
//
// Every -in flag accepts either a snapshot file (deploy.gob) or a durable
// data directory created by `bfabric -data-dir`; directories are opened
// through full WAL recovery. Mutating commands write back where the data
// came from: snapshot files are atomically replaced, data directories get
// a fresh snapshot + WAL truncation.
//
// Usage:
//
//	bfabric-admin gen    -out deploy.gob [-scale 0.1]
//	bfabric-admin gen    -data-dir ./data [-scale 0.1]
//	bfabric-admin stats  -in deploy.gob
//	bfabric-admin list   -in deploy.gob -kind sample [-limit 20]
//	bfabric-admin pending -in deploy.gob
//	bfabric-admin release -in deploy.gob -id 7 -actor eva -out deploy.gob
//	bfabric-admin merge  -in deploy.gob -keep 3 -drop 9 -actor eva -out deploy.gob
//	bfabric-admin audit  -in deploy.gob [-actor alice] [-n 20]
//	bfabric-admin export -in deploy.gob -kind sample
//	bfabric-admin export-project -in deploy.gob -project 3 -out project.zip
//	bfabric-admin import-project -in deploy.gob -archive project.zip -out deploy.gob
//	bfabric-admin snapshot -data-dir ./data
//	bfabric-admin backup   -data-dir ./data -out ./backups/2026-08-08
//	bfabric-admin wal      -data-dir ./data
//	bfabric-admin status   -addr http://localhost:8077
//	bfabric-admin status   -data-dir ./data
//	bfabric-admin promote  -addr http://localhost:8177 -login root -password demo
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/genload"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "gen":
		err = cmdGen(args)
	case "stats":
		err = cmdStats(args)
	case "list":
		err = cmdList(args)
	case "pending":
		err = cmdPending(args)
	case "release":
		err = cmdRelease(args)
	case "merge":
		err = cmdMerge(args)
	case "audit":
		err = cmdAudit(args)
	case "export":
		err = cmdExport(args)
	case "export-project":
		err = cmdExportProject(args)
	case "import-project":
		err = cmdImportProject(args)
	case "snapshot":
		err = cmdSnapshot(args)
	case "backup":
		err = cmdBackup(args)
	case "wal":
		err = cmdWAL(args)
	case "status":
		err = cmdStatus(args)
	case "promote":
		err = cmdPromote(args)
	default:
		usage()
	}
	if err != nil {
		log.Fatalf("bfabric-admin %s: %v", cmd, err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bfabric-admin {gen|stats|list|pending|release|merge|audit|export|export-project|import-project|snapshot|backup|wal|status|promote} [flags]")
	os.Exit(2)
}

// openSystem loads a snapshot file — or recovers a durable data directory
// — and wires a system over it. Search is disabled: admin commands never
// need the index and skipping it keeps start-up instant on large
// deployments.
func openSystem(path string) (*core.System, error) {
	s, err := openStore(path)
	if err != nil {
		return nil, err
	}
	return core.NewWithStore(s, core.Options{DisableSearch: true})
}

// openStore opens path as a data directory (with WAL recovery) or as a
// plain snapshot file.
func openStore(path string) (*store.Store, error) {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		// Automatic snapshots stay off: admin runs are short-lived and
		// persist explicitly on the way out.
		return store.Open(path, store.DurabilityOptions{Sync: store.SyncAlways, SnapshotEvery: -1})
	}
	s := store.New()
	if err := s.LoadFile(path); err != nil {
		return nil, err
	}
	return s, nil
}

// persist writes a mutated system back. For a durable directory opened in
// place, that is a snapshot + WAL truncation; otherwise a snapshot file
// write to out.
//
// Note that a durable directory is never a dry-run source: the mutation
// was write-ahead logged into it the moment the transaction committed.
// With -out pointing elsewhere the snapshot file is written in addition,
// and we say so rather than let the operator believe the directory was
// left untouched.
func persist(sys *core.System, in, out string) error {
	if out == "" {
		out = in
	}
	if sys.Store.Durable() {
		if out != in {
			if err := sys.Store.SaveFile(out); err != nil {
				return err
			}
			fmt.Printf("note: %s is a durable data directory; the change is committed there too (exported snapshot: %s)\n", in, out)
		}
		if err := sys.Store.Snapshot(); err != nil {
			return err
		}
		return sys.Store.Close()
	}
	if err := sys.Store.SaveFile(out); err != nil {
		return err
	}
	return sys.Store.Close()
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "deploy.gob", "snapshot output path")
	dataDir := fs.String("data-dir", "", "generate into a durable data directory instead of a snapshot file")
	scale := fs.Float64("scale", 1.0, "population scale (1.0 = full FGCZ)")
	fsyncFlag := fs.String("fsync", "off", "WAL sync policy while generating (always, interval, off)")
	_ = fs.Parse(args)
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *dataDir != "" && set["out"] {
		return fmt.Errorf("-out and -data-dir are mutually exclusive: gen writes either a snapshot file or a durable directory")
	}
	if *dataDir == "" && set["fsync"] {
		return fmt.Errorf("-fsync only applies with -data-dir")
	}
	if *dataDir != "" {
		policy, err := store.ParseSyncPolicy(*fsyncFlag)
		if err != nil {
			return err
		}
		stats, err := genload.PopulateDir(*dataDir, genload.FGCZJan2010.Scaled(*scale), policy)
		if err != nil {
			return err
		}
		fmt.Printf("generated durable deployment (scale %.3f) -> %s\n", *scale, *dataDir)
		fmt.Print(genload.StatsTable(stats))
		return nil
	}
	sys := core.MustNew(core.Options{DisableSearch: true, DisableAudit: true})
	p := genload.FGCZJan2010.Scaled(*scale)
	if err := genload.Generate(sys, p); err != nil {
		return err
	}
	if err := sys.Store.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("generated deployment (scale %.3f) -> %s\n", *scale, *out)
	fmt.Print(genload.StatsTable(sys.DB.CollectStats()))
	return nil
}

// cmdSnapshot forces a snapshot + WAL truncation on a data directory —
// the operator's compaction and pre-backup hook.
func cmdSnapshot(args []string) error {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	dataDir := fs.String("data-dir", "", "durable data directory")
	_ = fs.Parse(args)
	if *dataDir == "" {
		return fmt.Errorf("-data-dir is required")
	}
	s, err := store.Open(*dataDir, store.DurabilityOptions{Sync: store.SyncAlways, SnapshotEvery: -1})
	if err != nil {
		return err
	}
	if err := s.Snapshot(); err != nil {
		s.Close()
		return err
	}
	if err := s.Close(); err != nil {
		return err
	}
	info, err := store.InspectDir(*dataDir)
	if err != nil {
		return err
	}
	fmt.Printf("snapshot written: seq %d, %d bytes\n", info.SnapshotSeq, info.SnapshotSize)
	return nil
}

// cmdBackup copies a consistent, restorable backup of a data directory —
// snapshot plus WAL tail, verified before reporting success. It works
// against a live directory: the server may keep committing throughout.
// The backup opens like any data directory (store.Open, bfabric
// -data-dir) and carries no lock file.
func cmdBackup(args []string) error {
	fs := flag.NewFlagSet("backup", flag.ExitOnError)
	dataDir := fs.String("data-dir", "", "durable data directory to back up (may be live)")
	out := fs.String("out", "", "backup destination directory (must be empty or absent)")
	_ = fs.Parse(args)
	if *dataDir == "" || *out == "" {
		return fmt.Errorf("-data-dir and -out are required")
	}
	info, err := store.BackupDir(*dataDir, *out)
	if err != nil {
		return err
	}
	fmt.Printf("backup written: %s\n", *out)
	if info.HasSnapshot {
		fmt.Printf("snapshot: seq %d, %d bytes\n", info.SnapshotSeq, info.SnapshotSize)
	}
	fmt.Printf("%d WAL segment(s); restorable through commit %d\n", len(info.Segments), info.LastSeq)
	return nil
}

// cmdStatus reports health. With -addr it asks a running portal over HTTP
// — /healthz for liveness, /readyz for writability — printing the same
// health JSON the load balancer sees. With -data-dir it inspects the
// directory from the outside: whether a live process holds the lock (and
// which pid), and how far the on-disk state is recoverable.
func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	addr := fs.String("addr", "", "portal base URL of a running server (e.g. http://localhost:8077)")
	dataDir := fs.String("data-dir", "", "durable data directory to inspect")
	_ = fs.Parse(args)
	switch {
	case *addr != "" && *dataDir != "":
		return fmt.Errorf("-addr and -data-dir are mutually exclusive")
	case *addr != "":
		return statusHTTP(*addr)
	case *dataDir != "":
		return statusDir(*dataDir)
	default:
		return fmt.Errorf("one of -addr or -data-dir is required")
	}
}

func statusHTTP(base string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	probe := func(path string) (int, string, error) {
		resp, err := client.Get(strings.TrimRight(base, "/") + path)
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return resp.StatusCode, strings.TrimSpace(string(body)), nil
	}
	code, body, err := probe("/healthz")
	if err != nil {
		return fmt.Errorf("portal unreachable: %w", err)
	}
	fmt.Printf("live:  %d %s\n", code, body)
	code, body, err = probe("/readyz")
	if err != nil {
		return err
	}
	fmt.Printf("ready: %d %s\n", code, body)
	// Replication coordinates: every server answers /api/replication with
	// its role and fencing epoch; a follower adds lag and contact age so
	// the operator can judge whether promoting it would lose writes.
	rcode, rbody, rerr := probe("/api/replication")
	if rerr == nil && rcode == http.StatusOK {
		var rep struct {
			Role        string `json:"role"`
			Epoch       uint64 `json:"epoch"`
			CommitSeq   uint64 `json:"commitSeq"`
			Promoted    bool   `json:"promoted"`
			Replication *struct {
				Lag              uint64 `json:"lag"`
				LastContactAgeMS int64  `json:"lastContactAgeMs"`
				Connected        bool   `json:"connected"`
				Fenced           bool   `json:"fenced"`
			} `json:"replication"`
		}
		if json.Unmarshal([]byte(rbody), &rep) == nil && rep.Role != "" {
			fmt.Printf("role:  %s (epoch %d, commit %d)\n", rep.Role, rep.Epoch, rep.CommitSeq)
			if rep.Promoted {
				fmt.Println("       promoted from replica this process lifetime")
			}
			if f := rep.Replication; f != nil && rep.Role == "replica" {
				contact := "never"
				if f.LastContactAgeMS >= 0 {
					contact = fmt.Sprintf("%dms ago", f.LastContactAgeMS)
				}
				fmt.Printf("repl:  lag %d commit(s), primary heard %s, connected=%v fenced=%v\n",
					f.Lag, contact, f.Connected, f.Fenced)
			}
		}
	}
	if code != http.StatusOK {
		fmt.Println("store is DEGRADED or read-only: writes are rejected, reads still served; see docs/faults.md and docs/replication.md for the runbooks")
	}
	return nil
}

// cmdPromote turns a running read replica into a fenced primary over
// HTTP: it logs in (promotion is admin-only), POSTs the promote
// endpoint, and prints the new epoch and the committed prefix the new
// timeline starts from. The old primary, if it resurrects, is refused by
// the epoch fence and must resync via snapshot — see the failover
// runbook in docs/replication.md.
func cmdPromote(args []string) error {
	fs := flag.NewFlagSet("promote", flag.ExitOnError)
	addr := fs.String("addr", "", "portal base URL of the running replica (e.g. http://localhost:8177)")
	login := fs.String("login", "", "admin login")
	password := fs.String("password", "", "admin password")
	_ = fs.Parse(args)
	if *addr == "" || *login == "" || *password == "" {
		return fmt.Errorf("-addr, -login and -password are required")
	}
	base := strings.TrimRight(*addr, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	post := func(path, token string, payload, out any) (int, string, error) {
		var buf bytes.Buffer
		if payload != nil {
			if err := json.NewEncoder(&buf).Encode(payload); err != nil {
				return 0, "", err
			}
		}
		req, err := http.NewRequest(http.MethodPost, base+path, &buf)
		if err != nil {
			return 0, "", err
		}
		req.Header.Set("Content-Type", "application/json")
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if out != nil && resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, out); err != nil {
				return resp.StatusCode, string(body), err
			}
		}
		return resp.StatusCode, strings.TrimSpace(string(body)), nil
	}

	var loginOut struct {
		Token string `json:"token"`
	}
	code, body, err := post("/api/login", "", map[string]string{"login": *login, "password": *password}, &loginOut)
	if err != nil {
		return fmt.Errorf("login: %w", err)
	}
	if code != http.StatusOK || loginOut.Token == "" {
		return fmt.Errorf("login as %s failed: %d %s", *login, code, body)
	}

	var prom struct {
		Promotion struct {
			Epoch       uint64 `json:"epoch"`
			LastApplied uint64 `json:"lastApplied"`
		} `json:"promotion"`
		Epoch     uint64 `json:"epoch"`
		CommitSeq uint64 `json:"commitSeq"`
	}
	code, body, err = post("/api/replication/promote", loginOut.Token, nil, &prom)
	if err != nil {
		return fmt.Errorf("promote: %w", err)
	}
	switch code {
	case http.StatusOK:
		fmt.Printf("promoted: epoch %d, timeline starts at commit %d\n", prom.Epoch, prom.Promotion.LastApplied)
		fmt.Println("re-point surviving replicas at this node; the old primary must resync via snapshot if it returns")
		return nil
	case http.StatusNotFound:
		return fmt.Errorf("promote: %s is not a replica (no promote hook): %s", base, body)
	case http.StatusConflict:
		return fmt.Errorf("promote: already a primary: %s", body)
	default:
		return fmt.Errorf("promote failed: %d %s", code, body)
	}
}

func statusDir(dir string) error {
	if pid, inUse := store.DirInUse(dir); inUse {
		if pid > 0 {
			fmt.Printf("locked: data directory %s is in use by process %d\n", dir, pid)
		} else {
			fmt.Printf("locked: data directory %s is in use by another process\n", dir)
		}
		fmt.Println("use `bfabric-admin status -addr ...` to ask the running server; offline inspection below is read-only and safe")
	} else {
		fmt.Printf("unlocked: no process holds %s\n", dir)
	}
	return cmdWAL([]string{"-data-dir", dir})
}

// cmdWAL prints the on-disk durability state of a data directory without
// opening or mutating it.
func cmdWAL(args []string) error {
	fs := flag.NewFlagSet("wal", flag.ExitOnError)
	dataDir := fs.String("data-dir", "", "durable data directory")
	_ = fs.Parse(args)
	if *dataDir == "" {
		return fmt.Errorf("-data-dir is required")
	}
	info, err := store.InspectDir(*dataDir)
	if err != nil {
		return err
	}
	if info.HasSnapshot {
		fmt.Printf("snapshot: seq %-8d %10d bytes  %s\n",
			info.SnapshotSeq, info.SnapshotSize, info.SnapshotTime.Format("2006-01-02 15:04:05"))
	} else {
		fmt.Println("snapshot: none")
	}
	for _, seg := range info.Segments {
		state := "ok"
		if seg.Torn {
			state = "TORN TAIL"
		}
		fmt.Printf("segment:  base %-6d %10d bytes  %5d records (seq %d..%d)  %s\n",
			seg.Base, seg.Size, seg.Records, seg.FirstSeq, seg.LastSeq, state)
	}
	fmt.Printf("epoch:    %d\n", info.Epoch)
	if info.Damaged {
		fmt.Printf("DAMAGED: mid-history records are torn or missing; recovery will refuse this directory — restore from backup (intact prefix ends at commit %d)\n", info.LastSeq)
		return nil
	}
	fmt.Printf("recoverable through commit %d\n", info.LastSeq)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "deploy.gob", "snapshot path")
	_ = fs.Parse(args)
	sys, err := openSystem(*in)
	if err != nil {
		return err
	}
	fmt.Print(genload.StatsTable(sys.DB.CollectStats()))
	return nil
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	in := fs.String("in", "deploy.gob", "snapshot path")
	kind := fs.String("kind", "sample", "entity kind")
	limit := fs.Int("limit", 20, "max rows")
	_ = fs.Parse(args)
	sys, err := openSystem(*in)
	if err != nil {
		return err
	}
	n := 0
	return sys.View(func(tx *store.Tx) error {
		return tx.Scan(*kind, func(r store.Record) bool {
			name := r.String("name")
			if name == "" {
				name = r.String("value")
			}
			fmt.Printf("%6d  %s\n", r.ID(), name)
			n++
			return n < *limit
		})
	})
}

func cmdPending(args []string) error {
	fs := flag.NewFlagSet("pending", flag.ExitOnError)
	in := fs.String("in", "deploy.gob", "snapshot path")
	_ = fs.Parse(args)
	sys, err := openSystem(*in)
	if err != nil {
		return err
	}
	return sys.View(func(tx *store.Tx) error {
		pend, err := sys.Vocab.Pending(tx)
		if err != nil {
			return err
		}
		if len(pend) == 0 {
			fmt.Println("no pending annotations")
			return nil
		}
		recs, err := sys.Vocab.Recommendations(tx)
		if err != nil {
			return err
		}
		for _, t := range pend {
			fmt.Printf("%6d  %-20s %-24s by %s\n", t.ID, t.Vocabulary, t.Value, t.CreatedBy)
			for _, c := range recs[t.ID] {
				fmt.Printf("        similar to %d %q (score %.3f) — consider merge\n",
					c.Term.ID, c.Term.Value, c.Score)
			}
		}
		return nil
	})
}

func cmdRelease(args []string) error {
	fs := flag.NewFlagSet("release", flag.ExitOnError)
	in := fs.String("in", "deploy.gob", "snapshot path")
	out := fs.String("out", "", "output snapshot (default: overwrite input)")
	id := fs.Int64("id", 0, "annotation id")
	actor := fs.String("actor", "admin", "reviewing expert login")
	_ = fs.Parse(args)
	sys, err := openSystem(*in)
	if err != nil {
		return err
	}
	if err := sys.Update(func(tx *store.Tx) error {
		return sys.Vocab.Release(tx, *actor, *id)
	}); err != nil {
		return err
	}
	fmt.Printf("released annotation %d\n", *id)
	return persist(sys, *in, *out)
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	in := fs.String("in", "deploy.gob", "snapshot path")
	out := fs.String("out", "", "output snapshot (default: overwrite input)")
	keep := fs.Int64("keep", 0, "annotation id to keep")
	drop := fs.Int64("drop", 0, "annotation id to drop")
	newValue := fs.String("value", "", "optional new spelling for the merged term")
	actor := fs.String("actor", "admin", "merging expert login")
	_ = fs.Parse(args)
	sys, err := openSystem(*in)
	if err != nil {
		return err
	}
	if err := sys.Update(func(tx *store.Tx) error {
		res, err := sys.Vocab.Merge(tx, *actor, *keep, *drop, *newValue)
		if err != nil {
			return err
		}
		fmt.Printf("merged into %q; re-associated: %v\n", res.Winner.Value, res.Reassociated)
		return nil
	}); err != nil {
		return err
	}
	return persist(sys, *in, *out)
}

func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	in := fs.String("in", "deploy.gob", "snapshot path")
	actor := fs.String("actor", "", "filter by actor login")
	n := fs.Int("n", 20, "max entries")
	_ = fs.Parse(args)
	sys, err := openSystem(*in)
	if err != nil {
		return err
	}
	return sys.View(func(tx *store.Tx) error {
		entries, err := sys.Audit.Recent(tx, *n)
		if err != nil {
			return err
		}
		if *actor != "" {
			entries, err = sys.Audit.ByActor(tx, *actor)
			if err != nil {
				return err
			}
			if len(entries) > *n {
				entries = entries[len(entries)-*n:]
			}
		}
		for _, e := range entries {
			fmt.Printf("seq=%-6d %-24s %s/%d by %s\n", e.Seq, e.Topic, e.Kind, e.Ref, e.Actor)
		}
		return nil
	})
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	in := fs.String("in", "deploy.gob", "snapshot path")
	kind := fs.String("kind", "sample", "entity kind")
	limit := fs.Int("limit", 1000, "max rows")
	_ = fs.Parse(args)
	s, err := openStore(*in)
	if err != nil {
		return err
	}
	sys, err := core.NewWithStore(s, core.Options{DisableAudit: true})
	if err != nil {
		return err
	}
	var ids []int64
	if err := sys.View(func(tx *store.Tx) error {
		return tx.Scan(*kind, func(r store.Record) bool {
			ids = append(ids, r.ID())
			return len(ids) < *limit
		})
	}); err != nil {
		return err
	}
	return sys.Search.ExportRecordsCSV(os.Stdout, *kind, ids)
}

// cmdExportProject writes a self-contained project archive.
func cmdExportProject(args []string) error {
	fs := flag.NewFlagSet("export-project", flag.ExitOnError)
	in := fs.String("in", "deploy.gob", "snapshot path")
	project := fs.Int64("project", 0, "project id to export")
	out := fs.String("out", "project.zip", "archive output path")
	_ = fs.Parse(args)
	sys, err := openSystem(*in)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := exchange.Export(sys, *project, f); err != nil {
		f.Close()
		os.Remove(*out)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("exported project %d -> %s\n", *project, *out)
	return nil
}

// cmdImportProject ingests a project archive into a snapshot.
func cmdImportProject(args []string) error {
	fs := flag.NewFlagSet("import-project", flag.ExitOnError)
	in := fs.String("in", "deploy.gob", "snapshot path")
	archive := fs.String("archive", "project.zip", "archive to import")
	out := fs.String("out", "", "output snapshot (default: overwrite input)")
	actor := fs.String("actor", "admin", "importing login")
	_ = fs.Parse(args)
	sys, err := openSystem(*in)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*archive)
	if err != nil {
		return err
	}
	res, err := exchange.Import(sys, data, *actor)
	if err != nil {
		return err
	}
	fmt.Printf("imported project %d: %d samples, %d extracts, %d workunits, %d resources, %d experiments (%d terms added, %d payloads)\n",
		res.Project, res.Samples, res.Extracts, res.Workunits, res.Resources,
		res.Experiments, res.TermsAdded, res.PayloadsStored)
	return persist(sys, *in, *out)
}
