// Command bfabric-bench regenerates the paper's artifacts: the FGCZ
// deployment-statistics table (T1) and a demonstration transcript for each
// behavioural figure (F1–F16) plus the full-text-search and audit
// features. It is the human-readable companion of the testing.B benchmarks
// in the repository root.
//
// Usage:
//
//	bfabric-bench -artifact T1          # one artifact
//	bfabric-bench -artifact all         # everything
//	bfabric-bench -artifact T1 -scale 0.1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/genload"
	"repro/internal/importer"
	"repro/internal/model"
	"repro/internal/provider"
	"repro/internal/store"
	"repro/internal/vocab"
)

func main() {
	artifact := flag.String("artifact", "all", "artifact id (T1, F1, F2, ..., F16, S-FT, S-AU or all)")
	scale := flag.Float64("scale", 1.0, "population scale for T1 (1.0 = full FGCZ size)")
	flag.Parse()

	artifacts := map[string]func(float64) error{
		"T1":   runT1,
		"F1":   runF1,
		"F2":   runF2toF3,
		"F3":   runF2toF3,
		"F4":   runF4toF8,
		"F5":   runF4toF8,
		"F6":   runF4toF8,
		"F7":   runF4toF8,
		"F8":   runF4toF8,
		"F9":   runF9toF11,
		"F10":  runF9toF11,
		"F11":  runF9toF11,
		"F12":  runF12toF16,
		"F13":  runF12toF16,
		"F14":  runF12toF16,
		"F15":  runF12toF16,
		"F16":  runF12toF16,
		"S-FT": runSearchFeature,
		"S-AU": runAuditFeature,
	}

	if *artifact == "all" {
		// Deduplicate grouped runners while keeping a stable order.
		order := []string{"T1", "F1", "F2", "F4", "F9", "F12", "S-FT", "S-AU"}
		for _, id := range order {
			fmt.Printf("\n================ artifact %s ================\n", id)
			if err := artifacts[id](*scale); err != nil {
				log.Fatalf("artifact %s: %v", id, err)
			}
		}
		return
	}
	run, ok := artifacts[*artifact]
	if !ok {
		known := make([]string, 0, len(artifacts))
		for id := range artifacts {
			known = append(known, id)
		}
		sort.Strings(known)
		fmt.Fprintf(os.Stderr, "unknown artifact %q; known: %s\n", *artifact, strings.Join(known, " "))
		os.Exit(2)
	}
	if err := run(*scale); err != nil {
		log.Fatalf("artifact %s: %v", *artifact, err)
	}
}

// runT1 reproduces the deployment statistics table.
func runT1(scale float64) error {
	fmt.Println("T1: FGCZ deployment statistics (January 2010)")
	p := genload.FGCZJan2010
	if scale != 1.0 {
		p = p.Scaled(scale)
		fmt.Printf("(scaled by %.3f)\n", scale)
	}
	sys := core.MustNew(core.Options{DisableSearch: true, DisableAudit: true})
	start := time.Now()
	if err := genload.Generate(sys, p); err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Println("\npaper reports:")
	fmt.Print(genload.StatsTable(model.Stats{
		Users: 1555, Projects: 750, Institutes: 224, Organizations: 59,
		Samples: 3151, Extracts: 3642, DataResources: 40005, Workunits: 23979,
	}))
	fmt.Println("\nthis reproduction measures:")
	fmt.Print(genload.StatsTable(sys.DB.CollectStats()))
	fmt.Printf("\ngenerated in %v\n", elapsed.Round(time.Millisecond))
	return nil
}

// runF1 prints the metadata schema of Figure 1.
func runF1(float64) error {
	fmt.Println("F1: core metadata schema (Figure 1)")
	sys := core.MustNew(core.Options{DisableSearch: true, DisableAudit: true})
	for _, kindName := range sys.Registry.Kinds() {
		k := sys.Registry.Kind(kindName)
		fmt.Printf("\n%s\n", kindName)
		for _, f := range k.Fields {
			line := fmt.Sprintf("  %-18s %s", f.Name, f.Type)
			if f.RefKind != "" {
				line += " -> " + f.RefKind
			}
			if f.Vocabulary != "" {
				line += " [vocabulary: " + f.Vocabulary + "]"
			}
			if f.Required {
				line += " (required)"
			}
			fmt.Println(line)
		}
	}
	return nil
}

// demoSystem builds the common scenario fixture.
func demoSystem() (*core.System, int64, error) {
	sys := core.MustNew(core.Options{})
	samples := []string{"AT-1-control", "AT-2-control", "AT-1-treated", "AT-2-treated"}
	gp, gpStore := provider.NewAffymetrixGeneChip("genechip", samples)
	sys.Storage.Mount(gpStore)
	if err := sys.Providers.Register(gp); err != nil {
		return nil, 0, err
	}
	var project int64
	err := sys.Update(func(tx *store.Tx) error {
		alice, err := sys.DB.CreateUser(tx, "bench", model.User{Login: "alice", Role: model.RoleScientist, Active: true})
		if err != nil {
			return err
		}
		project, err = sys.DB.CreateProject(tx, "bench", model.Project{Name: "p1000", Members: []int64{alice}})
		return err
	})
	return sys, project, err
}

// runF2toF3 demonstrates sample/extract registration with cloning and
// batches.
func runF2toF3(float64) error {
	fmt.Println("F2-F3: register sample and extract (cloning + batch)")
	sys, project, err := demoSystem()
	if err != nil {
		return err
	}
	return sys.Update(func(tx *store.Tx) error {
		if _, err := sys.Vocab.AddTerm(tx, "alice", model.VocabSpecies, "Arabidopsis thaliana", true); err != nil {
			return err
		}
		sid, err := sys.DB.CreateSample(tx, "alice", model.Sample{
			Name: "AT-pool", Project: project, Species: "Arabidopsis thaliana",
		})
		if err != nil {
			return err
		}
		fmt.Printf("registered sample %d\n", sid)
		clone, err := sys.DB.CloneSample(tx, "alice", sid, "AT-pool-copy")
		if err != nil {
			return err
		}
		fmt.Printf("cloned to sample %d\n", clone)
		ids, err := sys.DB.BatchCreateSamples(tx, "alice", model.Sample{
			Name: "tpl", Project: project, Species: "Arabidopsis thaliana",
		}, "AT-batch", 10)
		if err != nil {
			return err
		}
		fmt.Printf("batch-registered %d samples (%s..%s)\n", len(ids), "AT-batch_1", "AT-batch_10")
		eids, err := sys.DB.BatchCreateExtracts(tx, "alice", model.Extract{
			Name: "tpl", Sample: sid,
		}, "AT-extract", 5)
		if err != nil {
			return err
		}
		fmt.Printf("batch-registered %d extracts\n", len(eids))
		return nil
	})
}

// runF4toF8 demonstrates the annotation lifecycle: pending creation, task
// generation, similarity detection, merge and re-association.
func runF4toF8(float64) error {
	fmt.Println("F4-F8: annotation review, similarity detection, merge, tasks")
	sys, project, err := demoSystem()
	if err != nil {
		return err
	}
	var keep, drop vocab.Term
	if err := sys.Update(func(tx *store.Tx) error {
		keep, err = sys.Vocab.AddTerm(tx, "alice", model.VocabDiseaseState, "Hopeless", false)
		if err != nil {
			return err
		}
		if _, err := sys.DB.CreateSample(tx, "alice", model.Sample{
			Name: "s-correct", Project: project, DiseaseState: "Hopeless",
		}); err != nil {
			return err
		}
		drop, err = sys.Vocab.AddTerm(tx, "bob", model.VocabDiseaseState, "Hopeles", false)
		if err != nil {
			return err
		}
		_, err = sys.DB.CreateSample(tx, "bob", model.Sample{
			Name: "s-misspelled", Project: project, DiseaseState: "Hopeles",
		})
		return err
	}); err != nil {
		return err
	}
	if err := sys.View(func(tx *store.Tx) error {
		open, err := sys.Tasks.ListOpen(tx, "", "expert")
		if err != nil {
			return err
		}
		fmt.Printf("expert task list (Figure 8): %d open task(s)\n", len(open))
		for _, t := range open {
			fmt.Printf("  - %s\n", t.Title)
		}
		cands, err := sys.Vocab.Similar(tx, model.VocabDiseaseState, "Hopeles")
		if err != nil {
			return err
		}
		for _, c := range cands {
			fmt.Printf("similarity detector (Figure 5): %q ~ %q score %.3f\n",
				"Hopeles", c.Term.Value, c.Score)
		}
		return nil
	}); err != nil {
		return err
	}
	return sys.Update(func(tx *store.Tx) error {
		res, err := sys.Vocab.Merge(tx, "eva", keep.ID, drop.ID, "")
		if err != nil {
			return err
		}
		fmt.Printf("merged %q into %q (Figures 6-7); re-associated: %v\n",
			drop.Value, res.Winner.Value, res.Reassociated)
		n, err := sys.Tasks.CountOpen(tx)
		if err != nil {
			return err
		}
		fmt.Printf("open tasks after merge: %d\n", n)
		return nil
	})
}

// runF9toF11 demonstrates the import flow.
func runF9toF11(float64) error {
	fmt.Println("F9-F11: instrument import, workflow, best-match assignment")
	sys, project, err := demoSystem()
	if err != nil {
		return err
	}
	var res importer.Result
	if err := sys.Update(func(tx *store.Tx) error {
		sid, err := sys.DB.CreateSample(tx, "alice", model.Sample{Name: "AT", Project: project})
		if err != nil {
			return err
		}
		for _, name := range []string{"AT-1-control", "AT-2-control", "AT-1-treated", "AT-2-treated"} {
			if _, err := sys.DB.CreateExtract(tx, "alice", model.Extract{Name: name, Sample: sid}); err != nil {
				return err
			}
		}
		res, err = sys.Importer.Import(tx, importer.Request{
			Provider: "genechip", Mode: importer.Copy, WorkunitName: "GeneChip import",
			Project: project, Actor: "alice",
		})
		if err != nil {
			return err
		}
		fmt.Printf("imported %d files into workunit %d (Figure 9)\n", len(res.Resources), res.Workunit)
		matches, err := sys.Importer.BestMatches(tx, res.Workunit)
		if err != nil {
			return err
		}
		fmt.Println("best matches (Figure 11):")
		for _, m := range matches {
			r, _ := sys.DB.GetDataResource(tx, m.Resource)
			e, _ := sys.DB.GetExtract(tx, m.Extract)
			fmt.Printf("  %-20s -> %-16s score %.3f\n", r.Name, e.Name, m.Score)
		}
		if err := sys.Importer.ApplyMatches(tx, "alice", matches); err != nil {
			return err
		}
		return sys.Importer.CompleteImport(tx, "alice", res.WorkflowInstance)
	}); err != nil {
		return err
	}
	return sys.View(func(tx *store.Tx) error {
		inst, err := sys.Workflows.Get(tx, res.WorkflowInstance)
		if err != nil {
			return err
		}
		def := sys.Workflows.Definition(inst.Definition)
		fmt.Printf("\nimport workflow (Figure 10, DOT):\n%s", def.DOT(inst.Step))
		wu, _ := sys.DB.GetWorkunit(tx, res.Workunit)
		fmt.Printf("workunit state: %s\n", wu.State)
		return nil
	})
}

// runF12toF16 demonstrates application registration and the experiment run.
func runF12toF16(float64) error {
	fmt.Println("F12-F16: application registration, experiment definition and run")
	sys, project, err := demoSystem()
	if err != nil {
		return err
	}
	var appID, expID int64
	var imp importer.Result
	if err := sys.Update(func(tx *store.Tx) error {
		appID, err = sys.DB.CreateApplication(tx, "admin", model.Application{
			Name: "two group analysis", Connector: "rserve", Program: "twogroup.R",
			InputSpec: []string{"resources"}, ParamSpec: []string{"reference_group"},
			Active: true,
		})
		if err != nil {
			return err
		}
		fmt.Printf("registered application %d via rserve connector (Figure 12)\n", appID)
		imp, err = sys.Importer.Import(tx, importer.Request{
			Provider: "genechip", Mode: importer.Copy, WorkunitName: "arrays",
			Project: project, Actor: "alice",
		})
		if err != nil {
			return err
		}
		expID, err = sys.DB.CreateExperiment(tx, "alice", model.Experiment{
			Name: "AT light effect", Project: project, Resources: imp.Resources,
			Attributes: map[string]string{"species": "Arabidopsis thaliana", "treatment": "light"},
		})
		if err != nil {
			return err
		}
		fmt.Printf("defined experiment %d over %d resources (Figure 13)\n", expID, len(imp.Resources))
		return nil
	}); err != nil {
		return err
	}
	var run apps.RunResult
	if err := sys.Update(func(tx *store.Tx) error {
		run, err = sys.Executor.RunExperiment(tx, apps.RunRequest{
			Experiment: expID, Application: appID, WorkunitName: "AT results",
			Params: map[string]string{"reference_group": "control"}, Actor: "alice",
		})
		return err
	}); err != nil {
		return err
	}
	if run.Failed {
		return fmt.Errorf("experiment failed: %s", run.Error)
	}
	return sys.View(func(tx *store.Tx) error {
		wu, err := sys.DB.GetWorkunit(tx, run.Workunit)
		if err != nil {
			return err
		}
		fmt.Printf("experiment ran (Figure 14); result workunit %d state=%s (Figures 15-16)\n",
			run.Workunit, wu.State)
		rs, _ := sys.DB.ResourcesOfWorkunit(tx, run.Workunit)
		for _, r := range rs {
			role := "output"
			if r.IsInput {
				role = "input"
			}
			fmt.Printf("  %-6s %-16s %6d bytes %s\n", role, r.Name, r.SizeBytes, r.Format)
			if r.Name == "results.zip" {
				data, err := sys.Storage.Open(r.URI)
				if err != nil {
					return err
				}
				names, err := apps.ReadZip(data)
				if err != nil {
					return err
				}
				fmt.Printf("         zip contents: %v\n", names)
			}
		}
		return nil
	})
}

// runSearchFeature demonstrates full-text search.
func runSearchFeature(float64) error {
	fmt.Println("S-FT: full-text search (quick, advanced, history, saved, export)")
	sys, project, err := demoSystem()
	if err != nil {
		return err
	}
	if err := sys.Update(func(tx *store.Tx) error {
		for i, treatment := range []string{"light", "dark", "light"} {
			if _, err := sys.DB.CreateSample(tx, "alice", model.Sample{
				Name: fmt.Sprintf("AT-%d-%s", i+1, treatment), Project: project,
				Species: "Arabidopsis thaliana", Treatment: treatment,
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	for _, q := range []string{"arabidopsis", "treatment:light", "kind:sample light OR dark"} {
		hits, err := sys.Search.Search("alice", q)
		if err != nil {
			return err
		}
		fmt.Printf("query %-32q -> %d hit(s)\n", q, len(hits))
	}
	fmt.Printf("history: %v\n", sys.Search.History("alice"))
	var qid int64
	if err := sys.Update(func(tx *store.Tx) error {
		qid, err = sys.Search.SaveQuery(tx, "alice", "my lights", "treatment:light")
		return err
	}); err != nil {
		return err
	}
	hits, err := sys.Search.RunSaved("alice", qid)
	if err != nil {
		return err
	}
	fmt.Printf("saved query re-run -> %d hit(s)\n", len(hits))
	fmt.Println("CSV export:")
	return sys.Search.ExportCSV(os.Stdout, hits)
}

// runAuditFeature demonstrates the manipulation log.
func runAuditFeature(float64) error {
	fmt.Println("S-AU: audit log of create/update/delete operations")
	sys, project, err := demoSystem()
	if err != nil {
		return err
	}
	var sid int64
	if err := sys.Update(func(tx *store.Tx) error {
		sid, err = sys.DB.CreateSample(tx, "alice", model.Sample{Name: "audited", Project: project})
		return err
	}); err != nil {
		return err
	}
	if err := sys.Update(func(tx *store.Tx) error {
		return sys.DB.UpdateSample(tx, "alice", sid, map[string]any{"description": "updated"})
	}); err != nil {
		return err
	}
	return sys.View(func(tx *store.Tx) error {
		es, err := sys.Audit.ByObject(tx, model.KindSample, sid)
		if err != nil {
			return err
		}
		for _, e := range es {
			fmt.Printf("seq=%d %-16s actor=%-8s fields=%v\n", e.Seq, e.Topic, e.Actor, e.Fields)
		}
		return nil
	})
}
