// Command bfabric runs the B-Fabric web portal. It wires a complete
// in-memory system, optionally seeds a demo deployment (instrument
// providers, users, vocabularies) and serves the portal over HTTP.
//
// Usage:
//
//	bfabric [-addr :8077] [-seed]
//
// With -seed the server starts with the demo fixture of the paper's
// Section 2: users alice (scientist), eva (expert) and root (admin), all
// with password "demo", project p1000, a simulated Affymetrix GeneChip
// provider, and the two-group-analysis application registered.
package main

import (
	"flag"
	"log"
	"net/http"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/portal"
	"repro/internal/provider"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	seed := flag.Bool("seed", false, "seed the demo deployment")
	flag.Parse()

	sys, err := core.New(core.Options{})
	if err != nil {
		log.Fatalf("bfabric: wiring system: %v", err)
	}
	if *seed {
		if err := seedDemo(sys); err != nil {
			log.Fatalf("bfabric: seeding demo data: %v", err)
		}
		log.Printf("seeded demo deployment: logins alice/eva/root, password %q", "demo")
	}

	srv := portal.New(sys)
	log.Printf("B-Fabric portal listening on %s", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatal(err)
	}
}

// seedDemo builds the Section 2 starting state.
func seedDemo(sys *core.System) error {
	samples := []string{"AT-1-control", "AT-2-control", "AT-1-treated", "AT-2-treated"}
	gp, gpStore := provider.NewAffymetrixGeneChip("genechip", samples)
	sys.Storage.Mount(gpStore)
	if err := sys.Providers.Register(gp); err != nil {
		return err
	}
	ms, msStore := provider.NewMassSpec("ltqft", []string{"MS-run-1", "MS-run-2"}, 200)
	sys.Storage.Mount(msStore)
	if err := sys.Providers.Register(ms); err != nil {
		return err
	}
	return sys.Update(func(tx *store.Tx) error {
		org, err := sys.DB.CreateOrganization(tx, "seed", model.Organization{Name: "University of Zurich", Country: "CH"})
		if err != nil {
			return err
		}
		inst, err := sys.DB.CreateInstitute(tx, "seed", model.Institute{Name: "FGCZ", Organization: org})
		if err != nil {
			return err
		}
		users := []model.User{
			{Login: "alice", FullName: "Alice Scientist", Role: model.RoleScientist, Institute: inst, Active: true},
			{Login: "eva", FullName: "Eva Expert", Role: model.RoleExpert, Institute: inst, Active: true},
			{Login: "root", FullName: "Root Admin", Role: model.RoleAdmin, Institute: inst, Active: true},
		}
		var alice int64
		for _, u := range users {
			id, err := sys.DB.CreateUser(tx, "seed", u)
			if err != nil {
				return err
			}
			if u.Login == "alice" {
				alice = id
			}
			if err := sys.Auth.SetPassword(tx, u.Login, "demo"); err != nil {
				return err
			}
		}
		if _, err := sys.DB.CreateProject(tx, "seed", model.Project{
			Name: "p1000", Description: "Arabidopsis thaliana light response",
			Members: []int64{alice}, Institute: inst, Area: "genomics",
		}); err != nil {
			return err
		}
		for vocabName, terms := range map[string][]string{
			model.VocabSpecies:          {"Arabidopsis thaliana", "Homo sapiens", "Mus musculus"},
			model.VocabTissue:           {"Leaf", "Root"},
			model.VocabTreatment:        {"Light", "Dark"},
			model.VocabExtractionMethod: {"TRIzol"},
		} {
			for _, term := range terms {
				if _, err := sys.Vocab.AddTerm(tx, "seed", vocabName, term, true); err != nil {
					return err
				}
			}
		}
		if _, err := sys.DB.CreateApplication(tx, "seed", model.Application{
			Name: "two group analysis", Description: "Differential expression between two groups",
			Connector: "rserve", Program: "twogroup.R",
			InputSpec: []string{"resources"}, ParamSpec: []string{"reference_group"},
			Active: true,
		}); err != nil {
			return err
		}
		_, err = sys.DB.CreateApplication(tx, "seed", model.Application{
			Name: "array QC", Description: "Per-array quality control",
			Connector: "rserve", Program: "qc.R",
			InputSpec: []string{"resources"}, Active: true,
		})
		return err
	})
}
