// Command bfabric runs the B-Fabric web portal. It wires a complete
// system, optionally seeds a demo deployment (instrument providers,
// users, vocabularies) and serves the portal over HTTP.
//
// Usage:
//
//	bfabric [-addr :8077] [-seed] [-data-dir DIR] [-fsync always|interval|off]
//	        [-sync-every 25ms] [-snapshot-every BYTES]
//	        [-replicate-listen :8078] [-replicate-from HOST:8078]
//	        [-http-header-timeout 5s] [-http-read-timeout 30s]
//	        [-http-write-timeout 60s] [-http-idle-timeout 2m]
//	        [-request-timeout 30s] [-max-in-flight 256]
//
// Without -data-dir the system is volatile: everything lives in memory
// and dies with the process. With -data-dir every committed transaction
// is written ahead to a log in that directory before the commit is
// acknowledged, and restarting the server recovers the full committed
// state — including after a kill -9. See docs/operations.md for the
// durability policies and the data-dir layout.
//
// With -seed the server starts with the demo fixture of the paper's
// Section 2: users alice (scientist), eva (expert) and root (admin), all
// with password "demo", project p1000, a simulated Affymetrix GeneChip
// provider, and the two-group-analysis application registered. Seeding is
// skipped when the data directory already contains users, so restarting a
// seeded durable server does not duplicate the fixture.
//
// With -replicate-listen the server additionally ships its committed WAL
// frames to read replicas. With -replicate-from the server IS a read
// replica: it follows the given primary, serves reads from its own
// replicated state, and answers every write with 503 + Retry-After (the
// same envelope a degraded primary uses). Both flags together make a
// relay: a replica that re-ships to further replicas. See
// docs/replication.md.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/portal"
	"repro/internal/provider"
	"repro/internal/repl"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	seed := flag.Bool("seed", false, "seed the demo deployment")
	dataDir := flag.String("data-dir", "", "durable data directory (empty = in-memory only)")
	fsync := flag.String("fsync", "always", "WAL sync policy: always, interval or off")
	syncEvery := flag.Duration("sync-every", 25*time.Millisecond, "background fsync period for -fsync interval")
	snapshotEvery := flag.Int64("snapshot-every", 0, "WAL bytes that trigger a background snapshot+truncate (0 = 64 MiB default, negative disables)")
	headerTimeout := flag.Duration("http-header-timeout", 5*time.Second, "max time to read a request's headers")
	readTimeout := flag.Duration("http-read-timeout", 30*time.Second, "max time to read a full request, body included")
	writeTimeout := flag.Duration("http-write-timeout", 60*time.Second, "max time to write a response (covers large downloads)")
	idleTimeout := flag.Duration("http-idle-timeout", 2*time.Minute, "keep-alive idle connection timeout")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request handler deadline (0 disables)")
	maxInFlight := flag.Int("max-in-flight", 256, "max concurrently served requests before 503 (0 disables the gate)")
	replListen := flag.String("replicate-listen", "", "address to ship committed WAL frames from (primary side; empty = off)")
	replFrom := flag.String("replicate-from", "", "primary replication address to follow (makes this server a read-only replica)")
	flag.Parse()

	if *replFrom != "" && *seed {
		log.Fatalf("bfabric: -seed and -replicate-from are mutually exclusive: a replica takes all state from its primary")
	}

	opts := core.Options{}
	if *dataDir != "" {
		policy, err := store.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("bfabric: %v", err)
		}
		opts.DataDir = *dataDir
		opts.Sync = policy
		opts.SyncEvery = *syncEvery
		opts.SnapshotEvery = *snapshotEvery
		opts.OnStoreError = func(err error) { log.Printf("bfabric: durability: %v", err) }
	}

	sys, err := core.New(opts)
	if err != nil {
		log.Fatalf("bfabric: wiring system: %v", err)
	}
	if *dataDir != "" {
		if info, ok := sys.Store.WALInfo(); ok {
			log.Printf("durable store at %s (fsync=%s), recovered through commit %d",
				*dataDir, info.Policy, info.LastSeq)
		}
	}
	if *seed {
		// Providers and their storage mounts live in process memory, so
		// they are registered on every start; only the store-writing half
		// of the fixture is skipped once the data dir carries it.
		if err := registerDemoProviders(sys); err != nil {
			log.Fatalf("bfabric: registering demo providers: %v", err)
		}
		if sys.Store.Count(model.KindUser) > 0 {
			log.Printf("data dir already seeded; skipping demo data")
		} else {
			if err := seedDemoData(sys); err != nil {
				log.Fatalf("bfabric: seeding demo data: %v", err)
			}
			log.Printf("seeded demo deployment: logins alice/eva/root, password %q", "demo")
		}
	}

	// Replication wiring. A replica flips the store read-only BEFORE the
	// portal starts serving, so no local write can ever interleave with
	// the stream; schema is already registered (identically on primary and
	// replica) by the core wiring above, which is not write-gated.
	var follower *repl.Follower
	if *replFrom != "" {
		sys.Store.SetReplica(true)
		follower = repl.NewFollower(sys.Store, *replFrom, repl.FollowerOptions{Logf: log.Printf})
		follower.Start()
		log.Printf("read replica following %s", *replFrom)
	}
	var shipper *repl.Server
	if *replListen != "" {
		shipper = repl.NewServer(sys.Store)
		shipper.Logf = log.Printf
		bound, err := shipper.Start(*replListen)
		if err != nil {
			log.Fatalf("bfabric: replication listener: %v", err)
		}
		log.Printf("shipping WAL frames to replicas on %s", bound)
	}

	// Flag semantics: 0 disables. The portal config uses negative for
	// "explicitly off" (its zero value means "default"), so translate.
	cfg := portal.Config{RequestTimeout: *requestTimeout, MaxInFlight: *maxInFlight}
	if follower != nil {
		f := follower
		cfg.ReplicaStatus = func() any { return f.Report() }
		// Failover: POST /api/replication/promote (admin only) turns this
		// replica into a fenced primary. The epoch bump happens inside
		// Promote, durably, before the write gate opens; disconnecting the
		// shipper's followers (if this node relays) makes them re-handshake
		// and adopt the new epoch immediately.
		cfg.Promote = func() (any, error) {
			prom, err := f.Promote()
			if err != nil {
				return nil, err
			}
			if shipper != nil {
				shipper.Disconnect()
			}
			if sys.Search != nil {
				// The replica's search index was empty by design (it applies
				// raw WAL frames, not write-path events). Now that this node
				// serves as primary, rebuild it from the replicated state.
				sys.Search.ReindexAll()
			}
			log.Printf("promoted to primary: epoch %d, timeline starts at seq %d", prom.Epoch, prom.LastApplied)
			return prom, nil
		}
	}
	if *requestTimeout == 0 {
		cfg.RequestTimeout = -1
	}
	if *maxInFlight == 0 {
		cfg.MaxInFlight = -1
	}
	// The server-level timeouts defend the connection (slow-loris headers,
	// dead peers, stalled downloads); the portal's per-request deadline
	// defends the handlers. Both layers are needed: the former cannot
	// cancel a handler, the latter cannot close a stuck TCP read.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           portal.NewWithConfig(sys, cfg),
		ReadHeaderTimeout: *headerTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	// On SIGINT/SIGTERM: drain in-flight HTTP requests, then close the
	// store (final WAL fsync). kill -9 is recovered on the next start.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-sigs
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("bfabric: draining connections: %v", err)
		}
	}()

	log.Printf("B-Fabric portal listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	// ListenAndServe returns as soon as Shutdown is *called*; wait for the
	// drain to finish before closing the store underneath the handlers.
	<-drained
	if shipper != nil {
		shipper.Close()
	}
	if follower != nil {
		follower.Close()
	}
	if err := sys.Close(); err != nil {
		log.Fatalf("bfabric: shutdown: %v", err)
	}
	log.Printf("bfabric: clean shutdown")
}

// registerDemoProviders mounts the Section 2 instrument simulators. This
// state is process-local and must be rebuilt on every start.
func registerDemoProviders(sys *core.System) error {
	samples := []string{"AT-1-control", "AT-2-control", "AT-1-treated", "AT-2-treated"}
	gp, gpStore := provider.NewAffymetrixGeneChip("genechip", samples)
	sys.Storage.Mount(gpStore)
	if err := sys.Providers.Register(gp); err != nil {
		return err
	}
	ms, msStore := provider.NewMassSpec("ltqft", []string{"MS-run-1", "MS-run-2"}, 200)
	sys.Storage.Mount(msStore)
	return sys.Providers.Register(ms)
}

// seedDemoData writes the Section 2 starting state into the store.
func seedDemoData(sys *core.System) error {
	return sys.Update(func(tx *store.Tx) error {
		org, err := sys.DB.CreateOrganization(tx, "seed", model.Organization{Name: "University of Zurich", Country: "CH"})
		if err != nil {
			return err
		}
		inst, err := sys.DB.CreateInstitute(tx, "seed", model.Institute{Name: "FGCZ", Organization: org})
		if err != nil {
			return err
		}
		users := []model.User{
			{Login: "alice", FullName: "Alice Scientist", Role: model.RoleScientist, Institute: inst, Active: true},
			{Login: "eva", FullName: "Eva Expert", Role: model.RoleExpert, Institute: inst, Active: true},
			{Login: "root", FullName: "Root Admin", Role: model.RoleAdmin, Institute: inst, Active: true},
		}
		var alice int64
		for _, u := range users {
			id, err := sys.DB.CreateUser(tx, "seed", u)
			if err != nil {
				return err
			}
			if u.Login == "alice" {
				alice = id
			}
			if err := sys.Auth.SetPassword(tx, u.Login, "demo"); err != nil {
				return err
			}
		}
		if _, err := sys.DB.CreateProject(tx, "seed", model.Project{
			Name: "p1000", Description: "Arabidopsis thaliana light response",
			Members: []int64{alice}, Institute: inst, Area: "genomics",
		}); err != nil {
			return err
		}
		for vocabName, terms := range map[string][]string{
			model.VocabSpecies:          {"Arabidopsis thaliana", "Homo sapiens", "Mus musculus"},
			model.VocabTissue:           {"Leaf", "Root"},
			model.VocabTreatment:        {"Light", "Dark"},
			model.VocabExtractionMethod: {"TRIzol"},
		} {
			for _, term := range terms {
				if _, err := sys.Vocab.AddTerm(tx, "seed", vocabName, term, true); err != nil {
					return err
				}
			}
		}
		if _, err := sys.DB.CreateApplication(tx, "seed", model.Application{
			Name: "two group analysis", Description: "Differential expression between two groups",
			Connector: "rserve", Program: "twogroup.R",
			InputSpec: []string{"resources"}, ParamSpec: []string{"reference_group"},
			Active: true,
		}); err != nil {
			return err
		}
		_, err = sys.DB.CreateApplication(tx, "seed", model.Application{
			Name: "array QC", Description: "Per-array quality control",
			Connector: "rserve", Program: "qc.R",
			InputSpec: []string{"resources"}, Active: true,
		})
		return err
	})
}
