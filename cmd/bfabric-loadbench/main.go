// Command bfabric-loadbench runs the ISUCON-style HTTP load harness: it
// boots the portal on a real localhost TCP socket, generates the FGCZ
// population, logs a pool of bench users in, and drives a validated mixed
// read/write workload for the requested duration, reporting req/s and
// latency percentiles per operation class.
//
// With -replicas N the harness additionally boots N WAL-shipping read
// replicas (each with its own store and portal socket) and spreads the
// readers across them while writers keep hitting the primary — measuring
// how aggregate read throughput scales with follower count. Those runs
// report as BenchmarkHTTPSocket/replica-N/... rows.
//
// With -failover the harness runs the promotion scenario instead: a
// primary plus one WAL-shipping follower, the primary portal killed
// mid-load, the follower drained and promoted over HTTP, every client
// re-pointed — validating that no acknowledged write is lost and
// reporting throughput and latency through the outage as
// BenchmarkHTTPSocket/failover/... rows (including a synthetic
// "switchover" op whose latency is the outage duration).
//
// With -merge-baseline the run's results are merged into
// BENCH_baseline.json as one-line BenchmarkHTTPSocket entries, the same
// dialect scripts/bench_compare.sh diffs for the in-process benchmarks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/portal"
)

func main() {
	var (
		duration   = flag.Duration("duration", 10*time.Second, "measured run duration")
		clients    = flag.Int("clients", 0, "concurrent reader clients (0 = 16 per serving instance)")
		writers    = flag.Int("writers", 4, "concurrent writer clients (0 = read-only run)")
		replicas   = flag.Int("replicas", 0, "boot N WAL-shipping read replicas and spread readers across them (0 = single server)")
		failover   = flag.Bool("failover", false, "run the kill->promote->re-point scenario against a primary+follower pair")
		scale      = flag.Float64("scale", 0.1, "genload population scale (1.0 = paper's FGCZ deployment)")
		seed       = flag.Int64("seed", 1, "deterministic population/workload seed")
		smoke      = flag.Bool("smoke", false, "short correctness-only run (2s, small scale)")
		jsonOut    = flag.Bool("json", false, "emit the full report as JSON on stdout")
		mergeBase  = flag.String("merge-baseline", "", "merge results into this BENCH_baseline.json file")
		reqTimeout = flag.Duration("request-timeout", 0, "portal per-request timeout (0 = portal default)")
		inflight   = flag.Int("max-in-flight", 0, "portal admission limit (0 = portal default)")
	)
	flag.Parse()

	nWriters := *writers
	if nWriters == 0 {
		nWriters = -1 // flag 0 = read-only; Config 0 would mean "default"
	}
	cfg := loadgen.Config{
		Scale:    *scale,
		Clients:  *clients,
		Writers:  nWriters,
		Replicas: *replicas,
		Duration: *duration,
		Seed:     *seed,
		Portal:   portal.Config{RequestTimeout: *reqTimeout, MaxInFlight: *inflight},
		Log:      os.Stderr,
	}
	if *smoke {
		cfg.Scale = 0.02
		cfg.Clients = 6
		cfg.Writers = 2
		cfg.Duration = 2 * time.Second
	}
	if *failover && *replicas > 0 {
		fmt.Fprintln(os.Stderr, "loadbench: -failover and -replicas are mutually exclusive")
		os.Exit(1)
	}

	run := loadgen.Run
	if *failover {
		run = loadgen.RunFailover
	}
	report, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadbench:", err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "loadbench:", err)
			os.Exit(1)
		}
	} else {
		fmt.Print(report.String())
	}

	if *mergeBase != "" {
		if err := mergeBaseline(*mergeBase, report); err != nil {
			fmt.Fprintln(os.Stderr, "loadbench: merge baseline:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "merged BenchmarkHTTPSocket entries into %s\n", *mergeBase)
	}

	if report.Errors > 0 {
		fmt.Fprintf(os.Stderr, "loadbench: %d validation failures\n", report.Errors)
		os.Exit(1)
	}
}

// mergeBaseline splices the run's BenchmarkHTTPSocket entries into the
// one-object-per-line benchmarks array of a BENCH_baseline.json file,
// replacing only the previous entries of the SAME run class: a
// single-server run refreshes the unprefixed rows and leaves replica-N
// and failover rows alone; a -replicas N run refreshes exactly the
// replica-N rows; a -failover run refreshes exactly the failover/ rows.
// The merge is line-based on purpose: scripts/bench_compare.sh parses the
// file with line-oriented awk, so the formatting of untouched entries
// must survive byte-for-byte.
func mergeBaseline(path string, report *loadgen.Report) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	lines := strings.Split(string(data), "\n")

	// Drop prior entries of this run class only.
	sameClass := func(ln string) bool {
		i := strings.Index(ln, `"name": "BenchmarkHTTPSocket/`)
		if i < 0 {
			return false
		}
		rest := ln[i+len(`"name": "BenchmarkHTTPSocket/`):]
		if prefix := report.NamePrefix(); prefix != "" {
			return strings.HasPrefix(rest, prefix)
		}
		return !strings.HasPrefix(rest, "replica-") && !strings.HasPrefix(rest, "failover/")
	}
	kept := lines[:0]
	for _, ln := range lines {
		if sameClass(ln) {
			continue
		}
		kept = append(kept, ln)
	}

	// Find the end of the benchmarks array and insert before it.
	closeIdx := -1
	for i, ln := range kept {
		if strings.TrimSpace(ln) == "]" || strings.HasPrefix(strings.TrimSpace(ln), "],") {
			closeIdx = i
			break
		}
	}
	if closeIdx <= 0 {
		return fmt.Errorf("%s: benchmarks array close not found", path)
	}
	// The entry preceding the insertion point needs a trailing comma.
	for i := closeIdx - 1; i >= 0; i-- {
		t := strings.TrimSpace(kept[i])
		if t == "" {
			continue
		}
		if strings.HasSuffix(t, "}") {
			kept[i] += ","
		}
		break
	}
	entries := report.BaselineEntries()
	for i := range entries[:len(entries)-1] {
		entries[i] += ","
	}
	out := make([]string, 0, len(kept)+len(entries))
	out = append(out, kept[:closeIdx]...)
	out = append(out, entries...)
	out = append(out, kept[closeIdx:]...)
	return os.WriteFile(path, []byte(strings.Join(out, "\n")), 0o644)
}
