package exchange

import (
	"archive/zip"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/importer"
	"repro/internal/model"
	"repro/internal/provider"
	"repro/internal/store"
)

// buildSource creates an instance with a fully populated project: samples
// with annotations, extracts, an instrument import with assignments, a
// completed experiment run.
func buildSource(t *testing.T) (*core.System, int64) {
	t.Helper()
	sys := core.MustNew(core.Options{})
	arrays := []string{"x-1-control", "x-1-treated"}
	gp, gpStore := provider.NewAffymetrixGeneChip("genechip", arrays)
	sys.Storage.Mount(gpStore)
	if err := sys.Providers.Register(gp); err != nil {
		t.Fatal(err)
	}
	var project int64
	err := sys.Update(func(tx *store.Tx) error {
		var err error
		project, err = sys.DB.CreateProject(tx, "src", model.Project{
			Name: "exported-project", Description: "travelling project",
		})
		if err != nil {
			return err
		}
		if _, err := sys.Vocab.AddTerm(tx, "src", model.VocabSpecies, "Arabidopsis thaliana", true); err != nil {
			return err
		}
		if _, err := sys.Vocab.AddTerm(tx, "src", model.VocabTreatment, "Light", true); err != nil {
			return err
		}
		sid, err := sys.DB.CreateSample(tx, "src", model.Sample{
			Name: "s1", Project: project,
			Species: "Arabidopsis thaliana", Treatment: "Light",
		})
		if err != nil {
			return err
		}
		for _, a := range arrays {
			if _, err := sys.DB.CreateExtract(tx, "src", model.Extract{Name: a, Sample: sid}); err != nil {
				return err
			}
		}
		imp, err := sys.Importer.Import(tx, importer.Request{
			Provider: "genechip", Mode: importer.Copy,
			WorkunitName: "arrays", Project: project, Actor: "src",
		})
		if err != nil {
			return err
		}
		matches, err := sys.Importer.BestMatches(tx, imp.Workunit)
		if err != nil {
			return err
		}
		if err := sys.Importer.ApplyMatches(tx, "src", matches); err != nil {
			return err
		}
		if err := sys.Importer.CompleteImport(tx, "src", imp.WorkflowInstance); err != nil {
			return err
		}
		appID, err := sys.DB.CreateApplication(tx, "src", model.Application{
			Name: "two group analysis", Connector: "rserve", Program: "twogroup.R", Active: true,
		})
		if err != nil {
			return err
		}
		expID, err := sys.DB.CreateExperiment(tx, "src", model.Experiment{
			Name: "exp", Project: project, Resources: imp.Resources,
			Samples: []int64{sid},
		})
		if err != nil {
			return err
		}
		run, err := sys.Executor.RunExperiment(tx, apps.RunRequest{
			Experiment: expID, Application: appID, WorkunitName: "results",
			Params: map[string]string{"reference_group": "control"}, Actor: "src",
		})
		if err != nil {
			return err
		}
		if run.Failed {
			return errors.New(run.Error)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, project
}

func TestExportImportRoundTrip(t *testing.T) {
	src, project := buildSource(t)
	var buf bytes.Buffer
	if err := Export(src, project, &buf); err != nil {
		t.Fatal(err)
	}

	dst := core.MustNew(core.Options{})
	res, err := Import(dst, buf.Bytes(), "importer")
	if err != nil {
		t.Fatal(err)
	}
	// 1 sample, 2 extracts, 2 workunits (import + results), resources:
	// 2 imported + (2 input-markers + 3 outputs) = 7, 1 experiment.
	if res.Samples != 1 || res.Extracts != 2 || res.Workunits != 2 ||
		res.Resources != 7 || res.Experiments != 1 {
		t.Fatalf("import result = %+v", res)
	}
	if res.TermsAdded != 2 {
		t.Errorf("terms added = %d, want 2", res.TermsAdded)
	}
	// Payloads for copied resources + outputs travelled (the two imported
	// CELs + input markers resolve to the same bytes + 3 outputs).
	if res.PayloadsStored < 5 {
		t.Errorf("payloads stored = %d", res.PayloadsStored)
	}

	// Destination graph is intact and annotations valid.
	err = dst.View(func(tx *store.Tx) error {
		samples, err := dst.DB.SamplesOfProject(tx, res.Project)
		if err != nil {
			return err
		}
		if len(samples) != 1 || samples[0].Species != "Arabidopsis thaliana" {
			t.Errorf("samples = %+v", samples)
		}
		if !dst.Vocab.Exists(tx, model.VocabSpecies, "Arabidopsis thaliana") {
			t.Error("species term missing on destination")
		}
		extracts, err := dst.DB.ExtractsOfProject(tx, res.Project)
		if err != nil {
			return err
		}
		if len(extracts) != 2 {
			t.Errorf("extracts = %+v", extracts)
		}
		// Every resource's workunit/extract references resolve.
		wus, err := tx.Find(model.KindWorkunit, "project", res.Project)
		if err != nil {
			return err
		}
		reportSeen := false
		for _, w := range wus {
			rs, err := dst.DB.ResourcesOfWorkunit(tx, w.ID())
			if err != nil {
				return err
			}
			for _, r := range rs {
				if r.Extract != 0 && !tx.Exists(model.KindExtract, r.Extract) {
					t.Errorf("resource %d has dangling extract", r.ID)
				}
				if r.Name == "report.txt" && r.URI != "" {
					data, err := dst.Storage.Open(r.URI)
					if err != nil {
						return err
					}
					if !strings.Contains(string(data), "Two group analysis report") {
						t.Error("report payload corrupted")
					}
					reportSeen = true
				}
			}
		}
		if !reportSeen {
			t.Error("report.txt payload did not travel")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestImportIntoInstanceWithExistingTerms(t *testing.T) {
	src, project := buildSource(t)
	var buf bytes.Buffer
	if err := Export(src, project, &buf); err != nil {
		t.Fatal(err)
	}
	dst := core.MustNew(core.Options{})
	_ = dst.Update(func(tx *store.Tx) error {
		_, err := dst.Vocab.AddTerm(tx, "local", model.VocabSpecies, "Arabidopsis thaliana", true)
		return err
	})
	res, err := Import(dst, buf.Bytes(), "importer")
	if err != nil {
		t.Fatal(err)
	}
	if res.TermsAdded != 1 { // only "Light" was missing
		t.Errorf("terms added = %d", res.TermsAdded)
	}
}

func TestImportTwiceCreatesTwoProjects(t *testing.T) {
	src, project := buildSource(t)
	var buf bytes.Buffer
	if err := Export(src, project, &buf); err != nil {
		t.Fatal(err)
	}
	dst := core.MustNew(core.Options{})
	a, err := Import(dst, buf.Bytes(), "importer")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Import(dst, buf.Bytes(), "importer")
	if err != nil {
		t.Fatal(err)
	}
	if a.Project == b.Project {
		t.Error("imports collided")
	}
	if dst.Store.Count(model.KindProject) != 2 {
		t.Errorf("projects = %d", dst.Store.Count(model.KindProject))
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	dst := core.MustNew(core.Options{})
	if _, err := Import(dst, []byte("not a zip"), "x"); !errors.Is(err, ErrBadArchive) {
		t.Errorf("garbage: %v", err)
	}
}

func TestImportRejectsArchiveWithoutManifest(t *testing.T) {
	var buf bytes.Buffer
	data, err := apps.ZipOutputs([]apps.OutputFile{{Name: "random.txt", Data: []byte("x")}})
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(data)
	dst := core.MustNew(core.Options{})
	if _, err := Import(dst, buf.Bytes(), "x"); !errors.Is(err, ErrBadArchive) {
		t.Errorf("missing manifest: %v", err)
	}
}

// craftArchive builds an exchange archive directly from a manifest.
func craftArchive(t *testing.T, m Manifest) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	w, err := zw.Create(manifestName)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewEncoder(w).Encode(m); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestImportRollsBackAtomically(t *testing.T) {
	// An archive whose extract references a sample outside the export must
	// fail without leaving partial state (the project and samples created
	// before the bad extract are rolled back).
	bad := craftArchive(t, Manifest{
		Version: FormatVersion,
		Project: model.Project{Name: "poisoned"},
		Samples: []model.Sample{{ID: 1, Name: "ok"}},
		Extracts: []model.Extract{
			{ID: 5, Name: "dangling", Sample: 999},
		},
	})
	dst := core.MustNew(core.Options{})
	if _, err := Import(dst, bad, "x"); err == nil {
		t.Fatal("corrupted archive accepted")
	}
	if dst.Store.Count(model.KindProject) != 0 || dst.Store.Count(model.KindSample) != 0 {
		t.Error("partial import leaked state")
	}
}

func TestImportRejectsWrongVersion(t *testing.T) {
	bad := craftArchive(t, Manifest{Version: 99, Project: model.Project{Name: "future"}})
	dst := core.MustNew(core.Options{})
	if _, err := Import(dst, bad, "x"); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestExportUnknownProject(t *testing.T) {
	sys := core.MustNew(core.Options{})
	var buf bytes.Buffer
	if err := Export(sys, 42, &buf); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("unknown project: %v", err)
	}
}
