// Package exchange implements project export and import between B-Fabric
// instances. The paper's acknowledgements describe the follow-up project
// "Generalizing B-Fabric towards an Infrastructure for Collaborative
// Research in Switzerland"; this package provides the enabling primitive:
// a self-contained project archive (zip with a JSON manifest plus file
// payloads) that another instance can ingest, re-creating the entity graph
// with fresh identifiers and registering any missing vocabulary terms.
package exchange

import (
	"archive/zip"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/store"
	"repro/internal/vocab"
)

// manifestName is the archive member holding the entity graph.
const manifestName = "manifest.json"

// filePrefix is the archive directory holding resource payloads, keyed by
// the exporting instance's resource id.
const filePrefix = "files/"

// FormatVersion is bumped on incompatible manifest changes.
const FormatVersion = 1

// Manifest is the serialized entity graph of one project.
type Manifest struct {
	Version     int
	Project     model.Project
	Samples     []model.Sample
	Extracts    []model.Extract
	Workunits   []model.Workunit
	Resources   []model.DataResource
	Experiments []model.Experiment
	// Terms are the vocabulary terms referenced by the project's samples
	// and extracts, so the importing instance can register missing ones.
	Terms []vocab.Term
}

// ErrBadArchive is returned for malformed exchange archives.
var ErrBadArchive = errors.New("malformed exchange archive")

// Export writes a self-contained archive of the project to w. Resource
// payloads are included when their URI resolves on this instance; linked
// resources whose store is not mounted are exported as metadata only.
func Export(sys *core.System, projectID int64, w io.Writer) error {
	var m Manifest
	m.Version = FormatVersion
	payloads := make(map[int64][]byte)

	err := sys.View(func(tx *store.Tx) error {
		p, err := sys.DB.GetProject(tx, projectID)
		if err != nil {
			return err
		}
		m.Project = p
		samples, err := sys.DB.SamplesOfProject(tx, projectID)
		if err != nil {
			return err
		}
		m.Samples = samples
		for _, s := range samples {
			es, err := sys.DB.ExtractsOfSample(tx, s.ID)
			if err != nil {
				return err
			}
			m.Extracts = append(m.Extracts, es...)
		}
		wus, err := tx.Find(model.KindWorkunit, "project", projectID)
		if err != nil {
			return err
		}
		for _, r := range wus {
			wu, err := sys.DB.GetWorkunit(tx, r.ID())
			if err != nil {
				return err
			}
			m.Workunits = append(m.Workunits, wu)
			rs, err := sys.DB.ResourcesOfWorkunit(tx, wu.ID)
			if err != nil {
				return err
			}
			for _, res := range rs {
				m.Resources = append(m.Resources, res)
				if res.URI == "" {
					continue
				}
				if data, err := sys.Storage.Open(res.URI); err == nil {
					payloads[res.ID] = data
				}
			}
		}
		exps, err := tx.Find(model.KindExperiment, "project", projectID)
		if err != nil {
			return err
		}
		for _, r := range exps {
			exp, err := sys.DB.GetExperiment(tx, r.ID())
			if err != nil {
				return err
			}
			m.Experiments = append(m.Experiments, exp)
		}
		// Vocabulary terms actually used by the exported annotations.
		seen := make(map[string]bool)
		record := func(vocabName, value string) error {
			if value == "" || seen[vocabName+"\x00"+value] {
				return nil
			}
			seen[vocabName+"\x00"+value] = true
			term, err := sys.Vocab.Lookup(tx, vocabName, value)
			if err != nil {
				if errors.Is(err, store.ErrNotFound) {
					return nil // free-text value predating vocabularies
				}
				return err
			}
			m.Terms = append(m.Terms, term)
			return nil
		}
		for _, s := range m.Samples {
			for vocabName, value := range map[string]string{
				model.VocabSpecies: s.Species, model.VocabTissue: s.Tissue,
				model.VocabDiseaseState: s.DiseaseState,
				model.VocabCellType:     s.CellType, model.VocabTreatment: s.Treatment,
			} {
				if err := record(vocabName, value); err != nil {
					return err
				}
			}
		}
		for _, e := range m.Extracts {
			if err := record(model.VocabExtractionMethod, e.ExtractionMethod); err != nil {
				return err
			}
			if err := record(model.VocabLabel, e.Label); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	zw := zip.NewWriter(w)
	mw, err := zw.Create(manifestName)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(mw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return err
	}
	for _, res := range m.Resources {
		data, ok := payloads[res.ID]
		if !ok {
			continue
		}
		fw, err := zw.Create(filePrefix + strconv.FormatInt(res.ID, 10))
		if err != nil {
			return err
		}
		if _, err := fw.Write(data); err != nil {
			return err
		}
	}
	return zw.Close()
}

// ImportResult reports what an import created on the receiving instance.
type ImportResult struct {
	Project     int64
	Samples     int
	Extracts    int
	Workunits   int
	Resources   int
	Experiments int
	// TermsAdded counts vocabulary terms registered because they were
	// missing on the receiving instance.
	TermsAdded int
	// PayloadsStored counts resource payloads copied into internal storage.
	PayloadsStored int
}

// Import ingests an archive produced by Export, re-creating the project's
// entity graph with fresh identifiers. Vocabulary terms missing on the
// receiving instance are registered as released (they passed review on the
// exporting one). Resource payloads travel into the internal store under
// exchange/<project>/...; metadata-only resources keep an empty URI.
func Import(sys *core.System, data []byte, actor string) (ImportResult, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return ImportResult{}, fmt.Errorf("exchange: %w: %v", ErrBadArchive, err)
	}
	var m Manifest
	payloads := make(map[int64][]byte)
	foundManifest := false
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			return ImportResult{}, err
		}
		content, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return ImportResult{}, err
		}
		switch {
		case f.Name == manifestName:
			if err := json.Unmarshal(content, &m); err != nil {
				return ImportResult{}, fmt.Errorf("exchange: decoding manifest: %w", err)
			}
			foundManifest = true
		case len(f.Name) > len(filePrefix) && f.Name[:len(filePrefix)] == filePrefix:
			id, err := strconv.ParseInt(f.Name[len(filePrefix):], 10, 64)
			if err != nil {
				return ImportResult{}, fmt.Errorf("exchange: %w: bad payload name %q", ErrBadArchive, f.Name)
			}
			payloads[id] = content
		}
	}
	if !foundManifest {
		return ImportResult{}, fmt.Errorf("exchange: %w: missing %s", ErrBadArchive, manifestName)
	}
	if m.Version != FormatVersion {
		return ImportResult{}, fmt.Errorf("exchange: unsupported manifest version %d", m.Version)
	}

	var out ImportResult
	err = sys.Update(func(tx *store.Tx) error {
		// Vocabulary first: annotations must exist before samples use them.
		for _, term := range m.Terms {
			if sys.Vocab.Exists(tx, term.Vocabulary, term.Value) {
				continue
			}
			if _, err := sys.Vocab.AddTerm(tx, actor, term.Vocabulary, term.Value, true); err != nil {
				return err
			}
			out.TermsAdded++
		}
		// Project. Owner/member/institute references do not transfer
		// across instances; the importing actor becomes the point of
		// contact.
		project := m.Project
		project.Coach, project.Members, project.Institute = 0, nil, 0
		newProject, err := sys.DB.CreateProject(tx, actor, project)
		if err != nil {
			return err
		}
		out.Project = newProject

		sampleMap := make(map[int64]int64, len(m.Samples))
		for _, s := range m.Samples {
			old := s.ID
			s.Project = newProject
			s.Owner = 0
			id, err := sys.DB.CreateSample(tx, actor, s)
			if err != nil {
				return err
			}
			sampleMap[old] = id
			out.Samples++
		}
		extractMap := make(map[int64]int64, len(m.Extracts))
		for _, e := range m.Extracts {
			old := e.ID
			ns, ok := sampleMap[e.Sample]
			if !ok {
				return fmt.Errorf("exchange: extract %d references unknown sample %d", old, e.Sample)
			}
			e.Sample = ns
			id, err := sys.DB.CreateExtract(tx, actor, e)
			if err != nil {
				return err
			}
			extractMap[old] = id
			out.Extracts++
		}
		wuMap := make(map[int64]int64, len(m.Workunits))
		for _, wu := range m.Workunits {
			old := wu.ID
			wu.Project = newProject
			wu.Owner = 0
			wu.Application = 0 // applications are instance-local
			id, err := sys.DB.CreateWorkunit(tx, actor, wu)
			if err != nil {
				return err
			}
			wuMap[old] = id
			out.Workunits++
		}
		resourceMap := make(map[int64]int64, len(m.Resources))
		for _, res := range m.Resources {
			old := res.ID
			nwu, ok := wuMap[res.Workunit]
			if !ok {
				return fmt.Errorf("exchange: resource %d references unknown workunit %d", old, res.Workunit)
			}
			res.Workunit = nwu
			if res.Extract != 0 {
				res.Extract = extractMap[res.Extract] // 0 if the extract was not exported
			}
			if payload, ok := payloads[old]; ok {
				uri, err := sys.Storage.WriteInternal(
					fmt.Sprintf("exchange/p%d/%d-%s", newProject, old, res.Name), payload)
				if err != nil {
					return err
				}
				res.URI = uri
				res.Linked = false
				out.PayloadsStored++
			} else {
				res.URI = ""
				res.Linked = true
			}
			id, err := sys.DB.CreateDataResource(tx, actor, res)
			if err != nil {
				return err
			}
			resourceMap[old] = id
			out.Resources++
		}
		for _, exp := range m.Experiments {
			exp.Project = newProject
			exp.Owner = 0
			exp.Resources = remap(exp.Resources, resourceMap)
			exp.Samples = remap(exp.Samples, sampleMap)
			exp.Extracts = remap(exp.Extracts, extractMap)
			if _, err := sys.DB.CreateExperiment(tx, actor, exp); err != nil {
				return err
			}
			out.Experiments++
		}
		return nil
	})
	if err != nil {
		return ImportResult{}, err
	}
	return out, nil
}

// remap translates a reference list through an id map, dropping references
// that were not part of the export.
func remap(ids []int64, m map[int64]int64) []int64 {
	var out []int64
	for _, id := range ids {
		if nid, ok := m[id]; ok {
			out = append(out, nid)
		}
	}
	return out
}
