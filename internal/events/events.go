// Package events provides the synchronous in-process event bus that wires
// B-Fabric's subsystems together: entity mutations publish events which the
// task engine, audit log, and search indexer consume. Handlers run
// synchronously in subscription order, which keeps system behaviour
// deterministic and transactional side effects ordered.
package events

import (
	"sort"
	"sync"
)

// Event is a single system occurrence, e.g. "annotation.created".
type Event struct {
	// Topic names the event, conventionally "object.verb"
	// (sample.created, annotation.merged, workunit.deleted, ...).
	Topic string
	// Kind is the entity kind the event concerns, if any.
	Kind string
	// ID is the entity identifier the event concerns, if any.
	ID int64
	// Actor is the login of the user who caused the event, if known.
	Actor string
	// Payload carries event-specific data.
	Payload map[string]any
	// Items, when non-nil, marks a coalesced batch event: one publication
	// describing every entity a bulk mutation touched in the same
	// transaction, in mutation order. Topic, Kind, Actor and Tx apply to
	// every item; the event's own ID and Payload are zero. Coalescing is
	// what keeps event fan-out O(1) per commit instead of O(records):
	// each subscriber is invoked once per batch and can take its own
	// locks once. Handlers subscribed to topics that batch publishers use
	// must consult Items before ID/Payload.
	Items []BatchItem
	// Tx carries the open store transaction (*store.Tx) in which the event
	// was raised, when one exists. Handlers that need to write must use it:
	// events are published while the store's writer mutex is held, so
	// starting another write transaction from a handler would deadlock —
	// and a fresh read transaction would see only pre-commit state, since
	// the surrounding transaction has not published its version yet. The
	// field is typed any to keep this package free of store dependencies.
	Tx any
}

// BatchItem is one entity of a coalesced batch event: its identifier and
// the event-specific payload that a per-entity publication would have
// carried.
type BatchItem struct {
	ID      int64
	Payload map[string]any
}

// Handler consumes events. Handlers must not panic; a handler error is
// collected but does not stop delivery to later handlers.
type Handler func(Event) error

// Bus is a synchronous publish/subscribe hub. The zero value is unusable;
// construct with NewBus. Bus is safe for concurrent use.
type Bus struct {
	mu       sync.RWMutex
	nextID   int
	handlers map[string][]subscription // topic -> subscriptions
	all      []subscription            // wildcard subscribers
}

type subscription struct {
	id int
	fn Handler
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{handlers: make(map[string][]subscription)}
}

// Subscribe registers fn for the given topic and returns a subscription id
// usable with Unsubscribe. The empty topic subscribes to all events.
func (b *Bus) Subscribe(topic string, fn Handler) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	sub := subscription{id: b.nextID, fn: fn}
	if topic == "" {
		b.all = append(b.all, sub)
	} else {
		b.handlers[topic] = append(b.handlers[topic], sub)
	}
	return sub.id
}

// Unsubscribe removes the subscription with the given id. Unknown ids are
// ignored.
func (b *Bus) Unsubscribe(id int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for topic, subs := range b.handlers {
		b.handlers[topic] = removeSub(subs, id)
		if len(b.handlers[topic]) == 0 {
			delete(b.handlers, topic)
		}
	}
	b.all = removeSub(b.all, id)
}

func removeSub(subs []subscription, id int) []subscription {
	out := subs[:0]
	for _, s := range subs {
		if s.id != id {
			out = append(out, s)
		}
	}
	return out
}

// Publish delivers the event to every subscriber of its topic and to all
// wildcard subscribers, in subscription order. It returns the errors
// collected from handlers (nil if none failed).
func (b *Bus) Publish(ev Event) []error {
	b.mu.RLock()
	subs := make([]subscription, 0, len(b.handlers[ev.Topic])+len(b.all))
	subs = append(subs, b.handlers[ev.Topic]...)
	subs = append(subs, b.all...)
	b.mu.RUnlock()
	sort.Slice(subs, func(i, j int) bool { return subs[i].id < subs[j].id })
	var errs []error
	for _, s := range subs {
		if err := s.fn(ev); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// Topics returns the sorted list of topics with at least one subscriber.
func (b *Bus) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.handlers))
	for t := range b.handlers {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
