package events

import (
	"errors"
	"sync"
	"testing"
)

func TestPublishDeliversToTopicSubscribers(t *testing.T) {
	b := NewBus()
	var got []string
	b.Subscribe("sample.created", func(ev Event) error {
		got = append(got, ev.Topic)
		return nil
	})
	b.Publish(Event{Topic: "sample.created"})
	b.Publish(Event{Topic: "sample.deleted"}) // no subscriber
	if len(got) != 1 || got[0] != "sample.created" {
		t.Errorf("got %v", got)
	}
}

func TestWildcardSubscriber(t *testing.T) {
	b := NewBus()
	n := 0
	b.Subscribe("", func(Event) error { n++; return nil })
	b.Publish(Event{Topic: "a"})
	b.Publish(Event{Topic: "b"})
	if n != 2 {
		t.Errorf("wildcard received %d events, want 2", n)
	}
}

func TestDeliveryOrderFollowsSubscriptionOrder(t *testing.T) {
	b := NewBus()
	var order []int
	b.Subscribe("t", func(Event) error { order = append(order, 1); return nil })
	b.Subscribe("", func(Event) error { order = append(order, 2); return nil })
	b.Subscribe("t", func(Event) error { order = append(order, 3); return nil })
	b.Publish(Event{Topic: "t"})
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

func TestHandlerErrorsCollectedButDeliveryContinues(t *testing.T) {
	b := NewBus()
	boom := errors.New("boom")
	reached := false
	b.Subscribe("t", func(Event) error { return boom })
	b.Subscribe("t", func(Event) error { reached = true; return nil })
	errs := b.Publish(Event{Topic: "t"})
	if len(errs) != 1 || !errors.Is(errs[0], boom) {
		t.Errorf("errs = %v", errs)
	}
	if !reached {
		t.Error("second handler not reached after first failed")
	}
}

func TestUnsubscribe(t *testing.T) {
	b := NewBus()
	n := 0
	id := b.Subscribe("t", func(Event) error { n++; return nil })
	b.Publish(Event{Topic: "t"})
	b.Unsubscribe(id)
	b.Publish(Event{Topic: "t"})
	if n != 1 {
		t.Errorf("handler ran %d times, want 1", n)
	}
	b.Unsubscribe(999) // unknown id is a no-op
}

func TestUnsubscribeWildcard(t *testing.T) {
	b := NewBus()
	n := 0
	id := b.Subscribe("", func(Event) error { n++; return nil })
	b.Unsubscribe(id)
	b.Publish(Event{Topic: "x"})
	if n != 0 {
		t.Error("wildcard handler ran after unsubscribe")
	}
}

func TestTopics(t *testing.T) {
	b := NewBus()
	b.Subscribe("b.topic", func(Event) error { return nil })
	b.Subscribe("a.topic", func(Event) error { return nil })
	got := b.Topics()
	if len(got) != 2 || got[0] != "a.topic" || got[1] != "b.topic" {
		t.Errorf("Topics = %v", got)
	}
}

func TestConcurrentPublishSafe(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	n := 0
	b.Subscribe("t", func(Event) error {
		mu.Lock()
		n++
		mu.Unlock()
		return nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Publish(Event{Topic: "t"})
		}()
	}
	wg.Wait()
	if n != 20 {
		t.Errorf("n = %d, want 20", n)
	}
}

func TestEventPayload(t *testing.T) {
	b := NewBus()
	var seen Event
	b.Subscribe("x", func(ev Event) error { seen = ev; return nil })
	b.Publish(Event{Topic: "x", Kind: "sample", ID: 7, Actor: "alice",
		Payload: map[string]any{"field": "disease"}})
	if seen.Kind != "sample" || seen.ID != 7 || seen.Actor != "alice" ||
		seen.Payload["field"] != "disease" {
		t.Errorf("event round trip: %+v", seen)
	}
}
