// Package storage implements B-Fabric's managed file stores. Besides the
// internal storage area, any external data store can be attached and made
// accessible through the same interface; users never need to care where or
// how the bytes are kept. Data resources carry URIs of the form
// "bfabric://<store>/<path>" which the manager resolves transparently.
package storage

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FileInfo describes one stored file.
type FileInfo struct {
	// Path is the store-relative path.
	Path string
	// Size is the content length in bytes.
	Size int64
}

// Store is one mounted data store. Implementations must be safe for
// concurrent use.
type Store interface {
	// Name returns the mount name.
	Name() string
	// Writable reports whether Put is supported.
	Writable() bool
	// Put writes a file, creating parents as needed.
	Put(path string, data []byte) error
	// Get reads a file.
	Get(path string) ([]byte, error)
	// Stat describes a file.
	Stat(path string) (FileInfo, error)
	// List returns the files under the given prefix, sorted by path.
	List(prefix string) ([]FileInfo, error)
}

// Sentinel errors.
var (
	// ErrNoStore is returned for unmounted store names.
	ErrNoStore = errors.New("no such data store")
	// ErrNoFile is returned for missing files.
	ErrNoFile = errors.New("no such file")
	// ErrReadOnly is returned when writing to a read-only store.
	ErrReadOnly = errors.New("store is read-only")
	// ErrBadURI is returned for malformed resource URIs.
	ErrBadURI = errors.New("malformed resource URI")
)

// InternalStoreName is the name of the system's own storage area.
const InternalStoreName = "internal"

const uriScheme = "bfabric://"

// MakeURI builds the canonical URI for a file in a store.
func MakeURI(storeName, path string) string {
	return uriScheme + storeName + "/" + strings.TrimPrefix(path, "/")
}

// ParseURI splits a canonical URI into store name and path.
func ParseURI(uri string) (storeName, path string, err error) {
	if !strings.HasPrefix(uri, uriScheme) {
		return "", "", fmt.Errorf("storage: %q: %w", uri, ErrBadURI)
	}
	rest := strings.TrimPrefix(uri, uriScheme)
	i := strings.IndexByte(rest, '/')
	if i <= 0 || i == len(rest)-1 {
		return "", "", fmt.Errorf("storage: %q: %w", uri, ErrBadURI)
	}
	return rest[:i], rest[i+1:], nil
}

// Checksum returns the hex SHA-256 of data, the integrity fingerprint
// recorded on imported data resources.
func Checksum(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Manager owns the mounted stores.
type Manager struct {
	mu     sync.RWMutex
	stores map[string]Store
}

// NewManager creates a manager with an in-memory internal store. Callers
// that want a durable internal area can remount one with Mount.
func NewManager() *Manager {
	m := &Manager{stores: make(map[string]Store)}
	m.stores[InternalStoreName] = NewMemStore(InternalStoreName, true)
	return m
}

// Mount attaches a store under its name, replacing any previous mount with
// the same name.
func (m *Manager) Mount(s Store) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stores[s.Name()] = s
}

// Unmount detaches the named store. The internal store cannot be unmounted.
func (m *Manager) Unmount(name string) error {
	if name == InternalStoreName {
		return fmt.Errorf("storage: cannot unmount the internal store")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.stores[name]; !ok {
		return fmt.Errorf("storage: %q: %w", name, ErrNoStore)
	}
	delete(m.stores, name)
	return nil
}

// Store returns the mounted store with the given name.
func (m *Manager) Store(name string) (Store, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.stores[name]
	if !ok {
		return nil, fmt.Errorf("storage: %q: %w", name, ErrNoStore)
	}
	return s, nil
}

// Stores returns the sorted names of all mounted stores.
func (m *Manager) Stores() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.stores))
	for n := range m.stores {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Open resolves a URI and reads the file it names, regardless of which
// store holds it — the "transparent capture and provision" of the paper.
func (m *Manager) Open(uri string) ([]byte, error) {
	storeName, path, err := ParseURI(uri)
	if err != nil {
		return nil, err
	}
	s, err := m.Store(storeName)
	if err != nil {
		return nil, err
	}
	return s.Get(path)
}

// StatURI resolves a URI and stats the file it names.
func (m *Manager) StatURI(uri string) (FileInfo, error) {
	storeName, path, err := ParseURI(uri)
	if err != nil {
		return FileInfo{}, err
	}
	s, err := m.Store(storeName)
	if err != nil {
		return FileInfo{}, err
	}
	return s.Stat(path)
}

// WriteInternal stores data in the internal store and returns its URI.
func (m *Manager) WriteInternal(path string, data []byte) (string, error) {
	s, err := m.Store(InternalStoreName)
	if err != nil {
		return "", err
	}
	if err := s.Put(path, data); err != nil {
		return "", err
	}
	return MakeURI(InternalStoreName, path), nil
}

// --- in-memory store ---------------------------------------------------------

// MemStore is an in-memory store, used for the internal area by default and
// by the simulated instruments.
type MemStore struct {
	name     string
	writable bool
	mu       sync.RWMutex
	files    map[string][]byte
}

// NewMemStore creates an empty in-memory store.
func NewMemStore(name string, writable bool) *MemStore {
	return &MemStore{name: name, writable: writable, files: make(map[string][]byte)}
}

// Name implements Store.
func (ms *MemStore) Name() string { return ms.name }

// Writable implements Store.
func (ms *MemStore) Writable() bool { return ms.writable }

// Put implements Store.
func (ms *MemStore) Put(path string, data []byte) error {
	if !ms.writable {
		return fmt.Errorf("storage: %s: %w", ms.name, ErrReadOnly)
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	ms.files[clean(path)] = cp
	return nil
}

// forcePut writes regardless of writability; used by instrument simulators
// to seed read-only inventories.
func (ms *MemStore) forcePut(path string, data []byte) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	ms.files[clean(path)] = cp
}

// Seed loads a file into the store bypassing the read-only flag, for test
// fixtures and simulated instrument inventories.
func (ms *MemStore) Seed(path string, data []byte) { ms.forcePut(path, data) }

// Get implements Store.
func (ms *MemStore) Get(path string) ([]byte, error) {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	data, ok := ms.files[clean(path)]
	if !ok {
		return nil, fmt.Errorf("storage: %s/%s: %w", ms.name, path, ErrNoFile)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Stat implements Store.
func (ms *MemStore) Stat(path string) (FileInfo, error) {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	data, ok := ms.files[clean(path)]
	if !ok {
		return FileInfo{}, fmt.Errorf("storage: %s/%s: %w", ms.name, path, ErrNoFile)
	}
	return FileInfo{Path: clean(path), Size: int64(len(data))}, nil
}

// List implements Store.
func (ms *MemStore) List(prefix string) ([]FileInfo, error) {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	prefix = strings.TrimPrefix(prefix, "/")
	var out []FileInfo
	for p, data := range ms.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, FileInfo{Path: p, Size: int64(len(data))})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func clean(path string) string {
	return strings.TrimPrefix(filepath.ToSlash(path), "/")
}

// --- directory-backed store ---------------------------------------------------

// DirStore exposes a directory of the local filesystem as a store.
type DirStore struct {
	name     string
	root     string
	writable bool
}

// NewDirStore mounts the directory root as a store.
func NewDirStore(name, root string, writable bool) *DirStore {
	return &DirStore{name: name, root: root, writable: writable}
}

// Name implements Store.
func (ds *DirStore) Name() string { return ds.name }

// Writable implements Store.
func (ds *DirStore) Writable() bool { return ds.writable }

// resolve maps a store path to a filesystem path, refusing escapes from the
// root directory.
func (ds *DirStore) resolve(path string) (string, error) {
	p := filepath.Join(ds.root, filepath.FromSlash(clean(path)))
	if rel, err := filepath.Rel(ds.root, p); err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("storage: path %q escapes store root", path)
	}
	return p, nil
}

// Put implements Store.
func (ds *DirStore) Put(path string, data []byte) error {
	if !ds.writable {
		return fmt.Errorf("storage: %s: %w", ds.name, ErrReadOnly)
	}
	p, err := ds.resolve(path)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	return os.WriteFile(p, data, 0o644)
}

// Get implements Store.
func (ds *DirStore) Get(path string) ([]byte, error) {
	p, err := ds.resolve(path)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("storage: %s/%s: %w", ds.name, path, ErrNoFile)
	}
	return data, err
}

// Stat implements Store.
func (ds *DirStore) Stat(path string) (FileInfo, error) {
	p, err := ds.resolve(path)
	if err != nil {
		return FileInfo{}, err
	}
	fi, err := os.Stat(p)
	if errors.Is(err, os.ErrNotExist) {
		return FileInfo{}, fmt.Errorf("storage: %s/%s: %w", ds.name, path, ErrNoFile)
	}
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Path: clean(path), Size: fi.Size()}, nil
}

// List implements Store.
func (ds *DirStore) List(prefix string) ([]FileInfo, error) {
	var out []FileInfo
	err := filepath.Walk(ds.root, func(p string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(ds.root, p)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if strings.HasPrefix(rel, strings.TrimPrefix(prefix, "/")) {
			out = append(out, FileInfo{Path: rel, Size: fi.Size()})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}
