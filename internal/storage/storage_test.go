package storage

import (
	"errors"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestURIRoundTrip(t *testing.T) {
	uri := MakeURI("internal", "2010/01/chip01.cel")
	if uri != "bfabric://internal/2010/01/chip01.cel" {
		t.Errorf("uri = %q", uri)
	}
	storeName, path, err := ParseURI(uri)
	if err != nil {
		t.Fatal(err)
	}
	if storeName != "internal" || path != "2010/01/chip01.cel" {
		t.Errorf("parsed %q %q", storeName, path)
	}
}

func TestParseURIMalformed(t *testing.T) {
	for _, uri := range []string{
		"", "http://x/y", "bfabric://", "bfabric://nopath", "bfabric://store/",
	} {
		if _, _, err := ParseURI(uri); !errors.Is(err, ErrBadURI) {
			t.Errorf("ParseURI(%q) = %v, want ErrBadURI", uri, err)
		}
	}
}

func TestURIQuickRoundTrip(t *testing.T) {
	f := func(store, path string) bool {
		if store == "" || path == "" {
			return true
		}
		// Stores and paths with '/' in odd spots are out of scope; restrict
		// to sane names.
		for _, r := range store {
			if r == '/' {
				return true
			}
		}
		s2, p2, err := ParseURI(MakeURI(store, path))
		if err != nil {
			return false
		}
		_ = p2
		return s2 == store
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChecksumDeterministic(t *testing.T) {
	a := Checksum([]byte("hello"))
	b := Checksum([]byte("hello"))
	c := Checksum([]byte("world"))
	if a != b {
		t.Error("checksum not deterministic")
	}
	if a == c {
		t.Error("different data, same checksum")
	}
	if len(a) != 64 {
		t.Errorf("checksum length = %d", len(a))
	}
}

func TestMemStoreCRUD(t *testing.T) {
	ms := NewMemStore("mem", true)
	if err := ms.Put("a/b.txt", []byte("data")); err != nil {
		t.Fatal(err)
	}
	got, err := ms.Get("a/b.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "data" {
		t.Errorf("Get = %q", got)
	}
	fi, err := ms.Stat("/a/b.txt") // leading slash normalized
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 4 || fi.Path != "a/b.txt" {
		t.Errorf("Stat = %+v", fi)
	}
	if _, err := ms.Get("missing"); !errors.Is(err, ErrNoFile) {
		t.Errorf("Get missing: %v", err)
	}
	if _, err := ms.Stat("missing"); !errors.Is(err, ErrNoFile) {
		t.Errorf("Stat missing: %v", err)
	}
}

func TestMemStoreNoAliasing(t *testing.T) {
	ms := NewMemStore("mem", true)
	data := []byte("orig")
	_ = ms.Put("f", data)
	data[0] = 'X'
	got, _ := ms.Get("f")
	if string(got) != "orig" {
		t.Error("Put aliased caller buffer")
	}
	got[0] = 'Y'
	again, _ := ms.Get("f")
	if string(again) != "orig" {
		t.Error("Get aliased store buffer")
	}
}

func TestMemStoreReadOnly(t *testing.T) {
	ms := NewMemStore("inst", false)
	if err := ms.Put("f", []byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Put on read-only: %v", err)
	}
	ms.Seed("f", []byte("seeded"))
	got, err := ms.Get("f")
	if err != nil || string(got) != "seeded" {
		t.Errorf("Seed/Get = %q, %v", got, err)
	}
}

func TestMemStoreList(t *testing.T) {
	ms := NewMemStore("mem", true)
	_ = ms.Put("runs/r1.cel", []byte("1"))
	_ = ms.Put("runs/r2.cel", []byte("22"))
	_ = ms.Put("other/x", []byte("3"))
	fis, err := ms.List("runs/")
	if err != nil {
		t.Fatal(err)
	}
	if len(fis) != 2 || fis[0].Path != "runs/r1.cel" || fis[1].Size != 2 {
		t.Errorf("List = %+v", fis)
	}
	all, _ := ms.List("")
	if len(all) != 3 {
		t.Errorf("List all = %+v", all)
	}
}

func TestDirStoreCRUD(t *testing.T) {
	dir := t.TempDir()
	ds := NewDirStore("disk", dir, true)
	if err := ds.Put("sub/f.txt", []byte("content")); err != nil {
		t.Fatal(err)
	}
	got, err := ds.Get("sub/f.txt")
	if err != nil || string(got) != "content" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	fi, err := ds.Stat("sub/f.txt")
	if err != nil || fi.Size != 7 {
		t.Fatalf("Stat = %+v, %v", fi, err)
	}
	fis, err := ds.List("")
	if err != nil || len(fis) != 1 || fis[0].Path != "sub/f.txt" {
		t.Fatalf("List = %+v, %v", fis, err)
	}
	if _, err := ds.Get("nope"); !errors.Is(err, ErrNoFile) {
		t.Errorf("missing file: %v", err)
	}
}

func TestDirStoreReadOnlyAndEscape(t *testing.T) {
	dir := t.TempDir()
	ds := NewDirStore("ro", dir, false)
	if err := ds.Put("f", []byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Put: %v", err)
	}
	w := NewDirStore("w", filepath.Join(dir, "root"), true)
	if err := w.Put("../escape.txt", []byte("x")); err == nil {
		t.Error("path escape allowed")
	}
	if _, err := w.Get("../../etc/passwd"); err == nil {
		t.Error("read escape allowed")
	}
}

func TestManagerMountAndResolve(t *testing.T) {
	m := NewManager()
	inst := NewMemStore("genechip", false)
	inst.Seed("runs/chip01.cel", []byte("CEL-DATA"))
	m.Mount(inst)

	names := m.Stores()
	if len(names) != 2 || names[0] != "genechip" || names[1] != "internal" {
		t.Errorf("Stores = %v", names)
	}
	data, err := m.Open(MakeURI("genechip", "runs/chip01.cel"))
	if err != nil || string(data) != "CEL-DATA" {
		t.Fatalf("Open = %q, %v", data, err)
	}
	fi, err := m.StatURI(MakeURI("genechip", "runs/chip01.cel"))
	if err != nil || fi.Size != 8 {
		t.Fatalf("StatURI = %+v, %v", fi, err)
	}
	if _, err := m.Open(MakeURI("nosuch", "f")); !errors.Is(err, ErrNoStore) {
		t.Errorf("unknown store: %v", err)
	}
	if _, err := m.Open("garbage"); !errors.Is(err, ErrBadURI) {
		t.Errorf("bad uri: %v", err)
	}
}

func TestManagerWriteInternal(t *testing.T) {
	m := NewManager()
	uri, err := m.WriteInternal("imports/wu1/f.cel", []byte("bytes"))
	if err != nil {
		t.Fatal(err)
	}
	if uri != "bfabric://internal/imports/wu1/f.cel" {
		t.Errorf("uri = %q", uri)
	}
	data, err := m.Open(uri)
	if err != nil || string(data) != "bytes" {
		t.Fatalf("read back = %q, %v", data, err)
	}
}

func TestManagerUnmount(t *testing.T) {
	m := NewManager()
	m.Mount(NewMemStore("ext", true))
	if err := m.Unmount("ext"); err != nil {
		t.Fatal(err)
	}
	if err := m.Unmount("ext"); !errors.Is(err, ErrNoStore) {
		t.Errorf("double unmount: %v", err)
	}
	if err := m.Unmount(InternalStoreName); err == nil {
		t.Error("internal store unmounted")
	}
}

func TestManagerRemountReplaces(t *testing.T) {
	m := NewManager()
	a := NewMemStore("ext", true)
	_ = a.Put("f", []byte("A"))
	m.Mount(a)
	b := NewMemStore("ext", true)
	_ = b.Put("f", []byte("B"))
	m.Mount(b)
	data, err := m.Open(MakeURI("ext", "f"))
	if err != nil || string(data) != "B" {
		t.Fatalf("remount: %q, %v", data, err)
	}
}
