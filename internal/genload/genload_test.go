package genload

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/store"
)

func TestScaledProfile(t *testing.T) {
	p := FGCZJan2010.Scaled(0.01)
	if p.Users != 15 || p.DataResources != 400 {
		t.Errorf("scaled = %+v", p)
	}
	// Everything stays at least 1.
	tiny := FGCZJan2010.Scaled(0.000001)
	if tiny.Organizations < 1 || tiny.Users < 1 {
		t.Errorf("tiny = %+v", tiny)
	}
}

func TestGenerateSmallProfileCounts(t *testing.T) {
	sys := core.MustNew(core.Options{DisableSearch: true, DisableAudit: true})
	p := FGCZJan2010.Scaled(0.01)
	if err := Generate(sys, p); err != nil {
		t.Fatal(err)
	}
	st := sys.DB.CollectStats()
	if st.Users != p.Users || st.Projects != p.Projects ||
		st.Institutes != p.Institutes || st.Organizations != p.Organizations ||
		st.Samples != p.Samples || st.Extracts != p.Extracts ||
		st.DataResources != p.DataResources || st.Workunits != p.Workunits {
		t.Errorf("stats = %+v, profile = %+v", st, p)
	}
}

func TestGenerateReferentialShape(t *testing.T) {
	sys := core.MustNew(core.Options{DisableSearch: true, DisableAudit: true})
	if err := Generate(sys, FGCZJan2010.Scaled(0.005)); err != nil {
		t.Fatal(err)
	}
	// Every sample points at an existing project; every extract at an
	// existing sample; every resource at an existing workunit. The entity
	// layer enforces this at write time; verify a posteriori anyway.
	err := sys.View(func(tx *store.Tx) error {
		if err := tx.Scan(model.KindSample, func(r store.Record) bool {
			if !tx.Exists(model.KindProject, r.Int("project")) {
				t.Errorf("sample %d has dangling project", r.ID())
				return false
			}
			return true
		}); err != nil {
			return err
		}
		if err := tx.Scan(model.KindExtract, func(r store.Record) bool {
			if !tx.Exists(model.KindSample, r.Int("sample")) {
				t.Errorf("extract %d has dangling sample", r.ID())
				return false
			}
			return true
		}); err != nil {
			return err
		}
		assigned := 0
		total := 0
		if err := tx.Scan(model.KindDataResource, func(r store.Record) bool {
			total++
			if !tx.Exists(model.KindWorkunit, r.Int("workunit")) {
				t.Errorf("resource %d has dangling workunit", r.ID())
				return false
			}
			if r.Int("extract") != 0 {
				assigned++
			}
			return true
		}); err != nil {
			return err
		}
		// Roughly 60% extract assignment.
		frac := float64(assigned) / float64(total)
		if frac < 0.4 || frac > 0.8 {
			t.Errorf("extract assignment fraction = %v", frac)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := FGCZJan2010.Scaled(0.003)
	run := func() model.Stats {
		sys := core.MustNew(core.Options{DisableSearch: true, DisableAudit: true})
		if err := Generate(sys, p); err != nil {
			t.Fatal(err)
		}
		return sys.DB.CollectStats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestVocabulariesSeeded(t *testing.T) {
	sys := core.MustNew(core.Options{DisableSearch: true, DisableAudit: true})
	if err := Generate(sys, FGCZJan2010.Scaled(0.002)); err != nil {
		t.Fatal(err)
	}
	_ = sys.View(func(tx *store.Tx) error {
		terms, err := sys.Vocab.Terms(tx, model.VocabSpecies, "")
		if err != nil {
			t.Fatal(err)
		}
		if len(terms) != len(seedTerms[model.VocabSpecies]) {
			t.Errorf("species terms = %d", len(terms))
		}
		// All samples carry valid species annotations.
		return tx.Scan(model.KindSample, func(r store.Record) bool {
			if !sys.Vocab.Exists(tx, model.VocabSpecies, r.String("species")) {
				t.Errorf("sample %d has unknown species %q", r.ID(), r.String("species"))
				return false
			}
			return true
		})
	})
}

func TestStatsTableLayout(t *testing.T) {
	out := StatsTable(model.Stats{
		Users: 1555, Projects: 750, Institutes: 224, Organizations: 59,
		Samples: 3151, Extracts: 3642, DataResources: 40005, Workunits: 23979,
	})
	for _, want := range []string{
		"Users          1555   Samples         3151",
		"Projects        750   Extracts        3642",
		"Institutes      224   Data Resources 40005",
		"Organizations    59   Workunits      23979",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
