// Package genload generates deterministic synthetic populations at the
// scale of the FGCZ production deployment, reproducing the paper's
// deployment-statistics table (January 2010): 1555 users, 750 projects,
// 224 institutes, 59 organizations, 3151 samples, 3642 extracts, 40005
// data resources and 23979 workunits. The referential shape follows the
// Figure 1 schema: every sample belongs to a project, every extract to a
// sample, every data resource to a workunit, and a share of data resources
// is assigned to extracts.
package genload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/store"
)

// Profile fixes the population sizes of one generated deployment.
type Profile struct {
	Organizations int
	Institutes    int
	Users         int
	Projects      int
	Samples       int
	Extracts      int
	Workunits     int
	DataResources int
	// Seed makes generation deterministic.
	Seed int64
}

// FGCZJan2010 is the deployment of the paper's final table.
var FGCZJan2010 = Profile{
	Organizations: 59,
	Institutes:    224,
	Users:         1555,
	Projects:      750,
	Samples:       3151,
	Extracts:      3642,
	Workunits:     23979,
	DataResources: 40005,
	Seed:          20100101,
}

// Scaled returns the profile with every population scaled by f (minimum 1
// each), for fast benchmark variants.
func (p Profile) Scaled(f float64) Profile {
	scale := func(n int) int {
		m := int(float64(n) * f)
		if m < 1 {
			m = 1
		}
		return m
	}
	return Profile{
		Organizations: scale(p.Organizations),
		Institutes:    scale(p.Institutes),
		Users:         scale(p.Users),
		Projects:      scale(p.Projects),
		Samples:       scale(p.Samples),
		Extracts:      scale(p.Extracts),
		Workunits:     scale(p.Workunits),
		DataResources: scale(p.DataResources),
		Seed:          p.Seed,
	}
}

// Vocabulary seed terms per annotation attribute.
var seedTerms = map[string][]string{
	model.VocabSpecies: {
		"Arabidopsis thaliana", "Homo sapiens", "Mus musculus",
		"Saccharomyces cerevisiae", "Drosophila melanogaster", "Danio rerio",
	},
	model.VocabTissue: {
		"Leaf", "Root", "Liver", "Brain", "Muscle", "Blood",
	},
	model.VocabDiseaseState: {
		"Healthy", "Tumor", "Infected", "Stressed",
	},
	model.VocabCellType: {
		"Epithelial", "Fibroblast", "Neuron", "Hepatocyte",
	},
	model.VocabTreatment: {
		"None", "Light", "Dark", "Heat shock", "Drought", "Drug A",
	},
	model.VocabExtractionMethod: {
		"TRIzol", "Phenol-chloroform", "Column kit", "FACS sort",
	},
	model.VocabLabel: {
		"Cy3", "Cy5", "Biotin", "None",
	},
	model.VocabInstrumentType: {
		"GeneChip", "LTQ-FT", "Illumina GA",
	},
}

// resource name formats by generated workunit flavour.
var resourceFormats = []string{"cel", "raw", "csv", "txt", "zip"}

// batchSize bounds the number of creates per transaction during bulk
// generation. Transactions are linear in their write-set size (the
// overlay carries its own per-index key maps), so the batch exists only
// to bound peak overlay memory and to mirror how real bulk loaders
// checkpoint; bigger batches amortize per-commit costs (version install,
// WAL frame, fsync) over more records.
const batchSize = 8000

// inBatches runs fn(tx, i) for i in [0, n), committing every batchSize
// iterations.
func inBatches(sys *core.System, n int, fn func(tx *store.Tx, i int) error) error {
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		if err := sys.Update(func(tx *store.Tx) error {
			for i := start; i < end; i++ {
				if err := fn(tx, i); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// PopulateDir generates profile p into a durable data directory through
// the store's write-ahead log, then snapshots and truncates so the
// directory ends as a compact snapshot plus an empty WAL — the shape a
// freshly provisioned deployment should have. The directory is left
// cleanly closed; open it with store.Open or core.New{DataDir}.
// It returns the generated population statistics.
func PopulateDir(dir string, p Profile, sync store.SyncPolicy) (model.Stats, error) {
	// Refuse a directory that already holds data: generating on top would
	// silently double every population.
	if info, err := store.InspectDir(dir); err == nil && (info.HasSnapshot || info.LastSeq > 0) {
		return model.Stats{}, fmt.Errorf("genload: data directory %s already holds commits through seq %d; refusing to generate on top", dir, info.LastSeq)
	}
	s, err := store.Open(dir, store.DurabilityOptions{Sync: sync, SnapshotEvery: -1})
	if err != nil {
		return model.Stats{}, err
	}
	sys, err := core.NewWithStore(s, core.Options{DisableSearch: true, DisableAudit: true})
	if err != nil {
		s.Close()
		return model.Stats{}, err
	}
	if err := Generate(sys, p); err != nil {
		s.Close()
		return model.Stats{}, err
	}
	stats := sys.DB.CollectStats()
	if err := s.Snapshot(); err != nil {
		s.Close()
		return model.Stats{}, err
	}
	return stats, s.Close()
}

// Generate populates the system with the profile's entity counts. It is
// deterministic for a given profile (including seed). Generation commits
// in bounded batches, one entity family at a time, mirroring bulk
// migration loads.
func Generate(sys *core.System, p Profile) error {
	rng := rand.New(rand.NewSource(p.Seed))

	// Controlled vocabularies first, released directly by an expert.
	if err := sys.Update(func(tx *store.Tx) error {
		for _, vocabName := range model.VocabularyNames() {
			for _, term := range seedTerms[vocabName] {
				if _, err := sys.Vocab.AddTerm(tx, "genload", vocabName, term, true); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return fmt.Errorf("genload: vocabularies: %w", err)
	}

	var orgIDs, instIDs, userIDs, projIDs, sampleIDs, extractIDs, wuIDs []int64

	if err := inBatches(sys, p.Organizations, func(tx *store.Tx, i int) error {
		id, err := sys.DB.CreateOrganization(tx, "genload", model.Organization{
			Name:    fmt.Sprintf("Organization %03d", i+1),
			Country: []string{"CH", "DE", "FR", "IT", "AT"}[rng.Intn(5)],
		})
		if err != nil {
			return err
		}
		orgIDs = append(orgIDs, id)
		return nil
	}); err != nil {
		return fmt.Errorf("genload: organizations: %w", err)
	}
	if err := inBatches(sys, p.Institutes, func(tx *store.Tx, i int) error {
		id, err := sys.DB.CreateInstitute(tx, "genload", model.Institute{
			Name:         fmt.Sprintf("Institute %04d", i+1),
			Organization: orgIDs[rng.Intn(len(orgIDs))],
		})
		if err != nil {
			return err
		}
		instIDs = append(instIDs, id)
		return nil
	}); err != nil {
		return fmt.Errorf("genload: institutes: %w", err)
	}

	if err := inBatches(sys, p.Users, func(tx *store.Tx, i int) error {
		role := model.RoleScientist
		switch {
		case i < 5:
			role = model.RoleAdmin
		case i < 30:
			role = model.RoleExpert
		}
		id, err := sys.DB.CreateUser(tx, "genload", model.User{
			Login:     fmt.Sprintf("user%04d", i+1),
			FullName:  fmt.Sprintf("User %04d", i+1),
			Email:     fmt.Sprintf("user%04d@fgcz.example", i+1),
			Institute: instIDs[rng.Intn(len(instIDs))],
			Role:      role,
			Active:    true,
		})
		if err != nil {
			return err
		}
		userIDs = append(userIDs, id)
		return nil
	}); err != nil {
		return fmt.Errorf("genload: users: %w", err)
	}

	areas := []string{"genomics", "proteomics", "metabolomics"}
	if err := inBatches(sys, p.Projects, func(tx *store.Tx, i int) error {
		nMembers := 1 + rng.Intn(4)
		members := make([]int64, 0, nMembers)
		for j := 0; j < nMembers; j++ {
			members = append(members, userIDs[rng.Intn(len(userIDs))])
		}
		id, err := sys.DB.CreateProject(tx, "genload", model.Project{
			Name:      fmt.Sprintf("p%04d", i+1000),
			Coach:     userIDs[rng.Intn(len(userIDs))],
			Members:   dedupe(members),
			Institute: instIDs[rng.Intn(len(instIDs))],
			Area:      areas[rng.Intn(len(areas))],
		})
		if err != nil {
			return err
		}
		projIDs = append(projIDs, id)
		return nil
	}); err != nil {
		return fmt.Errorf("genload: projects: %w", err)
	}

	if err := inBatches(sys, p.Samples, func(tx *store.Tx, i int) error {
		id, err := sys.DB.CreateSample(tx, "genload", model.Sample{
			Name:         fmt.Sprintf("sample-%05d", i+1),
			Project:      projIDs[rng.Intn(len(projIDs))],
			Owner:        userIDs[rng.Intn(len(userIDs))],
			Species:      pick(rng, model.VocabSpecies),
			Tissue:       pick(rng, model.VocabTissue),
			DiseaseState: pick(rng, model.VocabDiseaseState),
			Treatment:    pick(rng, model.VocabTreatment),
		})
		if err != nil {
			return err
		}
		sampleIDs = append(sampleIDs, id)
		return nil
	}); err != nil {
		return fmt.Errorf("genload: samples: %w", err)
	}
	if err := inBatches(sys, p.Extracts, func(tx *store.Tx, i int) error {
		id, err := sys.DB.CreateExtract(tx, "genload", model.Extract{
			Name:             fmt.Sprintf("extract-%05d", i+1),
			Sample:           sampleIDs[rng.Intn(len(sampleIDs))],
			ExtractionMethod: pick(rng, model.VocabExtractionMethod),
			Label:            pick(rng, model.VocabLabel),
			Concentration:    10 + 200*rng.Float64(),
			VolumeUL:         5 + 95*rng.Float64(),
		})
		if err != nil {
			return err
		}
		extractIDs = append(extractIDs, id)
		return nil
	}); err != nil {
		return fmt.Errorf("genload: extracts: %w", err)
	}

	if err := inBatches(sys, p.Workunits, func(tx *store.Tx, i int) error {
		id, err := sys.DB.CreateWorkunit(tx, "genload", model.Workunit{
			Name:    fmt.Sprintf("workunit-%05d", i+1),
			Project: projIDs[rng.Intn(len(projIDs))],
			Owner:   userIDs[rng.Intn(len(userIDs))],
			State:   model.WorkunitReady,
		})
		if err != nil {
			return err
		}
		wuIDs = append(wuIDs, id)
		return nil
	}); err != nil {
		return fmt.Errorf("genload: workunits: %w", err)
	}

	if err := inBatches(sys, p.DataResources, func(tx *store.Tx, i int) error {
		format := resourceFormats[rng.Intn(len(resourceFormats))]
		var extract int64
		// Roughly 60% of resources are connected to an extract, the rest
		// are derived results.
		if rng.Intn(10) < 6 {
			extract = extractIDs[rng.Intn(len(extractIDs))]
		}
		_, err := sys.DB.CreateDataResource(tx, "genload", model.DataResource{
			Name:      fmt.Sprintf("resource-%06d.%s", i+1, format),
			Workunit:  wuIDs[rng.Intn(len(wuIDs))],
			Extract:   extract,
			URI:       fmt.Sprintf("bfabric://archive/gen/%06d.%s", i+1, format),
			SizeBytes: int64(1024 + rng.Intn(10<<20)),
			Format:    format,
			Linked:    true,
		})
		return err
	}); err != nil {
		return fmt.Errorf("genload: data resources: %w", err)
	}
	return nil
}

func pick(rng *rand.Rand, vocabName string) string {
	terms := seedTerms[vocabName]
	return terms[rng.Intn(len(terms))]
}

func dedupe(ids []int64) []int64 {
	seen := make(map[int64]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// StatsTable renders the deployment statistics in the two-column layout of
// the paper's final table.
func StatsTable(st model.Stats) string {
	return fmt.Sprintf(
		"Users         %5d   Samples        %5d\n"+
			"Projects      %5d   Extracts       %5d\n"+
			"Institutes    %5d   Data Resources %5d\n"+
			"Organizations %5d   Workunits      %5d\n",
		st.Users, st.Samples,
		st.Projects, st.Extracts,
		st.Institutes, st.DataResources,
		st.Organizations, st.Workunits,
	)
}
