// Package tasks implements B-Fabric's task orientation (Figure 8): the
// system reminds users about open tasks awaiting their action. Tasks are
// created either explicitly or automatically from system events — e.g. a
// newly created pending annotation spawns a "release annotation" task on
// the expert's task list.
package tasks

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"slices"
	"strconv"

	"repro/internal/events"
	"repro/internal/store"
)

// Task states.
const (
	// StateOpen marks a task awaiting action.
	StateOpen = "open"
	// StateDone marks a completed task.
	StateDone = "done"
	// StateCancelled marks a task made obsolete (e.g. by a merge that
	// removed the annotation awaiting review).
	StateCancelled = "cancelled"
)

// Well-known task types.
const (
	// TypeReleaseAnnotation asks an expert to review a pending term.
	TypeReleaseAnnotation = "release_annotation"
	// TypeAssignExtracts asks a scientist to assign extracts to freshly
	// imported data resources.
	TypeAssignExtracts = "assign_extracts"
	// TypeReviewError asks an administrator to inspect a failed workflow.
	TypeReviewError = "review_error"
)

const tasksTable = "task"

// Task is one open-item entry on a user's (or role's) task list.
type Task struct {
	ID          int64
	Type        string
	Title       string
	Description string
	// AssigneeRole targets every user holding a role (e.g. "expert").
	AssigneeRole string
	// AssigneeLogin targets one user specifically.
	AssigneeLogin string
	// Kind/Ref point at the object the task concerns.
	Kind  string
	Ref   int64
	State string
	// DoneBy is the login of whoever completed/cancelled the task.
	DoneBy string
}

// ErrTaskClosed is returned when completing a task that is not open.
var ErrTaskClosed = errors.New("task is not open")

// Engine stores tasks and derives them from bus events.
type Engine struct {
	store *store.Store
}

// New creates a task engine over the store and, if bus is non-nil, wires
// the automatic task derivation rules:
//
//   - annotation.created (pending) → release_annotation task for experts
//   - annotation.released / annotation.merged → matching review tasks close
func New(s *store.Store, bus *events.Bus) *Engine {
	s.EnsureTable(tasksTable)
	if !s.HasTable(tasksTable + "_marker") {
		_ = s.CreateIndex(tasksTable, "state", false)
		_ = s.CreateIndex(tasksTable, "assignee_role", false)
		_ = s.CreateIndex(tasksTable, "assignee_login", false)
		_ = s.CreateIndex(tasksTable, "refkey", false)
		s.EnsureTable(tasksTable + "_marker")
	}
	e := &Engine{store: s}
	if bus != nil {
		bus.Subscribe("annotation.created", e.onAnnotationCreated)
		bus.Subscribe("annotation.released", e.onAnnotationResolved)
		bus.Subscribe("annotation.merged", e.onAnnotationResolved)
	}
	return e
}

func refKey(kind string, ref int64) string { return kind + ":" + strconv.FormatInt(ref, 10) }

func taskFromRecord(r store.Record) Task {
	return Task{
		ID:            r.ID(),
		Type:          r.String("type"),
		Title:         r.String("title"),
		Description:   r.String("description"),
		AssigneeRole:  r.String("assignee_role"),
		AssigneeLogin: r.String("assignee_login"),
		Kind:          r.String("kind"),
		Ref:           r.Int("ref"),
		State:         r.String("state"),
		DoneBy:        r.String("done_by"),
	}
}

// Create adds a task inside the caller's transaction and returns its id.
func (e *Engine) Create(tx *store.Tx, t Task) (int64, error) {
	if t.Title == "" {
		return 0, fmt.Errorf("tasks: empty title")
	}
	if t.AssigneeRole == "" && t.AssigneeLogin == "" {
		return 0, fmt.Errorf("tasks: task %q has no assignee", t.Title)
	}
	state := t.State
	if state == "" {
		state = StateOpen
	}
	return tx.Insert(tasksTable, store.Record{
		"type":           t.Type,
		"title":          t.Title,
		"description":    t.Description,
		"assignee_role":  t.AssigneeRole,
		"assignee_login": t.AssigneeLogin,
		"kind":           t.Kind,
		"ref":            t.Ref,
		"refkey":         refKey(t.Kind, t.Ref),
		"state":          state,
		"done_by":        t.DoneBy,
	})
}

// Get returns the task with the given id.
func (e *Engine) Get(tx *store.Tx, id int64) (Task, error) {
	r, err := tx.GetRef(tasksTable, id)
	if err != nil {
		return Task{}, err
	}
	return taskFromRecord(r), nil
}

// Complete marks an open task done.
func (e *Engine) Complete(tx *store.Tx, actor string, id int64) error {
	return e.close(tx, actor, id, StateDone)
}

// Cancel marks an open task cancelled.
func (e *Engine) Cancel(tx *store.Tx, actor string, id int64) error {
	return e.close(tx, actor, id, StateCancelled)
}

// CompleteCtx marks an open task done in its own optimistic transaction,
// retrying write conflicts with store.WithRetry. Task completion is a
// classic contended read-modify-write — two users clearing the same
// shared role queue race on the same records — and the first committer
// wins; the loser retries on a fresh snapshot and then observes the task
// already closed (ErrTaskClosed), which callers should treat as "someone
// beat you to it", not a failure of the system.
func (e *Engine) CompleteCtx(ctx context.Context, actor string, id int64) error {
	return store.WithRetry(ctx, e.store, func(tx *store.Tx) error {
		return e.close(tx, actor, id, StateDone)
	})
}

// CancelCtx is CompleteCtx's counterpart for cancellation.
func (e *Engine) CancelCtx(ctx context.Context, actor string, id int64) error {
	return store.WithRetry(ctx, e.store, func(tx *store.Tx) error {
		return e.close(tx, actor, id, StateCancelled)
	})
}

func (e *Engine) close(tx *store.Tx, actor string, id int64, state string) error {
	r, err := tx.Get(tasksTable, id)
	if err != nil {
		return err
	}
	if r.String("state") != StateOpen {
		return fmt.Errorf("tasks: task %d is %q: %w", id, r.String("state"), ErrTaskClosed)
	}
	r["state"] = state
	r["done_by"] = actor
	return tx.Put(tasksTable, id, r)
}

// ListOpen returns the open tasks visible to a user: those assigned to the
// login directly plus those assigned to any of the user's roles, in id
// order. This is the task list screen of Figure 8.
//
// Each leg is one planned store query; the planner drives from whichever
// index — open-state or assignee — has the smaller postings list and
// filters the other predicate per row, so a system with few open tasks
// pays for the open set, not for the user's task history.
func (e *Engine) ListOpen(tx *store.Tx, login string, roles ...string) ([]Task, error) {
	seen := make(map[int64]bool)
	var out []Task
	collect := func(assignee store.Pred) error {
		rows, err := tx.Query(store.Query{
			Table: tasksTable,
			Where: []store.Pred{store.Eq("state", StateOpen), assignee},
		})
		if err != nil {
			return err
		}
		for rows.Next() {
			if id := rows.ID(); !seen[id] {
				seen[id] = true
				out = append(out, taskFromRecord(rows.Record()))
			}
		}
		return rows.Err()
	}
	if login != "" {
		if err := collect(store.Eq("assignee_login", login)); err != nil {
			return nil, err
		}
	}
	if len(roles) > 0 {
		vals := make([]any, len(roles))
		for i, role := range roles {
			vals[i] = role
		}
		if err := collect(store.Pred{Field: "assignee_role", Op: store.OpIn, Values: vals}); err != nil {
			return nil, err
		}
	}
	slices.SortFunc(out, func(a, b Task) int { return cmp.Compare(a.ID, b.ID) })
	return out, nil
}

// OpenForObject returns the open tasks referring to the given object.
func (e *Engine) OpenForObject(tx *store.Tx, kind string, ref int64) ([]Task, error) {
	rows, err := tx.Query(store.Query{
		Table: tasksTable,
		Where: []store.Pred{store.Eq("refkey", refKey(kind, ref)), store.Eq("state", StateOpen)},
	})
	if err != nil {
		return nil, err
	}
	var out []Task
	for rows.Next() {
		out = append(out, taskFromRecord(rows.Record()))
	}
	return out, rows.Err()
}

// CountOpen returns the number of open tasks in the system. The count is
// answered from the state index's postings length (the planner's
// count(postings) strategy) — no id slice is materialized.
func (e *Engine) CountOpen(tx *store.Tx) (int, error) {
	return tx.QueryCount(store.Query{
		Table: tasksTable,
		Where: []store.Pred{store.Eq("state", StateOpen)},
	})
}

// Summary is the task-queue health snapshot the portal's operations view
// renders: how many tasks sit in each state, and how the open backlog
// splits across role queues.
type Summary struct {
	ByState    map[string]int `json:"by_state"`
	OpenByRole map[string]int `json:"open_by_role"`
	Total      int            `json:"total"`
}

// Summarize computes the snapshot from maintained counters: the state
// histogram walks the state index's distinct keys, the per-role open
// backlog folds the open postings through the assignee_role residual,
// and the total is the table's live count — no task record's full task
// list is ever built.
func (e *Engine) Summarize(tx *store.Tx) (Summary, error) {
	s := Summary{
		ByState:    map[string]int{},
		OpenByRole: map[string]int{},
		Total:      tx.Count(tasksTable),
	}
	states, err := tx.Aggregate(store.Query{Table: tasksTable}.GroupBy("state"))
	if err != nil {
		return s, err
	}
	for _, g := range states.Groups {
		if state, ok := g.Key.(string); ok {
			s.ByState[state] = g.Count()
		}
	}
	roles, err := tx.Aggregate(store.Query{
		Table: tasksTable,
		Where: []store.Pred{store.Eq("state", StateOpen)},
	}.GroupBy("assignee_role"))
	if err != nil {
		return s, err
	}
	for _, g := range roles.Groups {
		if role, ok := g.Key.(string); ok && role != "" {
			s.OpenByRole[role] = g.Count()
		}
	}
	return s, nil
}

// --- event-driven derivation ------------------------------------------------

func (e *Engine) onAnnotationCreated(ev events.Event) error {
	tx, ok := ev.Tx.(*store.Tx)
	if !ok {
		return fmt.Errorf("tasks: annotation.created without transaction")
	}
	if state, _ := ev.Payload["state"].(string); state != "pending" {
		return nil // released terms need no review
	}
	value, _ := ev.Payload["value"].(string)
	vocabulary, _ := ev.Payload["vocabulary"].(string)
	_, err := e.Create(tx, Task{
		Type:         TypeReleaseAnnotation,
		Title:        fmt.Sprintf("Release annotation %q (%s)", value, vocabulary),
		Description:  fmt.Sprintf("User %s created annotation %q in vocabulary %s; review and release it.", ev.Actor, value, vocabulary),
		AssigneeRole: "expert",
		Kind:         ev.Kind,
		Ref:          ev.ID,
	})
	return err
}

// onAnnotationResolved closes review tasks when the term is released or
// merged away.
func (e *Engine) onAnnotationResolved(ev events.Event) error {
	tx, ok := ev.Tx.(*store.Tx)
	if !ok {
		return fmt.Errorf("tasks: %s without transaction", ev.Topic)
	}
	refs := []int64{ev.ID}
	// A merge removes the losing term; its review task must close too.
	if droppedID, ok := ev.Payload["dropped_id"].(int64); ok {
		refs = append(refs, droppedID)
	}
	for _, ref := range refs {
		open, err := e.OpenForObject(tx, ev.Kind, ref)
		if err != nil {
			return err
		}
		for _, t := range open {
			if t.Type != TypeReleaseAnnotation {
				continue
			}
			if err := e.Complete(tx, ev.Actor, t.ID); err != nil {
				return err
			}
		}
	}
	return nil
}
