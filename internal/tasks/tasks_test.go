package tasks

import (
	"errors"
	"testing"

	"repro/internal/entity"
	"repro/internal/events"
	"repro/internal/model"
	"repro/internal/store"
	"repro/internal/vocab"
)

func newEngine(t *testing.T) (*Engine, *store.Store) {
	t.Helper()
	s := store.New()
	e := New(s, nil)
	return e, s
}

func TestCreateAndGet(t *testing.T) {
	e, s := newEngine(t)
	var id int64
	err := s.Update(func(tx *store.Tx) error {
		var err error
		id, err = e.Create(tx, Task{
			Type: TypeReviewError, Title: "Check failed import",
			AssigneeRole: "admin", Kind: "workunit", Ref: 7,
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.View(func(tx *store.Tx) error {
		got, err := e.Get(tx, id)
		if err != nil {
			t.Fatal(err)
		}
		if got.State != StateOpen || got.Title != "Check failed import" || got.Ref != 7 {
			t.Errorf("task = %+v", got)
		}
		return nil
	})
}

func TestCreateValidation(t *testing.T) {
	e, s := newEngine(t)
	err := s.Update(func(tx *store.Tx) error {
		_, err := e.Create(tx, Task{Title: "", AssigneeRole: "expert"})
		return err
	})
	if err == nil {
		t.Error("empty title accepted")
	}
	err = s.Update(func(tx *store.Tx) error {
		_, err := e.Create(tx, Task{Title: "no assignee"})
		return err
	})
	if err == nil {
		t.Error("missing assignee accepted")
	}
}

func TestCompleteAndDoubleComplete(t *testing.T) {
	e, s := newEngine(t)
	var id int64
	_ = s.Update(func(tx *store.Tx) error {
		id, _ = e.Create(tx, Task{Title: "t", AssigneeLogin: "alice"})
		return nil
	})
	if err := s.Update(func(tx *store.Tx) error { return e.Complete(tx, "alice", id) }); err != nil {
		t.Fatal(err)
	}
	_ = s.View(func(tx *store.Tx) error {
		got, _ := e.Get(tx, id)
		if got.State != StateDone || got.DoneBy != "alice" {
			t.Errorf("task = %+v", got)
		}
		return nil
	})
	err := s.Update(func(tx *store.Tx) error { return e.Complete(tx, "bob", id) })
	if !errors.Is(err, ErrTaskClosed) {
		t.Fatalf("double complete: %v", err)
	}
}

func TestCancel(t *testing.T) {
	e, s := newEngine(t)
	var id int64
	_ = s.Update(func(tx *store.Tx) error {
		id, _ = e.Create(tx, Task{Title: "t", AssigneeRole: "expert"})
		return nil
	})
	if err := s.Update(func(tx *store.Tx) error { return e.Cancel(tx, "eva", id) }); err != nil {
		t.Fatal(err)
	}
	_ = s.View(func(tx *store.Tx) error {
		got, _ := e.Get(tx, id)
		if got.State != StateCancelled {
			t.Errorf("task = %+v", got)
		}
		return nil
	})
}

func TestListOpenByLoginAndRole(t *testing.T) {
	e, s := newEngine(t)
	_ = s.Update(func(tx *store.Tx) error {
		_, _ = e.Create(tx, Task{Title: "for alice", AssigneeLogin: "alice"})
		_, _ = e.Create(tx, Task{Title: "for experts", AssigneeRole: "expert"})
		_, _ = e.Create(tx, Task{Title: "for admins", AssigneeRole: "admin"})
		id, _ := e.Create(tx, Task{Title: "done already", AssigneeLogin: "alice"})
		return e.Complete(tx, "alice", id)
	})
	_ = s.View(func(tx *store.Tx) error {
		got, err := e.ListOpen(tx, "alice", "expert")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("ListOpen = %+v", got)
		}
		if got[0].Title != "for alice" || got[1].Title != "for experts" {
			t.Errorf("ListOpen order = %+v", got)
		}
		// A user with no roles sees only direct assignments.
		solo, _ := e.ListOpen(tx, "alice")
		if len(solo) != 1 {
			t.Errorf("solo = %+v", solo)
		}
		return nil
	})
}

func TestListOpenDeduplicates(t *testing.T) {
	e, s := newEngine(t)
	_ = s.Update(func(tx *store.Tx) error {
		// Assigned both to the login and to the role: must appear once.
		_, err := e.Create(tx, Task{Title: "dual", AssigneeLogin: "eva", AssigneeRole: "expert"})
		return err
	})
	_ = s.View(func(tx *store.Tx) error {
		got, _ := e.ListOpen(tx, "eva", "expert")
		if len(got) != 1 {
			t.Errorf("deduplication failed: %+v", got)
		}
		return nil
	})
}

func TestCountOpen(t *testing.T) {
	e, s := newEngine(t)
	_ = s.Update(func(tx *store.Tx) error {
		_, _ = e.Create(tx, Task{Title: "a", AssigneeRole: "expert"})
		id, _ := e.Create(tx, Task{Title: "b", AssigneeRole: "expert"})
		return e.Complete(tx, "x", id)
	})
	_ = s.View(func(tx *store.Tx) error {
		n, err := e.CountOpen(tx)
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Errorf("CountOpen = %d", n)
		}
		return nil
	})
}

// fullFixture wires vocab + tasks over one bus, as in the real system.
func fullFixture(t *testing.T) (*vocab.Service, *Engine, *store.Store) {
	t.Helper()
	s := store.New()
	bus := events.NewBus()
	rg := entity.NewRegistry(s, bus)
	if err := model.RegisterSchema(rg); err != nil {
		t.Fatal(err)
	}
	sv := vocab.New(rg, model.AnnotatedFields(rg))
	e := New(s, bus)
	return sv, e, s
}

func TestPendingAnnotationSpawnsExpertTask(t *testing.T) {
	sv, e, s := fullFixture(t)
	var term vocab.Term
	err := s.Update(func(tx *store.Tx) error {
		var err error
		term, err = sv.AddTerm(tx, "alice", model.VocabDiseaseState, "Hopeless", false)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.View(func(tx *store.Tx) error {
		open, err := e.ListOpen(tx, "", "expert")
		if err != nil {
			t.Fatal(err)
		}
		if len(open) != 1 {
			t.Fatalf("expert tasks = %+v", open)
		}
		tk := open[0]
		if tk.Type != TypeReleaseAnnotation || tk.Ref != term.ID {
			t.Errorf("task = %+v", tk)
		}
		return nil
	})
}

func TestReleasedAnnotationSpawnsNoTask(t *testing.T) {
	sv, e, s := fullFixture(t)
	_ = s.Update(func(tx *store.Tx) error {
		_, err := sv.AddTerm(tx, "eva", model.VocabSpecies, "Mus musculus", true)
		return err
	})
	_ = s.View(func(tx *store.Tx) error {
		open, _ := e.ListOpen(tx, "", "expert")
		if len(open) != 0 {
			t.Errorf("tasks for released term: %+v", open)
		}
		return nil
	})
}

func TestReleaseClosesTask(t *testing.T) {
	sv, e, s := fullFixture(t)
	var term vocab.Term
	_ = s.Update(func(tx *store.Tx) error {
		term, _ = sv.AddTerm(tx, "alice", model.VocabTissue, "Leaff", false)
		return nil
	})
	err := s.Update(func(tx *store.Tx) error {
		return sv.Release(tx, "eva", term.ID)
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.View(func(tx *store.Tx) error {
		open, _ := e.ListOpen(tx, "", "expert")
		if len(open) != 0 {
			t.Errorf("task not closed by release: %+v", open)
		}
		return nil
	})
}

func TestMergeClosesTask(t *testing.T) {
	sv, e, s := fullFixture(t)
	var keep, drop vocab.Term
	_ = s.Update(func(tx *store.Tx) error {
		keep, _ = sv.AddTerm(tx, "alice", model.VocabTissue, "Leaf", true)
		drop, _ = sv.AddTerm(tx, "bob", model.VocabTissue, "Leav", false)
		return nil
	})
	err := s.Update(func(tx *store.Tx) error {
		_, err := sv.Merge(tx, "eva", keep.ID, drop.ID, "")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.View(func(tx *store.Tx) error {
		open, _ := e.ListOpen(tx, "", "expert")
		if len(open) != 0 {
			t.Errorf("task not closed by merge: %+v", open)
		}
		return nil
	})
}

func TestTaskAndAnnotationCommitAtomically(t *testing.T) {
	// If the surrounding transaction rolls back, neither the term nor the
	// derived task survive.
	sv, e, s := fullFixture(t)
	boom := errors.New("boom")
	err := s.Update(func(tx *store.Tx) error {
		if _, err := sv.AddTerm(tx, "alice", model.VocabTissue, "Phantom", false); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	_ = s.View(func(tx *store.Tx) error {
		open, _ := e.ListOpen(tx, "", "expert")
		if len(open) != 0 {
			t.Errorf("task survived rollback: %+v", open)
		}
		n, _ := e.CountOpen(tx)
		if n != 0 {
			t.Errorf("CountOpen = %d", n)
		}
		return nil
	})
	if sv.Count() != 0 {
		t.Error("term survived rollback")
	}
}

func TestOpenForObject(t *testing.T) {
	e, s := newEngine(t)
	_ = s.Update(func(tx *store.Tx) error {
		_, _ = e.Create(tx, Task{Title: "a", AssigneeRole: "expert", Kind: "annotation", Ref: 5})
		_, _ = e.Create(tx, Task{Title: "b", AssigneeRole: "expert", Kind: "annotation", Ref: 6})
		return nil
	})
	_ = s.View(func(tx *store.Tx) error {
		got, err := e.OpenForObject(tx, "annotation", 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].Title != "a" {
			t.Errorf("OpenForObject = %+v", got)
		}
		return nil
	})
}
