package store

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// These tests pin the indexed-overlay semantics: the per-transaction
// key→ids maps that make unique checks and overlay-aware lookups O(1)
// must be observationally identical to the reference implementation that
// scanned every pending write, across arbitrary Insert/Put/Delete/Lookup
// interleavings — including the failure paths, which must leave no
// partial overlay state behind.

// overlayTestStore builds a table with a unique index (u), a non-unique
// index (g) and an unindexed field (z).
func overlayTestStore(t *testing.T) *Store {
	t.Helper()
	s := New()
	if err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("t", "u", true); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("t", "g", false); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestInsertFailureLeavesNoOverlayState is the regression test for the
// provisional-id rollback path: a failed Insert must undo everything — the
// provisional id and any overlay-map registration — so that a subsequent
// successful Insert yields exactly the postings it would have without the
// failure. It runs in both overlay regimes: below the map-build threshold
// (pending set scanned) and above it (materialized key maps).
func TestInsertFailureLeavesNoOverlayState(t *testing.T) {
	for _, seed := range []int{0, ixwBuildThreshold + 4} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			testInsertFailureUndo(t, seed)
		})
	}
}

func testInsertFailureUndo(t *testing.T, seed int) {
	s := overlayTestStore(t)
	err := s.Update(func(tx *Tx) error {
		for i := 0; i < seed; i++ {
			if _, err := tx.Insert("t", Record{"u": fmt.Sprintf("seed%d", i), "g": "seed"}); err != nil {
				return err
			}
		}
		first, err := tx.Insert("t", Record{"u": "taken", "g": "x"})
		if err != nil {
			return err
		}
		// This insert passes the non-unique index but violates u: if the
		// implementation registered overlay entries index-by-index before
		// failing, g="phantom" would leak.
		if _, err := tx.Insert("t", Record{"u": "taken", "g": "phantom"}); !errors.Is(err, ErrUnique) {
			return fmt.Errorf("want ErrUnique, got %v", err)
		}
		second, err := tx.Insert("t", Record{"u": "free", "g": "phantom"})
		if err != nil {
			return fmt.Errorf("insert after failed insert: %w", err)
		}
		if second != first+1 {
			return fmt.Errorf("provisional id not rolled back: ids %d, %d", first, second)
		}
		ids, err := tx.Lookup("t", "g", "phantom")
		if err != nil {
			return err
		}
		if len(ids) != 1 || ids[0] != second {
			return fmt.Errorf("phantom overlay entry survived the failed insert: g=phantom -> %v", ids)
		}
		// The failed insert's unique key must not block re-use either.
		if _, err := tx.Insert("t", Record{"u": "free2", "g": "x"}); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Committed postings must match the overlay-time view exactly.
	err = s.View(func(tx *Tx) error {
		for _, tc := range []struct {
			field string
			value string
			want  int
		}{{"g", "phantom", 1}, {"g", "x", 2}, {"u", "taken", 1}, {"u", "free", 1}, {"g", "seed", seed}} {
			ids, err := tx.Lookup("t", tc.field, tc.value)
			if err != nil {
				return err
			}
			if len(ids) != tc.want {
				return fmt.Errorf("%s=%s: got %v, want %d ids", tc.field, tc.value, ids, tc.want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// refModel is the reference implementation the overlay maps must match: a
// mirror of committed state plus scan-all-pending transaction semantics.
type refModel struct {
	committed map[int64]Record
	writes    map[int64]Record
	deletes   map[int64]bool
	nextID    int64
}

func newRefModel() *refModel {
	return &refModel{committed: make(map[int64]Record), nextID: 1}
}

func (m *refModel) beginTx() {
	m.writes = make(map[int64]Record)
	m.deletes = make(map[int64]bool)
}

func (m *refModel) commitTx() {
	for id := range m.deletes {
		delete(m.committed, id)
	}
	for id, r := range m.writes {
		m.committed[id] = r
	}
	m.writes, m.deletes = nil, nil
}

func (m *refModel) exists(id int64) bool {
	if m.deletes[id] {
		return false
	}
	if _, ok := m.writes[id]; ok {
		return true
	}
	_, ok := m.committed[id]
	return ok
}

// uniqueConflict reports whether writing value v under id on the unique
// field would collide, per the reference scan-everything semantics.
func (m *refModel) uniqueConflict(v any, self int64) bool {
	k, ok := keyFor(v)
	if !ok {
		return false
	}
	for id, r := range m.committed {
		if id == self || m.deletes[id] {
			continue
		}
		if _, rewritten := m.writes[id]; rewritten {
			continue
		}
		if k2, ok2 := keyFor(r["u"]); ok2 && k2 == k {
			return true
		}
	}
	for id, r := range m.writes {
		if id == self {
			continue
		}
		if k2, ok2 := keyFor(r["u"]); ok2 && k2 == k {
			return true
		}
	}
	return false
}

// lookup is the reference Lookup: filter committed, scan pending, sort.
func (m *refModel) lookup(field string, v any) []int64 {
	want, ok := keyFor(v)
	if !ok {
		return nil
	}
	var ids []int64
	for id, r := range m.committed {
		if m.deletes[id] {
			continue
		}
		if _, rewritten := m.writes[id]; rewritten {
			continue
		}
		if k, ok2 := keyFor(r[field]); ok2 && k == want {
			ids = append(ids, id)
		}
	}
	for id, r := range m.writes {
		if m.deletes[id] {
			continue
		}
		if k, ok2 := keyFor(r[field]); ok2 && k == want {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (m *refModel) insert(r Record) (int64, bool) {
	if m.uniqueConflict(r["u"], 0) {
		return 0, false
	}
	id := m.nextID
	m.nextID++
	rec := r.Clone()
	rec[IDField] = id
	m.writes[id] = rec
	return id, true
}

func (m *refModel) put(id int64, r Record) error {
	if !m.exists(id) {
		return ErrNotFound
	}
	if m.uniqueConflict(r["u"], id) {
		return ErrUnique
	}
	rec := r.Clone()
	rec[IDField] = id
	m.writes[id] = rec
	return nil
}

func (m *refModel) del(id int64) bool {
	if !m.exists(id) {
		return false
	}
	delete(m.writes, id)
	m.deletes[id] = true
	return true
}

// liveIDs returns every id visible to the current transaction, sorted.
func (m *refModel) liveIDs() []int64 {
	var ids []int64
	for id := range m.committed {
		if !m.deletes[id] {
			if _, rewritten := m.writes[id]; !rewritten {
				ids = append(ids, id)
			}
		}
	}
	for id := range m.writes {
		if !m.deletes[id] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestOverlayMatchesReferenceModel drives randomized interleavings of
// Insert/Put/Delete/Lookup through multi-statement transactions and
// checks, op by op and field by field (unique index, non-unique index,
// unindexed fallback), that the overlay-indexed implementation answers
// exactly like the reference scan-all-pending model — including which
// operations fail. A concurrent snapshot reader runs throughout so the
// -race pass also fences the overlay maps against the lock-free read
// path.
func TestOverlayMatchesReferenceModel(t *testing.T) {
	s := overlayTestStore(t)
	ref := newRefModel()
	rng := rand.New(rand.NewSource(42))

	uvals := []string{"u0", "u1", "u2", "u3", "u4", "u5", "u6", "u7"}
	gvals := []string{"g0", "g1", "g2"}
	zvals := []string{"z0", "z1"}
	randRec := func() Record {
		return Record{
			"u": uvals[rng.Intn(len(uvals))],
			"g": gvals[rng.Intn(len(gvals))],
			"z": zvals[rng.Intn(len(zvals))],
		}
	}
	pickID := func() int64 {
		live := ref.liveIDs()
		if len(live) == 0 || rng.Intn(8) == 0 {
			return int64(rng.Intn(int(ref.nextID) + 2)) // sometimes dead/bogus
		}
		return live[rng.Intn(len(live))]
	}

	// Background snapshot reader: must never observe uncommitted overlay
	// state and must not race with overlay-map maintenance.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.View(func(tx *Tx) error {
				for _, v := range uvals {
					ids, err := tx.Lookup("t", "u", v)
					if err != nil {
						return err
					}
					if len(ids) > 1 {
						t.Errorf("unique u=%s has %d committed holders", v, len(ids))
					}
				}
				return nil
			})
		}
	}()

	const rounds = 60
	const opsPerTx = 40
	for round := 0; round < rounds; round++ {
		ref.beginTx()
		err := s.Update(func(tx *Tx) error {
			for op := 0; op < opsPerTx; op++ {
				switch rng.Intn(7) {
				case 0, 1, 2: // Insert
					r := randRec()
					wantID, wantOK := ref.insert(r)
					id, err := tx.Insert("t", r)
					if wantOK != (err == nil) {
						return fmt.Errorf("round %d op %d: Insert(%v) err=%v, reference ok=%v", round, op, r, err, wantOK)
					}
					if err != nil && !errors.Is(err, ErrUnique) {
						return fmt.Errorf("round %d op %d: Insert unexpected error %v", round, op, err)
					}
					if err == nil && id != wantID {
						return fmt.Errorf("round %d op %d: Insert id %d, reference %d", round, op, id, wantID)
					}
				case 3: // Put
					id := pickID()
					r := randRec()
					wantErr := ref.put(id, r)
					err := tx.Put("t", id, r)
					switch {
					case wantErr == nil && err != nil:
						return fmt.Errorf("round %d op %d: Put(%d) failed: %v", round, op, id, err)
					case wantErr != nil && !errors.Is(err, wantErr):
						return fmt.Errorf("round %d op %d: Put(%d) err=%v, reference %v", round, op, id, err, wantErr)
					}
				case 4: // Delete
					id := pickID()
					wantOK := ref.del(id)
					err := tx.Delete("t", id)
					if wantOK != (err == nil) {
						return fmt.Errorf("round %d op %d: Delete(%d) err=%v, reference ok=%v", round, op, id, err, wantOK)
					}
				default: // Lookup across all three field classes
					for _, probe := range []struct {
						field string
						v     string
					}{
						{"u", uvals[rng.Intn(len(uvals))]},
						{"g", gvals[rng.Intn(len(gvals))]},
						{"z", zvals[rng.Intn(len(zvals))]},
					} {
						got, err := tx.Lookup("t", probe.field, probe.v)
						if err != nil {
							return err
						}
						want := ref.lookup(probe.field, probe.v)
						if !equalIDs(got, want) {
							return fmt.Errorf("round %d op %d: Lookup(%s=%s) = %v, reference %v",
								round, op, probe.field, probe.v, got, want)
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		ref.commitTx()

		// After every commit the published index state must match too.
		err = s.View(func(tx *Tx) error {
			for _, v := range uvals {
				if got, want := mustLookup(tx, "u", v), ref.lookup("u", v); !equalIDs(got, want) {
					return fmt.Errorf("round %d committed: u=%s = %v, reference %v", round, v, got, want)
				}
			}
			for _, v := range gvals {
				if got, want := mustLookup(tx, "g", v), ref.lookup("g", v); !equalIDs(got, want) {
					return fmt.Errorf("round %d committed: g=%s = %v, reference %v", round, v, got, want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func mustLookup(tx *Tx, field, v string) []int64 {
	ids, err := tx.Lookup("t", field, v)
	if err != nil {
		panic(err)
	}
	return ids
}

// TestCommitCopiesEachStructureOnce proves the delta-merge commit's copy
// bounds: however many records a commit writes, each touched record chunk
// is deep-copied at most once and each touched index shard (and shard
// group) is privatized at most once. Copy counts are observed through the
// cowStats test hook, which commits populate under the writer mutex.
func TestCommitCopiesEachStructureOnce(t *testing.T) {
	s := overlayTestStore(t)

	stats := &struct{ chunks, groups, shards, postings int }{}
	cowStats = stats
	defer func() { cowStats = nil }()

	// Batch 1: 300 inserts — 3 chunks (ids 1..300 at 128/chunk), one
	// shared g key, 300 distinct u keys.
	const n = 300
	err := s.Update(func(tx *Tx) error {
		for i := 0; i < n; i++ {
			if _, err := tx.Insert("t", Record{"u": fmt.Sprintf("u%04d", i), "g": "shared"}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	wantChunks := (n + chunkSize - 1) / chunkSize
	if stats.chunks != wantChunks {
		t.Errorf("batch insert: %d chunk copies, want %d (one per touched chunk)", stats.chunks, wantChunks)
	}
	// Distinct shards actually touched: the u keys plus the one g key.
	shardSet := make(map[string]bool)
	groupSet := make(map[string]bool)
	for i := 0; i < n; i++ {
		sh := shardOf(mustKey(fmt.Sprintf("u%04d", i)))
		shardSet[fmt.Sprintf("u/%d", sh)] = true
		groupSet[fmt.Sprintf("u/%d", sh>>ixShardBits)] = true
	}
	sh := shardOf(mustKey("shared"))
	shardSet[fmt.Sprintf("g/%d", sh)] = true
	groupSet[fmt.Sprintf("g/%d", sh>>ixShardBits)] = true
	if stats.shards != len(shardSet) {
		t.Errorf("batch insert: %d shard copies, want %d (one per touched shard)", stats.shards, len(shardSet))
	}
	if stats.groups != len(groupSet) {
		t.Errorf("batch insert: %d group copies, want %d (one per touched group)", stats.groups, len(groupSet))
	}
	// Every index mutation was an append of fresh serial ids: no postings
	// slice should have needed a private rebuild.
	if stats.postings != 0 {
		t.Errorf("batch insert: %d postings rebuilds, want 0 (pure appends)", stats.postings)
	}

	// Batch 2: rewrite two rows in the same chunk, moving both off the
	// shared g key — the chunk must be copied once, not twice, and the
	// shared key's postings must be rebuilt exactly once for the combined
	// two-id removal.
	*stats = struct{ chunks, groups, shards, postings int }{}
	err = s.Update(func(tx *Tx) error {
		for _, id := range []int64{10, 20} {
			r, err := tx.Get("t", id)
			if err != nil {
				return err
			}
			r["g"] = "moved"
			if err := tx.Put("t", id, r); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.chunks != 1 {
		t.Errorf("same-chunk rewrite: %d chunk copies, want 1", stats.chunks)
	}
	if stats.postings != 1 {
		t.Errorf("shared-key double removal: %d postings rebuilds, want exactly 1", stats.postings)
	}

	// The rewrite must have actually moved the postings.
	err = s.View(func(tx *Tx) error {
		moved, _ := tx.Lookup("t", "g", "moved")
		if !equalIDs(moved, []int64{10, 20}) {
			return fmt.Errorf("g=moved -> %v", moved)
		}
		shared, _ := tx.Lookup("t", "g", "shared")
		if len(shared) != n-2 {
			return fmt.Errorf("g=shared has %d ids, want %d", len(shared), n-2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func mustKey(v any) indexKey {
	k, ok := keyFor(v)
	if !ok {
		panic("unindexable test value")
	}
	return k
}
