package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"
)

// The crash-point campaign generalizes TestKillNineRecovery from "one
// SIGKILL at one moment" to "a disk failure at every moment": the same
// deterministic workload is re-run once per mutating filesystem
// operation, with that operation (and everything after it — the disk
// stays dead) failing. After each run the directory is reopened on a
// healthy filesystem and the recovered state must be exactly a committed
// prefix: every acknowledged commit present, ids contiguous from 1, no
// phantom rows, and the reopened store writable again.
//
// The default run covers a deterministic spread of fault points in every
// mode so `go test ./...` (and make verify) always exercises the
// recovery contract; BFABRIC_FAULTS=full (make test-faults) sweeps every
// fault point, with modes assigned by a seeded shuffle.

const (
	campaignCommits      = 24
	campaignSnapshotStep = 8 // Snapshot() after every 8th commit
)

func openCampaignStore(t *testing.T, dir string, fsys FS) (*Store, error) {
	t.Helper()
	return Open(dir, DurabilityOptions{
		Sync:          SyncAlways,
		SnapshotEvery: -1, // explicit Snapshot calls only: keeps the op stream deterministic
		FS:            fsys,
	})
}

// campaignWorkload commits records {"n": i} one at a time, snapshotting
// periodically so rotation, truncation and the atomic snapshot write all
// appear in the op stream. It returns the highest acknowledged commit and
// the first error (nil when the disk survived).
func campaignWorkload(s *Store) (acked int64, err error) {
	s.EnsureTable("sample")
	for i := int64(1); i <= campaignCommits; i++ {
		err := s.Update(func(tx *Tx) error {
			_, err := tx.Insert("sample", Record{"n": i})
			return err
		})
		if err != nil {
			return acked, err
		}
		acked = i
		if i%campaignSnapshotStep == 0 {
			if err := s.Snapshot(); err != nil {
				// Not a commit loss — everything acked is in the WAL —
				// but the disk is dead; stop like a crashed server would.
				return acked, err
			}
		}
	}
	return acked, nil
}

// assertCommittedPrefix reopens dir on the real filesystem and checks the
// committed-prefix contract against the highest acknowledged commit.
func assertCommittedPrefix(t *testing.T, dir string, acked int64, label string) {
	t.Helper()
	s, err := Open(dir, DurabilityOptions{Sync: SyncAlways, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("%s: reopen after fault: %v", label, err)
	}
	defer s.Close()

	n := int64(s.Count("sample"))
	if n < acked {
		t.Fatalf("%s: lost acknowledged commits: recovered %d, acked %d", label, n, acked)
	}
	if n > campaignCommits {
		t.Fatalf("%s: phantom commits: recovered %d, workload attempted %d", label, n, campaignCommits)
	}
	for id := int64(1); id <= n; id++ {
		r, err := s.Get("sample", id)
		if err != nil {
			t.Fatalf("%s: recovered set has a gap at id %d (count %d): %v", label, id, n, err)
		}
		if r.Int("n") != id {
			t.Fatalf("%s: row %d holds n=%d, want %d", label, id, r.Int("n"), id)
		}
	}
	if _, err := s.Get("sample", n+1); n > 0 && !errors.Is(err, ErrNotFound) {
		t.Fatalf("%s: row beyond the recovered prefix: id %d, err %v", label, n+1, err)
	}

	// A recovered store must be healthy and writable again.
	if h := s.Health(); !h.OK {
		t.Fatalf("%s: reopened store reports degraded: %q", label, h.Reason)
	}
	s.EnsureTable("sample") // schema is not logged; a zero-commit recovery starts from scratch
	if err := s.Update(func(tx *Tx) error {
		_, err := tx.Insert("sample", Record{"n": n + 1})
		return err
	}); err != nil {
		t.Fatalf("%s: write after recovery: %v", label, err)
	}
}

func TestFaultCampaign(t *testing.T) {
	full := os.Getenv("BFABRIC_FAULTS") == "full"

	// Pass 1: a clean run on a counting FaultFS measures the op stream.
	baseDir := t.TempDir()
	probe := NewFaultFS(nil)
	s, err := openCampaignStore(t, baseDir, probe)
	if err != nil {
		t.Fatalf("baseline open: %v", err)
	}
	acked, werr := campaignWorkload(s)
	total := probe.Ops()
	if werr != nil {
		t.Fatalf("baseline workload failed with no faults armed: %v", werr)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("baseline close: %v", err)
	}
	assertCommittedPrefix(t, baseDir, acked, "baseline")
	if total < campaignCommits {
		t.Fatalf("implausible op count %d for %d commits — is the FS threaded under the WAL?", total, campaignCommits)
	}

	modes := []FaultMode{FaultErr, FaultTorn, FaultENOSPC}
	var points []int
	if full {
		for p := 0; p < total; p++ {
			points = append(points, p)
		}
	} else {
		// Deterministic spread: every 5th op, plus the very first and the
		// last — cheap enough for every `go test ./...` run.
		for p := 0; p < total; p += 5 {
			points = append(points, p)
		}
		points = append(points, total-1)
	}
	// Mode per point: seeded shuffle in full mode (printed for replay),
	// plain cycling otherwise.
	seed := int64(1)
	if full {
		if env := os.Getenv("BFABRIC_FAULT_SEED"); env != "" {
			fmt.Sscanf(env, "%d", &seed)
		}
		t.Logf("full campaign: %d fault points, seed %d (replay with BFABRIC_FAULT_SEED)", total, seed)
	}
	rng := rand.New(rand.NewSource(seed))

	for i, p := range points {
		mode := modes[i%len(modes)]
		if full {
			mode = modes[rng.Intn(len(modes))]
		}
		label := fmt.Sprintf("fault@%d/%d mode=%d", p, total, mode)
		dir := t.TempDir()
		ffs := NewFaultFS(nil)
		ffs.FailAt(p, mode)

		var ackedF int64
		s, err := openCampaignStore(t, dir, ffs)
		if err == nil {
			ackedF, _ = campaignWorkload(s)
			s.Close() // the disk is (possibly) dead; errors expected
		}
		if _, fired := ffs.Failed(); !fired {
			t.Fatalf("%s: fault never fired (ops=%d)", label, ffs.Ops())
		}
		assertCommittedPrefix(t, dir, ackedF, label)
	}
}

// TestFaultCampaignDegrades pins the degradation half of the contract on
// one representative fault point: a WAL fsync failure mid-workload must
// turn the store read-only (ErrDegraded, Health not OK) while reads keep
// serving every previously committed record.
func TestFaultCampaignDegrades(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	s, err := openCampaignStore(t, dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.EnsureTable("sample")
	for i := int64(1); i <= 5; i++ {
		if err := s.Update(func(tx *Tx) error {
			_, err := tx.Insert("sample", Record{"n": i})
			return err
		}); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}

	ffs.FailNext(OpSync, FaultErr)
	err = s.Update(func(tx *Tx) error {
		_, err := tx.Insert("sample", Record{"n": int64(6)})
		return err
	})
	if err == nil {
		t.Fatal("commit with a failing fsync was acknowledged")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("failing commit returned %v, want the injected root cause", err)
	}

	if h := s.Health(); h.OK {
		t.Fatal("store still reports healthy after an fsync failure")
	} else if h.Since.IsZero() || h.Reason == "" {
		t.Fatalf("degraded health is missing reason/since: %+v", h)
	}
	err = s.Update(func(tx *Tx) error {
		_, err := tx.Insert("sample", Record{"n": int64(7)})
		return err
	})
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("write on a degraded store returned %v, want ErrDegraded", err)
	}
	var de *DegradedError
	if !errors.As(err, &de) || !errors.Is(de.Cause, ErrInjected) {
		t.Fatalf("degraded error does not carry the root cause: %v", err)
	}

	// The lock-free read path is untouched: every acknowledged commit is
	// still served.
	for i := int64(1); i <= 5; i++ {
		if _, err := s.Get("sample", i); err != nil {
			t.Fatalf("read of committed row %d on degraded store: %v", i, err)
		}
	}
}
