package store

import (
	"errors"
	"fmt"
	"testing"
)

func TestIndexLookup(t *testing.T) {
	s := newTestStore(t, "sample")
	if err := s.CreateIndex("sample", "project", false); err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for i := 0; i < 6; i++ {
		ids = append(ids, mustInsert(t, s, "sample", Record{"project": int64(i % 2)}))
	}
	err := s.View(func(tx *Tx) error {
		got, err := tx.Lookup("sample", "project", int64(0))
		if err != nil {
			return err
		}
		want := []int64{ids[0], ids[2], ids[4]}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("lookup = %v, want %v", got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLookupWithoutIndexFallsBackToScan(t *testing.T) {
	s := newTestStore(t, "sample")
	mustInsert(t, s, "sample", Record{"color": "red"})
	mustInsert(t, s, "sample", Record{"color": "blue"})
	mustInsert(t, s, "sample", Record{"color": "red"})
	err := s.View(func(tx *Tx) error {
		got, err := tx.Lookup("sample", "color", "red")
		if err != nil {
			return err
		}
		if len(got) != 2 || got[0] != 1 || got[1] != 3 {
			t.Errorf("unindexed lookup = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUniqueIndexRejectsDuplicates(t *testing.T) {
	s := newTestStore(t, "user")
	if err := s.CreateIndex("user", "login", true); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, s, "user", Record{"login": "alice"})
	err := s.Update(func(tx *Tx) error {
		_, err := tx.Insert("user", Record{"login": "alice"})
		return err
	})
	if !errors.Is(err, ErrUnique) {
		t.Fatalf("duplicate login: got %v, want ErrUnique", err)
	}
	// A different value is fine.
	mustInsert(t, s, "user", Record{"login": "bob"})
}

func TestUniqueIndexWithinSingleTx(t *testing.T) {
	s := newTestStore(t, "user")
	if err := s.CreateIndex("user", "login", true); err != nil {
		t.Fatal(err)
	}
	err := s.Update(func(tx *Tx) error {
		if _, err := tx.Insert("user", Record{"login": "carol"}); err != nil {
			return err
		}
		_, err := tx.Insert("user", Record{"login": "carol"})
		return err
	})
	if !errors.Is(err, ErrUnique) {
		t.Fatalf("same-tx duplicate: got %v, want ErrUnique", err)
	}
	if s.Count("user") != 0 {
		t.Error("failed tx leaked rows")
	}
}

func TestUniqueIndexAllowsValueHandoffInTx(t *testing.T) {
	s := newTestStore(t, "user")
	if err := s.CreateIndex("user", "login", true); err != nil {
		t.Fatal(err)
	}
	a := mustInsert(t, s, "user", Record{"login": "old"})
	// Rename a, then reuse "old" for a new row, all in one transaction.
	err := s.Update(func(tx *Tx) error {
		if err := tx.Put("user", a, Record{"login": "renamed"}); err != nil {
			return err
		}
		_, err := tx.Insert("user", Record{"login": "old"})
		return err
	})
	if err != nil {
		t.Fatalf("value handoff rejected: %v", err)
	}
}

func TestUniqueIndexFreedByDeleteInTx(t *testing.T) {
	s := newTestStore(t, "user")
	if err := s.CreateIndex("user", "login", true); err != nil {
		t.Fatal(err)
	}
	a := mustInsert(t, s, "user", Record{"login": "x"})
	err := s.Update(func(tx *Tx) error {
		if err := tx.Delete("user", a); err != nil {
			return err
		}
		_, err := tx.Insert("user", Record{"login": "x"})
		return err
	})
	if err != nil {
		t.Fatalf("delete should free unique key: %v", err)
	}
}

func TestIndexMaintainedAcrossUpdateAndDelete(t *testing.T) {
	s := newTestStore(t, "sample")
	if err := s.CreateIndex("sample", "state", false); err != nil {
		t.Fatal(err)
	}
	id := mustInsert(t, s, "sample", Record{"state": "pending"})
	if err := s.Update(func(tx *Tx) error {
		return tx.Put("sample", id, Record{"state": "released"})
	}); err != nil {
		t.Fatal(err)
	}
	_ = s.View(func(tx *Tx) error {
		if ids, _ := tx.Lookup("sample", "state", "pending"); len(ids) != 0 {
			t.Errorf("stale index entry for pending: %v", ids)
		}
		if ids, _ := tx.Lookup("sample", "state", "released"); len(ids) != 1 {
			t.Errorf("missing index entry for released")
		}
		return nil
	})
	if err := s.Update(func(tx *Tx) error { return tx.Delete("sample", id) }); err != nil {
		t.Fatal(err)
	}
	_ = s.View(func(tx *Tx) error {
		if ids, _ := tx.Lookup("sample", "state", "released"); len(ids) != 0 {
			t.Errorf("index entry survived delete: %v", ids)
		}
		return nil
	})
}

func TestCreateIndexOnPopulatedTable(t *testing.T) {
	s := newTestStore(t, "sample")
	for i := 0; i < 5; i++ {
		mustInsert(t, s, "sample", Record{"kind": fmt.Sprintf("k%d", i%2)})
	}
	if err := s.CreateIndex("sample", "kind", false); err != nil {
		t.Fatal(err)
	}
	_ = s.View(func(tx *Tx) error {
		ids, _ := tx.Lookup("sample", "kind", "k0")
		if len(ids) != 3 {
			t.Errorf("backfilled index lookup = %v", ids)
		}
		return nil
	})
}

func TestCreateUniqueIndexOnViolatingTableFails(t *testing.T) {
	s := newTestStore(t, "user")
	mustInsert(t, s, "user", Record{"login": "dup"})
	mustInsert(t, s, "user", Record{"login": "dup"})
	if err := s.CreateIndex("user", "login", true); !errors.Is(err, ErrUnique) {
		t.Fatalf("got %v, want ErrUnique", err)
	}
}

func TestLookupOverlayInTx(t *testing.T) {
	s := newTestStore(t, "sample")
	if err := s.CreateIndex("sample", "state", false); err != nil {
		t.Fatal(err)
	}
	a := mustInsert(t, s, "sample", Record{"state": "pending"})
	err := s.Update(func(tx *Tx) error {
		// Change a's state and add a new pending row; Lookup must reflect both.
		if err := tx.Put("sample", a, Record{"state": "released"}); err != nil {
			return err
		}
		nid, err := tx.Insert("sample", Record{"state": "pending"})
		if err != nil {
			return err
		}
		ids, err := tx.Lookup("sample", "state", "pending")
		if err != nil {
			return err
		}
		if len(ids) != 1 || ids[0] != nid {
			t.Errorf("overlay lookup pending = %v, want [%d]", ids, nid)
		}
		ids, err = tx.Lookup("sample", "state", "released")
		if err != nil {
			return err
		}
		if len(ids) != 1 || ids[0] != a {
			t.Errorf("overlay lookup released = %v, want [%d]", ids, a)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFindAndFirst(t *testing.T) {
	s := newTestStore(t, "sample")
	mustInsert(t, s, "sample", Record{"grp": "a", "n": int64(1)})
	mustInsert(t, s, "sample", Record{"grp": "b", "n": int64(2)})
	mustInsert(t, s, "sample", Record{"grp": "a", "n": int64(3)})
	_ = s.View(func(tx *Tx) error {
		rs, err := tx.Find("sample", "grp", "a")
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != 2 || rs[0].Int("n") != 1 || rs[1].Int("n") != 3 {
			t.Errorf("Find = %v", rs)
		}
		first, err := tx.First("sample", "grp", "b")
		if err != nil {
			t.Fatal(err)
		}
		if first.Int("n") != 2 {
			t.Errorf("First = %v", first)
		}
		if _, err := tx.First("sample", "grp", "zzz"); !errors.Is(err, ErrNotFound) {
			t.Errorf("First missing: %v", err)
		}
		return nil
	})
}

func TestKeyForTypeSeparation(t *testing.T) {
	// int64(1), "1", true and 1.0 must all index separately.
	keys := map[indexKey]bool{}
	for _, v := range []any{int64(1), "1", true, 1.0} {
		k, ok := keyFor(v)
		if !ok {
			t.Fatalf("keyFor(%v) not indexable", v)
		}
		if keys[k] {
			t.Fatalf("key collision for %v: %q", v, k)
		}
		keys[k] = true
	}
	if _, ok := keyFor([]int64{1}); ok {
		t.Error("slices must not be indexable")
	}
	if _, ok := keyFor(nil); ok {
		t.Error("nil must not be indexable")
	}
}
