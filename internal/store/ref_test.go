package store

import (
	"errors"
	"sync"
	"testing"
)

// collectIDs runs a range scan and returns the visited ids.
func collectIDs(t *testing.T, tx *Tx, table string, from, to int64, ref bool) []int64 {
	t.Helper()
	var ids []int64
	fn := func(r Record) bool {
		ids = append(ids, r.ID())
		return true
	}
	var err error
	if ref {
		err = tx.ScanRangeRef(table, from, to, fn)
	} else {
		err = tx.ScanRange(table, from, to, fn)
	}
	if err != nil {
		t.Fatalf("ScanRange(%d,%d): %v", from, to, err)
	}
	return ids
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestScanRangeBoundaries(t *testing.T) {
	s := newTestStore(t, "t")
	for i := 0; i < 10; i++ {
		mustInsert(t, s, "t", Record{"n": int64(i)}) // ids 1..10
	}
	// Punch holes so boundaries land on both present and missing ids.
	err := s.Update(func(tx *Tx) error {
		if err := tx.Delete("t", 4); err != nil {
			return err
		}
		return tx.Delete("t", 9)
	})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		from, to int64
		want     []int64
	}{
		{0, 0, []int64{1, 2, 3, 5, 6, 7, 8, 10}}, // unbounded
		{3, 7, []int64{3, 5, 6, 7}},              // inclusive both ends
		{4, 9, []int64{5, 6, 7, 8}},              // bounds on deleted ids
		{0, 5, []int64{1, 2, 3, 5}},              // open start
		{8, 0, []int64{8, 10}},                   // open end
		{10, 10, []int64{10}},                    // single record
		{11, 0, nil},                             // past the end
		{7, 3, nil},                              // inverted range
	}
	for _, ref := range []bool{false, true} {
		err := s.View(func(tx *Tx) error {
			for _, c := range cases {
				if got := collectIDs(t, tx, "t", c.from, c.to, ref); !equalIDs(got, c.want) {
					t.Errorf("ScanRange(ref=%v, %d, %d) = %v, want %v", ref, c.from, c.to, got, c.want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestScanRangeUnknownTable(t *testing.T) {
	s := newTestStore(t, "t")
	err := s.View(func(tx *Tx) error {
		return tx.ScanRange("nope", 0, 0, func(Record) bool { return true })
	})
	if !errors.Is(err, ErrNoTable) {
		t.Fatalf("got %v, want ErrNoTable", err)
	}
}

func TestScanRangeEarlyStop(t *testing.T) {
	s := newTestStore(t, "t")
	for i := 0; i < 5; i++ {
		mustInsert(t, s, "t", Record{"n": int64(i)})
	}
	var seen []int64
	err := s.View(func(tx *Tx) error {
		return tx.ScanRangeRef("t", 2, 0, func(r Record) bool {
			seen = append(seen, r.ID())
			return len(seen) < 2
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(seen, []int64{2, 3}) {
		t.Fatalf("early stop visited %v, want [2 3]", seen)
	}
}

// TestScanRangeObservesOverlay verifies that range scans inside a read-write
// transaction merge pending inserts, rewrites and deletes into the committed
// order.
func TestScanRangeObservesOverlay(t *testing.T) {
	s := newTestStore(t, "t")
	for i := 0; i < 6; i++ {
		mustInsert(t, s, "t", Record{"v": "old"}) // ids 1..6
	}
	err := s.Update(func(tx *Tx) error {
		if err := tx.Delete("t", 2); err != nil {
			return err
		}
		if err := tx.Put("t", 4, Record{"v": "new"}); err != nil {
			return err
		}
		if _, err := tx.Insert("t", Record{"v": "ins"}); err != nil { // id 7
			return err
		}
		var ids []int64
		vals := map[int64]string{}
		if err := tx.ScanRangeRef("t", 2, 7, func(r Record) bool {
			ids = append(ids, r.ID())
			vals[r.ID()] = r.String("v")
			return true
		}); err != nil {
			return err
		}
		if want := []int64{3, 4, 5, 6, 7}; !equalIDs(ids, want) {
			t.Errorf("overlay scan = %v, want %v", ids, want)
		}
		if vals[4] != "new" || vals[7] != "ins" || vals[3] != "old" {
			t.Errorf("overlay scan values = %v", vals)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRefSnapshotImmutability pins the aliasing contract: a reference
// obtained inside a transaction remains an unchanged snapshot after the
// transaction ends and later writers rewrite the row, because commits
// replace record maps instead of mutating them.
func TestRefSnapshotImmutability(t *testing.T) {
	s := newTestStore(t, "t")
	id := mustInsert(t, s, "t", Record{"v": "before", "tags": []string{"x"}})

	var ref Record
	err := s.View(func(tx *Tx) error {
		var err error
		ref, err = tx.GetRef("t", id)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	err = s.Update(func(tx *Tx) error {
		return tx.Put("t", id, Record{"v": "after", "tags": []string{"y", "z"}})
	})
	if err != nil {
		t.Fatal(err)
	}

	if got := ref.String("v"); got != "before" {
		t.Fatalf("held ref mutated: v = %q, want %q", got, "before")
	}
	if tags := ref.Strings("tags"); len(tags) != 1 || tags[0] != "x" {
		t.Fatalf("held ref slice mutated: %v", tags)
	}
	cur, err := s.Get("t", id)
	if err != nil {
		t.Fatal(err)
	}
	if got := cur.String("v"); got != "after" {
		t.Fatalf("committed state = %q, want %q", got, "after")
	}
}

// TestRefReadersNeverSeeTornRecords hammers zero-copy readers against a
// committing writer; run with -race. Every record keeps the invariant
// a == b, both while scanning inside the reading transaction and on references
// retained after the reading transaction has ended.
func TestRefReadersNeverSeeTornRecords(t *testing.T) {
	s := newTestStore(t, "t")
	if err := s.CreateIndex("t", "a", false); err != nil {
		t.Fatal(err)
	}
	const rows = 32
	err := s.Update(func(tx *Tx) error {
		for i := 0; i < rows; i++ {
			if _, err := tx.Insert("t", Record{"a": int64(0), "b": int64(0)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers = 4
		rounds  = 200
	)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: rewrites rows, always keeping a == b
		defer wg.Done()
		for v := int64(1); v <= rounds; v++ {
			id := v%rows + 1
			err := s.Update(func(tx *Tx) error {
				return tx.Put("t", id, Record{"a": v, "b": v})
			})
			if err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				var held []Record
				err := s.View(func(tx *Tx) error {
					return tx.ScanRef("t", func(rec Record) bool {
						if a, b := rec.Int("a"), rec.Int("b"); a != b {
							t.Errorf("torn record %d during scan: a=%d b=%d", rec.ID(), a, b)
						}
						held = append(held, rec)
						return true
					})
				})
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				// The transaction is over; retained refs must still be
				// internally consistent snapshots.
				for _, rec := range held {
					if a, b := rec.Int("a"), rec.Int("b"); a != b {
						t.Errorf("torn record %d after release: a=%d b=%d", rec.ID(), a, b)
					}
				}
			}
		}(r)
	}
	wg.Wait()
}

// TestLookupRewriteNoDuplicates is a regression test for the Lookup overlay
// dedupe: a row rewritten in the transaction with an unchanged indexed value
// must appear exactly once.
func TestLookupRewriteNoDuplicates(t *testing.T) {
	s := newTestStore(t, "t")
	if err := s.CreateIndex("t", "grp", false); err != nil {
		t.Fatal(err)
	}
	id := mustInsert(t, s, "t", Record{"grp": "g", "n": int64(1)})
	err := s.Update(func(tx *Tx) error {
		if err := tx.Put("t", id, Record{"grp": "g", "n": int64(2)}); err != nil {
			return err
		}
		ids, err := tx.Lookup("t", "grp", "g")
		if err != nil {
			return err
		}
		if !equalIDs(ids, []int64{id}) {
			t.Errorf("Lookup after rewrite = %v, want [%d]", ids, id)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFindRefSharesRecords verifies FindRef returns the committed maps
// themselves (no copies) while Find returns independent clones.
func TestFindRefSharesRecords(t *testing.T) {
	s := newTestStore(t, "t")
	if err := s.CreateIndex("t", "grp", false); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, s, "t", Record{"grp": "g", "tags": []string{"a"}})
	err := s.View(func(tx *Tx) error {
		refs, err := tx.FindRef("t", "grp", "g")
		if err != nil {
			return err
		}
		ref2, err := tx.GetRef("t", refs[0].ID())
		if err != nil {
			return err
		}
		// Same underlying map: mutating would be a contract violation, but
		// identity is observable through shared slice storage.
		if &refs[0].Strings("tags")[0] != &ref2.Strings("tags")[0] {
			t.Error("FindRef and GetRef returned different copies")
		}
		clone, err := tx.Get("t", refs[0].ID())
		if err != nil {
			return err
		}
		if &clone.Strings("tags")[0] == &refs[0].Strings("tags")[0] {
			t.Error("Get returned a shared record, want a deep copy")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
