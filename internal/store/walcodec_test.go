package store

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestWALCodecRoundTrip(t *testing.T) {
	when := time.Date(2010, 1, 2, 3, 4, 5, 6, time.UTC)
	rec := walRecord{
		Seq: 42,
		Tables: []walTableChange{
			{
				Name:    "sample",
				NextID:  17,
				Deletes: []int64{3, 9},
				Writes: []rowSnapshot{
					{ID: 5, Fields: []fieldSnapshot{
						{Key: "name", Kind: kindString, S: "arabidopsis"},
						{Key: "count", Kind: kindInt, I: -12},
						{Key: "ratio", Kind: kindFloat, F: 0.25},
						{Key: "active", Kind: kindBool, B: true},
						{Key: "created", Kind: kindTime, T: when},
						{Key: "extracts", Kind: kindIntList, LI: []int64{1, 2, 3}},
						{Key: "tags", Kind: kindStringList, LS: []string{"a", ""}},
					}},
				},
			},
			{Name: "empty-change", NextID: 99},
		},
	}
	payload, err := encodeWALRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeWALRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, got) {
		t.Errorf("round trip mismatch:\n in  %#v\n out %#v", rec, got)
	}
}

// TestWALEncoderEquivalence pins the commit hot path's direct overlay
// encoder to the struct-based reference encoder, byte for byte, for a
// transaction exercising inserts, rewrites and deletes across tables.
func TestWALEncoderEquivalence(t *testing.T) {
	s := newTestStore(t, "sample", "extract")
	mustInsert(t, s, "sample", Record{"name": "seedling", "n": int64(1)})
	mustInsert(t, s, "extract", Record{"name": "leaf"})

	err := s.Update(func(tx *Tx) error {
		if _, err := tx.Insert("sample", Record{
			"name": "new", "when": time.Date(2010, 5, 1, 0, 0, 0, 0, time.UTC),
			"ids": []int64{4, 5}, "tags": []string{"x"}, "ok": true, "score": 1.25,
		}); err != nil {
			return err
		}
		if err := tx.Put("sample", 1, Record{"name": "rewritten", "n": int64(2)}); err != nil {
			return err
		}
		if err := tx.Delete("extract", 1); err != nil {
			return err
		}

		direct, seq, err := tx.encodeWALPayload(tx.ver)
		if err != nil {
			return err
		}
		rec, changed, err := tx.buildWALRecord()
		if err != nil {
			return err
		}
		if !changed || seq != rec.Seq {
			t.Fatalf("encoder disagreement: changed=%v seq=%d vs %d", changed, seq, rec.Seq)
		}
		reference, err := encodeWALRecord(rec)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(direct, reference) {
			t.Errorf("direct encoding diverges from reference:\n direct %x\n ref    %x", direct, reference)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuickWALCodec: random scalar payloads survive the codec, and no
// truncation of a valid payload decodes successfully.
func TestQuickWALCodec(t *testing.T) {
	f := func(seq uint64, name, sval string, ival int64, fval float64, bval bool, cut uint8) bool {
		rec := walRecord{
			Seq: seq,
			Tables: []walTableChange{{
				Name: name,
				Writes: []rowSnapshot{{ID: ival, Fields: []fieldSnapshot{
					{Key: "s", Kind: kindString, S: sval},
					{Key: "i", Kind: kindInt, I: ival},
					{Key: "f", Kind: kindFloat, F: fval},
					{Key: "b", Kind: kindBool, B: bval},
				}}},
			}},
		}
		payload, err := encodeWALRecord(rec)
		if err != nil {
			return false
		}
		got, err := decodeWALRecord(payload)
		if err != nil || !reflect.DeepEqual(rec, got) {
			// NaN never compares equal; everything else must round-trip.
			return fval != fval
		}
		if n := int(cut) % len(payload); n > 0 {
			if _, err := decodeWALRecord(payload[:len(payload)-n]); err == nil {
				return false // truncated payload must not decode
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// encodeWALRecord is the test-only reference encoder: the struct-based
// counterpart of the production direct-overlay encoder
// (Tx.encodeWALPayload). It exists to pin the byte layout via
// TestWALEncoderEquivalence and to build arbitrary records for the codec
// round-trip tests.
func encodeWALRecord(rec walRecord) ([]byte, error) {
	buf := make([]byte, 0, 256)
	buf = appendU64(buf, rec.Seq)
	buf = appendU32(buf, uint32(len(rec.Tables)))
	for _, tc := range rec.Tables {
		buf = appendStr(buf, tc.Name)
		buf = appendI64(buf, tc.NextID)
		buf = appendU32(buf, uint32(len(tc.Deletes)))
		for _, id := range tc.Deletes {
			buf = appendI64(buf, id)
		}
		buf = appendU32(buf, uint32(len(tc.Writes)))
		for _, rs := range tc.Writes {
			buf = appendI64(buf, rs.ID)
			buf = appendU32(buf, uint32(len(rs.Fields)))
			for _, fs := range rs.Fields {
				var err error
				if buf, err = appendField(buf, fs); err != nil {
					return nil, err
				}
			}
		}
	}
	return buf, nil
}

func appendField(buf []byte, fs fieldSnapshot) ([]byte, error) {
	buf = appendStr(buf, fs.Key)
	buf = append(buf, fs.Kind)
	switch fs.Kind {
	case kindString:
		buf = appendStr(buf, fs.S)
	case kindInt:
		buf = appendI64(buf, fs.I)
	case kindFloat:
		buf = appendU64(buf, math.Float64bits(fs.F))
	case kindBool:
		if fs.B {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case kindTime:
		tb, err := fs.T.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("store: encoding time field %q: %w", fs.Key, err)
		}
		buf = appendBytes(buf, tb)
	case kindIntList:
		buf = appendU32(buf, uint32(len(fs.LI)))
		for _, v := range fs.LI {
			buf = appendI64(buf, v)
		}
	case kindStringList:
		buf = appendU32(buf, uint32(len(fs.LS)))
		for _, v := range fs.LS {
			buf = appendStr(buf, v)
		}
	default:
		return nil, fmt.Errorf("store: field %q has unknown kind %d: %w", fs.Key, fs.Kind, ErrBadValue)
	}
	return buf, nil
}

// buildWALRecord flattens the transaction's pending overlay into a
// replayable record-set, in the exact order commit installs it
// (tables sorted by name; per table deletions then writes, by id).
// changed is false when the transaction touched nothing worth logging.
// The hot path uses encodeWALPayload instead; this structural form backs
// the codec tests.
func (tx *Tx) buildWALRecord() (walRecord, bool, error) {
	rec := walRecord{Seq: tx.ver.seq + 1}
	names := make([]string, 0, len(tx.pending))
	for name := range tx.pending {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		o := tx.pending[name]
		t := tx.ver.tables[name]
		tc := walTableChange{Name: name}
		if t != nil && o.nextID > t.nextID {
			tc.NextID = o.nextID
		}
		for id := range o.deletes {
			tc.Deletes = append(tc.Deletes, id)
		}
		sort.Slice(tc.Deletes, func(i, j int) bool { return tc.Deletes[i] < tc.Deletes[j] })
		ids := make([]int64, 0, len(o.writes))
		for id := range o.writes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			r := o.writes[id]
			rs := rowSnapshot{ID: id}
			keys := make([]string, 0, len(r))
			for k := range r {
				if k == IDField {
					continue
				}
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				f, err := encodeField(k, r[k])
				if err != nil {
					return walRecord{}, false, err
				}
				rs.Fields = append(rs.Fields, f)
			}
			tc.Writes = append(tc.Writes, rs)
		}
		if tc.NextID != 0 || len(tc.Deletes) != 0 || len(tc.Writes) != 0 {
			rec.Tables = append(rec.Tables, tc)
		}
	}
	return rec, len(rec.Tables) != 0, nil
}
