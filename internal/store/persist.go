package store

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// snapshot is the serialized form of a store. Records are flattened into a
// typed representation so that gob round-trips preserve concrete types.
type snapshot struct {
	Version int
	// Seq is the commit sequence the snapshot captures; WAL records at or
	// below it are redundant. Zero on snapshots from before the WAL era.
	Seq uint64
	// Epoch is the replication epoch of the store that produced the
	// snapshot (epoch.go). Zero on snapshots from before the fencing era;
	// loaders normalize it to 1.
	Epoch  uint64
	Tables []tableSnapshot
}

type tableSnapshot struct {
	Name    string
	NextID  int64
	Rows    []rowSnapshot
	Indexes []indexSnapshot
}

type rowSnapshot struct {
	ID     int64
	Fields []fieldSnapshot
}

type indexSnapshot struct {
	Field  string
	Unique bool
}

// fieldSnapshot carries one field value with an explicit type tag.
type fieldSnapshot struct {
	Key  string
	Kind uint8
	S    string
	I    int64
	F    float64
	B    bool
	T    time.Time
	LI   []int64
	LS   []string
}

const (
	kindString uint8 = iota
	kindInt
	kindFloat
	kindBool
	kindTime
	kindIntList
	kindStringList
)

func encodeField(key string, v any) (fieldSnapshot, error) {
	fs := fieldSnapshot{Key: key}
	switch x := v.(type) {
	case string:
		fs.Kind, fs.S = kindString, x
	case int64:
		fs.Kind, fs.I = kindInt, x
	case float64:
		fs.Kind, fs.F = kindFloat, x
	case bool:
		fs.Kind, fs.B = kindBool, x
	case time.Time:
		fs.Kind, fs.T = kindTime, x
	case []int64:
		fs.Kind, fs.LI = kindIntList, x
	case []string:
		fs.Kind, fs.LS = kindStringList, x
	default:
		return fs, fmt.Errorf("store: field %q: %w", key, ErrBadValue)
	}
	return fs, nil
}

func (fs fieldSnapshot) decode() any {
	switch fs.Kind {
	case kindString:
		return fs.S
	case kindInt:
		return fs.I
	case kindFloat:
		return fs.F
	case kindBool:
		return fs.B
	case kindTime:
		return fs.T
	case kindIntList:
		return fs.LI
	case kindStringList:
		return fs.LS
	default:
		return nil
	}
}

// Save serializes the entire committed state of the store to w.
func (s *Store) Save(w io.Writer) error {
	_, err := s.writeSnapshot(w)
	return err
}

// freeze captures a consistent cut of the whole store: under MVCC that is
// simply the current version, pinned with one atomic load. The version is
// immutable, so the expensive gob encode runs entirely outside any lock
// — commits proceed at full speed while a snapshot is being written.
func (s *Store) freeze() *version {
	return s.current.Load()
}

// writeSnapshot serializes the committed state and reports the commit
// sequence the snapshot captures. No lock is held at any point: the
// pinned version is an immutable snapshot by construction.
func (s *Store) writeSnapshot(w io.Writer) (uint64, error) {
	return writeSnapshotVersion(s.freeze(), s.epoch.Load(), w)
}

// writeSnapshotVersion serializes one pinned version under the given
// replication epoch. The encoding is deterministic — tables, rows,
// field keys and index names are all emitted in sorted order through a
// single gob stream — so two stores holding the same logical state at
// the same seq and epoch produce byte-identical snapshots (the property
// replica convergence tests pin on; the epoch is part of the state, so
// a store still on an older timeline's epoch has, by definition, not
// converged).
func writeSnapshotVersion(v *version, epoch uint64, w io.Writer) (uint64, error) {
	snap := snapshot{Version: 1, Seq: v.seq, Epoch: epoch}
	for _, name := range v.tableNames() {
		t := v.tables[name]
		ts := tableSnapshot{Name: name, NextID: t.nextID}
		ixNames := make([]string, 0, len(t.indexes))
		for f := range t.indexes {
			ixNames = append(ixNames, f)
		}
		sort.Strings(ixNames)
		for _, f := range ixNames {
			ts.Indexes = append(ts.Indexes, indexSnapshot{Field: f, Unique: t.indexes[f].unique})
		}
		it := t.iter(0, 0)
		for id, r := it.next(); id != 0; id, r = it.next() {
			rs := rowSnapshot{ID: id}
			keys := make([]string, 0, len(r))
			for k := range r {
				if k == IDField {
					continue
				}
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				f, err := encodeField(k, r[k])
				if err != nil {
					return 0, err
				}
				rs.Fields = append(rs.Fields, f)
			}
			ts.Rows = append(ts.Rows, rs)
		}
		snap.Tables = append(snap.Tables, ts)
	}
	return snap.Seq, gob.NewEncoder(w).Encode(snap)
}

// Load replaces the contents of the store with a snapshot previously
// produced by Save. The store must be empty.
func (s *Store) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("store: decoding snapshot: %w", err)
	}
	if snap.Version != 1 {
		return fmt.Errorf("store: unsupported snapshot version %d", snap.Version)
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	if len(s.current.Load().tables) != 0 {
		return fmt.Errorf("store: Load requires an empty store")
	}
	// Build the version privately — no reader can reach it yet — then
	// publish it with one atomic store.
	nv, err := buildSnapshotVersion(&snap)
	if err != nil {
		return err
	}
	s.current.Store(nv)
	if snap.Epoch > 1 {
		s.epoch.Store(snap.Epoch) // adopt the producing store's epoch
	}
	return nil
}

// buildSnapshotVersion materializes a decoded snapshot into a fresh,
// fully-indexed version. The version is private to the caller until it
// publishes it; shared by Load and ResetFromSnapshot.
func buildSnapshotVersion(snap *snapshot) (*version, error) {
	nv := &version{seq: snap.Seq, tables: make(map[string]*table, len(snap.Tables))}
	for _, ts := range snap.Tables {
		t := newTable(ts.Name)
		t.nextID = ts.NextID
		t.lastSeq = snap.Seq
		for _, ixs := range ts.Indexes {
			t.indexes[ixs.Field] = newIndex(ixs.Field, ixs.Unique)
		}
		for _, rs := range ts.Rows {
			rec := make(Record, len(rs.Fields)+1)
			rec[IDField] = rs.ID
			for _, f := range rs.Fields {
				rec[f.Key] = f.decode()
			}
			for _, ix := range t.indexes {
				if err := ix.insert(rec, rs.ID); err != nil {
					return nil, fmt.Errorf("store: loading %s/%d: %w", ts.Name, rs.ID, err)
				}
			}
			t.put(rs.ID, rec, snap.Seq)
		}
		nv.tables[ts.Name] = t
	}
	return nv, nil
}

// SaveFile writes the store snapshot atomically (write to a temp file,
// fsync, rename, fsync the directory) to the named file.
func (s *Store) SaveFile(path string) error {
	_, err := s.writeSnapshotFile(path)
	return err
}

// writeSnapshotFile is the shared atomic-write protocol behind SaveFile
// and Snapshot: encode to <path>.tmp, fsync, rename over path, fsync the
// directory so the rename itself is durable. It reports the commit
// sequence the snapshot captured.
func (s *Store) writeSnapshotFile(path string) (uint64, error) {
	return s.writeVersionSnapshotFile(path, s.freeze(), s.epoch.Load())
}

// writeVersionSnapshotFile runs the atomic-write protocol for one pinned
// (or not-yet-published) version. ResetFromSnapshot uses it to persist a
// resync — under the incoming snapshot's epoch — before the rebuilt
// version becomes reachable.
func (s *Store) writeVersionSnapshotFile(path string, v *version, epoch uint64) (uint64, error) {
	fsys := s.fileSystem()
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	seq, err := writeSnapshotVersion(v, epoch, f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fsys.Remove(tmp)
		return 0, err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return 0, err
	}
	return seq, syncDir(fsys, filepath.Dir(path))
}

// LoadFile loads a snapshot from the named file into the empty store.
func (s *Store) LoadFile(path string) error {
	f, err := s.fileSystem().OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}
