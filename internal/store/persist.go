package store

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// snapshot is the serialized form of a store. Records are flattened into a
// typed representation so that gob round-trips preserve concrete types.
type snapshot struct {
	Version int
	// Seq is the commit sequence the snapshot captures; WAL records at or
	// below it are redundant. Zero on snapshots from before the WAL era.
	Seq    uint64
	Tables []tableSnapshot
}

type tableSnapshot struct {
	Name    string
	NextID  int64
	Rows    []rowSnapshot
	Indexes []indexSnapshot
}

type rowSnapshot struct {
	ID     int64
	Fields []fieldSnapshot
}

type indexSnapshot struct {
	Field  string
	Unique bool
}

// fieldSnapshot carries one field value with an explicit type tag.
type fieldSnapshot struct {
	Key  string
	Kind uint8
	S    string
	I    int64
	F    float64
	B    bool
	T    time.Time
	LI   []int64
	LS   []string
}

const (
	kindString uint8 = iota
	kindInt
	kindFloat
	kindBool
	kindTime
	kindIntList
	kindStringList
)

func encodeField(key string, v any) (fieldSnapshot, error) {
	fs := fieldSnapshot{Key: key}
	switch x := v.(type) {
	case string:
		fs.Kind, fs.S = kindString, x
	case int64:
		fs.Kind, fs.I = kindInt, x
	case float64:
		fs.Kind, fs.F = kindFloat, x
	case bool:
		fs.Kind, fs.B = kindBool, x
	case time.Time:
		fs.Kind, fs.T = kindTime, x
	case []int64:
		fs.Kind, fs.LI = kindIntList, x
	case []string:
		fs.Kind, fs.LS = kindStringList, x
	default:
		return fs, fmt.Errorf("store: field %q: %w", key, ErrBadValue)
	}
	return fs, nil
}

func (fs fieldSnapshot) decode() any {
	switch fs.Kind {
	case kindString:
		return fs.S
	case kindInt:
		return fs.I
	case kindFloat:
		return fs.F
	case kindBool:
		return fs.B
	case kindTime:
		return fs.T
	case kindIntList:
		return fs.LI
	case kindStringList:
		return fs.LS
	default:
		return nil
	}
}

// Save serializes the entire committed state of the store to w.
func (s *Store) Save(w io.Writer) error {
	_, err := s.writeSnapshot(w)
	return err
}

// frozenTable is a lightweight consistent cut of one table: the sorted id
// slice plus shared references to the committed record maps. Committed
// records are immutable (writes replace whole maps — the same contract
// that funds the zero-copy read path), so the frozen view stays a valid
// snapshot after the store lock is released.
type frozenTable struct {
	name    string
	nextID  int64
	ids     []int64
	rows    []Record // parallel to ids
	indexes []indexSnapshot
}

// freeze captures a consistent cut of the whole store under the read
// lock. It copies O(rows) references, not the data, so the lock hold —
// and therefore the commit stall during a background snapshot — is
// milliseconds even at deployment scale; the expensive gob encode runs
// lock-free afterwards.
func (s *Store) freeze() (uint64, []frozenTable) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	tables := make([]frozenTable, 0, len(names))
	for _, name := range names {
		t := s.tables[name]
		ft := frozenTable{
			name:   name,
			nextID: t.nextID,
			// t.ids is spliced in place by later deletes; copy it.
			ids:  append([]int64(nil), t.ids...),
			rows: make([]Record, len(t.ids)),
		}
		for i, id := range t.ids {
			ft.rows[i] = t.rows[id]
		}
		ixNames := make([]string, 0, len(t.indexes))
		for f := range t.indexes {
			ixNames = append(ixNames, f)
		}
		sort.Strings(ixNames)
		for _, f := range ixNames {
			ft.indexes = append(ft.indexes, indexSnapshot{Field: f, Unique: t.indexes[f].unique})
		}
		tables = append(tables, ft)
	}
	return s.commitSeq, tables
}

// writeSnapshot serializes the committed state and reports the commit
// sequence the snapshot captures. The read lock is held only while
// freezing the record references, not for the encode.
func (s *Store) writeSnapshot(w io.Writer) (uint64, error) {
	seq, tables := s.freeze()
	snap := snapshot{Version: 1, Seq: seq}
	for _, ft := range tables {
		ts := tableSnapshot{Name: ft.name, NextID: ft.nextID, Indexes: ft.indexes}
		for i, id := range ft.ids {
			r := ft.rows[i]
			rs := rowSnapshot{ID: id}
			keys := make([]string, 0, len(r))
			for k := range r {
				if k == IDField {
					continue
				}
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				f, err := encodeField(k, r[k])
				if err != nil {
					return 0, err
				}
				rs.Fields = append(rs.Fields, f)
			}
			ts.Rows = append(ts.Rows, rs)
		}
		snap.Tables = append(snap.Tables, ts)
	}
	return snap.Seq, gob.NewEncoder(w).Encode(snap)
}

// Load replaces the contents of the store with a snapshot previously
// produced by Save. The store must be empty.
func (s *Store) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("store: decoding snapshot: %w", err)
	}
	if snap.Version != 1 {
		return fmt.Errorf("store: unsupported snapshot version %d", snap.Version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(s.tables) != 0 {
		return fmt.Errorf("store: Load requires an empty store")
	}
	s.commitSeq = snap.Seq
	for _, ts := range snap.Tables {
		t := newTable(ts.Name)
		t.nextID = ts.NextID
		for _, ixs := range ts.Indexes {
			t.indexes[ixs.Field] = newIndex(ixs.Field, ixs.Unique)
		}
		for _, rs := range ts.Rows {
			rec := make(Record, len(rs.Fields)+1)
			rec[IDField] = rs.ID
			for _, f := range rs.Fields {
				rec[f.Key] = f.decode()
			}
			for _, ix := range t.indexes {
				if err := ix.insert(rec, rs.ID); err != nil {
					return fmt.Errorf("store: loading %s/%d: %w", ts.Name, rs.ID, err)
				}
			}
			t.rows[rs.ID] = rec
			t.insertID(rs.ID)
		}
		s.tables[ts.Name] = t
	}
	return nil
}

// SaveFile writes the store snapshot atomically (write to a temp file,
// fsync, rename, fsync the directory) to the named file.
func (s *Store) SaveFile(path string) error {
	_, err := s.writeSnapshotFile(path)
	return err
}

// writeSnapshotFile is the shared atomic-write protocol behind SaveFile
// and Snapshot: encode to <path>.tmp, fsync, rename over path, fsync the
// directory so the rename itself is durable. It reports the commit
// sequence the snapshot captured.
func (s *Store) writeSnapshotFile(path string) (uint64, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	seq, err := s.writeSnapshot(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return seq, syncDir(filepath.Dir(path))
}

// LoadFile loads a snapshot from the named file into the empty store.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}
