package store

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Record is a single stored row: a flat map from field name to value.
// Supported value types are string, int64, float64, bool, time.Time,
// []int64 and []string. The ID field is managed by the store and is
// exposed under the "id" key on read.
type Record map[string]any

// IDField is the reserved record key that carries the record identifier.
const IDField = "id"

// ID returns the record identifier, or 0 if the record has none.
func (r Record) ID() int64 {
	id, _ := r[IDField].(int64)
	return id
}

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	if r == nil {
		return nil
	}
	out := make(Record, len(r))
	for k, v := range r {
		out[k] = cloneValue(v)
	}
	return out
}

// String returns the string stored under key, or "" if absent or of a
// different type.
func (r Record) String(key string) string {
	s, _ := r[key].(string)
	return s
}

// Int returns the int64 stored under key, or 0 if absent.
func (r Record) Int(key string) int64 {
	n, _ := r[key].(int64)
	return n
}

// Float returns the float64 stored under key, or 0 if absent.
func (r Record) Float(key string) float64 {
	f, _ := r[key].(float64)
	return f
}

// Bool returns the bool stored under key, or false if absent.
func (r Record) Bool(key string) bool {
	b, _ := r[key].(bool)
	return b
}

// Time returns the time.Time stored under key, or the zero time if absent.
func (r Record) Time(key string) time.Time {
	t, _ := r[key].(time.Time)
	return t
}

// IDs returns the []int64 stored under key, or nil if absent.
func (r Record) IDs(key string) []int64 {
	v, _ := r[key].([]int64)
	return v
}

// Strings returns the []string stored under key, or nil if absent.
func (r Record) Strings(key string) []string {
	v, _ := r[key].([]string)
	return v
}

func cloneValue(v any) any {
	switch x := v.(type) {
	case []int64:
		out := make([]int64, len(x))
		copy(out, x)
		return out
	case []string:
		out := make([]string, len(x))
		copy(out, x)
		return out
	default:
		// Scalars (string, int64, float64, bool, time.Time) are value types.
		return v
	}
}

// validValue reports whether v is one of the supported record value types.
func validValue(v any) bool {
	switch v.(type) {
	case string, int64, float64, bool, time.Time, []int64, []string:
		return true
	default:
		return false
	}
}

// Store is an embedded transactional record store with multi-version
// concurrency: the committed state is an immutable version reached through
// one atomic pointer, readers pin a version without taking any lock, and
// writers serialize on an internal mutex and publish a copy-on-write
// successor version at commit. The zero value is not usable; construct
// with New (in-memory) or Open (durable).
type Store struct {
	// current is the latest committed version. Readers pin it with a
	// single atomic load; commits and schema changes publish a successor
	// under writeMu. Superseded versions stay alive exactly as long as
	// some reader still holds them, then fall to the garbage collector.
	current atomic.Pointer[version]

	// writeMu serializes every state-changing path: Update transactions
	// (held for their whole lifetime — classic single-writer semantics),
	// optimistic Begin-transaction commits (held only inside Commit),
	// schema registration, Load and Close. Readers never touch it.
	writeMu sync.Mutex
	closed  atomic.Bool

	// Durable write path; all nil/zero on in-memory stores.
	dir     string
	fs      FS       // filesystem seam; nil means the real one
	dirLock *os.File // flock on <dir>/LOCK; nil on non-unix
	wal     *wal
	// degraded flips (once, monotonically) when the durable write path
	// fails — WAL poison, fsync failure, ENOSPC — and makes every
	// subsequent write fail fast with ErrDegraded while the lock-free
	// MVCC read path keeps serving. See health.go.
	degraded      atomic.Pointer[degradedState]
	walEncBuf     []byte // commit-path encode scratch; guarded by writeMu
	snapshotEvery int64
	// replica flips the store into replica mode: local write paths fail
	// with ErrReplica and the only mutations accepted are ApplyReplicated
	// frames and ResetFromSnapshot resyncs. See repl.go.
	replica atomic.Bool
	// epoch is the replication fencing token (>= 1); see epoch.go.
	// Advanced only by AdvanceEpoch (promotion) and snapshot adoption
	// (Load, ResetFromSnapshot); read lock-free everywhere.
	epoch atomic.Uint64
	// replSubs are the committed-frame feed subscribers (WAL shippers).
	// Guarded by writeMu; publication happens inside the commit section.
	replSubs    []*CommitSub
	onError     func(error) // background-failure hook; may be nil
	snapMu      sync.Mutex  // serializes Snapshot; also guards snapErr
	snapErr     error
	snapTrigger chan struct{}
	snapStop    chan struct{}
	snapDone    chan struct{}
}

// New returns an empty store.
func New() *Store {
	s := &Store{}
	s.current.Store(&version{tables: make(map[string]*table)})
	s.epoch.Store(1)
	return s
}

// CreateTable creates a table with the given name. It is an error to create
// a table that already exists.
func (s *Store) CreateTable(name string) error {
	if name == "" {
		return fmt.Errorf("store: empty table name")
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	v := s.current.Load()
	if _, ok := v.tables[name]; ok {
		return fmt.Errorf("store: table %q already exists: %w", name, ErrExists)
	}
	nv := v.withTables()
	nt := newTable(name)
	nt.lastSeq = v.seq
	nv.tables[name] = nt
	s.current.Store(nv)
	return nil
}

// EnsureTable creates the table if it does not already exist. On a
// closed store it is a no-op: the table could never be persisted or
// transacted against anyway.
func (s *Store) EnsureTable(name string) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed.Load() {
		return
	}
	v := s.current.Load()
	if _, ok := v.tables[name]; ok {
		return
	}
	nv := v.withTables()
	nt := newTable(name)
	nt.lastSeq = v.seq
	nv.tables[name] = nt
	s.current.Store(nv)
}

// HasTable reports whether the named table exists.
func (s *Store) HasTable(name string) bool {
	_, ok := s.current.Load().tables[name]
	return ok
}

// Tables returns the sorted names of all tables, as of one consistent
// version. Inside a transaction, prefer Tx.Tables, which answers from the
// transaction's pinned snapshot instead of the live head.
func (s *Store) Tables() []string {
	return s.current.Load().tableNames()
}

func (v *version) tableNames() []string {
	names := make([]string, 0, len(v.tables))
	for n := range v.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CreateIndex registers a secondary index on the given field of the named
// table. If unique is true the index enforces uniqueness of non-zero keys.
// Existing rows are indexed immediately; the index appears atomically with
// a new store version, so in-flight readers never observe a half-built
// index.
func (s *Store) CreateIndex(tableName, field string, unique bool) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	v := s.current.Load()
	t, ok := v.tables[tableName]
	if !ok {
		return fmt.Errorf("store: table %q: %w", tableName, ErrNoTable)
	}
	if _, ok := t.indexes[field]; ok {
		return fmt.Errorf("store: index on %s.%s already exists: %w", tableName, field, ErrExists)
	}
	idx := newIndex(field, unique)
	it := t.iter(0, 0)
	for id, r := it.next(); id != 0; id, r = it.next() {
		if err := idx.insert(r, id); err != nil {
			return fmt.Errorf("store: building index %s.%s: %w", tableName, field, err)
		}
	}
	nt := t.clone()
	nt.indexes[field] = idx
	nv := v.withTables()
	nv.tables[tableName] = nt
	s.current.Store(nv)
	return nil
}

// CommitSeq returns the number of transactions committed so far.
func (s *Store) CommitSeq() uint64 {
	return s.current.Load().seq
}

// TableSeq returns the commit sequence of the last committed transaction
// that modified the named table, as of the latest published version, or 0
// for an unknown table. Lock-free (one atomic load plus a map read on an
// immutable version), so callers may consult it per request: a cached
// derivation of table T taken at sequence S is still current as long as
// TableSeq(T) <= S, however many commits other tables have seen since.
func (s *Store) TableSeq(name string) uint64 {
	if t, ok := s.current.Load().tables[name]; ok {
		return t.lastSeq
	}
	return 0
}

// Close marks the store closed and, on durable stores, stops the
// background snapshotter, performs a final WAL fsync and closes the log.
// A cleanly closed durable store is fully durable regardless of sync
// policy. Subsequent transactions fail with ErrClosed; readers already
// holding a pinned version may finish, since reads touch only immutable
// memory. Close is idempotent; it returns the first background snapshot
// or WAL failure, if any.
func (s *Store) Close() error {
	// Taking writeMu drains the in-flight writer, if any, before the WAL
	// shuts down beneath it.
	s.writeMu.Lock()
	already := s.closed.Swap(true)
	if !already {
		s.closeSubsLocked()
	}
	s.writeMu.Unlock()
	if already {
		return nil
	}
	if s.snapStop != nil {
		close(s.snapStop)
		<-s.snapDone
	}
	var err error
	if s.wal != nil {
		err = s.wal.Close()
	}
	if s.dirLock != nil {
		if cerr := s.dirLock.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	s.snapMu.Lock()
	if err == nil {
		err = s.snapErr
	}
	s.snapMu.Unlock()
	return err
}

// Get returns a copy of the record with the given id, outside any
// transaction, from the latest committed version.
func (s *Store) Get(tableName string, id int64) (Record, error) {
	v := s.current.Load()
	t, ok := v.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("store: table %q: %w", tableName, ErrNoTable)
	}
	r := t.get(id)
	if r == nil {
		return nil, fmt.Errorf("store: %s/%d: %w", tableName, id, ErrNotFound)
	}
	return r.Clone(), nil
}

// Count returns the number of records in the named table in the latest
// committed version. Inside a transaction, prefer Tx.Count, which answers
// from the transaction's pinned snapshot (including its own writes)
// instead of the live head.
func (s *Store) Count(tableName string) int {
	t, ok := s.current.Load().tables[tableName]
	if !ok {
		return 0
	}
	return t.count
}

// Barrier returns once every Update transaction that was in flight when
// Barrier was called has committed or rolled back. It is the
// read-your-writes handshake for observers notified from inside a
// transaction (e.g. the search index's dirty marks): mark, Barrier, then
// read — the read is guaranteed to see the transaction that produced the
// mark. Optimistic Begin transactions are not covered between Begin and
// Commit, only their commit section is.
func (s *Store) Barrier() {
	s.writeMu.Lock()
	// Deliberately empty critical section: acquiring the writer mutex
	// proves every earlier writer has finished and published its version.
	s.writeMu.Unlock() //nolint:staticcheck // SA2001: empty section is the point
}

// View runs fn inside a read-only transaction pinned to the committed
// version current at the call. fn runs lock-free: it cannot block writers
// and writers cannot block it; it simply never observes commits that land
// after the pin. Any write attempted by fn fails with ErrReadOnly.
func (s *Store) View(fn func(tx *Tx) error) error {
	tx, err := s.Begin(true)
	if err != nil {
		return err
	}
	defer tx.Rollback()
	return fn(tx)
}

// Begin starts an explicit transaction and returns its handle; the caller
// must finish it with Commit or Rollback. Read-only transactions pin the
// current committed version and read it lock-free for as long as the
// handle lives — a paginated scan across many calls sees one frozen
// state, no matter how many commits land meanwhile.
//
// Read-write Begin transactions are optimistic: they buffer writes
// against their pinned snapshot without holding any lock, and Commit
// validates them first-committer-wins — if another transaction committed
// a change to any record this one wrote or deleted (or claimed a serial
// id this one also claimed) after the pin, Commit fails with ErrConflict
// and the transaction's effects are discarded. Callers retry by running
// the transaction again on a fresh snapshot. For unconditional writes,
// Update — which serializes with other writers and cannot conflict — is
// the simpler tool.
func (s *Store) Begin(readonly bool) (*Tx, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	return &Tx{s: s, ver: s.current.Load(), readonly: readonly}, nil
}

// Update runs fn inside a read-write transaction. If fn returns nil the
// transaction is committed; otherwise it is rolled back and the error
// returned. Update transactions hold the store's writer mutex for their
// whole lifetime: they serialize with other writers (so fn never needs
// conflict handling — read-modify-write is atomic), while readers
// continue unblocked on earlier versions throughout.
//
// On a durable store the commit is appended to the WAL before it becomes
// visible; under SyncAlways, Update additionally waits — after releasing
// the writer mutex, so other commits proceed and share the fsync — until
// the record is on stable storage.
func (s *Store) Update(fn func(tx *Tx) error) error {
	if err := s.writeGate(); err != nil {
		return err
	}
	s.writeMu.Lock()
	if s.closed.Load() {
		s.writeMu.Unlock()
		return ErrClosed
	}
	tx := &Tx{s: s, ver: s.current.Load(), exclusive: true}
	defer tx.release()
	if err := fn(tx); err != nil {
		return err
	}
	if err := tx.commitLocked(); err != nil {
		return err
	}
	tx.release()
	return s.afterCommit(tx)
}

// afterCommit completes a committed transaction's durability obligations
// outside the writer mutex: waiting for the group-commit fsync under
// SyncAlways and nudging the background snapshotter.
func (s *Store) afterCommit(tx *Tx) error {
	if tx.walSeq == 0 {
		return nil
	}
	if s.wal.policy == SyncAlways {
		if err := s.wal.waitSynced(tx.walSeq); err != nil {
			return err
		}
	}
	s.maybeTriggerSnapshot()
	return nil
}
