// Package store implements the embedded, transactional entity store that
// underpins the B-Fabric reproduction. The original system sat on a
// relational DBMS accessed through an ORM; this package provides the
// equivalent substrate from scratch: named tables of flat records with
// serial identifiers, secondary and unique indexes, snapshot transactions
// with commit/rollback, ordered scans, and whole-store persistence.
//
// # Durability
//
// A store built with New lives purely in memory. A store built with Open
// is durable: every committed transaction is appended to a write-ahead
// log in the data directory before Update returns, a group-commit batcher
// coalesces concurrent commits into shared fsyncs (policy-controlled via
// SyncAlways, SyncInterval and SyncOff), and background snapshotting
// truncates the log once it outgrows a threshold. Reopening the directory
// replays the log over the latest snapshot and restores exactly the
// committed prefix, even after a hard kill mid-append. Only data is
// logged: tables and secondary indexes are re-registered by the caller
// after Open (idempotently, as internal/core does). See DESIGN.md
// ("Durability") for the record format and the recovery sequence.
//
// Records are flat maps from field name to a value of one of the supported
// types (string, int64, float64, bool, time.Time, []int64, []string). The
// store deep-copies records on the way in, and committed records are never
// mutated in place afterwards: every write replaces the whole record map.
// This immutability contract is what makes the zero-copy read path safe —
// Tx.GetRef, Tx.ScanRef, Tx.FindRef and friends hand out shared references
// to committed records that remain valid snapshots even after the
// transaction ends, provided callers treat them as read-only. The classic
// Get/Scan/Find API still returns deep copies for callers that mutate.
// See DESIGN.md for the full aliasing contract.
package store

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// Record is a single stored row: a flat map from field name to value.
// Supported value types are string, int64, float64, bool, time.Time,
// []int64 and []string. The ID field is managed by the store and is
// exposed under the "id" key on read.
type Record map[string]any

// IDField is the reserved record key that carries the record identifier.
const IDField = "id"

// ID returns the record identifier, or 0 if the record has none.
func (r Record) ID() int64 {
	id, _ := r[IDField].(int64)
	return id
}

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	if r == nil {
		return nil
	}
	out := make(Record, len(r))
	for k, v := range r {
		out[k] = cloneValue(v)
	}
	return out
}

// String returns the string stored under key, or "" if absent or of a
// different type.
func (r Record) String(key string) string {
	s, _ := r[key].(string)
	return s
}

// Int returns the int64 stored under key, or 0 if absent.
func (r Record) Int(key string) int64 {
	n, _ := r[key].(int64)
	return n
}

// Float returns the float64 stored under key, or 0 if absent.
func (r Record) Float(key string) float64 {
	f, _ := r[key].(float64)
	return f
}

// Bool returns the bool stored under key, or false if absent.
func (r Record) Bool(key string) bool {
	b, _ := r[key].(bool)
	return b
}

// Time returns the time.Time stored under key, or the zero time if absent.
func (r Record) Time(key string) time.Time {
	t, _ := r[key].(time.Time)
	return t
}

// IDs returns the []int64 stored under key, or nil if absent.
func (r Record) IDs(key string) []int64 {
	v, _ := r[key].([]int64)
	return v
}

// Strings returns the []string stored under key, or nil if absent.
func (r Record) Strings(key string) []string {
	v, _ := r[key].([]string)
	return v
}

func cloneValue(v any) any {
	switch x := v.(type) {
	case []int64:
		out := make([]int64, len(x))
		copy(out, x)
		return out
	case []string:
		out := make([]string, len(x))
		copy(out, x)
		return out
	default:
		// Scalars (string, int64, float64, bool, time.Time) are value types.
		return v
	}
}

// validValue reports whether v is one of the supported record value types.
func validValue(v any) bool {
	switch v.(type) {
	case string, int64, float64, bool, time.Time, []int64, []string:
		return true
	default:
		return false
	}
}

// table is the committed state of one record kind.
type table struct {
	name string
	rows map[int64]Record
	// ids holds the live record IDs in ascending order, maintained
	// incrementally on commit so ordered scans never rebuild or re-sort.
	ids     []int64
	nextID  int64
	indexes map[string]*index
}

func newTable(name string) *table {
	return &table{
		name:    name,
		rows:    make(map[int64]Record),
		nextID:  1,
		indexes: make(map[string]*index),
	}
}

// insertID adds id to the table's sorted id slice.
func (t *table) insertID(id int64) { t.ids = insertSorted(t.ids, id) }

// removeID drops id from the table's sorted id slice.
func (t *table) removeID(id int64) { t.ids = removeSorted(t.ids, id) }

// insertSorted adds id to the ascending slice, keeping it sorted and
// duplicate-free. Serial IDs almost always append; the general case falls
// back to a binary-search insertion.
func insertSorted(ids []int64, id int64) []int64 {
	n := len(ids)
	if n == 0 || id > ids[n-1] {
		return append(ids, id)
	}
	i := sort.Search(n, func(k int) bool { return ids[k] >= id })
	if i < n && ids[i] == id {
		return ids // already present
	}
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// removeSorted drops id from the ascending slice, if present.
func removeSorted(ids []int64, id int64) []int64 {
	n := len(ids)
	i := sort.Search(n, func(k int) bool { return ids[k] >= id })
	if i == n || ids[i] != id {
		return ids
	}
	copy(ids[i:], ids[i+1:])
	return ids[:n-1]
}

// Store is an embedded transactional record store. The zero value is not
// usable; construct with New (in-memory) or Open (durable).
type Store struct {
	mu     sync.RWMutex
	tables map[string]*table
	closed bool

	// commitSeq increments on every successful state-changing commit
	// (no-op transactions do not advance it); used by observers and as
	// the WAL sequence number, which replay requires to be contiguous.
	// Restored from the snapshot on Load.
	commitSeq uint64

	// Durable write path; all nil/zero on in-memory stores.
	dir           string
	dirLock       *os.File // flock on <dir>/LOCK; nil on non-unix
	wal           *wal
	walEncBuf     []byte // commit-path encode scratch; guarded by mu
	snapshotEvery int64
	onError       func(error) // background-failure hook; may be nil
	snapMu        sync.Mutex  // serializes Snapshot; also guards snapErr
	snapErr       error
	snapTrigger   chan struct{}
	snapStop      chan struct{}
	snapDone      chan struct{}
}

// New returns an empty store.
func New() *Store {
	return &Store{tables: make(map[string]*table)}
}

// CreateTable creates a table with the given name. It is an error to create
// a table that already exists.
func (s *Store) CreateTable(name string) error {
	if name == "" {
		return fmt.Errorf("store: empty table name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.tables[name]; ok {
		return fmt.Errorf("store: table %q already exists: %w", name, ErrExists)
	}
	s.tables[name] = newTable(name)
	return nil
}

// EnsureTable creates the table if it does not already exist.
func (s *Store) EnsureTable(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; !ok {
		s.tables[name] = newTable(name)
	}
}

// HasTable reports whether the named table exists.
func (s *Store) HasTable(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.tables[name]
	return ok
}

// Tables returns the sorted names of all tables.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CreateIndex registers a secondary index on the given field of the named
// table. If unique is true the index enforces uniqueness of non-zero keys.
// Existing rows are indexed immediately.
func (s *Store) CreateIndex(tableName, field string, unique bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	t, ok := s.tables[tableName]
	if !ok {
		return fmt.Errorf("store: table %q: %w", tableName, ErrNoTable)
	}
	if _, ok := t.indexes[field]; ok {
		return fmt.Errorf("store: index on %s.%s already exists: %w", tableName, field, ErrExists)
	}
	idx := newIndex(field, unique)
	// Index existing rows in id order.
	for _, id := range t.ids {
		if err := idx.insert(t.rows[id], id); err != nil {
			return fmt.Errorf("store: building index %s.%s: %w", tableName, field, err)
		}
	}
	t.indexes[field] = idx
	return nil
}

// CommitSeq returns the number of transactions committed so far.
func (s *Store) CommitSeq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.commitSeq
}

// Close marks the store closed and, on durable stores, stops the
// background snapshotter, performs a final WAL fsync and closes the log.
// A cleanly closed durable store is fully durable regardless of sync
// policy. Subsequent transactions fail with ErrClosed. Close is
// idempotent; it returns the first background snapshot or WAL failure, if
// any.
func (s *Store) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if already {
		return nil
	}
	if s.snapStop != nil {
		close(s.snapStop)
		<-s.snapDone
	}
	var err error
	if s.wal != nil {
		err = s.wal.Close()
	}
	if s.dirLock != nil {
		if cerr := s.dirLock.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	s.snapMu.Lock()
	if err == nil {
		err = s.snapErr
	}
	s.snapMu.Unlock()
	return err
}

// Get returns a copy of the record with the given id, outside any
// transaction.
func (s *Store) Get(tableName string, id int64) (Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("store: table %q: %w", tableName, ErrNoTable)
	}
	r, ok := t.rows[id]
	if !ok {
		return nil, fmt.Errorf("store: %s/%d: %w", tableName, id, ErrNotFound)
	}
	return r.Clone(), nil
}

// Count returns the number of records in the named table.
func (s *Store) Count(tableName string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[tableName]
	if !ok {
		return 0
	}
	return len(t.rows)
}

// View runs fn inside a read-only transaction. Any write attempted by fn
// fails with ErrReadOnly.
func (s *Store) View(fn func(tx *Tx) error) error {
	tx, err := s.begin(true)
	if err != nil {
		return err
	}
	defer tx.release()
	return fn(tx)
}

// Update runs fn inside a read-write transaction. If fn returns nil the
// transaction is committed; otherwise it is rolled back and the error
// returned.
//
// On a durable store the commit is appended to the WAL before it becomes
// visible; under SyncAlways, Update additionally waits — after releasing
// the store lock, so other commits proceed and share the fsync — until the
// record is on stable storage.
func (s *Store) Update(fn func(tx *Tx) error) error {
	tx, err := s.begin(false)
	if err != nil {
		return err
	}
	defer tx.release()
	if err := fn(tx); err != nil {
		return err
	}
	if err := tx.commit(); err != nil {
		return err
	}
	tx.release()
	if tx.walSeq != 0 {
		if s.wal.policy == SyncAlways {
			if err := s.wal.waitSynced(tx.walSeq); err != nil {
				return err
			}
		}
		s.maybeTriggerSnapshot()
	}
	return nil
}
