package store

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// benchRecord is a typical domain-entity payload: a handful of scalars
// plus small slice values.
func benchRecord(i int64) Record {
	return Record{
		"name":    fmt.Sprintf("sample-%d", i),
		"project": i % 100,
		"species": "Arabidopsis thaliana",
		"active":  true,
		"ratio":   0.25,
		"tags":    []string{"bench", "wal"},
	}
}

func openBenchStore(b *testing.B, opts DurabilityOptions) *Store {
	b.Helper()
	s, err := Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.CreateTable("sample"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

func commitOne(b *testing.B, s *Store, i int64) {
	if err := s.Update(func(tx *Tx) error {
		_, err := tx.Insert("sample", benchRecord(i))
		return err
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDurableCommit measures single-record commit cost under every
// durability configuration. "fsync-per-commit" is the naive baseline (one
// serial committer, each commit pays a full fsync); "group-commit" runs
// parallel committers through the same SyncAlways policy so the batcher
// coalesces their fsyncs — the fsyncs/commit metric shows the sharing.
func BenchmarkDurableCommit(b *testing.B) {
	b.Run("memory", func(b *testing.B) {
		s := New()
		if err := s.CreateTable("sample"); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			commitOne(b, s, int64(i))
		}
	})
	b.Run("off", func(b *testing.B) {
		s := openBenchStore(b, DurabilityOptions{Sync: SyncOff, SnapshotEvery: -1})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			commitOne(b, s, int64(i))
		}
	})
	b.Run("interval", func(b *testing.B) {
		s := openBenchStore(b, DurabilityOptions{Sync: SyncInterval, SnapshotEvery: -1})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			commitOne(b, s, int64(i))
		}
	})
	b.Run("fsync-per-commit", func(b *testing.B) {
		s := openBenchStore(b, DurabilityOptions{Sync: SyncAlways, SnapshotEvery: -1})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			commitOne(b, s, int64(i))
		}
		reportFsyncs(b, s)
	})
	b.Run("group-commit", func(b *testing.B) {
		s := openBenchStore(b, DurabilityOptions{Sync: SyncAlways, SnapshotEvery: -1})
		b.ReportAllocs()
		var seq atomic.Int64
		// A server-like committer population; commits still serialize on
		// the writer mutex, but their fsyncs coalesce.
		b.SetParallelism(64)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				commitOne(b, s, seq.Add(1))
			}
		})
		reportFsyncs(b, s)
	})
}

func reportFsyncs(b *testing.B, s *Store) {
	if info, ok := s.WALInfo(); ok && b.N > 0 {
		b.ReportMetric(float64(info.Fsyncs)/float64(b.N), "fsyncs/commit")
	}
}

// BenchmarkWALRecovery measures Open (snapshot load + full WAL replay +
// log arming) against directories whose whole population sits in the WAL.
func BenchmarkWALRecovery(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("records-%d", n), func(b *testing.B) {
			dir := b.TempDir()
			s, err := Open(dir, DurabilityOptions{Sync: SyncOff, SnapshotEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.CreateTable("sample"); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				commitOne(b, s, int64(i))
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := Open(dir, DurabilityOptions{Sync: SyncOff, SnapshotEvery: -1})
				if err != nil {
					b.Fatal(err)
				}
				if s.Count("sample") != n {
					b.Fatal("incomplete recovery")
				}
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
