package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// openTestDir opens a durable store on dir with automatic snapshots off,
// so tests control the snapshot/truncate lifecycle explicitly.
func openTestDir(t *testing.T, dir string, policy SyncPolicy) *Store {
	t.Helper()
	s, err := Open(dir, DurabilityOptions{Sync: policy, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// crash simulates a hard kill: the WAL goroutines stop and the segment
// file is closed without the final fsync of a clean Close. Everything an
// append flushed to the OS survives, exactly as with a real kill -9.
func crash(t *testing.T, s *Store) {
	t.Helper()
	s.writeMu.Lock()
	s.closed.Store(true)
	s.writeMu.Unlock()
	if s.snapStop != nil {
		close(s.snapStop)
		<-s.snapDone
	}
	w := s.wal
	w.mu.Lock()
	w.closing = true
	if w.f != nil {
		w.f.Close() // no flush beyond what append already did
		w.f = nil
	}
	w.mu.Unlock()
	close(w.stop)
	<-w.done
	w.syncMu.Lock()
	w.stopped = true
	w.syncCond.Broadcast()
	w.syncMu.Unlock()
	if s.dirLock != nil {
		s.dirLock.Close() // a dead process would have dropped its flock
	}
}

// commitN inserts n sequentially named records, one commit each.
func commitN(t *testing.T, s *Store, table string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Update(func(tx *Tx) error {
			_, err := tx.Insert(table, Record{"name": fmt.Sprintf("rec-%04d", i), "n": int64(i)})
			return err
		}); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
}

// lastSegment returns the path of the highest-base WAL segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listWALSegments(osFS{}, dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listWALSegments: %v (%d segments)", err, len(segs))
	}
	return segs[len(segs)-1].path
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTestDir(t, dir, SyncAlways)
	if !s.Durable() {
		t.Fatal("Open returned a non-durable store")
	}
	if err := s.CreateTable("sample"); err != nil {
		t.Fatal(err)
	}
	when := time.Date(2010, 1, 2, 3, 4, 5, 0, time.UTC)
	mustInsert(t, s, "sample", Record{
		"name": "arabidopsis", "count": int64(42), "ratio": 0.5,
		"active": true, "created": when,
		"extracts": []int64{1, 2, 3}, "tags": []string{"plant", "light"},
	})
	mustInsert(t, s, "sample", Record{"name": "doomed"})
	if err := s.Update(func(tx *Tx) error { return tx.Delete("sample", 2) }); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openTestDir(t, dir, SyncAlways)
	defer s2.Close()
	if n := s2.Count("sample"); n != 1 {
		t.Fatalf("recovered %d rows, want 1", n)
	}
	r, err := s2.Get("sample", 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.String("name") != "arabidopsis" || r.Int("count") != 42 ||
		r.Float("ratio") != 0.5 || !r.Bool("active") || !r.Time("created").Equal(when) ||
		len(r.IDs("extracts")) != 3 || len(r.Strings("tags")) != 2 {
		t.Errorf("typed round trip through WAL failed: %v", r)
	}
	// Serial ids continue past the deleted record.
	id := mustInsert(t, s2, "sample", Record{"name": "fresh"})
	if id != 3 {
		t.Errorf("nextID after recovery = %d, want 3", id)
	}
}

// TestNoOpUpdateKeepsSequenceContiguous: a transaction that changes
// nothing logs nothing, so it must not advance the commit sequence — a
// silent gap would make recovery refuse the directory forever.
func TestNoOpUpdateKeepsSequenceContiguous(t *testing.T) {
	dir := t.TempDir()
	s := openTestDir(t, dir, SyncOff)
	if err := s.CreateTable("sample"); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, s, "sample", Record{"name": "one"})
	if err := s.Update(func(tx *Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// A read-only Update is a no-op too.
	if err := s.Update(func(tx *Tx) error {
		_, err := tx.Get("sample", 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.CommitSeq(); got != 1 {
		t.Errorf("CommitSeq after no-op updates = %d, want 1", got)
	}
	mustInsert(t, s, "sample", Record{"name": "two"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTestDir(t, dir, SyncOff)
	defer s2.Close()
	if n := s2.Count("sample"); n != 2 {
		t.Fatalf("recovered %d rows across no-op commits, want 2", n)
	}
}

func TestRecoveryWithoutClose(t *testing.T) {
	dir := t.TempDir()
	s := openTestDir(t, dir, SyncAlways)
	if err := s.CreateTable("sample"); err != nil {
		t.Fatal(err)
	}
	commitN(t, s, "sample", 25)
	crash(t, s)

	s2 := openTestDir(t, dir, SyncAlways)
	defer s2.Close()
	if n := s2.Count("sample"); n != 25 {
		t.Fatalf("recovered %d rows after crash, want 25", n)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openTestDir(t, dir, SyncOff)
	if err := s.CreateTable("sample"); err != nil {
		t.Fatal(err)
	}
	commitN(t, s, "sample", 10)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Chop a few bytes off the last frame: the classic torn append.
	seg := lastSegment(t, dir)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2 := openTestDir(t, dir, SyncOff)
	if n := s2.Count("sample"); n != 9 {
		t.Fatalf("recovered %d rows from torn log, want the 9-commit prefix", n)
	}
	// The log stays appendable after the repair, and the torn-off id is
	// handed out again.
	id := mustInsert(t, s2, "sample", Record{"name": "replacement"})
	if id != 10 {
		t.Errorf("id after torn-tail repair = %d, want 10", id)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := openTestDir(t, dir, SyncOff)
	defer s3.Close()
	if n := s3.Count("sample"); n != 10 {
		t.Fatalf("post-repair commits lost: %d rows, want 10", n)
	}
}

func TestCorruptTailDropped(t *testing.T) {
	dir := t.TempDir()
	s := openTestDir(t, dir, SyncOff)
	if err := s.CreateTable("sample"); err != nil {
		t.Fatal(err)
	}
	commitN(t, s, "sample", 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the last frame's payload: checksum mismatch.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-4] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTestDir(t, dir, SyncOff)
	defer s2.Close()
	if n := s2.Count("sample"); n != 4 {
		t.Fatalf("recovered %d rows past a corrupt tail, want 4", n)
	}
}

func TestCorruptMiddleSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	s := openTestDir(t, dir, SyncOff)
	if err := s.CreateTable("sample"); err != nil {
		t.Fatal(err)
	}
	commitN(t, s, "sample", 5)
	// Force a rotation that retires the current segment without making it
	// collectable (no snapshot covers it).
	if err := s.wal.truncateTo(0); err != nil {
		t.Fatal(err)
	}
	commitN(t, s, "sample", 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := listWALSegments(osFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected >=2 segments after rotation, got %d", len(segs))
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-4] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Valid committed records exist beyond the damage, so recovery must
	// refuse rather than silently drop the middle of the history.
	if _, err := Open(dir, DurabilityOptions{SnapshotEvery: -1}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over mid-history corruption = %v, want ErrCorrupt", err)
	}
}

// TestCorruptHeaderRefused: a full-size segment whose magic header is
// damaged may hold acknowledged commits behind it — recovery must refuse,
// not wipe it. A sub-header stub (a segment created right at a crash) is
// reset and reused.
func TestCorruptHeaderRefused(t *testing.T) {
	dir := t.TempDir()
	s := openTestDir(t, dir, SyncOff)
	if err := s.CreateTable("sample"); err != nil {
		t.Fatal(err)
	}
	commitN(t, s, "sample", 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, DurabilityOptions{SnapshotEvery: -1}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over damaged header = %v, want ErrCorrupt", err)
	}

	// A bare stub shorter than the magic is repaired, not refused.
	dir2 := t.TempDir()
	if err := os.WriteFile(walSegmentPath(dir2, 1), []byte("BFW"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir2, DurabilityOptions{Sync: SyncOff, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("Open over header stub: %v", err)
	}
	defer s2.Close()
	if err := s2.CreateTable("sample"); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, s2, "sample", Record{"name": "works"})
}

func TestSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s := openTestDir(t, dir, SyncOff)
	if err := s.CreateTable("sample"); err != nil {
		t.Fatal(err)
	}
	commitN(t, s, "sample", 20)
	before, _ := s.WALInfo()
	if err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	after, ok := s.WALInfo()
	if !ok {
		t.Fatal("WALInfo on durable store")
	}
	if after.Bytes >= before.Bytes {
		t.Errorf("snapshot did not shrink the WAL: %d -> %d bytes", before.Bytes, after.Bytes)
	}
	if after.Segments != 1 {
		t.Errorf("segments after truncation = %d, want 1", after.Segments)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}
	// Commits after the snapshot land in the fresh segment and recovery
	// composes snapshot + WAL.
	commitN(t, s, "sample", 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTestDir(t, dir, SyncOff)
	defer s2.Close()
	if n := s2.Count("sample"); n != 25 {
		t.Fatalf("snapshot+WAL recovery: %d rows, want 25", n)
	}
}

func TestAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DurabilityOptions{Sync: SyncOff, SnapshotEvery: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.CreateTable("sample"); err != nil {
		t.Fatal(err)
	}
	commitN(t, s, "sample", 50) // well past 2 KiB of WAL
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background snapshot never happened")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	s := openTestDir(t, dir, SyncAlways)
	if err := s.CreateTable("sample"); err != nil {
		t.Fatal(err)
	}
	const goroutines, each = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := s.Update(func(tx *Tx) error {
					_, err := tx.Insert("sample", Record{"name": fmt.Sprintf("g%d-%d", g, i)})
					return err
				}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	info, _ := s.WALInfo()
	if info.LastSeq != goroutines*each {
		t.Errorf("LastSeq = %d, want %d", info.LastSeq, goroutines*each)
	}
	if info.SyncedSeq != info.LastSeq {
		t.Errorf("SyncedSeq = %d lagging LastSeq %d under SyncAlways", info.SyncedSeq, info.LastSeq)
	}
	crash(t, s)
	s2 := openTestDir(t, dir, SyncAlways)
	defer s2.Close()
	if n := s2.Count("sample"); n != goroutines*each {
		t.Fatalf("recovered %d rows, want %d", n, goroutines*each)
	}
}

func TestIndexRebuildAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openTestDir(t, dir, SyncOff)
	if err := s.CreateTable("sample"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("sample", "name", true); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, s, "sample", Record{"name": "unique-one"})
	mustInsert(t, s, "sample", Record{"name": "unique-two"})
	crash(t, s)

	// Data is recovered; schema is the caller's to re-register, exactly
	// as the core wiring does on startup.
	s2 := openTestDir(t, dir, SyncOff)
	defer s2.Close()
	if err := s2.CreateIndex("sample", "name", true); err != nil {
		t.Fatalf("index rebuild over recovered rows: %v", err)
	}
	err := s2.Update(func(tx *Tx) error {
		_, err := tx.Insert("sample", Record{"name": "unique-one"})
		return err
	})
	if !errors.Is(err, ErrUnique) {
		t.Errorf("unique constraint after rebuild: %v", err)
	}
	ids, err2 := lookupIDs(s2, "sample", "name", "unique-two")
	if err2 != nil || len(ids) != 1 || ids[0] != 2 {
		t.Errorf("rebuilt index lookup = %v, %v", ids, err2)
	}
}

func lookupIDs(s *Store, table, field string, value any) ([]int64, error) {
	var ids []int64
	err := s.View(func(tx *Tx) error {
		var err error
		ids, err = tx.Lookup(table, field, value)
		return err
	})
	return ids, err
}

func TestWALInspectDir(t *testing.T) {
	dir := t.TempDir()
	s := openTestDir(t, dir, SyncOff)
	if err := s.CreateTable("sample"); err != nil {
		t.Fatal(err)
	}
	commitN(t, s, "sample", 7)
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	commitN(t, s, "sample", 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := InspectDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !info.HasSnapshot || info.SnapshotSeq != 7 {
		t.Errorf("snapshot info = has=%v seq=%d, want seq 7", info.HasSnapshot, info.SnapshotSeq)
	}
	if info.LastSeq != 10 {
		t.Errorf("LastSeq = %d, want 10", info.LastSeq)
	}
	var records int
	for _, seg := range info.Segments {
		records += seg.Records
		if seg.Torn {
			t.Errorf("segment %s reported torn", seg.Path)
		}
	}
	if records != 3 {
		t.Errorf("WAL records after truncation = %d, want 3", records)
	}
	if info.Damaged {
		t.Error("healthy directory reported damaged")
	}
}

// TestInspectDirDetectsGap: a missing mid-history segment must be
// reported as damage, not as a healthy directory — recovery will refuse
// it with a sequence gap.
func TestInspectDirDetectsGap(t *testing.T) {
	dir := t.TempDir()
	s := openTestDir(t, dir, SyncOff)
	if err := s.CreateTable("sample"); err != nil {
		t.Fatal(err)
	}
	commitN(t, s, "sample", 4)
	if err := s.wal.truncateTo(0); err != nil { // rotate, retaining the old segment
		t.Fatal(err)
	}
	commitN(t, s, "sample", 4)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listWALSegments(osFS{}, dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >=2 segments, got %d (%v)", len(segs), err)
	}
	if err := os.Remove(segs[0].path); err != nil {
		t.Fatal(err)
	}
	info, err := InspectDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Damaged {
		t.Error("missing mid-history segment not reported as damage")
	}
	if info.LastSeq != 0 {
		t.Errorf("LastSeq over a gap = %d, want 0 (nothing recoverable)", info.LastSeq)
	}
	if _, err := Open(dir, DurabilityOptions{SnapshotEvery: -1}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Open over a gap = %v, want ErrCorrupt", err)
	}
}

func TestSyncPolicyParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"INTERVAL", SyncInterval}, {" off ", SyncOff}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() == "" {
			t.Errorf("empty String() for %v", got)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted garbage")
	}
}

// TestUniqueSwapCommitAndReplay: a transaction that rotates a unique
// value across rows (a shape checkUnique deliberately permits once the
// old holder is pending-rewritten) must commit — the two-phase index
// install may not trip on the transient collision — and must replay
// identically from the WAL.
func TestUniqueSwapCommitAndReplay(t *testing.T) {
	dir := t.TempDir()
	s := openTestDir(t, dir, SyncOff)
	if err := s.CreateTable("u"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("u", "name", true); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, s, "u", Record{"name": "a"})
	mustInsert(t, s, "u", Record{"name": "b"})
	// Snapshot now, so the reopened store carries the unique index and
	// the swap replays against it — the worst case for the install order.
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	err := s.Update(func(tx *Tx) error {
		if err := tx.Put("u", 1, Record{"name": "c"}); err != nil {
			return err
		}
		if err := tx.Put("u", 2, Record{"name": "a"}); err != nil {
			return err
		}
		return tx.Put("u", 1, Record{"name": "b"})
	})
	if err != nil {
		t.Fatalf("unique swap rejected at commit: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTestDir(t, dir, SyncOff)
	defer s2.Close()
	// The snapshot carried the index; re-registration is idempotent.
	if err := s2.CreateIndex("u", "name", true); err != nil && !errors.Is(err, ErrExists) {
		t.Fatalf("index re-registration after swap replay: %v", err)
	}
	r1, _ := s2.Get("u", 1)
	r2, _ := s2.Get("u", 2)
	if r1.String("name") != "b" || r2.String("name") != "a" {
		t.Fatalf("replayed swap: 1=%q 2=%q, want b/a", r1.String("name"), r2.String("name"))
	}
}

// TestDataDirLock: a data directory can be open in at most one store at
// a time; closing releases the lock. (Same-process flocks on separate
// descriptors conflict just like cross-process ones.)
func TestDataDirLock(t *testing.T) {
	dir := t.TempDir()
	s := openTestDir(t, dir, SyncOff)
	if s.dirLock == nil {
		t.Skip("no directory locking on this platform")
	}
	if _, err := Open(dir, DurabilityOptions{SnapshotEvery: -1}); err == nil {
		t.Fatal("second Open of a live data directory succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTestDir(t, dir, SyncOff)
	s2.Close()
}

func TestSnapshotOnVolatileStoreFails(t *testing.T) {
	if err := New().Snapshot(); err == nil {
		t.Error("Snapshot on in-memory store succeeded")
	}
}

func TestClosedDurableStoreRejectsWrites(t *testing.T) {
	dir := t.TempDir()
	s := openTestDir(t, dir, SyncOff)
	if err := s.CreateTable("sample"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	err := s.Update(func(tx *Tx) error { return nil })
	if !errors.Is(err, ErrClosed) {
		t.Errorf("Update after Close = %v, want ErrClosed", err)
	}
}
