package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSnapshotReadersSeeExactlyOneVersion pins the MVCC contract under
// write load; run with -race. A writer commits generations: every commit
// rewrites all rows with the same "gen" value, so any state mixing two
// generations can only come from a reader straddling versions. Paginated
// readers walk the table in small ScanRange pages inside one transaction
// and must observe a single generation across all pages, plus a stable
// Snapshot() sequence.
func TestSnapshotReadersSeeExactlyOneVersion(t *testing.T) {
	s := newTestStore(t, "t")
	const rows = 40
	if err := s.Update(func(tx *Tx) error {
		for i := 0; i < rows; i++ {
			if _, err := tx.Insert("t", Record{"gen": int64(0), "row": int64(i)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	const generations = 60
	var writerDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		for g := int64(1); g <= generations; g++ {
			err := s.Update(func(tx *Tx) error {
				return tx.ScanRef("t", func(r Record) bool {
					if err := tx.Put("t", r.ID(), Record{"gen": g, "row": r.Int("row")}); err != nil {
						panic(err)
					}
					return true
				})
			})
			if err != nil {
				t.Errorf("writer gen %d: %v", g, err)
				return
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !writerDone.Load() {
				tx, err := s.Begin(true)
				if err != nil {
					t.Errorf("begin: %v", err)
					return
				}
				pin := tx.Snapshot()
				gen := int64(-1)
				seen := 0
				// Paginate in pages of 7: the whole multi-call walk must
				// read the one pinned version.
				for from := int64(0); ; {
					n := 0
					var last int64
					err := tx.ScanRangeRef("t", from, 0, func(r Record) bool {
						if gen == -1 {
							gen = r.Int("gen")
						} else if g := r.Int("gen"); g != gen {
							t.Errorf("reader saw generations %d and %d in one snapshot", gen, g)
							return false
						}
						seen++
						last = r.ID()
						n++
						return n < 7
					})
					if err != nil {
						t.Errorf("scan: %v", err)
						return
					}
					if got := tx.Snapshot(); got != pin {
						t.Errorf("snapshot moved mid-transaction: %d -> %d", pin, got)
					}
					if n < 7 {
						break
					}
					from = last + 1
				}
				if seen != rows {
					t.Errorf("reader saw %d rows, want %d", seen, rows)
				}
				tx.Rollback()
			}
		}()
	}
	wg.Wait()
}

// TestBeginCommitPublishes covers the basic optimistic transaction life
// cycle: writes are invisible until Commit, visible after, and Rollback
// discards them.
func TestBeginCommitPublishes(t *testing.T) {
	s := newTestStore(t, "t")
	tx, err := s.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	id, err := tx.Insert("t", Record{"name": "draft"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Count("t") != 0 {
		t.Fatalf("uncommitted write visible: count=%d", s.Count("t"))
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if got, err := s.Get("t", id); err != nil || got.String("name") != "draft" {
		t.Fatalf("after commit: %v %v", got, err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("second commit = %v, want ErrTxDone", err)
	}

	tx2, _ := s.Begin(false)
	if _, err := tx2.Insert("t", Record{"name": "doomed"}); err != nil {
		t.Fatal(err)
	}
	tx2.Rollback()
	if s.Count("t") != 1 {
		t.Fatalf("rollback leaked: count=%d", s.Count("t"))
	}

	ro, _ := s.Begin(true)
	if _, err := ro.Insert("t", Record{}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("insert on read-only tx = %v, want ErrReadOnly", err)
	}
	if err := ro.Commit(); err != nil {
		t.Fatalf("read-only commit: %v", err)
	}

	// Calling Commit on an Update-path transaction would self-deadlock on
	// the writer mutex; it must be rejected instead.
	if err := s.Update(func(tx *Tx) error {
		if err := tx.Commit(); err == nil {
			t.Error("Commit inside Update succeeded, want error")
		}
		_, err := tx.Insert("t", Record{"name": "via-update"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if s.Count("t") != 2 {
		t.Fatalf("count = %d, want 2", s.Count("t"))
	}
}

// TestFirstCommitterWins exercises every conflict shape of optimistic
// validation: rewrite/rewrite, delete/rewrite, rewrite/delete, serial-id
// claims, and the disjoint non-conflict case.
func TestFirstCommitterWins(t *testing.T) {
	newPair := func(t *testing.T) (*Store, int64, int64) {
		s := newTestStore(t, "t")
		var a, b int64
		err := s.Update(func(tx *Tx) error {
			var err error
			if a, err = tx.Insert("t", Record{"v": int64(1)}); err != nil {
				return err
			}
			b, err = tx.Insert("t", Record{"v": int64(2)})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return s, a, b
	}

	t.Run("rewrite-rewrite", func(t *testing.T) {
		s, a, _ := newPair(t)
		tx1, _ := s.Begin(false)
		tx2, _ := s.Begin(false)
		if err := tx1.Put("t", a, Record{"v": int64(10)}); err != nil {
			t.Fatal(err)
		}
		if err := tx2.Put("t", a, Record{"v": int64(20)}); err != nil {
			t.Fatal(err)
		}
		if err := tx1.Commit(); err != nil {
			t.Fatalf("first committer: %v", err)
		}
		if err := tx2.Commit(); !errors.Is(err, ErrConflict) {
			t.Fatalf("second committer = %v, want ErrConflict", err)
		}
		if r, _ := s.Get("t", a); r.Int("v") != 10 {
			t.Fatalf("v = %d, want first committer's 10", r.Int("v"))
		}
	})

	t.Run("delete-vs-rewrite", func(t *testing.T) {
		s, a, _ := newPair(t)
		tx1, _ := s.Begin(false)
		tx2, _ := s.Begin(false)
		if err := tx1.Delete("t", a); err != nil {
			t.Fatal(err)
		}
		if err := tx2.Put("t", a, Record{"v": int64(20)}); err != nil {
			t.Fatal(err)
		}
		if err := tx1.Commit(); err != nil {
			t.Fatal(err)
		}
		// The tombstone carries the deleting commit's stamp, so the
		// rewrite of a concurrently deleted row must conflict rather
		// than resurrect it.
		if err := tx2.Commit(); !errors.Is(err, ErrConflict) {
			t.Fatalf("rewrite of deleted row = %v, want ErrConflict", err)
		}
		if _, err := s.Get("t", a); !errors.Is(err, ErrNotFound) {
			t.Fatalf("row resurrected: %v", err)
		}
	})

	t.Run("rewrite-vs-delete", func(t *testing.T) {
		s, a, _ := newPair(t)
		tx1, _ := s.Begin(false)
		tx2, _ := s.Begin(false)
		if err := tx1.Put("t", a, Record{"v": int64(10)}); err != nil {
			t.Fatal(err)
		}
		if err := tx2.Delete("t", a); err != nil {
			t.Fatal(err)
		}
		if err := tx1.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := tx2.Commit(); !errors.Is(err, ErrConflict) {
			t.Fatalf("delete of rewritten row = %v, want ErrConflict", err)
		}
	})

	t.Run("insert-id-claim", func(t *testing.T) {
		s, _, _ := newPair(t)
		tx1, _ := s.Begin(false)
		tx2, _ := s.Begin(false)
		id1, err := tx1.Insert("t", Record{"v": int64(30)})
		if err != nil {
			t.Fatal(err)
		}
		id2, err := tx2.Insert("t", Record{"v": int64(40)})
		if err != nil {
			t.Fatal(err)
		}
		if id1 != id2 {
			t.Fatalf("both txs should claim the same serial id: %d vs %d", id1, id2)
		}
		if err := tx1.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := tx2.Commit(); !errors.Is(err, ErrConflict) {
			t.Fatalf("second insert = %v, want ErrConflict", err)
		}
		if r, _ := s.Get("t", id1); r.Int("v") != 30 {
			t.Fatalf("v = %d, want first committer's 30", r.Int("v"))
		}
	})

	t.Run("update-beats-optimistic", func(t *testing.T) {
		s, a, _ := newPair(t)
		tx, _ := s.Begin(false)
		if err := tx.Put("t", a, Record{"v": int64(10)}); err != nil {
			t.Fatal(err)
		}
		if err := s.Update(func(utx *Tx) error {
			return utx.Put("t", a, Record{"v": int64(99)})
		}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); !errors.Is(err, ErrConflict) {
			t.Fatalf("optimistic commit after Update = %v, want ErrConflict", err)
		}
	})

	t.Run("disjoint-rows-both-commit", func(t *testing.T) {
		s, a, b := newPair(t)
		tx1, _ := s.Begin(false)
		tx2, _ := s.Begin(false)
		if err := tx1.Put("t", a, Record{"v": int64(10)}); err != nil {
			t.Fatal(err)
		}
		if err := tx2.Put("t", b, Record{"v": int64(20)}); err != nil {
			t.Fatal(err)
		}
		if err := tx1.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := tx2.Commit(); err != nil {
			t.Fatalf("disjoint write sets must not conflict: %v", err)
		}
		ra, _ := s.Get("t", a)
		rb, _ := s.Get("t", b)
		if ra.Int("v") != 10 || rb.Int("v") != 20 {
			t.Fatalf("got %d/%d, want 10/20", ra.Int("v"), rb.Int("v"))
		}
	})
}

// TestCommitTimeUniqueRecheck: write-time unique checks only see the
// transaction's snapshot, so Commit must re-validate against the head —
// otherwise two racing transactions could install a duplicate.
func TestCommitTimeUniqueRecheck(t *testing.T) {
	s := newTestStore(t, "t")
	if err := s.CreateIndex("t", "login", true); err != nil {
		t.Fatal(err)
	}
	var a, b int64
	if err := s.Update(func(tx *Tx) error {
		var err error
		if a, err = tx.Insert("t", Record{"login": "alice"}); err != nil {
			return err
		}
		b, err = tx.Insert("t", Record{"login": "bob"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	tx1, _ := s.Begin(false)
	tx2, _ := s.Begin(false)
	if err := tx1.Put("t", a, Record{"login": "carol"}); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Put("t", b, Record{"login": "carol"}); err != nil {
		t.Fatal(err) // write-time check passes: snapshot has no carol
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); !errors.Is(err, ErrUnique) {
		t.Fatalf("duplicate unique value = %v, want ErrUnique", err)
	}
	ids, err := func() ([]int64, error) {
		tx, _ := s.Begin(true)
		defer tx.Rollback()
		return tx.Lookup("t", "login", "carol")
	}()
	if err != nil || len(ids) != 1 {
		t.Fatalf("carol holders = %v (%v), want exactly one", ids, err)
	}
}

// TestOptimisticRetryLoopLosesNoUpdates proves first-committer-wins plus
// retry is a lost-update-free increment: concurrent optimistic
// transactions hammer one counter and every increment lands. The retry
// loop itself is WithRetry — the shared helper every production call
// site uses instead of hand-rolling this pattern.
func TestOptimisticRetryLoopLosesNoUpdates(t *testing.T) {
	s := newTestStore(t, "t")
	var id int64
	if err := s.Update(func(tx *Tx) error {
		var err error
		id, err = tx.Insert("t", Record{"n": int64(0)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := WithRetry(context.Background(), s, func(tx *Tx) error {
					r, err := tx.GetRef("t", id)
					if err != nil {
						return err
					}
					return tx.Put("t", id, Record{"n": r.Int("n") + 1})
				})
				if err != nil {
					t.Errorf("increment: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	r, err := s.Get("t", id)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Int("n"); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d (updates lost)", got, workers*perWorker)
	}
}

// TestBarrierWaitsForInFlightWriter pins the Barrier contract: it must not
// return while an Update that began before the call is still open, and
// after it returns a new read transaction sees that Update's commit.
func TestBarrierWaitsForInFlightWriter(t *testing.T) {
	s := newTestStore(t, "t")
	inTx := make(chan struct{})
	releaseTx := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		_ = s.Update(func(tx *Tx) error {
			_, err := tx.Insert("t", Record{"name": "pending"})
			close(inTx)
			<-releaseTx
			return err
		})
	}()
	<-inTx
	barrierDone := make(chan struct{})
	go func() {
		s.Barrier()
		close(barrierDone)
	}()
	select {
	case <-barrierDone:
		t.Fatal("Barrier returned while a write transaction was still open")
	case <-time.After(20 * time.Millisecond):
	}
	close(releaseTx)
	<-writerDone
	select {
	case <-barrierDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Barrier did not return after the writer finished")
	}
	if got := s.Count("t"); got != 1 {
		t.Fatalf("count after barrier = %d, want 1", got)
	}
}

// TestTxPinnedSchemaAndCounts: Tx.Tables and Tx.Count answer from the
// pinned snapshot while Store.Tables/Store.Count follow the live head.
func TestTxPinnedSchemaAndCounts(t *testing.T) {
	s := newTestStore(t, "t")
	tx, err := s.Begin(true)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	if err := s.CreateTable("later"); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(func(utx *Tx) error {
		_, err := utx.Insert("t", Record{"name": "new"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := tx.Tables(); len(got) != 1 || got[0] != "t" {
		t.Errorf("pinned Tables() = %v, want [t]", got)
	}
	if got := s.Tables(); len(got) != 2 {
		t.Errorf("head Tables() = %v, want [later t]", got)
	}
	if got := tx.Count("t"); got != 0 {
		t.Errorf("pinned Count = %d, want 0", got)
	}
	if got := s.Count("t"); got != 1 {
		t.Errorf("head Count = %d, want 1", got)
	}
	if _, err := tx.Get("t", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("pinned read of later commit = %v, want ErrNotFound", err)
	}
}

// TestChunkBoundaries crosses the copy-on-write chunk granule with
// inserts, deletes and range scans to pin the chunked layout's edge
// arithmetic.
func TestChunkBoundaries(t *testing.T) {
	s := newTestStore(t, "t")
	n := int64(3*chunkSize + 7)
	if err := s.Update(func(tx *Tx) error {
		for i := int64(1); i <= n; i++ {
			if _, err := tx.Insert("t", Record{"n": i}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Delete one id on each side of every chunk boundary, plus the first
	// and last, then an entire middle chunk.
	var dead []int64
	for c := 1; c <= 3; c++ {
		edge := int64(c * chunkSize)
		dead = append(dead, edge, edge+1)
	}
	dead = append(dead, 1, n)
	for i := int64(chunkSize + 2); i <= 2*chunkSize-1; i++ {
		dead = append(dead, i)
	}
	deadSet := make(map[int64]bool, len(dead))
	if err := s.Update(func(tx *Tx) error {
		for _, id := range dead {
			if deadSet[id] {
				continue
			}
			deadSet[id] = true
			if err := tx.Delete("t", id); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := int(n) - len(deadSet)
	if got := s.Count("t"); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	if err := s.View(func(tx *Tx) error {
		prev := int64(0)
		seen := 0
		if err := tx.ScanRef("t", func(r Record) bool {
			id := r.ID()
			if id <= prev {
				t.Errorf("scan out of order: %d after %d", id, prev)
			}
			if deadSet[id] {
				t.Errorf("scan returned deleted id %d", id)
			}
			prev = id
			seen++
			return true
		}); err != nil {
			return err
		}
		if seen != want {
			t.Errorf("scan saw %d rows, want %d", seen, want)
		}
		// Range scan that starts inside the hollowed-out chunk.
		first := int64(0)
		if err := tx.ScanRangeRef("t", chunkSize+5, 0, func(r Record) bool {
			first = r.ID()
			return false
		}); err != nil {
			return err
		}
		if first != 2*chunkSize+2 {
			t.Errorf("first live id after hole = %d, want %d", first, 2*chunkSize+2)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Reinsert after the deletes: fresh ids continue past n.
	var fresh int64
	if err := s.Update(func(tx *Tx) error {
		var err error
		fresh, err = tx.Insert("t", Record{"n": int64(-1)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if fresh != n+1 {
		t.Fatalf("id after deletes = %d, want %d", fresh, n+1)
	}
}

// TestOptimisticCommitDurable runs Begin/Commit transactions against a
// durable store and reopens the directory: optimistic commits must flow
// through the WAL exactly like Update commits.
func TestOptimisticCommitDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DurabilityOptions{Sync: SyncAlways, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	tx, err := s.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	id, err := tx.Insert("t", Record{"name": "durable-optimist"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, DurabilityOptions{Sync: SyncAlways, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	r, err := s2.Get("t", id)
	if err != nil || r.String("name") != "durable-optimist" {
		t.Fatalf("after reopen: %v %v", r, err)
	}
	// Conflict stamps survive recovery: a transaction pinned before a
	// post-recovery commit still conflicts on the rewritten row.
	old, err := s2.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Put("t", id, Record{"name": "stale"}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Update(func(utx *Tx) error {
		return utx.Put("t", id, Record{"name": "fresh"})
	}); err != nil {
		t.Fatal(err)
	}
	if err := old.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale commit after recovery = %v, want ErrConflict", err)
	}
}

// TestReadersUnblockedByWriter is the interference regression test: a
// reader that begins while a write transaction is open must finish
// without waiting for it. Under the old single-RWMutex store this
// deadlocked (the View could not start until the Update returned).
func TestReadersUnblockedByWriter(t *testing.T) {
	s := newTestStore(t, "t")
	if err := s.Update(func(tx *Tx) error {
		_, err := tx.Insert("t", Record{"name": "pre"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	inTx := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Update(func(tx *Tx) error {
			_, err := tx.Insert("t", Record{"name": "slow"})
			close(inTx)
			<-release
			return err
		})
	}()
	<-inTx
	readDone := make(chan int, 1)
	go func() {
		var n int
		_ = s.View(func(tx *Tx) error {
			n = tx.Count("t")
			return nil
		})
		readDone <- n
	}()
	select {
	case n := <-readDone:
		if n != 1 {
			t.Errorf("reader saw %d rows, want 1 (pre-write state)", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader blocked behind an open write transaction")
	}
	close(release)
	<-done
	if got := s.Count("t"); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}

// TestConflictErrorShape: ErrConflict wraps with table/id context and is
// matchable with errors.Is.
func TestConflictErrorShape(t *testing.T) {
	s := newTestStore(t, "t")
	var id int64
	if err := s.Update(func(tx *Tx) error {
		var err error
		id, err = tx.Insert("t", Record{"v": int64(1)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	tx, _ := s.Begin(false)
	if err := tx.Put("t", id, Record{"v": int64(2)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(func(utx *Tx) error {
		return utx.Put("t", id, Record{"v": int64(3)})
	}); err != nil {
		t.Fatal(err)
	}
	err := tx.Commit()
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict", err)
	}
	want := fmt.Sprintf("t/%d", id)
	if msg := err.Error(); !contains(msg, want) {
		t.Errorf("error %q does not name the conflicting record %q", msg, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
