package store

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := newTestStore(t, "sample", "extract")
	if err := s.CreateIndex("sample", "name", true); err != nil {
		t.Fatal(err)
	}
	when := time.Date(2010, 1, 2, 3, 4, 5, 0, time.UTC)
	mustInsert(t, s, "sample", Record{
		"name": "arabidopsis", "count": int64(42), "ratio": 0.5,
		"active": true, "created": when,
		"extracts": []int64{1, 2, 3}, "tags": []string{"plant", "light"},
	})
	mustInsert(t, s, "extract", Record{"name": "leaf"})

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}

	s2 := New()
	if err := s2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := s2.Get("sample", 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.String("name") != "arabidopsis" || r.Int("count") != 42 ||
		r.Float("ratio") != 0.5 || !r.Bool("active") ||
		!r.Time("created").Equal(when) {
		t.Errorf("scalar round trip failed: %v", r)
	}
	if len(r.IDs("extracts")) != 3 || len(r.Strings("tags")) != 2 {
		t.Errorf("slice round trip failed: %v", r)
	}
	// Unique index survives the round trip.
	err = s2.Update(func(tx *Tx) error {
		_, err := tx.Insert("sample", Record{"name": "arabidopsis"})
		return err
	})
	if !errors.Is(err, ErrUnique) {
		t.Errorf("unique index lost on load: %v", err)
	}
	// Serial IDs continue where they left off.
	id := mustInsert(t, s2, "sample", Record{"name": "fresh"})
	if id != 2 {
		t.Errorf("nextID after load = %d, want 2", id)
	}
}

func TestLoadRequiresEmptyStore(t *testing.T) {
	s := newTestStore(t, "sample")
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := newTestStore(t, "other")
	if err := s2.Load(&buf); err == nil {
		t.Fatal("Load into non-empty store succeeded")
	}
}

func TestLoadGarbage(t *testing.T) {
	s := New()
	if err := s.Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("Load of garbage succeeded")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.gob")
	s := newTestStore(t, "sample")
	mustInsert(t, s, "sample", Record{"name": "persisted"})
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s2 := New()
	if err := s2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if s2.Count("sample") != 1 {
		t.Error("file round trip lost data")
	}
}

// TestSnapshotWALRoundTrip extends the classic Save/Load round trip to
// the durable composition: typed values must survive snapshot + WAL
// replay, the commit sequence must carry across, and unique indexes must
// be rebuildable over the recovered rows.
func TestSnapshotWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DurabilityOptions{Sync: SyncOff, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("sample"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("sample", "name", true); err != nil {
		t.Fatal(err)
	}
	when := time.Date(2010, 1, 2, 3, 4, 5, 0, time.UTC)
	// First half of the history lands in the snapshot...
	mustInsert(t, s, "sample", Record{
		"name": "in-snapshot", "count": int64(7), "ratio": 1.5,
		"active": true, "created": when,
		"extracts": []int64{9}, "tags": []string{"a", "b"},
	})
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// ...the second half only in the WAL.
	mustInsert(t, s, "sample", Record{
		"name": "in-wal", "count": int64(8), "ratio": 2.5,
		"active": false, "created": when.AddDate(0, 1, 0),
		"extracts": []int64{1, 2}, "tags": []string{"c"},
	})
	seqAtClose := s.CommitSeq()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, DurabilityOptions{Sync: SyncOff, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.CommitSeq(); got != seqAtClose {
		t.Errorf("CommitSeq after recovery = %d, want %d", got, seqAtClose)
	}
	for id, want := range map[int64]string{1: "in-snapshot", 2: "in-wal"} {
		r, err := s2.Get("sample", id)
		if err != nil {
			t.Fatalf("row %d: %v", id, err)
		}
		if r.String("name") != want || r.Int("count") == 0 || r.Float("ratio") == 0 ||
			r.Time("created").IsZero() || len(r.IDs("extracts")) == 0 || len(r.Strings("tags")) == 0 {
			t.Errorf("typed fields lost on row %d: %v", id, r)
		}
	}
	// Snapshot carried the index; WAL replay maintained it.
	err = s2.Update(func(tx *Tx) error {
		_, err := tx.Insert("sample", Record{"name": "in-wal"})
		return err
	})
	if !errors.Is(err, ErrUnique) {
		t.Errorf("unique index after snapshot+WAL recovery: %v", err)
	}
}

func TestSaveEmptyStore(t *testing.T) {
	s := New()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := New()
	if err := s2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if len(s2.Tables()) != 0 {
		t.Errorf("empty store round trip: %v", s2.Tables())
	}
}
