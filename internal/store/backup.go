package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// BackupDir copies a consistent, restorable backup of the data directory
// src into dst: the snapshot plus the WAL tail, verified with InspectDir
// before returning. It works against a LIVE directory — the store may be
// open and committing throughout — because the copy order makes any race
// land on the safe side:
//
//   - WAL segments are copied first, oldest to newest. A segment removed
//     underfoot (background truncation) is skipped: truncation only ever
//     happens after a snapshot covering it has been renamed into place.
//   - snapshot.gob is copied LAST. Whatever frames were skipped or
//     half-copied before it are therefore at or below the copied
//     snapshot's seq (replay skips them) or beyond the copied tail
//     (recovery truncates the torn frame and stops) — either way the
//     restored state is an exact committed prefix.
//   - The LOCK file is never copied: the flock, not the file, is the
//     lock, but a copied LOCK with a live-looking pid is exactly the kind
//     of stale artifact DirInUse has to see through. A backup starts with
//     no lock at all.
//
// If a concurrent snapshot-plus-truncation still manages to interleave so
// that the copied directory is inconsistent, InspectDir detects it
// (Damaged or a decode failure) and the copy is retried from scratch, a
// bounded number of times.
//
// dst must not exist or must be an empty directory. The result describes
// the backup; restore it with store.Open(dst, ...) or inspect it with
// bfabric-admin inspect.
func BackupDir(src, dst string) (*DirInfo, error) {
	if entries, err := os.ReadDir(dst); err == nil && len(entries) > 0 {
		return nil, fmt.Errorf("store: backup destination %s is not empty", dst)
	} else if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return nil, err
	}

	const attempts = 3
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if err := clearBackupDir(dst); err != nil {
			return nil, err
		}
		if err := copyDataFiles(src, dst); err != nil {
			lastErr = err
			continue
		}
		info, err := InspectDir(dst)
		if err != nil {
			lastErr = err
			continue
		}
		if info.Damaged {
			lastErr = fmt.Errorf("store: backup of %s copied a torn history (racing truncation)", src)
			continue
		}
		return info, nil
	}
	return nil, fmt.Errorf("store: backup failed after %d attempts: %w", attempts, lastErr)
}

// clearBackupDir removes store files from a previous (failed) copy
// attempt. Only files the backup itself writes are touched.
func clearBackupDir(dst string) error {
	entries, err := os.ReadDir(dst)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if name != snapshotFile && name != epochFile && !strings.HasSuffix(name, ".tmp") {
			if _, ok := parseWALSegmentName(name); !ok {
				continue
			}
		}
		if err := os.Remove(filepath.Join(dst, name)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// copyDataFiles performs one copy pass: segments oldest-first, snapshot
// last, everything fsynced (files and directory) so the backup is itself
// crash-safe.
func copyDataFiles(src, dst string) error {
	// The EPOCH file is copied first: the epoch only ever increases, so
	// copying it early can only understate it — and the snapshot (copied
	// last) carries its own epoch, of which recovery takes the max. A
	// backup cut before a promotion restores at the old epoch and is
	// correctly fenced into a resync if it rejoins the new timeline.
	if err := copyFileDurable(filepath.Join(src, epochFile), filepath.Join(dst, epochFile)); err != nil && !os.IsNotExist(err) {
		return err
	}
	segs, err := listWALSegments(osFS{}, src)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if err := copyFileDurable(seg.path, filepath.Join(dst, filepath.Base(seg.path))); err != nil {
			if os.IsNotExist(err) {
				continue // truncated while we worked; the snapshot covers it
			}
			return err
		}
	}
	snapSrc := filepath.Join(src, snapshotFile)
	if err := copyFileDurable(snapSrc, filepath.Join(dst, snapshotFile)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return syncDir(osFS{}, dst)
}

// copyFileDurable copies src to dst and fsyncs dst. The source may be
// growing concurrently; the copy is whatever prefix a sequential read
// observes, which for a WAL segment is a valid frame prefix plus at most
// one torn frame — exactly what recovery is specified to handle.
func copyFileDurable(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, err = io.Copy(out, in)
	if err == nil {
		err = out.Sync()
	}
	if cerr := out.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(dst)
	}
	return err
}
