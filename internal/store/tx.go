package store

import (
	"fmt"
	"sort"
)

// Tx is a transaction over the store. Read-only transactions hold a shared
// lock; read-write transactions hold the exclusive lock for their duration,
// buffering writes so that rollback is trivial and commit is atomic.
// Transactions are not safe for concurrent use by multiple goroutines.
type Tx struct {
	s        *Store
	readonly bool
	done     bool

	// Pending per-table overlays, lazily allocated.
	pending map[string]*txTable
}

// txTable is the pending overlay for one table within a transaction.
type txTable struct {
	writes  map[int64]Record // id -> new record state (deep copies)
	deletes map[int64]bool   // id -> deleted in this tx
	nextID  int64            // provisional next id (0 = untouched)
}

func (s *Store) begin(readonly bool) (*Tx, error) {
	if readonly {
		s.mu.RLock()
	} else {
		s.mu.Lock()
	}
	if s.closed {
		if readonly {
			s.mu.RUnlock()
		} else {
			s.mu.Unlock()
		}
		return nil, ErrClosed
	}
	return &Tx{s: s, readonly: readonly, pending: make(map[string]*txTable)}, nil
}

// release drops the transaction's lock. It is idempotent.
func (tx *Tx) release() {
	if tx.done {
		return
	}
	tx.done = true
	if tx.readonly {
		tx.s.mu.RUnlock()
	} else {
		tx.s.mu.Unlock()
	}
}

func (tx *Tx) table(name string) (*table, error) {
	t, ok := tx.s.tables[name]
	if !ok {
		return nil, fmt.Errorf("store: table %q: %w", name, ErrNoTable)
	}
	return t, nil
}

func (tx *Tx) overlay(name string) *txTable {
	o, ok := tx.pending[name]
	if !ok {
		o = &txTable{writes: make(map[int64]Record), deletes: make(map[int64]bool)}
		tx.pending[name] = o
	}
	return o
}

func validateRecord(r Record) error {
	for k, v := range r {
		if k == IDField {
			continue
		}
		if !validValue(v) {
			return fmt.Errorf("store: field %q has %T: %w", k, v, ErrBadValue)
		}
	}
	return nil
}

// Insert adds a new record to the named table and returns its assigned ID.
// The input record is not modified.
func (tx *Tx) Insert(tableName string, r Record) (int64, error) {
	if tx.done {
		return 0, ErrTxDone
	}
	if tx.readonly {
		return 0, ErrReadOnly
	}
	t, err := tx.table(tableName)
	if err != nil {
		return 0, err
	}
	if err := validateRecord(r); err != nil {
		return 0, err
	}
	o := tx.overlay(tableName)
	if o.nextID == 0 {
		o.nextID = t.nextID
	}
	id := o.nextID
	o.nextID++
	rec := r.Clone()
	rec[IDField] = id
	for _, ix := range t.indexes {
		if err := ix.checkUnique(rec, id, o.writes, o.deletes); err != nil {
			o.nextID-- // roll back the provisional id
			return 0, err
		}
	}
	o.writes[id] = rec
	delete(o.deletes, id)
	return id, nil
}

// Put replaces the record with the given id. The record must exist.
func (tx *Tx) Put(tableName string, id int64, r Record) error {
	if tx.done {
		return ErrTxDone
	}
	if tx.readonly {
		return ErrReadOnly
	}
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	if err := validateRecord(r); err != nil {
		return err
	}
	if !tx.exists(t, tableName, id) {
		return fmt.Errorf("store: %s/%d: %w", tableName, id, ErrNotFound)
	}
	rec := r.Clone()
	rec[IDField] = id
	o := tx.overlay(tableName)
	for _, ix := range t.indexes {
		if err := ix.checkUnique(rec, id, o.writes, o.deletes); err != nil {
			return err
		}
	}
	o.writes[id] = rec
	delete(o.deletes, id)
	return nil
}

// Delete removes the record with the given id. Deleting a missing record
// returns ErrNotFound.
func (tx *Tx) Delete(tableName string, id int64) error {
	if tx.done {
		return ErrTxDone
	}
	if tx.readonly {
		return ErrReadOnly
	}
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	if !tx.exists(t, tableName, id) {
		return fmt.Errorf("store: %s/%d: %w", tableName, id, ErrNotFound)
	}
	o := tx.overlay(tableName)
	delete(o.writes, id)
	o.deletes[id] = true
	return nil
}

func (tx *Tx) exists(t *table, tableName string, id int64) bool {
	if o, ok := tx.pending[tableName]; ok {
		if o.deletes[id] {
			return false
		}
		if _, ok := o.writes[id]; ok {
			return true
		}
	}
	_, ok := t.rows[id]
	return ok
}

// Get returns a copy of the record with the given id, observing the
// transaction's own pending writes.
func (tx *Tx) Get(tableName string, id int64) (Record, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	t, err := tx.table(tableName)
	if err != nil {
		return nil, err
	}
	if o, ok := tx.pending[tableName]; ok {
		if o.deletes[id] {
			return nil, fmt.Errorf("store: %s/%d: %w", tableName, id, ErrNotFound)
		}
		if r, ok := o.writes[id]; ok {
			return r.Clone(), nil
		}
	}
	r, ok := t.rows[id]
	if !ok {
		return nil, fmt.Errorf("store: %s/%d: %w", tableName, id, ErrNotFound)
	}
	return r.Clone(), nil
}

// Exists reports whether the record exists.
func (tx *Tx) Exists(tableName string, id int64) bool {
	if tx.done {
		return false
	}
	t, err := tx.table(tableName)
	if err != nil {
		return false
	}
	return tx.exists(t, tableName, id)
}

// Count returns the number of live records in the table as seen by the
// transaction.
func (tx *Tx) Count(tableName string) int {
	if tx.done {
		return 0
	}
	t, err := tx.table(tableName)
	if err != nil {
		return 0
	}
	n := len(t.rows)
	if o, ok := tx.pending[tableName]; ok {
		for id := range o.writes {
			if _, committed := t.rows[id]; !committed {
				n++
			}
		}
		for id := range o.deletes {
			if _, committed := t.rows[id]; committed {
				n--
			}
		}
	}
	return n
}

// Scan visits every live record of the table in ascending ID order. The
// callback receives a copy of each record and returns false to stop early.
func (tx *Tx) Scan(tableName string, fn func(r Record) bool) error {
	if tx.done {
		return ErrTxDone
	}
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	o := tx.pending[tableName]
	ids := make([]int64, 0, len(t.rows)+8)
	for id := range t.rows {
		if o != nil {
			if o.deletes[id] {
				continue
			}
			if _, rewritten := o.writes[id]; rewritten {
				continue // added below from overlay
			}
		}
		ids = append(ids, id)
	}
	if o != nil {
		for id := range o.writes {
			if !o.deletes[id] {
				ids = append(ids, id)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		var r Record
		if o != nil {
			if pr, ok := o.writes[id]; ok {
				r = pr
			}
		}
		if r == nil {
			r = t.rows[id]
		}
		if !fn(r.Clone()) {
			return nil
		}
	}
	return nil
}

// Lookup returns the sorted IDs of records whose field equals value, using
// the field's index if one exists and falling back to a full scan otherwise.
// The result observes the transaction's pending writes.
func (tx *Tx) Lookup(tableName, field string, value any) ([]int64, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	t, err := tx.table(tableName)
	if err != nil {
		return nil, err
	}
	want, ok := keyFor(value)
	if !ok {
		return nil, fmt.Errorf("store: lookup value %T: %w", value, ErrBadValue)
	}
	o := tx.pending[tableName]
	var ids []int64
	if ix, haveIx := t.indexes[field]; haveIx {
		for _, id := range ix.lookup(value) {
			if o != nil {
				if o.deletes[id] {
					continue
				}
				if pr, rewritten := o.writes[id]; rewritten {
					if k, ok2 := keyFor(pr[field]); !ok2 || k != want {
						continue
					}
				}
			}
			ids = append(ids, id)
		}
	} else {
		for id, r := range t.rows {
			if o != nil {
				if o.deletes[id] {
					continue
				}
				if _, rewritten := o.writes[id]; rewritten {
					continue
				}
			}
			if k, ok2 := keyFor(r[field]); ok2 && k == want {
				ids = append(ids, id)
			}
		}
	}
	if o != nil {
		for id, pr := range o.writes {
			if o.deletes[id] {
				continue
			}
			if k, ok2 := keyFor(pr[field]); ok2 && k == want {
				if !containsID(ids, id) {
					ids = append(ids, id)
				}
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

func containsID(ids []int64, id int64) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Find returns copies of all records whose field equals value, in ID order.
func (tx *Tx) Find(tableName, field string, value any) ([]Record, error) {
	ids, err := tx.Lookup(tableName, field, value)
	if err != nil {
		return nil, err
	}
	out := make([]Record, 0, len(ids))
	for _, id := range ids {
		r, err := tx.Get(tableName, id)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// First returns the first record whose field equals value, or ErrNotFound.
func (tx *Tx) First(tableName, field string, value any) (Record, error) {
	ids, err := tx.Lookup(tableName, field, value)
	if err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("store: %s where %s=%v: %w", tableName, field, value, ErrNotFound)
	}
	return tx.Get(tableName, ids[0])
}

// commit applies the transaction's pending writes to the committed state.
// The exclusive lock is already held.
func (tx *Tx) commit() error {
	if tx.done {
		return ErrTxDone
	}
	if tx.readonly {
		return nil
	}
	// Apply deletions then writes, maintaining indexes.
	for name, o := range tx.pending {
		t := tx.s.tables[name]
		if t == nil {
			continue // table vanished? cannot happen: tables are never dropped mid-tx
		}
		for id := range o.deletes {
			if old, ok := t.rows[id]; ok {
				for _, ix := range t.indexes {
					ix.remove(old, id)
				}
				delete(t.rows, id)
			}
		}
		ids := make([]int64, 0, len(o.writes))
		for id := range o.writes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			rec := o.writes[id]
			if old, ok := t.rows[id]; ok {
				for _, ix := range t.indexes {
					ix.remove(old, id)
				}
			}
			for _, ix := range t.indexes {
				if err := ix.insert(rec, id); err != nil {
					// Unique violations were checked at write time; hitting one
					// here indicates a bug, but keep the store consistent.
					return fmt.Errorf("store: commit %s/%d: %w", name, id, err)
				}
			}
			t.rows[id] = rec
		}
		if o.nextID > t.nextID {
			t.nextID = o.nextID
		}
	}
	tx.s.commitSeq++
	return nil
}
