package store

import (
	"fmt"
	"sort"
)

// Tx is a transaction over the store. Read-only transactions hold a shared
// lock; read-write transactions hold the exclusive lock for their duration,
// buffering writes so that rollback is trivial and commit is atomic.
// Transactions are not safe for concurrent use by multiple goroutines.
type Tx struct {
	s        *Store
	readonly bool
	done     bool

	// Pending per-table overlays, lazily allocated.
	pending map[string]*txTable

	// walSeq is the commit sequence this transaction appended to the WAL,
	// or 0 if nothing was logged. Update waits on it per the sync policy
	// after the lock is released, so waiting never blocks other commits.
	walSeq uint64
}

// txTable is the pending overlay for one table within a transaction.
type txTable struct {
	writes  map[int64]Record // id -> new record state (deep copies)
	deletes map[int64]bool   // id -> deleted in this tx
	nextID  int64            // provisional next id (0 = untouched)
}

func (s *Store) begin(readonly bool) (*Tx, error) {
	if readonly {
		s.mu.RLock()
	} else {
		s.mu.Lock()
	}
	if s.closed {
		if readonly {
			s.mu.RUnlock()
		} else {
			s.mu.Unlock()
		}
		return nil, ErrClosed
	}
	return &Tx{s: s, readonly: readonly, pending: make(map[string]*txTable)}, nil
}

// release drops the transaction's lock. It is idempotent.
func (tx *Tx) release() {
	if tx.done {
		return
	}
	tx.done = true
	if tx.readonly {
		tx.s.mu.RUnlock()
	} else {
		tx.s.mu.Unlock()
	}
}

func (tx *Tx) table(name string) (*table, error) {
	t, ok := tx.s.tables[name]
	if !ok {
		return nil, fmt.Errorf("store: table %q: %w", name, ErrNoTable)
	}
	return t, nil
}

func (tx *Tx) overlay(name string) *txTable {
	o, ok := tx.pending[name]
	if !ok {
		o = &txTable{writes: make(map[int64]Record), deletes: make(map[int64]bool)}
		tx.pending[name] = o
	}
	return o
}

func validateRecord(r Record) error {
	for k, v := range r {
		if k == IDField {
			continue
		}
		if !validValue(v) {
			return fmt.Errorf("store: field %q has %T: %w", k, v, ErrBadValue)
		}
	}
	return nil
}

// Insert adds a new record to the named table and returns its assigned ID.
// The input record is not modified.
func (tx *Tx) Insert(tableName string, r Record) (int64, error) {
	if tx.done {
		return 0, ErrTxDone
	}
	if tx.readonly {
		return 0, ErrReadOnly
	}
	t, err := tx.table(tableName)
	if err != nil {
		return 0, err
	}
	if err := validateRecord(r); err != nil {
		return 0, err
	}
	o := tx.overlay(tableName)
	if o.nextID == 0 {
		o.nextID = t.nextID
	}
	id := o.nextID
	o.nextID++
	rec := r.Clone()
	rec[IDField] = id
	for _, ix := range t.indexes {
		if err := ix.checkUnique(rec, id, o.writes, o.deletes); err != nil {
			o.nextID-- // roll back the provisional id
			return 0, err
		}
	}
	o.writes[id] = rec
	delete(o.deletes, id)
	return id, nil
}

// Put replaces the record with the given id. The record must exist.
func (tx *Tx) Put(tableName string, id int64, r Record) error {
	if tx.done {
		return ErrTxDone
	}
	if tx.readonly {
		return ErrReadOnly
	}
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	if err := validateRecord(r); err != nil {
		return err
	}
	if !tx.exists(t, tableName, id) {
		return fmt.Errorf("store: %s/%d: %w", tableName, id, ErrNotFound)
	}
	rec := r.Clone()
	rec[IDField] = id
	o := tx.overlay(tableName)
	for _, ix := range t.indexes {
		if err := ix.checkUnique(rec, id, o.writes, o.deletes); err != nil {
			return err
		}
	}
	o.writes[id] = rec
	delete(o.deletes, id)
	return nil
}

// Delete removes the record with the given id. Deleting a missing record
// returns ErrNotFound.
func (tx *Tx) Delete(tableName string, id int64) error {
	if tx.done {
		return ErrTxDone
	}
	if tx.readonly {
		return ErrReadOnly
	}
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	if !tx.exists(t, tableName, id) {
		return fmt.Errorf("store: %s/%d: %w", tableName, id, ErrNotFound)
	}
	o := tx.overlay(tableName)
	delete(o.writes, id)
	o.deletes[id] = true
	return nil
}

func (tx *Tx) exists(t *table, tableName string, id int64) bool {
	if o, ok := tx.pending[tableName]; ok {
		if o.deletes[id] {
			return false
		}
		if _, ok := o.writes[id]; ok {
			return true
		}
	}
	_, ok := t.rows[id]
	return ok
}

// Get returns a copy of the record with the given id, observing the
// transaction's own pending writes. The copy is the caller's to mutate.
func (tx *Tx) Get(tableName string, id int64) (Record, error) {
	r, err := tx.GetRef(tableName, id)
	if err != nil {
		return nil, err
	}
	return r.Clone(), nil
}

// GetRef returns the record with the given id without copying it, observing
// the transaction's own pending writes.
//
// Aliasing contract: the returned record (including its slice values) is
// shared with the store and MUST NOT be mutated. Committed records are
// immutable — writes replace whole record maps — so the reference stays a
// valid, consistent snapshot even after the transaction ends. Callers that
// need to modify the record must use Get (or Clone the reference).
func (tx *Tx) GetRef(tableName string, id int64) (Record, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	t, err := tx.table(tableName)
	if err != nil {
		return nil, err
	}
	if o, ok := tx.pending[tableName]; ok {
		if o.deletes[id] {
			return nil, fmt.Errorf("store: %s/%d: %w", tableName, id, ErrNotFound)
		}
		if r, ok := o.writes[id]; ok {
			return r, nil
		}
	}
	r, ok := t.rows[id]
	if !ok {
		return nil, fmt.Errorf("store: %s/%d: %w", tableName, id, ErrNotFound)
	}
	return r, nil
}

// Exists reports whether the record exists.
func (tx *Tx) Exists(tableName string, id int64) bool {
	if tx.done {
		return false
	}
	t, err := tx.table(tableName)
	if err != nil {
		return false
	}
	return tx.exists(t, tableName, id)
}

// Count returns the number of live records in the table as seen by the
// transaction.
func (tx *Tx) Count(tableName string) int {
	if tx.done {
		return 0
	}
	t, err := tx.table(tableName)
	if err != nil {
		return 0
	}
	n := len(t.rows)
	if o, ok := tx.pending[tableName]; ok {
		for id := range o.writes {
			if _, committed := t.rows[id]; !committed {
				n++
			}
		}
		for id := range o.deletes {
			if _, committed := t.rows[id]; committed {
				n--
			}
		}
	}
	return n
}

// Scan visits every live record of the table in ascending ID order. The
// callback receives a copy of each record and returns false to stop early.
func (tx *Tx) Scan(tableName string, fn func(r Record) bool) error {
	return tx.scanRange(tableName, 0, 0, true, fn)
}

// ScanRef is Scan without the per-record copy: the callback receives shared
// references to live records, in ascending ID order. The GetRef aliasing
// contract applies — records must not be mutated.
func (tx *Tx) ScanRef(tableName string, fn func(r Record) bool) error {
	return tx.scanRange(tableName, 0, 0, false, fn)
}

// ScanRange visits the live records with fromID <= id <= toID in ascending
// ID order, receiving copies. A fromID of 0 means "from the first record"; a
// toID of 0 means "to the last". This is the primitive behind paginated
// browsing: pass the last seen id + 1 as fromID to resume a scan.
func (tx *Tx) ScanRange(tableName string, fromID, toID int64, fn func(r Record) bool) error {
	return tx.scanRange(tableName, fromID, toID, true, fn)
}

// ScanRangeRef is ScanRange without the per-record copy. The GetRef aliasing
// contract applies.
func (tx *Tx) ScanRangeRef(tableName string, fromID, toID int64, fn func(r Record) bool) error {
	return tx.scanRange(tableName, fromID, toID, false, fn)
}

// scanRange is the shared ordered-scan core. It walks the table's
// incrementally-maintained sorted id slice — no per-call rebuild or sort —
// merging in the transaction's pending overlay when one exists.
func (tx *Tx) scanRange(tableName string, fromID, toID int64, clone bool, fn func(r Record) bool) error {
	if tx.done {
		return ErrTxDone
	}
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	emit := func(r Record) bool {
		if clone {
			r = r.Clone()
		}
		return fn(r)
	}
	inRange := func(id int64) bool {
		return id >= fromID && (toID == 0 || id <= toID)
	}

	// Restrict the committed id slice to [fromID, toID].
	ids := t.ids
	if fromID > 0 {
		lo := sort.Search(len(ids), func(k int) bool { return ids[k] >= fromID })
		ids = ids[lo:]
	}
	if toID > 0 {
		hi := sort.Search(len(ids), func(k int) bool { return ids[k] > toID })
		ids = ids[:hi]
	}

	o := tx.pending[tableName]
	if o == nil || (len(o.writes) == 0 && len(o.deletes) == 0) {
		// Fast path: no overlay, walk the committed order directly.
		for _, id := range ids {
			if !emit(t.rows[id]) {
				return nil
			}
		}
		return nil
	}

	// Overlay ids (new inserts and rewrites) in range, sorted.
	oids := make([]int64, 0, len(o.writes))
	for id := range o.writes {
		if !o.deletes[id] && inRange(id) {
			oids = append(oids, id)
		}
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })

	// Merge-walk committed and overlay ids. Rewritten committed ids are
	// emitted from the overlay side; deleted ids are skipped.
	i, j := 0, 0
	for i < len(ids) || j < len(oids) {
		switch {
		case j >= len(oids) || (i < len(ids) && ids[i] < oids[j]):
			id := ids[i]
			i++
			if o.deletes[id] {
				continue
			}
			if _, rewritten := o.writes[id]; rewritten {
				continue // comes from the overlay side
			}
			if !emit(t.rows[id]) {
				return nil
			}
		case i >= len(ids) || oids[j] < ids[i]:
			if !emit(o.writes[oids[j]]) {
				return nil
			}
			j++
		default: // equal: rewritten committed row
			if !emit(o.writes[oids[j]]) {
				return nil
			}
			i++
			j++
		}
	}
	return nil
}

// Lookup returns the sorted IDs of records whose field equals value, using
// the field's index if one exists and falling back to a full scan otherwise.
// The result observes the transaction's pending writes.
func (tx *Tx) Lookup(tableName, field string, value any) ([]int64, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	t, err := tx.table(tableName)
	if err != nil {
		return nil, err
	}
	want, ok := keyFor(value)
	if !ok {
		return nil, fmt.Errorf("store: lookup value %T: %w", value, ErrBadValue)
	}
	o := tx.pending[tableName]
	var ids []int64
	if ix, haveIx := t.indexes[field]; haveIx {
		committed := ix.lookup(value)
		if o == nil || (len(o.writes) == 0 && len(o.deletes) == 0) {
			// Fast path: the index result is already sorted and final.
			return committed, nil
		}
		for _, id := range committed {
			if o.deletes[id] {
				continue
			}
			if _, rewritten := o.writes[id]; rewritten {
				continue // re-checked against the pending state below
			}
			ids = append(ids, id)
		}
	} else {
		for id, r := range t.rows {
			if o != nil {
				if o.deletes[id] {
					continue
				}
				if _, rewritten := o.writes[id]; rewritten {
					continue
				}
			}
			if k, ok2 := keyFor(r[field]); ok2 && k == want {
				ids = append(ids, id)
			}
		}
	}
	if o != nil {
		// Rewritten and inserted rows were excluded above, so appending every
		// matching pending write cannot produce duplicates.
		for id, pr := range o.writes {
			if o.deletes[id] {
				continue
			}
			if k, ok2 := keyFor(pr[field]); ok2 && k == want {
				ids = append(ids, id)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// Find returns copies of all records whose field equals value, in ID order.
func (tx *Tx) Find(tableName, field string, value any) ([]Record, error) {
	out, err := tx.FindRef(tableName, field, value)
	if err != nil {
		return nil, err
	}
	for i, r := range out {
		out[i] = r.Clone()
	}
	return out, nil
}

// FindRef returns shared references to all records whose field equals value,
// in ID order. The GetRef aliasing contract applies: the records must not be
// mutated.
func (tx *Tx) FindRef(tableName, field string, value any) ([]Record, error) {
	ids, err := tx.Lookup(tableName, field, value)
	if err != nil {
		return nil, err
	}
	out := make([]Record, 0, len(ids))
	for _, id := range ids {
		r, err := tx.GetRef(tableName, id)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// First returns a copy of the first record whose field equals value, or
// ErrNotFound.
func (tx *Tx) First(tableName, field string, value any) (Record, error) {
	r, err := tx.FirstRef(tableName, field, value)
	if err != nil {
		return nil, err
	}
	return r.Clone(), nil
}

// FirstRef returns a shared reference to the first record whose field equals
// value, or ErrNotFound. The GetRef aliasing contract applies.
func (tx *Tx) FirstRef(tableName, field string, value any) (Record, error) {
	ids, err := tx.Lookup(tableName, field, value)
	if err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("store: %s where %s=%v: %w", tableName, field, value, ErrNotFound)
	}
	return tx.GetRef(tableName, ids[0])
}

// commit applies the transaction's pending writes to the committed state.
// The exclusive lock is already held.
//
// On durable stores the record-set is appended to the WAL before anything
// is installed in memory: if the append fails, the store is unchanged and
// the commit reports the failure. The append itself only reaches the OS;
// fsync is deferred to the group-commit batcher, which Update consults
// after releasing the lock.
func (tx *Tx) commit() error {
	if tx.done {
		return ErrTxDone
	}
	if tx.readonly {
		return nil
	}
	// A transaction that changed nothing must not advance commitSeq: the
	// WAL logs nothing for it, and replay requires the on-disk sequence
	// numbers to be contiguous.
	changed := false
	for name, o := range tx.pending {
		t := tx.s.tables[name]
		if len(o.writes) != 0 || len(o.deletes) != 0 || (t != nil && o.nextID > t.nextID) {
			changed = true
			break
		}
	}
	if !changed {
		return nil
	}
	if tx.s.wal != nil {
		payload, seq, err := tx.encodeWALPayload()
		if err != nil {
			return err
		}
		if seq != 0 {
			if err := tx.s.wal.append(seq, payload); err != nil {
				return err
			}
			tx.walSeq = seq
		}
	}
	// Apply deletions then writes, maintaining indexes.
	for name, o := range tx.pending {
		t := tx.s.tables[name]
		if t == nil {
			continue // table vanished? cannot happen: tables are never dropped mid-tx
		}
		for id := range o.deletes {
			if old, ok := t.rows[id]; ok {
				for _, ix := range t.indexes {
					ix.remove(old, id)
				}
				delete(t.rows, id)
				t.removeID(id)
			}
		}
		ids := make([]int64, 0, len(o.writes))
		for id := range o.writes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		// Two-phase index maintenance: clear every rewritten row's old
		// entries first, then insert the new ones. Interleaving the two
		// would reject transactions that swap a unique value between rows
		// — a shape checkUnique deliberately permits — on a transient
		// collision, and (on durable stores) AFTER the record was already
		// appended to the WAL.
		for _, id := range ids {
			if old, existed := t.rows[id]; existed {
				for _, ix := range t.indexes {
					ix.remove(old, id)
				}
			}
		}
		for _, id := range ids {
			rec := o.writes[id]
			_, existed := t.rows[id]
			for _, ix := range t.indexes {
				if err := ix.insert(rec, id); err != nil {
					// Checked at write time; hitting one here indicates a
					// bug. If the record was already appended to the WAL,
					// poison the log: the next commit would reuse this
					// seq and recovery would replay the half-applied
					// transaction in its place.
					err = fmt.Errorf("store: commit %s/%d: %w", name, id, err)
					if tx.walSeq != 0 {
						tx.s.wal.poison(err)
					}
					return err
				}
			}
			// Committed records are immutable: the map under t.rows[id] is
			// replaced wholesale, never written through, so references handed
			// out by GetRef/ScanRef stay valid snapshots.
			t.rows[id] = rec
			if !existed {
				t.insertID(id)
			}
		}
		if o.nextID > t.nextID {
			t.nextID = o.nextID
		}
	}
	tx.s.commitSeq++
	return nil
}

// encodeWALPayload serializes the transaction's pending overlay directly
// into the store's reusable scratch buffer (commits are serialized by the
// exclusive lock, and wal.append copies the bytes out synchronously, so
// single ownership holds). It returns seq 0 when the transaction touched
// nothing worth logging. The byte layout is walcodec.go's; equivalence
// with the struct-based encoder is pinned by TestWALEncoderEquivalence.
func (tx *Tx) encodeWALPayload() ([]byte, uint64, error) {
	s := tx.s
	seq := s.commitSeq + 1
	buf := s.walEncBuf[:0]
	buf = appendU64(buf, seq)
	countOff := len(buf)
	buf = appendU32(buf, 0) // table count, patched below
	nTables := uint32(0)

	names := make([]string, 0, len(tx.pending))
	for name := range tx.pending {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		o := tx.pending[name]
		t := s.tables[name]
		var nextID int64
		if t != nil && o.nextID > t.nextID {
			nextID = o.nextID
		}
		if nextID == 0 && len(o.writes) == 0 && len(o.deletes) == 0 {
			continue
		}
		nTables++
		buf = appendStr(buf, name)
		buf = appendI64(buf, nextID)

		buf = appendU32(buf, uint32(len(o.deletes)))
		if len(o.deletes) > 0 {
			dels := make([]int64, 0, len(o.deletes))
			for id := range o.deletes {
				dels = append(dels, id)
			}
			sort.Slice(dels, func(i, j int) bool { return dels[i] < dels[j] })
			for _, id := range dels {
				buf = appendI64(buf, id)
			}
		}

		buf = appendU32(buf, uint32(len(o.writes)))
		if len(o.writes) > 0 {
			ids := make([]int64, 0, len(o.writes))
			for id := range o.writes {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			keys := make([]string, 0, 16)
			for _, id := range ids {
				r := o.writes[id]
				buf = appendI64(buf, id)
				keys = keys[:0]
				for k := range r {
					if k == IDField {
						continue
					}
					keys = append(keys, k)
				}
				sort.Strings(keys)
				buf = appendU32(buf, uint32(len(keys)))
				var err error
				for _, k := range keys {
					if buf, err = appendValue(buf, k, r[k]); err != nil {
						return nil, 0, err
					}
				}
			}
		}
	}
	binaryPutU32(buf[countOff:], nTables)
	s.walEncBuf = buf // keep the grown capacity for the next commit
	if nTables == 0 {
		return nil, 0, nil
	}
	return buf, seq, nil
}
