package store

import (
	"fmt"
	"sort"
)

// Tx is a transaction over the store, pinned to the immutable version that
// was current when it began. Reads answer from that snapshot (merged with
// the transaction's own pending writes) without taking any lock, so even
// long paginated scans observe exactly one consistent state.
//
// Three flavors share this type:
//
//   - read-only (View / Begin(true)): lock-free for their whole life;
//   - exclusive (Update): hold the store's writer mutex from begin to
//     commit, serializing with other writers, so they cannot conflict;
//   - optimistic (Begin(false)): buffer writes lock-free and validate
//     first-committer-wins at Commit, which fails with ErrConflict when
//     another transaction got there first.
//
// Transactions are not safe for concurrent use by multiple goroutines.
type Tx struct {
	s         *Store
	ver       *version // pinned snapshot
	readonly  bool
	exclusive bool // Update-path: writer mutex held since begin
	done      bool

	// Pending per-table overlays, lazily allocated.
	pending map[string]*txTable

	// walSeq is the commit sequence this transaction appended to the WAL,
	// or 0 if nothing was logged. The commit path waits on it per the sync
	// policy after the writer mutex is released, so waiting never blocks
	// other commits.
	walSeq uint64
}

// txTable is the pending overlay for one table within a transaction.
type txTable struct {
	writes  map[int64]Record // id -> new record state (deep copies)
	deletes map[int64]bool   // id -> deleted in this tx
	nextID  int64            // provisional next id (0 = untouched)

	// ixw indexes the overlay itself: for every indexed field of the
	// pinned table, the sorted pending-write ids per index key. It is
	// maintained incrementally by Insert/Put/Delete so unique checks and
	// overlay-aware lookups are map probes instead of scans over every
	// pending write — the difference between linear and quadratic bulk
	// transactions.
	//
	// The maps materialize only once the overlay holds ixwBuildThreshold
	// writes: below that, scanning the handful of pending writes is
	// cheaper than maintaining maps, and single-record transactions (the
	// interactive registration path) pay nothing for the bulk machinery.
	// Invariant once non-nil: ixw holds exactly the keys of the records
	// currently in writes (deleted pending writes are unregistered); a
	// missing per-field map means no pending write carries that field.
	ixw map[string]map[indexKey][]int64
}

// ixwBuildThreshold is the overlay size at which the per-index key maps
// are built. Below it every overlay read scans the pending writes —
// bounded by the threshold, so still O(1) — and writes skip map
// maintenance entirely.
const ixwBuildThreshold = 16

// buildIxw materializes the overlay key maps from the current writes.
func (o *txTable) buildIxw(t *table) {
	o.ixw = make(map[string]map[indexKey][]int64, len(t.indexes))
	for id, rec := range o.writes {
		o.ixRegister(t, id, rec)
	}
}

// ixAdd registers a pending write's indexed keys in the overlay maps,
// building the maps when the overlay crosses the size threshold. Must be
// called after the write is installed in o.writes.
func (o *txTable) ixAdd(t *table, id int64, rec Record) {
	if o.ixw == nil {
		if len(o.writes) < ixwBuildThreshold || len(t.indexes) == 0 {
			return
		}
		o.buildIxw(t) // registers every current write, including this one
		return
	}
	o.ixRegister(t, id, rec)
}

// ixRegister adds one record's keys to already-materialized overlay maps.
// Serial ids make the per-key slices naturally append-ordered; out-of-order
// ids (rewrites of committed rows) fall back to a sorted insert.
func (o *txTable) ixRegister(t *table, id int64, rec Record) {
	for f := range t.indexes {
		v, ok := rec[f]
		if !ok {
			continue
		}
		key, ok := keyFor(v)
		if !ok {
			continue
		}
		m := o.ixw[f]
		if m == nil {
			m = make(map[indexKey][]int64)
			o.ixw[f] = m
		}
		m[key] = insertSorted(m[key], id)
	}
}

// ixRemove drops a pending write's indexed keys from the overlay maps,
// the inverse of ixRegister. A no-op below the build threshold.
func (o *txTable) ixRemove(t *table, id int64, rec Record) {
	if o.ixw == nil {
		return
	}
	for f := range t.indexes {
		m := o.ixw[f]
		if m == nil {
			continue
		}
		v, ok := rec[f]
		if !ok {
			continue
		}
		key, ok := keyFor(v)
		if !ok {
			continue
		}
		ids := removeSorted(m[key], id)
		if len(ids) == 0 {
			delete(m, key)
		} else {
			m[key] = ids
		}
	}
}

// pendingIDs returns the sorted pending-write ids whose indexed field
// carries the given key. Callers must ensure o.ixw is non-nil (the maps
// are materialized) and the field is indexed in the pinned table — the
// invariants ixRegister maintains.
func (o *txTable) pendingIDs(field string, key indexKey) []int64 {
	return o.ixw[field][key]
}

// checkUnique verifies that writing rec under id violates no unique index
// of table t, given the committed postings plus this overlay. With the
// overlay maps materialized both sides are O(1) probes: the overlay map
// holds at most the pending writers of the key, and a unique committed
// key holds at most one row. Below the build threshold the (small)
// pending set is scanned instead.
func (o *txTable) checkUnique(t *table, rec Record, id int64) error {
	if o.ixw == nil {
		for _, ix := range t.indexes {
			if err := ix.checkUnique(rec, id, o.writes, o.deletes); err != nil {
				return err
			}
		}
		return nil
	}
	for _, ix := range t.indexes {
		if !ix.unique {
			continue
		}
		v, ok := rec[ix.field]
		if !ok {
			continue
		}
		key, ok := keyFor(v)
		if !ok {
			continue
		}
		for _, holder := range o.pendingIDs(ix.field, key) {
			if holder != id {
				return fmt.Errorf("field %q value %v pending on row %d: %w", ix.field, v, holder, ErrUnique)
			}
		}
		for _, holder := range ix.postings(key) {
			if holder == id || o.deletes[holder] {
				continue
			}
			if _, rewritten := o.writes[holder]; rewritten {
				// The holder's current key lives in the overlay maps and
				// was probed above; its committed key no longer counts.
				continue
			}
			return fmt.Errorf("field %q value %v held by row %d: %w", ix.field, v, holder, ErrUnique)
		}
	}
	return nil
}

// Snapshot returns the commit sequence of the version this transaction is
// pinned to: the transaction observes every commit with a sequence at or
// below it and none above it.
func (tx *Tx) Snapshot() uint64 { return tx.ver.seq }

// TableSeq returns the commit sequence of the last commit at or below this
// transaction's snapshot that modified the named table, or 0 for an
// unknown table. Pending writes of this transaction are not reflected.
// A value derived from the table at sequence S needs no refresh inside
// this transaction while TableSeq(name) <= S.
func (tx *Tx) TableSeq(name string) uint64 {
	if t, ok := tx.ver.tables[name]; ok {
		return t.lastSeq
	}
	return 0
}

// Rollback discards the transaction. For read-only transactions it simply
// unpins the snapshot. It is idempotent, and safe to defer alongside an
// explicit Commit.
func (tx *Tx) Rollback() { tx.release() }

// release finishes the transaction, dropping the writer mutex if this is
// an exclusive (Update) transaction. It is idempotent.
func (tx *Tx) release() {
	if tx.done {
		return
	}
	tx.done = true
	if tx.exclusive {
		tx.s.writeMu.Unlock()
	}
}

// Commit atomically publishes the transaction's writes as a new store
// version. On read-only transactions it is a no-op. On optimistic (Begin)
// transactions it first validates first-committer-wins against the latest
// committed version and fails with ErrConflict if the transaction lost a
// race; on a durable store the commit is WAL-appended before it becomes
// visible and, under SyncAlways, Commit waits for the group fsync.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	if tx.readonly {
		tx.release()
		return nil
	}
	if tx.exclusive {
		// Update-path transactions already hold the writer mutex and are
		// committed by Update itself when fn returns nil; re-locking here
		// would self-deadlock.
		return fmt.Errorf("store: transactions started by Update are committed by Update itself")
	}
	s := tx.s
	if err := s.writeGate(); err != nil {
		tx.done = true
		return err
	}
	s.writeMu.Lock()
	if s.closed.Load() {
		s.writeMu.Unlock()
		tx.done = true
		return ErrClosed
	}
	err := tx.validate()
	if err == nil {
		err = tx.commitLocked()
	}
	s.writeMu.Unlock()
	tx.done = true
	if err != nil {
		return err
	}
	return s.afterCommit(tx)
}

// table resolves a table in the pinned snapshot.
func (tx *Tx) table(name string) (*table, error) {
	t, ok := tx.ver.tables[name]
	if !ok {
		return nil, fmt.Errorf("store: table %q: %w", name, ErrNoTable)
	}
	return t, nil
}

// Tables returns the sorted names of all tables in the transaction's
// pinned snapshot — not the live store head, which may have gained tables
// since the transaction began.
func (tx *Tx) Tables() []string {
	if tx.done {
		return nil
	}
	return tx.ver.tableNames()
}

func (tx *Tx) overlay(name string) *txTable {
	o, ok := tx.pending[name]
	if !ok {
		if tx.pending == nil {
			tx.pending = make(map[string]*txTable)
		}
		o = &txTable{writes: make(map[int64]Record), deletes: make(map[int64]bool)}
		tx.pending[name] = o
	}
	return o
}

func validateRecord(r Record) error {
	for k, v := range r {
		if k == IDField {
			continue
		}
		if !validValue(v) {
			return fmt.Errorf("store: field %q has %T: %w", k, v, ErrBadValue)
		}
	}
	return nil
}

// Insert adds a new record to the named table and returns its assigned ID.
// The input record is not modified.
func (tx *Tx) Insert(tableName string, r Record) (int64, error) {
	if tx.done {
		return 0, ErrTxDone
	}
	if tx.readonly {
		return 0, ErrReadOnly
	}
	t, err := tx.table(tableName)
	if err != nil {
		return 0, err
	}
	if err := validateRecord(r); err != nil {
		return 0, err
	}
	o := tx.overlay(tableName)
	if o.nextID == 0 {
		o.nextID = t.nextID
	}
	id := o.nextID
	o.nextID++
	rec := r.Clone()
	rec[IDField] = id
	// Check every unique index before registering anything, so a failed
	// Insert leaves no partial overlay state behind: the provisional id is
	// rolled back and no overlay-map entry was ever written.
	if err := o.checkUnique(t, rec, id); err != nil {
		o.nextID-- // roll back the provisional id
		return 0, err
	}
	o.writes[id] = rec
	delete(o.deletes, id)
	o.ixAdd(t, id, rec)
	return id, nil
}

// Put replaces the record with the given id. The record must exist.
func (tx *Tx) Put(tableName string, id int64, r Record) error {
	if tx.done {
		return ErrTxDone
	}
	if tx.readonly {
		return ErrReadOnly
	}
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	if err := validateRecord(r); err != nil {
		return err
	}
	if !tx.exists(t, tableName, id) {
		return fmt.Errorf("store: %s/%d: %w", tableName, id, ErrNotFound)
	}
	rec := r.Clone()
	rec[IDField] = id
	o := tx.overlay(tableName)
	if err := o.checkUnique(t, rec, id); err != nil {
		return err
	}
	if old, ok := o.writes[id]; ok {
		o.ixRemove(t, id, old)
	}
	o.writes[id] = rec
	delete(o.deletes, id)
	o.ixAdd(t, id, rec)
	return nil
}

// Delete removes the record with the given id. Deleting a missing record
// returns ErrNotFound.
func (tx *Tx) Delete(tableName string, id int64) error {
	if tx.done {
		return ErrTxDone
	}
	if tx.readonly {
		return ErrReadOnly
	}
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	if !tx.exists(t, tableName, id) {
		return fmt.Errorf("store: %s/%d: %w", tableName, id, ErrNotFound)
	}
	o := tx.overlay(tableName)
	if old, ok := o.writes[id]; ok {
		o.ixRemove(t, id, old)
		delete(o.writes, id)
	}
	o.deletes[id] = true
	return nil
}

func (tx *Tx) exists(t *table, tableName string, id int64) bool {
	if o, ok := tx.pending[tableName]; ok {
		if o.deletes[id] {
			return false
		}
		if _, ok := o.writes[id]; ok {
			return true
		}
	}
	return t.get(id) != nil
}

// Get returns a copy of the record with the given id, observing the
// transaction's own pending writes. The copy is the caller's to mutate.
func (tx *Tx) Get(tableName string, id int64) (Record, error) {
	r, err := tx.GetRef(tableName, id)
	if err != nil {
		return nil, err
	}
	return r.Clone(), nil
}

// GetRef returns the record with the given id without copying it, observing
// the transaction's own pending writes.
//
// Aliasing contract: the returned record (including its slice values) is
// shared with the store and MUST NOT be mutated. Committed records are
// immutable — writes replace whole record maps in a fresh store version —
// so the reference stays a valid, consistent snapshot even after the
// transaction ends. Callers that need to modify the record must use Get
// (or Clone the reference).
func (tx *Tx) GetRef(tableName string, id int64) (Record, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	t, err := tx.table(tableName)
	if err != nil {
		return nil, err
	}
	if o, ok := tx.pending[tableName]; ok {
		if o.deletes[id] {
			return nil, fmt.Errorf("store: %s/%d: %w", tableName, id, ErrNotFound)
		}
		if r, ok := o.writes[id]; ok {
			return r, nil
		}
	}
	r := t.get(id)
	if r == nil {
		return nil, fmt.Errorf("store: %s/%d: %w", tableName, id, ErrNotFound)
	}
	return r, nil
}

// Exists reports whether the record exists.
func (tx *Tx) Exists(tableName string, id int64) bool {
	if tx.done {
		return false
	}
	t, err := tx.table(tableName)
	if err != nil {
		return false
	}
	return tx.exists(t, tableName, id)
}

// Count returns the number of live records in the table as seen by the
// transaction: the version's incrementally maintained live count (every
// commit publishes it alongside the chunks — see applyOverlay) adjusted
// for the transaction's own inserts and deletes. O(1) plus the overlay
// size; this is the "count(maintained)" strategy of aggregate plans.
func (tx *Tx) Count(tableName string) int {
	if tx.done {
		return 0
	}
	t, err := tx.table(tableName)
	if err != nil {
		return 0
	}
	return tx.liveCount(tableName, t)
}

// liveCount is Count against an already-resolved table.
func (tx *Tx) liveCount(tableName string, t *table) int {
	n := t.count
	if o, ok := tx.pending[tableName]; ok {
		for id := range o.writes {
			if t.get(id) == nil {
				n++
			}
		}
		for id := range o.deletes {
			if t.get(id) != nil {
				n--
			}
		}
	}
	return n
}

// Scan visits every live record of the table in ascending ID order. The
// callback receives a copy of each record and returns false to stop early.
func (tx *Tx) Scan(tableName string, fn func(r Record) bool) error {
	return tx.scanRange(tableName, 0, 0, true, fn)
}

// ScanRef is Scan without the per-record copy: the callback receives shared
// references to live records, in ascending ID order. The GetRef aliasing
// contract applies — records must not be mutated.
func (tx *Tx) ScanRef(tableName string, fn func(r Record) bool) error {
	return tx.scanRange(tableName, 0, 0, false, fn)
}

// ScanRange visits the live records with fromID <= id <= toID in ascending
// ID order, receiving copies. A fromID of 0 means "from the first record"; a
// toID of 0 means "to the last". This is the primitive behind paginated
// browsing: pass the last seen id + 1 as fromID to resume a scan. Within
// one transaction, every page reads the same pinned version, so paginated
// results are mutually consistent even under concurrent write load.
func (tx *Tx) ScanRange(tableName string, fromID, toID int64, fn func(r Record) bool) error {
	return tx.scanRange(tableName, fromID, toID, true, fn)
}

// ScanRangeRef is ScanRange without the per-record copy. The GetRef aliasing
// contract applies.
func (tx *Tx) ScanRangeRef(tableName string, fromID, toID int64, fn func(r Record) bool) error {
	return tx.scanRange(tableName, fromID, toID, false, fn)
}

// scanRange is the shared ordered-scan core. The pinned version's chunk
// layout yields ascending id order structurally — no per-call rebuild or
// sort — and the transaction's pending overlay, when one exists, is
// merge-walked in.
func (tx *Tx) scanRange(tableName string, fromID, toID int64, clone bool, fn func(r Record) bool) error {
	if tx.done {
		return ErrTxDone
	}
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	emit := func(r Record) bool {
		if clone {
			r = r.Clone()
		}
		return fn(r)
	}

	it := t.iter(fromID, toID)
	o := tx.pending[tableName]
	if o == nil || (len(o.writes) == 0 && len(o.deletes) == 0) {
		// Fast path: no overlay, walk the committed chunks directly.
		for id, r := it.next(); id != 0; id, r = it.next() {
			if !emit(r) {
				return nil
			}
		}
		return nil
	}

	// Overlay ids (new inserts and rewrites) in range, sorted.
	oids := make([]int64, 0, len(o.writes))
	for id := range o.writes {
		if !o.deletes[id] && id >= fromID && (toID == 0 || id <= toID) {
			oids = append(oids, id)
		}
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })

	// Merge-walk committed and overlay records. Rewritten committed ids
	// are emitted from the overlay side; deleted ids are skipped.
	j := 0
	id, r := it.next()
	for id != 0 || j < len(oids) {
		switch {
		case j >= len(oids) || (id != 0 && id < oids[j]):
			if !o.deletes[id] {
				if _, rewritten := o.writes[id]; !rewritten {
					if !emit(r) {
						return nil
					}
				}
			}
			id, r = it.next()
		case id == 0 || oids[j] < id:
			if !emit(o.writes[oids[j]]) {
				return nil
			}
			j++
		default: // equal: rewritten committed row
			if !emit(o.writes[oids[j]]) {
				return nil
			}
			j++
			id, r = it.next()
		}
	}
	return nil
}

// Lookup returns the sorted IDs of records whose field equals value, using
// the field's index if one exists and falling back to a full scan otherwise.
// The result observes the transaction's pending writes.
func (tx *Tx) Lookup(tableName, field string, value any) ([]int64, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	t, err := tx.table(tableName)
	if err != nil {
		return nil, err
	}
	want, ok := keyFor(value)
	if !ok {
		return nil, fmt.Errorf("store: lookup value %T: %w", value, ErrBadValue)
	}
	o := tx.pending[tableName]
	var ids []int64
	if ix, haveIx := t.indexes[field]; haveIx {
		committed := ix.lookup(value)
		if o == nil || (len(o.writes) == 0 && len(o.deletes) == 0) {
			// Fast path: the index result is already sorted and final.
			return committed, nil
		}
		// Committed holders minus this transaction's deletes and rewrites,
		// merged with the overlay's own sorted holders of the key — a map
		// probe once the overlay maps are materialized, a scan of the
		// (below-threshold, so small) pending set otherwise.
		for _, id := range committed {
			if o.deletes[id] {
				continue
			}
			if _, rewritten := o.writes[id]; rewritten {
				continue // represented on the overlay side, if it still matches
			}
			ids = append(ids, id)
		}
		if o.ixw != nil {
			return mergeSortedIDs(ids, o.pendingIDs(field, want)), nil
		}
		for id, pr := range o.writes {
			if o.deletes[id] {
				continue
			}
			if k, ok2 := keyFor(pr[field]); ok2 && k == want {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids, nil
	}
	it := t.iter(0, 0)
	for id, r := it.next(); id != 0; id, r = it.next() {
		if o != nil {
			if o.deletes[id] {
				continue
			}
			if _, rewritten := o.writes[id]; rewritten {
				continue
			}
		}
		if k, ok2 := keyFor(r[field]); ok2 && k == want {
			ids = append(ids, id)
		}
	}
	if o != nil {
		// Unindexed field: the overlay has no key maps for it, so the
		// pending writes themselves are scanned. Rewritten and inserted
		// rows were excluded above, so appending every matching pending
		// write cannot produce duplicates.
		for id, pr := range o.writes {
			if o.deletes[id] {
				continue
			}
			if k, ok2 := keyFor(pr[field]); ok2 && k == want {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	return ids, nil
}

// mergeSortedIDs merges two ascending id slices into a fresh ascending
// slice. The inputs are disjoint by construction (committed survivors vs
// overlay writes), so no dedup pass is needed.
func mergeSortedIDs(a, b []int64) []int64 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]int64(nil), b...)
	}
	out := make([]int64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Find returns copies of all records whose field equals value, in ID order.
func (tx *Tx) Find(tableName, field string, value any) ([]Record, error) {
	out, err := tx.FindRef(tableName, field, value)
	if err != nil {
		return nil, err
	}
	for i, r := range out {
		out[i] = r.Clone()
	}
	return out, nil
}

// FindRef returns shared references to all records whose field equals value,
// in ID order. The GetRef aliasing contract applies: the records must not be
// mutated.
func (tx *Tx) FindRef(tableName, field string, value any) ([]Record, error) {
	ids, err := tx.Lookup(tableName, field, value)
	if err != nil {
		return nil, err
	}
	out := make([]Record, 0, len(ids))
	for _, id := range ids {
		r, err := tx.GetRef(tableName, id)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// First returns a copy of the first record whose field equals value, or
// ErrNotFound.
func (tx *Tx) First(tableName, field string, value any) (Record, error) {
	r, err := tx.FirstRef(tableName, field, value)
	if err != nil {
		return nil, err
	}
	return r.Clone(), nil
}

// FirstRef returns a shared reference to the first record whose field equals
// value, or ErrNotFound. The GetRef aliasing contract applies.
func (tx *Tx) FirstRef(tableName, field string, value any) (Record, error) {
	ids, err := tx.Lookup(tableName, field, value)
	if err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("store: %s where %s=%v: %w", tableName, field, value, ErrNotFound)
	}
	return tx.GetRef(tableName, ids[0])
}

// validate implements first-committer-wins conflict detection for
// optimistic transactions, called with the writer mutex held. Exclusive
// (Update) transactions pin the head version while already holding the
// mutex, so nothing can have moved and validation short-circuits.
//
// The rules, checked against the latest committed version:
//
//   - a record this transaction put or deleted must not carry a commit
//     stamp newer than the transaction's snapshot (another transaction
//     rewrote or deleted it first);
//   - a serial id this transaction claimed for an insert must still be
//     unclaimed (another transaction allocated the same id first);
//   - unique constraints are re-checked against the latest indexes, since
//     the write-time check only saw the snapshot.
func (tx *Tx) validate() error {
	base := tx.s.current.Load()
	if base == tx.ver {
		return nil
	}
	snap := tx.ver.seq
	conflict := func(name string, id int64) error {
		return fmt.Errorf("store: %s/%d changed since snapshot %d: %w", name, id, snap, ErrConflict)
	}
	for name, o := range tx.pending {
		bt := base.tables[name]
		if bt == nil {
			return fmt.Errorf("store: table %q: %w", name, ErrNoTable)
		}
		pt := tx.ver.tables[name] // non-nil: the overlay proves it existed at pin
		for id := range o.writes {
			if id >= pt.nextID {
				// Insert: the claimed id must still be free in the head.
				if id < bt.nextID {
					return conflict(name, id)
				}
			} else if bt.seqOf(id) > snap {
				return conflict(name, id)
			}
		}
		for id := range o.deletes {
			if id >= pt.nextID {
				// Insert-then-delete: the id was still claimed from the
				// serial space and must not have been taken meanwhile.
				if id < bt.nextID {
					return conflict(name, id)
				}
			} else if bt.seqOf(id) > snap {
				return conflict(name, id)
			}
		}
		for _, ix := range bt.indexes {
			if !ix.unique {
				continue
			}
			if _, pinned := pt.indexes[ix.field]; !pinned || o.ixw == nil {
				// Either the index appeared after this transaction pinned
				// its snapshot (so the overlay maps never tracked the
				// field), or the overlay stayed below the map-build
				// threshold; fall back to the per-row reference check over
				// the (small) pending set.
				for id, r := range o.writes {
					if err := ix.checkUnique(r, id, o.writes, o.deletes); err != nil {
						return err
					}
				}
				continue
			}
			// One probe per distinct pending key against the latest
			// committed postings — O(distinct keys), not O(writes²). The
			// write-time check already guarantees overlay-internal
			// uniqueness; only new committed holders can conflict here.
			for key := range o.ixw[ix.field] {
				for _, holder := range ix.postings(key) {
					if o.deletes[holder] {
						continue
					}
					if _, rewritten := o.writes[holder]; rewritten {
						continue
					}
					return fmt.Errorf("field %q key %s held by row %d: %w", ix.field, key, holder, ErrUnique)
				}
			}
		}
	}
	return nil
}

// commitLocked publishes the transaction's pending writes as a new store
// version. The writer mutex is already held (and, for optimistic
// transactions, validate has passed), so the head cannot move underneath.
//
// On durable stores the record-set is appended to the WAL before the new
// version is published: if the append fails, the store is unchanged and
// the commit reports the failure. The append itself only reaches the OS;
// fsync is deferred to the group-commit batcher, which the caller
// consults after releasing the writer mutex.
func (tx *Tx) commitLocked() error {
	if tx.done {
		return ErrTxDone
	}
	if tx.readonly {
		return nil
	}
	s := tx.s
	base := s.current.Load()
	// A transaction that changed nothing must not advance the commit seq:
	// the WAL logs nothing for it, and replay requires the on-disk
	// sequence numbers to be contiguous.
	changed := false
	for name, o := range tx.pending {
		t := base.tables[name]
		if len(o.writes) != 0 || len(o.deletes) != 0 || (t != nil && o.nextID > t.nextID) {
			changed = true
			break
		}
	}
	if !changed {
		return nil
	}
	// The WAL payload doubles as the replication frame: encode it when
	// either consumer exists (an in-memory primary can still ship frames
	// to subscribed followers).
	var payload []byte
	var seq uint64
	if s.wal != nil || len(s.replSubs) > 0 {
		var err error
		payload, seq, err = tx.encodeWALPayload(base)
		if err != nil {
			return err
		}
	}
	if s.wal != nil && seq != 0 {
		if err := s.wal.append(seq, payload); err != nil {
			// The log is poisoned (sticky): no future commit can be
			// made durable, so the store degrades to read-only now.
			// The failing commit itself reports the root cause.
			s.degrade(err)
			return err
		}
		tx.walSeq = seq
	}
	nv, err := applyOverlay(base, tx.pending)
	if err != nil {
		// Unique violations are checked at write or validate time; hitting
		// one during the copy-on-write install indicates a bug. If the
		// record was already appended to the WAL, poison the log: the next
		// commit would reuse this seq and recovery would replay the
		// never-published transaction in its place.
		err = fmt.Errorf("store: commit: %w", err)
		if tx.walSeq != 0 {
			s.wal.poison(err)
		}
		return err
	}
	s.current.Store(nv)
	if seq != 0 {
		s.publishCommit(seq, payload)
	}
	return nil
}

// encodeWALPayload serializes the transaction's pending overlay directly
// into the store's reusable scratch buffer (commits are serialized by the
// writer mutex, and wal.append copies the bytes out synchronously, so
// single ownership holds). The base version supplies the commit sequence
// and the per-table serial high-water marks. It returns seq 0 when the
// transaction touched nothing worth logging. The byte layout is
// walcodec.go's; equivalence with the struct-based encoder is pinned by
// TestWALEncoderEquivalence.
func (tx *Tx) encodeWALPayload(base *version) ([]byte, uint64, error) {
	s := tx.s
	seq := base.seq + 1
	buf := s.walEncBuf[:0]
	buf = appendU64(buf, seq)
	countOff := len(buf)
	buf = appendU32(buf, 0) // table count, patched below
	nTables := uint32(0)

	names := make([]string, 0, len(tx.pending))
	for name := range tx.pending {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		o := tx.pending[name]
		t := base.tables[name]
		var nextID int64
		if t != nil && o.nextID > t.nextID {
			nextID = o.nextID
		}
		if nextID == 0 && len(o.writes) == 0 && len(o.deletes) == 0 {
			continue
		}
		nTables++
		buf = appendStr(buf, name)
		buf = appendI64(buf, nextID)

		buf = appendU32(buf, uint32(len(o.deletes)))
		if len(o.deletes) > 0 {
			dels := make([]int64, 0, len(o.deletes))
			for id := range o.deletes {
				dels = append(dels, id)
			}
			sort.Slice(dels, func(i, j int) bool { return dels[i] < dels[j] })
			for _, id := range dels {
				buf = appendI64(buf, id)
			}
		}

		buf = appendU32(buf, uint32(len(o.writes)))
		if len(o.writes) > 0 {
			ids := make([]int64, 0, len(o.writes))
			for id := range o.writes {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			keys := make([]string, 0, 16)
			for _, id := range ids {
				r := o.writes[id]
				buf = appendI64(buf, id)
				keys = keys[:0]
				for k := range r {
					if k == IDField {
						continue
					}
					keys = append(keys, k)
				}
				sort.Strings(keys)
				buf = appendU32(buf, uint32(len(keys)))
				var err error
				for _, k := range keys {
					if buf, err = appendValue(buf, k, r[k]); err != nil {
						return nil, 0, err
					}
				}
			}
		}
	}
	binaryPutU32(buf[countOff:], nTables)
	s.walEncBuf = buf // keep the grown capacity for the next commit
	if nTables == 0 {
		return nil, 0, nil
	}
	return buf, seq, nil
}
