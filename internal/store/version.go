package store

import "sort"

// This file implements the multi-version core of the store: immutable
// store versions, the chunked copy-on-write table representation, and the
// commit-time builders that derive version N+1 from version N while
// sharing every untouched structure.
//
// A version is never mutated once it has been published through
// Store.current — with two deliberate exceptions, recovery and Load, which
// build a version that is not yet shared with any reader. Everything a
// reader can reach from a pinned version (tables, chunks, index postings,
// record maps) is therefore a stable snapshot for as long as the reader
// holds the pointer; abandoned versions are reclaimed by the garbage
// collector once the last reader drops them.

const (
	// chunkBits sizes the per-table record chunks: 1<<chunkBits records
	// per chunk. Chunks are the copy-on-write granule — a commit deep-
	// copies only the chunks it touches (a few KiB each) and shares the
	// rest with the previous version — so the value trades write
	// amplification (larger chunks copy more) against pointer overhead
	// and chunk-slice length (smaller chunks mean more of them).
	chunkBits = 7
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
)

// chunk holds one fixed-size run of a table's id space: slot i of the
// chunk covering ids (base, base+chunkSize] carries the record with
// id base+i+1, or nil if that id is free or deleted. seqs carries, per
// slot, the commit sequence that last wrote it — including deletions,
// where the slot keeps the deleting commit's seq as a tombstone stamp.
// Those stamps are what first-committer-wins conflict detection compares
// against a transaction's snapshot sequence.
type chunk struct {
	recs [chunkSize]Record
	seqs [chunkSize]uint64
}

// version is one immutable, atomically-published state of the store:
// the commit sequence it corresponds to plus every table at that point.
type version struct {
	seq    uint64
	tables map[string]*table
}

// withTables returns a copy of the version with a private tables map
// (table pointers still shared), for schema changes and commits that
// replace table entries.
func (v *version) withTables() *version {
	nv := &version{seq: v.seq, tables: make(map[string]*table, len(v.tables))}
	for n, t := range v.tables {
		nv.tables[n] = t
	}
	return nv
}

// table is the state of one record kind within a version. Records live in
// chunks indexed directly by id — ids are serial, so chunk lookup is two
// shifts, no map — and iteration in chunk order IS ascending id order.
// A nil entry in chunks means every id in that run is free.
type table struct {
	name    string
	nextID  int64
	count   int // live records
	chunks  []*chunk
	indexes map[string]*index
}

func newTable(name string) *table {
	return &table{name: name, nextID: 1, indexes: make(map[string]*index)}
}

// chunkPos maps a record id to its chunk index and slot.
func chunkPos(id int64) (int, int) {
	return int((id - 1) >> chunkBits), int((id - 1) & chunkMask)
}

// get returns the live record with the given id, or nil.
func (t *table) get(id int64) Record {
	if id < 1 {
		return nil
	}
	ci, si := chunkPos(id)
	if ci >= len(t.chunks) {
		return nil
	}
	c := t.chunks[ci]
	if c == nil {
		return nil
	}
	return c.recs[si]
}

// seqOf returns the commit sequence that last wrote the id's slot —
// whether that write installed a record or deleted one — or 0 if the slot
// was never written in this version's history.
func (t *table) seqOf(id int64) uint64 {
	if id < 1 {
		return 0
	}
	ci, si := chunkPos(id)
	if ci >= len(t.chunks) {
		return 0
	}
	c := t.chunks[ci]
	if c == nil {
		return 0
	}
	return c.seqs[si]
}

// put installs a record IN PLACE, growing the chunk slice as needed.
// Only legal on tables not yet reachable by readers (recovery, Load).
func (t *table) put(id int64, rec Record, seq uint64) {
	ci, si := chunkPos(id)
	for ci >= len(t.chunks) {
		t.chunks = append(t.chunks, nil)
	}
	c := t.chunks[ci]
	if c == nil {
		c = new(chunk)
		t.chunks[ci] = c
	}
	if c.recs[si] == nil {
		t.count++
	}
	c.recs[si] = rec
	c.seqs[si] = seq
}

// del removes a record IN PLACE, leaving a tombstone seq stamp. Only
// legal on tables not yet reachable by readers (recovery, Load).
func (t *table) del(id int64, seq uint64) {
	ci, si := chunkPos(id)
	if ci >= len(t.chunks) || t.chunks[ci] == nil {
		return
	}
	c := t.chunks[ci]
	if c.recs[si] != nil {
		c.recs[si] = nil
		t.count--
	}
	c.seqs[si] = seq
}

// clone returns a shallow copy of the table for copy-on-write mutation:
// the chunk slice and index map are private, but the chunk and index
// structures themselves stay shared with the original until a cowTable /
// cowIndex detaches the ones a commit touches.
func (t *table) clone() *table {
	nt := &table{name: t.name, nextID: t.nextID, count: t.count}
	nt.chunks = append([]*chunk(nil), t.chunks...)
	nt.indexes = make(map[string]*index, len(t.indexes))
	for f, ix := range t.indexes {
		nt.indexes[f] = ix
	}
	return nt
}

// tableIter walks a table's live records in ascending id order by walking
// the chunk slice; nil chunks are skipped wholesale.
type tableIter struct {
	t    *table
	id   int64 // next candidate id
	toID int64 // inclusive upper bound
}

// iter returns an iterator over live ids in [fromID, toID]; a bound of 0
// means unbounded on that side.
func (t *table) iter(fromID, toID int64) tableIter {
	if fromID < 1 {
		fromID = 1
	}
	max := t.nextID - 1
	if toID == 0 || toID > max {
		toID = max
	}
	return tableIter{t: t, id: fromID, toID: toID}
}

// next returns the next live (id, record), or (0, nil) when exhausted.
func (it *tableIter) next() (int64, Record) {
	for it.id > 0 && it.id <= it.toID {
		ci, si := chunkPos(it.id)
		if ci >= len(it.t.chunks) {
			return 0, nil
		}
		c := it.t.chunks[ci]
		if c == nil {
			it.id = (int64(ci)+1)*chunkSize + 1
			continue
		}
		for si < chunkSize && it.id <= it.toID {
			r := c.recs[si]
			id := it.id
			si++
			it.id++
			if r != nil {
				return id, r
			}
		}
	}
	return 0, nil
}

// cowTable wraps a freshly cloned table during one commit, tracking which
// chunks and indexes have already been detached from the base version so
// each is copied at most once per commit.
type cowTable struct {
	t       *table
	private map[int]bool // chunk indices deep-copied for this commit
	ixes    map[string]*cowIndex
}

func newCowTable(base *table) *cowTable {
	return &cowTable{t: base.clone(), private: make(map[int]bool), ixes: make(map[string]*cowIndex)}
}

// chunkFor returns a chunk private to this commit covering id, copying or
// allocating it on first touch.
func (ct *cowTable) chunkFor(id int64) (*chunk, int) {
	ci, si := chunkPos(id)
	for ci >= len(ct.t.chunks) {
		ct.t.chunks = append(ct.t.chunks, nil)
	}
	if !ct.private[ci] {
		if old := ct.t.chunks[ci]; old != nil {
			cp := *old
			ct.t.chunks[ci] = &cp
		} else {
			ct.t.chunks[ci] = new(chunk)
		}
		ct.private[ci] = true
	}
	return ct.t.chunks[ci], si
}

func (ct *cowTable) put(id int64, rec Record, seq uint64) {
	c, si := ct.chunkFor(id)
	if c.recs[si] == nil {
		ct.t.count++
	}
	c.recs[si] = rec
	c.seqs[si] = seq
}

func (ct *cowTable) del(id int64, seq uint64) {
	c, si := ct.chunkFor(id)
	if c.recs[si] != nil {
		c.recs[si] = nil
		ct.t.count--
	}
	c.seqs[si] = seq
}

// index returns the commit-private copy-on-write wrapper for the named
// index, cloning the index head on first touch.
func (ct *cowTable) index(field string) *cowIndex {
	ci, ok := ct.ixes[field]
	if !ok {
		ix := ct.t.indexes[field].clone()
		ct.t.indexes[field] = ix
		ci = &cowIndex{ix: ix, privGroup: make(map[int]bool), privShard: make(map[int]bool), copied: make(map[indexKey]bool)}
		ct.ixes[field] = ci
	}
	return ci
}

// cowIndex mutates a cloned index during one commit, privatizing each
// shard group and shard map on first touch and each postings slice before
// its first non-append mutation. Shard privatization is what keeps commit
// cost proportional to the keys touched rather than the keys that exist.
type cowIndex struct {
	ix        *index
	privGroup map[int]bool      // group indices privatized this commit
	privShard map[int]bool      // shard indices privatized this commit
	copied    map[indexKey]bool // postings slices privatized this commit
}

// shardFor returns a shard map private to this commit covering key,
// copying the group head and the shard map on first touch.
func (ci *cowIndex) shardFor(key indexKey) map[indexKey][]int64 {
	s := shardOf(key)
	gi, si := s>>ixShardBits, s&(ixGroupSize-1)
	if !ci.privGroup[gi] {
		g := new(ixGroup)
		if old := ci.ix.groups[gi]; old != nil {
			*g = *old
		}
		ci.ix.groups[gi] = g
		ci.privGroup[gi] = true
	}
	g := ci.ix.groups[gi]
	if !ci.privShard[s] {
		old := g[si]
		m := make(map[indexKey][]int64, len(old)+1)
		for k, v := range old {
			m[k] = v
		}
		g[si] = m
		ci.privShard[s] = true
	}
	return g[si]
}

func (ci *cowIndex) insert(r Record, id int64) error {
	v, ok := r[ci.ix.field]
	if !ok {
		return nil
	}
	key, ok := keyFor(v)
	if !ok {
		return nil
	}
	m := ci.shardFor(key)
	ids := m[key]
	if err := ci.ix.checkUniqueKey(ids, v, id); err != nil {
		return err
	}
	if n := len(ids); n == 0 || id > ids[n-1] {
		// Pure append — the overwhelmingly common case with serial ids —
		// needs no private copy: appending either reallocates or writes
		// one slot past every published slice's length, which no reader
		// of an earlier version can observe, and commits extend a given
		// backing array strictly sequentially under the writer mutex.
		m[key] = append(ids, id)
		return nil
	}
	if !ci.copied[key] {
		ids = append(make([]int64, 0, len(ids)+1), ids...)
		ci.copied[key] = true
	}
	m[key] = insertSorted(ids, id)
	return nil
}

func (ci *cowIndex) remove(r Record, id int64) {
	v, ok := r[ci.ix.field]
	if !ok {
		return
	}
	key, ok := keyFor(v)
	if !ok {
		return
	}
	m := ci.shardFor(key)
	ids := m[key]
	n := len(ids)
	i := sort.Search(n, func(k int) bool { return ids[k] >= id })
	if i == n || ids[i] != id {
		return
	}
	if n == 1 {
		delete(m, key)
		return
	}
	if !ci.copied[key] {
		// Removal shifts elements within the published length, so it must
		// never run on a slice shared with earlier versions.
		ids = append(make([]int64, 0, n), ids...)
		ci.copied[key] = true
	}
	m[key] = removeSorted(ids, id)
}

// sameIndexedKey reports whether records a and b index identically under
// the given field: both unindexable (absent or non-indexable value) or
// both mapping to the same key.
func sameIndexedKey(a, b Record, field string) bool {
	ka, oka := keyFor(a[field])
	kb, okb := keyFor(b[field])
	return oka == okb && ka == kb
}

// applyOverlay derives the successor of base by applying a transaction's
// pending overlay copy-on-write: untouched tables, chunks and index
// postings are shared with base; touched ones are copied once. Mirrors
// the WAL record's apply order (tables in sorted name order; per table
// deletions first, then writes in id order) so that replay reconstructs
// the exact same state.
func applyOverlay(base *version, pending map[string]*txTable) (*version, error) {
	nv := base.withTables()
	nv.seq = base.seq + 1
	names := make([]string, 0, len(pending))
	for name := range pending {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		o := pending[name]
		bt := base.tables[name]
		if bt == nil {
			continue // tables are never dropped mid-tx; cannot happen
		}
		if len(o.writes) == 0 && len(o.deletes) == 0 {
			if o.nextID > bt.nextID {
				// Inserts that were all deleted again in the same tx:
				// only the serial high-water mark moves.
				nt := bt.clone()
				nt.nextID = o.nextID
				nv.tables[name] = nt
			}
			continue
		}
		ct := newCowTable(bt)
		ids := make([]int64, 0, len(o.deletes))
		for id := range o.deletes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if old := ct.t.get(id); old != nil {
				for f := range ct.t.indexes {
					ct.index(f).remove(old, id)
				}
				ct.del(id, nv.seq)
			}
		}
		ids = ids[:0]
		for id := range o.writes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		olds := make([]Record, len(ids))
		for i, id := range ids {
			olds[i] = ct.t.get(id)
		}
		// Two-phase index maintenance: clear every rewritten row's old
		// entries first, then insert the new ones, so a unique-value swap
		// between rows inside one transaction never trips a transient
		// collision. Rows whose indexed key is unchanged are skipped on
		// both sides: the (row, key) pair stays put, so no swap can
		// involve it — and skipping avoids detaching (copying) the key's
		// postings for a rewrite that does not move the row.
		for i, id := range ids {
			if old := olds[i]; old != nil {
				for f := range ct.t.indexes {
					if sameIndexedKey(old, o.writes[id], f) {
						continue
					}
					ct.index(f).remove(old, id)
				}
			}
		}
		for i, id := range ids {
			rec := o.writes[id]
			for f := range ct.t.indexes {
				if olds[i] != nil && sameIndexedKey(olds[i], rec, f) {
					continue
				}
				if err := ct.index(f).insert(rec, id); err != nil {
					return nil, err
				}
			}
			ct.put(id, rec, nv.seq)
		}
		if o.nextID > ct.t.nextID {
			ct.t.nextID = o.nextID
		}
		nv.tables[name] = ct.t
	}
	return nv, nil
}
