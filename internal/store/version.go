package store

import (
	"fmt"
	"slices"
	"sort"
)

// This file implements the multi-version core of the store: immutable
// store versions, the chunked copy-on-write table representation, and the
// commit-time builders that derive version N+1 from version N while
// sharing every untouched structure.
//
// A version is never mutated once it has been published through
// Store.current — with two deliberate exceptions, recovery and Load, which
// build a version that is not yet shared with any reader. Everything a
// reader can reach from a pinned version (tables, chunks, index postings,
// record maps) is therefore a stable snapshot for as long as the reader
// holds the pointer; abandoned versions are reclaimed by the garbage
// collector once the last reader drops them.

const (
	// chunkBits sizes the per-table record chunks: 1<<chunkBits records
	// per chunk. Chunks are the copy-on-write granule — a commit deep-
	// copies only the chunks it touches (a few KiB each) and shares the
	// rest with the previous version — so the value trades write
	// amplification (larger chunks copy more) against pointer overhead
	// and chunk-slice length (smaller chunks mean more of them).
	chunkBits = 7
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
)

// chunk holds one fixed-size run of a table's id space: slot i of the
// chunk covering ids (base, base+chunkSize] carries the record with
// id base+i+1, or nil if that id is free or deleted. seqs carries, per
// slot, the commit sequence that last wrote it — including deletions,
// where the slot keeps the deleting commit's seq as a tombstone stamp.
// Those stamps are what first-committer-wins conflict detection compares
// against a transaction's snapshot sequence.
type chunk struct {
	recs [chunkSize]Record
	seqs [chunkSize]uint64
}

// version is one immutable, atomically-published state of the store:
// the commit sequence it corresponds to plus every table at that point.
type version struct {
	seq    uint64
	tables map[string]*table
}

// withTables returns a copy of the version with a private tables map
// (table pointers still shared), for schema changes and commits that
// replace table entries.
func (v *version) withTables() *version {
	nv := &version{seq: v.seq, tables: make(map[string]*table, len(v.tables))}
	for n, t := range v.tables {
		nv.tables[n] = t
	}
	return nv
}

// table is the state of one record kind within a version. Records live in
// chunks indexed directly by id — ids are serial, so chunk lookup is two
// shifts, no map — and iteration in chunk order IS ascending id order.
// A nil entry in chunks means every id in that run is free.
type table struct {
	name    string
	nextID  int64
	count   int // live records
	chunks  []*chunk
	indexes map[string]*index
	// lastSeq is the commit sequence of the last commit that modified this
	// table (records or serial high-water mark). Untouched tables carry
	// their stamp forward unchanged across commits, so a reader pinned to
	// version V knows "nothing in table T changed since seq S" from one
	// field read — the validity check behind the portal's session-user
	// cache and conditional (ETag) responses. After recovery or snapshot
	// load the stamp is conservatively the restored sequence.
	lastSeq uint64
}

func newTable(name string) *table {
	return &table{name: name, nextID: 1, indexes: make(map[string]*index)}
}

// chunkPos maps a record id to its chunk index and slot.
func chunkPos(id int64) (int, int) {
	return int((id - 1) >> chunkBits), int((id - 1) & chunkMask)
}

// get returns the live record with the given id, or nil.
func (t *table) get(id int64) Record {
	if id < 1 {
		return nil
	}
	ci, si := chunkPos(id)
	if ci >= len(t.chunks) {
		return nil
	}
	c := t.chunks[ci]
	if c == nil {
		return nil
	}
	return c.recs[si]
}

// seqOf returns the commit sequence that last wrote the id's slot —
// whether that write installed a record or deleted one — or 0 if the slot
// was never written in this version's history.
func (t *table) seqOf(id int64) uint64 {
	if id < 1 {
		return 0
	}
	ci, si := chunkPos(id)
	if ci >= len(t.chunks) {
		return 0
	}
	c := t.chunks[ci]
	if c == nil {
		return 0
	}
	return c.seqs[si]
}

// put installs a record IN PLACE, growing the chunk slice as needed.
// Only legal on tables not yet reachable by readers (recovery, Load).
func (t *table) put(id int64, rec Record, seq uint64) {
	ci, si := chunkPos(id)
	for ci >= len(t.chunks) {
		t.chunks = append(t.chunks, nil)
	}
	c := t.chunks[ci]
	if c == nil {
		c = new(chunk)
		t.chunks[ci] = c
	}
	if c.recs[si] == nil {
		t.count++
	}
	c.recs[si] = rec
	c.seqs[si] = seq
}

// del removes a record IN PLACE, leaving a tombstone seq stamp. Only
// legal on tables not yet reachable by readers (recovery, Load).
func (t *table) del(id int64, seq uint64) {
	ci, si := chunkPos(id)
	if ci >= len(t.chunks) || t.chunks[ci] == nil {
		return
	}
	c := t.chunks[ci]
	if c.recs[si] != nil {
		c.recs[si] = nil
		t.count--
	}
	c.seqs[si] = seq
}

// clone returns a shallow copy of the table for copy-on-write mutation:
// the chunk slice and index map are private, but the chunk and index
// structures themselves stay shared with the original until a cowTable /
// cowIndex detaches the ones a commit touches.
func (t *table) clone() *table {
	nt := &table{name: t.name, nextID: t.nextID, count: t.count, lastSeq: t.lastSeq}
	nt.chunks = append([]*chunk(nil), t.chunks...)
	nt.indexes = make(map[string]*index, len(t.indexes))
	for f, ix := range t.indexes {
		nt.indexes[f] = ix
	}
	return nt
}

// tableIter walks a table's live records in ascending id order by walking
// the chunk slice; nil chunks are skipped wholesale.
type tableIter struct {
	t    *table
	id   int64 // next candidate id
	toID int64 // inclusive upper bound
}

// iter returns an iterator over live ids in [fromID, toID]; a bound of 0
// means unbounded on that side.
func (t *table) iter(fromID, toID int64) tableIter {
	if fromID < 1 {
		fromID = 1
	}
	max := t.nextID - 1
	if toID == 0 || toID > max {
		toID = max
	}
	return tableIter{t: t, id: fromID, toID: toID}
}

// next returns the next live (id, record), or (0, nil) when exhausted.
func (it *tableIter) next() (int64, Record) {
	for it.id > 0 && it.id <= it.toID {
		ci, si := chunkPos(it.id)
		if ci >= len(it.t.chunks) {
			return 0, nil
		}
		c := it.t.chunks[ci]
		if c == nil {
			it.id = (int64(ci)+1)*chunkSize + 1
			continue
		}
		for si < chunkSize && it.id <= it.toID {
			r := c.recs[si]
			id := it.id
			si++
			it.id++
			if r != nil {
				return id, r
			}
		}
	}
	return 0, nil
}

// cowStats, when non-nil, counts copy-on-write privatizations during
// commits. Commits are serialized by the writer mutex, which also guards
// the counters; tests set the pointer to prove the per-commit copy bounds
// (each touched chunk and index shard is copied at most once).
var cowStats *struct {
	chunks   int // chunk deep-copies (including fresh allocations)
	groups   int // index shard-group head copies
	shards   int // index shard map copies
	postings int // postings slices privatized for non-append mutation
}

// cowTable wraps a freshly cloned table during one commit, tracking which
// chunks and indexes have already been detached from the base version so
// each is copied at most once per commit.
type cowTable struct {
	t       *table
	private map[int]bool // chunk indices deep-copied for this commit
	ixes    map[string]*cowIndex
}

func newCowTable(base *table) *cowTable {
	return &cowTable{t: base.clone(), private: make(map[int]bool), ixes: make(map[string]*cowIndex)}
}

// chunkFor returns a chunk private to this commit covering id, copying or
// allocating it on first touch.
func (ct *cowTable) chunkFor(id int64) (*chunk, int) {
	ci, si := chunkPos(id)
	for ci >= len(ct.t.chunks) {
		ct.t.chunks = append(ct.t.chunks, nil)
	}
	if !ct.private[ci] {
		if old := ct.t.chunks[ci]; old != nil {
			cp := *old
			ct.t.chunks[ci] = &cp
		} else {
			ct.t.chunks[ci] = new(chunk)
		}
		ct.private[ci] = true
		if cowStats != nil {
			cowStats.chunks++
		}
	}
	return ct.t.chunks[ci], si
}

func (ct *cowTable) put(id int64, rec Record, seq uint64) {
	c, si := ct.chunkFor(id)
	if c.recs[si] == nil {
		ct.t.count++
	}
	c.recs[si] = rec
	c.seqs[si] = seq
}

func (ct *cowTable) del(id int64, seq uint64) {
	c, si := ct.chunkFor(id)
	if c.recs[si] != nil {
		c.recs[si] = nil
		ct.t.count--
	}
	c.seqs[si] = seq
}

// index returns the commit-private copy-on-write wrapper for the named
// index, cloning the index head on first touch.
func (ct *cowTable) index(field string) *cowIndex {
	ci, ok := ct.ixes[field]
	if !ok {
		ix := ct.t.indexes[field].clone()
		ct.t.indexes[field] = ix
		ci = &cowIndex{ix: ix, privGroup: make(map[int]bool), privShard: make(map[int]bool)}
		ct.ixes[field] = ci
	}
	return ci
}

// cowIndex mutates a cloned index during one commit, privatizing each
// shard group and shard map on first touch. Postings themselves are
// rebuilt at most once per key by applyDelta, so no per-slice copy
// tracking is needed. Shard privatization is what keeps commit cost
// proportional to the keys touched rather than the keys that exist.
type cowIndex struct {
	ix        *index
	privGroup map[int]bool // group indices privatized this commit
	privShard map[int]bool // shard indices privatized this commit
}

// shardFor returns a shard map private to this commit covering key,
// copying the group head and the shard map on first touch.
func (ci *cowIndex) shardFor(key indexKey) map[indexKey][]int64 {
	s := shardOf(key)
	gi, si := s>>ixShardBits, s&(ixGroupSize-1)
	if !ci.privGroup[gi] {
		g := new(ixGroup)
		if old := ci.ix.groups[gi]; old != nil {
			*g = *old
		}
		ci.ix.groups[gi] = g
		ci.privGroup[gi] = true
		if cowStats != nil {
			cowStats.groups++
		}
	}
	g := ci.ix.groups[gi]
	if !ci.privShard[s] {
		old := g[si]
		m := make(map[indexKey][]int64, len(old)+1)
		for k, v := range old {
			m[k] = v
		}
		g[si] = m
		ci.privShard[s] = true
		if cowStats != nil {
			cowStats.shards++
		}
	}
	return g[si]
}

// applyDelta installs one key's net postings change for this commit:
// removes and adds are disjoint ascending id runs, applied in a single
// sorted-run merge so the key's postings are rebuilt (or appended to) at
// most once per commit, however many records moved under it. val is a
// representative field value for unique-violation messages.
func (ci *cowIndex) applyDelta(key indexKey, removes, adds []int64, val any) error {
	m := ci.shardFor(key)
	ids := m[key]
	if ci.ix.unique && len(ids)-len(removes)+len(adds) > 1 {
		return fmt.Errorf("field %q value %v: %w", ci.ix.field, val, ErrUnique)
	}
	if len(removes) == 0 {
		if len(adds) == 0 {
			return nil
		}
		if n := len(ids); n == 0 || adds[0] > ids[n-1] {
			// Pure batch append — the common bulk-insert case with serial
			// ids. Appending either reallocates or writes past every
			// published slice's length, which no reader of an earlier
			// version can observe, so no private copy is needed; one
			// append grows the slice once for the whole batch.
			m[key] = append(ids, adds...)
			return nil
		}
	}
	// General case: three-way sorted merge into a fresh slice (the
	// published one must never be mutated within its length).
	if cowStats != nil {
		cowStats.postings++
	}
	merged := make([]int64, 0, len(ids)+len(adds))
	i, j, k := 0, 0, 0
	for i < len(ids) || j < len(adds) {
		var id int64
		switch {
		case j >= len(adds) || (i < len(ids) && ids[i] <= adds[j]):
			id = ids[i]
			i++
			if i-1 < len(ids) && j < len(adds) && ids[i-1] == adds[j] {
				j++ // defensive: id both present and re-added
			}
		default:
			id = adds[j]
			j++
		}
		for k < len(removes) && removes[k] < id {
			k++
		}
		if k < len(removes) && removes[k] == id {
			k++
			continue
		}
		merged = append(merged, id)
	}
	if len(merged) == 0 {
		delete(m, key)
		return nil
	}
	if ci.ix.unique && len(merged) > 1 {
		return fmt.Errorf("field %q value %v: %w", ci.ix.field, val, ErrUnique)
	}
	m[key] = merged
	return nil
}

// keyDelta accumulates one index key's net postings change for a commit:
// the ascending ids leaving the key and the ascending ids arriving under
// it. val is a representative record value for error messages.
type keyDelta struct {
	removes, adds []int64
	val           any
}

// applyOverlay derives the successor of base by applying a transaction's
// pending overlay copy-on-write: untouched tables, chunks and index
// postings are shared with base; touched ones are copied once. Mirrors
// the WAL record's apply order (tables in sorted name order; per table
// deletions first, then writes in id order) so that replay reconstructs
// the exact same state.
//
// Index maintenance is delta-merged: instead of touching the index once
// per record, the commit groups every add and remove by (field, key) and
// merges each key's postings exactly once in a single sorted-run pass —
// a batch of N inserts sharing a key costs one append of N ids, not N
// incremental inserts. Net-keyed deltas also subsume the old two-phase
// remove-then-insert ordering: a unique-value swap between rows lands as
// one remove and one add on each key, never a transient collision. Rows
// whose indexed key is unchanged generate no delta at all, so a rewrite
// that does not move a row never detaches (copies) the key's postings.
//
// The same delta merge is what keeps the version's live counters
// maintained: the per-table count (table.count, incremented/decremented
// as chunk slots flip) and the per-(field,key) counts — materialized as
// the postings lengths the merged slices carry — are published on every
// committed version, so Tx.Count and the aggregate strategies
// count(maintained)/count(postings) read them O(1) instead of ever
// recounting rows.
func applyOverlay(base *version, pending map[string]*txTable) (*version, error) {
	nv := base.withTables()
	nv.seq = base.seq + 1
	names := make([]string, 0, len(pending))
	for name := range pending {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		o := pending[name]
		bt := base.tables[name]
		if bt == nil {
			continue // tables are never dropped mid-tx; cannot happen
		}
		if len(o.writes) == 0 && len(o.deletes) == 0 {
			if o.nextID > bt.nextID {
				// Inserts that were all deleted again in the same tx:
				// only the serial high-water mark moves.
				nt := bt.clone()
				nt.nextID = o.nextID
				nt.lastSeq = nv.seq
				nv.tables[name] = nt
			}
			continue
		}
		ct := newCowTable(bt)
		ct.t.lastSeq = nv.seq

		delIDs := make([]int64, 0, len(o.deletes))
		for id := range o.deletes {
			delIDs = append(delIDs, id)
		}
		sort.Slice(delIDs, func(i, j int) bool { return delIDs[i] < delIDs[j] })
		oldDels := make([]Record, len(delIDs))
		for i, id := range delIDs {
			oldDels[i] = ct.t.get(id)
		}

		writeIDs := make([]int64, 0, len(o.writes))
		for id := range o.writes {
			writeIDs = append(writeIDs, id)
		}
		sort.Slice(writeIDs, func(i, j int) bool { return writeIDs[i] < writeIDs[j] })
		olds := make([]Record, len(writeIDs))
		for i, id := range writeIDs {
			olds[i] = ct.t.get(id)
		}

		// Per-field postings deltas, built before any chunk mutation so
		// old records are still reachable. Ids arrive in ascending order,
		// so each delta's runs are naturally sorted.
		for f := range ct.t.indexes {
			var deltas map[indexKey]*keyDelta
			delta := func(key indexKey, val any) *keyDelta {
				if deltas == nil {
					deltas = make(map[indexKey]*keyDelta)
				}
				d := deltas[key]
				if d == nil {
					d = &keyDelta{val: val}
					deltas[key] = d
				}
				return d
			}
			for i, id := range delIDs {
				if oldDels[i] == nil {
					continue
				}
				if key, ok := keyFor(oldDels[i][f]); ok {
					d := delta(key, oldDels[i][f])
					d.removes = append(d.removes, id)
				}
			}
			for i, id := range writeIDs {
				rec := o.writes[id]
				var okey, nkey indexKey
				var ook, nok bool
				if olds[i] != nil {
					okey, ook = keyFor(olds[i][f])
				}
				nkey, nok = keyFor(rec[f])
				if ook == nok && okey == nkey {
					continue // unchanged (or unindexable on both sides)
				}
				if ook {
					d := delta(okey, olds[i][f])
					d.removes = append(d.removes, id)
				}
				if nok {
					d := delta(nkey, rec[f])
					d.adds = append(d.adds, id)
				}
			}
			if deltas == nil {
				continue
			}
			ci := ct.index(f)
			for key, d := range deltas {
				// removes concatenates two ascending runs (deleted ids,
				// then rewritten ids); restore global order for the merge.
				if !slices.IsSorted(d.removes) {
					slices.Sort(d.removes)
				}
				if err := ci.applyDelta(key, d.removes, d.adds, d.val); err != nil {
					return nil, err
				}
			}
		}

		// Chunk mutations, in the WAL replay order: deletions first, then
		// writes in ascending id order.
		for i, id := range delIDs {
			if oldDels[i] != nil {
				ct.del(id, nv.seq)
			}
		}
		for _, id := range writeIDs {
			ct.put(id, o.writes[id], nv.seq)
		}
		if o.nextID > ct.t.nextID {
			ct.t.nextID = o.nextID
		}
		nv.tables[name] = ct.t
	}
	return nv, nil
}
