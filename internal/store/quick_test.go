package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickInsertGetIdentity: any inserted record reads back equal (string
// fields used as the carrier).
func TestQuickInsertGetIdentity(t *testing.T) {
	s := newTestStore(t, "t")
	f := func(name string, n int64, flag bool) bool {
		var id int64
		err := s.Update(func(tx *Tx) error {
			var err error
			id, err = tx.Insert("t", Record{"name": name, "n": n, "flag": flag})
			return err
		})
		if err != nil {
			return false
		}
		r, err := s.Get("t", id)
		if err != nil {
			return false
		}
		return r.String("name") == name && r.Int("n") == n && r.Bool("flag") == flag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickSaveLoadEquivalence: for random stores, Save→Load preserves every
// record and the table count.
func TestQuickSaveLoadEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		nTables := 1 + rng.Intn(3)
		for ti := 0; ti < nTables; ti++ {
			name := fmt.Sprintf("tab%d", ti)
			if err := s.CreateTable(name); err != nil {
				return false
			}
			nRows := rng.Intn(20)
			err := s.Update(func(tx *Tx) error {
				for ri := 0; ri < nRows; ri++ {
					_, err := tx.Insert(name, Record{
						"s":  fmt.Sprintf("v%d", rng.Intn(100)),
						"i":  int64(rng.Intn(1000)),
						"f":  rng.Float64(),
						"b":  rng.Intn(2) == 0,
						"li": []int64{int64(rng.Intn(5))},
					})
					if err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			return false
		}
		s2 := New()
		if err := s2.Load(&buf); err != nil {
			return false
		}
		if len(s.Tables()) != len(s2.Tables()) {
			return false
		}
		for _, name := range s.Tables() {
			if s.Count(name) != s2.Count(name) {
				return false
			}
			ok := true
			_ = s.View(func(tx *Tx) error {
				return tx.Scan(name, func(r Record) bool {
					r2, err := s2.Get(name, r.ID())
					if err != nil || fmt.Sprint(r) != fmt.Sprint(r2) {
						ok = false
						return false
					}
					return true
				})
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickUniqueInvariant: after any sequence of random inserts with
// colliding keys, no two live rows share a unique key.
func TestQuickUniqueInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		if err := s.CreateTable("u"); err != nil {
			return false
		}
		if err := s.CreateIndex("u", "k", true); err != nil {
			return false
		}
		for op := 0; op < 60; op++ {
			key := fmt.Sprintf("k%d", rng.Intn(10))
			switch rng.Intn(3) {
			case 0: // insert (may legitimately fail on duplicates)
				_ = s.Update(func(tx *Tx) error {
					_, err := tx.Insert("u", Record{"k": key})
					return err
				})
			case 1: // delete a random live row
				var victim int64
				_ = s.View(func(tx *Tx) error {
					return tx.Scan("u", func(r Record) bool {
						victim = r.ID()
						return rng.Intn(3) != 0
					})
				})
				if victim != 0 {
					_ = s.Update(func(tx *Tx) error { return tx.Delete("u", victim) })
				}
			case 2: // rename a random live row
				var victim int64
				_ = s.View(func(tx *Tx) error {
					return tx.Scan("u", func(r Record) bool {
						victim = r.ID()
						return false
					})
				})
				if victim != 0 {
					_ = s.Update(func(tx *Tx) error {
						return tx.Put("u", victim, Record{"k": key})
					})
				}
			}
		}
		// Invariant: distinct live rows never share k.
		seen := map[string]int64{}
		violated := false
		_ = s.View(func(tx *Tx) error {
			return tx.Scan("u", func(r Record) bool {
				k := r.String("k")
				if prev, dup := seen[k]; dup && prev != r.ID() {
					violated = true
					return false
				}
				seen[k] = r.ID()
				return true
			})
		})
		return !violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickCountMatchesScan: Count always equals the number of rows a Scan
// visits, under random mutation.
func TestQuickCountMatchesScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		if err := s.CreateTable("c"); err != nil {
			return false
		}
		for op := 0; op < 50; op++ {
			if rng.Intn(3) > 0 {
				_ = s.Update(func(tx *Tx) error {
					_, err := tx.Insert("c", Record{"n": int64(op)})
					return err
				})
			} else {
				var victim int64
				_ = s.View(func(tx *Tx) error {
					return tx.Scan("c", func(r Record) bool {
						victim = r.ID()
						return false
					})
				})
				if victim != 0 {
					err := s.Update(func(tx *Tx) error { return tx.Delete("c", victim) })
					if err != nil && !errors.Is(err, ErrNotFound) {
						return false
					}
				}
			}
		}
		n := 0
		_ = s.View(func(tx *Tx) error {
			return tx.Scan("c", func(Record) bool { n++; return true })
		})
		return n == s.Count("c")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
