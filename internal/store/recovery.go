package store

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// DurabilityOptions configures the durable write path of a store opened
// with Open.
type DurabilityOptions struct {
	// Sync selects the WAL sync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the background fsync period under SyncInterval.
	// Defaults to 25ms; ignored by the other policies.
	SyncEvery time.Duration
	// SnapshotEvery is the WAL size in bytes that triggers a background
	// snapshot + WAL truncation. 0 means the 64 MiB default; a negative
	// value disables automatic snapshotting (Snapshot can still be called
	// explicitly).
	SnapshotEvery int64
	// OnError, when set, is called with failures from background work
	// (snapshotting) that would otherwise surface only at Close — while
	// the WAL keeps growing. Called from the snapshot goroutine.
	OnError func(error)
	// FS substitutes the filesystem under the durable write path. nil
	// means the real filesystem; tests inject a FaultFS to exercise
	// crash points. The data-directory lock always uses the real
	// filesystem (its semantics are tied to OS file descriptors).
	FS FS
}

const (
	defaultSyncEvery     = 25 * time.Millisecond
	defaultSnapshotEvery = 64 << 20
)

// Open opens (or creates) a durable store rooted at dir. It recovers the
// committed state by loading the most recent snapshot, if any, and
// replaying the write-ahead log over it, then arms the WAL for new
// commits.
//
// Recovery implements committed-prefix semantics: a torn or corrupt tail
// on the most recent WAL segment — the signature of a crash mid-append —
// is cut off, and every transaction before it is restored exactly.
// Corruption anywhere else is reported as ErrCorrupt rather than silently
// dropping committed data.
//
// Only data is logged. Schema (tables created empty, secondary indexes) is
// the caller's to re-register after Open; registration through
// internal/core is idempotent, and CreateIndex rebuilds from the recovered
// rows.
func Open(dir string, opts DurabilityOptions) (*Store, error) {
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = defaultSyncEvery
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = defaultSnapshotEvery
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = osFS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	lock, err := lockDataDir(dir)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Store, error) {
		if lock != nil {
			lock.Close()
		}
		return nil, err
	}
	s := New()
	s.dir = dir
	s.fs = fsys
	s.dirLock = lock

	snapPath := filepath.Join(dir, snapshotFile)
	if _, err := fsys.Stat(snapPath); err == nil {
		if err := s.LoadFile(snapPath); err != nil {
			return fail(fmt.Errorf("store: loading snapshot: %w", err))
		}
	} else if !os.IsNotExist(err) {
		return fail(err)
	}

	segs, err := listWALSegments(fsys, dir)
	if err != nil {
		return fail(err)
	}
	if err := s.replayWAL(segs); err != nil {
		return fail(err)
	}

	// The restored epoch is the max of the EPOCH file (a promotion after
	// the last snapshot) and the snapshot's own (already adopted by
	// LoadFile); New started it at 1.
	fileEpoch, err := readEpochFile(fsys, dir)
	if err != nil {
		return fail(err)
	}
	if fileEpoch > s.epoch.Load() {
		s.epoch.Store(fileEpoch)
	}

	s.onError = opts.OnError
	w := newWAL(dir, fsys, opts.Sync, opts.SyncEvery, s.walFailure)
	if err := w.armSegments(segs, s.CommitSeq()); err != nil {
		return fail(err)
	}
	s.wal = w
	w.start()

	if opts.SnapshotEvery > 0 {
		s.snapshotEvery = opts.SnapshotEvery
		s.snapTrigger = make(chan struct{}, 1)
		s.snapStop = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.snapshotLoop()
	}
	return s, nil
}

// replayWAL applies every WAL record beyond the snapshot's seq, in commit
// order, and truncates a torn tail off the last segment. The store — and
// therefore its current version — is not yet shared with any reader, so
// replay mutates the version in place instead of deriving copy-on-write
// successors per record.
func (s *Store) replayWAL(segs []walSegment) error {
	for i, seg := range segs {
		last := i == len(segs)-1
		if err := s.replaySegment(seg, last); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) replaySegment(seg walSegment, last bool) error {
	fsys := s.fileSystem()
	f, err := fsys.OpenFile(seg.path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()

	torn := func(off int64, cause error) error {
		if !last {
			// Records after this point in later segments are intact, so
			// cutting here would drop committed transactions from the
			// middle of the history.
			return fmt.Errorf("store: wal segment %s: %v: %w", seg.path, cause, ErrCorrupt)
		}
		if err := fsys.Truncate(seg.path, off); err != nil {
			return fmt.Errorf("store: truncating torn wal tail: %w", err)
		}
		return nil
	}

	fr, err := newWALFrameReader(f, false)
	if err != nil {
		var tfe *tornFrameError
		if errors.As(err, &tfe) {
			// A file shorter than the magic can only be a segment created
			// right at a crash; resetting it to a bare header keeps it
			// usable. A full-size header that does not match is real
			// corruption — the frames behind it may hold acknowledged
			// commits, so refuse rather than wipe them.
			if !last || seg.size >= int64(len(walMagic)) {
				return fmt.Errorf("store: wal segment %s: %v: %w", seg.path, err, ErrCorrupt)
			}
			if err := fsys.Truncate(seg.path, 0); err != nil {
				return err
			}
			nf, err := fsys.OpenFile(seg.path, os.O_WRONLY, 0o644)
			if err != nil {
				return err
			}
			defer nf.Close()
			if _, err := nf.Write([]byte(walMagic)); err != nil {
				return err
			}
			return nf.Sync()
		}
		return err
	}
	for {
		payload, err := fr.next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			var tfe *tornFrameError
			if errors.As(err, &tfe) {
				return torn(tfe.off, err)
			}
			return err
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			// The frame checksum passed but the payload does not decode:
			// same handling as a torn frame.
			return torn(fr.off-int64(walFrameHeaderSize+len(payload)), err)
		}
		seq := s.current.Load().seq
		if rec.Seq <= seq {
			continue // already covered by the snapshot
		}
		if rec.Seq != seq+1 {
			return fmt.Errorf("store: wal gap: have seq %d, next record is %d: %w",
				seq, rec.Seq, ErrCorrupt)
		}
		if err := s.applyWALRecord(rec); err != nil {
			return err
		}
	}
}

// applyWALRecord installs one replayed commit, mirroring the commit-time
// apply order (per table: deletions, then whole-record writes) and
// maintaining whatever indexes the snapshot carried. Record slots are
// stamped with the replayed commit's sequence so that conflict detection
// resumes correctly across restarts. Only called during Open, while the
// current version is still private to this goroutine and may be mutated
// in place.
func (s *Store) applyWALRecord(rec walRecord) error {
	v := s.current.Load()
	for _, tc := range rec.Tables {
		t, ok := v.tables[tc.Name]
		if !ok {
			t = newTable(tc.Name)
			v.tables[tc.Name] = t
		}
		for _, id := range tc.Deletes {
			if old := t.get(id); old != nil {
				for _, ix := range t.indexes {
					ix.remove(old, id)
				}
				t.del(id, rec.Seq)
			}
		}
		// Two-phase index maintenance, mirroring the commit path: clear
		// old entries of every rewritten row, then insert — a
		// unique-value swap within one transaction must replay exactly
		// as it committed.
		for _, rs := range tc.Writes {
			if old := t.get(rs.ID); old != nil {
				for _, ix := range t.indexes {
					ix.remove(old, rs.ID)
				}
			}
		}
		for _, rs := range tc.Writes {
			r := make(Record, len(rs.Fields)+1)
			r[IDField] = rs.ID
			for _, fs := range rs.Fields {
				r[fs.Key] = fs.decode()
			}
			for _, ix := range t.indexes {
				if err := ix.insert(r, rs.ID); err != nil {
					return fmt.Errorf("store: replaying %s/%d: %v: %w", tc.Name, rs.ID, err, ErrCorrupt)
				}
			}
			t.put(rs.ID, r, rec.Seq)
		}
		if tc.NextID > t.nextID {
			t.nextID = tc.NextID
		}
		t.lastSeq = rec.Seq
	}
	v.seq = rec.Seq
	return nil
}

// armSegments points the WAL at the replayed directory state: it reopens
// the last segment for appending (creating the first one on a fresh
// directory) and records the earlier segments as retired.
func (w *wal) armSegments(segs []walSegment, lastSeq uint64) error {
	w.lastSeq = lastSeq
	w.synced = lastSeq // whatever replay saw is already on disk
	if len(segs) == 0 {
		f, size, err := createWALSegment(w.fs, w.dir, lastSeq+1)
		if err != nil {
			return err
		}
		w.f = f
		w.bw = bufio.NewWriter(f)
		w.cur = walSegment{base: lastSeq + 1, path: walSegmentPath(w.dir, lastSeq+1), size: size}
		w.bytes.Add(size)
		return nil
	}
	cur := segs[len(segs)-1]
	// Replay may have truncated a torn tail; trust the file, not the
	// directory listing taken before replay.
	info, err := w.fs.Stat(cur.path)
	if err != nil {
		return err
	}
	cur.size = info.Size()
	f, err := w.fs.OpenFile(cur.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopening wal segment: %w", err)
	}
	w.f = f
	w.bw = bufio.NewWriter(f)
	w.cur = cur
	w.retired = append(w.retired, segs[:len(segs)-1]...)
	var total int64
	for _, seg := range segs[:len(segs)-1] {
		total += seg.size
	}
	w.bytes.Add(total + cur.size)
	return nil
}

// Snapshot writes a full snapshot of the committed state to the data
// directory (atomically replacing the previous one) and truncates WAL
// segments the snapshot has made redundant. It is a no-op error on
// non-durable stores. Safe to call concurrently with commits: the
// serialized state is a consistent cut, and commits that land while it is
// being written stay in the WAL until the next snapshot.
func (s *Store) Snapshot() error {
	if s.wal == nil {
		return fmt.Errorf("store: Snapshot on a non-durable store")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	seq, err := s.writeSnapshotFile(filepath.Join(s.dir, snapshotFile))
	if err != nil {
		s.degradeIfNoSpace(err)
		return err
	}
	return s.wal.truncateTo(seq)
}

// snapshotLoop runs background snapshots when the WAL outgrows the
// configured threshold. Triggers collapse: at most one snapshot runs at a
// time and at most one more is queued.
func (s *Store) snapshotLoop() {
	defer close(s.snapDone)
	for {
		select {
		case <-s.snapStop:
			return
		case <-s.snapTrigger:
			if s.wal.totalBytes() < s.snapshotEvery {
				continue // a competing snapshot already shrank the WAL
			}
			err := s.Snapshot()
			s.snapMu.Lock()
			// A later success clears an earlier transient failure: the
			// WAL retained everything in the meantime, so nothing was at
			// risk and Close should not report a long-resolved condition.
			s.snapErr = err
			s.snapMu.Unlock()
			if err != nil && s.onError != nil {
				s.onError(fmt.Errorf("background snapshot: %w", err))
			}
		}
	}
}

// maybeTriggerSnapshot nudges the background snapshotter if the WAL has
// outgrown its threshold. Called after every durable commit; cheap.
func (s *Store) maybeTriggerSnapshot() {
	if s.snapTrigger == nil || s.wal.totalBytes() < s.snapshotEvery {
		return
	}
	select {
	case s.snapTrigger <- struct{}{}:
	default:
	}
}

// syncDir fsyncs a directory so that a just-renamed file inside it is
// durable.
func syncDir(fsys FS, dir string) error {
	d, err := fsys.OpenFile(dir, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// WALInfo reports the live state of a durable store's write-ahead log.
type WALInfo struct {
	Dir       string
	Policy    SyncPolicy
	LastSeq   uint64 // last appended commit seq
	SyncedSeq uint64 // durability horizon
	Fsyncs    uint64 // fsyncs issued since Open
	Segments  int    // live segment files, including the active one
	Bytes     int64  // total live WAL bytes
}

// WALInfo returns the WAL state, or ok=false for a non-durable store.
func (s *Store) WALInfo() (WALInfo, bool) {
	if s.wal == nil {
		return WALInfo{}, false
	}
	w := s.wal
	w.mu.Lock()
	info := WALInfo{
		Dir:      w.dir,
		Policy:   w.policy,
		LastSeq:  w.lastSeq,
		Segments: len(w.retired) + 1,
		Bytes:    w.totalBytes(),
		Fsyncs:   w.fsyncs.Load(),
	}
	w.mu.Unlock()
	w.syncMu.Lock()
	info.SyncedSeq = w.synced
	w.syncMu.Unlock()
	return info, true
}

// Durable reports whether the store writes through a WAL.
func (s *Store) Durable() bool { return s.wal != nil }

// SegmentInfo describes one WAL segment as found on disk.
type SegmentInfo struct {
	Path     string
	Base     uint64 // first seq the segment may contain
	Size     int64
	Records  int
	FirstSeq uint64 // 0 when empty
	LastSeq  uint64 // 0 when empty
	Torn     bool   // unreadable tail present
}

// DirInfo describes the on-disk state of a data directory.
type DirInfo struct {
	Dir          string
	HasSnapshot  bool
	SnapshotSeq  uint64
	SnapshotSize int64
	SnapshotTime time.Time
	Segments     []SegmentInfo
	// LastSeq is the highest commit seq recovery would restore. It stops
	// advancing at mid-history damage: records beyond a torn non-final
	// segment or a sequence gap are on disk but Open will refuse the
	// directory.
	LastSeq uint64
	// Damaged reports mid-history damage — a torn non-final segment or a
	// gap in the commit sequence (e.g. a missing segment) — the cases
	// recovery refuses with ErrCorrupt instead of repairing.
	Damaged bool
	// Epoch is the replication epoch recovery would restore: the max of
	// the EPOCH file and the snapshot's embedded epoch, at least 1.
	Epoch uint64
}

// InspectDir reads a data directory without opening or mutating it:
// snapshot metadata plus a per-segment record census. Torn tails are
// reported, not repaired.
func InspectDir(dir string) (*DirInfo, error) {
	info := &DirInfo{Dir: dir}
	snapPath := filepath.Join(dir, snapshotFile)
	if st, err := os.Stat(snapPath); err == nil {
		info.HasSnapshot = true
		info.SnapshotSize = st.Size()
		info.SnapshotTime = st.ModTime()
		f, err := os.Open(snapPath)
		if err != nil {
			return nil, err
		}
		// Decode only the metadata fields: gob skips fields absent from
		// the destination, so the table data is never materialized —
		// inspection stays cheap at deployment scale.
		var hdr struct {
			Version int
			Seq     uint64
			Epoch   uint64
		}
		err = gob.NewDecoder(f).Decode(&hdr)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("store: decoding snapshot: %w", err)
		}
		info.SnapshotSeq = hdr.Seq
		info.LastSeq = hdr.Seq
		info.Epoch = hdr.Epoch
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	if fileEpoch, err := readEpochFile(osFS{}, dir); err != nil {
		return nil, err
	} else if fileEpoch > info.Epoch {
		info.Epoch = fileEpoch
	}
	if info.Epoch == 0 {
		info.Epoch = 1
	}

	segs, err := listWALSegments(osFS{}, dir) // already in ascending base order
	if err != nil {
		return nil, err
	}
	// Mirror replay's contiguity rule: records at or below the snapshot
	// seq are redundant; beyond it each record must be exactly the next
	// seq, or recovery will refuse the directory.
	expected := info.SnapshotSeq
	for i, seg := range segs {
		si := SegmentInfo{Path: seg.path, Base: seg.base, Size: seg.size}
		f, err := os.Open(seg.path)
		if os.IsNotExist(err) {
			// A live server's background truncation can remove a segment
			// between our listing and this read; inspection of a live
			// directory is best-effort (documented), not an error.
			continue
		}
		if err != nil {
			return nil, err
		}
		fr, err := newWALFrameReader(f, false)
		if err != nil {
			si.Torn = true
		} else {
			for {
				payload, err := fr.next()
				if err == io.EOF {
					break
				}
				if err != nil {
					si.Torn = true
					break
				}
				rec, err := decodeWALRecord(payload)
				if err != nil {
					si.Torn = true
					break
				}
				if si.Records == 0 {
					si.FirstSeq = rec.Seq
				}
				si.Records++
				si.LastSeq = rec.Seq
				switch {
				case rec.Seq <= expected:
					// covered by the snapshot (or a duplicate replay skips)
				case rec.Seq == expected+1 && !info.Damaged:
					expected++
					info.LastSeq = rec.Seq
				default:
					info.Damaged = true // sequence gap: replay cannot get here
				}
			}
		}
		f.Close()
		if si.Torn && i < len(segs)-1 {
			// Later segments hold records recovery will never reach.
			info.Damaged = true
		}
		info.Segments = append(info.Segments, si)
	}
	return info, nil
}
