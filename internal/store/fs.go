package store

import (
	"io"
	iofs "io/fs"
	"os"
)

// FS is the narrow filesystem surface the durable write path runs on: the
// WAL appender, the snapshot writer and recovery touch disk only through
// it. Production stores use the passthrough osFS; tests substitute a
// FaultFS to inject crash points (failed writes, failed fsyncs, torn
// frames, ENOSPC, failed renames) without a real dying disk.
//
// The interface is deliberately operation-shaped, not path-shaped: each
// method corresponds to one fault point the crash-recovery contract must
// survive.
type FS interface {
	// OpenFile is os.OpenFile. Directories may be opened read-only so
	// they can be fsynced (see SyncDir users).
	OpenFile(name string, flag int, perm iofs.FileMode) (File, error)
	// Rename is os.Rename — the atomic-replace step of snapshot writes.
	Rename(oldpath, newpath string) error
	// Remove is os.Remove — WAL truncation and temp-file cleanup.
	Remove(name string) error
	// Truncate is os.Truncate — cutting a torn WAL tail during recovery.
	Truncate(name string, size int64) error
	// Stat is os.Stat.
	Stat(name string) (iofs.FileInfo, error)
	// ReadDir is os.ReadDir — segment discovery during recovery.
	ReadDir(name string) ([]iofs.DirEntry, error)
	// MkdirAll is os.MkdirAll.
	MkdirAll(name string, perm iofs.FileMode) error
}

// File is the per-handle surface of FS: sequential reads and writes plus
// the fsync that makes them durable.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the handle to stable storage (os.File.Sync).
	Sync() error
}

// osFS is the production FS: a zero-cost passthrough to the os package.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error   { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error               { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
func (osFS) Stat(name string) (iofs.FileInfo, error) {
	return os.Stat(name)
}
func (osFS) ReadDir(name string) ([]iofs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) MkdirAll(name string, perm iofs.FileMode) error {
	return os.MkdirAll(name, perm)
}

// fileSystem resolves the store's FS, defaulting to the os passthrough so
// in-memory stores constructed with New can still SaveFile/LoadFile.
func (s *Store) fileSystem() FS {
	if s.fs == nil {
		return osFS{}
	}
	return s.fs
}
