package store

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Retry backoff shape: full jitter over an exponentially growing window.
// The first retry is nearly immediate — most conflicts are a single lost
// race and resolve on the next snapshot — while a genuinely hot record
// spreads its contenders out instead of letting them re-collide in
// lockstep.
const (
	retryBaseDelay = 100 * time.Microsecond
	retryMaxDelay  = 10 * time.Millisecond
)

// WithRetry runs fn inside optimistic (Begin) transactions until one
// commits, retrying ErrConflict with jittered exponential backoff. Every
// other error — including fn's own errors, ErrDegraded and ErrClosed —
// returns immediately with the transaction rolled back. The context
// bounds the whole loop: when it is done, WithRetry returns the context's
// error wrapped with the conflict count, so a saturated hot spot
// surfaces as a timeout, not an unbounded spin.
//
// fn must be safe to re-run from scratch: it is called once per attempt
// on a fresh snapshot and must not leak effects from a rolled-back
// attempt (writing only through tx and deriving state only from tx reads
// gives this for free).
//
// This is the canonical read-modify-write shape for contended records;
// Update remains the simpler tool when serializing all writers is
// acceptable.
func WithRetry(ctx context.Context, s *Store, fn func(tx *Tx) error) error {
	delay := retryBaseDelay
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		tx, err := s.Begin(false)
		if err != nil {
			return err
		}
		err = fn(tx)
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Rollback()
		}
		if err == nil || !errors.Is(err, ErrConflict) {
			return err
		}
		// Full jitter: uniform in [0, delay). Collided writers that back
		// off by the same deterministic amount would just collide again.
		timer := time.NewTimer(time.Duration(rand.Int63n(int64(delay))))
		select {
		case <-ctx.Done():
			timer.Stop()
			return fmt.Errorf("store: giving up after %d conflicted attempts: %w", attempt, ctx.Err())
		case <-timer.C:
		}
		if delay < retryMaxDelay {
			delay *= 2
			if delay > retryMaxDelay {
				delay = retryMaxDelay
			}
		}
	}
}
