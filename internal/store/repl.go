package store

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// This file is the store's replication seam: everything a WAL shipper
// (internal/repl) needs from the primary — an ordered feed of committed
// frames, random access to the on-disk log for offset catch-up, and a
// consistent pinned snapshot for new joiners — and everything a follower
// needs — applying replicated frames through the same codec and
// copy-on-write install as local commits, resyncing wholesale from a
// snapshot, and a write gate that refuses local mutations.
//
// The unit of replication is the WAL frame payload itself (walcodec.go):
// the exact bytes appended to the primary's log, CRC and all, are what
// travel to followers and what a durable follower appends to its own log.
// One codec, one apply path, one checksum — the frame a follower replays
// is bit-identical to the frame primary-side recovery would replay.

// ReplFrame is one committed transaction as shipped to subscribers: the
// commit sequence plus the WAL payload encoding the full record-set.
// The payload is a private copy; receivers may retain it.
type ReplFrame struct {
	Seq     uint64
	Payload []byte
}

// CommitSub is a subscription to the store's committed-frame feed.
type CommitSub struct {
	// C delivers frames in strictly increasing seq order, starting at
	// FromSeq+1. The channel is closed when the subscriber falls behind
	// (its buffer fills), when it is cancelled, or when the store closes;
	// a closed channel means the feed is no longer gapless and the
	// receiver must catch up again (WALFrames or a snapshot).
	C <-chan ReplFrame
	// FromSeq is the commit sequence of the version that was current at
	// subscription time: an exact cut. Every commit after FromSeq will
	// appear on C (until the channel closes); every commit at or before
	// it will not.
	FromSeq uint64

	ch     chan ReplFrame
	s      *Store
	closed bool // guarded by s.writeMu
}

// SubscribeCommits registers a subscriber on the committed-frame feed
// with the given channel buffer (<=0 means a default of 256). The
// returned cut (FromSeq) and the feed are atomic with respect to
// commits: no frame is ever skipped between them. Delivery happens
// inside the commit section; a subscriber that stops draining has its
// channel closed rather than ever blocking commits.
func (s *Store) SubscribeCommits(buf int) (*CommitSub, error) {
	if buf <= 0 {
		buf = 256
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	sub := &CommitSub{ch: make(chan ReplFrame, buf), s: s, FromSeq: s.current.Load().seq}
	sub.C = sub.ch
	s.replSubs = append(s.replSubs, sub)
	return sub, nil
}

// Cancel removes the subscription and closes its channel. Idempotent.
func (sub *CommitSub) Cancel() {
	s := sub.s
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	sub.closeLocked()
}

// closeLocked closes the subscription channel once and marks it dead.
// Callers hold writeMu.
func (sub *CommitSub) closeLocked() {
	if sub.closed {
		return
	}
	sub.closed = true
	close(sub.ch)
	s := sub.s
	for i, x := range s.replSubs {
		if x == sub {
			s.replSubs = append(s.replSubs[:i], s.replSubs[i+1:]...)
			break
		}
	}
}

// publishCommit fans one committed frame out to every subscriber. Called
// with writeMu held, immediately after the new version is published, so
// subscribers observe commits in order with no gaps relative to their
// cut. The payload is the store's reusable encode buffer; one private
// copy is shared by all subscribers. A subscriber whose buffer is full
// is dropped (channel closed) — a slow follower re-syncs, it never
// backpressures the commit path.
func (s *Store) publishCommit(seq uint64, payload []byte) {
	if len(s.replSubs) == 0 {
		return
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	fr := ReplFrame{Seq: seq, Payload: cp}
	for i := 0; i < len(s.replSubs); {
		sub := s.replSubs[i]
		select {
		case sub.ch <- fr:
			i++
		default:
			sub.closeLocked() // removes s.replSubs[i]; do not advance i
		}
	}
}

// closeSubsLocked drops every subscriber. Called with writeMu held, on
// Close and on ResetFromSnapshot (a reset starts a new timeline; frame
// subscribers must re-establish their cut).
func (s *Store) closeSubsLocked() {
	for len(s.replSubs) > 0 {
		s.replSubs[0].closeLocked()
	}
}

// WaitDurable blocks until the commit with the given sequence is on
// stable storage (sharing the group-commit fsync), and returns the WAL's
// sticky failure if the log has died. On a non-durable store it returns
// immediately: there is no stronger durability to wait for. Shippers
// call this before forwarding a frame so a follower can never hold a
// commit the primary would lose in a crash.
func (s *Store) WaitDurable(seq uint64) error {
	if s.wal == nil {
		return nil
	}
	return s.wal.waitSynced(seq)
}

// SetReplica switches the store in or out of replica mode. In replica
// mode every local write path (Update, optimistic Commit) fails fast
// with ErrReplica; ApplyReplicated and ResetFromSnapshot — the
// replication stream itself — are exempt, as are schema registration
// calls (CreateTable/CreateIndex), which a follower process performs
// identically to its primary at wiring time.
func (s *Store) SetReplica(on bool) { s.replica.Store(on) }

// IsReplica reports whether the store is in replica mode.
func (s *Store) IsReplica() bool { return s.replica.Load() }

// WALFrames streams the raw frame payloads of commits fromSeq onward, in
// order, from the on-disk log to fn. It returns ErrSeqGone when fromSeq
// has been truncated away by a snapshot (the caller must catch up from a
// snapshot instead) and stops cleanly at the log's readable tail — a
// frame that is still being appended, or a torn tail, ends the stream
// without error, so callers must track how far they actually got. Any
// error from fn aborts the stream and is returned verbatim.
//
// Reading happens outside the WAL mutex on an immutable prefix of the
// segment files; only the segment list capture and a buffer flush hold
// the lock.
func (s *Store) WALFrames(fromSeq uint64, fn func(seq uint64, payload []byte) error) error {
	if fromSeq > s.CommitSeq() {
		return nil
	}
	if s.wal == nil {
		return ErrSeqGone // no log: history before the current state is gone
	}
	w := s.wal
	w.mu.Lock()
	if w.closing {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.bw != nil {
		if err := w.bw.Flush(); err != nil {
			w.mu.Unlock()
			return err
		}
	}
	segs := make([]walSegment, 0, len(w.retired)+1)
	segs = append(segs, w.retired...)
	if w.f != nil {
		segs = append(segs, w.cur)
	}
	w.mu.Unlock()

	next := fromSeq
	for _, seg := range segs {
		f, err := w.fs.OpenFile(seg.path, os.O_RDONLY, 0)
		if os.IsNotExist(err) {
			continue // truncated between capture and open; gap check below decides
		}
		if err != nil {
			return err
		}
		stop, err := walFramesSegment(f, next, &next, fn)
		f.Close()
		if err != nil || stop {
			return err
		}
	}
	return nil
}

// walFramesSegment reads one segment for WALFrames. It updates *next as
// frames are delivered and reports stop=true on a torn/partial tail
// (end of the readable log).
func walFramesSegment(f File, from uint64, next *uint64, fn func(seq uint64, payload []byte) error) (stop bool, err error) {
	fr, err := newWALFrameReader(f, false)
	if err != nil {
		// An unreadable header can only be a segment created mid-crash
		// (or under a concurrent reset); nothing to stream from it.
		return true, nil
	}
	for {
		payload, err := fr.next()
		if err == io.EOF {
			return false, nil
		}
		if err != nil {
			// Torn tail: the readable prefix ends here. The frames beyond
			// are either still being appended or lost to a crash — both
			// mean "stop", not "fail".
			return true, nil
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			return true, nil
		}
		if rec.Seq < *next {
			continue // below the requested start (or duplicate overlap)
		}
		if rec.Seq != *next {
			// The sequence we need is not on disk anymore (truncated) or
			// the log is not contiguous here: either way offset catch-up
			// cannot serve it.
			return true, ErrSeqGone
		}
		if err := fn(rec.Seq, payload); err != nil {
			return true, err
		}
		*next = rec.Seq + 1
	}
}

// ApplyReplicated installs one replicated WAL frame — the payload bytes
// exactly as shipped from the primary — as this store's next commit. It
// returns the store's resulting commit sequence.
//
// Semantics mirror recovery replay: a frame at or below the current
// sequence is skipped (catch-up overlap is expected and idempotent); a
// frame that skips ahead fails with ErrReplicaGap and changes nothing; a
// frame that does not decode, or whose apply hits an index violation
// (divergence), fails with ErrCorrupt. On a durable store the frame is
// appended to the local WAL before the version is published — if the
// append fails the store degrades, exactly like a local commit, so a
// follower never acknowledges state it cannot make durable.
func (s *Store) ApplyReplicated(payload []byte) (uint64, error) {
	rec, err := decodeWALRecord(payload)
	if err != nil {
		return s.CommitSeq(), fmt.Errorf("store: replicated frame: %v: %w", err, ErrCorrupt)
	}
	s.writeMu.Lock()
	base := s.current.Load()
	if s.closed.Load() {
		s.writeMu.Unlock()
		return base.seq, ErrClosed
	}
	if rec.Seq <= base.seq {
		s.writeMu.Unlock()
		return base.seq, nil
	}
	if rec.Seq != base.seq+1 {
		s.writeMu.Unlock()
		return base.seq, fmt.Errorf("store: replicated frame seq %d after %d: %w", rec.Seq, base.seq, ErrReplicaGap)
	}
	if d := s.degraded.Load(); d != nil {
		s.writeMu.Unlock()
		return base.seq, &DegradedError{Cause: d.cause, Since: d.since}
	}
	walAppended := false
	if s.wal != nil {
		if err := s.wal.append(rec.Seq, payload); err != nil {
			s.degrade(err)
			s.writeMu.Unlock()
			return base.seq, err
		}
		walAppended = true
	}

	// Build a pending overlay equivalent to the original transaction's.
	// applyOverlay skips tables absent from its base, so tables the
	// primary created after this follower's snapshot are pre-created on a
	// derived base first (private until published; never seen half-built).
	vbase := base
	pending := make(map[string]*txTable, len(rec.Tables))
	for _, tc := range rec.Tables {
		if vbase.tables[tc.Name] == nil {
			if vbase == base {
				vbase = base.withTables()
			}
			nt := newTable(tc.Name)
			nt.lastSeq = base.seq
			vbase.tables[tc.Name] = nt
		}
		o := &txTable{nextID: tc.NextID}
		if len(tc.Deletes) > 0 {
			o.deletes = make(map[int64]bool, len(tc.Deletes))
			for _, id := range tc.Deletes {
				o.deletes[id] = true
			}
		}
		if len(tc.Writes) > 0 {
			o.writes = make(map[int64]Record, len(tc.Writes))
			for _, rs := range tc.Writes {
				r := make(Record, len(rs.Fields)+1)
				r[IDField] = rs.ID
				for _, fs := range rs.Fields {
					r[fs.Key] = fs.decode()
				}
				o.writes[rs.ID] = r
			}
		}
		pending[tc.Name] = o
	}
	nv, err := applyOverlay(vbase, pending)
	if err != nil {
		// An index violation during a replicated apply means this replica
		// has diverged from the primary (or the frame is corrupt despite
		// its checksum). Refuse loudly; if the frame already reached the
		// local log, poison it — recovery must not replay a frame that
		// was never published here.
		err = fmt.Errorf("store: replicated apply seq %d: %v: %w", rec.Seq, err, ErrCorrupt)
		if walAppended {
			s.wal.poison(err)
			s.degrade(err)
		}
		s.writeMu.Unlock()
		return base.seq, err
	}
	s.current.Store(nv)
	s.publishCommit(rec.Seq, payload) // chained subscribers see the same feed
	s.writeMu.Unlock()

	if walAppended {
		if s.wal.policy == SyncAlways {
			if err := s.wal.waitSynced(rec.Seq); err != nil {
				return rec.Seq, err
			}
		}
		s.maybeTriggerSnapshot()
	}
	return rec.Seq, nil
}

// PinnedSnapshot pins the current committed version and returns its
// commit sequence together with a function that serializes exactly that
// version, however long after the pin it runs. The version is immutable,
// so the serialization races with nothing; shippers use this to stream a
// consistent snapshot to a joining follower while commits continue.
func (s *Store) PinnedSnapshot() (uint64, func(io.Writer) error) {
	v, epoch := s.freeze(), s.epoch.Load()
	return v.seq, func(w io.Writer) error {
		_, err := writeSnapshotVersion(v, epoch, w)
		return err
	}
}

// ResetFromSnapshot replaces the store's entire contents with the
// snapshot read from r (as produced by Save/PinnedSnapshot) and returns
// the snapshot's commit sequence. Unlike Load it does not require an
// empty store: it is the follower's resync path, discarding whatever
// state the replica had — ahead, behind, or diverged — for the
// primary's. In-flight readers are unaffected: they keep their pinned
// versions; the reset is one atomic pointer swap.
//
// On a durable store the new timeline is made crash-safe before it is
// published: the local WAL is reset (all segments removed, a fresh one
// based after the snapshot seq) and the snapshot is written to the data
// directory, in that order — a crash between the two recovers the old
// state cleanly, never a mix. Any failure on that path degrades the
// store: a replica that cannot persist its resync must refuse further
// replication rather than silently diverge after a restart.
func (s *Store) ResetFromSnapshot(r io.Reader) (uint64, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return 0, fmt.Errorf("store: decoding snapshot: %v: %w", err, ErrCorrupt)
	}
	if snap.Version != 1 {
		return 0, fmt.Errorf("store: unsupported snapshot version %d", snap.Version)
	}
	nv, err := buildSnapshotVersion(&snap)
	if err != nil {
		return 0, err
	}
	snapEpoch := snap.Epoch
	if snapEpoch == 0 {
		snapEpoch = 1 // pre-epoch snapshot
	}
	// Lock order: snapMu before writeMu mirrors no existing path (Snapshot
	// takes snapMu alone; commits take writeMu alone) so no cycle is
	// possible; holding both serializes the reset against background
	// snapshots AND commits for its whole critical section.
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if d := s.degraded.Load(); d != nil {
		return 0, &DegradedError{Cause: d.cause, Since: d.since}
	}
	// Fencing, inner layer: a snapshot from an older epoch must never
	// replace a newer timeline, whatever the transport said. (The
	// handshake normally refuses this long before any snapshot flows;
	// this is the last line of defense.)
	if cur := s.epoch.Load(); snapEpoch < cur {
		return 0, &FencedEpochError{Local: cur, Remote: snapEpoch}
	}
	if s.wal != nil {
		if err := s.wal.reset(snap.Seq); err != nil {
			s.degrade(err)
			return 0, fmt.Errorf("store: resetting wal for snapshot resync: %w", err)
		}
		if _, err := s.writeVersionSnapshotFile(filepath.Join(s.dir, snapshotFile), nv, snapEpoch); err != nil {
			s.degrade(err)
			return 0, fmt.Errorf("store: persisting resync snapshot: %w", err)
		}
	}
	s.current.Store(nv)
	s.epoch.Store(snapEpoch) // adopt the primary's timeline, epoch and all
	// Frame subscribers were promised a gapless feed from their cut; a
	// reset moves the head wholesale, so drop them and let them re-cut.
	s.closeSubsLocked()
	return snap.Seq, nil
}

// reset discards the whole log and starts a fresh segment based just
// after lastSeq. Used by snapshot resync: the discarded frames belong to
// an abandoned timeline, so unlike truncateTo this removes segments that
// extend beyond the snapshot too.
func (w *wal) reset(lastSeq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closing {
		return ErrClosed
	}
	if w.appendErr != nil {
		return w.appendErr
	}
	if w.f != nil {
		w.bw.Flush() // best effort; the segment is about to be removed
		w.f.Close()
		w.f, w.bw = nil, nil
	}
	segs := append(append([]walSegment(nil), w.retired...), w.cur)
	for _, seg := range segs {
		if seg.path == "" {
			continue
		}
		if err := w.fs.Remove(seg.path); err != nil && !os.IsNotExist(err) {
			w.appendErr = fmt.Errorf("store: wal reset: %w", err)
			return w.appendErr
		}
	}
	w.retired = nil
	w.bytes.Store(0)
	f, size, err := createWALSegment(w.fs, w.dir, lastSeq+1)
	if err != nil {
		w.appendErr = fmt.Errorf("store: wal reset: %w", err)
		return w.appendErr
	}
	w.f = f
	w.bw = bufio.NewWriter(f)
	w.cur = walSegment{base: lastSeq + 1, path: walSegmentPath(w.dir, lastSeq+1), size: size}
	w.bytes.Store(size)
	w.lastSeq = lastSeq

	// The durability horizon restarts at the snapshot seq: everything at
	// or below it is covered by the snapshot file, everything above does
	// not exist yet on this timeline. Waiters, if any, re-evaluate.
	w.syncMu.Lock()
	w.synced = lastSeq
	w.syncCond.Broadcast()
	w.syncMu.Unlock()
	return nil
}
