package store

import (
	"fmt"
	"sort"
)

// This file implements aggregation pushdown: Count and GroupBy queries
// compiled and executed inside the planner against the transaction's
// pinned MVCC version, so reporting surfaces never materialize rows they
// only need to count. Three strategies exist, and Explain names the one
// chosen:
//
//   - count(maintained): a predicate-free count answered from the
//     version's incrementally maintained live counters (the table count
//     kept by the delta-merge commit path), adjusted by the overlay. O(1)
//     plus the overlay size.
//   - count(postings): a predicate-only count answered from committed
//     index postings lengths adjusted by the overlay's per-key deltas,
//     and a GroupBy over an indexed field answered by walking that
//     index's keys and postings directly. No row is ever read.
//   - scan+fold: residual predicates or value aggregates (Min/Max/Sum)
//     fall back to the streaming iterator with the aggregation folded
//     into it — rows stream through the fold, they are never collected
//     into a caller-side slice.

// AggFunc enumerates aggregate functions.
type AggFunc uint8

const (
	// AggCount counts matching rows.
	AggCount AggFunc = iota
	// AggMin yields the smallest value of the aggregated field among
	// matching rows that carry it (nil when none do).
	AggMin
	// AggMax is the mirror of AggMin.
	AggMax
	// AggSum sums the aggregated field over matching rows that carry it:
	// int64 for integer columns, float64 once any float participates.
	AggSum
)

// String returns the function's name as it appears in errors.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggSum:
		return "sum"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(f))
	}
}

// Agg is one requested aggregate output: a function over a field. Count
// takes no field; Min/Max/Sum require one (IDField aggregates the id).
type Agg struct {
	Func  AggFunc
	Field string
}

// Count returns the row-count aggregate.
func Count() Agg { return Agg{Func: AggCount} }

// Min returns the minimum-value aggregate over field.
func Min(field string) Agg { return Agg{Func: AggMin, Field: field} }

// Max returns the maximum-value aggregate over field.
func Max(field string) Agg { return Agg{Func: AggMax, Field: field} }

// Sum returns the sum aggregate over field.
func Sum(field string) Agg { return Agg{Func: AggSum, Field: field} }

// AggQuery is a Query plus an aggregation shape: an optional grouping
// field and the aggregate outputs to compute per group. Construct with
// Query.Count, Query.GroupBy or Query.Aggregate. OrderBy, Desc, Limit
// and Cursor must be zero — aggregates reduce, they do not paginate.
type AggQuery struct {
	Query   Query
	GroupBy string
	Aggs    []Agg
}

// Count turns the query into a single row count.
func (q Query) Count() AggQuery {
	return AggQuery{Query: q, Aggs: []Agg{Count()}}
}

// GroupBy turns the query into a grouped aggregation over field. With no
// aggs the per-group row count is computed.
func (q Query) GroupBy(field string, aggs ...Agg) AggQuery {
	if len(aggs) == 0 {
		aggs = []Agg{Count()}
	}
	return AggQuery{Query: q, GroupBy: field, Aggs: aggs}
}

// Aggregate turns the query into an ungrouped aggregation. With no aggs
// the row count is computed.
func (q Query) Aggregate(aggs ...Agg) AggQuery {
	if len(aggs) == 0 {
		aggs = []Agg{Count()}
	}
	return AggQuery{Query: q, Aggs: aggs}
}

// Aggregate strategy names as reported by Plan.Agg / Explain output.
const (
	// AggStrategyMaintained answers from the version's maintained live
	// counters without touching index or rows.
	AggStrategyMaintained = "count(maintained)"
	// AggStrategyPostings answers from index postings lengths (or an
	// index key walk for GroupBy) without reading any row.
	AggStrategyPostings = "count(postings)"
	// AggStrategyScanFold streams the planned row iterator and folds the
	// aggregation into it.
	AggStrategyScanFold = "scan+fold"
)

// GroupRow is one group of an aggregate result: the decoded group key
// (nil for the global group of an ungrouped aggregate) and one value per
// requested Agg, in request order — int for Count, int64/float64 for
// Sum, the field's value (or nil) for Min/Max.
type GroupRow struct {
	Key  any
	Aggs []any
}

// Count returns the group's first AggCount output, or 0 when none was
// requested — the common single-count accessor.
func (g GroupRow) Count() int {
	for _, v := range g.Aggs {
		if n, ok := v.(int); ok {
			return n
		}
	}
	return 0
}

// AggResult is an executed aggregate query: its groups ordered by key
// (missing-type rank, then value), and the plan that produced them.
type AggResult struct {
	// Groups holds one row per group. An ungrouped aggregate always has
	// exactly one group (Key nil), even over zero matching rows; a
	// grouped aggregate over zero rows has none.
	Groups []GroupRow

	plan Plan
}

// Plan returns the executed plan, strategy included — the same value
// ExplainAgg reports.
func (r *AggResult) Plan() Plan { return r.plan }

// plannedAgg is the executable form of an aggregate query: the
// underlying row plan (whose Plan carries the chosen strategy) plus the
// validated aggregation shape.
type plannedAgg struct {
	pq        *plannedQuery
	aggs      []Agg
	groupBy   string
	countOnly bool
}

// planAgg validates the aggregate query and picks the strategy:
//
//  1. a bare count with no predicates reads the maintained table counter;
//  2. a count whose plan is fully answered by a unique/secondary index
//     (no residuals) sums postings lengths; a pure per-group count over
//     an indexed field with no predicates walks that index's keys;
//  3. everything else folds the aggregation into the streaming iterator
//     the row planner would have driven anyway.
func (tx *Tx) planAgg(t *table, aq AggQuery) (*plannedAgg, error) {
	q := aq.Query
	bad := func(format string, args ...any) (*plannedAgg, error) {
		args = append(args, ErrBadQuery)
		return nil, fmt.Errorf("store: aggregate %s: "+format+": %w", append([]any{q.Table}, args...)...)
	}
	if q.OrderBy != "" || q.Desc || q.Limit != 0 || q.Cursor != 0 {
		return bad("order/limit/cursor do not apply to aggregates")
	}
	aggs := aq.Aggs
	if len(aggs) == 0 {
		aggs = []Agg{Count()}
	}
	for _, ag := range aggs {
		switch ag.Func {
		case AggCount:
			if ag.Field != "" {
				return bad("count takes no field (got %q)", ag.Field)
			}
		case AggMin, AggMax, AggSum:
			if ag.Field == "" {
				return bad("%s requires a field", ag.Func)
			}
		default:
			return bad("unknown aggregate %v", ag.Func)
		}
	}

	pq, err := tx.plan(t, q)
	if err != nil {
		return nil, err
	}
	countOnly := len(aggs) == 1 && aggs[0].Func == AggCount
	pa := &plannedAgg{pq: pq, aggs: aggs, groupBy: aq.GroupBy, countOnly: countOnly}
	p := &pq.plan
	p.GroupField = aq.GroupBy
	switch {
	case aq.GroupBy == "":
		switch {
		case countOnly && len(q.Where) == 0:
			p.Agg = AggStrategyMaintained
		case countOnly && len(pq.residuals) == 0 &&
			(p.Access == AccessUnique || p.Access == AccessIndex):
			p.Agg = AggStrategyPostings
		default:
			p.Agg = AggStrategyScanFold
		}
	default:
		_, grouped := t.indexes[aq.GroupBy]
		if countOnly && grouped && len(q.Where) == 0 {
			// Walk the grouping index's keys directly; postings lengths
			// are the per-group counts. The access fields describe the
			// walk, not a row driver.
			p.Agg = AggStrategyPostings
			p.Access = AccessIndex
			p.Field = aq.GroupBy
		} else {
			p.Agg = AggStrategyScanFold
		}
	}
	return pa, nil
}

// ExplainAgg plans the aggregate query without executing it and returns
// the Plan — strategy included — the executor would follow, on exactly
// the code path Tx.Aggregate runs.
func (tx *Tx) ExplainAgg(aq AggQuery) (Plan, error) {
	if tx.done {
		return Plan{}, ErrTxDone
	}
	t, err := tx.table(aq.Query.Table)
	if err != nil {
		return Plan{}, err
	}
	pa, err := tx.planAgg(t, aq)
	if err != nil {
		return Plan{}, err
	}
	return pa.pq.plan, nil
}

// Aggregate plans and executes an aggregate query against the
// transaction's pinned snapshot merged with its own pending writes. No
// strategy materializes the matching row set; the counting strategies
// never read a row at all.
func (tx *Tx) Aggregate(aq AggQuery) (*AggResult, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	t, err := tx.table(aq.Query.Table)
	if err != nil {
		return nil, err
	}
	pa, err := tx.planAgg(t, aq)
	if err != nil {
		return nil, err
	}
	res := &AggResult{plan: pa.pq.plan}
	switch pa.pq.plan.Agg {
	case AggStrategyMaintained:
		res.Groups = []GroupRow{{Aggs: []any{tx.liveCount(aq.Query.Table, t)}}}
	case AggStrategyPostings:
		if pa.groupBy == "" {
			n := tx.countKeys(aq.Query.Table, t, pa.pq.plan.Field, pa.pq.keys)
			res.Groups = []GroupRow{{Aggs: []any{n}}}
		} else {
			res.Groups = tx.groupWalk(aq.Query.Table, t, pa.groupBy)
		}
	default:
		groups, err := tx.aggFold(t, pa)
		if err != nil {
			return nil, err
		}
		res.Groups = groups
	}
	return res, nil
}

// QueryCount executes q.Count() and returns the single matching-row
// count — the convenience form reporting call sites use.
func (tx *Tx) QueryCount(q Query) (int, error) {
	res, err := tx.Aggregate(q.Count())
	if err != nil {
		return 0, err
	}
	return res.Groups[0].Count(), nil
}

// countKeys counts the rows holding any of the driver keys on an indexed
// field: committed postings lengths, with committed holders the overlay
// deletes or rewrites subtracted and pending writes holding a key added.
// O(keys + overlay); no row materialization.
func (tx *Tx) countKeys(tableName string, t *table, field string, keys []indexKey) int {
	ix := t.indexes[field]
	n := 0
	for _, key := range keys {
		n += len(ix.postings(key))
	}
	o := tx.pending[tableName]
	if o == nil || (len(o.writes) == 0 && len(o.deletes) == 0) {
		return n
	}
	inSet := func(k indexKey, ok bool) bool {
		if !ok {
			return false
		}
		for _, key := range keys {
			if k == key {
				return true
			}
		}
		return false
	}
	for id := range o.deletes {
		if old := t.get(id); old != nil && inSet(keyFor(old[field])) {
			n--
		}
	}
	for id, pr := range o.writes {
		if old := t.get(id); old != nil && inSet(keyFor(old[field])) {
			n-- // rewritten: the old key occurrence leaves the count...
		}
		if inSet(keyFor(pr[field])) {
			n++ // ...and the pending state re-enters if it still holds one
		}
	}
	return n
}

// groupWalk answers a pure per-group count over an indexed field by
// walking the index's keys: each key's postings length is its group
// count, adjusted by the overlay's per-key deltas. Groups whose live
// count reaches zero are dropped; keys that exist only in the overlay
// are appended. O(distinct keys + overlay); no row is read.
func (tx *Tx) groupWalk(tableName string, t *table, field string) []GroupRow {
	ix := t.indexes[field]
	var delta map[indexKey]int
	if o := tx.pending[tableName]; o != nil && (len(o.writes) != 0 || len(o.deletes) != 0) {
		delta = make(map[indexKey]int)
		for id := range o.deletes {
			if old := t.get(id); old != nil {
				if k, ok := keyFor(old[field]); ok {
					delta[k]--
				}
			}
		}
		for id, pr := range o.writes {
			if old := t.get(id); old != nil {
				if k, ok := keyFor(old[field]); ok {
					delta[k]--
				}
			}
			if k, ok := keyFor(pr[field]); ok {
				delta[k]++
			}
		}
	}
	var groups []GroupRow
	ix.walkKeys(func(key indexKey, ids []int64) bool {
		n := len(ids)
		if delta != nil {
			if d, ok := delta[key]; ok {
				n += d
				delete(delta, key)
			}
		}
		if n > 0 {
			if v, ok := decodeKey(key); ok {
				groups = append(groups, GroupRow{Key: v, Aggs: []any{n}})
			}
		}
		return true
	})
	// Groups introduced solely by this transaction's overlay.
	for key, d := range delta {
		if d > 0 {
			if v, ok := decodeKey(key); ok {
				groups = append(groups, GroupRow{Key: v, Aggs: []any{d}})
			}
		}
	}
	sortGroups(groups)
	return groups
}

// aggCell is the folding state of one Agg within one group.
type aggCell struct {
	n        int     // AggCount
	sumI     int64   // AggSum: integer accumulator
	sumF     float64 // AggSum: float accumulator
	sumFloat bool    // AggSum: a float64 value participated
	ord      any     // AggMin/AggMax: current extremum
}

// aggAcc is one group's accumulator.
type aggAcc struct {
	key   any
	cells []aggCell
}

// aggFold executes the scan+fold strategy: the planner-driven streaming
// iterator (index postings, point ids or bounded scan — whatever the row
// plan chose) with the aggregation folded into the loop. Rows whose
// grouping value is missing or unindexable belong to no group, matching
// the index-walk semantics.
func (tx *Tx) aggFold(t *table, pa *plannedAgg) ([]GroupRow, error) {
	rows := &Rows{tx: tx, t: t, pq: pa.pq, q: pa.pq.query()}
	rows.start()
	var accs map[indexKey]*aggAcc
	var global *aggAcc
	if pa.groupBy == "" {
		global = &aggAcc{cells: make([]aggCell, len(pa.aggs))}
	} else {
		accs = make(map[indexKey]*aggAcc)
	}
	for rows.Next() {
		rec, id := rows.Record(), rows.ID()
		a := global
		if pa.groupBy != "" {
			var gv any = id
			if pa.groupBy != IDField {
				gv = rec[pa.groupBy]
			}
			k, ok := keyFor(gv)
			if !ok {
				continue
			}
			if a = accs[k]; a == nil {
				a = &aggAcc{key: gv, cells: make([]aggCell, len(pa.aggs))}
				accs[k] = a
			}
		}
		for i, ag := range pa.aggs {
			c := &a.cells[i]
			switch ag.Func {
			case AggCount:
				c.n++
				continue
			}
			var v any = id
			if ag.Field != IDField {
				v = rec[ag.Field]
			}
			if v == nil {
				continue
			}
			switch ag.Func {
			case AggSum:
				switch x := v.(type) {
				case int64:
					c.sumI += x
				case float64:
					c.sumF += x
					c.sumFloat = true
				}
			case AggMin:
				if c.ord == nil || compareFieldValues(v, c.ord) < 0 {
					c.ord = v
				}
			case AggMax:
				if c.ord == nil || compareFieldValues(v, c.ord) > 0 {
					c.ord = v
				}
			}
		}
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	if global != nil {
		return []GroupRow{finalizeAcc(pa.aggs, global)}, nil
	}
	groups := make([]GroupRow, 0, len(accs))
	for _, a := range accs {
		groups = append(groups, finalizeAcc(pa.aggs, a))
	}
	sortGroups(groups)
	return groups, nil
}

// finalizeAcc converts an accumulator into its result row.
func finalizeAcc(aggs []Agg, a *aggAcc) GroupRow {
	out := make([]any, len(aggs))
	for i, ag := range aggs {
		c := &a.cells[i]
		switch ag.Func {
		case AggCount:
			out[i] = c.n
		case AggSum:
			if c.sumFloat {
				out[i] = c.sumF + float64(c.sumI)
			} else {
				out[i] = c.sumI
			}
		case AggMin, AggMax:
			out[i] = c.ord
		}
	}
	return GroupRow{Key: a.key, Aggs: out}
}

// sortGroups orders result groups deterministically by key, with the
// same total order the sort path uses for field values.
func sortGroups(groups []GroupRow) {
	sort.Slice(groups, func(i, j int) bool {
		return compareFieldValues(groups[i].Key, groups[j].Key) < 0
	})
}

// query reconstructs the Query an already-planned aggregate executes its
// row iterator with. Pagination fields are zero by aggregate validation.
func (pq *plannedQuery) query() Query {
	return Query{Table: pq.plan.Table}
}
