package store

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// scanFoldCount is the hand-rolled baseline every counting strategy must
// reproduce: full ordered scan plus Go-side predicate filtering.
func scanFoldCount(t *testing.T, tx *Tx, table string, keep func(Record) bool) int {
	t.Helper()
	n := 0
	if err := tx.ScanRef(table, func(r Record) bool {
		if keep(r) {
			n++
		}
		return true
	}); err != nil {
		t.Fatalf("ScanRef: %v", err)
	}
	return n
}

// scanFoldGroups is the grouped baseline: scan, bucket by the field's
// value, drop rows without an indexable grouping value.
func scanFoldGroups(t *testing.T, tx *Tx, table, field string, keep func(Record) bool) map[indexKey]int {
	t.Helper()
	out := make(map[indexKey]int)
	if err := tx.ScanRef(table, func(r Record) bool {
		if keep == nil || keep(r) {
			if k, ok := keyFor(r[field]); ok {
				out[k]++
			}
		}
		return true
	}); err != nil {
		t.Fatalf("ScanRef: %v", err)
	}
	return out
}

func groupsToMap(t *testing.T, groups []GroupRow) map[indexKey]int {
	t.Helper()
	out := make(map[indexKey]int, len(groups))
	for _, g := range groups {
		k, ok := keyFor(g.Key)
		if !ok {
			t.Fatalf("group key %v (%T) is not indexable", g.Key, g.Key)
		}
		if _, dup := out[k]; dup {
			t.Fatalf("duplicate group key %v", g.Key)
		}
		out[k] = g.Count()
	}
	return out
}

func aggPlan(t *testing.T, tx *Tx, aq AggQuery) Plan {
	t.Helper()
	p, err := tx.ExplainAgg(aq)
	if err != nil {
		t.Fatalf("ExplainAgg: %v", err)
	}
	return p
}

func TestAggStrategySelection(t *testing.T) {
	s := queryStore(t, 200, 7)
	defer s.Close()
	err := s.View(func(tx *Tx) error {
		cases := []struct {
			name string
			aq   AggQuery
			want string
		}{
			{"bare count", Query{Table: "sample"}.Count(), AggStrategyMaintained},
			{"indexed eq count", Query{Table: "sample", Where: []Pred{Eq("species", "human")}}.Count(), AggStrategyPostings},
			{"unique eq count", Query{Table: "sample", Where: []Pred{Eq("name", "s7")}}.Count(), AggStrategyPostings},
			{"indexed in count", Query{Table: "sample", Where: []Pred{In("project", int64(1), int64(2))}}.Count(), AggStrategyPostings},
			{"residual count", Query{Table: "sample", Where: []Pred{Eq("species", "human"), Eq("grade", int64(2))}}.Count(), AggStrategyScanFold},
			{"unindexed count", Query{Table: "sample", Where: []Pred{Eq("grade", int64(2))}}.Count(), AggStrategyScanFold},
			{"group indexed", Query{Table: "sample"}.GroupBy("species"), AggStrategyPostings},
			{"group unindexed", Query{Table: "sample"}.GroupBy("grade"), AggStrategyScanFold},
			{"group with where", Query{Table: "sample", Where: []Pred{Eq("project", int64(1))}}.GroupBy("species"), AggStrategyScanFold},
			{"group value agg", Query{Table: "sample"}.GroupBy("species", Count(), Sum("weight")), AggStrategyScanFold},
			{"ungrouped sum", Query{Table: "sample"}.Aggregate(Sum("weight")), AggStrategyScanFold},
		}
		for _, c := range cases {
			if got := aggPlan(t, tx, c.aq).Agg; got != c.want {
				t.Errorf("%s: strategy %q, want %q", c.name, got, c.want)
			}
		}

		// The executed plan is the explained plan.
		for _, c := range cases {
			res, err := tx.Aggregate(c.aq)
			if err != nil {
				t.Fatalf("%s: Aggregate: %v", c.name, err)
			}
			if res.Plan().Agg != c.want {
				t.Errorf("%s: executed strategy %q, want %q", c.name, res.Plan().Agg, c.want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggExplainString(t *testing.T) {
	s := queryStore(t, 50, 5)
	defer s.Close()
	err := s.View(func(tx *Tx) error {
		for _, c := range []struct {
			aq   AggQuery
			want []string
		}{
			{Query{Table: "sample"}.Count(), []string{"sample: agg=count(maintained)", "est="}},
			{Query{Table: "sample", Where: []Pred{Eq("species", "human")}}.Count(),
				[]string{"agg=count(postings)", "via index(species)"}},
			{Query{Table: "sample"}.GroupBy("species"),
				[]string{"agg=count(postings)", "by=species", "via index(species)"}},
			{Query{Table: "sample", Where: []Pred{Eq("species", "human"), Eq("grade", int64(1))}}.Count(),
				[]string{"agg=scan+fold", "via index(species)", "residual=[grade]"}},
		} {
			got := aggPlan(t, tx, c.aq).String()
			for _, frag := range c.want {
				if !strings.Contains(got, frag) {
					t.Errorf("plan %q missing %q", got, frag)
				}
			}
			if strings.Contains(got, "order=") || strings.Contains(got, "limit=") {
				t.Errorf("aggregate plan %q leaks order/limit rendering", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggValidation(t *testing.T) {
	s := queryStore(t, 10, 2)
	defer s.Close()
	err := s.View(func(tx *Tx) error {
		bad := []AggQuery{
			{Query: Query{Table: "sample", Limit: 5}, Aggs: []Agg{Count()}},
			{Query: Query{Table: "sample", OrderBy: "name"}, Aggs: []Agg{Count()}},
			{Query: Query{Table: "sample", Cursor: 3}, Aggs: []Agg{Count()}},
			{Query: Query{Table: "sample", Desc: true}, Aggs: []Agg{Count()}},
			{Query: Query{Table: "sample"}, Aggs: []Agg{{Func: AggCount, Field: "weight"}}},
			{Query: Query{Table: "sample"}, Aggs: []Agg{{Func: AggSum}}},
			{Query: Query{Table: "sample"}, Aggs: []Agg{{Func: AggFunc(42)}}},
		}
		for i, aq := range bad {
			if _, err := tx.Aggregate(aq); !errors.Is(err, ErrBadQuery) {
				t.Errorf("case %d: got %v, want ErrBadQuery", i, err)
			}
			if _, err := tx.ExplainAgg(aq); !errors.Is(err, ErrBadQuery) {
				t.Errorf("case %d: Explain got %v, want ErrBadQuery", i, err)
			}
		}
		if _, err := tx.Aggregate(Query{Table: "nope"}.Count()); !errors.Is(err, ErrNoTable) {
			t.Errorf("unknown table: got %v, want ErrNoTable", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggCountEquivalence(t *testing.T) {
	s := queryStore(t, 500, 9)
	defer s.Close()
	err := s.View(func(tx *Tx) error {
		cases := []struct {
			q    Query
			keep func(Record) bool
		}{
			{Query{Table: "sample"}, func(Record) bool { return true }},
			{Query{Table: "sample", Where: []Pred{Eq("species", "human")}},
				func(r Record) bool { return r["species"] == "human" }},
			{Query{Table: "sample", Where: []Pred{In("project", int64(2), int64(5))}},
				func(r Record) bool { return r["project"] == int64(2) || r["project"] == int64(5) }},
			{Query{Table: "sample", Where: []Pred{Eq("species", "mouse"), Eq("grade", int64(3))}},
				func(r Record) bool { return r["species"] == "mouse" && r["grade"] == int64(3) }},
			{Query{Table: "sample", Where: []Pred{Eq("name", "s123")}},
				func(r Record) bool { return r["name"] == "s123" }},
			{Query{Table: "sample", Where: []Pred{Eq("species", "missing")}},
				func(Record) bool { return false }},
		}
		for i, c := range cases {
			got, err := tx.QueryCount(c.q)
			if err != nil {
				t.Fatalf("case %d: QueryCount: %v", i, err)
			}
			if want := scanFoldCount(t, tx, "sample", c.keep); got != want {
				t.Errorf("case %d: count %d, want %d", i, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggGroupWalkEquivalence(t *testing.T) {
	s := queryStore(t, 400, 11)
	defer s.Close()
	err := s.View(func(tx *Tx) error {
		for _, field := range []string{"species", "project", "grade"} {
			res, err := tx.Aggregate(Query{Table: "sample"}.GroupBy(field))
			if err != nil {
				t.Fatalf("GroupBy(%s): %v", field, err)
			}
			got := groupsToMap(t, res.Groups)
			want := scanFoldGroups(t, tx, "sample", field, nil)
			if len(got) != len(want) {
				t.Errorf("GroupBy(%s): %d groups, want %d", field, len(got), len(want))
			}
			for k, n := range want {
				if got[k] != n {
					t.Errorf("GroupBy(%s): key %s count %d, want %d", field, k, got[k], n)
				}
			}
			// Groups come back ordered by key.
			for i := 1; i < len(res.Groups); i++ {
				if compareFieldValues(res.Groups[i-1].Key, res.Groups[i].Key) >= 0 {
					t.Errorf("GroupBy(%s): groups not strictly ordered at %d (%v >= %v)",
						field, i, res.Groups[i-1].Key, res.Groups[i].Key)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggValueAggregates(t *testing.T) {
	s := queryStore(t, 300, 6)
	defer s.Close()
	err := s.View(func(tx *Tx) error {
		res, err := tx.Aggregate(Query{Table: "sample"}.Aggregate(Count(), Sum("weight"), Min("weight"), Max("weight"), Max("id")))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Groups) != 1 {
			t.Fatalf("ungrouped aggregate: %d groups, want 1", len(res.Groups))
		}
		g := res.Groups[0]
		var wantSum float64
		if err := tx.ScanRef("sample", func(r Record) bool {
			wantSum += r["weight"].(float64)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if g.Aggs[0].(int) != 300 {
			t.Errorf("count %v, want 300", g.Aggs[0])
		}
		if got := g.Aggs[1].(float64); got != wantSum {
			t.Errorf("sum %v, want %v", got, wantSum)
		}
		if got := g.Aggs[2].(float64); got != 1 {
			t.Errorf("min %v, want 1", got)
		}
		if got := g.Aggs[3].(float64); got != 300 {
			t.Errorf("max %v, want 300", got)
		}
		if got := g.Aggs[4].(int64); got != 300 {
			t.Errorf("max id %v, want 300", got)
		}

		// Integer sums stay int64; Min/Max over an absent field are nil.
		res, err = tx.Aggregate(Query{Table: "sample", Where: []Pred{Eq("species", "human")}}.Aggregate(Sum("grade"), Min("nope")))
		if err != nil {
			t.Fatal(err)
		}
		var wantGrade int64
		n := 0
		if err := tx.ScanRef("sample", func(r Record) bool {
			if r["species"] == "human" {
				wantGrade += r["grade"].(int64)
				n++
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if got := res.Groups[0].Aggs[0].(int64); got != wantGrade {
			t.Errorf("sum(grade) %v, want %v", got, wantGrade)
		}
		if res.Groups[0].Aggs[1] != nil {
			t.Errorf("min over absent field = %v, want nil", res.Groups[0].Aggs[1])
		}

		// An ungrouped aggregate over zero rows still yields its one group.
		res, err = tx.Aggregate(Query{Table: "sample", Where: []Pred{Eq("species", "missing")}}.Aggregate(Count(), Sum("weight")))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Groups) != 1 || res.Groups[0].Count() != 0 {
			t.Fatalf("empty aggregate: %+v, want one zero group", res.Groups)
		}
		// A grouped aggregate over zero rows has no groups.
		res, err = tx.Aggregate(Query{Table: "sample", Where: []Pred{Eq("species", "missing")}}.GroupBy("project"))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Groups) != 0 {
			t.Fatalf("empty grouped aggregate: %d groups, want 0", len(res.Groups))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAggOverlayVisibility verifies every strategy sees the transaction's
// own pending writes: inserts, deletes and rewrites that move rows
// between keys, including groups that exist only in the overlay.
func TestAggOverlayVisibility(t *testing.T) {
	s := queryStore(t, 120, 4)
	defer s.Close()
	err := s.Update(func(tx *Tx) error {
		// Delete two humans, rewrite a mouse into a human, insert a frog.
		humanIDs, err := tx.Lookup("sample", "species", "human")
		if err != nil {
			t.Fatal(err)
		}
		mouseIDs, err := tx.Lookup("sample", "species", "mouse")
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range humanIDs[:2] {
			if err := tx.Delete("sample", id); err != nil {
				t.Fatal(err)
			}
		}
		rewrite, err := tx.Get("sample", mouseIDs[0])
		if err != nil {
			t.Fatal(err)
		}
		rewrite["species"] = "human"
		if err := tx.Put("sample", mouseIDs[0], rewrite); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Insert("sample", Record{"name": "frog1", "project": int64(1), "species": "frog", "grade": int64(0), "weight": 1.5}); err != nil {
			t.Fatal(err)
		}

		// Maintained table count: 120 - 2 deletes + 1 insert.
		if n, err := tx.QueryCount(Query{Table: "sample"}); err != nil || n != 119 {
			t.Fatalf("live count = %d (%v), want 119", n, err)
		}
		// Postings count adjusted by the overlay.
		wantHuman := len(humanIDs) - 2 + 1
		aq := Query{Table: "sample", Where: []Pred{Eq("species", "human")}}.Count()
		if got := aggPlan(t, tx, aq.Query.Count()).Agg; got != AggStrategyPostings {
			t.Fatalf("overlay count strategy %q", got)
		}
		if n, err := tx.QueryCount(aq.Query); err != nil || n != wantHuman {
			t.Fatalf("human count = %d (%v), want %d", n, err, wantHuman)
		}
		if n, err := tx.QueryCount(Query{Table: "sample", Where: []Pred{Eq("species", "mouse")}}); err != nil || n != len(mouseIDs)-1 {
			t.Fatalf("mouse count = %d (%v), want %d", n, err, len(mouseIDs)-1)
		}
		// Overlay-only group surfaces in the walk; all groups match scan.
		res, err := tx.Aggregate(Query{Table: "sample"}.GroupBy("species"))
		if err != nil {
			t.Fatal(err)
		}
		got := groupsToMap(t, res.Groups)
		if got[indexKey("s:frog")] != 1 {
			t.Fatalf("overlay-only group frog = %d, want 1", got[indexKey("s:frog")])
		}
		want := make(map[indexKey]int)
		rows, err := tx.Query(Query{Table: "sample"})
		if err != nil {
			t.Fatal(err)
		}
		for rows.Next() {
			if k, ok := keyFor(rows.Record()["species"]); ok {
				want[k]++
			}
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("group count %d, want %d", len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Errorf("group %s = %d, want %d", k, got[k], n)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// After commit the same numbers come from the committed structures.
	err = s.View(func(tx *Tx) error {
		if n, err := tx.QueryCount(Query{Table: "sample"}); err != nil || n != 119 {
			t.Fatalf("committed live count = %d (%v), want 119", n, err)
		}
		res, err := tx.Aggregate(Query{Table: "sample"}.GroupBy("species"))
		if err != nil {
			t.Fatal(err)
		}
		got := groupsToMap(t, res.Groups)
		want := scanFoldGroups(t, tx, "sample", "species", nil)
		for k, n := range want {
			if got[k] != n {
				t.Errorf("committed group %s = %d, want %d", k, got[k], n)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAggMaintainedCountersDurable verifies the maintained counters the
// counting strategies read — the table live count and the per-key
// postings lengths — survive a WAL-replay reopen in exact agreement with
// a ground-truth scan.
func TestAggMaintainedCountersDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DurabilityOptions{Sync: SyncAlways, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("w"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("w", "state", false); err != nil {
		t.Fatal(err)
	}
	states := []string{"pending", "processing", "ready", "failed"}
	rng := rand.New(rand.NewSource(42))
	live := 0
	for round := 0; round < 5; round++ {
		err := s.Update(func(tx *Tx) error {
			for i := 0; i < 60; i++ {
				if _, err := tx.Insert("w", Record{"state": states[rng.Intn(len(states))]}); err != nil {
					return err
				}
				live++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// Churn: delete a few, flip a few states.
		err = s.Update(func(tx *Tx) error {
			ids, err := tx.Lookup("w", "state", states[rng.Intn(len(states))])
			if err != nil || len(ids) < 4 {
				return err
			}
			for _, id := range ids[:2] {
				if err := tx.Delete("w", id); err != nil {
					return err
				}
				live--
			}
			for _, id := range ids[2:4] {
				r, err := tx.Get("w", id)
				if err != nil {
					return err
				}
				r["state"] = states[rng.Intn(len(states))]
				if err := tx.Put("w", id, r); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	check := func(s *Store, phase string) {
		t.Helper()
		err := s.View(func(tx *Tx) error {
			if n := tx.Count("w"); n != live {
				t.Errorf("%s: maintained count %d, want %d", phase, n, live)
			}
			res, err := tx.Aggregate(Query{Table: "w"}.GroupBy("state"))
			if err != nil {
				return err
			}
			if res.Plan().Agg != AggStrategyPostings {
				t.Errorf("%s: strategy %q", phase, res.Plan().Agg)
			}
			got := groupsToMap(t, res.Groups)
			want := scanFoldGroups(t, tx, "w", "state", nil)
			if len(got) != len(want) {
				t.Errorf("%s: %d groups, want %d", phase, len(got), len(want))
			}
			total := 0
			for k, n := range want {
				if got[k] != n {
					t.Errorf("%s: group %s = %d, want %d", phase, k, got[k], n)
				}
				total += n
			}
			if total != live {
				t.Errorf("%s: groups sum to %d, want %d", phase, total, live)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	check(s, "before close")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir, DurabilityOptions{Sync: SyncAlways, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Schema is the caller's to re-register after Open (the core wiring
	// does this); CreateIndex rebuilds postings from the recovered rows.
	if err := s.CreateIndex("w", "state", false); err != nil {
		t.Fatal(err)
	}
	check(s, "after recovery")
}

// TestAggMaintainedCountersReplica verifies a follower that applies raw
// replication frames reproduces the same maintained counters the primary
// reports, commit by commit.
func TestAggMaintainedCountersReplica(t *testing.T) {
	primary := newTestStore(t, "w")
	if err := primary.CreateIndex("w", "state", false); err != nil {
		t.Fatal(err)
	}
	replica := newTestStore(t, "w")
	if err := replica.CreateIndex("w", "state", false); err != nil {
		t.Fatal(err)
	}
	replica.SetReplica(true)
	sub, err := primary.SubscribeCommits(64)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	states := []string{"pending", "processing", "ready"}
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 8; round++ {
		err := primary.Update(func(tx *Tx) error {
			for i := 0; i < 20; i++ {
				if _, err := tx.Insert("w", Record{"state": states[rng.Intn(len(states))]}); err != nil {
					return err
				}
			}
			ids, err := tx.Lookup("w", "state", states[rng.Intn(len(states))])
			if err != nil {
				return err
			}
			if len(ids) > 3 {
				if err := tx.Delete("w", ids[0]); err != nil {
					return err
				}
				r, err := tx.Get("w", ids[1])
				if err != nil {
					return err
				}
				r["state"] = states[rng.Intn(len(states))]
				if err := tx.Put("w", ids[1], r); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for len(sub.C) > 0 {
		frame := <-sub.C
		if _, err := replica.ApplyReplicated(frame.Payload); err != nil {
			t.Fatal(err)
		}
	}

	var want, got map[indexKey]int
	var wantCount, gotCount int
	if err := primary.View(func(tx *Tx) error {
		wantCount = tx.Count("w")
		res, err := tx.Aggregate(Query{Table: "w"}.GroupBy("state"))
		if err != nil {
			return err
		}
		want = groupsToMap(t, res.Groups)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := replica.View(func(tx *Tx) error {
		gotCount = tx.Count("w")
		res, err := tx.Aggregate(Query{Table: "w"}.GroupBy("state"))
		if err != nil {
			return err
		}
		got = groupsToMap(t, res.Groups)
		// Ground truth on the replica's own structures.
		truth := scanFoldGroups(t, tx, "w", "state", nil)
		for k, n := range truth {
			if got[k] != n {
				t.Errorf("replica group %s = %d, scan says %d", k, got[k], n)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if gotCount != wantCount {
		t.Errorf("replica count %d, primary %d", gotCount, wantCount)
	}
	if len(got) != len(want) {
		t.Fatalf("replica %d groups, primary %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("group %s: replica %d, primary %d", k, got[k], n)
		}
	}
}

// TestAggregateUnderWriterLoad hammers aggregates from readers while a
// writer churns rows, checking snapshot-internal consistency: within one
// transaction the grouped counts must sum to the live count, whatever
// version it pinned. Run with -race this also proves the lock-free read
// path.
func TestAggregateUnderWriterLoad(t *testing.T) {
	s := queryStore(t, 200, 5)
	defer s.Close()
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		species := []string{"human", "mouse", "arabidopsis", "rat"}
		for i := 0; !stop.Load(); i++ {
			err := s.Update(func(tx *Tx) error {
				if _, err := tx.Insert("sample", Record{
					"name":    fmt.Sprintf("load-%d", i),
					"project": int64(rng.Intn(5) + 1),
					"species": species[rng.Intn(len(species))],
					"grade":   int64(rng.Intn(5)),
					"weight":  rng.Float64(),
				}); err != nil {
					return err
				}
				ids, err := tx.Lookup("sample", "species", species[rng.Intn(len(species))])
				if err != nil {
					return err
				}
				if len(ids) > 50 {
					return tx.Delete("sample", ids[rng.Intn(len(ids))])
				}
				return nil
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()

	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		err := s.View(func(tx *Tx) error {
			total, err := tx.QueryCount(Query{Table: "sample"})
			if err != nil {
				return err
			}
			res, err := tx.Aggregate(Query{Table: "sample"}.GroupBy("species"))
			if err != nil {
				return err
			}
			sum := 0
			for _, g := range res.Groups {
				sum += g.Count()
			}
			if sum != total {
				t.Errorf("groups sum %d != live count %d within one snapshot", sum, total)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
}
