package store

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWithRetryContendedCounter is the canonical hot-record workload:
// many writers increment one counter through optimistic transactions.
// WithRetry must lose no update and must not retry unboundedly.
func TestWithRetryContendedCounter(t *testing.T) {
	s := New()
	if err := s.CreateTable("counters"); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(func(tx *Tx) error {
		_, err := tx.Insert("counters", Record{"n": int64(0)})
		return err
	}); err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 8, 25
	var attempts atomic.Int64
	var wg sync.WaitGroup
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := WithRetry(ctx, s, func(tx *Tx) error {
					attempts.Add(1)
					r, err := tx.Get("counters", 1)
					if err != nil {
						return err
					}
					return tx.Put("counters", 1, Record{"n": r.Int("n") + 1})
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("contended increment failed: %v", err)
	}

	r, err := s.Get("counters", 1)
	if err != nil {
		t.Fatal(err)
	}
	const want = workers * perWorker
	if got := r.Int("n"); got != want {
		t.Fatalf("lost updates: counter is %d, want %d", got, want)
	}
	// Bounded retries: with backoff, total attempts stay within a small
	// multiple of the committed increments. The bound is loose (20x) —
	// it exists to catch livelock, not to benchmark.
	if a := attempts.Load(); a > want*20 {
		t.Fatalf("unbounded retrying: %d attempts for %d commits", a, want)
	}
}

// TestWithRetryContextBounds proves the loop is context-aware: a
// transaction that always conflicts gives up with the context's error,
// wrapped with the attempt count.
func TestWithRetryContextBounds(t *testing.T) {
	s := New()
	if err := s.CreateTable("counters"); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(func(tx *Tx) error {
		_, err := tx.Insert("counters", Record{"n": int64(0)})
		return err
	}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := WithRetry(ctx, s, func(tx *Tx) error {
		r, err := tx.Get("counters", 1)
		if err != nil {
			return err
		}
		// Sabotage: a competing Update commits between this read and our
		// Commit, so validation always sees a newer version.
		if err := s.Update(func(utx *Tx) error {
			return utx.Put("counters", 1, Record{"n": r.Int("n") + 1})
		}); err != nil {
			return err
		}
		return tx.Put("counters", 1, Record{"n": r.Int("n") + 1})
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

// TestWithRetryPassesThroughErrors: fn's own failures are not retried.
func TestWithRetryPassesThroughErrors(t *testing.T) {
	s := New()
	boom := errors.New("boom")
	calls := 0
	err := WithRetry(context.Background(), s, func(tx *Tx) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want fn's error", err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
}
