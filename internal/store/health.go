package store

import (
	"errors"
	"fmt"
	"syscall"
	"time"
)

// ErrDegraded is the sentinel matched (errors.Is) by every error a
// degraded store returns from its write paths. A store degrades — once,
// permanently for the life of the process — when the durable write path
// fails: a WAL append or fsync error, a poisoned log, or ENOSPC while
// snapshotting. Reads are unaffected: the MVCC read path touches only
// immutable memory and keeps serving the last committed version. The only
// way out is to fix the disk and restart; recovery then restores the
// committed prefix.
var ErrDegraded = errors.New("store degraded: writes disabled")

// DegradedError reports that the store has entered degraded read-only
// mode, wrapping the root cause. errors.Is(err, ErrDegraded) matches it.
type DegradedError struct {
	Cause error     // the failure that degraded the store
	Since time.Time // when the store degraded
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("store degraded to read-only since %s: %v",
		e.Since.Format(time.RFC3339), e.Cause)
}

func (e *DegradedError) Unwrap() error { return e.Cause }

// Is makes errors.Is(err, ErrDegraded) match without string comparison.
func (e *DegradedError) Is(target error) bool { return target == ErrDegraded }

// degradedState is the immutable record of the first durable-path failure.
type degradedState struct {
	cause error
	since time.Time
}

// Health is a point-in-time report of the store's ability to accept
// writes. Reads are always available while the process lives, so there is
// no read-side health to report.
type Health struct {
	OK     bool      `json:"ok"`
	Reason string    `json:"reason,omitempty"` // root cause; empty when OK
	Since  time.Time `json:"since,omitzero"`   // when the store degraded
}

// Health reports whether the store is accepting writes, and if not, why
// and since when. Lock-free; safe to call from health endpoints at any
// rate.
func (s *Store) Health() Health {
	if d := s.degraded.Load(); d != nil {
		return Health{OK: false, Reason: d.cause.Error(), Since: d.since}
	}
	return Health{OK: true}
}

// writeGate is checked at the top of every write path: a degraded store
// fails writes fast, before any lock is taken, so a saturated write load
// against a dead disk cannot pile up on the writer mutex. A store in
// replica mode refuses local writes the same way — only the replication
// stream (ApplyReplicated, ResetFromSnapshot) mutates a replica.
func (s *Store) writeGate() error {
	if s.replica.Load() {
		return ErrReplica
	}
	if d := s.degraded.Load(); d != nil {
		return &DegradedError{Cause: d.cause, Since: d.since}
	}
	return nil
}

// degrade transitions the store to degraded read-only mode. Only the
// first cause wins; later failures (usually cascades of the first) are
// dropped. Safe to call from any goroutine, including the WAL syncer and
// the snapshot loop.
func (s *Store) degrade(cause error) {
	if cause == nil || errors.Is(cause, ErrClosed) {
		return
	}
	st := &degradedState{cause: cause, since: time.Now()}
	s.degraded.CompareAndSwap(nil, st)
}

// walFailure is the WAL's onError hook: the log has poisoned or an fsync
// failed, so acknowledged in-memory state can no longer be made durable.
// Degrade first, then tell the host process.
func (s *Store) walFailure(err error) {
	s.degrade(err)
	if s.onError != nil {
		s.onError(err)
	}
}

// degradeIfNoSpace degrades the store when a snapshot failure is ENOSPC:
// with no room for a snapshot the WAL can never be truncated, and the
// disk that is full is the same disk the WAL is appending to — failing
// fast beats filling the remaining space with log frames.
func (s *Store) degradeIfNoSpace(err error) {
	if err != nil && errors.Is(err, syscall.ENOSPC) {
		s.degrade(err)
	}
}
