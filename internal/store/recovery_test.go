package store

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
)

// TestKillNineRecovery proves the acceptance property end to end: a real
// child process commits through the durable write path under SyncAlways,
// acknowledging each commit on stdout only after Update returns (i.e.
// after the group-commit fsync). The parent SIGKILLs it mid-stream, then
// recovers the directory and checks that every acknowledged transaction
// survived and that the recovered state is a contiguous committed prefix.
//
// The child re-executes this test binary with BFABRIC_WAL_CHILD set; see
// killNineChild below.
func TestKillNineRecovery(t *testing.T) {
	if os.Getenv("BFABRIC_WAL_CHILD") == "1" {
		killNineChild()
		return
	}
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	dir := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run=TestKillNineRecovery")
	cmd.Env = append(os.Environ(), "BFABRIC_WAL_CHILD=1", "BFABRIC_WAL_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	lastAcked := 0
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "committed ") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimPrefix(line, "committed "))
		if err != nil {
			t.Fatalf("bad ack line %q: %v", line, err)
		}
		lastAcked = n
		if lastAcked >= 30 {
			break
		}
	}
	if lastAcked == 0 {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("child acknowledged nothing")
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	cmd.Wait()

	s, err := Open(dir, DurabilityOptions{Sync: SyncAlways, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("recovery after kill -9: %v", err)
	}
	defer s.Close()
	n := s.Count("sample")
	if n < lastAcked {
		t.Fatalf("recovered %d commits, child had %d acknowledged durable", n, lastAcked)
	}
	// Committed-prefix: ids 1..n all present, nothing beyond.
	for id := 1; id <= n; id++ {
		r, err := s.Get("sample", int64(id))
		if err != nil {
			t.Fatalf("hole in committed prefix at id %d: %v", id, err)
		}
		if r.Int("n") != int64(id) {
			t.Fatalf("row %d carries n=%d", id, r.Int("n"))
		}
	}
}

// killNineChild is the victim process: it opens the durable store named by
// BFABRIC_WAL_DIR and commits forever, acknowledging each durable commit
// on stdout, until the parent kills it.
func killNineChild() {
	dir := os.Getenv("BFABRIC_WAL_DIR")
	s, err := Open(dir, DurabilityOptions{Sync: SyncAlways, SnapshotEvery: -1})
	if err != nil {
		fmt.Println("child open error:", err)
		os.Exit(1)
	}
	if err := s.CreateTable("sample"); err != nil {
		fmt.Println("child table error:", err)
		os.Exit(1)
	}
	for i := 1; i <= 100000; i++ {
		err := s.Update(func(tx *Tx) error {
			_, err := tx.Insert("sample", Record{"n": int64(i)})
			return err
		})
		if err != nil {
			fmt.Println("child commit error:", err)
			os.Exit(1)
		}
		fmt.Printf("committed %d\n", i) // os.Stdout is unbuffered
	}
	os.Exit(0)
}
