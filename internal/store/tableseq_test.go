package store

import (
	"path/filepath"
	"testing"
)

// TestTableSeqTracksTouchedTablesOnly pins the contract behind the
// portal's session-user cache and conditional responses: a commit bumps
// the stamp of exactly the tables it touches, and untouched tables carry
// their old stamp forward.
func TestTableSeqTracksTouchedTablesOnly(t *testing.T) {
	s := New()
	if err := s.CreateTable("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("b"); err != nil {
		t.Fatal(err)
	}
	if got := s.TableSeq("a"); got != 0 {
		t.Fatalf("fresh table seq = %d, want 0", got)
	}
	if err := s.Update(func(tx *Tx) error {
		_, err := tx.Insert("a", Record{"v": int64(1)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	seqA := s.CommitSeq()
	if got := s.TableSeq("a"); got != seqA {
		t.Errorf("TableSeq(a) = %d, want %d", got, seqA)
	}
	if got := s.TableSeq("b"); got != 0 {
		t.Errorf("TableSeq(b) = %d, want 0 (untouched)", got)
	}
	// Commits against b leave a's stamp alone.
	for i := 0; i < 3; i++ {
		if err := s.Update(func(tx *Tx) error {
			_, err := tx.Insert("b", Record{"v": int64(i)})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.TableSeq("a"); got != seqA {
		t.Errorf("TableSeq(a) after b-only commits = %d, want %d", got, seqA)
	}
	if got := s.TableSeq("b"); got != s.CommitSeq() {
		t.Errorf("TableSeq(b) = %d, want %d", got, s.CommitSeq())
	}
	if got := s.TableSeq("missing"); got != 0 {
		t.Errorf("TableSeq(missing) = %d, want 0", got)
	}

	// The pinned-version view agrees and is stable under later commits.
	tx, err := s.Begin(true)
	if err != nil {
		t.Fatal(err)
	}
	pinnedB := tx.TableSeq("b")
	if pinnedB != s.CommitSeq() {
		t.Errorf("pinned TableSeq(b) = %d, want %d", pinnedB, s.CommitSeq())
	}
	if err := s.Update(func(tx *Tx) error {
		_, err := tx.Insert("b", Record{"v": int64(99)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := tx.TableSeq("b"); got != pinnedB {
		t.Errorf("pinned TableSeq(b) moved to %d after concurrent commit", got)
	}
	tx.Rollback()

	// A delete touches the table too.
	seqB := s.TableSeq("b")
	if err := s.Update(func(tx *Tx) error {
		return tx.Delete("b", 1)
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.TableSeq("b"); got <= seqB {
		t.Errorf("TableSeq(b) after delete = %d, want > %d", got, seqB)
	}
}

// TestTableSeqSurvivesRecovery proves the stamps stay conservative (never
// too low) across snapshot load and WAL replay: after reopening, a
// touched table's stamp is at least the seq of its last mutation.
func TestTableSeqSurvivesRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	s, err := Open(dir, DurabilityOptions{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(func(tx *Tx) error {
		_, err := tx.Insert("a", Record{"v": int64(1)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	want := s.TableSeq("a")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, DurabilityOptions{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.TableSeq("a"); got < want {
		t.Errorf("recovered TableSeq(a) = %d, want >= %d", got, want)
	}
	if got := s2.TableSeq("a"); got > s2.CommitSeq() {
		t.Errorf("recovered TableSeq(a) = %d beyond CommitSeq %d", got, s2.CommitSeq())
	}
}
