//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDataDir takes an exclusive advisory lock on <dir>/LOCK so that two
// processes can never have the same data directory's WAL open for
// appending (the second writer would interleave frames and its recovery
// pass could truncate records the first already acknowledged). The lock
// dies with the process — kill -9 included — so a crash never leaves a
// stale lock to clean up. Fails fast instead of blocking.
func lockDataDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: data directory %s is in use by another process (flock: %w)", dir, err)
	}
	return f, nil
}
