//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
)

// lockDataDir takes an exclusive advisory lock on <dir>/LOCK so that two
// processes can never have the same data directory's WAL open for
// appending (the second writer would interleave frames and its recovery
// pass could truncate records the first already acknowledged). The lock
// dies with the process — kill -9 included — so a crash never leaves a
// stale lock to clean up. Fails fast instead of blocking.
//
// The holder's pid is written into the file (informational only — the
// flock, not the content, is the lock) so that a second opener can say
// who is in the way instead of surfacing a bare EWOULDBLOCK.
func lockDataDir(dir string) (*os.File, error) {
	path := filepath.Join(dir, "LOCK")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if pid, ok := lockHolderPID(path); ok {
			return nil, fmt.Errorf("store: data directory %s is locked by process %d (flock: %w)", dir, pid, err)
		}
		return nil, fmt.Errorf("store: data directory %s is in use by another process (flock: %w)", dir, err)
	}
	// Best effort: a failure to record the pid only costs diagnostics.
	if err := f.Truncate(0); err == nil {
		f.WriteAt([]byte(strconv.Itoa(os.Getpid())+"\n"), 0)
		f.Sync()
	}
	return f, nil
}

// lockHolderPID reads the pid the current holder recorded in the lock
// file. ok is false when the file is unreadable or holds no pid (e.g. a
// holder from before pids were recorded).
func lockHolderPID(path string) (int, bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	pid, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil || pid <= 0 {
		return 0, false
	}
	return pid, true
}

// DirInUse reports whether another live process holds the data
// directory's lock, and that process's pid when it recorded one (pid 0
// means a holder that left no pid). It never blocks and never steals the
// lock: the probe lock is released immediately.
func DirInUse(dir string) (pid int, inUse bool) {
	path := filepath.Join(dir, "LOCK")
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return 0, false // no lock file: nothing can be holding it
	}
	defer f.Close()
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		pid, _ := lockHolderPID(path)
		return pid, true
	}
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	return 0, false
}
