package store

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"os"
	"sync"
	"syscall"
)

// ErrInjected is the root cause of every failure a FaultFS injects (other
// than FaultENOSPC, which injects syscall.ENOSPC so callers exercise
// their real disk-full handling). Match with errors.Is.
var ErrInjected = errors.New("injected fault")

// OpKind classifies the mutating filesystem operations a FaultFS counts
// and can fail. Read-side operations always pass through: the recovery
// contract is about what survives a dying disk, and reads of immutable
// pages keep working while a process lives.
type OpKind int

const (
	OpWrite OpKind = iota
	OpSync
	OpCreate // OpenFile with O_CREATE, and MkdirAll
	OpRename
	OpRemove
	OpTruncate
)

func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpCreate:
		return "create"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// FaultMode selects how an armed fault fails.
type FaultMode int

const (
	// FaultErr fails the operation outright with ErrInjected.
	FaultErr FaultMode = iota
	// FaultENOSPC fails the operation with syscall.ENOSPC.
	FaultENOSPC
	// FaultTorn writes roughly half the buffer before failing — the
	// shape of a crash mid-write. On non-write operations it behaves
	// like FaultErr.
	FaultTorn
)

// FaultFS wraps an FS and injects deterministic failures, modelling a
// disk that dies at a chosen moment: every mutating operation is counted,
// a fault can be armed at an absolute operation index (FailAt) or at the
// next operation of a kind (FailNext), and once any fault fires the disk
// stays dead — all subsequent mutating operations fail with the same
// error — until Clear simulates a repair. This is the engine of the
// crash-point campaign test: re-run the same workload failing at every
// index in turn, then reopen on a healthy FS and check the committed
// prefix survived.
type FaultFS struct {
	base FS

	mu     sync.Mutex
	ops    int               // mutating operations observed so far
	failAt map[int]FaultMode // armed by absolute op index
	next   map[OpKind]FaultMode
	dead   error // set when a fault fires; fails everything after
}

// NewFaultFS wraps base (nil means the real filesystem).
func NewFaultFS(base FS) *FaultFS {
	if base == nil {
		base = osFS{}
	}
	return &FaultFS{
		base:   base,
		failAt: make(map[int]FaultMode),
		next:   make(map[OpKind]FaultMode),
	}
}

// FailAt arms a fault at the op-th mutating operation (0-based, counted
// from construction or the last Clear).
func (f *FaultFS) FailAt(op int, mode FaultMode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt[op] = mode
}

// FailNext arms a one-shot fault on the next operation of the given kind.
func (f *FaultFS) FailNext(kind OpKind, mode FaultMode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.next[kind] = mode
}

// Ops returns the number of mutating operations observed so far.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Failed reports whether a fault has fired, and the error it injected.
func (f *FaultFS) Failed() (error, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead, f.dead != nil
}

// Clear disarms pending faults and revives a dead disk. The op counter
// keeps running.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt = make(map[int]FaultMode)
	f.next = make(map[OpKind]FaultMode)
	f.dead = nil
}

// check counts one mutating operation and decides its fate: nil error for
// a healthy passthrough, torn=true for a half-write-then-fail, or the
// injected error. Firing any fault kills the disk.
func (f *FaultFS) check(kind OpKind) (err error, torn bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead != nil {
		return f.dead, false
	}
	idx := f.ops
	f.ops++
	mode, armed := f.failAt[idx]
	if !armed {
		mode, armed = f.next[kind]
		if armed {
			delete(f.next, kind)
		}
	}
	if !armed {
		return nil, false
	}
	var cause error
	switch mode {
	case FaultENOSPC:
		cause = syscall.ENOSPC
	default:
		cause = ErrInjected
	}
	f.dead = fmt.Errorf("faultfs: %s op %d: %w", kind, idx, cause)
	return f.dead, mode == FaultTorn && kind == OpWrite
}

func (f *FaultFS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	if flag&os.O_CREATE != 0 {
		if err, _ := f.check(OpCreate); err != nil {
			return nil, err
		}
	}
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err, _ := f.check(OpRename); err != nil {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if err, _ := f.check(OpRemove); err != nil {
		return err
	}
	return f.base.Remove(name)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if err, _ := f.check(OpTruncate); err != nil {
		return err
	}
	return f.base.Truncate(name, size)
}

func (f *FaultFS) Stat(name string) (iofs.FileInfo, error) { return f.base.Stat(name) }

func (f *FaultFS) ReadDir(name string) ([]iofs.DirEntry, error) { return f.base.ReadDir(name) }

func (f *FaultFS) MkdirAll(name string, perm iofs.FileMode) error {
	if err, _ := f.check(OpCreate); err != nil {
		return err
	}
	return f.base.MkdirAll(name, perm)
}

// faultFile routes a handle's writes and fsyncs through the fault plan.
type faultFile struct {
	fs *FaultFS
	f  File
}

func (ff *faultFile) Read(p []byte) (int, error) { return ff.f.Read(p) }

func (ff *faultFile) Write(p []byte) (int, error) {
	err, torn := ff.fs.check(OpWrite)
	if err == nil {
		return ff.f.Write(p)
	}
	if torn && len(p) > 1 {
		// A crash mid-write: a prefix of the buffer reaches the file.
		n, werr := ff.f.Write(p[:len(p)/2])
		if werr != nil {
			return n, werr
		}
		return n, err
	}
	return 0, err
}

func (ff *faultFile) Sync() error {
	if err, _ := ff.fs.check(OpSync); err != nil {
		return err
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }
