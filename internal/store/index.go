package store

import (
	"fmt"
	"sort"
	"strconv"
	"time"
)

// indexKey is the canonical string form of an indexed field value. Using a
// typed string keeps index maps simple while still distinguishing types
// (e.g. int64(1) never collides with "1").
type indexKey string

// keyFor converts a field value to its index key. The bool result reports
// whether the value is indexable; slices are not.
func keyFor(v any) (indexKey, bool) {
	switch x := v.(type) {
	case nil:
		return "", false
	case string:
		return indexKey("s:" + x), true
	case int64:
		return indexKey("i:" + strconv.FormatInt(x, 10)), true
	case float64:
		return indexKey("f:" + strconv.FormatFloat(x, 'g', -1, 64)), true
	case bool:
		if x {
			return "b:1", true
		}
		return "b:0", true
	case time.Time:
		return indexKey("t:" + x.UTC().Format(time.RFC3339Nano)), true
	default:
		return "", false
	}
}

// decodeKey converts an index key back to the field value it encodes —
// the inverse of keyFor, used by grouped aggregates to report group keys
// without reading any row. Every key keyFor produces decodes.
func decodeKey(k indexKey) (any, bool) {
	if len(k) < 2 || k[1] != ':' {
		return nil, false
	}
	body := string(k[2:])
	switch k[0] {
	case 's':
		return body, true
	case 'i':
		n, err := strconv.ParseInt(body, 10, 64)
		return n, err == nil
	case 'f':
		f, err := strconv.ParseFloat(body, 64)
		return f, err == nil
	case 'b':
		return body == "1", true
	case 't':
		ts, err := time.Parse(time.RFC3339Nano, body)
		return ts, err == nil
	}
	return nil, false
}

// Index postings are spread over hash shards arranged as a two-level
// radix: ixGroupCount groups of ixGroupSize shard maps each. Sharding
// exists for the copy-on-write commit path: a commit privatizes only the
// shards whose keys it touches, so the per-commit clone cost is
// O(touched keys * keys-per-shard) instead of O(all distinct keys) — the
// difference between constant and linear write amplification on tables
// with high-cardinality indexes. The two levels keep the clone itself
// tiny: copying an index head is ixGroupCount pointers, and privatizing
// one shard copies a single ixGroupSize-entry group plus that shard map.
const (
	ixGroupBits     = 6
	ixGroupCount    = 1 << ixGroupBits
	ixShardBits     = 4
	ixGroupSize     = 1 << ixShardBits
	indexShardCount = ixGroupCount * ixGroupSize
)

// ixGroup is one run of shard maps; entries are nil until first used.
type ixGroup [ixGroupSize]map[indexKey][]int64

// shardOf hashes an index key to its shard (FNV-1a). The group is
// shard >> ixShardBits, the slot within it shard & (ixGroupSize-1).
func shardOf(key indexKey) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h & (indexShardCount - 1))
}

// index is a secondary index over one field of a table. Postings are kept
// as sorted id slices inside hash-sharded maps, maintained incrementally
// on insert/remove, so lookups return ordered results without re-sorting.
// Unique indexes additionally enforce at most one row per key.
//
// Like every version-reachable structure, a published index is immutable:
// the in-place methods below are only legal while the index is private
// (recovery, Load, CreateIndex builds); commits go through cowIndex,
// which privatizes groups, shards and postings before touching them.
type index struct {
	field  string
	unique bool
	// groups holds the shard maps; nil groups (and nil shard maps inside
	// a group) are all-empty.
	groups []*ixGroup
}

func newIndex(field string, unique bool) *index {
	return &index{field: field, unique: unique, groups: make([]*ixGroup, ixGroupCount)}
}

// clone returns a copy of the index sharing every shard group (and thus
// every postings slice) with the original. Used by the copy-on-write
// commit path, which privatizes groups and shards before mutating them
// (see cowIndex); the in-place methods must never run on a clone.
func (ix *index) clone() *index {
	return &index{
		field:  ix.field,
		unique: ix.unique,
		groups: append(make([]*ixGroup, 0, ixGroupCount), ix.groups...),
	}
}

// postings returns the sorted ids holding key, shared — callers must not
// mutate.
func (ix *index) postings(key indexKey) []int64 {
	s := shardOf(key)
	g := ix.groups[s>>ixShardBits]
	if g == nil {
		return nil
	}
	m := g[s&(ixGroupSize-1)]
	if m == nil {
		return nil
	}
	return m[key]
}

// setPostings installs (or, with nil ids, removes) a key's postings
// IN PLACE. Only legal on a private index.
func (ix *index) setPostings(key indexKey, ids []int64) {
	s := shardOf(key)
	g := ix.groups[s>>ixShardBits]
	if g == nil {
		if ids == nil {
			return
		}
		g = new(ixGroup)
		ix.groups[s>>ixShardBits] = g
	}
	m := g[s&(ixGroupSize-1)]
	if m == nil {
		if ids == nil {
			return
		}
		m = make(map[indexKey][]int64)
		g[s&(ixGroupSize-1)] = m
	}
	if ids == nil {
		delete(m, key)
		return
	}
	m[key] = ids
}

func (ix *index) insert(r Record, id int64) error {
	v, ok := r[ix.field]
	if !ok {
		return nil // absent field is simply not indexed
	}
	key, ok := keyFor(v)
	if !ok {
		return nil
	}
	return ix.insertKey(key, v, id)
}

// insertKey adds id under an already-computed key IN PLACE. Only legal on
// a private index.
func (ix *index) insertKey(key indexKey, v any, id int64) error {
	ids := ix.postings(key)
	if err := ix.checkUniqueKey(ids, v, id); err != nil {
		return err
	}
	ix.setPostings(key, insertSorted(ids, id))
	return nil
}

// checkUniqueKey enforces the at-most-one-row rule for unique indexes
// given a key's current postings.
func (ix *index) checkUniqueKey(ids []int64, v any, id int64) error {
	n := len(ids)
	if ix.unique && n > 0 && !(n == 1 && ids[0] == id) {
		return fmt.Errorf("field %q value %v: %w", ix.field, v, ErrUnique)
	}
	return nil
}

func (ix *index) remove(r Record, id int64) {
	v, ok := r[ix.field]
	if !ok {
		return
	}
	key, ok := keyFor(v)
	if !ok {
		return
	}
	ix.removeKey(key, id)
}

// removeKey drops id from an already-computed key's postings IN PLACE.
// Only legal on a private index.
func (ix *index) removeKey(key indexKey, id int64) {
	ids := removeSorted(ix.postings(key), id)
	if len(ids) == 0 {
		ix.setPostings(key, nil)
		return
	}
	ix.setPostings(key, ids)
}

// walkKeys calls fn for every key with postings, in shard order (that
// is, unordered with respect to key values), sharing each postings slice
// (callers must not mutate). fn returning false stops the walk. This is
// the grouped-count access path: the distinct keys of the index and
// their live-row counts, without touching a single record.
func (ix *index) walkKeys(fn func(key indexKey, ids []int64) bool) {
	for _, g := range ix.groups {
		if g == nil {
			continue
		}
		for _, m := range g {
			for key, ids := range m {
				if len(ids) == 0 {
					continue
				}
				if !fn(key, ids) {
					return
				}
			}
		}
	}
}

// lookup returns the sorted IDs of rows whose indexed field equals v. The
// result is a fresh slice the caller may keep.
func (ix *index) lookup(v any) []int64 {
	key, ok := keyFor(v)
	if !ok {
		return nil
	}
	ids := ix.postings(key)
	if len(ids) == 0 {
		return nil
	}
	out := make([]int64, len(ids))
	copy(out, ids)
	return out
}

// checkUnique verifies that writing record r under id would not violate the
// unique constraint, given the committed index state plus the transaction's
// pending overlay (pending/deleted describe rows written/deleted in the
// transaction, keyed by id).
func (ix *index) checkUnique(r Record, id int64, pending map[int64]Record, deleted map[int64]bool) error {
	if !ix.unique {
		return nil
	}
	v, ok := r[ix.field]
	if !ok {
		return nil
	}
	key, ok := keyFor(v)
	if !ok {
		return nil
	}
	// Committed holders of this key.
	for _, holder := range ix.postings(key) {
		if holder == id {
			continue
		}
		if deleted[holder] {
			continue // will be gone at commit
		}
		if pr, ok := pending[holder]; ok {
			// Holder is being rewritten in this tx; does it still hold the key?
			if nk, ok2 := keyFor(pr[ix.field]); ok2 && nk == key {
				return fmt.Errorf("field %q value %v held by row %d: %w", ix.field, v, holder, ErrUnique)
			}
			continue
		}
		return fmt.Errorf("field %q value %v held by row %d: %w", ix.field, v, holder, ErrUnique)
	}
	// Other pending writes in the same transaction.
	for oid, pr := range pending {
		if oid == id || deleted[oid] {
			continue
		}
		if nk, ok2 := keyFor(pr[ix.field]); ok2 && nk == key {
			return fmt.Errorf("field %q value %v pending on row %d: %w", ix.field, v, oid, ErrUnique)
		}
	}
	return nil
}

// insertSorted adds id to the ascending slice, keeping it sorted and
// duplicate-free. Serial IDs almost always append; the general case falls
// back to a binary-search insertion.
func insertSorted(ids []int64, id int64) []int64 {
	n := len(ids)
	if n == 0 || id > ids[n-1] {
		return append(ids, id)
	}
	i := sort.Search(n, func(k int) bool { return ids[k] >= id })
	if i < n && ids[i] == id {
		return ids // already present
	}
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// removeSorted drops id from the ascending slice, if present.
func removeSorted(ids []int64, id int64) []int64 {
	n := len(ids)
	i := sort.Search(n, func(k int) bool { return ids[k] >= id })
	if i == n || ids[i] != id {
		return ids
	}
	copy(ids[i:], ids[i+1:])
	return ids[:n-1]
}
