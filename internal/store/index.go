package store

import (
	"fmt"
	"strconv"
	"time"
)

// indexKey is the canonical string form of an indexed field value. Using a
// typed string keeps index maps simple while still distinguishing types
// (e.g. int64(1) never collides with "1").
type indexKey string

// keyFor converts a field value to its index key. The bool result reports
// whether the value is indexable; slices are not.
func keyFor(v any) (indexKey, bool) {
	switch x := v.(type) {
	case nil:
		return "", false
	case string:
		return indexKey("s:" + x), true
	case int64:
		return indexKey("i:" + strconv.FormatInt(x, 10)), true
	case float64:
		return indexKey("f:" + strconv.FormatFloat(x, 'g', -1, 64)), true
	case bool:
		if x {
			return "b:1", true
		}
		return "b:0", true
	case time.Time:
		return indexKey("t:" + x.UTC().Format(time.RFC3339Nano)), true
	default:
		return "", false
	}
}

// index is a secondary index over one field of a table. Postings are kept as
// sorted id slices, maintained incrementally on insert/remove, so lookups
// return ordered results without re-sorting. Unique indexes additionally
// enforce at most one row per key.
type index struct {
	field  string
	unique bool
	byKey  map[indexKey][]int64
}

func newIndex(field string, unique bool) *index {
	return &index{field: field, unique: unique, byKey: make(map[indexKey][]int64)}
}

func (ix *index) insert(r Record, id int64) error {
	v, ok := r[ix.field]
	if !ok {
		return nil // absent field is simply not indexed
	}
	key, ok := keyFor(v)
	if !ok {
		return nil
	}
	ids := ix.byKey[key]
	n := len(ids)
	if ix.unique && n > 0 && !(n == 1 && ids[0] == id) {
		return fmt.Errorf("field %q value %v: %w", ix.field, v, ErrUnique)
	}
	ix.byKey[key] = insertSorted(ids, id)
	return nil
}

func (ix *index) remove(r Record, id int64) {
	v, ok := r[ix.field]
	if !ok {
		return
	}
	key, ok := keyFor(v)
	if !ok {
		return
	}
	ids := removeSorted(ix.byKey[key], id)
	if len(ids) == 0 {
		delete(ix.byKey, key)
		return
	}
	ix.byKey[key] = ids
}

// lookup returns the sorted IDs of rows whose indexed field equals v. The
// result is a fresh slice the caller may keep.
func (ix *index) lookup(v any) []int64 {
	key, ok := keyFor(v)
	if !ok {
		return nil
	}
	ids := ix.byKey[key]
	if len(ids) == 0 {
		return nil
	}
	out := make([]int64, len(ids))
	copy(out, ids)
	return out
}

// checkUnique verifies that writing record r under id would not violate the
// unique constraint, given the committed index state plus the transaction's
// pending overlay (pendingSet/pendingDel describe rows written/deleted in
// the transaction, keyed by id).
func (ix *index) checkUnique(r Record, id int64, pending map[int64]Record, deleted map[int64]bool) error {
	if !ix.unique {
		return nil
	}
	v, ok := r[ix.field]
	if !ok {
		return nil
	}
	key, ok := keyFor(v)
	if !ok {
		return nil
	}
	// Committed holders of this key.
	for _, holder := range ix.byKey[key] {
		if holder == id {
			continue
		}
		if deleted[holder] {
			continue // will be gone at commit
		}
		if pr, ok := pending[holder]; ok {
			// Holder is being rewritten in this tx; does it still hold the key?
			if nk, ok2 := keyFor(pr[ix.field]); ok2 && nk == key {
				return fmt.Errorf("field %q value %v held by row %d: %w", ix.field, v, holder, ErrUnique)
			}
			continue
		}
		return fmt.Errorf("field %q value %v held by row %d: %w", ix.field, v, holder, ErrUnique)
	}
	// Other pending writes in the same transaction.
	for oid, pr := range pending {
		if oid == id || deleted[oid] {
			continue
		}
		if nk, ok2 := keyFor(pr[ix.field]); ok2 && nk == key {
			return fmt.Errorf("field %q value %v pending on row %d: %w", ix.field, v, oid, ErrUnique)
		}
	}
	return nil
}
