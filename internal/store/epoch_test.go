package store

import (
	"bytes"
	"errors"
	"testing"
)

// TestEpochAdvance pins the in-memory epoch arithmetic: stores start at
// epoch 1, AdvanceEpoch goes to max(current, floor)+1, and the floor
// fences an observed-higher epoch even when the local one lags.
func TestEpochAdvance(t *testing.T) {
	s := New()
	if got := s.Epoch(); got != 1 {
		t.Fatalf("fresh store epoch = %d, want 1", got)
	}
	if e, err := s.AdvanceEpoch(0); err != nil || e != 2 {
		t.Fatalf("AdvanceEpoch(0) = %d, %v, want 2", e, err)
	}
	if e, err := s.AdvanceEpoch(10); err != nil || e != 11 {
		t.Fatalf("AdvanceEpoch(10) = %d, %v, want 11", e, err)
	}
	if got := s.Epoch(); got != 11 {
		t.Fatalf("epoch after advances = %d, want 11", got)
	}
}

// TestEpochDurable: a promotion survives restart even when the snapshot
// on disk predates it (the EPOCH file, not the snapshot, carries it),
// and InspectDir reports what recovery would restore.
func TestEpochDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DurabilityOptions{Sync: SyncOff, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("tt"); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(func(tx *Tx) error {
		_, err := tx.Insert("tt", Record{"k": "v"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil { // snapshot at epoch 1
		t.Fatal(err)
	}
	if e, err := s.AdvanceEpoch(0); err != nil || e != 2 {
		t.Fatalf("AdvanceEpoch = %d, %v, want 2", e, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := InspectDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 2 {
		t.Fatalf("InspectDir epoch = %d, want 2", info.Epoch)
	}

	s2, err := Open(dir, DurabilityOptions{Sync: SyncOff, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Epoch(); got != 2 {
		t.Fatalf("reopened epoch = %d, want 2", got)
	}
	if got := s2.Count("tt"); got != 1 {
		t.Fatalf("reopened rows = %d, want 1", got)
	}
}

// TestSnapshotCarriesEpoch: Save/Load and ResetFromSnapshot both adopt
// the producing store's epoch, so convergence (byte-identical Save)
// includes the fencing token.
func TestSnapshotCarriesEpoch(t *testing.T) {
	src := New()
	if err := src.CreateTable("tt"); err != nil {
		t.Fatal(err)
	}
	if _, err := src.AdvanceEpoch(2); err != nil { // epoch 3
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}

	viaLoad := New()
	if err := viaLoad.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := viaLoad.Epoch(); got != 3 {
		t.Fatalf("Load-adopted epoch = %d, want 3", got)
	}

	viaReset := New()
	if _, err := viaReset.ResetFromSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := viaReset.Epoch(); got != 3 {
		t.Fatalf("Reset-adopted epoch = %d, want 3", got)
	}

	var a, b bytes.Buffer
	if err := src.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := viaReset.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshot round-trip through ResetFromSnapshot is not byte-identical")
	}
}

// TestResetFencesOlderEpoch: the inner fencing layer — a snapshot from
// an older timeline must never replace a newer one, and the refusal is
// the typed error.
func TestResetFencesOlderEpoch(t *testing.T) {
	old := New()
	var snap bytes.Buffer
	if err := old.Save(&snap); err != nil { // epoch 1
		t.Fatal(err)
	}

	s := New()
	if _, err := s.AdvanceEpoch(0); err != nil { // epoch 2
		t.Fatal(err)
	}
	_, err := s.ResetFromSnapshot(bytes.NewReader(snap.Bytes()))
	if !errors.Is(err, ErrFencedEpoch) {
		t.Fatalf("ResetFromSnapshot with stale epoch = %v, want ErrFencedEpoch", err)
	}
	var fe *FencedEpochError
	if !errors.As(err, &fe) || fe.Local != 2 || fe.Remote != 1 {
		t.Fatalf("fenced error detail = %+v, want Local 2 Remote 1", fe)
	}
	if got := s.Epoch(); got != 2 {
		t.Fatalf("epoch after refused reset = %d, want 2", got)
	}
}
