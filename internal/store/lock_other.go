//go:build !unix

package store

import "os"

// lockDataDir is a no-op on platforms without flock semantics; the
// single-writer discipline is the operator's to uphold there.
func lockDataDir(dir string) (*os.File, error) { return nil, nil }

// DirInUse cannot be answered without flock; report not-in-use.
func DirInUse(dir string) (pid int, inUse bool) { return 0, false }
