package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Compile-time check that the passthrough satisfies the seam the WAL,
// snapshot writer and recovery run on.
var _ FS = osFS{}

// SyncPolicy controls when WAL appends are forced to stable storage.
type SyncPolicy int

const (
	// SyncAlways makes every Update wait until its WAL record is fsynced
	// before returning. Concurrent commits are coalesced into a single
	// fsync by the group-commit batcher, so the cost is shared.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs the WAL in the background every SyncEvery.
	// Commits return as soon as their record reaches the OS; a crash of
	// the machine (not just the process) can lose the last interval.
	SyncInterval
	// SyncOff never fsyncs during operation (a final fsync still happens
	// on Close). Records are flushed to the OS on every commit, so a
	// process kill loses nothing; an OS crash can lose anything the
	// kernel had not written back yet.
	SyncOff
)

// ParseSyncPolicy converts the command-line spelling of a sync policy
// ("always", "interval", "off") to its SyncPolicy value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("store: unknown sync policy %q (want always, interval or off)", s)
}

// String returns the command-line spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// On-disk layout of a data directory:
//
//	<dir>/snapshot.gob           full store snapshot, atomically replaced
//	<dir>/wal-<base>.log         WAL segments; base = first commit seq inside
//
// Each segment starts with an 8-byte magic and holds a sequence of frames:
//
//	[4-byte little-endian payload length][4-byte CRC32 (IEEE) of payload][payload]
//
// where the payload is a self-contained binary encoding of one walRecord
// (see walcodec.go). Frames are self-delimiting and individually
// checksummed so that replay can stop exactly at a torn or corrupt tail
// (committed-prefix semantics).
const (
	walMagic     = "BFWAL001"
	walPrefix    = "wal-"
	walSuffix    = ".log"
	snapshotFile = "snapshot.gob"

	walFrameHeaderSize = 8
	// walMaxFrameSize bounds a single frame; anything larger is treated as
	// corruption rather than an allocation request.
	walMaxFrameSize = 1 << 30
)

// walRecord is the replayable unit of one committed transaction: the full
// record-set the commit installed, in apply order.
type walRecord struct {
	// Seq is the commit sequence number; records are strictly contiguous.
	Seq    uint64
	Tables []walTableChange
}

// walTableChange carries one table's portion of a commit: deletions first,
// then whole-record writes (the store's install order), plus the table's
// serial-id high-water mark.
type walTableChange struct {
	Name    string
	NextID  int64 // post-commit nextID; 0 = unchanged
	Deletes []int64
	Writes  []rowSnapshot
}

// walSegment describes one on-disk WAL segment.
type walSegment struct {
	base uint64 // first commit seq this segment may contain
	path string
	size int64
}

func walSegmentPath(dir string, base uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", walPrefix, base, walSuffix))
}

// parseWALSegmentName extracts the base seq from a segment file name.
func parseWALSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, walPrefix) || !strings.HasSuffix(name, walSuffix) {
		return 0, false
	}
	base, err := strconv.ParseUint(name[len(walPrefix):len(name)-len(walSuffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return base, true
}

// wal is the append-only write-ahead log of a durable store, with a
// group-commit batcher: appends happen under mu in commit order, and a
// single syncer goroutine turns any number of pending appends into one
// fsync. Committers running under SyncAlways wait on syncCond until the
// syncer has covered their sequence number.
type wal struct {
	dir     string
	fs      FS // filesystem seam; osFS in production
	policy  SyncPolicy
	every   time.Duration // fsync period under SyncInterval
	onError func(error)   // invoked once when the log fails; may be nil

	// mu protects the current segment (file, writer, sizes) and the
	// retired-segment list. Appends, rotation and fsync all run under it;
	// commits already serialize on the store's writer mutex, so this
	// mutex is uncontended except against the syncer.
	mu        sync.Mutex
	f         File
	bw        *bufio.Writer
	cur       walSegment
	retired   []walSegment // ascending base order
	lastSeq   uint64       // last appended commit seq
	closing   bool
	appendErr error // sticky: a failed append poisons the log

	// syncMu guards the durability horizon. Lock order: mu before syncMu.
	syncMu   sync.Mutex
	syncCond *sync.Cond
	synced   uint64 // highest seq known to be on stable storage
	syncErr  error  // sticky fsync failure
	stopped  bool

	bytes  atomic.Int64  // total live WAL bytes across all segments
	fsyncs atomic.Uint64 // number of fsync calls issued

	wake chan struct{} // buffered(1): nudges the syncer
	stop chan struct{}
	done chan struct{}
}

func newWAL(dir string, fsys FS, policy SyncPolicy, every time.Duration, onError func(error)) *wal {
	if fsys == nil {
		fsys = osFS{}
	}
	w := &wal{
		dir:     dir,
		fs:      fsys,
		policy:  policy,
		every:   every,
		onError: onError,
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	w.syncCond = sync.NewCond(&w.syncMu)
	return w
}

// start launches the background syncer. Must be called exactly once, after
// the current segment is open.
func (w *wal) start() { go w.syncLoop() }

// append writes the frame for seq to the current segment. It does not
// fsync; durability is the syncer's job. Called with the store's
// writer mutex held, so seqs arrive in strictly increasing order.
//
// Under SyncInterval and SyncOff the frame is flushed to the OS before
// returning, so even an unsynced commit survives a process kill. Under
// SyncAlways the bytes may stay in the user-space buffer: the committer
// does not return until the syncer has flushed AND fsynced past its seq,
// so nothing observable is lost — and the commit hot path sheds a write
// syscall, which is worth it at group-commit rates.
func (w *wal) append(seq uint64, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closing {
		return ErrClosed
	}
	if w.appendErr != nil {
		return w.appendErr
	}
	if w.f == nil { // a failed rotation poisons the log; belt and braces
		return fmt.Errorf("store: wal has no active segment")
	}
	if len(payload) > walMaxFrameSize {
		// Replay would reject the frame as corruption, silently dropping
		// an acknowledged commit — refuse it here, before anything is
		// installed or written.
		return fmt.Errorf("store: transaction of %d bytes exceeds the wal frame limit (%d)", len(payload), walMaxFrameSize)
	}
	var hdr [walFrameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	err := w.writeAll(hdr[:], payload)
	if err == nil && w.policy != SyncAlways {
		err = w.bw.Flush()
	}
	if err != nil {
		// A partial frame may now be on disk. Poison the log: accepting
		// further appends would bury valid records behind a corrupt frame.
		w.appendErr = fmt.Errorf("store: wal append: %w", err)
		return w.appendErr
	}
	w.lastSeq = seq
	n := int64(walFrameHeaderSize + len(payload))
	w.cur.size += n
	w.bytes.Add(n)
	return nil
}

func (w *wal) writeAll(chunks ...[]byte) error {
	for _, c := range chunks {
		if _, err := w.bw.Write(c); err != nil {
			return err
		}
	}
	return nil
}

// waitSynced blocks until seq is durable, the WAL fails, or it is closed.
// This is the commit side of group commit: any number of committers park
// here and are released together by one fsync.
func (w *wal) waitSynced(seq uint64) error {
	select {
	case w.wake <- struct{}{}:
	default: // a sync round is already pending; it will cover us
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	for w.synced < seq && w.syncErr == nil && !w.stopped {
		w.syncCond.Wait()
	}
	if w.syncErr != nil {
		return w.syncErr
	}
	if w.synced < seq {
		return ErrClosed
	}
	return nil
}

func (w *wal) syncLoop() {
	defer close(w.done)
	var tickC <-chan time.Time
	if w.policy == SyncInterval {
		t := time.NewTicker(w.every)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-w.stop:
			w.sync() // final fsync: clean shutdown is always durable
			return
		case <-w.wake:
			w.drainCommitters()
			w.sync()
		case <-tickC:
			w.sync()
		}
	}
}

// drainCommitters widens the group-commit batch: before fsyncing, the
// syncer yields its scheduling quantum a few times so committers that are
// already runnable — typically the herd just released by the previous
// broadcast — get to append first and ride this fsync instead of the next
// one. With no runnable committers the yields return immediately, so an
// idle or serial workload pays nanoseconds, not latency.
func (w *wal) drainCommitters() {
	if w.policy != SyncAlways {
		return
	}
	for i := 0; i < 4; i++ {
		runtime.Gosched()
	}
}

// sync flushes the current segment, then fsyncs it with mu RELEASED, so
// new appends land while the disk works. When the fsync returns, the
// durability horizon advances to everything flushed before it started and
// every committer waiting at or below it is released together. The
// appends that accumulated during the fsync form the next round's batch —
// that overlap is what turns N concurrent commits into ~1 fsync per disk
// round trip instead of N.
func (w *wal) sync() {
	w.mu.Lock()
	target := w.lastSeq
	f := w.f
	var err error
	if f != nil {
		err = w.bw.Flush()
	}
	w.mu.Unlock()

	w.syncMu.Lock()
	pending := w.synced < target && w.syncErr == nil
	w.syncMu.Unlock()
	if f == nil || !pending {
		return
	}
	if err == nil {
		err = f.Sync()
		w.fsyncs.Add(1)
		if err != nil {
			// The segment may have been rotated — sealed with its own
			// fsync and closed — between our capture and this call;
			// everything up to target is durable and the error is an
			// artifact of the stale descriptor.
			w.mu.Lock()
			rotated := w.f != f
			w.mu.Unlock()
			if rotated {
				err = nil
			}
		}
	}

	w.syncMu.Lock()
	firstFailure := false
	if err != nil {
		if w.syncErr == nil {
			w.syncErr = fmt.Errorf("store: wal fsync: %w", err)
			firstFailure = true
		}
		err = w.syncErr
	} else if target > w.synced {
		w.synced = target
	}
	w.syncCond.Broadcast()
	w.syncMu.Unlock()

	if firstFailure {
		// Fail closed: a log that cannot reach stable storage must stop
		// accepting commits — otherwise, under SyncInterval/SyncOff (and
		// even under SyncAlways, where the install precedes the wait),
		// acknowledged in-memory state would diverge from durable state
		// without bound. And tell the host process now, not at Close.
		w.mu.Lock()
		if w.appendErr == nil {
			w.appendErr = err
		}
		w.mu.Unlock()
		if w.onError != nil {
			w.onError(err)
		}
	}
}

// rotateLocked seals the current segment (flush, fsync, close) and opens a
// fresh one whose base is the next commit seq. Callers hold mu.
func (w *wal) rotateLocked() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.fsyncs.Add(1)
	if err := w.f.Close(); err != nil {
		return err
	}
	w.retired = append(w.retired, w.cur)
	base := w.lastSeq + 1
	f, size, err := createWALSegment(w.fs, w.dir, base)
	if err != nil {
		// No segment to append to: poison the log so subsequent commits
		// fail cleanly instead of dereferencing a nil writer.
		w.f, w.bw = nil, nil
		w.appendErr = fmt.Errorf("store: wal rotation: %w", err)
		return err
	}
	w.f = f
	w.bw = bufio.NewWriter(f)
	w.cur = walSegment{base: base, path: walSegmentPath(w.dir, base), size: size}
	w.bytes.Add(size)

	// Everything appended so far now sits in a sealed, fsynced segment.
	w.syncMu.Lock()
	if w.lastSeq > w.synced {
		w.synced = w.lastSeq
	}
	w.syncCond.Broadcast()
	w.syncMu.Unlock()
	return nil
}

// truncateTo drops every WAL segment made fully redundant by a snapshot
// covering commits <= upTo. The current segment is sealed and rotated
// first so that it too becomes collectable. Retired segments that still
// hold records beyond upTo (commits that landed while the snapshot was
// being written) survive until the next truncation.
func (w *wal) truncateTo(upTo uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closing {
		return ErrClosed
	}
	if w.lastSeq >= w.cur.base { // current segment is non-empty
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	// Filter into a fresh slice so a failed Remove mid-loop cannot leave
	// w.retired aliasing half-compacted entries.
	keep := make([]walSegment, 0, len(w.retired))
	var firstErr error
	for i, seg := range w.retired {
		// Segment i holds seqs [seg.base, next-1], where next is the base
		// of the following segment (or of the current one for the last).
		next := w.cur.base
		if i+1 < len(w.retired) {
			next = w.retired[i+1].base
		}
		if firstErr == nil && next <= upTo+1 {
			if err := w.fs.Remove(seg.path); err != nil && !os.IsNotExist(err) {
				firstErr = fmt.Errorf("store: truncating wal: %w", err)
				keep = append(keep, seg)
				continue
			}
			w.bytes.Add(-seg.size)
			continue
		}
		keep = append(keep, seg)
	}
	w.retired = keep
	return firstErr
}

// Close performs a final sync, stops the syncer and closes the segment
// file. Safe to call more than once.
func (w *wal) Close() error {
	w.mu.Lock()
	if w.closing {
		w.mu.Unlock()
		<-w.done
		return nil
	}
	w.closing = true
	w.mu.Unlock()

	close(w.stop)
	<-w.done // syncLoop has run its final sync

	w.syncMu.Lock()
	w.stopped = true
	err := w.syncErr
	w.syncCond.Broadcast()
	w.syncMu.Unlock()

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		if cerr := w.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		w.f = nil
	}
	if err == nil {
		err = w.appendErr
	}
	return err
}

// totalBytes returns the live WAL size across all segments.
func (w *wal) totalBytes() int64 { return w.bytes.Load() }

// createWALSegment creates a fresh segment file with its magic header
// already flushed and its directory entry fsynced — without the dirent
// write-back, a power loss could drop the whole segment (and every
// fsynced commit inside) with no trace for replay to miss.
func createWALSegment(fsys FS, dir string, base uint64) (File, int64, error) {
	path := walSegmentPath(dir, base)
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("store: creating wal segment: %w", err)
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		fsys.Remove(path)
		return nil, 0, fmt.Errorf("store: writing wal header: %w", err)
	}
	if err := syncDir(fsys, dir); err != nil {
		f.Close()
		fsys.Remove(path)
		return nil, 0, fmt.Errorf("store: syncing wal dir: %w", err)
	}
	return f, int64(len(walMagic)), nil
}

// poison marks the log failed: every subsequent append returns err. Used
// when the in-memory install diverged from what was already appended —
// continuing to log would let recovery replay state that was never
// visible.
func (w *wal) poison(err error) {
	w.mu.Lock()
	if w.appendErr == nil {
		w.appendErr = err
	}
	w.mu.Unlock()
	if w.onError != nil {
		w.onError(err)
	}
}

// listWALSegments returns the data directory's WAL segments in ascending
// base order.
func listWALSegments(fsys FS, dir string) ([]walSegment, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []walSegment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		base, ok := parseWALSegmentName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, walSegment{base: base, path: filepath.Join(dir, e.Name()), size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	return segs, nil
}

// walFrameReader iterates the frames of one segment, distinguishing a
// clean end (io.EOF) from a torn or corrupt tail (errTornFrame).
type walFrameReader struct {
	r   *bufio.Reader
	off int64 // offset of the next unread byte
}

// errTornFrame marks an unreadable frame: a partial header, a payload
// shorter than its declared length, a CRC mismatch, or an implausible
// length. The offset of the bad frame's start is carried alongside.
type tornFrameError struct {
	off    int64
	reason string
}

func (e *tornFrameError) Error() string {
	return fmt.Sprintf("torn or corrupt wal frame at offset %d: %s", e.off, e.reason)
}

func newWALFrameReader(f io.Reader, headerAlreadyRead bool) (*walFrameReader, error) {
	r := bufio.NewReaderSize(f, 1<<20)
	fr := &walFrameReader{r: r}
	if !headerAlreadyRead {
		magic := make([]byte, len(walMagic))
		n, err := io.ReadFull(r, magic)
		fr.off = int64(n)
		if err != nil || string(magic) != walMagic {
			return nil, &tornFrameError{off: 0, reason: "bad segment header"}
		}
	}
	return fr, nil
}

// next returns the payload of the next frame. io.EOF signals a clean end
// at a frame boundary; *tornFrameError signals an unreadable tail starting
// at the returned reader offset.
func (fr *walFrameReader) next() ([]byte, error) {
	start := fr.off
	var hdr [walFrameHeaderSize]byte
	n, err := io.ReadFull(fr.r, hdr[:])
	fr.off += int64(n)
	if err == io.EOF {
		return nil, io.EOF // clean end at a frame boundary
	}
	if err != nil {
		return nil, &tornFrameError{off: start, reason: "partial frame header"}
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length > walMaxFrameSize {
		return nil, &tornFrameError{off: start, reason: "implausible frame length"}
	}
	payload := make([]byte, length)
	n, err = io.ReadFull(fr.r, payload)
	fr.off += int64(n)
	if err != nil {
		return nil, &tornFrameError{off: start, reason: "short frame payload"}
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, &tornFrameError{off: start, reason: "payload checksum mismatch"}
	}
	return payload, nil
}
