package store

import (
	"fmt"
	"strconv"
	"testing"
)

// benchStore builds a table with n committed rows (ids 1..n), an indexed
// "grp" field with ~n/16 rows per group, and a few representative fields.
func benchStore(b *testing.B, n int) *Store {
	b.Helper()
	s := New()
	if err := s.CreateTable("t"); err != nil {
		b.Fatal(err)
	}
	if err := s.CreateIndex("t", "grp", false); err != nil {
		b.Fatal(err)
	}
	err := s.Update(func(tx *Tx) error {
		for i := 0; i < n; i++ {
			if _, err := tx.Insert("t", Record{
				"name": "row-" + strconv.Itoa(i),
				"grp":  "g" + strconv.Itoa(i%16),
				"n":    int64(i),
				"tags": []string{"alpha", "beta"},
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkTxGet(b *testing.B) {
	s := benchStore(b, 1024)
	b.ResetTimer()
	_ = s.View(func(tx *Tx) error {
		for i := 0; i < b.N; i++ {
			if _, err := tx.Get("t", int64(i%1024)+1); err != nil {
				b.Fatal(err)
			}
		}
		return nil
	})
}

func BenchmarkTxGetRef(b *testing.B) {
	s := benchStore(b, 1024)
	b.ResetTimer()
	_ = s.View(func(tx *Tx) error {
		for i := 0; i < b.N; i++ {
			if _, err := tx.GetRef("t", int64(i%1024)+1); err != nil {
				b.Fatal(err)
			}
		}
		return nil
	})
}

func benchScan(b *testing.B, n int, ref bool) {
	s := benchStore(b, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		err := s.View(func(tx *Tx) error {
			fn := func(r Record) bool { count++; return true }
			if ref {
				return tx.ScanRef("t", fn)
			}
			return tx.Scan("t", fn)
		})
		if err != nil || count != n {
			b.Fatalf("scan: %v, count=%d", err, count)
		}
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkTxScan(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) { benchScan(b, n, false) })
	}
}

func BenchmarkTxScanRef(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) { benchScan(b, n, true) })
	}
}

// BenchmarkTxScanRangePage measures one 100-row page out of a large table —
// the paginated-browse access pattern the sorted id slice exists for.
func BenchmarkTxScanRangePage(b *testing.B) {
	const n, page = 10000, 100
	s := benchStore(b, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := int64(i%(n/page))*page + 1
		count := 0
		err := s.View(func(tx *Tx) error {
			return tx.ScanRangeRef("t", from, from+page-1, func(r Record) bool {
				count++
				return true
			})
		})
		if err != nil || count != page {
			b.Fatalf("page scan: %v, count=%d", err, count)
		}
	}
}

func BenchmarkTxFind(b *testing.B) {
	s := benchStore(b, 4096)
	b.ResetTimer()
	_ = s.View(func(tx *Tx) error {
		for i := 0; i < b.N; i++ {
			rs, err := tx.Find("t", "grp", "g7")
			if err != nil || len(rs) != 256 {
				b.Fatalf("find: %v, n=%d", err, len(rs))
			}
		}
		return nil
	})
}

func BenchmarkTxFindRef(b *testing.B) {
	s := benchStore(b, 4096)
	b.ResetTimer()
	_ = s.View(func(tx *Tx) error {
		for i := 0; i < b.N; i++ {
			rs, err := tx.FindRef("t", "grp", "g7")
			if err != nil || len(rs) != 256 {
				b.Fatalf("find: %v, n=%d", err, len(rs))
			}
		}
		return nil
	})
}

func BenchmarkTxLookup(b *testing.B) {
	s := benchStore(b, 4096)
	b.ResetTimer()
	_ = s.View(func(tx *Tx) error {
		for i := 0; i < b.N; i++ {
			ids, err := tx.Lookup("t", "grp", "g3")
			if err != nil || len(ids) != 256 {
				b.Fatalf("lookup: %v, n=%d", err, len(ids))
			}
		}
		return nil
	})
}
