package store

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadersAndWriters hammers the store with parallel
// transactions; run with -race to validate the locking discipline.
func TestConcurrentReadersAndWriters(t *testing.T) {
	s := newTestStore(t, "t")
	if err := s.CreateIndex("t", "grp", false); err != nil {
		t.Fatal(err)
	}
	const writers, readers, perWorker = 4, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := s.Update(func(tx *Tx) error {
					_, err := tx.Insert("t", Record{
						"grp": fmt.Sprintf("g%d", i%5),
						"src": fmt.Sprintf("w%d", w),
					})
					return err
				})
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := s.View(func(tx *Tx) error {
					_, err := tx.Lookup("t", "grp", "g1")
					if err != nil {
						return err
					}
					return tx.Scan("t", func(Record) bool { return true })
				})
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Count("t"); got != writers*perWorker {
		t.Errorf("count = %d, want %d", got, writers*perWorker)
	}
	// Index is consistent after the storm.
	total := 0
	_ = s.View(func(tx *Tx) error {
		for g := 0; g < 5; g++ {
			ids, err := tx.Lookup("t", "grp", fmt.Sprintf("g%d", g))
			if err != nil {
				return err
			}
			total += len(ids)
		}
		return nil
	})
	if total != writers*perWorker {
		t.Errorf("indexed total = %d, want %d", total, writers*perWorker)
	}
}

// TestConcurrentSaveWhileWriting verifies snapshots can be taken while
// writers are active (Save serializes a pinned version, fully lock-free).
func TestConcurrentSaveWhileWriting(t *testing.T) {
	s := newTestStore(t, "t")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.Update(func(tx *Tx) error {
				_, err := tx.Insert("t", Record{"n": int64(i)})
				return err
			})
			i++
		}
	}()
	for i := 0; i < 10; i++ {
		var sink discardWriter
		if err := s.Save(&sink); err != nil {
			t.Errorf("save: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
