package store

import (
	"fmt"
	"strings"
)

// This file is the query planner: it turns a Query into a Plan, the
// declarative description of the cheapest access path the engine found.
// Execution lives in query.go; the split keeps "what will run" (Explain)
// and "run it" (Tx.Query) on exactly the same code path — Explain returns
// the very Plan the executor follows.

// Access enumerates the access paths the planner can choose.
type Access uint8

const (
	// AccessPoint fetches candidate rows directly by id (Eq/In on "id").
	AccessPoint Access = iota
	// AccessUnique resolves one Eq predicate through a unique index: at
	// most one row per key.
	AccessUnique
	// AccessIndex drives the query from a secondary index's sorted
	// postings, chosen as the most selective indexed predicate; the
	// remaining predicates are pushed into the iterator as residuals.
	AccessIndex
	// AccessScan walks the table in id order between the bounds implied
	// by id-range predicates (the whole table when there are none).
	AccessScan
)

// String returns the access path's name as it appears in Explain output.
func (a Access) String() string {
	switch a {
	case AccessPoint:
		return "point"
	case AccessUnique:
		return "unique"
	case AccessIndex:
		return "index"
	case AccessScan:
		return "scan"
	default:
		return fmt.Sprintf("Access(%d)", uint8(a))
	}
}

// Plan describes how the engine will (or did) execute a query. It is
// returned by Tx.Explain and carried by the Rows iterator, so the plan a
// caller inspects is exactly the plan the executor follows.
type Plan struct {
	// Table is the queried table.
	Table string
	// Access is the chosen access path.
	Access Access
	// Field is the field driving the access path: the unique or secondary
	// index field, or "id" for point access. Empty for scans.
	Field string
	// Keys is the number of index/point keys the driver resolves (1 for
	// Eq, len(Values) for In).
	Keys int
	// EstRows is the planner's row estimate for the driving path, read
	// from the committed index postings (or table count for scans) at
	// plan time. It is the cost that won the path the plan describes.
	EstRows int
	// Residual lists the fields of predicates the driver cannot answer;
	// they are evaluated per row inside the iterator.
	Residual []string
	// ScanFrom/ScanTo are the id bounds of an AccessScan, 0 = unbounded.
	ScanFrom, ScanTo int64
	// Sorted is true when the result cannot stream in structural id
	// order and must be materialized and sorted by OrderBy instead.
	Sorted bool
	// OrderBy, Desc and Limit echo the query.
	OrderBy string
	Desc    bool
	Limit   int
	// Agg names the aggregate strategy for aggregate queries —
	// AggStrategyMaintained, AggStrategyPostings or AggStrategyScanFold —
	// and is empty for row queries.
	Agg string
	// GroupField echoes the aggregate's GroupBy field.
	GroupField string
}

// String renders the plan in the compact one-line form used by Explain
// output and the portal's explain mode, e.g.
//
//	sample: index(project) keys=1 est=37 residual=[species] order=id limit=50
//
// Aggregate plans lead with their strategy instead of the access path:
//
//	workunit: agg=count(postings) by=state via index(state) est=1543
func (p Plan) String() string {
	var b strings.Builder
	if p.Agg != "" {
		fmt.Fprintf(&b, "%s: agg=%s", p.Table, p.Agg)
		if p.GroupField != "" {
			fmt.Fprintf(&b, " by=%s", p.GroupField)
		}
		if p.Agg != AggStrategyMaintained {
			fmt.Fprintf(&b, " via %s", p.Access)
			if p.Field != "" {
				fmt.Fprintf(&b, "(%s)", p.Field)
			}
		}
	} else {
		fmt.Fprintf(&b, "%s: %s", p.Table, p.Access)
		if p.Field != "" {
			fmt.Fprintf(&b, "(%s)", p.Field)
		}
	}
	if p.Access == AccessScan && (p.ScanFrom != 0 || p.ScanTo != 0) {
		from, to := "1", "∞"
		if p.ScanFrom != 0 {
			from = fmt.Sprintf("%d", p.ScanFrom)
		}
		if p.ScanTo != 0 {
			to = fmt.Sprintf("%d", p.ScanTo)
		}
		fmt.Fprintf(&b, " ids=[%s,%s]", from, to)
	}
	if p.Keys > 1 {
		fmt.Fprintf(&b, " keys=%d", p.Keys)
	}
	fmt.Fprintf(&b, " est=%d", p.EstRows)
	if len(p.Residual) > 0 {
		fmt.Fprintf(&b, " residual=[%s]", strings.Join(p.Residual, ","))
	}
	if p.Agg != "" {
		// Ordering, sorting and limits do not apply to aggregates.
		return b.String()
	}
	order := p.OrderBy
	if order == "" {
		order = IDField
	}
	if p.Sorted {
		fmt.Fprintf(&b, " sort=%s", order)
	} else {
		fmt.Fprintf(&b, " order=%s", order)
	}
	if p.Desc {
		b.WriteString(" desc")
	}
	if p.Limit > 0 {
		fmt.Fprintf(&b, " limit=%d", p.Limit)
	}
	return b.String()
}

// plannedQuery is the executable form of a query: the winning plan plus
// the pre-resolved driver keys and compiled residual predicates.
type plannedQuery struct {
	plan Plan
	// driver is the index of q.Where the access path answers, or -1 for
	// scans.
	driver int
	// keys holds the canonical index keys (AccessUnique/AccessIndex) or
	// record ids (AccessPoint) the driver resolves.
	keys []indexKey
	ids  []int64
	// residuals are the compiled per-row predicates.
	residuals []compiledPred
}

// plan validates q against the pinned table and picks the cheapest access
// path:
//
//  1. Eq/In on "id" — direct point access, cost = number of ids;
//  2. Eq on a unique-indexed field — at most one row;
//  3. Eq/In on any secondary index — cost = committed postings length
//     (summed over In keys); the cheapest such predicate drives, all
//     others become residuals;
//  4. otherwise an ordered id scan bounded by Range("id") predicates.
//
// Estimates read the committed index only — the transaction overlay can
// shift true counts, but never the complexity class of the choice.
func (tx *Tx) plan(t *table, q Query) (*plannedQuery, error) {
	if q.Limit < 0 {
		return nil, fmt.Errorf("store: negative limit %d: %w", q.Limit, ErrBadQuery)
	}
	if q.Cursor < 0 {
		return nil, fmt.Errorf("store: negative cursor %d: %w", q.Cursor, ErrBadQuery)
	}
	orderBy := q.OrderBy
	if orderBy == "" {
		orderBy = IDField
	}
	sorted := orderBy != IDField
	if sorted && q.Cursor != 0 {
		// A keyset cursor is an id watermark; it only composes with id
		// ordering. Sorted results would need a (value, id) cursor pair,
		// which the engine does not grow until something needs it.
		return nil, fmt.Errorf("store: cursor requires id ordering, not order by %q: %w", q.OrderBy, ErrBadQuery)
	}

	compiled := make([]compiledPred, len(q.Where))
	for i, p := range q.Where {
		cp, err := compilePred(q.Table, p)
		if err != nil {
			return nil, err
		}
		compiled[i] = cp
	}

	pq := &plannedQuery{
		plan: Plan{
			Table:   q.Table,
			Access:  AccessScan,
			EstRows: t.count,
			OrderBy: orderBy,
			Desc:    q.Desc,
			Limit:   q.Limit,
			Sorted:  sorted,
		},
		driver: -1,
	}

	// Pick the cheapest driver among point/unique/index candidates.
	best := -1
	bestCost := 0
	for i, cp := range compiled {
		p := q.Where[i]
		if p.Op != OpEq && p.Op != OpIn {
			continue
		}
		var cost int
		switch {
		case p.Field == IDField:
			cost = len(cp.ids)
		default:
			ix, ok := t.indexes[p.Field]
			if !ok {
				continue
			}
			if ix.unique && p.Op == OpEq {
				cost = 1
			} else {
				for _, key := range cp.keys {
					cost += len(ix.postings(key))
				}
			}
		}
		if best == -1 || cost < bestCost {
			best, bestCost = i, cost
		}
	}

	if best >= 0 {
		p := q.Where[best]
		cp := compiled[best]
		pq.driver = best
		pq.plan.Field = p.Field
		pq.plan.EstRows = bestCost
		switch {
		case p.Field == IDField:
			pq.plan.Access = AccessPoint
			pq.plan.Keys = len(cp.ids)
			pq.ids = cp.ids
		case t.indexes[p.Field].unique && p.Op == OpEq:
			pq.plan.Access = AccessUnique
			pq.plan.Keys = 1
			pq.keys = cp.keys
		default:
			pq.plan.Access = AccessIndex
			pq.plan.Keys = len(cp.keys)
			pq.keys = cp.keys
		}
	} else {
		// No indexable equality: scan, tightening the id window with any
		// Range("id") predicates (they become part of the access path, not
		// residuals).
		for i, p := range q.Where {
			if p.Field != IDField || p.Op != OpRange {
				continue
			}
			lo, hi, err := idRangeBounds(p)
			if err != nil {
				return nil, err
			}
			if lo > pq.plan.ScanFrom {
				pq.plan.ScanFrom = lo
			}
			if hi != 0 && (pq.plan.ScanTo == 0 || hi < pq.plan.ScanTo) {
				pq.plan.ScanTo = hi
			}
			compiled[i].consumed = true
		}
		if pq.plan.ScanFrom != 0 || pq.plan.ScanTo != 0 {
			hi := pq.plan.ScanTo
			if hi == 0 || hi > t.nextID-1 {
				hi = t.nextID - 1
			}
			if est := int(hi - pq.plan.ScanFrom + 1); est >= 0 && est < pq.plan.EstRows {
				pq.plan.EstRows = est
			}
		}
	}

	for i, cp := range compiled {
		if i == pq.driver || cp.consumed {
			continue
		}
		pq.residuals = append(pq.residuals, cp)
		pq.plan.Residual = append(pq.plan.Residual, q.Where[i].Field)
	}
	return pq, nil
}

// idRangeBounds converts a Range("id") predicate into inclusive scan
// bounds (0 = unbounded).
func idRangeBounds(p Pred) (lo, hi int64, err error) {
	bound := func(v any) (int64, bool, error) {
		if v == nil {
			return 0, false, nil
		}
		n, ok := v.(int64)
		if !ok {
			return 0, false, fmt.Errorf("store: id range bound %T: %w", v, ErrBadQuery)
		}
		return n, true, nil
	}
	if n, ok, berr := bound(p.Min); berr != nil {
		return 0, 0, berr
	} else if ok {
		lo = n
	}
	if n, ok, berr := bound(p.Max); berr != nil {
		return 0, 0, berr
	} else if ok {
		hi = n
		if hi < 1 {
			// An explicit upper bound below the id space: empty window.
			// Encode as an impossible range the executor recognizes.
			lo, hi = 1, -1
			return lo, hi, nil
		}
	}
	return lo, hi, nil
}
