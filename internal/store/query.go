package store

import (
	"fmt"
	"sort"
	"time"
)

// This file implements the declarative query engine: a Query value is
// compiled against a transaction's pinned MVCC version into a streaming,
// zero-copy Rows iterator. The planner (plan.go) picks the cheapest
// access path — unique-index point lookup, secondary-index postings, or
// an ordered id-range scan — and pushes every predicate it cannot answer
// into the iterator as a residual filter. Results stream in ascending
// (or, with Desc, descending) id order unless OrderBy names another
// field, in which case the engine materializes and sorts.
//
// The engine is the single planned path behind the typed listing methods
// in model, the task lists, the audit queries and the portal's filtered
// browse endpoint; docs/query.md is the user-facing contract.

// Op enumerates predicate operators.
type Op uint8

const (
	// OpEq matches rows whose field equals Value.
	OpEq Op = iota
	// OpIn matches rows whose field equals any element of Values.
	OpIn
	// OpRange matches rows whose field lies in [Min, Max]; a nil bound
	// is unbounded on that side.
	OpRange
)

// String returns the operator's name.
func (op Op) String() string {
	switch op {
	case OpEq:
		return "eq"
	case OpIn:
		return "in"
	case OpRange:
		return "range"
	default:
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
}

// Pred is one predicate of a query's Where clause. Construct with Eq, In,
// InIDs or Range.
type Pred struct {
	// Field is the record field the predicate constrains; the reserved
	// IDField ("id") addresses the record id.
	Field string
	// Op selects the operator and which value fields apply.
	Op Op
	// Value is the OpEq comparand.
	Value any
	// Values are the OpIn comparands.
	Values []any
	// Min and Max are the inclusive OpRange bounds; nil = unbounded.
	Min, Max any
}

// Eq returns a predicate matching rows whose field equals value. Equality
// is type-strict, matching index semantics: int64(1) never equals "1".
func Eq(field string, value any) Pred {
	return Pred{Field: field, Op: OpEq, Value: value}
}

// In returns a predicate matching rows whose field equals any of values.
// An empty value set matches nothing.
func In(field string, values ...any) Pred {
	return Pred{Field: field, Op: OpIn, Values: values}
}

// InIDs is In over a list of int64 values — the shape of a foreign-key
// batch ("extracts whose sample is one of these").
func InIDs(field string, ids []int64) Pred {
	vs := make([]any, len(ids))
	for i, id := range ids {
		vs[i] = id
	}
	return Pred{Field: field, Op: OpIn, Values: vs}
}

// Range returns a predicate matching rows whose field lies in [min, max].
// A nil bound is unbounded on that side. Comparable types are int64,
// float64 (mutually comparable), string and time.Time.
func Range(field string, min, max any) Pred {
	return Pred{Field: field, Op: OpRange, Min: min, Max: max}
}

// Query is a declarative read over one table, executed against the
// transaction's pinned snapshot by Tx.Query.
type Query struct {
	// Table names the queried table.
	Table string
	// Where conjoins predicates; all must match.
	Where []Pred
	// OrderBy names the ordering field. Empty or IDField streams in
	// structural id order; any other field materializes and sorts.
	OrderBy string
	// Desc reverses the order.
	Desc bool
	// Limit caps the number of rows yielded; 0 = unlimited.
	Limit int
	// Cursor resumes a paginated id-ordered query strictly after
	// (Desc: strictly before) the given id — the keyset cursor. 0 starts
	// from the beginning. Only valid with id ordering.
	Cursor int64
}

// compiledPred is a validated predicate ready for per-row evaluation:
// Eq/In values are canonicalized to index keys (or ids for the IDField)
// exactly once.
type compiledPred struct {
	field string
	op    Op
	keys  []indexKey // Eq/In on a regular field
	ids   []int64    // Eq/In on IDField, sorted ascending, deduped
	min   any        // Range bounds
	max   any
	// consumed marks a predicate folded into the access path itself
	// (Range("id") tightening a scan window) — fully answered, never
	// re-evaluated per row.
	consumed bool
}

// compilePred validates p and canonicalizes its comparands.
func compilePred(tableName string, p Pred) (compiledPred, error) {
	cp := compiledPred{field: p.Field, op: p.Op}
	bad := func(format string, args ...any) (compiledPred, error) {
		args = append(args, ErrBadQuery)
		return compiledPred{}, fmt.Errorf("store: query %s: "+format+": %w", append([]any{tableName}, args...)...)
	}
	if p.Field == "" {
		return bad("predicate with empty field")
	}
	switch p.Op {
	case OpEq, OpIn:
		values := p.Values
		if p.Op == OpEq {
			values = []any{p.Value}
		}
		for _, v := range values {
			if p.Field == IDField {
				id, ok := v.(int64)
				if !ok {
					return bad("field id compared to %T", v)
				}
				cp.ids = append(cp.ids, id)
				continue
			}
			key, ok := keyFor(v)
			if !ok {
				return bad("field %q compared to unindexable %T", p.Field, v)
			}
			cp.keys = append(cp.keys, key)
		}
		if p.Field == IDField {
			sort.Slice(cp.ids, func(i, j int) bool { return cp.ids[i] < cp.ids[j] })
			cp.ids = dedupeSortedIDs(cp.ids)
		} else {
			cp.keys = dedupeKeys(cp.keys)
		}
	case OpRange:
		if p.Min == nil && p.Max == nil {
			return bad("range on %q with no bounds", p.Field)
		}
		for _, v := range []any{p.Min, p.Max} {
			if v == nil {
				continue
			}
			if !comparableValue(v) {
				return bad("range bound of type %T on %q", v, p.Field)
			}
		}
		if p.Min != nil && p.Max != nil {
			if _, ok := compareValues(p.Min, p.Max); !ok {
				return bad("range bounds %T and %T on %q are not mutually comparable", p.Min, p.Max, p.Field)
			}
		}
		cp.min, cp.max = p.Min, p.Max
	default:
		return bad("unknown operator %v", p.Op)
	}
	return cp, nil
}

// match evaluates the predicate against one row.
func (cp *compiledPred) match(r Record, id int64) bool {
	switch cp.op {
	case OpEq, OpIn:
		if cp.field == IDField {
			i := sort.Search(len(cp.ids), func(k int) bool { return cp.ids[k] >= id })
			return i < len(cp.ids) && cp.ids[i] == id
		}
		key, ok := keyFor(r[cp.field])
		if !ok {
			return false
		}
		for _, k := range cp.keys {
			if k == key {
				return true
			}
		}
		return false
	case OpRange:
		var v any
		if cp.field == IDField {
			v = id
		} else {
			v = r[cp.field]
		}
		if v == nil {
			return false
		}
		if cp.min != nil {
			c, ok := compareValues(v, cp.min)
			if !ok || c < 0 {
				return false
			}
		}
		if cp.max != nil {
			c, ok := compareValues(v, cp.max)
			if !ok || c > 0 {
				return false
			}
		}
		return true
	}
	return false
}

// comparableValue reports whether v participates in Range comparisons.
func comparableValue(v any) bool {
	switch v.(type) {
	case int64, float64, string, time.Time:
		return true
	}
	return false
}

// compareValues orders two comparable values of compatible types. int64
// and float64 are mutually comparable; every other pairing must match
// exactly. The bool result is false for incomparable pairings.
func compareValues(a, b any) (int, bool) {
	switch x := a.(type) {
	case int64:
		switch y := b.(type) {
		case int64:
			return cmpOrdered(x, y), true
		case float64:
			return cmpOrdered(float64(x), y), true
		}
	case float64:
		switch y := b.(type) {
		case float64:
			return cmpOrdered(x, y), true
		case int64:
			return cmpOrdered(x, float64(y)), true
		}
	case string:
		if y, ok := b.(string); ok {
			return cmpOrdered(x, y), true
		}
	case time.Time:
		if y, ok := b.(time.Time); ok {
			return x.Compare(y), true
		}
	}
	return 0, false
}

func cmpOrdered[T interface{ ~int64 | ~float64 | ~string }](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func dedupeSortedIDs(ids []int64) []int64 {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

func dedupeKeys(keys []indexKey) []indexKey {
	out := keys[:0]
	for _, k := range keys {
		dup := false
		for _, seen := range out {
			if seen == k {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, k)
		}
	}
	return out
}

// Explain plans the query without executing it and returns the Plan the
// executor would follow — the same code path Tx.Query runs, so what
// Explain reports is what Query does.
func (tx *Tx) Explain(q Query) (Plan, error) {
	if tx.done {
		return Plan{}, ErrTxDone
	}
	t, err := tx.table(q.Table)
	if err != nil {
		return Plan{}, err
	}
	pq, err := tx.plan(t, q)
	if err != nil {
		return Plan{}, err
	}
	return pq.plan, nil
}

// Query plans and starts executing q, returning a streaming iterator over
// the matching rows. The iterator reads the transaction's pinned snapshot
// (merged with its own pending writes) lock-free; records it yields are
// shared references under the GetRef aliasing contract — consistent
// snapshots that stay valid after the transaction ends, but MUST NOT be
// mutated.
//
// A Rows is not safe for concurrent use, but any number of concurrent
// queries may run against the same snapshot from separate Rows values.
func (tx *Tx) Query(q Query) (*Rows, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	t, err := tx.table(q.Table)
	if err != nil {
		return nil, err
	}
	pq, err := tx.plan(t, q)
	if err != nil {
		return nil, err
	}
	rows := &Rows{tx: tx, t: t, pq: pq, q: q}
	rows.start()
	return rows, nil
}

// Rows streams a query's result. Typical use:
//
//	rows, err := tx.Query(q)
//	if err != nil { ... }
//	for rows.Next() {
//		r := rows.Record() // shared ref; do not mutate
//		...
//	}
//	if err := rows.Err(); err != nil { ... }
type Rows struct {
	tx *Tx
	t  *table
	pq *plannedQuery
	q  Query

	// Driver state: exactly one of ids (point/unique/index access, walked
	// by pos) or scan (id-order scan) is active; sorted holds the
	// materialized result when the plan requires a sort.
	ids    []int64
	pos    int
	scan   *scanRows
	sorted []Record

	cur     Record
	curID   int64
	emitted int
	done    bool
	err     error
}

// start resolves the access path into driver state.
func (r *Rows) start() {
	pq := r.pq
	if pq.plan.Sorted {
		r.materialize()
		return
	}
	switch pq.plan.Access {
	case AccessPoint:
		r.ids = pq.ids
	case AccessUnique, AccessIndex:
		r.ids = r.tx.lookupKeys(r.q.Table, r.t, pq.plan.Field, pq.keys)
	case AccessScan:
		from, to := pq.plan.ScanFrom, pq.plan.ScanTo
		if c := r.q.Cursor; c != 0 {
			if r.q.Desc {
				if c <= 1 {
					r.done = true
					return
				}
				if to == 0 || to > c-1 {
					to = c - 1
				}
			} else if from < c+1 {
				from = c + 1
			}
		}
		r.scan = newScanRows(r.tx, r.q.Table, r.t, from, to, r.q.Desc)
		return
	}
	// Position the id walk at the cursor.
	if r.q.Desc {
		r.pos = len(r.ids) - 1
		if c := r.q.Cursor; c != 0 {
			// Last index with id < c.
			r.pos = sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= c }) - 1
		}
	} else if c := r.q.Cursor; c != 0 {
		r.pos = sort.Search(len(r.ids), func(i int) bool { return r.ids[i] > c })
	}
}

// next yields the next candidate row from the driver, before residual
// filtering. id 0 means exhausted.
func (r *Rows) next() (int64, Record) {
	if r.scan != nil {
		return r.scan.next()
	}
	for {
		if r.q.Desc {
			if r.pos < 0 {
				return 0, nil
			}
		} else if r.pos >= len(r.ids) {
			return 0, nil
		}
		id := r.ids[r.pos]
		if r.q.Desc {
			r.pos--
		} else {
			r.pos++
		}
		if rec := r.tx.readRow(r.q.Table, r.t, id); rec != nil {
			return id, rec
		}
	}
}

// Next advances to the next matching row, reporting whether one exists.
func (r *Rows) Next() bool {
	if r.done || r.err != nil {
		return false
	}
	if r.q.Limit > 0 && r.emitted == r.q.Limit {
		r.done = true
		return false
	}
	if r.pq.plan.Sorted {
		if r.pos >= len(r.sorted) {
			r.done = true
			return false
		}
		r.cur = r.sorted[r.pos]
		r.curID = r.cur.ID()
		r.pos++
		r.emitted++
		return true
	}
	for {
		id, rec := r.next()
		if id == 0 {
			r.done = true
			return false
		}
		if !r.matches(rec, id) {
			continue
		}
		r.cur, r.curID = rec, id
		r.emitted++
		return true
	}
}

// matches applies the residual predicates.
func (r *Rows) matches(rec Record, id int64) bool {
	for i := range r.pq.residuals {
		if !r.pq.residuals[i].match(rec, id) {
			return false
		}
	}
	return true
}

// Record returns the current row as a shared reference (GetRef aliasing
// contract: do not mutate). Valid after a true Next.
func (r *Rows) Record() Record { return r.cur }

// ID returns the current row's id. Valid after a true Next.
func (r *Rows) ID() int64 { return r.curID }

// Err returns the first error encountered while iterating, if any.
func (r *Rows) Err() error { return r.err }

// Plan returns the plan the iterator executes — the same value Explain
// reports for the query.
func (r *Rows) Plan() Plan { return r.pq.plan }

// Collect drains the iterator and returns the remaining rows as shared
// references (GetRef aliasing contract).
func (r *Rows) Collect() ([]Record, error) {
	var out []Record
	for r.Next() {
		out = append(out, r.Record())
	}
	return out, r.Err()
}

// materialize runs the sort path: drain every matching row through the
// streaming machinery, then order by the OrderBy field (missing and
// mutually incomparable values first, ids as tiebreak).
func (r *Rows) materialize() {
	inner := &Rows{tx: r.tx, t: r.t, q: r.q, pq: &plannedQuery{
		plan:      r.pq.plan,
		driver:    r.pq.driver,
		keys:      r.pq.keys,
		ids:       r.pq.ids,
		residuals: r.pq.residuals,
	}}
	inner.pq.plan.Sorted = false
	inner.q.Limit = 0 // the limit applies after the sort
	inner.q.Desc = false
	inner.q.Cursor = 0 // rejected by the planner already; belt and braces
	inner.start()
	recs, err := inner.Collect()
	if err != nil {
		r.err = err
		return
	}
	field := r.q.OrderBy
	sort.SliceStable(recs, func(i, j int) bool {
		c := compareFieldValues(recs[i][field], recs[j][field])
		if c != 0 {
			return c < 0
		}
		return recs[i].ID() < recs[j].ID()
	})
	if r.q.Desc {
		for i, j := 0, len(recs)-1; i < j; i, j = i+1, j-1 {
			recs[i], recs[j] = recs[j], recs[i]
		}
	}
	r.sorted = recs
}

// compareFieldValues totally orders arbitrary field values for the sort
// path: missing values first, then grouped by type family (bool, numeric,
// string, time, everything else), ordered within a family.
func compareFieldValues(a, b any) int {
	ra, rb := typeRank(a), typeRank(b)
	if ra != rb {
		return cmpOrdered(int64(ra), int64(rb))
	}
	if c, ok := compareValues(a, b); ok {
		return c
	}
	if x, ok := a.(bool); ok {
		y := b.(bool)
		switch {
		case !x && y:
			return -1
		case x && !y:
			return 1
		}
	}
	return 0 // same family but unordered (slices): stable sort keeps id order
}

func typeRank(v any) int {
	switch v.(type) {
	case nil:
		return 0
	case bool:
		return 1
	case int64, float64:
		return 2
	case string:
		return 3
	case time.Time:
		return 4
	default:
		return 5
	}
}

// readRow returns the live row with the given id as the transaction sees
// it — the pending overlay shadowing the pinned version — or nil.
func (tx *Tx) readRow(tableName string, t *table, id int64) Record {
	if o, ok := tx.pending[tableName]; ok {
		if o.deletes[id] {
			return nil
		}
		if rec, ok := o.writes[id]; ok {
			return rec
		}
	}
	return t.get(id)
}

// lookupKeys resolves the sorted, deduplicated ids matching any of the
// canonical keys on an indexed field, merging committed postings with the
// transaction's pending overlay. With no overlay and one key this is the
// pinned postings slice itself, shared and allocation-free (published
// postings are immutable up to the pinned length).
func (tx *Tx) lookupKeys(tableName string, t *table, field string, keys []indexKey) []int64 {
	ix := t.indexes[field]
	o := tx.pending[tableName]
	overlayEmpty := o == nil || (len(o.writes) == 0 && len(o.deletes) == 0)
	if overlayEmpty && len(keys) == 1 {
		return ix.postings(keys[0])
	}
	var ids []int64
	for _, key := range keys {
		for _, id := range ix.postings(key) {
			if o != nil {
				if o.deletes[id] {
					continue
				}
				if _, rewritten := o.writes[id]; rewritten {
					continue // re-checked against the pending state below
				}
			}
			ids = append(ids, id)
		}
	}
	if o != nil {
		if o.ixw != nil {
			// The overlay's per-index key maps hold the pending writers of
			// each key directly — a probe per key, not a scan over every
			// pending write (this path only runs for indexed fields, which
			// the materialized maps track by construction).
			for _, key := range keys {
				ids = append(ids, o.pendingIDs(field, key)...)
			}
		} else {
			// Below the map-build threshold the pending set is small;
			// scan it.
			for id, pr := range o.writes {
				if o.deletes[id] {
					continue
				}
				k, ok := keyFor(pr[field])
				if !ok {
					continue
				}
				for _, key := range keys {
					if k == key {
						ids = append(ids, id)
						break
					}
				}
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return dedupeSortedIDs(ids)
}

// scanRows is the pull-based ordered scan: it merges the pinned version's
// chunk walk with the transaction's pending overlay, ascending or
// descending. It is the streaming twin of Tx.scanRange.
type scanRows struct {
	o    *txTable
	desc bool

	// Committed side: exactly one of fit/rit is active.
	fit tableIter
	rit revTableIter
	cid int64
	cr  Record

	// Overlay side: write ids within bounds, ascending; walked from the
	// front (ascending) or back (descending).
	oids []int64
	opos int
}

func newScanRows(tx *Tx, tableName string, t *table, from, to int64, desc bool) *scanRows {
	s := &scanRows{desc: desc}
	if o := tx.pending[tableName]; o != nil && (len(o.writes) != 0 || len(o.deletes) != 0) {
		s.o = o
		for id := range o.writes {
			if !o.deletes[id] && id >= max(from, 1) && (to == 0 || id <= to) {
				s.oids = append(s.oids, id)
			}
		}
		sort.Slice(s.oids, func(i, j int) bool { return s.oids[i] < s.oids[j] })
	}
	if desc {
		s.rit = t.revIter(from, to)
		s.opos = len(s.oids) - 1
	} else {
		s.fit = t.iter(from, to)
	}
	s.advanceCommitted()
	return s
}

func (s *scanRows) advanceCommitted() {
	if s.desc {
		s.cid, s.cr = s.rit.next()
	} else {
		s.cid, s.cr = s.fit.next()
	}
}

// next returns the next live (id, record) in scan order, or (0, nil).
func (s *scanRows) next() (int64, Record) {
	if s.o == nil {
		id, rec := s.cid, s.cr
		if id != 0 {
			s.advanceCommitted()
		}
		return id, rec
	}
	for {
		oid := int64(0)
		if s.opos >= 0 && s.opos < len(s.oids) {
			oid = s.oids[s.opos]
		}
		if s.cid == 0 && oid == 0 {
			return 0, nil
		}
		// committedFirst: emit the committed side before the overlay side.
		committedFirst := oid == 0 || (s.cid != 0 && (!s.desc && s.cid < oid || s.desc && s.cid > oid))
		switch {
		case committedFirst:
			id, rec := s.cid, s.cr
			s.advanceCommitted()
			if s.o.deletes[id] {
				continue
			}
			if _, rewritten := s.o.writes[id]; rewritten {
				continue // emitted from the overlay side at its turn
			}
			return id, rec
		case s.cid == oid:
			s.advanceCommitted()
			fallthrough
		default: // overlay side: new insert or rewritten committed row
			if s.desc {
				s.opos--
			} else {
				s.opos++
			}
			return oid, s.o.writes[oid]
		}
	}
}

// revTableIter walks a table's live records in descending id order — the
// mirror of tableIter, skipping nil chunks wholesale.
type revTableIter struct {
	t      *table
	id     int64 // next candidate id, counting down
	fromID int64 // inclusive lower bound
}

// revIter returns a descending iterator over live ids in [fromID, toID];
// a bound of 0 means unbounded on that side.
func (t *table) revIter(fromID, toID int64) revTableIter {
	if fromID < 1 {
		fromID = 1
	}
	max := t.nextID - 1
	if toID == 0 || toID > max {
		toID = max
	}
	return revTableIter{t: t, id: toID, fromID: fromID}
}

// next returns the next live (id, record) counting down, or (0, nil).
func (it *revTableIter) next() (int64, Record) {
	for it.id >= it.fromID {
		ci, si := chunkPos(it.id)
		if ci >= len(it.t.chunks) {
			// Serial ids can run past the chunk slice when inserts were
			// deleted in the same transaction; resume at the covered end.
			it.id = int64(len(it.t.chunks)) * chunkSize
			continue
		}
		c := it.t.chunks[ci]
		if c == nil {
			it.id = int64(ci) * chunkSize // last id of the previous chunk
			continue
		}
		for si >= 0 && it.id >= it.fromID {
			r := c.recs[si]
			id := it.id
			si--
			it.id--
			if r != nil {
				return id, r
			}
		}
	}
	return 0, nil
}
