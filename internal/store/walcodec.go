package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// WAL frame payload codec. The payload reuses the typed fieldSnapshot
// model of persist.go but serializes it with a hand-rolled little-endian
// binary layout instead of gob: a self-contained gob stream re-sends its
// type descriptors in every frame and pays reflection on both sides,
// which at one frame per commit made encoding the dominant cost of the
// whole durable write path. The layout:
//
//	payload   := seq u64, nTables u32, table...
//	table     := name str, nextID i64, nDeletes u32, i64...,
//	             nWrites u32, write...
//	write     := id i64, nFields u32, field...
//	field     := key str, kind u8, value
//	value     := kindString     str
//	           | kindInt        i64
//	           | kindFloat      u64 (IEEE 754 bits)
//	           | kindBool       u8
//	           | kindTime       bytes (time.Time MarshalBinary)
//	           | kindIntList    u32 n, n×i64
//	           | kindStringList u32 n, n×str
//	str/bytes := u32 len, len bytes
//
// Decoding is strict: trailing garbage, truncation and unknown kinds are
// errors, so a frame that passes its CRC but not the codec is handled as
// corruption by the caller.

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// binaryPutU32 patches a u32 in place (e.g. a count written before its
// elements).
func binaryPutU32(b []byte, v uint32) {
	binary.LittleEndian.PutUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b []byte, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

// appendValue encodes one live record value (not yet a fieldSnapshot) in
// the field layout. Mirrors encodeField's type switch; unsupported types
// cannot reach here because Insert/Put validate on the way in.
func appendValue(buf []byte, key string, v any) ([]byte, error) {
	buf = appendStr(buf, key)
	switch x := v.(type) {
	case string:
		buf = append(buf, kindString)
		buf = appendStr(buf, x)
	case int64:
		buf = append(buf, kindInt)
		buf = appendI64(buf, x)
	case float64:
		buf = append(buf, kindFloat)
		buf = appendU64(buf, math.Float64bits(x))
	case bool:
		buf = append(buf, kindBool)
		if x {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case time.Time:
		buf = append(buf, kindTime)
		tb, err := x.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("store: encoding time field %q: %w", key, err)
		}
		buf = appendBytes(buf, tb)
	case []int64:
		buf = append(buf, kindIntList)
		buf = appendU32(buf, uint32(len(x)))
		for _, v := range x {
			buf = appendI64(buf, v)
		}
	case []string:
		buf = append(buf, kindStringList)
		buf = appendU32(buf, uint32(len(x)))
		for _, s := range x {
			buf = appendStr(buf, s)
		}
	default:
		return nil, fmt.Errorf("store: field %q has %T: %w", key, v, ErrBadValue)
	}
	return buf, nil
}

// walDecoder is a bounds-checked cursor over one frame payload.
type walDecoder struct {
	b   []byte
	off int
}

var errWALDecode = fmt.Errorf("malformed wal payload")

func (d *walDecoder) u8() (byte, error) {
	if d.off+1 > len(d.b) {
		return 0, errWALDecode
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *walDecoder) u32() (uint32, error) {
	if d.off+4 > len(d.b) {
		return 0, errWALDecode
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *walDecoder) u64() (uint64, error) {
	if d.off+8 > len(d.b) {
		return 0, errWALDecode
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

func (d *walDecoder) i64() (int64, error) {
	v, err := d.u64()
	return int64(v), err
}

func (d *walDecoder) bytes() ([]byte, error) {
	n, err := d.u32()
	if err != nil || d.off+int(n) > len(d.b) {
		return nil, errWALDecode
	}
	v := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return v, nil
}

func (d *walDecoder) str() (string, error) {
	v, err := d.bytes()
	return string(v), err
}

// count reads a u32 length and sanity-checks it against the bytes left:
// every counted element occupies at least min bytes, so a count larger
// than remaining/min is corruption, not an allocation request.
func (d *walDecoder) count(min int) (int, error) {
	n, err := d.u32()
	if err != nil {
		return 0, err
	}
	if min > 0 && int(n) > (len(d.b)-d.off)/min {
		return 0, errWALDecode
	}
	return int(n), nil
}

// decodeWALRecord parses a payload produced by encodeWALRecord.
func decodeWALRecord(payload []byte) (walRecord, error) {
	d := &walDecoder{b: payload}
	var rec walRecord
	var err error
	fail := func(e error) (walRecord, error) {
		return walRecord{}, fmt.Errorf("store: %w", e)
	}
	if rec.Seq, err = d.u64(); err != nil {
		return fail(err)
	}
	nTables, err := d.count(4)
	if err != nil {
		return fail(err)
	}
	if nTables > 0 {
		rec.Tables = make([]walTableChange, 0, nTables)
	}
	for ti := 0; ti < nTables; ti++ {
		var tc walTableChange
		if tc.Name, err = d.str(); err != nil {
			return fail(err)
		}
		if tc.NextID, err = d.i64(); err != nil {
			return fail(err)
		}
		nDel, err := d.count(8)
		if err != nil {
			return fail(err)
		}
		if nDel > 0 {
			tc.Deletes = make([]int64, nDel)
			for i := range tc.Deletes {
				if tc.Deletes[i], err = d.i64(); err != nil {
					return fail(err)
				}
			}
		}
		nWr, err := d.count(12)
		if err != nil {
			return fail(err)
		}
		if nWr > 0 {
			tc.Writes = make([]rowSnapshot, 0, nWr)
		}
		for wi := 0; wi < nWr; wi++ {
			var rs rowSnapshot
			if rs.ID, err = d.i64(); err != nil {
				return fail(err)
			}
			nF, err := d.count(5)
			if err != nil {
				return fail(err)
			}
			if nF > 0 {
				rs.Fields = make([]fieldSnapshot, 0, nF)
			}
			for fi := 0; fi < nF; fi++ {
				fs, err := decodeField(d)
				if err != nil {
					return fail(err)
				}
				rs.Fields = append(rs.Fields, fs)
			}
			tc.Writes = append(tc.Writes, rs)
		}
		rec.Tables = append(rec.Tables, tc)
	}
	if d.off != len(d.b) {
		return fail(fmt.Errorf("%w: %d trailing bytes", errWALDecode, len(d.b)-d.off))
	}
	return rec, nil
}

func decodeField(d *walDecoder) (fieldSnapshot, error) {
	var fs fieldSnapshot
	var err error
	if fs.Key, err = d.str(); err != nil {
		return fs, err
	}
	if fs.Kind, err = d.u8(); err != nil {
		return fs, err
	}
	switch fs.Kind {
	case kindString:
		fs.S, err = d.str()
	case kindInt:
		fs.I, err = d.i64()
	case kindFloat:
		var bits uint64
		bits, err = d.u64()
		fs.F = math.Float64frombits(bits)
	case kindBool:
		var b byte
		b, err = d.u8()
		fs.B = b != 0
	case kindTime:
		var tb []byte
		if tb, err = d.bytes(); err == nil {
			var t time.Time
			if err = t.UnmarshalBinary(tb); err == nil {
				fs.T = t
			}
		}
	case kindIntList:
		var n int
		if n, err = d.count(8); err == nil {
			fs.LI = make([]int64, n)
			for i := range fs.LI {
				if fs.LI[i], err = d.i64(); err != nil {
					break
				}
			}
		}
	case kindStringList:
		var n int
		if n, err = d.count(4); err == nil {
			fs.LS = make([]string, n)
			for i := range fs.LS {
				if fs.LS[i], err = d.str(); err != nil {
					break
				}
			}
		}
	default:
		err = fmt.Errorf("%w: unknown field kind %d", errWALDecode, fs.Kind)
	}
	return fs, err
}
