package store

import (
	"errors"
	"testing"
	"time"
)

func newTestStore(t *testing.T, tables ...string) *Store {
	t.Helper()
	s := New()
	for _, name := range tables {
		if err := s.CreateTable(name); err != nil {
			t.Fatalf("CreateTable(%q): %v", name, err)
		}
	}
	return s
}

func mustInsert(t *testing.T, s *Store, table string, r Record) int64 {
	t.Helper()
	var id int64
	err := s.Update(func(tx *Tx) error {
		var err error
		id, err = tx.Insert(table, r)
		return err
	})
	if err != nil {
		t.Fatalf("insert into %s: %v", table, err)
	}
	return id
}

func TestCreateTableDuplicate(t *testing.T) {
	s := newTestStore(t, "sample")
	if err := s.CreateTable("sample"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate CreateTable: got %v, want ErrExists", err)
	}
}

func TestCreateTableEmptyName(t *testing.T) {
	s := New()
	if err := s.CreateTable(""); err == nil {
		t.Fatal("CreateTable(\"\") succeeded, want error")
	}
}

func TestInsertAssignsSerialIDs(t *testing.T) {
	s := newTestStore(t, "sample")
	for want := int64(1); want <= 5; want++ {
		id := mustInsert(t, s, "sample", Record{"name": "s"})
		if id != want {
			t.Fatalf("insert #%d: got id %d", want, id)
		}
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := newTestStore(t, "sample")
	id := mustInsert(t, s, "sample", Record{"name": "alpha", "tags": []string{"a"}})
	r1, err := s.Get("sample", id)
	if err != nil {
		t.Fatal(err)
	}
	r1["name"] = "mutated"
	r1.Strings("tags")[0] = "z"
	r2, err := s.Get("sample", id)
	if err != nil {
		t.Fatal(err)
	}
	if r2.String("name") != "alpha" {
		t.Errorf("record aliased: name = %q", r2.String("name"))
	}
	if r2.Strings("tags")[0] != "a" {
		t.Errorf("slice aliased: tags[0] = %q", r2.Strings("tags")[0])
	}
}

func TestInsertDoesNotAliasInput(t *testing.T) {
	s := newTestStore(t, "sample")
	in := Record{"name": "alpha", "refs": []int64{1, 2}}
	id := mustInsert(t, s, "sample", in)
	in["name"] = "mutated"
	in.IDs("refs")[0] = 99
	r, err := s.Get("sample", id)
	if err != nil {
		t.Fatal(err)
	}
	if r.String("name") != "alpha" || r.IDs("refs")[0] != 1 {
		t.Errorf("stored record aliases caller input: %v", r)
	}
}

func TestGetMissing(t *testing.T) {
	s := newTestStore(t, "sample")
	if _, err := s.Get("sample", 42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
	if _, err := s.Get("nosuch", 1); !errors.Is(err, ErrNoTable) {
		t.Fatalf("got %v, want ErrNoTable", err)
	}
}

func TestPutReplacesRecord(t *testing.T) {
	s := newTestStore(t, "sample")
	id := mustInsert(t, s, "sample", Record{"name": "old", "extra": "keep?"})
	err := s.Update(func(tx *Tx) error {
		return tx.Put("sample", id, Record{"name": "new"})
	})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := s.Get("sample", id)
	if r.String("name") != "new" {
		t.Errorf("name = %q, want new", r.String("name"))
	}
	if _, ok := r["extra"]; ok {
		t.Error("Put should fully replace the record; extra survived")
	}
	if r.ID() != id {
		t.Errorf("id = %d, want %d", r.ID(), id)
	}
}

func TestPutMissing(t *testing.T) {
	s := newTestStore(t, "sample")
	err := s.Update(func(tx *Tx) error {
		return tx.Put("sample", 7, Record{"name": "x"})
	})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}

func TestDelete(t *testing.T) {
	s := newTestStore(t, "sample")
	id := mustInsert(t, s, "sample", Record{"name": "gone"})
	if err := s.Update(func(tx *Tx) error { return tx.Delete("sample", id) }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("sample", id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete: got %v, want ErrNotFound", err)
	}
	err := s.Update(func(tx *Tx) error { return tx.Delete("sample", id) })
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: got %v, want ErrNotFound", err)
	}
}

func TestRollbackDiscardsWrites(t *testing.T) {
	s := newTestStore(t, "sample")
	boom := errors.New("boom")
	err := s.Update(func(tx *Tx) error {
		if _, err := tx.Insert("sample", Record{"name": "phantom"}); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if n := s.Count("sample"); n != 0 {
		t.Errorf("count after rollback = %d, want 0", n)
	}
	// IDs are not burned by rolled-back transactions.
	id := mustInsert(t, s, "sample", Record{"name": "real"})
	if id != 1 {
		t.Errorf("first committed id = %d, want 1", id)
	}
}

func TestReadOnlyTxRejectsWrites(t *testing.T) {
	s := newTestStore(t, "sample")
	id := mustInsert(t, s, "sample", Record{"name": "x"})
	err := s.View(func(tx *Tx) error {
		if _, err := tx.Insert("sample", Record{}); !errors.Is(err, ErrReadOnly) {
			t.Errorf("Insert in View: %v, want ErrReadOnly", err)
		}
		if err := tx.Put("sample", id, Record{}); !errors.Is(err, ErrReadOnly) {
			t.Errorf("Put in View: %v, want ErrReadOnly", err)
		}
		if err := tx.Delete("sample", id); !errors.Is(err, ErrReadOnly) {
			t.Errorf("Delete in View: %v, want ErrReadOnly", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTxSeesOwnWrites(t *testing.T) {
	s := newTestStore(t, "sample")
	err := s.Update(func(tx *Tx) error {
		id, err := tx.Insert("sample", Record{"name": "pending"})
		if err != nil {
			return err
		}
		r, err := tx.Get("sample", id)
		if err != nil {
			return err
		}
		if r.String("name") != "pending" {
			t.Errorf("tx read of own write: %v", r)
		}
		if n := tx.Count("sample"); n != 1 {
			t.Errorf("tx count = %d, want 1", n)
		}
		if err := tx.Delete("sample", id); err != nil {
			return err
		}
		if _, err := tx.Get("sample", id); !errors.Is(err, ErrNotFound) {
			t.Errorf("tx read of own delete: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnsupportedValueType(t *testing.T) {
	s := newTestStore(t, "sample")
	err := s.Update(func(tx *Tx) error {
		_, err := tx.Insert("sample", Record{"bad": struct{}{}})
		return err
	})
	if !errors.Is(err, ErrBadValue) {
		t.Fatalf("got %v, want ErrBadValue", err)
	}
	// int (not int64) is also rejected, guarding against silent truncation.
	err = s.Update(func(tx *Tx) error {
		_, err := tx.Insert("sample", Record{"n": 5})
		return err
	})
	if !errors.Is(err, ErrBadValue) {
		t.Fatalf("plain int: got %v, want ErrBadValue", err)
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	s := newTestStore(t, "sample")
	for i := 0; i < 10; i++ {
		mustInsert(t, s, "sample", Record{"n": int64(i)})
	}
	var ids []int64
	err := s.View(func(tx *Tx) error {
		return tx.Scan("sample", func(r Record) bool {
			ids = append(ids, r.ID())
			return len(ids) < 4
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("early stop failed: visited %d", len(ids))
	}
	for i, id := range ids {
		if id != int64(i+1) {
			t.Fatalf("scan order: ids = %v", ids)
		}
	}
}

func TestScanSeesOverlay(t *testing.T) {
	s := newTestStore(t, "sample")
	a := mustInsert(t, s, "sample", Record{"name": "a"})
	b := mustInsert(t, s, "sample", Record{"name": "b"})
	err := s.Update(func(tx *Tx) error {
		if err := tx.Delete("sample", a); err != nil {
			return err
		}
		if err := tx.Put("sample", b, Record{"name": "b2"}); err != nil {
			return err
		}
		if _, err := tx.Insert("sample", Record{"name": "c"}); err != nil {
			return err
		}
		var names []string
		if err := tx.Scan("sample", func(r Record) bool {
			names = append(names, r.String("name"))
			return true
		}); err != nil {
			return err
		}
		if len(names) != 2 || names[0] != "b2" || names[1] != "c" {
			t.Errorf("overlay scan = %v, want [b2 c]", names)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTimeRoundTrip(t *testing.T) {
	s := newTestStore(t, "sample")
	now := time.Date(2010, 1, 15, 9, 30, 0, 0, time.UTC)
	id := mustInsert(t, s, "sample", Record{"created": now})
	r, _ := s.Get("sample", id)
	if !r.Time("created").Equal(now) {
		t.Errorf("time round trip: %v", r.Time("created"))
	}
}

func TestClosedStore(t *testing.T) {
	s := newTestStore(t, "sample")
	s.Close()
	if err := s.Update(func(tx *Tx) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Update on closed store: %v", err)
	}
	if err := s.View(func(tx *Tx) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("View on closed store: %v", err)
	}
	if err := s.CreateTable("x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("CreateTable on closed store: %v", err)
	}
}

func TestCommitSeqAdvances(t *testing.T) {
	s := newTestStore(t, "sample")
	before := s.CommitSeq()
	mustInsert(t, s, "sample", Record{})
	if got := s.CommitSeq(); got != before+1 {
		t.Errorf("CommitSeq = %d, want %d", got, before+1)
	}
	// Read-only transactions do not advance the sequence.
	_ = s.View(func(tx *Tx) error { return nil })
	if got := s.CommitSeq(); got != before+1 {
		t.Errorf("CommitSeq after View = %d, want %d", got, before+1)
	}
}

func TestRecordAccessors(t *testing.T) {
	r := Record{
		"s": "str", "i": int64(7), "f": 2.5, "b": true,
		"t":  time.Unix(100, 0),
		"li": []int64{1, 2}, "ls": []string{"x"},
	}
	if r.String("s") != "str" || r.Int("i") != 7 || r.Float("f") != 2.5 || !r.Bool("b") {
		t.Error("scalar accessors failed")
	}
	if !r.Time("t").Equal(time.Unix(100, 0)) {
		t.Error("time accessor failed")
	}
	if len(r.IDs("li")) != 2 || len(r.Strings("ls")) != 1 {
		t.Error("slice accessors failed")
	}
	// Wrong-type and missing keys return zero values.
	if r.String("i") != "" || r.Int("s") != 0 || r.Int("missing") != 0 {
		t.Error("accessor zero-value behaviour failed")
	}
}

func TestEnsureTableIdempotent(t *testing.T) {
	s := New()
	s.EnsureTable("x")
	mustInsert(t, s, "x", Record{"a": "b"})
	s.EnsureTable("x") // must not wipe existing data
	if s.Count("x") != 1 {
		t.Error("EnsureTable reset the table")
	}
	if !s.HasTable("x") || s.HasTable("y") {
		t.Error("HasTable wrong")
	}
}

func TestTablesSorted(t *testing.T) {
	s := newTestStore(t, "zebra", "alpha", "mid")
	got := s.Tables()
	want := []string{"alpha", "mid", "zebra"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tables() = %v, want %v", got, want)
		}
	}
}
