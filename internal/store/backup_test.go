package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// TestBackupRoundTrip: a quiescent directory backs up and restores
// byte-exactly — every committed row present, the restored store healthy
// and writable.
func TestBackupRoundTrip(t *testing.T) {
	src := t.TempDir()
	s, err := Open(src, DurabilityOptions{Sync: SyncAlways, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	s.EnsureTable("sample")
	for i := int64(1); i <= 20; i++ {
		if err := s.Update(func(tx *Tx) error {
			_, err := tx.Insert("sample", Record{"n": i})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(); err != nil { // a snapshot plus a WAL tail
		t.Fatal(err)
	}
	for i := int64(21); i <= 30; i++ {
		if err := s.Update(func(tx *Tx) error {
			_, err := tx.Insert("sample", Record{"n": i})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}

	dst := filepath.Join(t.TempDir(), "backup")
	info, err := BackupDir(src, dst)
	if err != nil {
		t.Fatalf("backup: %v", err)
	}
	if info.LastSeq != s.CommitSeq() {
		t.Fatalf("backup restorable through %d, primary at %d", info.LastSeq, s.CommitSeq())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	assertRestorablePrefix(t, dst, 30, 30, "round trip")
}

// TestBackupUnderConcurrentWriter is the satellite's live-backup half:
// backups taken while a writer commits (and snapshots truncate the WAL
// underfoot) must each restore to an exact committed prefix of the
// writer's history — never a torn directory, never a phantom row.
func TestBackupUnderConcurrentWriter(t *testing.T) {
	src := t.TempDir()
	s, err := Open(src, DurabilityOptions{Sync: SyncOff, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.EnsureTable("sample")

	var acked atomic.Int64
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		defer close(done)
		for i := int64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Update(func(tx *Tx) error {
				_, err := tx.Insert("sample", Record{"n": i})
				return err
			}); err != nil {
				done <- err
				return
			}
			acked.Store(i)
			if i%40 == 0 {
				if err := s.Snapshot(); err != nil { // races the copy with truncation
					done <- err
					return
				}
			}
		}
	}()

	const backups = 4
	dsts := make([]string, backups)
	lows := make([]int64, backups)
	highs := make([]int64, backups)
	for b := 0; b < backups; b++ {
		for acked.Load() < int64(b+1)*25 { // let history accumulate between copies
			time.Sleep(time.Millisecond)
		}
		lows[b] = acked.Load()
		dsts[b] = filepath.Join(t.TempDir(), fmt.Sprintf("backup%d", b))
		if _, err := BackupDir(src, dsts[b]); err != nil {
			t.Fatalf("backup %d: %v", b, err)
		}
		// Anything acked after the copy finished cannot be expected in it;
		// anything acked before it started must be. SyncOff means an acked
		// commit may still be in the WAL buffer, so the floor is what the
		// copy could actually observe: the last frame flushed to disk. The
		// WAL flushes on every group commit here (the workload is one
		// writer, commit-by-commit), so acked-at-start is the right floor.
		// The ceiling allows one extra row: the writer stores acked only
		// after Update returns, so the single in-flight commit may have
		// reached the WAL before the copy ended with its ack still pending
		// when we read the counter.
		highs[b] = acked.Load() + 1
	}
	close(stop)
	if err, ok := <-done; ok && err != nil {
		t.Fatalf("writer: %v", err)
	}

	for b := 0; b < backups; b++ {
		assertRestorablePrefix(t, dsts[b], lows[b], highs[b], fmt.Sprintf("backup %d", b))
	}
}

// assertRestorablePrefix opens a backup directory and checks it holds an
// exact committed prefix of the writer's history: contiguous rows 1..k
// with low <= k <= high, each carrying its own index, and the restored
// store healthy and writable.
func assertRestorablePrefix(t *testing.T, dir string, low, high int64, label string) {
	t.Helper()
	s, err := Open(dir, DurabilityOptions{Sync: SyncAlways, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("%s: restore: %v", label, err)
	}
	defer s.Close()
	k := int64(s.Count("sample"))
	if k < low || k > high {
		t.Fatalf("%s: restored %d rows, want between %d and %d", label, k, low, high)
	}
	for id := int64(1); id <= k; id++ {
		r, err := s.Get("sample", id)
		if err != nil {
			t.Fatalf("%s: hole in restored prefix at id %d: %v", label, id, err)
		}
		if r.Int("n") != id {
			t.Fatalf("%s: restored row %d carries n=%d", label, id, r.Int("n"))
		}
	}
	if _, err := s.Get("sample", k+1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("%s: phantom row beyond the restored prefix (id %d): %v", label, k+1, err)
	}
	if h := s.Health(); !h.OK {
		t.Fatalf("%s: restored store degraded: %q", label, h.Reason)
	}
	s.EnsureTable("sample")
	if err := s.Update(func(tx *Tx) error {
		_, err := tx.Insert("sample", Record{"n": k + 1})
		return err
	}); err != nil {
		t.Fatalf("%s: write after restore: %v", label, err)
	}
}

// TestBackupRefusesNonEmptyDestination: an accidental destination with
// unrelated content is refused rather than cleared.
func TestBackupRefusesNonEmptyDestination(t *testing.T) {
	src := t.TempDir()
	s, err := Open(src, DurabilityOptions{Sync: SyncAlways, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	dst := t.TempDir()
	if err := os.WriteFile(filepath.Join(dst, "precious.txt"), []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := BackupDir(src, dst); err == nil {
		t.Fatal("backup into a non-empty directory did not refuse")
	}
}

// TestBackupStaleLockRegression pins the DirInUse/flock contract the
// backup design leans on: even if a LOCK file naming a LIVE pid lands in
// a backup directory (an older backup tool, a naive rsync), the probe
// must see through it — the flock, not the file, is the lock — and the
// backup must open normally.
func TestBackupStaleLockRegression(t *testing.T) {
	src := t.TempDir()
	s, err := Open(src, DurabilityOptions{Sync: SyncAlways, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	s.EnsureTable("sample")
	if err := s.Update(func(tx *Tx) error {
		_, err := tx.Insert("sample", Record{"n": int64(1)})
		return err
	}); err != nil {
		t.Fatal(err)
	}

	dst := filepath.Join(t.TempDir(), "backup")
	if _, err := BackupDir(src, dst); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh backup carries no LOCK at all.
	if _, err := os.Stat(filepath.Join(dst, "LOCK")); !os.IsNotExist(err) {
		t.Fatalf("backup copied a LOCK file (err=%v)", err)
	}

	// Plant the nastiest possible stale lock: our own (live) pid. Without
	// the flock probe this would read as "in use by a running process".
	if err := os.WriteFile(filepath.Join(dst, "LOCK"), []byte(fmt.Sprintf("%d\n", os.Getpid())), 0o644); err != nil {
		t.Fatal(err)
	}
	if pid, inUse := DirInUse(dst); inUse {
		t.Fatalf("planted stale LOCK reads as in-use (pid %d)", pid)
	}
	rs, err := Open(dst, DurabilityOptions{Sync: SyncAlways, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("restore with planted stale LOCK: %v", err)
	}
	defer rs.Close()
	if got := rs.Count("sample"); got != 1 {
		t.Fatalf("restored %d rows, want 1", got)
	}
	// And now that the restored store IS open, the probe must say so.
	if _, inUse := DirInUse(dst); !inUse {
		t.Fatal("open restored store not reported as in-use")
	}
}
