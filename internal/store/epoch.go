package store

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// The replication epoch is the store's fencing token: a counter that
// starts at 1, is bumped (durably, via AdvanceEpoch) exactly when a
// follower is promoted to primary, and travels with every snapshot and
// every replication handshake. Two histories that share a prefix but
// were extended by different primaries carry different epochs, so a
// resurrected old primary — or a follower that kept following one —
// presents a lower epoch and is refused with ErrFencedEpoch instead of
// silently merging its phantom commits into the new timeline.
//
// On disk the epoch lives in two places: inside the snapshot (so a
// streamed resync or a restored backup adopts the epoch of the state it
// carries) and in a dedicated EPOCH file written by AdvanceEpoch (so a
// promotion is durable immediately, without rewriting a possibly-large
// snapshot). Open restores the maximum of the two.

// epochFile is the durable promotion marker inside the data directory.
const epochFile = "EPOCH"

// FencedEpochError reports a replication epoch conflict: the remote
// side of a handshake (or an incoming snapshot) belongs to an older
// timeline than this store. It matches ErrFencedEpoch with errors.Is.
type FencedEpochError struct {
	Local  uint64 // this node's epoch
	Remote uint64 // the peer's (or snapshot's) epoch
}

func (e *FencedEpochError) Error() string {
	return fmt.Sprintf("replication epoch fenced: local epoch %d, remote epoch %d", e.Local, e.Remote)
}

// Is makes errors.Is(err, ErrFencedEpoch) match.
func (e *FencedEpochError) Is(target error) bool { return target == ErrFencedEpoch }

// Epoch returns the store's replication epoch (always >= 1).
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// AdvanceEpoch durably advances the replication epoch to
// max(current, floor)+1 and returns the new value. floor is the highest
// epoch the caller has observed elsewhere (a promoting follower passes
// its primary's last advertised epoch), so the new epoch fences both
// this store's own history and the one it was following.
//
// The new epoch is persisted — and fsynced — BEFORE it is published:
// a store that crashes mid-promotion recovers either at its old epoch
// (still a replica, still refusing writes) or at the new one, never as
// a writable node holding a stale fencing token. On a durable store a
// persistence failure degrades the store and leaves the epoch
// unchanged; the promotion must be treated as failed.
func (s *Store) AdvanceEpoch(floor uint64) (uint64, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if d := s.degraded.Load(); d != nil {
		return 0, &DegradedError{Cause: d.cause, Since: d.since}
	}
	next := s.epoch.Load()
	if floor > next {
		next = floor
	}
	next++
	if s.wal != nil {
		if err := s.writeEpochFile(next); err != nil {
			s.degrade(err)
			return 0, fmt.Errorf("store: persisting epoch %d: %w", next, err)
		}
	}
	s.epoch.Store(next)
	return next, nil
}

// writeEpochFile persists the epoch to <dir>/EPOCH with the same
// atomic-write protocol as snapshots: temp file, fsync, rename, fsync
// the directory.
func (s *Store) writeEpochFile(epoch uint64) error {
	fsys := s.fileSystem()
	path := filepath.Join(s.dir, epochFile)
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, err = io.WriteString(f, strconv.FormatUint(epoch, 10)+"\n")
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return syncDir(fsys, s.dir)
}

// readEpochFile reads <dir>/EPOCH. A missing file is 0 (pre-epoch
// directory), not an error; an unparsable one is ErrCorrupt.
func readEpochFile(fsys FS, dir string) (uint64, error) {
	f, err := fsys.OpenFile(filepath.Join(dir, epochFile), os.O_RDONLY, 0)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	buf, err := io.ReadAll(io.LimitReader(f, 64))
	if err != nil {
		return 0, err
	}
	v, perr := strconv.ParseUint(string(bytes.TrimSpace(buf)), 10, 64)
	if perr != nil {
		return 0, fmt.Errorf("store: epoch file: %v: %w", perr, ErrCorrupt)
	}
	return v, nil
}
