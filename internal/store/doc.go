// Package store implements the embedded, transactional entity store that
// underpins the B-Fabric reproduction. The original system sat on a
// relational DBMS accessed through an ORM; this package provides the
// equivalent substrate from scratch: named tables of flat records with
// serial identifiers, secondary and unique indexes, multi-version snapshot
// transactions with commit/rollback, ordered scans, a declarative query
// engine with a cost-based planner, and a durable write path (write-ahead
// log, group commit, snapshots, crash recovery).
//
// # Concurrency model
//
// The store is multi-versioned. Every commit publishes a new immutable
// version of the whole store — a copy-on-write derivation that shares all
// untouched tables, record chunks and index postings with its predecessor
// — through a single atomic pointer. The consequences define the API's
// behavior under load:
//
//   - Readers never block and are never blocked. View and Begin(true) pin
//     the version current at the call with one atomic load and then run
//     lock-free to completion on that frozen state, no matter how many
//     commits land meanwhile. A long paginated ScanRange observes exactly
//     one version.
//   - Update transactions serialize with each other on an internal writer
//     mutex, exactly like the classic single-writer model, so their
//     read-modify-write cycles need no conflict handling.
//   - Begin(false) transactions are optimistic: they buffer writes against
//     their snapshot without locking and validate first-committer-wins at
//     Commit, failing with ErrConflict if a record they wrote was changed
//     (or a serial id they claimed was taken) after their pin.
//
// Superseded versions are reclaimed by the garbage collector once the last
// reader drops them. See docs/concurrency.md for the full isolation model,
// its interaction with the WAL, and operator guidance.
//
// # Bulk writes
//
// Transactions are linear in their write-set size. The pending overlay
// maintains its own per-index key maps, so unique-constraint checks and
// overlay-aware lookups are O(1) map probes regardless of how many
// writes are buffered, and commit applies index changes as per-key
// deltas — each touched key's postings are merged exactly once, each
// touched chunk and index shard is copied at most once, however large
// the batch. Bulk loaders should therefore batch thousands of records
// per transaction to amortize per-commit costs; see docs/ingest.md for
// guidance.
//
// # Durability
//
// A store built with New lives purely in memory. A store built with Open
// is durable: every committed transaction is appended to a write-ahead
// log in the data directory before its version is published, a
// group-commit batcher coalesces concurrent commits into shared fsyncs
// (policy-controlled via SyncAlways, SyncInterval and SyncOff), and
// background snapshotting — which serializes a pinned version without
// pausing writers — truncates the log once it outgrows a threshold.
// Reopening the directory replays the log over the latest snapshot and
// restores exactly the committed prefix, even after a hard kill
// mid-append. Only data is logged: tables and secondary indexes are
// re-registered by the caller after Open (idempotently, as internal/core
// does). See DESIGN.md ("Durability") for the record format and the
// recovery sequence.
//
// # Records and aliasing
//
// Records are flat maps from field name to a value of one of the supported
// types (string, int64, float64, bool, time.Time, []int64, []string). The
// store deep-copies records on the way in, and committed records are never
// mutated in place afterwards: every write replaces the whole record map
// inside a fresh version. This immutability contract is what makes both
// the zero-copy read path and the version machinery safe — Tx.GetRef,
// Tx.ScanRef, Tx.FindRef and friends hand out shared references to
// committed records that remain valid snapshots even after the
// transaction ends, provided callers treat them as read-only. The classic
// Get/Scan/Find API still returns deep copies for callers that mutate.
// See DESIGN.md for the full aliasing contract.
//
// # Declarative queries
//
// Tx.Query compiles a Query value — one table, a conjunction of Eq/In/
// Range predicates, an ordering, a limit and a keyset cursor — against
// the transaction's pinned version and returns a streaming, zero-copy
// Rows iterator. A planner picks the cheapest access path (unique-index
// point lookup, most-selective secondary-index postings, or a bounded
// ordered id scan) and pushes the remaining predicates into the iterator
// as residual filters; Tx.Explain returns the exact Plan the executor
// follows. See docs/query.md for the query model, planner rules and
// cursor semantics.
//
// # Aggregation
//
// Query.Count, Query.GroupBy and Query.Aggregate build aggregate forms
// (Count/Min/Max/Sum, optionally grouped) executed by Tx.QueryCount and
// Tx.Aggregate through the same planner. Predicate-free counts read the
// table's maintained live counter O(1); fully-indexed counts and
// groupings sum index postings lengths or walk the index's keys,
// adjusting for the transaction's overlay without materializing rows;
// everything else folds inside the streaming iterator. The per-table
// counts and postings are themselves the maintained counters — updated
// by every commit, rebuilt by recovery and replica replay. Tx.ExplainAgg
// names the chosen strategy. See the Aggregation section of
// docs/query.md.
package store
