package store

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestPoisonPropagation pins the full life cycle of a poisoned WAL: the
// failing commit returns the root cause, the store degrades, Close still
// flushes what it can and reports the root cause, and a second Open on
// the same directory recovers exactly the committed prefix.
func TestPoisonPropagation(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	s, err := Open(dir, DurabilityOptions{Sync: SyncAlways, SnapshotEvery: -1, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	s.EnsureTable("sample")
	for i := int64(1); i <= 3; i++ {
		if err := s.Update(func(tx *Tx) error {
			_, err := tx.Insert("sample", Record{"n": i})
			return err
		}); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}

	// The next WAL write tears mid-frame: the log poisons.
	ffs.FailNext(OpWrite, FaultTorn)
	err = s.Update(func(tx *Tx) error {
		_, err := tx.Insert("sample", Record{"n": int64(4)})
		return err
	})
	if err == nil {
		t.Fatal("commit over a torn WAL write was acknowledged")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("poisoning commit returned %v, want the injected root cause", err)
	}
	if err := s.Update(func(tx *Tx) error { return nil }); !errors.Is(err, ErrDegraded) {
		t.Fatalf("write after poison returned %v, want ErrDegraded", err)
	}

	// Close must not mask the failure: it reports the root cause.
	cerr := s.Close()
	if cerr == nil {
		t.Fatal("Close on a poisoned store returned nil")
	}
	if !errors.Is(cerr, ErrInjected) {
		t.Fatalf("Close returned %v, want the injected root cause", cerr)
	}

	// Recovery on a healthy filesystem: the torn tail is cut, the three
	// acknowledged commits survive, and the store is writable again.
	s2, err := Open(dir, DurabilityOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("reopen after poison: %v", err)
	}
	defer s2.Close()
	if n := s2.Count("sample"); n != 3 {
		t.Fatalf("recovered %d records, want the 3 acknowledged", n)
	}
	if h := s2.Health(); !h.OK {
		t.Fatalf("reopened store degraded: %q", h.Reason)
	}
	if err := s2.Update(func(tx *Tx) error {
		_, err := tx.Insert("sample", Record{"n": int64(4)})
		return err
	}); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

// TestDegradedOptimisticCommit verifies the optimistic path fails fast
// too: Begin succeeds (it may be used read-only), Commit refuses.
func TestDegradedOptimisticCommit(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	s, err := Open(dir, DurabilityOptions{Sync: SyncAlways, SnapshotEvery: -1, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.EnsureTable("sample")

	ffs.FailNext(OpSync, FaultENOSPC)
	_ = s.Update(func(tx *Tx) error {
		_, err := tx.Insert("sample", Record{"n": int64(1)})
		return err
	})

	tx, err := s.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("sample", Record{"n": int64(2)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("optimistic Commit on degraded store returned %v, want ErrDegraded", err)
	}

	// WithRetry must not spin on a degraded store.
	err = WithRetry(context.Background(), s, func(tx *Tx) error {
		_, err := tx.Insert("sample", Record{"n": int64(3)})
		return err
	})
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("WithRetry on degraded store returned %v, want ErrDegraded", err)
	}

	// ENOSPC is preserved through the degraded wrapper for callers that
	// alert on disk-full specifically.
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("degraded error lost its type: %v", err)
	}
	if de.Since.After(time.Now()) {
		t.Fatalf("degraded since is in the future: %v", de.Since)
	}
}
