package store

import "errors"

// Sentinel errors returned by the store. Callers should match them with
// errors.Is since they are usually wrapped with context.
var (
	// ErrNotFound is returned when a record does not exist.
	ErrNotFound = errors.New("record not found")
	// ErrNoTable is returned when a table does not exist.
	ErrNoTable = errors.New("no such table")
	// ErrExists is returned when creating something that already exists.
	ErrExists = errors.New("already exists")
	// ErrUnique is returned when a write violates a unique index.
	ErrUnique = errors.New("unique constraint violation")
	// ErrReadOnly is returned when writing inside a read-only transaction.
	ErrReadOnly = errors.New("read-only transaction")
	// ErrClosed is returned when the store has been closed.
	ErrClosed = errors.New("store closed")
	// ErrBadValue is returned for unsupported field value types.
	ErrBadValue = errors.New("unsupported value type")
	// ErrTxDone is returned when using a finished transaction.
	ErrTxDone = errors.New("transaction already finished")
	// ErrConflict is returned by Tx.Commit on an optimistic (Begin)
	// transaction when another transaction committed a change to a record
	// this one wrote or deleted — or claimed a serial id this one also
	// claimed — after this transaction pinned its snapshot
	// (first-committer-wins). Retry by re-running the transaction on a
	// fresh snapshot, or use Update, which serializes and cannot conflict.
	ErrConflict = errors.New("write conflict")
	// ErrBadQuery is returned by Tx.Query/Tx.Explain for a query that is
	// malformed: an empty predicate field, an unindexable or incomparable
	// comparand, a negative limit or cursor, or a keyset cursor combined
	// with non-id ordering.
	ErrBadQuery = errors.New("bad query")
	// ErrCorrupt is returned when recovery finds damage it cannot repair
	// without losing committed transactions from the middle of the
	// history (a torn tail on the newest WAL segment is repaired, not
	// reported).
	ErrCorrupt = errors.New("corrupt data directory")
	// ErrReplica is returned by every local write path of a store placed
	// in replica mode with SetReplica: the only writes a replica accepts
	// are replicated frames (ApplyReplicated) and snapshot resyncs
	// (ResetFromSnapshot). Writers must be routed to the primary.
	ErrReplica = errors.New("read-only replica")
	// ErrReplicaGap is returned by ApplyReplicated when a frame skips
	// ahead of the replica's next expected commit sequence. The replica's
	// state is untouched; the caller must re-fetch the missing frames (or
	// resync from a snapshot) rather than apply out of order.
	ErrReplicaGap = errors.New("replicated frame out of order")
	// ErrSeqGone is returned by WALFrames when the requested start
	// sequence has been truncated out of the log by a snapshot. Callers
	// catch up from a snapshot instead.
	ErrSeqGone = errors.New("wal sequence truncated")
	// ErrFencedEpoch is the fencing sentinel: a replication peer (or an
	// incoming snapshot) presented an epoch older than this store's. The
	// concrete error is a *FencedEpochError carrying both epochs; see
	// epoch.go. A fenced node must not serve or absorb frames across the
	// epoch boundary — it resyncs from a snapshot of the newer timeline.
	ErrFencedEpoch = errors.New("replication epoch fenced")
)
