package store

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// queryStore builds a store with one "sample" table carrying a unique
// "name" index, secondary indexes on "project" and "species", an
// unindexed "grade" field and a "weight" float:
//
//	id 1..n: name=s<i>, project=(i%projects)+1, species cycles 3 values,
//	         grade=i%5, weight=float64(i)
func queryStore(t *testing.T, n, projects int) *Store {
	t.Helper()
	s := newTestStore(t, "sample")
	if err := s.CreateIndex("sample", "name", true); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"project", "species"} {
		if err := s.CreateIndex("sample", f, false); err != nil {
			t.Fatal(err)
		}
	}
	species := []string{"arabidopsis", "human", "mouse"}
	err := s.Update(func(tx *Tx) error {
		for i := 1; i <= n; i++ {
			if _, err := tx.Insert("sample", Record{
				"name":    fmt.Sprintf("s%d", i),
				"project": int64(i%projects + 1),
				"species": species[i%len(species)],
				"grade":   int64(i % 5),
				"weight":  float64(i),
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func queryIDs(t *testing.T, tx *Tx, q Query) []int64 {
	t.Helper()
	rows, err := tx.Query(q)
	if err != nil {
		t.Fatalf("Query(%+v): %v", q, err)
	}
	var ids []int64
	for rows.Next() {
		if got := rows.Record().ID(); got != rows.ID() {
			t.Fatalf("Record().ID() = %d, ID() = %d", got, rows.ID())
		}
		ids = append(ids, rows.ID())
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("rows.Err: %v", err)
	}
	return ids
}

// scanFilterIDs is the hand-rolled baseline the engine must reproduce:
// full ordered scan plus Go-side predicate filtering.
func scanFilterIDs(t *testing.T, tx *Tx, table string, keep func(Record) bool) []int64 {
	t.Helper()
	var ids []int64
	err := tx.ScanRef(table, func(r Record) bool {
		if keep(r) {
			ids = append(ids, r.ID())
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

func eqIDs(t *testing.T, got, want []int64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d ids %v, want %d %v", label, len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: ids[%d] = %d, want %d (got %v want %v)", label, i, got[i], want[i], got, want)
		}
	}
}

func TestQueryPlanSelection(t *testing.T) {
	s := queryStore(t, 200, 10)
	_ = s.View(func(tx *Tx) error {
		cases := []struct {
			q      Query
			access Access
			field  string
		}{
			{Query{Table: "sample", Where: []Pred{Eq("id", int64(7))}}, AccessPoint, "id"},
			{Query{Table: "sample", Where: []Pred{Eq("name", "s3"), Eq("project", int64(1))}}, AccessUnique, "name"},
			{Query{Table: "sample", Where: []Pred{Eq("project", int64(1)), Eq("grade", int64(2))}}, AccessIndex, "project"},
			{Query{Table: "sample", Where: []Pred{Eq("grade", int64(2))}}, AccessScan, ""},
			{Query{Table: "sample"}, AccessScan, ""},
			{Query{Table: "sample", Where: []Pred{In("id", int64(1), int64(5))}}, AccessPoint, "id"},
		}
		for _, c := range cases {
			p, err := tx.Explain(c.q)
			if err != nil {
				t.Fatalf("Explain(%+v): %v", c.q, err)
			}
			if p.Access != c.access || p.Field != c.field {
				t.Errorf("Explain(%+v) = %s; want access=%v field=%q", c.q, p, c.access, c.field)
			}
			rows, err := tx.Query(c.q)
			if err != nil {
				t.Fatal(err)
			}
			if rows.Plan().String() != p.String() {
				t.Errorf("Rows.Plan %q != Explain %q", rows.Plan(), p)
			}
		}
		return nil
	})
}

// TestQueryPlanCostBased pins the planner's selectivity choice: with two
// indexed equality predicates it must drive from the one with the
// smaller committed postings list.
func TestQueryPlanCostBased(t *testing.T) {
	// 300 rows over 30 projects (10 rows each) and 3 species (100 each):
	// project is more selective and must win regardless of order.
	s := queryStore(t, 300, 30)
	_ = s.View(func(tx *Tx) error {
		for _, where := range [][]Pred{
			{Eq("project", int64(4)), Eq("species", "human")},
			{Eq("species", "human"), Eq("project", int64(4))},
		} {
			p, err := tx.Explain(Query{Table: "sample", Where: where})
			if err != nil {
				t.Fatal(err)
			}
			if p.Access != AccessIndex || p.Field != "project" {
				t.Errorf("plan %s: want index(project) driving", p)
			}
			if len(p.Residual) != 1 || p.Residual[0] != "species" {
				t.Errorf("plan %s: want species residual", p)
			}
			if p.EstRows != 10 {
				t.Errorf("plan %s: est = %d, want 10", p, p.EstRows)
			}
		}
		// When one side's postings shrink below the other's, the choice
		// flips — the estimate is read from the index, not schema order.
		p, err := tx.Explain(Query{Table: "sample", Where: []Pred{
			Eq("project", int64(4)), In("species", "human", "mouse", "arabidopsis"),
		}})
		if err != nil {
			t.Fatal(err)
		}
		if p.Field != "project" || p.Keys != 1 {
			t.Errorf("plan %s: 3-key species union must lose to project", p)
		}
		return nil
	})
}

func TestQueryEquivalenceAgainstScan(t *testing.T) {
	s := queryStore(t, 500, 7)
	_ = s.View(func(tx *Tx) error {
		cases := []struct {
			name string
			q    Query
			keep func(Record) bool
		}{
			{"eq-indexed", Query{Table: "sample", Where: []Pred{Eq("project", int64(3))}},
				func(r Record) bool { return r.Int("project") == 3 }},
			{"eq-unindexed", Query{Table: "sample", Where: []Pred{Eq("grade", int64(2))}},
				func(r Record) bool { return r.Int("grade") == 2 }},
			{"multi-pred", Query{Table: "sample", Where: []Pred{Eq("project", int64(3)), Eq("species", "human"), Eq("grade", int64(2))}},
				func(r Record) bool {
					return r.Int("project") == 3 && r.String("species") == "human" && r.Int("grade") == 2
				}},
			{"in-union", Query{Table: "sample", Where: []Pred{In("project", int64(1), int64(5), int64(5))}},
				func(r Record) bool { return r.Int("project") == 1 || r.Int("project") == 5 }},
			{"range-float", Query{Table: "sample", Where: []Pred{Range("weight", 100.5, int64(200))}},
				func(r Record) bool { return r.Float("weight") >= 100.5 && r.Float("weight") <= 200 }},
			{"range-id-scan", Query{Table: "sample", Where: []Pred{Range("id", int64(50), int64(300)), Eq("grade", int64(1))}},
				func(r Record) bool { return r.ID() >= 50 && r.ID() <= 300 && r.Int("grade") == 1 }},
			{"range-open-min", Query{Table: "sample", Where: []Pred{Range("weight", nil, 25.0)}},
				func(r Record) bool { return r.Float("weight") <= 25 }},
			{"unique", Query{Table: "sample", Where: []Pred{Eq("name", "s42")}},
				func(r Record) bool { return r.String("name") == "s42" }},
			{"type-strict-eq", Query{Table: "sample", Where: []Pred{Eq("grade", "2")}},
				func(r Record) bool { return false }},
			{"empty-in", Query{Table: "sample", Where: []Pred{In("project")}},
				func(r Record) bool { return false }},
		}
		for _, c := range cases {
			want := scanFilterIDs(t, tx, "sample", c.keep)
			eqIDs(t, queryIDs(t, tx, c.q), want, c.name)

			// Desc must yield exactly the reverse.
			rev := make([]int64, len(want))
			for i, id := range want {
				rev[len(want)-1-i] = id
			}
			qd := c.q
			qd.Desc = true
			eqIDs(t, queryIDs(t, tx, qd), rev, c.name+"/desc")
		}
		return nil
	})
}

func TestQueryLimitAndCursor(t *testing.T) {
	s := queryStore(t, 300, 3) // project 1 holds ids 3,6,...,300
	_ = s.View(func(tx *Tx) error {
		q := Query{Table: "sample", Where: []Pred{Eq("project", int64(1))}, Limit: 10}
		all := queryIDs(t, tx, Query{Table: "sample", Where: []Pred{Eq("project", int64(1))}})

		// Page forward through the whole result via keyset cursors.
		var paged []int64
		var cursor int64
		for {
			q.Cursor = cursor
			page := queryIDs(t, tx, q)
			if len(page) == 0 {
				break
			}
			paged = append(paged, page...)
			cursor = page[len(page)-1]
		}
		eqIDs(t, paged, all, "cursor pages")

		// Descending pagination covers the same set in reverse.
		qd := Query{Table: "sample", Where: []Pred{Eq("project", int64(1))}, Limit: 7, Desc: true}
		paged = paged[:0]
		cursor = 0
		for {
			qd.Cursor = cursor
			page := queryIDs(t, tx, qd)
			if len(page) == 0 {
				break
			}
			paged = append(paged, page...)
			cursor = page[len(page)-1]
		}
		if len(paged) != len(all) {
			t.Fatalf("desc pages covered %d of %d", len(paged), len(all))
		}
		for i := range paged {
			if paged[i] != all[len(all)-1-i] {
				t.Fatalf("desc paged[%d] = %d, want %d", i, paged[i], all[len(all)-1-i])
			}
		}

		// Cursor pagination on the scan path too.
		sq := Query{Table: "sample", Where: []Pred{Eq("grade", int64(0))}, Limit: 9}
		allScan := queryIDs(t, tx, Query{Table: "sample", Where: []Pred{Eq("grade", int64(0))}})
		paged = paged[:0]
		cursor = 0
		for {
			sq.Cursor = cursor
			page := queryIDs(t, tx, sq)
			if len(page) == 0 {
				break
			}
			paged = append(paged, page...)
			cursor = page[len(page)-1]
		}
		eqIDs(t, paged, allScan, "scan cursor pages")
		return nil
	})
}

func TestQueryOrderBySort(t *testing.T) {
	s := newTestStore(t, "w")
	err := s.Update(func(tx *Tx) error {
		// Shuffled weights, one row without the field.
		for _, w := range []float64{5, 1, 4, 2, 3} {
			if _, err := tx.Insert("w", Record{"weight": w}); err != nil {
				return err
			}
		}
		_, err := tx.Insert("w", Record{"other": "x"})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.View(func(tx *Tx) error {
		p, err := tx.Explain(Query{Table: "w", OrderBy: "weight"})
		if err != nil {
			t.Fatal(err)
		}
		if !p.Sorted {
			t.Errorf("plan %s: want sort", p)
		}
		// Missing value sorts first, then ascending weights.
		eqIDs(t, queryIDs(t, tx, Query{Table: "w", OrderBy: "weight"}),
			[]int64{6, 2, 4, 5, 3, 1}, "order by weight")
		eqIDs(t, queryIDs(t, tx, Query{Table: "w", OrderBy: "weight", Desc: true, Limit: 2}),
			[]int64{1, 3}, "top-2 by weight desc")
		// Keyset cursors do not compose with value sorts.
		if _, err := tx.Query(Query{Table: "w", OrderBy: "weight", Cursor: 3}); !errors.Is(err, ErrBadQuery) {
			t.Errorf("cursor+sort: %v, want ErrBadQuery", err)
		}
		return nil
	})
}

// TestQueryObservesOverlay runs every access path inside a transaction
// with pending inserts, rewrites and deletes and checks the engine sees
// the transaction's own state, in both directions.
func TestQueryObservesOverlay(t *testing.T) {
	s := queryStore(t, 60, 3)
	err := s.Update(func(tx *Tx) error {
		// id 3 (project 1) deleted; id 6 (project 1) moved to project 2;
		// one fresh insert into project 1.
		if err := tx.Delete("sample", 3); err != nil {
			return err
		}
		if err := tx.Put("sample", 6, Record{"name": "s6", "project": int64(2), "species": "human", "grade": int64(1), "weight": 6.0}); err != nil {
			return err
		}
		newID, err := tx.Insert("sample", Record{"name": "fresh", "project": int64(1), "species": "human", "grade": int64(1), "weight": 0.5})
		if err != nil {
			return err
		}

		keep := func(r Record) bool { return r.Int("project") == 1 }
		want := scanFilterIDs(t, tx, "sample", keep)
		eqIDs(t, queryIDs(t, tx, Query{Table: "sample", Where: []Pred{Eq("project", int64(1))}}), want, "overlay index path")

		wantScan := scanFilterIDs(t, tx, "sample", func(Record) bool { return true })
		eqIDs(t, queryIDs(t, tx, Query{Table: "sample"}), wantScan, "overlay scan path")

		rev := make([]int64, len(wantScan))
		for i, id := range wantScan {
			rev[len(rev)-1-i] = id
		}
		eqIDs(t, queryIDs(t, tx, Query{Table: "sample", Desc: true}), rev, "overlay desc scan")

		// Point access sees the overlay too: the deleted row is gone, the
		// insert is visible.
		eqIDs(t, queryIDs(t, tx, Query{Table: "sample", Where: []Pred{In("id", int64(3), newID)}}), []int64{newID}, "overlay point")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQueryBadQueries(t *testing.T) {
	s := queryStore(t, 10, 2)
	_ = s.View(func(tx *Tx) error {
		bad := []Query{
			{Table: "sample", Where: []Pred{Eq("", "x")}},
			{Table: "sample", Where: []Pred{Eq("project", []int64{1})}},
			{Table: "sample", Where: []Pred{Eq("id", "7")}},
			{Table: "sample", Where: []Pred{Range("weight", nil, nil)}},
			{Table: "sample", Where: []Pred{Range("weight", true, nil)}},
			{Table: "sample", Where: []Pred{Range("weight", 1.0, "z")}},
			{Table: "sample", Where: []Pred{Range("id", "a", nil)}},
			{Table: "sample", Where: []Pred{{Field: "project", Op: Op(99)}}},
			{Table: "sample", Limit: -1},
			{Table: "sample", Cursor: -2},
			{Table: "sample", OrderBy: "weight", Cursor: 5},
		}
		for _, q := range bad {
			if _, err := tx.Query(q); !errors.Is(err, ErrBadQuery) {
				t.Errorf("Query(%+v) err = %v, want ErrBadQuery", q, err)
			}
			if _, err := tx.Explain(q); !errors.Is(err, ErrBadQuery) {
				t.Errorf("Explain(%+v) err = %v, want ErrBadQuery", q, err)
			}
		}
		if _, err := tx.Query(Query{Table: "nope"}); !errors.Is(err, ErrNoTable) {
			t.Errorf("unknown table: %v", err)
		}
		return nil
	})
	tx, _ := s.Begin(true)
	tx.Rollback()
	if _, err := tx.Query(Query{Table: "sample"}); !errors.Is(err, ErrTxDone) {
		t.Errorf("done tx: %v", err)
	}
}

// TestQueryRangeEmptyWindow pins the empty id-window encoding: an upper
// bound below the id space yields no rows (not a full scan).
func TestQueryRangeEmptyWindow(t *testing.T) {
	s := queryStore(t, 10, 2)
	_ = s.View(func(tx *Tx) error {
		ids := queryIDs(t, tx, Query{Table: "sample", Where: []Pred{Range("id", nil, int64(0))}})
		if len(ids) != 0 {
			t.Errorf("empty window returned %v", ids)
		}
		return nil
	})
}

// TestQueryDescChunkBoundaries walks descending across chunk seams and
// holes (deleted runs, nil chunks from insert-then-delete).
func TestQueryDescChunkBoundaries(t *testing.T) {
	s := newTestStore(t, "t")
	n := chunkSize*3 + 17
	err := s.Update(func(tx *Tx) error {
		for i := 1; i <= n; i++ {
			if _, err := tx.Insert("t", Record{"n": int64(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Delete the whole second chunk plus a run straddling the 3rd/4th seam.
	err = s.Update(func(tx *Tx) error {
		for id := chunkSize + 1; id <= 2*chunkSize; id++ {
			if err := tx.Delete("t", int64(id)); err != nil {
				return err
			}
		}
		for id := 3*chunkSize - 5; id <= 3*chunkSize+5; id++ {
			if err := tx.Delete("t", int64(id)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.View(func(tx *Tx) error {
		asc := queryIDs(t, tx, Query{Table: "t"})
		desc := queryIDs(t, tx, Query{Table: "t", Desc: true})
		if len(asc) != len(desc) {
			t.Fatalf("asc %d rows, desc %d", len(asc), len(desc))
		}
		for i := range asc {
			if asc[i] != desc[len(desc)-1-i] {
				t.Fatalf("desc not the mirror of asc at %d", i)
			}
		}
		bounded := queryIDs(t, tx, Query{Table: "t", Desc: true,
			Where: []Pred{Range("id", int64(chunkSize-3), int64(2*chunkSize+3))}})
		want := []int64{int64(2*chunkSize + 3), int64(2*chunkSize + 2), int64(2*chunkSize + 1),
			int64(chunkSize), int64(chunkSize - 1), int64(chunkSize - 2), int64(chunkSize - 3)}
		eqIDs(t, bounded, want, "bounded desc across hole")
		return nil
	})
}

// TestQueryRandomizedEquivalence cross-checks the planner+executor
// against scan-and-filter over randomized predicates and data, asc and
// desc, with and without limits.
func TestQueryRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := newTestStore(t, "r")
	if err := s.CreateIndex("r", "a", false); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("r", "b", false); err != nil {
		t.Fatal(err)
	}
	err := s.Update(func(tx *Tx) error {
		for i := 0; i < 400; i++ {
			rec := Record{
				"a": int64(rng.Intn(8)),
				"b": fmt.Sprintf("v%d", rng.Intn(5)),
				"c": rng.Float64() * 100,
			}
			if rng.Intn(10) == 0 {
				delete(rec, "c")
			}
			if _, err := tx.Insert("r", rec); err != nil {
				return err
			}
		}
		// Punch holes.
		for i := 0; i < 60; i++ {
			id := int64(rng.Intn(400) + 1)
			if err := tx.Delete("r", id); err != nil && !errors.Is(err, ErrNotFound) {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.View(func(tx *Tx) error {
		for trial := 0; trial < 200; trial++ {
			var preds []Pred
			var checks []func(Record) bool
			if rng.Intn(2) == 0 {
				v := int64(rng.Intn(8))
				preds = append(preds, Eq("a", v))
				checks = append(checks, func(r Record) bool { return r["a"] == v })
			}
			if rng.Intn(2) == 0 {
				v1, v2 := fmt.Sprintf("v%d", rng.Intn(5)), fmt.Sprintf("v%d", rng.Intn(5))
				preds = append(preds, In("b", v1, v2))
				checks = append(checks, func(r Record) bool { return r["b"] == v1 || r["b"] == v2 })
			}
			if rng.Intn(2) == 0 {
				lo, hi := rng.Float64()*100, rng.Float64()*100
				if lo > hi {
					lo, hi = hi, lo
				}
				preds = append(preds, Range("c", lo, hi))
				checks = append(checks, func(r Record) bool {
					c, ok := r["c"].(float64)
					return ok && c >= lo && c <= hi
				})
			}
			q := Query{Table: "r", Where: preds, Desc: rng.Intn(2) == 0}
			want := scanFilterIDs(t, tx, "r", func(r Record) bool {
				for _, ck := range checks {
					if !ck(r) {
						return false
					}
				}
				return true
			})
			if q.Desc {
				for i, j := 0, len(want)-1; i < j; i, j = i+1, j-1 {
					want[i], want[j] = want[j], want[i]
				}
			}
			if lim := rng.Intn(3); lim > 0 {
				q.Limit = lim * 5
				if len(want) > q.Limit {
					want = want[:q.Limit]
				}
			}
			eqIDs(t, queryIDs(t, tx, q), want, fmt.Sprintf("trial %d (%+v)", trial, q))
		}
		return nil
	})
}

// TestQuerySnapshotUnderWrites is the -race fence for the engine: many
// goroutines stream queries (index, scan, desc, sorted) against pinned
// snapshots while a writer commits continuously into the same table.
// Every iterator must observe an internally consistent generation:
// within one transaction, repeated queries agree with each other.
func TestQuerySnapshotUnderWrites(t *testing.T) {
	s := queryStore(t, 400, 4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			err := s.Update(func(tx *Tx) error {
				id := int64(i%400 + 1)
				// Flip the row between two projects; the generation marker
				// "gen" must move with it atomically.
				return tx.Put("sample", id, Record{
					"name": fmt.Sprintf("s%d", id), "project": int64(i%2 + 1),
					"species": "human", "grade": int64(i % 5), "weight": float64(i),
				})
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				_ = s.View(func(tx *Tx) error {
					// Two passes over the same snapshot must agree exactly,
					// however the writer races.
					q := Query{Table: "sample", Where: []Pred{Eq("project", int64(g%2+1))}}
					first := queryIDs(t, tx, q)
					second := queryIDs(t, tx, q)
					eqIDs(t, second, first, "snapshot stability")
					// A desc scan and a sorted query on the same snapshot
					// exercise the other paths under the race detector.
					queryIDs(t, tx, Query{Table: "sample", Desc: true, Limit: 25})
					queryIDs(t, tx, Query{Table: "sample", OrderBy: "weight", Limit: 10})
					return nil
				})
			}
		}(g)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestQueryRowsAfterTxEnd: like GetRef results, an iterator's yielded
// records stay valid snapshots after the transaction ends; the iterator
// itself may also finish draining (it reads only immutable state).
func TestQueryRowsAfterTxEnd(t *testing.T) {
	s := queryStore(t, 20, 2)
	tx, err := s.Begin(true)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tx.Query(Query{Table: "sample", Where: []Pred{Eq("project", int64(1))}})
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("no first row")
	}
	first := rows.Record()
	tx.Rollback()
	rest, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) == 0 {
		t.Fatal("no rows after rollback")
	}
	if first.String("name") == "" {
		t.Error("first record invalidated")
	}
}

func TestPlanString(t *testing.T) {
	s := queryStore(t, 100, 10)
	_ = s.View(func(tx *Tx) error {
		p, err := tx.Explain(Query{
			Table: "sample",
			Where: []Pred{Eq("project", int64(2)), Eq("grade", int64(1))},
			Limit: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := "sample: index(project) est=10 residual=[grade] order=id limit=5"
		if p.String() != want {
			t.Errorf("plan string %q, want %q", p, want)
		}
		p, err = tx.Explain(Query{Table: "sample", Where: []Pred{Range("id", int64(10), int64(20))}, Desc: true})
		if err != nil {
			t.Fatal(err)
		}
		want = "sample: scan ids=[10,20] est=11 order=id desc"
		if p.String() != want {
			t.Errorf("plan string %q, want %q", p, want)
		}
		return nil
	})
}
