package portal

import (
	"bytes"
	"net/http"
	"testing"

	"repro/internal/model"
)

func TestProjectExchangeOverHTTP(t *testing.T) {
	fx := newFixture(t)
	// A member exports the project archive.
	req, _ := http.NewRequest("GET", fx.srv.URL+"/api/projects/1/export", nil)
	req.Header.Set("Authorization", "Bearer "+fx.tokens["alice"])
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: %d", resp.StatusCode)
	}
	var archive bytes.Buffer
	if _, err := archive.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/zip" {
		t.Errorf("content type = %q", ct)
	}

	// Only admins may import.
	code := fx.rawPost(t, "alice", "/api/projects/import", archive.Bytes())
	if code != http.StatusForbidden {
		t.Errorf("scientist import: %d", code)
	}
	code = fx.rawPost(t, "root", "/api/projects/import", archive.Bytes())
	if code != http.StatusCreated {
		t.Fatalf("admin import: %d", code)
	}
	if fx.sys.Store.Count(model.KindProject) != 2 {
		t.Errorf("projects = %d", fx.sys.Store.Count(model.KindProject))
	}
	// Outsiders cannot export projects they cannot access.
	req2, _ := http.NewRequest("GET", fx.srv.URL+"/api/projects/1/export", nil)
	req2.Header.Set("Authorization", "Bearer "+fx.tokens["outsider"])
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusForbidden {
		t.Errorf("outsider export: %d", resp2.StatusCode)
	}
}

// rawPost sends a non-JSON body.
func (fx *fixture) rawPost(t *testing.T, login, path string, body []byte) int {
	t.Helper()
	req, err := http.NewRequest("POST", fx.srv.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+fx.tokens[login])
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}
