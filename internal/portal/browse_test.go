package portal

import (
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"repro/internal/model"
)

func TestBrowseEndpoint(t *testing.T) {
	fx := newFixture(t)
	var created struct{ IDs []int64 }
	fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "hub", Project: fx.project},
	}, &created)
	var out struct {
		Outgoing []map[string]any
		Incoming []map[string]any
	}
	code := fx.call(t, "alice", "GET", "/api/browse/project/1", nil, &out)
	if code != http.StatusOK {
		t.Fatalf("browse: %d", code)
	}
	// The project has at least the new sample inbound.
	if len(out.Incoming) == 0 {
		t.Errorf("incoming = %+v", out.Incoming)
	}
	// Unknown kind fails cleanly.
	code = fx.call(t, "alice", "GET", "/api/browse/not-a-kind/1", nil, nil)
	if code != http.StatusOK {
		// Link graph queries on unknown kinds return empty edge sets or an
		// error depending on table existence; both are acceptable non-5xx.
		if code >= 500 {
			t.Errorf("browse unknown kind: %d", code)
		}
	}
}

func TestBrowseListPagination(t *testing.T) {
	fx := newFixture(t)
	var created struct{ IDs []int64 }
	fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "tpl", Project: fx.project},
		"Batch":  7, "Prefix": "page",
	}, &created)
	if len(created.IDs) != 7 {
		t.Fatalf("batch created %d samples", len(created.IDs))
	}

	type page struct {
		Items []map[string]any `json:"items"`
		Next  int64            `json:"next"`
	}
	var first page
	if code := fx.call(t, "alice", "GET", "/api/browse/sample?limit=3", nil, &first); code != http.StatusOK {
		t.Fatalf("first page: %d", code)
	}
	if len(first.Items) != 3 || first.Next == 0 {
		t.Fatalf("first page: %d items, next=%d", len(first.Items), first.Next)
	}

	// Follow the cursor to the end; pages must be in ascending id order
	// without gaps or repeats.
	seen := map[float64]bool{}
	last := float64(0)
	cur := first
	for {
		for _, item := range cur.Items {
			id, _ := item["id"].(float64)
			if id <= last {
				t.Fatalf("ids out of order: %v after %v", id, last)
			}
			if seen[id] {
				t.Fatalf("duplicate id %v", id)
			}
			seen[id] = true
			last = id
		}
		if cur.Next == 0 {
			break
		}
		var next page
		if code := fx.call(t, "alice", "GET",
			fmt.Sprintf("/api/browse/sample?from=%d&limit=3", cur.Next), nil, &next); code != http.StatusOK {
			t.Fatalf("next page: %d", code)
		}
		cur = next
	}
	if len(seen) != 7 {
		t.Fatalf("paginated over %d samples, want 7", len(seen))
	}

	// Unknown kinds 404; bad cursors 400 with a JSON error body.
	if code := fx.call(t, "alice", "GET", "/api/browse/not-a-kind", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown kind list: %d", code)
	}
	for _, bad := range []string{"from=x", "from=-3", "limit=0", "limit=x"} {
		var errBody struct {
			Error string `json:"error"`
		}
		if code := fx.call(t, "alice", "GET", "/api/browse/sample?"+bad, nil, &errBody); code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", bad, code)
		} else if errBody.Error == "" {
			t.Errorf("%s: 400 without JSON error body", bad)
		}
	}

	// Project scoping: a scientist outside the project sees none of its
	// samples, an expert sees all of them, and non-project-scoped kinds
	// (users) stay visible to everyone.
	var outsiderView, expertView, usersView page
	if code := fx.call(t, "outsider", "GET", "/api/browse/sample?limit=100", nil, &outsiderView); code != http.StatusOK {
		t.Fatalf("outsider list: %d", code)
	}
	if len(outsiderView.Items) != 0 {
		t.Errorf("outsider sees %d samples of a foreign project", len(outsiderView.Items))
	}
	if code := fx.call(t, "eva", "GET", "/api/browse/sample?limit=100", nil, &expertView); code != http.StatusOK {
		t.Fatalf("expert list: %d", code)
	}
	if len(expertView.Items) != 7 {
		t.Errorf("expert sees %d samples, want 7", len(expertView.Items))
	}
	if code := fx.call(t, "outsider", "GET", "/api/browse/user?limit=100", nil, &usersView); code != http.StatusOK {
		t.Fatalf("user list: %d", code)
	}
	if len(usersView.Items) == 0 {
		t.Error("outsider sees no users; unscoped kinds should be visible")
	}
}

// TestBrowseListFilters covers the declarative field filters on the
// browse listing: typed ?field=value predicates, repeated params as In
// sets, keyset cursors that survive filtering, ?explain=1 plan output,
// and 400s for unknown fields and malformed values.
func TestBrowseListFilters(t *testing.T) {
	fx := newFixture(t)
	// Two species populations in one project: 5 thaliana, 3 generic.
	for i := 0; i < 8; i++ {
		species := "Arabidopsis thaliana"
		if i >= 5 {
			species = ""
		}
		var created struct{ IDs []int64 }
		fx.call(t, "alice", "POST", "/api/samples", map[string]any{
			"Sample": model.Sample{
				Name: fmt.Sprintf("f%d", i), Project: fx.project, Species: species,
			},
		}, &created)
		if len(created.IDs) != 1 {
			t.Fatalf("sample %d not created", i)
		}
	}

	type page struct {
		Items []map[string]any `json:"items"`
		Next  int64            `json:"next"`
		Plan  string           `json:"plan"`
	}

	// A filtered listing returns exactly the matching records.
	var filtered page
	q := "/api/browse/sample?species=" + url.QueryEscape("Arabidopsis thaliana")
	if code := fx.call(t, "alice", "GET", q, nil, &filtered); code != http.StatusOK {
		t.Fatalf("filtered list: %d", code)
	}
	if len(filtered.Items) != 5 {
		t.Fatalf("species filter matched %d items, want 5", len(filtered.Items))
	}
	for _, item := range filtered.Items {
		if item["species"] != "Arabidopsis thaliana" {
			t.Errorf("filter leaked item %v", item)
		}
	}

	// Filter plus project ref filter (typed int parsing) composes; with
	// explain=1 the response names the planned access path.
	var explained page
	q = fmt.Sprintf("/api/browse/sample?project=%d&species=%s&explain=1",
		fx.project, url.QueryEscape("Arabidopsis thaliana"))
	if code := fx.call(t, "alice", "GET", q, nil, &explained); code != http.StatusOK {
		t.Fatalf("explain list: %d", code)
	}
	if len(explained.Items) != 5 {
		t.Errorf("project+species filter matched %d, want 5", len(explained.Items))
	}
	if !strings.Contains(explained.Plan, "sample: index(") {
		t.Errorf("plan %q does not report an index access path", explained.Plan)
	}

	// Keyset cursor pages through the filtered result without gaps or
	// repeats — the cursor is an id watermark, so filtering between pages
	// does not shift it.
	seen := map[float64]bool{}
	cursor := int64(0)
	for {
		var pg page
		q := "/api/browse/sample?limit=2&species=" + url.QueryEscape("Arabidopsis thaliana")
		if cursor > 0 {
			q += fmt.Sprintf("&from=%d", cursor)
		}
		if code := fx.call(t, "alice", "GET", q, nil, &pg); code != http.StatusOK {
			t.Fatalf("filtered page: %d", code)
		}
		for _, item := range pg.Items {
			id := item["id"].(float64)
			if seen[id] {
				t.Fatalf("duplicate id %v across filtered pages", id)
			}
			seen[id] = true
		}
		if pg.Next == 0 {
			break
		}
		cursor = pg.Next
	}
	if len(seen) != 5 {
		t.Fatalf("filtered pagination covered %d items, want 5", len(seen))
	}

	// Repeated parameters form an In filter.
	var multi page
	q = "/api/browse/sample?name=f0&name=f3"
	if code := fx.call(t, "alice", "GET", q, nil, &multi); code != http.StatusOK {
		t.Fatalf("in filter: %d", code)
	}
	if len(multi.Items) != 2 {
		t.Errorf("name in-filter matched %d items, want 2", len(multi.Items))
	}

	// Unknown fields, unfilterable list fields and malformed typed values
	// are 400s with a JSON error, not silent empty pages.
	for _, bad := range []string{
		"/api/browse/sample?flavour=vanilla",
		"/api/browse/sample?project=abc",
		"/api/browse/user?active=maybe",
		"/api/browse/project?members=1",
	} {
		var errBody struct {
			Error string `json:"error"`
		}
		if code := fx.call(t, "alice", "GET", bad, nil, &errBody); code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", bad, code)
		} else if errBody.Error == "" {
			t.Errorf("%s: 400 without JSON error body", bad)
		}
	}

	// Filters compose with access scoping: the outsider sees nothing even
	// when the filter matches, the expert sees everything.
	var outsider, expert page
	q = "/api/browse/sample?species=" + url.QueryEscape("Arabidopsis thaliana")
	if code := fx.call(t, "outsider", "GET", q, nil, &outsider); code != http.StatusOK {
		t.Fatalf("outsider filtered list: %d", code)
	}
	if len(outsider.Items) != 0 {
		t.Errorf("outsider sees %d filtered samples", len(outsider.Items))
	}
	if code := fx.call(t, "eva", "GET", q, nil, &expert); code != http.StatusOK {
		t.Fatalf("expert filtered list: %d", code)
	}
	if len(expert.Items) != 5 {
		t.Errorf("expert sees %d filtered samples, want 5", len(expert.Items))
	}
}
