package portal

import (
	"fmt"
	"net/http"
	"testing"

	"repro/internal/model"
)

func TestBrowseEndpoint(t *testing.T) {
	fx := newFixture(t)
	var created struct{ IDs []int64 }
	fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "hub", Project: fx.project},
	}, &created)
	var out struct {
		Outgoing []map[string]any
		Incoming []map[string]any
	}
	code := fx.call(t, "alice", "GET", "/api/browse/project/1", nil, &out)
	if code != http.StatusOK {
		t.Fatalf("browse: %d", code)
	}
	// The project has at least the new sample inbound.
	if len(out.Incoming) == 0 {
		t.Errorf("incoming = %+v", out.Incoming)
	}
	// Unknown kind fails cleanly.
	code = fx.call(t, "alice", "GET", "/api/browse/not-a-kind/1", nil, nil)
	if code != http.StatusOK {
		// Link graph queries on unknown kinds return empty edge sets or an
		// error depending on table existence; both are acceptable non-5xx.
		if code >= 500 {
			t.Errorf("browse unknown kind: %d", code)
		}
	}
}

func TestBrowseListPagination(t *testing.T) {
	fx := newFixture(t)
	var created struct{ IDs []int64 }
	fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "tpl", Project: fx.project},
		"Batch":  7, "Prefix": "page",
	}, &created)
	if len(created.IDs) != 7 {
		t.Fatalf("batch created %d samples", len(created.IDs))
	}

	type page struct {
		Items []map[string]any `json:"items"`
		Next  int64            `json:"next"`
	}
	var first page
	if code := fx.call(t, "alice", "GET", "/api/browse/sample?limit=3", nil, &first); code != http.StatusOK {
		t.Fatalf("first page: %d", code)
	}
	if len(first.Items) != 3 || first.Next == 0 {
		t.Fatalf("first page: %d items, next=%d", len(first.Items), first.Next)
	}

	// Follow the cursor to the end; pages must be in ascending id order
	// without gaps or repeats.
	seen := map[float64]bool{}
	last := float64(0)
	cur := first
	for {
		for _, item := range cur.Items {
			id, _ := item["id"].(float64)
			if id <= last {
				t.Fatalf("ids out of order: %v after %v", id, last)
			}
			if seen[id] {
				t.Fatalf("duplicate id %v", id)
			}
			seen[id] = true
			last = id
		}
		if cur.Next == 0 {
			break
		}
		var next page
		if code := fx.call(t, "alice", "GET",
			fmt.Sprintf("/api/browse/sample?from=%d&limit=3", cur.Next), nil, &next); code != http.StatusOK {
			t.Fatalf("next page: %d", code)
		}
		cur = next
	}
	if len(seen) != 7 {
		t.Fatalf("paginated over %d samples, want 7", len(seen))
	}

	// Unknown kinds 404; bad cursors 400.
	if code := fx.call(t, "alice", "GET", "/api/browse/not-a-kind", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown kind list: %d", code)
	}
	if code := fx.call(t, "alice", "GET", "/api/browse/sample?from=x", nil, nil); code != http.StatusBadRequest {
		t.Errorf("bad cursor: %d", code)
	}

	// Project scoping: a scientist outside the project sees none of its
	// samples, an expert sees all of them, and non-project-scoped kinds
	// (users) stay visible to everyone.
	var outsiderView, expertView, usersView page
	if code := fx.call(t, "outsider", "GET", "/api/browse/sample?limit=100", nil, &outsiderView); code != http.StatusOK {
		t.Fatalf("outsider list: %d", code)
	}
	if len(outsiderView.Items) != 0 {
		t.Errorf("outsider sees %d samples of a foreign project", len(outsiderView.Items))
	}
	if code := fx.call(t, "eva", "GET", "/api/browse/sample?limit=100", nil, &expertView); code != http.StatusOK {
		t.Fatalf("expert list: %d", code)
	}
	if len(expertView.Items) != 7 {
		t.Errorf("expert sees %d samples, want 7", len(expertView.Items))
	}
	if code := fx.call(t, "outsider", "GET", "/api/browse/user?limit=100", nil, &usersView); code != http.StatusOK {
		t.Fatalf("user list: %d", code)
	}
	if len(usersView.Items) == 0 {
		t.Error("outsider sees no users; unscoped kinds should be visible")
	}
}
