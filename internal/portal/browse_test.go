package portal

import (
	"net/http"
	"testing"

	"repro/internal/model"
)

func TestBrowseEndpoint(t *testing.T) {
	fx := newFixture(t)
	var created struct{ IDs []int64 }
	fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "hub", Project: fx.project},
	}, &created)
	var out struct {
		Outgoing []map[string]any
		Incoming []map[string]any
	}
	code := fx.call(t, "alice", "GET", "/api/browse/project/1", nil, &out)
	if code != http.StatusOK {
		t.Fatalf("browse: %d", code)
	}
	// The project has at least the new sample inbound.
	if len(out.Incoming) == 0 {
		t.Errorf("incoming = %+v", out.Incoming)
	}
	// Unknown kind fails cleanly.
	code = fx.call(t, "alice", "GET", "/api/browse/not-a-kind/1", nil, nil)
	if code != http.StatusOK {
		// Link graph queries on unknown kinds return empty edge sets or an
		// error depending on table existence; both are acceptable non-5xx.
		if code >= 500 {
			t.Errorf("browse unknown kind: %d", code)
		}
	}
}
