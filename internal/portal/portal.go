// Package portal implements B-Fabric's web portal: the access-controlled
// HTTP interface through which users register samples and extracts, manage
// annotations, run imports and experiments, search, browse the object
// graph, and download results. It exposes a JSON API (consumed by the CLI
// and tests) plus a small HTML dashboard.
package portal

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/audit"
	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/exchange"
	"repro/internal/importer"
	"repro/internal/model"
	"repro/internal/store"
	"repro/internal/tasks"
	"repro/internal/vocab"
)

// Config tunes the portal's serving hardening. The zero value means
// production defaults; negative values disable a mechanism explicitly.
type Config struct {
	// RequestTimeout bounds each request's handler via context.WithTimeout
	// on the request context. 0 = 30s; negative disables the deadline.
	RequestTimeout time.Duration
	// MaxInFlight caps concurrently served requests; excess requests are
	// rejected immediately with 503 + Retry-After instead of queueing
	// without bound. 0 = 256; negative disables the gate.
	MaxInFlight int
	// ReplicaStatus, when set, marks this portal as fronting a read-only
	// replica. GET /api/replication reports the value (the follower's
	// replication status: lag, last contact age, epoch, resyncs), and
	// /readyz answers 503 while the store is in replica mode — this
	// server does not accept writes, so a write-routing balancer must
	// look elsewhere — while reads keep being served. After a promotion
	// (the store leaves replica mode) /readyz flips to the primary
	// answer without a restart.
	ReplicaStatus func() any
	// Promote, when set, enables POST /api/replication/promote (admin
	// only): failover promotion of the replica behind this portal. The
	// callback performs the promotion (epoch bump, write gate) and
	// returns a description of the result (e.g. repl.Promotion).
	Promote func() (any, error)
}

const (
	defaultRequestTimeout = 30 * time.Second
	defaultMaxInFlight    = 256
)

// Server is the portal HTTP server.
type Server struct {
	sys           *core.System
	mux           *http.ServeMux
	timeout       time.Duration
	inflight      chan struct{} // admission gate; nil when disabled
	replicaStatus func() any    // non-nil = booted as a replica portal
	promote       func() (any, error)
}

// New builds the portal over a wired system with default hardening.
func New(sys *core.System) *Server {
	return NewWithConfig(sys, Config{})
}

// NewWithConfig builds the portal with explicit serving limits.
func NewWithConfig(sys *core.System, cfg Config) *Server {
	s := &Server{sys: sys, mux: http.NewServeMux(), replicaStatus: cfg.ReplicaStatus, promote: cfg.Promote}
	switch {
	case cfg.RequestTimeout == 0:
		s.timeout = defaultRequestTimeout
	case cfg.RequestTimeout > 0:
		s.timeout = cfg.RequestTimeout
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = defaultMaxInFlight
	}
	if cfg.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInFlight)
	}
	s.routes()
	return s
}

// ServeHTTP implements http.Handler behind a hardening stack, outermost
// first: panic recovery (a handler bug answers 500 instead of killing the
// connection), max-in-flight admission (overload answers 503 immediately
// instead of queueing into collapse), and a per-request deadline on the
// context (a slow handler is abandoned at the deadline it can observe).
// The health probes bypass the stack: an orchestrator must get a liveness
// answer from a saturated server.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" || r.URL.Path == "/readyz" {
		s.mux.ServeHTTP(w, r)
		return
	}
	defer func() {
		if v := recover(); v != nil {
			// Best effort: if the handler already wrote a header, this
			// only logs; the alternative (net/http's own recovery) drops
			// the connection with no response at all.
			writeErrCode(w, http.StatusInternalServerError, "internal",
				fmt.Errorf("portal: internal error: %v", v))
		}
	}()
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			writeErrCode(w, http.StatusServiceUnavailable, "overloaded",
				errors.New("portal: too many requests in flight, retry shortly"))
			return
		}
	}
	if s.timeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	s.mux.ServeHTTP(w, r)
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /", s.handleDashboard)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /api/replication", s.handleReplication)
	s.mux.HandleFunc("POST /api/replication/promote", s.auth(s.handlePromote))
	s.mux.HandleFunc("POST /api/login", s.handleLogin)
	s.mux.HandleFunc("POST /api/logout", s.auth(s.handleLogout))

	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/stats/{kind}", s.auth(s.handleStatsGrouped))
	s.mux.HandleFunc("GET /api/tasks", s.auth(s.handleTasks))
	s.mux.HandleFunc("GET /api/tasks/summary", s.auth(s.handleTaskSummary))
	s.mux.HandleFunc("POST /api/tasks/{id}/complete", s.auth(s.handleCompleteTask))

	s.mux.HandleFunc("POST /api/samples", s.auth(s.handleCreateSample))
	s.mux.HandleFunc("GET /api/samples/{id}", s.auth(s.handleGetSample))
	s.mux.HandleFunc("POST /api/samples/{id}/clone", s.auth(s.handleCloneSample))

	s.mux.HandleFunc("POST /api/extracts", s.auth(s.handleCreateExtract))

	s.mux.HandleFunc("GET /api/annotations", s.auth(s.handleListAnnotations))
	s.mux.HandleFunc("POST /api/annotations", s.auth(s.handleCreateAnnotation))
	s.mux.HandleFunc("POST /api/annotations/{id}/release", s.auth(s.handleReleaseAnnotation))
	s.mux.HandleFunc("POST /api/annotations/merge", s.auth(s.handleMergeAnnotations))
	s.mux.HandleFunc("GET /api/annotations/recommendations", s.auth(s.handleRecommendations))

	s.mux.HandleFunc("GET /api/providers", s.auth(s.handleProviders))
	s.mux.HandleFunc("POST /api/import", s.auth(s.handleImport))
	s.mux.HandleFunc("GET /api/import/{workunit}/matches", s.auth(s.handleMatches))
	s.mux.HandleFunc("POST /api/import/{instance}/complete", s.auth(s.handleCompleteImport))

	s.mux.HandleFunc("POST /api/applications", s.auth(s.handleRegisterApplication))
	s.mux.HandleFunc("POST /api/experiments", s.auth(s.handleCreateExperiment))
	s.mux.HandleFunc("POST /api/experiments/{id}/run", s.auth(s.handleRunExperiment))

	s.mux.HandleFunc("GET /api/workunits/{id}", s.auth(s.handleGetWorkunit))
	s.mux.HandleFunc("GET /api/resources/{id}/download", s.auth(s.handleDownload))
	s.mux.HandleFunc("GET /api/browse/{kind}", s.auth(s.handleBrowseList))
	s.mux.HandleFunc("GET /api/browse/{kind}/{id}", s.auth(s.handleBrowse))
	s.mux.HandleFunc("GET /api/workflows/{id}/dot", s.auth(s.handleWorkflowDOT))

	s.mux.HandleFunc("GET /api/search", s.auth(s.handleSearch))
	s.mux.HandleFunc("GET /api/search/history", s.auth(s.handleSearchHistory))
	s.mux.HandleFunc("POST /api/search/save", s.auth(s.handleSaveQuery))
	s.mux.HandleFunc("GET /api/search/saved", s.auth(s.handleSavedQueries))
	s.mux.HandleFunc("GET /api/search/export", s.auth(s.handleExport))

	s.mux.HandleFunc("GET /api/audit/recent", s.auth(s.handleAuditRecent))
	s.mux.HandleFunc("GET /api/audit/summary", s.auth(s.handleAuditSummary))

	s.mux.HandleFunc("GET /api/projects/{id}/export", s.auth(s.handleExportProject))
	s.mux.HandleFunc("POST /api/projects/import", s.auth(s.handleImportProject))
}

// --- plumbing -----------------------------------------------------------------

// bearerToken extracts the session token from a request's Authorization
// header. The single place bearer parsing happens: the auth middleware,
// logout and the session-user fast path all agree on what a token is. A
// missing header, a non-Bearer scheme or a garbled value yield "", which
// no session ever matches.
func bearerToken(r *http.Request) string {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) > len(prefix) && strings.EqualFold(h[:len(prefix)], prefix) {
		return strings.TrimSpace(h[len(prefix):])
	}
	return ""
}

// auth wraps a handler with session-token authentication. Tokens travel in
// the Authorization header ("Bearer <token>").
func (s *Server) auth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		login, err := s.sys.Auth.SessionLogin(bearerToken(r))
		if err != nil {
			writeErr(w, http.StatusUnauthorized, err)
			return
		}
		r.Header.Set("X-Login", login)
		next(w, r)
	}
}

func loginOf(r *http.Request) string { return r.Header.Get("X-Login") }

// sessionUser resolves the request's session to its user record as of the
// transaction's snapshot, via the auth service's seq-validated cache —
// the hot read path's replacement for a per-request UserByLogin index walk.
func (s *Server) sessionUser(tx *store.Tx, r *http.Request) (model.User, error) {
	return s.sys.Auth.SessionUser(tx, bearerToken(r))
}

// bufPool recycles response-encoding buffers across requests. Every JSON
// response body is built in a pooled buffer and written to the socket in
// one call, so the per-request allocation cost amortizes to zero on the
// hot path and handlers can still swap the status line on late errors.
var bufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// maxPooledBuf keeps pathological responses (a 500-row browse page) from
// pinning megabytes in the pool forever.
const maxPooledBuf = 1 << 20

func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

func putBuf(b *bytes.Buffer) {
	if b.Cap() > maxPooledBuf {
		return
	}
	b.Reset()
	bufPool.Put(b)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := getBuf()
	defer putBuf(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		// Encoding failed before anything reached the wire; the error
		// envelope (a struct of strings) cannot itself fail to encode.
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeRaw(w, status, buf)
}

// writeRaw sends a fully-built JSON body in a single write.
func writeRaw(w http.ResponseWriter, status int, buf *bytes.Buffer) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// etagFor derives the entity tag of a snapshot-determined response: the
// pinned MVCC version seq is the validator. Identical requests served from
// the same store version carry the same tag; any committed write advances
// the seq and with it the tag.
func etagFor(seq uint64) string { return `"v` + strconv.FormatUint(seq, 10) + `"` }

// etagMatch reports whether an If-None-Match header matches the tag.
func etagMatch(header, etag string) bool {
	if header == "*" {
		return true
	}
	for _, c := range strings.Split(header, ",") {
		if strings.TrimSpace(c) == etag {
			return true
		}
	}
	return false
}

// errEnvelope is the uniform JSON error body. "error" stays a plain
// human-readable string (clients and older tests parse exactly that key);
// "code" is a stable machine-readable discriminator and "status" echoes
// the HTTP status for clients that lose it in a proxy hop.
type errEnvelope struct {
	Error  string `json:"error"`
	Code   string `json:"code"`
	Status int    `json:"status"`
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeErrCode(w, status, codeFor(status, err), err)
}

func writeErrCode(w http.ResponseWriter, status int, code string, err error) {
	if status == http.StatusServiceUnavailable {
		// Both overload and a degraded store are retryable conditions;
		// tell well-behaved clients when to come back.
		w.Header().Set("Retry-After", "10")
	}
	writeJSON(w, status, errEnvelope{Error: err.Error(), Code: code, Status: status})
}

// codeFor names the error class for the envelope's machine-readable code.
func codeFor(status int, err error) string {
	switch {
	case errors.Is(err, store.ErrReplica):
		return "read_only_replica"
	case errors.Is(err, store.ErrDegraded):
		return "degraded"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "timeout"
	case errors.Is(err, store.ErrConflict), errors.Is(err, tasks.ErrTaskClosed):
		return "conflict"
	case errors.Is(err, store.ErrNotFound):
		return "not_found"
	case errors.Is(err, auth.ErrNoSession):
		return "unauthorized"
	case errors.Is(err, auth.ErrForbidden), errors.Is(err, auth.ErrInactive):
		return "forbidden"
	case errors.Is(err, vocab.ErrDuplicate), errors.Is(err, store.ErrUnique):
		return "duplicate"
	}
	switch status {
	case http.StatusUnauthorized:
		return "unauthorized"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "bad_request"
	}
}

// statusFor maps service errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, store.ErrReplica), errors.Is(err, store.ErrDegraded):
		// Store can't accept writes; reads still work. Replicas reject
		// writes by design, degraded stores until the operator clears the
		// fault — either way the client should retry against a writable
		// server, hence 503 + Retry-After (the degraded envelope).
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, store.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, auth.ErrNoSession):
		return http.StatusUnauthorized
	case errors.Is(err, auth.ErrForbidden), errors.Is(err, auth.ErrInactive):
		return http.StatusForbidden
	case errors.Is(err, vocab.ErrDuplicate), errors.Is(err, store.ErrUnique),
		errors.Is(err, store.ErrConflict), errors.Is(err, tasks.ErrTaskClosed):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func decode(r *http.Request, v any) error {
	defer r.Body.Close()
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func pathID(r *http.Request, name string) (int64, error) {
	return strconv.ParseInt(r.PathValue(name), 10, 64)
}

// --- session ------------------------------------------------------------------

func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	var req struct{ Login, Password string }
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	token, err := s.sys.Auth.Login(req.Login, req.Password)
	if err != nil {
		writeErr(w, http.StatusUnauthorized, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"token": token})
}

func (s *Server) handleLogout(w http.ResponseWriter, r *http.Request) {
	s.sys.Auth.Logout(bearerToken(r))
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// --- dashboard & stats ----------------------------------------------------------

var dashboardTmpl = template.Must(template.New("dash").Parse(`<!DOCTYPE html>
<html><head><title>B-Fabric</title></head><body>
<h1>B-Fabric — Swiss Army Knife for Life Sciences</h1>
<table border="1" cellpadding="4">
<tr><td>Users</td><td>{{.Users}}</td><td>Samples</td><td>{{.Samples}}</td></tr>
<tr><td>Projects</td><td>{{.Projects}}</td><td>Extracts</td><td>{{.Extracts}}</td></tr>
<tr><td>Institutes</td><td>{{.Institutes}}</td><td>Data Resources</td><td>{{.DataResources}}</td></tr>
<tr><td>Organizations</td><td>{{.Organizations}}</td><td>Workunits</td><td>{{.Workunits}}</td></tr>
</table>
</body></html>`))

// handleDashboard renders the landing-page statistics table. The table is
// fully determined by the pinned store version — every cell is an O(1)
// maintained live count — so the page carries the seq-keyed validator and
// a matching If-None-Match answers 304 before any counting or templating
// runs, same contract as /api/stats.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	inm := r.Header.Get("If-None-Match")
	var st model.Stats
	notModified := false
	var etag string
	err := s.sys.View(func(tx *store.Tx) error {
		etag = etagFor(tx.Snapshot())
		if inm != "" && etagMatch(inm, etag) {
			notModified = true
			return nil
		}
		st = s.sys.DB.CollectStatsTx(tx)
		return nil
	})
	if err != nil {
		// A closed store refuses transactions; render the final version
		// unconditionally.
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_ = dashboardTmpl.Execute(w, s.sys.DB.CollectStats())
		return
	}
	w.Header().Set("ETag", etag)
	if notModified {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = dashboardTmpl.Execute(w, st)
}

// handleStats serves the deployment statistics table conditionally: the
// response is fully determined by the pinned store version, so its seq is
// the entity tag and a matching If-None-Match answers 304 before any
// counting work runs.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	inm := r.Header.Get("If-None-Match")
	var st model.Stats
	notModified := false
	var etag string
	err := s.sys.View(func(tx *store.Tx) error {
		etag = etagFor(tx.Snapshot())
		if inm != "" && etagMatch(inm, etag) {
			notModified = true
			return nil
		}
		st = s.sys.DB.CollectStatsTx(tx)
		return nil
	})
	if err != nil {
		// A closed store refuses transactions; fall back to the
		// unconditional collection path, which reads the final version.
		writeJSON(w, http.StatusOK, s.sys.DB.CollectStats())
		return
	}
	w.Header().Set("ETag", etag)
	if notModified {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleStatsGrouped serves the live-count histogram of one kind grouped
// by an indexed field — GET /api/stats/{kind}?by=field. The aggregate
// engine answers it by walking the grouping index's distinct keys
// (count(postings)): cost is O(distinct values), never O(rows), so the
// endpoint is safe to poll at any population size. The response is fully
// determined by the pinned version, so it carries the same seq-keyed
// validator as /api/stats; explain=1 appends the executed aggregate plan.
func (s *Server) handleStatsGrouped(w http.ResponseWriter, r *http.Request) {
	kindName := r.PathValue("kind")
	if s.sys.Registry.Kind(kindName) == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("portal: unknown kind %q", kindName))
		return
	}
	by := r.URL.Query().Get("by")
	if by == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("portal: missing by=<field> parameter"))
		return
	}
	explain := r.URL.Query().Get("explain") == "1"
	inm := r.Header.Get("If-None-Match")
	var groups []model.GroupedCount
	var plan string
	var asOf uint64
	notModified := false
	err := s.sys.View(func(tx *store.Tx) error {
		asOf = tx.Snapshot()
		if inm != "" && etagMatch(inm, etagFor(asOf)) {
			notModified = true
			return nil
		}
		var err error
		if groups, err = s.sys.DB.CountsBy(tx, kindName, by); err != nil {
			return err
		}
		if explain {
			p, err := tx.ExplainAgg(store.Query{Table: kindName}.GroupBy(by))
			if err != nil {
				return err
			}
			plan = p.String()
		}
		return nil
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	etag := etagFor(asOf)
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "private")
	if notModified {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	resp := map[string]any{"kind": kindName, "by": by, "groups": groups, "asOf": asOf}
	if explain {
		resp["plan"] = plan
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTaskSummary reports the task-queue health snapshot: per-state
// counts and the open backlog per role queue, all from maintained
// counters.
func (s *Server) handleTaskSummary(w http.ResponseWriter, r *http.Request) {
	var out tasks.Summary
	err := s.sys.View(func(tx *store.Tx) error {
		var err error
		out, err = s.sys.Tasks.Summarize(tx)
		return err
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// handleAuditSummary reports the manipulation-log rollup (admin only,
// like the raw log itself).
func (s *Server) handleAuditSummary(w http.ResponseWriter, r *http.Request) {
	login := loginOf(r)
	var out audit.Summary
	err := s.sys.View(func(tx *store.Tx) error {
		if err := s.sys.Auth.RequireRole(tx, login, model.RoleAdmin); err != nil {
			return err
		}
		var err error
		out, err = s.sys.Audit.Summarize(tx)
		return err
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// --- health probes ---------------------------------------------------------------

// handleHealthz is the liveness probe: the process is up and serving.
// Deliberately independent of store health — a degraded (read-only) system
// must not be restarted by an orchestrator, it still serves reads.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleReadyz is the writability probe: 200 while the store accepts
// writes, 503 with the degradation reason once it has failed into
// read-only mode. Load balancers can use it to route writes elsewhere
// while keeping read traffic here.
//
// On a replica portal the answer follows the store's CURRENT role, not
// the boot-time configuration: 503 while the store is in replica mode
// (this server refuses writes by design), flipping to the primary
// answer the moment a promotion opens the write gate — so re-pointing a
// write balancer at a freshly promoted replica needs no restart.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	h := s.sys.Health()
	if s.replicaStatus != nil && s.sys.Store.IsReplica() {
		// A replica never accepts writes, so the honest answer to "route
		// writes here?" is 503; the replication status rides along so
		// operators see lag, epoch and connectivity in the same probe.
		w.Header().Set("Retry-After", "10")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ok": false, "reason": "read-only replica",
			"epoch":  s.sys.Store.Epoch(),
			"health": h, "replication": s.replicaStatus(),
		})
		return
	}
	if s.replicaStatus != nil {
		// Booted as a replica, since promoted: a writable primary. Keep
		// the promotion visible in the probe body alongside the health.
		status := http.StatusOK
		if !h.OK {
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "10")
		}
		writeJSON(w, status, map[string]any{
			"ok": h.OK, "reason": h.Reason, "promoted": true,
			"epoch": s.sys.Store.Epoch(), "health": h,
		})
		return
	}
	if h.OK {
		writeJSON(w, http.StatusOK, h)
		return
	}
	w.Header().Set("Retry-After", "10")
	writeJSON(w, http.StatusServiceUnavailable, h)
}

// handleReplication reports this node's replication coordinates: role,
// epoch (the fencing token) and committed head on every server, plus the
// follower's status report (lag, last contact age, resyncs) on portals
// fronting a replica — promoted or not. Primaries answer too: the epoch
// is what an operator compares across nodes when deciding who fences
// whom.
func (s *Server) handleReplication(w http.ResponseWriter, _ *http.Request) {
	role := "primary"
	if s.sys.Store.IsReplica() {
		role = "replica"
	}
	out := map[string]any{
		"role":      role,
		"epoch":     s.sys.Store.Epoch(),
		"commitSeq": s.sys.Store.CommitSeq(),
	}
	if s.replicaStatus != nil {
		out["replication"] = s.replicaStatus()
		if !s.sys.Store.IsReplica() {
			out["promoted"] = true
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handlePromote performs failover promotion of the replica behind this
// portal (admin only): the store's epoch is durably advanced past the
// old primary's and the write gate opens. The old timeline is fenced
// from that moment — see docs/replication.md, "Failover runbook".
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.promote == nil {
		writeErrCode(w, http.StatusNotFound, "not_found",
			errors.New("portal: this server has no promotable replica"))
		return
	}
	login := loginOf(r)
	if err := s.sys.View(func(tx *store.Tx) error {
		return s.sys.Auth.RequireRole(tx, login, model.RoleAdmin)
	}); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	if !s.sys.Store.IsReplica() {
		writeErrCode(w, http.StatusConflict, "conflict",
			errors.New("portal: store is already a primary"))
		return
	}
	res, err := s.promote()
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"promotion": res,
		"epoch":     s.sys.Store.Epoch(),
		"commitSeq": s.sys.Store.CommitSeq(),
	})
}

// --- tasks ---------------------------------------------------------------------

func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	login := loginOf(r)
	var out any
	err := s.sys.View(func(tx *store.Tx) error {
		u, err := s.sessionUser(tx, r)
		if err != nil {
			return err
		}
		ts, err := s.sys.Tasks.ListOpen(tx, login, u.Role)
		if err != nil {
			return err
		}
		out = ts
		return nil
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCompleteTask marks a task done on behalf of the caller. Completion
// goes through Tasks.CompleteCtx — an optimistic transaction retried on
// conflict — because clearing a shared role queue is exactly the contended
// read-modify-write the retry helper exists for. Losing the final race
// (someone else completed it between retries) surfaces as 409.
func (s *Server) handleCompleteTask(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r, "id")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	login := loginOf(r)
	err = s.sys.View(func(tx *store.Tx) error {
		u, err := s.sessionUser(tx, r)
		if err != nil {
			return err
		}
		t, err := s.sys.Tasks.Get(tx, id)
		if err != nil {
			return err
		}
		if u.Role != model.RoleAdmin && t.AssigneeLogin != login && t.AssigneeRole != u.Role {
			return fmt.Errorf("portal: task %d is not assigned to %s: %w", id, login, auth.ErrForbidden)
		}
		return nil
	})
	if err == nil {
		err = s.sys.Tasks.CompleteCtx(r.Context(), login, id)
	}
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// --- samples & extracts -----------------------------------------------------------

// checkVocab validates every vocabulary-bound value of a sample/extract
// against the annotation store, the portal-level enforcement of controlled
// vocabularies.
func (s *Server) checkVocab(tx *store.Tx, pairs map[string]string) error {
	for vocabName, value := range pairs {
		if value == "" {
			continue
		}
		if !s.sys.Vocab.Exists(tx, vocabName, value) {
			return fmt.Errorf("portal: %q is not a known %s annotation (create it first)", value, vocabName)
		}
	}
	return nil
}

func (s *Server) handleCreateSample(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Sample model.Sample
		// Batch registers Batch copies named "<prefix>_i" when > 0.
		Batch  int
		Prefix string
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	login := loginOf(r)
	var ids []int64
	err := s.sys.Update(func(tx *store.Tx) error {
		u, err := s.sessionUser(tx, r)
		if err != nil {
			return err
		}
		if err := s.sys.Auth.RequireProjectUser(tx, u, req.Sample.Project); err != nil {
			return err
		}
		if err := s.checkVocab(tx, map[string]string{
			model.VocabSpecies:      req.Sample.Species,
			model.VocabTissue:       req.Sample.Tissue,
			model.VocabDiseaseState: req.Sample.DiseaseState,
			model.VocabCellType:     req.Sample.CellType,
			model.VocabTreatment:    req.Sample.Treatment,
		}); err != nil {
			return err
		}
		if req.Batch > 0 {
			var err error
			ids, err = s.sys.DB.BatchCreateSamples(tx, login, req.Sample, req.Prefix, req.Batch)
			return err
		}
		id, err := s.sys.DB.CreateSample(tx, login, req.Sample)
		ids = []int64{id}
		return err
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string][]int64{"ids": ids})
}

func (s *Server) handleGetSample(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r, "id")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var sample model.Sample
	err = s.sys.View(func(tx *store.Tx) error {
		sm, err := s.sys.DB.GetSample(tx, id)
		if err != nil {
			return err
		}
		u, err := s.sessionUser(tx, r)
		if err != nil {
			return err
		}
		if err := s.sys.Auth.RequireProjectUser(tx, u, sm.Project); err != nil {
			return err
		}
		sample = sm
		return nil
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, sample)
}

func (s *Server) handleCloneSample(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r, "id")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var req struct{ Name string }
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var clone int64
	err = s.sys.Update(func(tx *store.Tx) error {
		sm, err := s.sys.DB.GetSample(tx, id)
		if err != nil {
			return err
		}
		if err := s.sys.Auth.RequireProject(tx, loginOf(r), sm.Project); err != nil {
			return err
		}
		clone, err = s.sys.DB.CloneSample(tx, loginOf(r), id, req.Name)
		return err
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int64{"id": clone})
}

func (s *Server) handleCreateExtract(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Extract model.Extract
		Batch   int
		Prefix  string
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	login := loginOf(r)
	var ids []int64
	err := s.sys.Update(func(tx *store.Tx) error {
		sm, err := s.sys.DB.GetSample(tx, req.Extract.Sample)
		if err != nil {
			return err
		}
		u, err := s.sessionUser(tx, r)
		if err != nil {
			return err
		}
		if err := s.sys.Auth.RequireProjectUser(tx, u, sm.Project); err != nil {
			return err
		}
		if err := s.checkVocab(tx, map[string]string{
			model.VocabExtractionMethod: req.Extract.ExtractionMethod,
			model.VocabLabel:            req.Extract.Label,
		}); err != nil {
			return err
		}
		if req.Batch > 0 {
			ids, err = s.sys.DB.BatchCreateExtracts(tx, login, req.Extract, req.Prefix, req.Batch)
			return err
		}
		id, err := s.sys.DB.CreateExtract(tx, login, req.Extract)
		ids = []int64{id}
		return err
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string][]int64{"ids": ids})
}

// --- annotations -----------------------------------------------------------------

func (s *Server) handleListAnnotations(w http.ResponseWriter, r *http.Request) {
	vocabName := r.URL.Query().Get("vocabulary")
	state := r.URL.Query().Get("state")
	var out []vocab.Term
	err := s.sys.View(func(tx *store.Tx) error {
		var err error
		out, err = s.sys.Vocab.Terms(tx, vocabName, state)
		return err
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCreateAnnotation(w http.ResponseWriter, r *http.Request) {
	var req struct{ Vocabulary, Value string }
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var term vocab.Term
	err := s.sys.Update(func(tx *store.Tx) error {
		var err error
		term, err = s.sys.Vocab.AddTerm(tx, loginOf(r), req.Vocabulary, req.Value, false)
		return err
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	// Surface merge candidates right away, as the annotation view does.
	var cands []vocab.Candidate
	_ = s.sys.View(func(tx *store.Tx) error {
		cands, _ = s.sys.Vocab.Similar(tx, req.Vocabulary, req.Value)
		return nil
	})
	writeJSON(w, http.StatusCreated, map[string]any{"term": term, "similar": cands})
}

func (s *Server) handleReleaseAnnotation(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r, "id")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	login := loginOf(r)
	err = s.sys.Update(func(tx *store.Tx) error {
		if err := s.sys.Auth.RequireRole(tx, login, model.RoleExpert); err != nil {
			return err
		}
		return s.sys.Vocab.Release(tx, login, id)
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleMergeAnnotations(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Keep, Drop int64
		NewValue   string
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	login := loginOf(r)
	var res vocab.MergeResult
	err := s.sys.Update(func(tx *store.Tx) error {
		if err := s.sys.Auth.RequireRole(tx, login, model.RoleExpert); err != nil {
			return err
		}
		var err error
		res, err = s.sys.Vocab.Merge(tx, login, req.Keep, req.Drop, req.NewValue)
		return err
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleRecommendations(w http.ResponseWriter, r *http.Request) {
	var out map[int64][]vocab.Candidate
	err := s.sys.View(func(tx *store.Tx) error {
		var err error
		out, err = s.sys.Vocab.Recommendations(tx)
		return err
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// --- import ------------------------------------------------------------------------

func (s *Server) handleProviders(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sys.Providers.Names())
}

func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Provider     string
		Paths        []string
		Link         bool
		WorkunitName string
		Project      int64
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	login := loginOf(r)
	mode := importer.Copy
	if req.Link {
		mode = importer.Link
	}
	var res importer.Result
	err := s.sys.Update(func(tx *store.Tx) error {
		u, err := s.sessionUser(tx, r)
		if err != nil {
			return err
		}
		if err := s.sys.Auth.RequireProjectUser(tx, u, req.Project); err != nil {
			return err
		}
		res, err = s.sys.Importer.Import(tx, importer.Request{
			Provider: req.Provider, Paths: req.Paths, Mode: mode,
			WorkunitName: req.WorkunitName, Project: req.Project,
			Owner: u.ID, Actor: login,
		})
		return err
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, res)
}

func (s *Server) handleMatches(w http.ResponseWriter, r *http.Request) {
	wu, err := pathID(r, "workunit")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	apply := r.URL.Query().Get("apply") == "1"
	var matches []importer.Match
	run := s.sys.View
	if apply {
		run = s.sys.Update
	}
	err = run(func(tx *store.Tx) error {
		var err error
		matches, err = s.sys.Importer.BestMatches(tx, wu)
		if err != nil {
			return err
		}
		if apply {
			return s.sys.Importer.ApplyMatches(tx, loginOf(r), matches)
		}
		return nil
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, matches)
}

func (s *Server) handleCompleteImport(w http.ResponseWriter, r *http.Request) {
	instance, err := pathID(r, "instance")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	err = s.sys.Update(func(tx *store.Tx) error {
		return s.sys.Importer.CompleteImport(tx, loginOf(r), instance)
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// --- applications & experiments -------------------------------------------------------

func (s *Server) handleRegisterApplication(w http.ResponseWriter, r *http.Request) {
	var req model.Application
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	login := loginOf(r)
	var id int64
	err := s.sys.Update(func(tx *store.Tx) error {
		if _, err := s.sys.Connectors.Get(req.Connector); err != nil {
			return err
		}
		var err error
		id, err = s.sys.DB.CreateApplication(tx, login, req)
		return err
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int64{"id": id})
}

func (s *Server) handleCreateExperiment(w http.ResponseWriter, r *http.Request) {
	var req model.Experiment
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	login := loginOf(r)
	var id int64
	err := s.sys.Update(func(tx *store.Tx) error {
		if err := s.sys.Auth.RequireProject(tx, login, req.Project); err != nil {
			return err
		}
		var err error
		id, err = s.sys.DB.CreateExperiment(tx, login, req)
		return err
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int64{"id": id})
}

func (s *Server) handleRunExperiment(w http.ResponseWriter, r *http.Request) {
	expID, err := pathID(r, "id")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var req struct {
		Application  int64
		WorkunitName string
		Params       map[string]string
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	login := loginOf(r)
	var res apps.RunResult
	err = s.sys.Update(func(tx *store.Tx) error {
		exp, err := s.sys.DB.GetExperiment(tx, expID)
		if err != nil {
			return err
		}
		u, err := s.sessionUser(tx, r)
		if err != nil {
			return err
		}
		if err := s.sys.Auth.RequireProjectUser(tx, u, exp.Project); err != nil {
			return err
		}
		res, err = s.sys.Executor.RunExperiment(tx, apps.RunRequest{
			Experiment: expID, Application: req.Application,
			WorkunitName: req.WorkunitName, Params: req.Params,
			Actor: login, Owner: u.ID,
		})
		return err
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// --- workunits, download, browse, workflows ---------------------------------------------

func (s *Server) handleGetWorkunit(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r, "id")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var out struct {
		Workunit  model.Workunit
		Resources []model.DataResource
	}
	err = s.sys.View(func(tx *store.Tx) error {
		wu, err := s.sys.DB.GetWorkunit(tx, id)
		if err != nil {
			return err
		}
		u, err := s.sessionUser(tx, r)
		if err != nil {
			return err
		}
		if err := s.sys.Auth.RequireProjectUser(tx, u, wu.Project); err != nil {
			return err
		}
		rs, err := s.sys.DB.ResourcesOfWorkunit(tx, id)
		if err != nil {
			return err
		}
		out.Workunit, out.Resources = wu, rs
		return nil
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDownload(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r, "id")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var res model.DataResource
	err = s.sys.View(func(tx *store.Tx) error {
		dr, err := s.sys.DB.GetDataResource(tx, id)
		if err != nil {
			return err
		}
		wu, err := s.sys.DB.GetWorkunit(tx, dr.Workunit)
		if err != nil {
			return err
		}
		u, err := s.sessionUser(tx, r)
		if err != nil {
			return err
		}
		if err := s.sys.Auth.RequireProjectUser(tx, u, wu.Project); err != nil {
			return err
		}
		res = dr
		return nil
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	data, err := s.sys.Storage.Open(res.URI)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", res.Name))
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

// recordProject resolves the project that gates visibility of a record, or
// 0 when the kind is not project-scoped (organizations, users, ...). A
// negative result means the scope could not be resolved; hide the record.
func recordProject(tx *store.Tx, kind string, rec store.Record) int64 {
	switch kind {
	case model.KindProject:
		return rec.ID()
	case model.KindExtract:
		if sm, err := tx.GetRef(model.KindSample, rec.Int("sample")); err == nil {
			return sm.Int("project")
		}
		return -1
	case model.KindDataResource:
		if wu, err := tx.GetRef(model.KindWorkunit, rec.Int("workunit")); err == nil {
			return wu.Int("project")
		}
		return -1
	default:
		return rec.Int("project")
	}
}

// browseFilters converts the request's free query parameters into typed
// predicates against the kind's schema. Every parameter other than the
// paging/diagnostic ones ("from", "limit", "explain") must name a schema
// field; values are parsed according to the field's declared type, and a
// parameter repeated n times becomes an In predicate over its n values.
// Unknown fields, unfilterable field types (lists) and malformed values
// are reported as errors — the handler turns them into 400s.
func browseFilters(kind *entity.Kind, params url.Values) ([]store.Pred, error) {
	var preds []store.Pred
	for name, raws := range params {
		switch name {
		case "from", "limit", "explain":
			continue
		}
		f := kind.Field(name)
		if f == nil {
			return nil, fmt.Errorf("portal: kind %q has no filterable field %q (fields: %s)",
				kind.Name, name, strings.Join(kind.FieldNames(), ", "))
		}
		values := make([]any, 0, len(raws))
		for _, raw := range raws {
			v, err := filterValue(f, raw)
			if err != nil {
				return nil, err
			}
			values = append(values, v)
		}
		if len(values) == 1 {
			preds = append(preds, store.Eq(name, values[0]))
		} else {
			preds = append(preds, store.Pred{Field: name, Op: store.OpIn, Values: values})
		}
	}
	return preds, nil
}

// filterValue parses one filter comparand per the schema field's type.
func filterValue(f *entity.Field, raw string) (any, error) {
	switch f.Type {
	case entity.String, entity.Text:
		return raw, nil
	case entity.Int, entity.Ref:
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("portal: field %q wants an integer, got %q", f.Name, raw)
		}
		return n, nil
	case entity.Float:
		x, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("portal: field %q wants a number, got %q", f.Name, raw)
		}
		return x, nil
	case entity.Bool:
		b, err := strconv.ParseBool(raw)
		if err != nil {
			return nil, fmt.Errorf("portal: field %q wants a boolean, got %q", f.Name, raw)
		}
		return b, nil
	case entity.Time:
		t, err := time.Parse(time.RFC3339, raw)
		if err != nil {
			return nil, fmt.Errorf("portal: field %q wants an RFC 3339 time, got %q", f.Name, raw)
		}
		return t, nil
	default:
		return nil, fmt.Errorf("portal: field %q of type %s is not filterable", f.Name, f.Type)
	}
}

// handleBrowseList serves an ordered, filtered, paginated listing of one
// entity kind:
//
//	GET /api/browse/{kind}?from=<id>&limit=<n>&<field>=<value>...
//
// Field filters are compiled into a declarative store query; the store's
// planner picks the access path (typically the most selective matching
// index) and Explain output is surfaced via ?explain=1 as the "plan"
// response field. Records are collected by reference (immutable committed
// snapshots) and serialized without cloning.
//
// The response carries a "next" keyset cursor to pass as the following
// page's from, plus the commit sequence ("asOf") of the store version the
// page was read from. The cursor is a record id, not an offset, so it
// survives filtering: however many rows a filter or the caller's access
// scope hides, passing next resumes exactly after the last record
// examined. Each page is internally consistent — the whole query,
// including the per-project access checks, runs against one pinned MVCC
// version and is never blocked by concurrent imports — while successive
// pages may observe newer versions; a client that sees "asOf" jump can
// restart from page one if it needs a fully frozen listing.
//
// Malformed requests — an invalid from/limit, an unknown or unfilterable
// filter field, a value that does not parse as the field's type — fail
// with a 400 JSON error rather than an empty page.
//
// Project scoping matches the single-object endpoints: experts and admins
// see everything, other users only records of their projects (access per
// project is resolved once and cached across the page).
func (s *Server) handleBrowseList(w http.ResponseWriter, r *http.Request) {
	kindName := r.PathValue("kind")
	kind := s.sys.Registry.Kind(kindName)
	if kind == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("portal: unknown kind %q", kindName))
		return
	}
	var from int64
	if v := r.URL.Query().Get("from"); v != "" {
		parsed, err := strconv.ParseInt(v, 10, 64)
		if err != nil || parsed < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("portal: bad from %q", v))
			return
		}
		from = parsed
	}
	limit := 50
	if v := r.URL.Query().Get("limit"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("portal: bad limit %q", v))
			return
		}
		if parsed > 500 {
			parsed = 500
		}
		limit = parsed
	}
	preds, err := browseFilters(kind, r.URL.Query())
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	q := store.Query{Table: kindName, Where: preds}
	if from > 0 {
		q.Cursor = from - 1 // from is the first id to include; Cursor is exclusive
	}
	explain := r.URL.Query().Get("explain") == "1"
	inm := r.Header.Get("If-None-Match")

	// The page body streams into a pooled buffer as rows are scanned —
	// no intermediate []store.Record — and reaches the socket in one
	// write, so a mid-scan error can still become a clean error envelope.
	buf := getBuf()
	defer putBuf(buf)
	enc := json.NewEncoder(buf)
	var next int64
	var asOf uint64
	var plan string
	items := 0
	notModified := false
	err = s.sys.View(func(tx *store.Tx) error {
		asOf = tx.Snapshot()
		// Conditional fast path: the page is fully determined by the
		// pinned version, so a matching validator answers before the user
		// resolution and the query run. The auth middleware has already
		// vetted the session, and any commit that deactivated the caller
		// also advanced the seq past every tag handed out before it.
		if inm != "" && etagMatch(inm, etagFor(asOf)) {
			notModified = true
			return nil
		}
		u, err := s.sessionUser(tx, r)
		if err != nil {
			return err
		}
		rows, err := tx.Query(q)
		if err != nil {
			return err
		}
		if explain {
			plan = rows.Plan().String()
		}
		buf.WriteString(`{"items":[`)
		seeAll := u.Role == model.RoleAdmin || u.Role == model.RoleExpert
		allowed := map[int64]bool{}
		// Cap the rows examined per page so a heavily-restricted listing
		// (a user whose access scope hides most of what the filters match)
		// does bounded work per request; the cursor records where the
		// query stopped, so a short or empty page with next != 0 still
		// makes progress. Rows the filters exclude never reach this loop
		// on an indexed path — the budget buys out the access checks, not
		// the predicates.
		const scanBudget = 5000
		scanned := 0
		for rows.Next() {
			// Honor the request deadline mid-scan: a page over a large,
			// heavily-hidden listing is the one portal loop that can
			// outlive its request.
			if scanned%64 == 0 {
				if err := r.Context().Err(); err != nil {
					return err
				}
			}
			rec := rows.Record()
			if items == limit || scanned == scanBudget {
				next = rec.ID()
				return nil
			}
			scanned++
			if !seeAll {
				switch project := recordProject(tx, kindName, rec); {
				case project < 0:
					continue // unresolvable scope: hide
				case project > 0:
					ok, cached := allowed[project]
					if !cached {
						ok = s.sys.Auth.CanAccessProjectUser(tx, u, project)
						allowed[project] = ok
					}
					if !ok {
						continue
					}
				}
			}
			if items > 0 {
				buf.WriteByte(',')
			}
			// Encode's trailing newline is insignificant JSON whitespace.
			if err := enc.Encode(rec); err != nil {
				return err
			}
			items++
		}
		return rows.Err()
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	etag := etagFor(asOf)
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "private")
	if notModified {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	fmt.Fprintf(buf, `],"next":%d,"asOf":%d`, next, asOf)
	if plan != "" {
		buf.WriteString(`,"plan":`)
		_ = enc.Encode(plan)
	}
	buf.WriteByte('}')
	writeRaw(w, http.StatusOK, buf)
}

func (s *Server) handleBrowse(w http.ResponseWriter, r *http.Request) {
	kind := r.PathValue("kind")
	id, err := pathID(r, "id")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var out struct {
		Outgoing, Incoming any
	}
	err = s.sys.View(func(tx *store.Tx) error {
		og, in, err := s.sys.Registry.Neighbors(tx, kind, id)
		if err != nil {
			return err
		}
		out.Outgoing, out.Incoming = og, in
		return nil
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleWorkflowDOT(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r, "id")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var dot string
	err = s.sys.View(func(tx *store.Tx) error {
		inst, err := s.sys.Workflows.Get(tx, id)
		if err != nil {
			return err
		}
		def := s.sys.Workflows.Definition(inst.Definition)
		if def == nil {
			return fmt.Errorf("portal: unknown definition %q", inst.Definition)
		}
		dot = def.DOT(inst.Step)
		return nil
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	_, _ = w.Write([]byte(dot))
}

// --- search ------------------------------------------------------------------------------

// searchUnavailable answers 503 on replica portals, where the in-memory
// search index is knowingly empty: the index is built from write-path
// events the replica never sees (it applies raw WAL frames). Serving an
// empty index would return zero hits for everything — indistinguishable
// from "nothing matched" — so the replica refuses honestly with a
// machine-readable code and Retry-After instead of silently lying;
// clients route /api/search to the primary (see docs/replication.md).
//
// The gate follows the store's current role: once the replica is
// promoted (and the host rebuilds the index from the replicated state —
// see the Promote wiring in cmd/bfabric), search serves again without a
// restart.
func (s *Server) searchUnavailable(w http.ResponseWriter) bool {
	if s.replicaStatus == nil || !s.sys.Store.IsReplica() {
		return false
	}
	writeErrCode(w, http.StatusServiceUnavailable, "search_unavailable",
		errors.New("portal: search is not available on a read replica, query the primary"))
	return true
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if s.searchUnavailable(w) {
		return
	}
	q := r.URL.Query().Get("q")
	hits, err := s.sys.Search.Search(loginOf(r), q)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, hits)
}

func (s *Server) handleSearchHistory(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sys.Search.History(loginOf(r)))
}

func (s *Server) handleSaveQuery(w http.ResponseWriter, r *http.Request) {
	var req struct{ Name, Query string }
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var id int64
	err := s.sys.Update(func(tx *store.Tx) error {
		var err error
		id, err = s.sys.Search.SaveQuery(tx, loginOf(r), req.Name, req.Query)
		return err
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int64{"id": id})
}

func (s *Server) handleSavedQueries(w http.ResponseWriter, r *http.Request) {
	var out any
	err := s.sys.View(func(tx *store.Tx) error {
		qs, err := s.sys.Search.SavedQueries(tx, loginOf(r))
		out = qs
		return err
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	if s.searchUnavailable(w) {
		return
	}
	q := r.URL.Query().Get("q")
	hits, err := s.sys.Search.Search(loginOf(r), q)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("Content-Disposition", `attachment; filename="search.csv"`)
	_ = s.sys.Search.ExportCSV(w, hits)
}

// --- audit ----------------------------------------------------------------------------------

func (s *Server) handleAuditRecent(w http.ResponseWriter, r *http.Request) {
	login := loginOf(r)
	n := 50
	if v := r.URL.Query().Get("n"); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
			n = parsed
		}
	}
	var out any
	err := s.sys.View(func(tx *store.Tx) error {
		if err := s.sys.Auth.RequireRole(tx, login, model.RoleAdmin); err != nil {
			return err
		}
		es, err := s.sys.Audit.Recent(tx, n)
		out = es
		return err
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// --- project exchange (collaborative research) -----------------------------------------------

func (s *Server) handleExportProject(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r, "id")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	login := loginOf(r)
	if err := s.sys.View(func(tx *store.Tx) error {
		return s.sys.Auth.RequireProject(tx, login, id)
	}); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/zip")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", fmt.Sprintf("project-%d.zip", id)))
	if err := exchange.Export(s.sys, id, w); err != nil {
		// Headers already sent; log-style best effort.
		_, _ = w.Write([]byte(err.Error()))
	}
}

func (s *Server) handleImportProject(w http.ResponseWriter, r *http.Request) {
	login := loginOf(r)
	if err := s.sys.View(func(tx *store.Tx) error {
		return s.sys.Auth.RequireRole(tx, login, model.RoleAdmin)
	}); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	const maxArchive = 64 << 20
	data, err := io.ReadAll(io.LimitReader(r.Body, maxArchive))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := exchange.Import(s.sys, data, login)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, res)
}
