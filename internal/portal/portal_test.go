package portal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/provider"
	"repro/internal/store"
)

type fixture struct {
	srv     *httptest.Server
	sys     *core.System
	project int64
	tokens  map[string]string
}

func newFixture(t *testing.T) *fixture {
	return newFixtureOpts(t, core.Options{})
}

// newFixtureOpts builds the standard fixture over a system with explicit
// options — the degraded-mode tests run it durable over a fault-injecting
// filesystem.
func newFixtureOpts(t *testing.T, opts core.Options) *fixture {
	t.Helper()
	sys := core.MustNew(opts)
	if opts.DataDir != "" {
		t.Cleanup(func() { _ = sys.Close() })
	}
	gp, gpStore := provider.NewAffymetrixGeneChip("genechip",
		[]string{"AT-1-control", "AT-1-treated"})
	sys.Storage.Mount(gpStore)
	if err := sys.Providers.Register(gp); err != nil {
		t.Fatal(err)
	}
	fx := &fixture{sys: sys, tokens: map[string]string{}}
	err := sys.Update(func(tx *store.Tx) error {
		alice, err := sys.DB.CreateUser(tx, "setup", model.User{
			Login: "alice", Role: model.RoleScientist, Active: true,
		})
		if err != nil {
			return err
		}
		if _, err := sys.DB.CreateUser(tx, "setup", model.User{
			Login: "eva", Role: model.RoleExpert, Active: true,
		}); err != nil {
			return err
		}
		if _, err := sys.DB.CreateUser(tx, "setup", model.User{
			Login: "root", Role: model.RoleAdmin, Active: true,
		}); err != nil {
			return err
		}
		if _, err := sys.DB.CreateUser(tx, "setup", model.User{
			Login: "outsider", Role: model.RoleScientist, Active: true,
		}); err != nil {
			return err
		}
		fx.project, err = sys.DB.CreateProject(tx, "setup", model.Project{
			Name: "p1000", Members: []int64{alice},
		})
		if err != nil {
			return err
		}
		for _, login := range []string{"alice", "eva", "root", "outsider"} {
			if err := sys.Auth.SetPassword(tx, login, login+"-pw"); err != nil {
				return err
			}
		}
		// Seed released vocabulary terms used by the tests.
		for vocabName, term := range map[string]string{
			model.VocabSpecies:   "Arabidopsis thaliana",
			model.VocabTreatment: "Light",
		} {
			if _, err := sys.Vocab.AddTerm(tx, "setup", vocabName, term, true); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fx.srv = httptest.NewServer(New(sys))
	t.Cleanup(fx.srv.Close)
	for _, login := range []string{"alice", "eva", "root", "outsider"} {
		fx.tokens[login] = fx.login(t, login, login+"-pw")
	}
	return fx
}

func (fx *fixture) login(t *testing.T, login, pw string) string {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"Login": login, "Password": pw})
	resp, err := http.Post(fx.srv.URL+"/api/login", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("login %s: status %d", login, resp.StatusCode)
	}
	var out map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return out["token"]
}

// call performs an authenticated JSON request and decodes the response.
func (fx *fixture) call(t *testing.T, login, method, path string, body any, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, fx.srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if login != "" {
		req.Header.Set("Authorization", "Bearer "+fx.tokens[login])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func TestLoginRequired(t *testing.T) {
	fx := newFixture(t)
	if code := fx.call(t, "", "GET", "/api/tasks", nil, nil); code != http.StatusUnauthorized {
		t.Errorf("unauthenticated status = %d", code)
	}
}

func TestBadLoginRejected(t *testing.T) {
	fx := newFixture(t)
	body, _ := json.Marshal(map[string]string{"Login": "alice", "Password": "wrong"})
	resp, err := http.Post(fx.srv.URL+"/api/login", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestDashboardHTML(t *testing.T) {
	fx := newFixture(t)
	resp, err := http.Get(fx.srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "Swiss Army Knife") {
		t.Error("dashboard missing title")
	}
	if !strings.Contains(buf.String(), "Workunits") {
		t.Error("dashboard missing stats table")
	}
}

func TestRegisterSampleFlow(t *testing.T) {
	fx := newFixture(t)
	var created struct{ IDs []int64 }
	code := fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{
			Name: "AT-1", Project: fx.project,
			Species: "Arabidopsis thaliana", Treatment: "Light",
		},
	}, &created)
	if code != http.StatusCreated || len(created.IDs) != 1 {
		t.Fatalf("create: code=%d ids=%v", code, created.IDs)
	}
	var got model.Sample
	code = fx.call(t, "alice", "GET", fmt.Sprintf("/api/samples/%d", created.IDs[0]), nil, &got)
	if code != http.StatusOK || got.Species != "Arabidopsis thaliana" {
		t.Errorf("get: code=%d sample=%+v", code, got)
	}
}

func TestSampleUnknownAnnotationRejected(t *testing.T) {
	fx := newFixture(t)
	code := fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{
			Name: "bad", Project: fx.project, Species: "Martian weed",
		},
	}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("unknown species accepted: %d", code)
	}
}

func TestProjectAccessEnforced(t *testing.T) {
	fx := newFixture(t)
	code := fx.call(t, "outsider", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "x", Project: fx.project},
	}, nil)
	if code != http.StatusForbidden {
		t.Errorf("outsider create: %d", code)
	}
}

func TestBatchRegistration(t *testing.T) {
	fx := newFixture(t)
	var created struct{ IDs []int64 }
	code := fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "tpl", Project: fx.project},
		"Batch":  5, "Prefix": "batch",
	}, &created)
	if code != http.StatusCreated || len(created.IDs) != 5 {
		t.Fatalf("batch: code=%d ids=%v", code, created.IDs)
	}
}

func TestCloneSample(t *testing.T) {
	fx := newFixture(t)
	var created struct{ IDs []int64 }
	fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "orig", Project: fx.project, Treatment: "Light"},
	}, &created)
	var clone struct{ ID int64 }
	code := fx.call(t, "alice", "POST", fmt.Sprintf("/api/samples/%d/clone", created.IDs[0]),
		map[string]string{"Name": "copy"}, &clone)
	if code != http.StatusCreated || clone.ID == 0 {
		t.Fatalf("clone: code=%d id=%d", code, clone.ID)
	}
	var got model.Sample
	fx.call(t, "alice", "GET", fmt.Sprintf("/api/samples/%d", clone.ID), nil, &got)
	if got.Name != "copy" || got.Treatment != "Light" {
		t.Errorf("clone = %+v", got)
	}
}

func TestAnnotationLifecycleOverHTTP(t *testing.T) {
	fx := newFixture(t)
	// Alice creates a pending annotation.
	var created struct {
		Term struct {
			ID    int64
			State string
		}
		Similar []any
	}
	code := fx.call(t, "alice", "POST", "/api/annotations", map[string]string{
		"Vocabulary": model.VocabDiseaseState, "Value": "Hopeless",
	}, &created)
	if code != http.StatusCreated || created.Term.State != "pending" {
		t.Fatalf("create annotation: %d %+v", code, created)
	}
	// Duplicate is a conflict.
	code = fx.call(t, "alice", "POST", "/api/annotations", map[string]string{
		"Vocabulary": model.VocabDiseaseState, "Value": "hopeless",
	}, nil)
	if code != http.StatusConflict {
		t.Errorf("duplicate: %d", code)
	}
	// A scientist cannot release.
	code = fx.call(t, "alice", "POST", fmt.Sprintf("/api/annotations/%d/release", created.Term.ID), map[string]string{}, nil)
	if code != http.StatusForbidden {
		t.Errorf("scientist release: %d", code)
	}
	// The expert sees the task and releases.
	var tasks []map[string]any
	fx.call(t, "eva", "GET", "/api/tasks", nil, &tasks)
	if len(tasks) != 1 {
		t.Fatalf("eva tasks = %+v", tasks)
	}
	code = fx.call(t, "eva", "POST", fmt.Sprintf("/api/annotations/%d/release", created.Term.ID), map[string]string{}, nil)
	if code != http.StatusOK {
		t.Errorf("expert release: %d", code)
	}
	// Listing shows the released term.
	var terms []map[string]any
	fx.call(t, "alice", "GET", "/api/annotations?vocabulary="+model.VocabDiseaseState+"&state=released", nil, &terms)
	if len(terms) != 1 {
		t.Errorf("terms = %+v", terms)
	}
}

func TestMergeOverHTTP(t *testing.T) {
	fx := newFixture(t)
	var keep, drop struct {
		Term    struct{ ID int64 }
		Similar []any
	}
	fx.call(t, "alice", "POST", "/api/annotations", map[string]string{
		"Vocabulary": model.VocabTissue, "Value": "Leaf",
	}, &keep)
	fx.call(t, "alice", "POST", "/api/annotations", map[string]string{
		"Vocabulary": model.VocabTissue, "Value": "Leafe",
	}, &drop)
	// Creating the misspelling surfaced the original as similar.
	if len(drop.Similar) == 0 {
		t.Error("no similar candidates surfaced")
	}
	var recs map[string][]any
	fx.call(t, "eva", "GET", "/api/annotations/recommendations", nil, &recs)
	if len(recs) == 0 {
		t.Error("no recommendations")
	}
	var res struct{ Winner struct{ Value string } }
	code := fx.call(t, "eva", "POST", "/api/annotations/merge", map[string]any{
		"Keep": keep.Term.ID, "Drop": drop.Term.ID,
	}, &res)
	if code != http.StatusOK || res.Winner.Value != "Leaf" {
		t.Errorf("merge: %d %+v", code, res)
	}
}

func TestImportAndExperimentOverHTTP(t *testing.T) {
	fx := newFixture(t)
	// Providers listed.
	var providers []string
	fx.call(t, "alice", "GET", "/api/providers", nil, &providers)
	if len(providers) != 1 || providers[0] != "genechip" {
		t.Fatalf("providers = %v", providers)
	}
	// Import everything.
	var imp struct {
		Workunit         int64
		Resources        []int64
		WorkflowInstance int64
	}
	code := fx.call(t, "alice", "POST", "/api/import", map[string]any{
		"Provider": "genechip", "WorkunitName": "arrays", "Project": fx.project,
	}, &imp)
	if code != http.StatusCreated || len(imp.Resources) != 2 {
		t.Fatalf("import: %d %+v", code, imp)
	}
	// Create matching extracts, then fetch+apply matches.
	_ = fx.sys.Update(func(tx *store.Tx) error {
		sid, _ := fx.sys.DB.CreateSample(tx, "alice", model.Sample{Name: "AT", Project: fx.project})
		_, _ = fx.sys.DB.CreateExtract(tx, "alice", model.Extract{Name: "AT-1-control", Sample: sid})
		_, _ = fx.sys.DB.CreateExtract(tx, "alice", model.Extract{Name: "AT-1-treated", Sample: sid})
		return nil
	})
	var matches []map[string]any
	code = fx.call(t, "alice", "GET", fmt.Sprintf("/api/import/%d/matches?apply=1", imp.Workunit), nil, &matches)
	if code != http.StatusOK || len(matches) != 2 {
		t.Fatalf("matches: %d %+v", code, matches)
	}
	code = fx.call(t, "alice", "POST", fmt.Sprintf("/api/import/%d/complete", imp.WorkflowInstance), map[string]string{}, nil)
	if code != http.StatusOK {
		t.Fatalf("complete import: %d", code)
	}
	// Register the application (admin-ish action, any login allowed here).
	var app struct{ ID int64 }
	code = fx.call(t, "root", "POST", "/api/applications", model.Application{
		Name: "two group analysis", Connector: "rserve", Program: "twogroup.R", Active: true,
	}, &app)
	if code != http.StatusCreated {
		t.Fatalf("register app: %d", code)
	}
	// Unknown connector rejected.
	code = fx.call(t, "root", "POST", "/api/applications", model.Application{
		Name: "bad", Connector: "galaxy", Program: "x", Active: true,
	}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("unknown connector: %d", code)
	}
	// Define and run the experiment.
	var exp struct{ ID int64 }
	code = fx.call(t, "alice", "POST", "/api/experiments", model.Experiment{
		Name: "AT", Project: fx.project, Resources: imp.Resources,
	}, &exp)
	if code != http.StatusCreated {
		t.Fatalf("create experiment: %d", code)
	}
	var run struct {
		Workunit         int64
		WorkflowInstance int64
		Resources        []int64
		Failed           bool
	}
	code = fx.call(t, "alice", "POST", fmt.Sprintf("/api/experiments/%d/run", exp.ID), map[string]any{
		"Application": app.ID, "WorkunitName": "results",
		"Params": map[string]string{"reference_group": "control"},
	}, &run)
	if code != http.StatusOK || run.Failed {
		t.Fatalf("run: %d %+v", code, run)
	}
	// Workunit view shows ready state and resources.
	var wu struct {
		Workunit  model.Workunit
		Resources []model.DataResource
	}
	code = fx.call(t, "alice", "GET", fmt.Sprintf("/api/workunits/%d", run.Workunit), nil, &wu)
	if code != http.StatusOK || wu.Workunit.State != model.WorkunitReady {
		t.Fatalf("workunit: %d %+v", code, wu.Workunit)
	}
	// Download the zip.
	var zipID int64
	for _, r := range wu.Resources {
		if r.Name == "results.zip" {
			zipID = r.ID
		}
	}
	req, _ := http.NewRequest("GET", fx.srv.URL+fmt.Sprintf("/api/resources/%d/download", zipID), nil)
	req.Header.Set("Authorization", "Bearer "+fx.tokens["alice"])
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("download: %d", resp.StatusCode)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, "results.zip") {
		t.Errorf("disposition = %q", cd)
	}
	// The outsider cannot see the workunit.
	code = fx.call(t, "outsider", "GET", fmt.Sprintf("/api/workunits/%d", run.Workunit), nil, nil)
	if code != http.StatusForbidden {
		t.Errorf("outsider workunit: %d", code)
	}
	// Workflow DOT export.
	req2, _ := http.NewRequest("GET", fx.srv.URL+fmt.Sprintf("/api/workflows/%d/dot", run.WorkflowInstance), nil)
	req2.Header.Set("Authorization", "Bearer "+fx.tokens["alice"])
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var dotBuf bytes.Buffer
	_, _ = dotBuf.ReadFrom(resp2.Body)
	if !strings.Contains(dotBuf.String(), "digraph") {
		t.Errorf("dot = %q", dotBuf.String())
	}
}

func TestSearchOverHTTP(t *testing.T) {
	fx := newFixture(t)
	fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "searchable-sample", Project: fx.project},
	}, nil)
	var hits []map[string]any
	code := fx.call(t, "alice", "GET", "/api/search?q=searchable", nil, &hits)
	if code != http.StatusOK || len(hits) != 1 {
		t.Fatalf("search: %d %+v", code, hits)
	}
	// History recorded.
	var history []string
	fx.call(t, "alice", "GET", "/api/search/history", nil, &history)
	if len(history) != 1 || history[0] != "searchable" {
		t.Errorf("history = %v", history)
	}
	// Save and list.
	var saved struct{ ID int64 }
	code = fx.call(t, "alice", "POST", "/api/search/save", map[string]string{
		"Name": "mine", "Query": "searchable",
	}, &saved)
	if code != http.StatusCreated {
		t.Fatalf("save: %d", code)
	}
	var queries []map[string]any
	fx.call(t, "alice", "GET", "/api/search/saved", nil, &queries)
	if len(queries) != 1 {
		t.Errorf("saved = %+v", queries)
	}
	// CSV export.
	req, _ := http.NewRequest("GET", fx.srv.URL+"/api/search/export?q=searchable", nil)
	req.Header.Set("Authorization", "Bearer "+fx.tokens["alice"])
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	if !strings.HasPrefix(buf.String(), "kind,id,score,name") {
		t.Errorf("csv = %q", buf.String())
	}
	// Empty query is a 400.
	code = fx.call(t, "alice", "GET", "/api/search?q=", nil, nil)
	if code != http.StatusBadRequest {
		t.Errorf("empty query: %d", code)
	}
}

func TestAuditEndpointAdminOnly(t *testing.T) {
	fx := newFixture(t)
	code := fx.call(t, "alice", "GET", "/api/audit/recent", nil, nil)
	if code != http.StatusForbidden {
		t.Errorf("scientist audit: %d", code)
	}
	var entries []map[string]any
	code = fx.call(t, "root", "GET", "/api/audit/recent?n=10", nil, &entries)
	if code != http.StatusOK || len(entries) == 0 {
		t.Errorf("admin audit: %d, %d entries", code, len(entries))
	}
}

func TestStatsEndpoint(t *testing.T) {
	fx := newFixture(t)
	var stats model.Stats
	resp, err := http.Get(fx.srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_ = json.NewDecoder(resp.Body).Decode(&stats)
	if stats.Users != 4 || stats.Projects != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestLogoutInvalidatesToken(t *testing.T) {
	fx := newFixture(t)
	code := fx.call(t, "alice", "POST", "/api/logout", map[string]string{}, nil)
	if code != http.StatusOK {
		t.Fatalf("logout: %d", code)
	}
	code = fx.call(t, "alice", "GET", "/api/tasks", nil, nil)
	if code != http.StatusUnauthorized {
		t.Errorf("after logout: %d", code)
	}
}
