package portal

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/store"
)

// get performs an authenticated GET with optional extra headers and
// returns the raw response with its body fully read.
func (fx *fixture) get(t *testing.T, login, path string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", fx.srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if login != "" {
		req.Header.Set("Authorization", "Bearer "+fx.tokens[login])
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestBrowseETagConditional pins the conditional-request contract on the
// browse listing: the ETag is the pinned snapshot seq, identical requests
// on the same version carry the same tag, a matching If-None-Match
// answers 304 with an empty body, and any committed write advances the
// seq and yields a fresh 200 + new tag.
func TestBrowseETagConditional(t *testing.T) {
	fx := newFixture(t)
	const path = "/api/browse/sample?limit=10"

	resp1, body1 := fx.get(t, "alice", path, nil)
	if resp1.StatusCode != http.StatusOK || len(body1) == 0 {
		t.Fatalf("first browse: %d", resp1.StatusCode)
	}
	etag := resp1.Header.Get("ETag")
	if etag == "" {
		t.Fatal("browse response without ETag")
	}

	// Same pinned version: the tag is stable across identical requests.
	resp2, _ := fx.get(t, "alice", path, nil)
	if got := resp2.Header.Get("ETag"); got != etag {
		t.Errorf("ETag changed without a commit: %q -> %q", etag, got)
	}

	// A matching validator answers 304 with an empty body.
	resp3, body3 := fx.get(t, "alice", path, map[string]string{"If-None-Match": etag})
	if resp3.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional browse: %d, want 304", resp3.StatusCode)
	}
	if len(body3) != 0 {
		t.Errorf("304 carried %d body bytes", len(body3))
	}
	if got := resp3.Header.Get("ETag"); got != etag {
		t.Errorf("304 ETag = %q, want %q", got, etag)
	}

	// Any committed write advances the seq: same request revalidates to a
	// fresh 200 with a new tag.
	code := fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "etag-probe", Project: fx.project},
	}, nil)
	if code != http.StatusCreated {
		t.Fatalf("probe write: %d", code)
	}
	resp4, body4 := fx.get(t, "alice", path, map[string]string{"If-None-Match": etag})
	if resp4.StatusCode != http.StatusOK || len(body4) == 0 {
		t.Fatalf("post-commit conditional browse: %d", resp4.StatusCode)
	}
	if got := resp4.Header.Get("ETag"); got == etag || got == "" {
		t.Errorf("post-commit ETag = %q, want a new tag != %q", got, etag)
	}
}

// TestStatsETagConditional is the same contract on /api/stats.
func TestStatsETagConditional(t *testing.T) {
	fx := newFixture(t)

	resp1, _ := fx.get(t, "", "/api/stats", nil)
	etag := resp1.Header.Get("ETag")
	if resp1.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("stats: %d etag=%q", resp1.StatusCode, etag)
	}
	resp2, body2 := fx.get(t, "", "/api/stats", map[string]string{"If-None-Match": etag})
	if resp2.StatusCode != http.StatusNotModified || len(body2) != 0 {
		t.Fatalf("conditional stats: %d (%d bytes), want 304 empty", resp2.StatusCode, len(body2))
	}
	code := fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "stats-probe", Project: fx.project},
	}, nil)
	if code != http.StatusCreated {
		t.Fatalf("probe write: %d", code)
	}
	resp3, _ := fx.get(t, "", "/api/stats", map[string]string{"If-None-Match": etag})
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("post-commit conditional stats: %d, want 200", resp3.StatusCode)
	}
	if got := resp3.Header.Get("ETag"); got == etag {
		t.Errorf("stats ETag did not advance past a commit")
	}
}

// TestBearerTokenParsing pins the single bearer-parsing helper's behavior
// across the malformed-header space: everything but a well-formed Bearer
// credential with a live token is rejected with the 401 envelope.
func TestBearerTokenParsing(t *testing.T) {
	fx := newFixture(t)
	valid := fx.tokens["alice"]
	cases := []struct {
		name   string
		header string
		want   int
	}{
		{"valid", "Bearer " + valid, http.StatusOK},
		{"case-insensitive scheme", "bearer " + valid, http.StatusOK},
		{"padded token", "Bearer   " + valid + "  ", http.StatusOK},
		{"missing header", "", http.StatusUnauthorized},
		{"empty bearer", "Bearer ", http.StatusUnauthorized},
		{"scheme only", "Bearer", http.StatusUnauthorized},
		{"wrong scheme", "Basic " + valid, http.StatusUnauthorized},
		{"raw token without scheme", valid, http.StatusUnauthorized},
		{"garbled", "Bearer%%%not-a-token", http.StatusUnauthorized},
		{"unknown token", "Bearer deadbeefdeadbeefdeadbeef", http.StatusUnauthorized},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, _ := http.NewRequest("GET", fx.srv.URL+"/api/tasks", nil)
			if tc.header != "" {
				req.Header.Set("Authorization", tc.header)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("header %q: status %d, want %d", tc.header, resp.StatusCode, tc.want)
			}
			if tc.want == http.StatusUnauthorized {
				var env errEnvelope
				if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Code != "unauthorized" {
					t.Errorf("header %q: envelope %+v (err %v)", tc.header, env, err)
				}
			}
		})
	}
}

// TestSessionUserCacheDeactivationRace races authenticated requests
// against the user's deactivation: requests that begin after the
// deactivating commit returns must never be served, no matter how hot the
// session-user cache is. Run under -race this also proves the cache
// itself is data-race free.
func TestSessionUserCacheDeactivationRace(t *testing.T) {
	fx := newFixture(t)

	var aliceID int64
	_ = fx.sys.View(func(tx *store.Tx) error {
		u, err := fx.sys.DB.UserByLogin(tx, "alice")
		aliceID = u.ID
		return err
	})

	const workers = 8
	var deactivated atomic.Bool
	var served, rejected atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan string, workers)
	done := make(chan struct{})

	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				// Read the flag BEFORE the request leaves: if the
				// deactivating commit has returned by then, any snapshot
				// this request pins includes it.
				mustReject := deactivated.Load()
				req, _ := http.NewRequest("GET", fx.srv.URL+"/api/tasks", nil)
				req.Header.Set("Authorization", "Bearer "+fx.tokens["alice"])
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errCh <- err.Error()
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if mustReject {
						errCh <- "request after deactivation served with 200"
						return
					}
					served.Add(1)
				case http.StatusForbidden:
					rejected.Add(1)
				default:
					errCh <- fmt.Sprintf("unexpected status %d", resp.StatusCode)
					return
				}
			}
		}()
	}

	waitFor := func(what string, cond func() bool) {
		deadline := time.Now().Add(20 * time.Second)
		for !cond() {
			select {
			case msg := <-errCh:
				close(done)
				t.Fatal(msg)
			default:
			}
			if time.Now().After(deadline) {
				close(done)
				t.Fatalf("timed out waiting for %s (served=%d rejected=%d)",
					what, served.Load(), rejected.Load())
			}
			runtime.Gosched()
		}
	}

	// Let the cache get hot, then deactivate mid-flight.
	waitFor("warm cache", func() bool { return served.Load() >= 50 })
	err := fx.sys.Update(func(tx *store.Tx) error {
		return fx.sys.DB.Registry().Update(tx, model.KindUser, aliceID, "test", map[string]any{"active": false})
	})
	if err != nil {
		close(done)
		t.Fatal(err)
	}
	deactivated.Store(true)

	// Observe a batch of definitely-rejected requests, then stop.
	waitFor("rejections", func() bool { return rejected.Load() >= 20 })
	close(done)
	wg.Wait()
	select {
	case msg := <-errCh:
		t.Fatal(msg)
	default:
	}
	if served.Load() == 0 || rejected.Load() == 0 {
		t.Fatalf("race did not exercise both phases: served=%d rejected=%d", served.Load(), rejected.Load())
	}
}
