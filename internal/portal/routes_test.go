package portal

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"testing"

	"repro/internal/model"
	"repro/internal/store"
)

// routeProbe drives one registered route pattern: a failure request whose
// response must carry the JSON error envelope, and (run later, in order)
// a success request. Keep the table in sync with (*Server).routes.
type routeProbe struct {
	pattern string // the mux pattern, for the report
	// failure case
	failLogin  string // "" = unauthenticated
	failMethod string
	failPath   string
	failBody   any
	failStatus int
	failCode   string // expected envelope code
	// success case; nil run = covered by a dedicated flow elsewhere in
	// this test (noted in pattern order below).
	run func(t *testing.T, fx *fixture, st *routeState)
}

// routeState threads ids created by earlier routes into later ones.
type routeState struct {
	sample int64
	termID int64
	imp    struct {
		Workunit         int64
		Resources        []int64
		WorkflowInstance int64
	}
	appID int64
	expID int64
	run   struct {
		Workunit         int64
		WorkflowInstance int64
		Resources        []int64
		Failed           bool
	}
	taskID    int64
	exportZip []byte
}

// TestEveryRouteOnceOverHTTP walks every route the portal registers with
// one authenticated success and one failure, asserting the failure comes
// back as the uniform JSON error envelope. The probes run in table order:
// later routes consume objects earlier ones created.
func TestEveryRouteOnceOverHTTP(t *testing.T) {
	fx := newFixture(t)
	st := &routeState{}

	expectEnvelope := func(t *testing.T, login, method, path string, body any, wantStatus int, wantCode string) {
		t.Helper()
		var env errEnvelope
		code := fx.call(t, login, method, path, body, &env)
		if code != wantStatus {
			t.Fatalf("%s %s: status %d, want %d", method, path, code, wantStatus)
		}
		if env.Code != wantCode || env.Error == "" || env.Status != wantStatus {
			t.Errorf("%s %s: envelope %+v, want code %q", method, path, env, wantCode)
		}
	}

	probes := []routeProbe{
		{
			pattern:    "POST /api/login",
			failMethod: "POST", failPath: "/api/login",
			failBody:   map[string]string{"Login": "alice", "Password": "nope"},
			failStatus: http.StatusUnauthorized, failCode: "unauthorized",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				if tok := fx.login(t, "alice", "alice-pw"); tok == "" {
					t.Fatal("empty token")
				}
			},
		},
		{
			pattern:    "POST /api/logout",
			failMethod: "POST", failPath: "/api/logout",
			failStatus: http.StatusUnauthorized, failCode: "unauthorized",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				tok := fx.login(t, "outsider", "outsider-pw")
				req, _ := http.NewRequest("POST", fx.srv.URL+"/api/logout", bytes.NewReader(nil))
				req.Header.Set("Authorization", "Bearer "+tok)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("logout: %d", resp.StatusCode)
				}
			},
		},
		{
			// /api/stats is deliberately unauthenticated; its failure mode
			// is a degraded store, exercised in the fault-injection tests.
			pattern: "GET /api/stats",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				var s model.Stats
				if code := fx.call(t, "", "GET", "/api/stats", nil, &s); code != http.StatusOK || s.Users == 0 {
					t.Fatalf("stats: %d %+v", code, s)
				}
			},
		},
		{
			pattern:   "POST /api/samples",
			failLogin: "outsider", failMethod: "POST", failPath: "/api/samples",
			failBody:   map[string]any{"Sample": model.Sample{Name: "x", Project: 1}},
			failStatus: http.StatusForbidden, failCode: "forbidden",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				var created struct{ IDs []int64 }
				code := fx.call(t, "alice", "POST", "/api/samples", map[string]any{
					"Sample": model.Sample{
						Name: "coverage", Project: fx.project,
						Species: "Arabidopsis thaliana", Treatment: "Light",
					},
				}, &created)
				if code != http.StatusCreated || len(created.IDs) != 1 {
					t.Fatalf("create sample: %d %v", code, created.IDs)
				}
				st.sample = created.IDs[0]
			},
		},
		{
			pattern:   "GET /api/samples/{id}",
			failLogin: "alice", failMethod: "GET", failPath: "/api/samples/999999",
			failStatus: http.StatusNotFound, failCode: "not_found",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				var sm model.Sample
				code := fx.call(t, "alice", "GET", fmt.Sprintf("/api/samples/%d", st.sample), nil, &sm)
				if code != http.StatusOK || sm.ID != st.sample {
					t.Fatalf("get sample: %d %+v", code, sm)
				}
			},
		},
		{
			pattern:   "POST /api/samples/{id}/clone",
			failLogin: "alice", failMethod: "POST", failPath: "/api/samples/999999/clone",
			failBody:   map[string]string{"Name": "c"},
			failStatus: http.StatusNotFound, failCode: "not_found",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				var clone struct{ ID int64 }
				code := fx.call(t, "alice", "POST", fmt.Sprintf("/api/samples/%d/clone", st.sample),
					map[string]string{"Name": "coverage-clone"}, &clone)
				if code != http.StatusCreated || clone.ID == 0 {
					t.Fatalf("clone: %d %+v", code, clone)
				}
			},
		},
		{
			pattern:   "POST /api/extracts",
			failLogin: "alice", failMethod: "POST", failPath: "/api/extracts",
			failBody:   map[string]any{"Extract": model.Extract{Name: "x", Sample: 999999}},
			failStatus: http.StatusNotFound, failCode: "not_found",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				var created struct{ IDs []int64 }
				code := fx.call(t, "alice", "POST", "/api/extracts", map[string]any{
					"Extract": model.Extract{Name: "coverage-ex", Sample: st.sample},
				}, &created)
				if code != http.StatusCreated || len(created.IDs) != 1 {
					t.Fatalf("create extract: %d %v", code, created.IDs)
				}
			},
		},
		{
			pattern:   "POST /api/annotations",
			failLogin: "alice", failMethod: "POST", failPath: "/api/annotations",
			failBody:   map[string]string{"Vocabulary": model.VocabTreatment, "Value": "Light"},
			failStatus: http.StatusConflict, failCode: "duplicate",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				var created struct{ Term struct{ ID int64 } }
				code := fx.call(t, "alice", "POST", "/api/annotations", map[string]string{
					"Vocabulary": model.VocabTreatment, "Value": "Darkness",
				}, &created)
				if code != http.StatusCreated || created.Term.ID == 0 {
					t.Fatalf("create annotation: %d %+v", code, created)
				}
				st.termID = created.Term.ID
			},
		},
		{
			pattern:    "GET /api/annotations",
			failMethod: "GET", failPath: "/api/annotations",
			failStatus: http.StatusUnauthorized, failCode: "unauthorized",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				var terms []map[string]any
				code := fx.call(t, "alice", "GET", "/api/annotations?vocabulary="+model.VocabTreatment, nil, &terms)
				if code != http.StatusOK || len(terms) == 0 {
					t.Fatalf("list annotations: %d %v", code, terms)
				}
			},
		},
		{
			pattern:    "GET /api/tasks",
			failMethod: "GET", failPath: "/api/tasks",
			failStatus: http.StatusUnauthorized, failCode: "unauthorized",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				// The pending term created above queued a review task.
				var tasks []struct{ ID int64 }
				code := fx.call(t, "eva", "GET", "/api/tasks", nil, &tasks)
				if code != http.StatusOK || len(tasks) == 0 {
					t.Fatalf("tasks: %d %v", code, tasks)
				}
				st.taskID = tasks[0].ID
			},
		},
		{
			pattern:   "POST /api/tasks/{id}/complete",
			failLogin: "eva", failMethod: "POST", failPath: "/api/tasks/abc/complete",
			failStatus: http.StatusBadRequest, failCode: "bad_request",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				code := fx.call(t, "eva", "POST", fmt.Sprintf("/api/tasks/%d/complete", st.taskID), map[string]string{}, nil)
				if code != http.StatusOK {
					t.Fatalf("complete task: %d", code)
				}
			},
		},
		{
			pattern:   "POST /api/annotations/{id}/release",
			failLogin: "alice", failMethod: "POST", failPath: "/api/annotations/1/release",
			failBody:   map[string]string{},
			failStatus: http.StatusForbidden, failCode: "forbidden",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				code := fx.call(t, "eva", "POST", fmt.Sprintf("/api/annotations/%d/release", st.termID), map[string]string{}, nil)
				if code != http.StatusOK {
					t.Fatalf("release: %d", code)
				}
			},
		},
		{
			pattern:   "POST /api/annotations/merge",
			failLogin: "alice", failMethod: "POST", failPath: "/api/annotations/merge",
			failBody:   map[string]any{"Keep": 1, "Drop": 2},
			failStatus: http.StatusForbidden, failCode: "forbidden",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				var a, b struct{ Term struct{ ID int64 } }
				fx.call(t, "alice", "POST", "/api/annotations", map[string]string{
					"Vocabulary": model.VocabTissue, "Value": "Stem",
				}, &a)
				fx.call(t, "alice", "POST", "/api/annotations", map[string]string{
					"Vocabulary": model.VocabTissue, "Value": "Stemm",
				}, &b)
				code := fx.call(t, "eva", "POST", "/api/annotations/merge", map[string]any{
					"Keep": a.Term.ID, "Drop": b.Term.ID,
				}, nil)
				if code != http.StatusOK {
					t.Fatalf("merge: %d", code)
				}
			},
		},
		{
			pattern:    "GET /api/annotations/recommendations",
			failMethod: "GET", failPath: "/api/annotations/recommendations",
			failStatus: http.StatusUnauthorized, failCode: "unauthorized",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				if code := fx.call(t, "eva", "GET", "/api/annotations/recommendations", nil, nil); code != http.StatusOK {
					t.Fatalf("recommendations: %d", code)
				}
			},
		},
		{
			pattern:    "GET /api/providers",
			failMethod: "GET", failPath: "/api/providers",
			failStatus: http.StatusUnauthorized, failCode: "unauthorized",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				var ps []string
				if code := fx.call(t, "alice", "GET", "/api/providers", nil, &ps); code != http.StatusOK || len(ps) != 1 {
					t.Fatalf("providers: %d %v", code, ps)
				}
			},
		},
		{
			pattern:   "POST /api/import",
			failLogin: "outsider", failMethod: "POST", failPath: "/api/import",
			failBody:   map[string]any{"Provider": "genechip", "WorkunitName": "w", "Project": 1},
			failStatus: http.StatusForbidden, failCode: "forbidden",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				code := fx.call(t, "alice", "POST", "/api/import", map[string]any{
					"Provider": "genechip", "WorkunitName": "arrays", "Project": fx.project,
				}, &st.imp)
				if code != http.StatusCreated || len(st.imp.Resources) != 2 {
					t.Fatalf("import: %d %+v", code, st.imp)
				}
			},
		},
		{
			pattern:   "GET /api/import/{workunit}/matches",
			failLogin: "alice", failMethod: "GET", failPath: "/api/import/999999/matches",
			failStatus: http.StatusNotFound, failCode: "not_found",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				_ = fx.sys.Update(func(tx *store.Tx) error {
					_, _ = fx.sys.DB.CreateExtract(tx, "alice", model.Extract{Name: "AT-1-control", Sample: st.sample})
					_, _ = fx.sys.DB.CreateExtract(tx, "alice", model.Extract{Name: "AT-1-treated", Sample: st.sample})
					return nil
				})
				var matches []map[string]any
				code := fx.call(t, "alice", "GET", fmt.Sprintf("/api/import/%d/matches?apply=1", st.imp.Workunit), nil, &matches)
				if code != http.StatusOK || len(matches) != 2 {
					t.Fatalf("matches: %d %v", code, matches)
				}
			},
		},
		{
			pattern:   "POST /api/import/{instance}/complete",
			failLogin: "alice", failMethod: "POST", failPath: "/api/import/999999/complete",
			failBody:   map[string]string{},
			failStatus: http.StatusNotFound, failCode: "not_found",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				code := fx.call(t, "alice", "POST", fmt.Sprintf("/api/import/%d/complete", st.imp.WorkflowInstance), map[string]string{}, nil)
				if code != http.StatusOK {
					t.Fatalf("complete import: %d", code)
				}
			},
		},
		{
			pattern:   "POST /api/applications",
			failLogin: "root", failMethod: "POST", failPath: "/api/applications",
			failBody:   model.Application{Name: "bad", Connector: "galaxy", Program: "x", Active: true},
			failStatus: http.StatusBadRequest, failCode: "bad_request",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				var app struct{ ID int64 }
				code := fx.call(t, "root", "POST", "/api/applications", model.Application{
					Name: "two group analysis", Connector: "rserve", Program: "twogroup.R", Active: true,
				}, &app)
				if code != http.StatusCreated || app.ID == 0 {
					t.Fatalf("register app: %d", code)
				}
				st.appID = app.ID
			},
		},
		{
			pattern:   "POST /api/experiments",
			failLogin: "outsider", failMethod: "POST", failPath: "/api/experiments",
			failBody:   model.Experiment{Name: "x", Project: 1},
			failStatus: http.StatusForbidden, failCode: "forbidden",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				var exp struct{ ID int64 }
				code := fx.call(t, "alice", "POST", "/api/experiments", model.Experiment{
					Name: "coverage-exp", Project: fx.project, Resources: st.imp.Resources,
				}, &exp)
				if code != http.StatusCreated || exp.ID == 0 {
					t.Fatalf("create experiment: %d", code)
				}
				st.expID = exp.ID
			},
		},
		{
			pattern:   "POST /api/experiments/{id}/run",
			failLogin: "alice", failMethod: "POST", failPath: "/api/experiments/999999/run",
			failBody:   map[string]any{"Application": 1, "WorkunitName": "r"},
			failStatus: http.StatusNotFound, failCode: "not_found",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				code := fx.call(t, "alice", "POST", fmt.Sprintf("/api/experiments/%d/run", st.expID), map[string]any{
					"Application": st.appID, "WorkunitName": "results",
					"Params": map[string]string{"reference_group": "control"},
				}, &st.run)
				if code != http.StatusOK || st.run.Failed {
					t.Fatalf("run experiment: %d %+v", code, st.run)
				}
			},
		},
		{
			pattern:   "GET /api/workunits/{id}",
			failLogin: "outsider", failMethod: "GET", failPath: "", // set below after import
			failStatus: http.StatusForbidden, failCode: "forbidden",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				var wu struct{ Workunit model.Workunit }
				code := fx.call(t, "alice", "GET", fmt.Sprintf("/api/workunits/%d", st.run.Workunit), nil, &wu)
				if code != http.StatusOK || wu.Workunit.State != model.WorkunitReady {
					t.Fatalf("workunit: %d %+v", code, wu.Workunit)
				}
			},
		},
		{
			pattern:   "GET /api/resources/{id}/download",
			failLogin: "alice", failMethod: "GET", failPath: "/api/resources/999999/download",
			failStatus: http.StatusNotFound, failCode: "not_found",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				code := fx.call(t, "alice", "GET", fmt.Sprintf("/api/resources/%d/download", st.run.Resources[0]), nil, nil)
				if code != http.StatusOK {
					t.Fatalf("download: %d", code)
				}
			},
		},
		{
			pattern:   "GET /api/browse/{kind}",
			failLogin: "alice", failMethod: "GET", failPath: "/api/browse/nonsense",
			failStatus: http.StatusNotFound, failCode: "not_found",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				var page struct {
					Items []map[string]any `json:"items"`
					AsOf  uint64           `json:"asOf"`
				}
				code := fx.call(t, "alice", "GET", "/api/browse/sample?limit=10", nil, &page)
				if code != http.StatusOK || len(page.Items) == 0 || page.AsOf == 0 {
					t.Fatalf("browse list: %d %+v", code, page)
				}
			},
		},
		{
			pattern:   "GET /api/browse/{kind}/{id}",
			failLogin: "alice", failMethod: "GET", failPath: "/api/browse/sample/abc",
			failStatus: http.StatusBadRequest, failCode: "bad_request",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				code := fx.call(t, "alice", "GET", fmt.Sprintf("/api/browse/sample/%d", st.sample), nil, nil)
				if code != http.StatusOK {
					t.Fatalf("browse neighbors: %d", code)
				}
			},
		},
		{
			pattern:   "GET /api/workflows/{id}/dot",
			failLogin: "alice", failMethod: "GET", failPath: "/api/workflows/999999/dot",
			failStatus: http.StatusNotFound, failCode: "not_found",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				code := fx.call(t, "alice", "GET", fmt.Sprintf("/api/workflows/%d/dot", st.run.WorkflowInstance), nil, nil)
				if code != http.StatusOK {
					t.Fatalf("workflow dot: %d", code)
				}
			},
		},
		{
			pattern:   "GET /api/search",
			failLogin: "alice", failMethod: "GET", failPath: "/api/search?q=",
			failStatus: http.StatusBadRequest, failCode: "bad_request",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				var hits []map[string]any
				code := fx.call(t, "alice", "GET", "/api/search?q=coverage", nil, &hits)
				if code != http.StatusOK || len(hits) == 0 {
					t.Fatalf("search: %d %v", code, hits)
				}
			},
		},
		{
			pattern:    "GET /api/search/history",
			failMethod: "GET", failPath: "/api/search/history",
			failStatus: http.StatusUnauthorized, failCode: "unauthorized",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				var hist []string
				code := fx.call(t, "alice", "GET", "/api/search/history", nil, &hist)
				if code != http.StatusOK || len(hist) == 0 {
					t.Fatalf("history: %d %v", code, hist)
				}
			},
		},
		{
			pattern:   "POST /api/search/save",
			failLogin: "alice", failMethod: "POST", failPath: "/api/search/save",
			failBody:   "not json",
			failStatus: http.StatusBadRequest, failCode: "bad_request",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				code := fx.call(t, "alice", "POST", "/api/search/save",
					map[string]string{"Name": "mine", "Query": "coverage"}, nil)
				if code != http.StatusCreated {
					t.Fatalf("save query: %d", code)
				}
			},
		},
		{
			pattern:    "GET /api/search/saved",
			failMethod: "GET", failPath: "/api/search/saved",
			failStatus: http.StatusUnauthorized, failCode: "unauthorized",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				var saved []map[string]any
				code := fx.call(t, "alice", "GET", "/api/search/saved", nil, &saved)
				if code != http.StatusOK || len(saved) == 0 {
					t.Fatalf("saved queries: %d %v", code, saved)
				}
			},
		},
		{
			pattern:   "GET /api/search/export",
			failLogin: "alice", failMethod: "GET", failPath: "/api/search/export?q=",
			failStatus: http.StatusBadRequest, failCode: "bad_request",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				code := fx.call(t, "alice", "GET", "/api/search/export?q=coverage", nil, nil)
				if code != http.StatusOK {
					t.Fatalf("search export: %d", code)
				}
			},
		},
		{
			pattern:   "GET /api/audit/recent",
			failLogin: "alice", failMethod: "GET", failPath: "/api/audit/recent",
			failStatus: http.StatusForbidden, failCode: "forbidden",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				var es []map[string]any
				code := fx.call(t, "root", "GET", "/api/audit/recent?n=5", nil, &es)
				if code != http.StatusOK || len(es) == 0 {
					t.Fatalf("audit: %d %v", code, es)
				}
			},
		},
		{
			pattern:   "GET /api/projects/{id}/export",
			failLogin: "outsider", failMethod: "GET", failPath: "", // set below
			failStatus: http.StatusForbidden, failCode: "forbidden",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				req, _ := http.NewRequest("GET", fx.srv.URL+fmt.Sprintf("/api/projects/%d/export", fx.project), nil)
				req.Header.Set("Authorization", "Bearer "+fx.tokens["alice"])
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				data, _ := io.ReadAll(resp.Body)
				if resp.StatusCode != http.StatusOK || len(data) == 0 {
					t.Fatalf("export project: %d (%d bytes)", resp.StatusCode, len(data))
				}
				st.exportZip = data
			},
		},
		{
			pattern:   "POST /api/projects/import",
			failLogin: "alice", failMethod: "POST", failPath: "/api/projects/import",
			failBody:   map[string]string{},
			failStatus: http.StatusForbidden, failCode: "forbidden",
			run: func(t *testing.T, fx *fixture, st *routeState) {
				req, _ := http.NewRequest("POST", fx.srv.URL+"/api/projects/import", bytes.NewReader(st.exportZip))
				req.Header.Set("Authorization", "Bearer "+fx.tokens["root"])
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusCreated {
					t.Fatalf("import project: %d", resp.StatusCode)
				}
			},
		},
	}

	// Dynamic failure paths that need ids from the fixture.
	for i := range probes {
		switch probes[i].pattern {
		case "GET /api/workunits/{id}":
			probes[i].failPath = "/api/workunits/1" // created by POST /api/import below; ordered after it
		case "GET /api/projects/{id}/export":
			probes[i].failPath = fmt.Sprintf("/api/projects/%d/export", fx.project)
		}
	}

	for _, p := range probes {
		p := p
		t.Run(p.pattern, func(t *testing.T) {
			if p.run != nil {
				p.run(t, fx, st)
			}
			if p.failMethod != "" {
				expectEnvelope(t, p.failLogin, p.failMethod, p.failPath, p.failBody, p.failStatus, p.failCode)
			}
		})
	}
}
