package portal

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// replicaCall performs an authenticated JSON request against an extra
// portal server (the replica-configured one) reusing the fixture's
// session tokens — both portals share the same auth service.
func replicaCall(t *testing.T, fx *fixture, srv *httptest.Server, login, method, path string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, srv.URL+path, bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if login != "" {
		req.Header.Set("Authorization", "Bearer "+fx.tokens[login])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

// TestReplicationEndpointOnPrimary: every server reports its replication
// coordinates — a plain primary answers role/epoch/commitSeq so an
// operator can compare fencing tokens across nodes.
func TestReplicationEndpointOnPrimary(t *testing.T) {
	fx := newFixture(t)
	var out struct {
		Role      string `json:"role"`
		Epoch     uint64 `json:"epoch"`
		CommitSeq uint64 `json:"commitSeq"`
	}
	if code := fx.call(t, "", "GET", "/api/replication", nil, &out); code != http.StatusOK {
		t.Fatalf("replication on primary: %d, want 200", code)
	}
	if out.Role != "primary" || out.Epoch != 1 {
		t.Fatalf("replication on primary = %+v, want role=primary epoch=1", out)
	}
	if out.CommitSeq != fx.sys.Store.CommitSeq() {
		t.Fatalf("replication commitSeq = %d, want %d", out.CommitSeq, fx.sys.Store.CommitSeq())
	}
}

// TestPromoteEndpoint drives the HTTP failover path end to end on one
// system: a replica portal whose readyz honestly refuses writes, an
// admin-only promote that bumps the epoch and opens the write gate, and
// the probes flipping to the primary answers without a restart.
func TestPromoteEndpoint(t *testing.T) {
	fx := newFixture(t)
	st := fx.sys.Store
	st.SetReplica(true)
	defer st.SetReplica(false)

	promote := func() (any, error) {
		epoch, err := st.AdvanceEpoch(1)
		if err != nil {
			return nil, err
		}
		st.SetReplica(false)
		return map[string]any{"epoch": epoch, "lastApplied": st.CommitSeq()}, nil
	}
	replica := httptest.NewServer(NewWithConfig(fx.sys, Config{
		ReplicaStatus: func() any { return map[string]any{"lag": 0} },
		Promote:       promote,
	}))
	defer replica.Close()

	// While a replica: readyz refuses writes and carries the epoch.
	resp, err := http.Get(replica.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		OK     bool   `json:"ok"`
		Reason string `json:"reason"`
		Epoch  uint64 `json:"epoch"`
		Repl   any    `json:"replication"`
		Promo  bool   `json:"promoted"`
		Health any    `json:"health"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ready)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || err != nil {
		t.Fatalf("readyz on replica: %d (%v), want 503", resp.StatusCode, err)
	}
	if ready.OK || ready.Epoch != 1 || ready.Repl == nil {
		t.Fatalf("readyz replica body = %+v, want ok=false epoch=1 with replication", ready)
	}

	// Promotion is admin-only.
	if code := replicaCall(t, fx, replica, "alice", "POST", "/api/replication/promote", nil); code != http.StatusForbidden {
		t.Fatalf("promote as scientist: %d, want 403", code)
	}
	if st.IsReplica() != true {
		t.Fatal("denied promotion changed the store's role")
	}

	var promoted struct {
		Epoch     uint64 `json:"epoch"`
		CommitSeq uint64 `json:"commitSeq"`
	}
	if code := replicaCall(t, fx, replica, "root", "POST", "/api/replication/promote", &promoted); code != http.StatusOK {
		t.Fatalf("promote as admin: %d, want 200", code)
	}
	if promoted.Epoch != 2 || st.Epoch() != 2 || st.IsReplica() {
		t.Fatalf("after promote: body epoch %d, store epoch %d, replica %v — want 2/2/false",
			promoted.Epoch, st.Epoch(), st.IsReplica())
	}

	// A second promote is a conflict: the store is already a primary.
	if code := replicaCall(t, fx, replica, "root", "POST", "/api/replication/promote", nil); code != http.StatusConflict {
		t.Fatalf("second promote: %d, want 409", code)
	}

	// The probes flip without a restart: readyz 200 with the promotion
	// visible, /api/replication reports the new primary role.
	resp2, err := http.Get(replica.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready2 struct {
		OK       bool   `json:"ok"`
		Promoted bool   `json:"promoted"`
		Epoch    uint64 `json:"epoch"`
	}
	err = json.NewDecoder(resp2.Body).Decode(&ready2)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || err != nil {
		t.Fatalf("readyz after promote: %d (%v), want 200", resp2.StatusCode, err)
	}
	if !ready2.OK || !ready2.Promoted || ready2.Epoch != 2 {
		t.Fatalf("readyz after promote = %+v, want ok promoted epoch=2", ready2)
	}
	var rep struct {
		Role     string `json:"role"`
		Epoch    uint64 `json:"epoch"`
		Promoted bool   `json:"promoted"`
	}
	if code := replicaCall(t, fx, replica, "", "GET", "/api/replication", &rep); code != http.StatusOK {
		t.Fatalf("replication after promote: %d, want 200", code)
	}
	if rep.Role != "primary" || rep.Epoch != 2 || !rep.Promoted {
		t.Fatalf("replication after promote = %+v, want role=primary epoch=2 promoted", rep)
	}
}

// TestPromoteNotConfigured: a portal without a Promote hook (a plain
// primary) answers 404 — there is nothing to promote.
func TestPromoteNotConfigured(t *testing.T) {
	fx := newFixture(t)
	if code := fx.call(t, "root", "POST", "/api/replication/promote", nil, nil); code != http.StatusNotFound {
		t.Fatalf("promote on primary portal: %d, want 404", code)
	}
}
