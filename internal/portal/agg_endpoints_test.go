package portal

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/model"
)

// seedGroupedSamples registers a few samples so grouped histograms have
// more than one bucket.
func seedGroupedSamples(t *testing.T, fx *fixture) {
	t.Helper()
	for i, species := range []string{"Arabidopsis thaliana", "Arabidopsis thaliana", ""} {
		code := fx.call(t, "alice", "POST", "/api/samples", map[string]any{
			"Sample": model.Sample{
				Name: "agg-seed-" + string(rune('a'+i)), Project: fx.project, Species: species,
			},
		}, nil)
		if code != http.StatusCreated {
			t.Fatalf("seed sample %d: %d", i, code)
		}
	}
}

type groupedResp struct {
	Kind   string `json:"kind"`
	By     string `json:"by"`
	Groups []struct {
		Key   any `json:"key"`
		Count int `json:"count"`
	} `json:"groups"`
	AsOf uint64 `json:"asOf"`
	Plan string `json:"plan"`
}

func TestStatsGroupedEndpoint(t *testing.T) {
	fx := newFixture(t)
	seedGroupedSamples(t, fx)

	resp, body := fx.get(t, "alice", "/api/stats/sample?by=species&explain=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grouped stats: %d (%s)", resp.StatusCode, body)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("grouped stats: missing ETag")
	}
	var out groupedResp
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if out.Kind != "sample" || out.By != "species" || out.AsOf == 0 {
		t.Fatalf("bad envelope: %+v", out)
	}
	if !strings.Contains(out.Plan, "agg=count(postings)") || !strings.Contains(out.Plan, "by=species") {
		t.Errorf("explain plan %q does not name the postings strategy", out.Plan)
	}
	found := 0
	for _, g := range out.Groups {
		if g.Key == "Arabidopsis thaliana" {
			found = g.Count
		}
		if g.Count < 1 {
			t.Errorf("group %v with non-positive count %d", g.Key, g.Count)
		}
	}
	if found != 2 {
		t.Errorf("Arabidopsis group = %d, want 2", found)
	}

	// Conditional replay: 304 until a commit moves the seq.
	resp2, body2 := fx.get(t, "alice", "/api/stats/sample?by=species", map[string]string{"If-None-Match": etag})
	if resp2.StatusCode != http.StatusNotModified || len(body2) != 0 {
		t.Fatalf("conditional grouped stats: %d (%d bytes), want 304 empty", resp2.StatusCode, len(body2))
	}
	if code := fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "agg-move", Project: fx.project},
	}, nil); code != http.StatusCreated {
		t.Fatalf("probe write: %d", code)
	}
	resp3, _ := fx.get(t, "alice", "/api/stats/sample?by=species", map[string]string{"If-None-Match": etag})
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("post-commit conditional: %d, want 200", resp3.StatusCode)
	}
	if resp3.Header.Get("ETag") == etag {
		t.Error("grouped stats ETag did not advance past a commit")
	}

	// Validation surface.
	for _, c := range []struct {
		path string
		want int
		code string
	}{
		{"/api/stats/nope?by=state", http.StatusNotFound, "not_found"},
		{"/api/stats/sample", http.StatusBadRequest, "bad_request"},
		{"/api/stats/sample?by=tissue", http.StatusBadRequest, "bad_request"},
		{"/api/stats/sample?by=bogus", http.StatusBadRequest, "bad_request"},
	} {
		resp, body := fx.get(t, "alice", c.path, nil)
		if resp.StatusCode != c.want {
			t.Errorf("%s: %d, want %d", c.path, resp.StatusCode, c.want)
			continue
		}
		var env errEnvelope
		if err := json.Unmarshal(body, &env); err != nil || env.Code != c.code {
			t.Errorf("%s: envelope %s, want code %q", c.path, body, c.code)
		}
	}

	// The endpoint sits behind auth.
	if resp, _ := fx.get(t, "", "/api/stats/sample?by=species", nil); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated grouped stats: %d, want 401", resp.StatusCode)
	}
}

func TestDashboardETagConditional(t *testing.T) {
	fx := newFixture(t)

	resp1, body1 := fx.get(t, "", "/", nil)
	etag := resp1.Header.Get("ETag")
	if resp1.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("dashboard: %d etag=%q", resp1.StatusCode, etag)
	}
	if !strings.Contains(string(body1), "Swiss Army Knife") {
		t.Error("dashboard missing title")
	}
	resp2, body2 := fx.get(t, "", "/", map[string]string{"If-None-Match": etag})
	if resp2.StatusCode != http.StatusNotModified || len(body2) != 0 {
		t.Fatalf("conditional dashboard: %d (%d bytes), want 304 empty", resp2.StatusCode, len(body2))
	}
	if code := fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "dash-probe", Project: fx.project},
	}, nil); code != http.StatusCreated {
		t.Fatalf("probe write: %d", code)
	}
	resp3, body3 := fx.get(t, "", "/", map[string]string{"If-None-Match": etag})
	if resp3.StatusCode != http.StatusOK || !strings.Contains(string(body3), "Workunits") {
		t.Fatalf("post-commit dashboard: %d, want 200 with stats table", resp3.StatusCode)
	}
	if resp3.Header.Get("ETag") == etag {
		t.Error("dashboard ETag did not advance past a commit")
	}
}

// TestReplicaSearchUnavailable pins the replica search contract: instead
// of silently serving its knowingly-empty index as zero hits, a replica
// portal refuses /api/search and /api/search/export with a retryable,
// machine-readable 503.
func TestReplicaSearchUnavailable(t *testing.T) {
	fx := newFixture(t)
	// A second portal over the same system, marked as fronting a replica.
	// The search gate follows the store's current role, so flip the shared
	// store into replica mode for the refusal assertions (a real replica
	// boots that way before serving).
	replica := httptest.NewServer(NewWithConfig(fx.sys, Config{
		ReplicaStatus: func() any { return map[string]any{"lag": 0} },
	}))
	defer replica.Close()
	fx.sys.Store.SetReplica(true)
	defer fx.sys.Store.SetReplica(false)

	for _, path := range []string{"/api/search?q=anything", "/api/search/export?q=anything"} {
		req, err := http.NewRequest("GET", replica.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+fx.tokens["alice"])
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var env errEnvelope
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s on replica: %d, want 503", path, resp.StatusCode)
			continue
		}
		if err != nil || env.Code != "search_unavailable" {
			t.Errorf("%s on replica: envelope %+v, want code search_unavailable", path, env)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s on replica: missing Retry-After", path)
		}
	}

	// The primary keeps serving search, and other replica reads still work.
	if resp, _ := fx.get(t, "alice", "/api/search?q=anything", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("search on primary: %d, want 200", resp.StatusCode)
	}

	// Promotion opens the gate: once the store leaves replica mode the
	// same portal serves search again, no restart needed.
	fx.sys.Store.SetReplica(false)
	req2, _ := http.NewRequest("GET", replica.URL+"/api/search?q=anything", nil)
	req2.Header.Set("Authorization", "Bearer "+fx.tokens["alice"])
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("search on promoted replica portal: %d, want 200", resp2.StatusCode)
	}
	req, _ := http.NewRequest("GET", replica.URL+"/api/stats", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stats on replica: %d, want 200", resp.StatusCode)
	}
}

func TestTaskAuditSummaryEndpoints(t *testing.T) {
	fx := newFixture(t)
	seedGroupedSamples(t, fx)

	var ts struct {
		ByState    map[string]int `json:"by_state"`
		OpenByRole map[string]int `json:"open_by_role"`
		Total      int            `json:"total"`
	}
	if code := fx.call(t, "alice", "GET", "/api/tasks/summary", nil, &ts); code != http.StatusOK {
		t.Fatalf("tasks summary: %d", code)
	}

	var as struct {
		ByTopic map[string]int `json:"by_topic"`
		ByActor map[string]int `json:"by_actor"`
		Total   int            `json:"total"`
	}
	if code := fx.call(t, "alice", "GET", "/api/audit/summary", nil, nil); code != http.StatusForbidden {
		t.Fatalf("audit summary as scientist: %d, want 403", code)
	}
	if code := fx.call(t, "root", "GET", "/api/audit/summary", nil, &as); code != http.StatusOK {
		t.Fatalf("audit summary as admin: %d", code)
	}
	if as.Total <= 0 || len(as.ByTopic) == 0 || as.ByActor["alice"] == 0 {
		t.Errorf("implausible audit summary: %+v", as)
	}
	if as.ByTopic["sample.created"] < 3 {
		t.Errorf("audit summary sample.created = %d, want >= 3", as.ByTopic["sample.created"])
	}
}
