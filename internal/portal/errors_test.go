package portal

import (
	"net/http"
	"testing"

	"repro/internal/model"
	"repro/internal/store"
)

func TestMalformedJSONBodies(t *testing.T) {
	fx := newFixture(t)
	for _, path := range []string{
		"/api/samples", "/api/extracts", "/api/annotations",
		"/api/annotations/merge", "/api/import", "/api/applications",
		"/api/experiments", "/api/search/save",
	} {
		code := fx.rawPost(t, "alice", path, []byte("{not json"))
		if code != http.StatusBadRequest {
			t.Errorf("%s with garbage body: %d", path, code)
		}
	}
}

func TestUnknownFieldsRejected(t *testing.T) {
	fx := newFixture(t)
	code := fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "x", Project: fx.project},
		"Bogus":  true,
	}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("unknown field accepted: %d", code)
	}
}

func TestBadPathIDs(t *testing.T) {
	fx := newFixture(t)
	for _, c := range []struct{ method, path string }{
		{"GET", "/api/samples/notanumber"},
		{"GET", "/api/workunits/xyz"},
		{"GET", "/api/browse/sample/zzz"},
		{"GET", "/api/workflows/abc/dot"},
		{"GET", "/api/resources/q/download"},
	} {
		code := fx.call(t, "alice", c.method, c.path, nil, nil)
		if code != http.StatusBadRequest {
			t.Errorf("%s %s: %d", c.method, c.path, code)
		}
	}
}

func TestMissingObjects(t *testing.T) {
	fx := newFixture(t)
	for _, c := range []struct{ method, path string }{
		{"GET", "/api/samples/99999"},
		{"GET", "/api/workunits/99999"},
	} {
		code := fx.call(t, "alice", c.method, c.path, nil, nil)
		if code != http.StatusNotFound {
			t.Errorf("%s %s: %d", c.method, c.path, code)
		}
	}
}

func TestExtractEndpointValidations(t *testing.T) {
	fx := newFixture(t)
	var created struct{ IDs []int64 }
	code := fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "s", Project: fx.project},
	}, &created)
	if code != http.StatusCreated {
		t.Fatal(code)
	}
	sid := created.IDs[0]
	// Unknown extraction method rejected.
	code = fx.call(t, "alice", "POST", "/api/extracts", map[string]any{
		"Extract": model.Extract{Name: "e", Sample: sid, ExtractionMethod: "Alchemy"},
	}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("unknown method: %d", code)
	}
	// Batch extracts through the portal.
	var ext struct{ IDs []int64 }
	code = fx.call(t, "alice", "POST", "/api/extracts", map[string]any{
		"Extract": model.Extract{Name: "tpl", Sample: sid},
		"Batch":   3, "Prefix": "e",
	}, &ext)
	if code != http.StatusCreated || len(ext.IDs) != 3 {
		t.Errorf("batch extracts: %d %v", code, ext.IDs)
	}
	// Outsider cannot create extracts in the project.
	code = fx.call(t, "outsider", "POST", "/api/extracts", map[string]any{
		"Extract": model.Extract{Name: "no", Sample: sid},
	}, nil)
	if code != http.StatusForbidden {
		t.Errorf("outsider extract: %d", code)
	}
}

func TestRunExperimentAccessControl(t *testing.T) {
	fx := newFixture(t)
	var exp struct{ ID int64 }
	code := fx.call(t, "alice", "POST", "/api/experiments", model.Experiment{
		Name: "e", Project: fx.project,
	}, &exp)
	if code != http.StatusCreated {
		t.Fatal(code)
	}
	code = fx.call(t, "outsider", "POST", "/api/experiments/1/run", map[string]any{
		"Application": 1, "WorkunitName": "x",
	}, nil)
	if code != http.StatusForbidden {
		t.Errorf("outsider run: %d", code)
	}
}

func TestCompleteImportOnMissingInstance(t *testing.T) {
	fx := newFixture(t)
	code := fx.call(t, "alice", "POST", "/api/import/9999/complete", map[string]string{}, nil)
	if code != http.StatusNotFound {
		t.Errorf("missing instance: %d", code)
	}
}

func TestImportRequiresProjectAccess(t *testing.T) {
	fx := newFixture(t)
	code := fx.call(t, "outsider", "POST", "/api/import", map[string]any{
		"Provider": "genechip", "WorkunitName": "x", "Project": fx.project,
	}, nil)
	if code != http.StatusForbidden {
		t.Errorf("outsider import: %d", code)
	}
}

func TestSampleGetAccessControl(t *testing.T) {
	fx := newFixture(t)
	var created struct{ IDs []int64 }
	fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "private", Project: fx.project},
	}, &created)
	code := fx.call(t, "outsider", "GET", "/api/samples/1", nil, nil)
	if code != http.StatusForbidden {
		t.Errorf("outsider sample read: %d", code)
	}
	// Experts see everything.
	code = fx.call(t, "eva", "GET", "/api/samples/1", nil, nil)
	if code != http.StatusOK {
		t.Errorf("expert sample read: %d", code)
	}
}

func TestTasksForUnknownSessionUser(t *testing.T) {
	// A session for a user later removed from the user table yields 404.
	fx := newFixture(t)
	var uid int64
	_ = fx.sys.Update(func(tx *store.Tx) error {
		u, err := fx.sys.DB.UserByLogin(tx, "outsider")
		if err != nil {
			return err
		}
		uid = u.ID
		return fx.sys.DB.Registry().Delete(tx, model.KindUser, uid, "test")
	})
	code := fx.call(t, "outsider", "GET", "/api/tasks", nil, nil)
	if code != http.StatusNotFound {
		t.Errorf("deleted user tasks: %d", code)
	}
}
