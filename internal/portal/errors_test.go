package portal

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/store"
	"repro/internal/tasks"
)

func TestMalformedJSONBodies(t *testing.T) {
	fx := newFixture(t)
	for _, path := range []string{
		"/api/samples", "/api/extracts", "/api/annotations",
		"/api/annotations/merge", "/api/import", "/api/applications",
		"/api/experiments", "/api/search/save",
	} {
		code := fx.rawPost(t, "alice", path, []byte("{not json"))
		if code != http.StatusBadRequest {
			t.Errorf("%s with garbage body: %d", path, code)
		}
	}
}

func TestUnknownFieldsRejected(t *testing.T) {
	fx := newFixture(t)
	code := fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "x", Project: fx.project},
		"Bogus":  true,
	}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("unknown field accepted: %d", code)
	}
}

func TestBadPathIDs(t *testing.T) {
	fx := newFixture(t)
	for _, c := range []struct{ method, path string }{
		{"GET", "/api/samples/notanumber"},
		{"GET", "/api/workunits/xyz"},
		{"GET", "/api/browse/sample/zzz"},
		{"GET", "/api/workflows/abc/dot"},
		{"GET", "/api/resources/q/download"},
	} {
		code := fx.call(t, "alice", c.method, c.path, nil, nil)
		if code != http.StatusBadRequest {
			t.Errorf("%s %s: %d", c.method, c.path, code)
		}
	}
}

func TestMissingObjects(t *testing.T) {
	fx := newFixture(t)
	for _, c := range []struct{ method, path string }{
		{"GET", "/api/samples/99999"},
		{"GET", "/api/workunits/99999"},
	} {
		code := fx.call(t, "alice", c.method, c.path, nil, nil)
		if code != http.StatusNotFound {
			t.Errorf("%s %s: %d", c.method, c.path, code)
		}
	}
}

func TestExtractEndpointValidations(t *testing.T) {
	fx := newFixture(t)
	var created struct{ IDs []int64 }
	code := fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "s", Project: fx.project},
	}, &created)
	if code != http.StatusCreated {
		t.Fatal(code)
	}
	sid := created.IDs[0]
	// Unknown extraction method rejected.
	code = fx.call(t, "alice", "POST", "/api/extracts", map[string]any{
		"Extract": model.Extract{Name: "e", Sample: sid, ExtractionMethod: "Alchemy"},
	}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("unknown method: %d", code)
	}
	// Batch extracts through the portal.
	var ext struct{ IDs []int64 }
	code = fx.call(t, "alice", "POST", "/api/extracts", map[string]any{
		"Extract": model.Extract{Name: "tpl", Sample: sid},
		"Batch":   3, "Prefix": "e",
	}, &ext)
	if code != http.StatusCreated || len(ext.IDs) != 3 {
		t.Errorf("batch extracts: %d %v", code, ext.IDs)
	}
	// Outsider cannot create extracts in the project.
	code = fx.call(t, "outsider", "POST", "/api/extracts", map[string]any{
		"Extract": model.Extract{Name: "no", Sample: sid},
	}, nil)
	if code != http.StatusForbidden {
		t.Errorf("outsider extract: %d", code)
	}
}

func TestRunExperimentAccessControl(t *testing.T) {
	fx := newFixture(t)
	var exp struct{ ID int64 }
	code := fx.call(t, "alice", "POST", "/api/experiments", model.Experiment{
		Name: "e", Project: fx.project,
	}, &exp)
	if code != http.StatusCreated {
		t.Fatal(code)
	}
	code = fx.call(t, "outsider", "POST", "/api/experiments/1/run", map[string]any{
		"Application": 1, "WorkunitName": "x",
	}, nil)
	if code != http.StatusForbidden {
		t.Errorf("outsider run: %d", code)
	}
}

func TestCompleteImportOnMissingInstance(t *testing.T) {
	fx := newFixture(t)
	code := fx.call(t, "alice", "POST", "/api/import/9999/complete", map[string]string{}, nil)
	if code != http.StatusNotFound {
		t.Errorf("missing instance: %d", code)
	}
}

func TestImportRequiresProjectAccess(t *testing.T) {
	fx := newFixture(t)
	code := fx.call(t, "outsider", "POST", "/api/import", map[string]any{
		"Provider": "genechip", "WorkunitName": "x", "Project": fx.project,
	}, nil)
	if code != http.StatusForbidden {
		t.Errorf("outsider import: %d", code)
	}
}

func TestSampleGetAccessControl(t *testing.T) {
	fx := newFixture(t)
	var created struct{ IDs []int64 }
	fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "private", Project: fx.project},
	}, &created)
	code := fx.call(t, "outsider", "GET", "/api/samples/1", nil, nil)
	if code != http.StatusForbidden {
		t.Errorf("outsider sample read: %d", code)
	}
	// Experts see everything.
	code = fx.call(t, "eva", "GET", "/api/samples/1", nil, nil)
	if code != http.StatusOK {
		t.Errorf("expert sample read: %d", code)
	}
}

func TestTasksForUnknownSessionUser(t *testing.T) {
	// A session whose user was later removed from the user table no
	// longer resolves to an identity: the session-user fast path maps it
	// to 401, same as any dead session.
	fx := newFixture(t)
	var uid int64
	_ = fx.sys.Update(func(tx *store.Tx) error {
		u, err := fx.sys.DB.UserByLogin(tx, "outsider")
		if err != nil {
			return err
		}
		uid = u.ID
		return fx.sys.DB.Registry().Delete(tx, model.KindUser, uid, "test")
	})
	code := fx.call(t, "outsider", "GET", "/api/tasks", nil, nil)
	if code != http.StatusUnauthorized {
		t.Errorf("deleted user tasks: %d", code)
	}
}

// --- serving hardening -----------------------------------------------------------

// callRaw performs an authenticated request and returns status, headers and
// the decoded error envelope.
func (fx *fixture) callRaw(t *testing.T, login, method, path string) (*http.Response, errEnvelope) {
	t.Helper()
	req, err := http.NewRequest(method, fx.srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if login != "" {
		req.Header.Set("Authorization", "Bearer "+fx.tokens[login])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env errEnvelope
	_ = json.NewDecoder(resp.Body).Decode(&env)
	return resp, env
}

func TestErrorEnvelopeShape(t *testing.T) {
	fx := newFixture(t)
	resp, env := fx.callRaw(t, "alice", "GET", "/api/samples/99999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if env.Code != "not_found" || env.Status != http.StatusNotFound || env.Error == "" {
		t.Errorf("envelope %+v", env)
	}
	resp, env = fx.callRaw(t, "outsider", "GET", "/api/samples/99999")
	if env.Code == "" || env.Status != resp.StatusCode {
		t.Errorf("envelope status mismatch: %+v vs %d", env, resp.StatusCode)
	}
}

func TestPanicRecovery(t *testing.T) {
	fx := newFixture(t)
	// In-package tests may extend the mux; a handler that panics must come
	// back as a 500 envelope, not a dropped connection.
	fx.sys.Store.EnsureTable("noop")
	srv := New(fx.sys)
	srv.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var env errEnvelope
	_ = json.NewDecoder(resp.Body).Decode(&env)
	if env.Code != "internal" || !strings.Contains(env.Error, "kaboom") {
		t.Errorf("envelope %+v", env)
	}
}

func TestRequestTimeout(t *testing.T) {
	fx := newFixture(t)
	srv := NewWithConfig(fx.sys, Config{RequestTimeout: 20 * time.Millisecond})
	srv.mux.HandleFunc("GET /slow", func(w http.ResponseWriter, r *http.Request) {
		// A well-behaved slow handler: blocks until the per-request
		// deadline installed by the middleware fires, then reports the
		// context error like every store-backed handler does.
		<-r.Context().Done()
		writeErr(w, statusFor(r.Context().Err()), r.Context().Err())
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var env errEnvelope
	_ = json.NewDecoder(resp.Body).Decode(&env)
	if env.Code != "timeout" {
		t.Errorf("envelope %+v", env)
	}
}

func TestAdmissionGate(t *testing.T) {
	fx := newFixture(t)
	srv := NewWithConfig(fx.sys, Config{MaxInFlight: 1})
	release := make(chan struct{})
	entered := make(chan struct{})
	srv.mux.HandleFunc("GET /hold", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/hold")
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-entered // the single slot is now held
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz under load: %d (probes must bypass the gate)", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	var env errEnvelope
	_ = json.NewDecoder(resp.Body).Decode(&env)
	if env.Code != "overloaded" {
		t.Errorf("envelope %+v", env)
	}
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestHealthEndpointsHealthy(t *testing.T) {
	fx := newFixture(t)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(fx.srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: %d", path, resp.StatusCode)
		}
	}
}

func TestCompleteTaskEndpoint(t *testing.T) {
	fx := newFixture(t)
	var taskID int64
	err := fx.sys.Update(func(tx *store.Tx) error {
		var err error
		taskID, err = fx.sys.Tasks.Create(tx, tasks.Task{
			Type: "manual", Title: "check instrument", AssigneeLogin: "alice",
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	path := fmt.Sprintf("/api/tasks/%d/complete", taskID)
	if code := fx.call(t, "outsider", "POST", path, nil, nil); code != http.StatusForbidden {
		t.Errorf("outsider complete: %d", code)
	}
	if code := fx.call(t, "alice", "POST", path, nil, nil); code != http.StatusOK {
		t.Errorf("assignee complete: %d", code)
	}
	// Completing a closed task is a conflict, not a success.
	resp, env := fx.callRaw(t, "alice", "POST", path)
	if resp.StatusCode != http.StatusConflict || env.Code != "conflict" {
		t.Errorf("re-complete: %d %+v", resp.StatusCode, env)
	}
	// Admins may close anyone's task.
	var secondID int64
	_ = fx.sys.Update(func(tx *store.Tx) error {
		var err error
		secondID, err = fx.sys.Tasks.Create(tx, tasks.Task{
			Type: "manual", Title: "another", AssigneeLogin: "alice",
		})
		return err
	})
	path = fmt.Sprintf("/api/tasks/%d/complete", secondID)
	if code := fx.call(t, "root", "POST", path, nil, nil); code != http.StatusOK {
		t.Errorf("admin complete: %d", code)
	}
}
