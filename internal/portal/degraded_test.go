package portal

// End-to-end degraded-mode test: a durable system whose disk fails fsync
// mid-operation must keep serving reads through the portal while writes
// answer 503 with a Retry-After and the readiness probe flips to not-ready.
// This is the full stack — FaultFS under the WAL, store degradation,
// core.System health, portal status mapping — exercised through real HTTP.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/store"
)

func itoa(id int64) string { return strconv.FormatInt(id, 10) }

// postJSON performs an authenticated POST and returns the response plus
// the decoded error envelope (zero-valued on success responses).
func (fx *fixture) postJSON(t *testing.T, login, path string, body any) (*http.Response, errEnvelope) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", fx.srv.URL+path, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+fx.tokens[login])
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env errEnvelope
	_ = json.NewDecoder(resp.Body).Decode(&env)
	return resp, env
}

func TestPortalDegradedMode(t *testing.T) {
	ffs := store.NewFaultFS(nil)
	fx := newFixtureOpts(t, core.Options{
		DataDir:       t.TempDir(),
		Sync:          store.SyncAlways,
		SnapshotEvery: -1,
		FS:            ffs,
	})

	// A write that lands before the fault: must survive and stay readable.
	var created struct{ IDs []int64 }
	code := fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "pre-fault", Project: fx.project},
	}, &created)
	if code != http.StatusCreated || len(created.IDs) != 1 {
		t.Fatalf("pre-fault create: %d %v", code, created.IDs)
	}
	sampleID := created.IDs[0]

	// The next fsync fails; the commit that hits it errors and the store
	// degrades to read-only.
	ffs.FailNext(store.OpSync, store.FaultErr)
	code = fx.call(t, "alice", "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "during-fault", Project: fx.project},
	}, nil)
	if code == http.StatusCreated {
		t.Fatalf("write during fsync failure succeeded")
	}
	if _, fired := ffs.Failed(); !fired {
		t.Fatal("fault never fired")
	}

	// Writes now fail fast with the degraded 503 envelope + Retry-After.
	resp, env := fx.postJSON(t, "alice", "/api/samples", map[string]any{
		"Sample": model.Sample{Name: "post-fault", Project: fx.project},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded write: %d, want 503", resp.StatusCode)
	}
	if env.Code != "degraded" || env.Status != http.StatusServiceUnavailable {
		t.Errorf("degraded envelope %+v", env)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded 503 without Retry-After")
	}

	// Reads keep serving from the MVCC head: single object, browse, search.
	var sample model.Sample
	if code := fx.call(t, "alice", "GET", "/api/samples/"+itoa(sampleID), nil, &sample); code != http.StatusOK {
		t.Errorf("degraded read: %d", code)
	} else if sample.Name != "pre-fault" {
		t.Errorf("degraded read returned %q", sample.Name)
	}
	if code := fx.call(t, "alice", "GET", "/api/browse/sample", nil, nil); code != http.StatusOK {
		t.Errorf("degraded browse: %d", code)
	}
	if code := fx.call(t, "alice", "GET", "/api/search?q=pre-fault", nil, nil); code != http.StatusOK {
		t.Errorf("degraded search: %d", code)
	}

	// Liveness stays green (do not restart a read-only replica); readiness
	// flips to 503 and reports the reason.
	resp2, err := http.Get(fx.srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("healthz while degraded: %d", resp2.StatusCode)
	}
	resp3, err := http.Get(fx.srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while degraded: %d", resp3.StatusCode)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Error("readyz 503 without Retry-After")
	}
	var h store.Health
	_ = json.NewDecoder(resp3.Body).Decode(&h)
	if h.OK || h.Reason == "" || h.Since.IsZero() {
		t.Errorf("readyz health body %+v", h)
	}
}
