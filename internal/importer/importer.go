// Package importer implements B-Fabric's data import (Figures 9–11): files
// offered by a configured data provider are imported — physically copied
// into the internal store or merely linked — producing a workunit whose
// data resources the user must then connect to extracts. The import is
// driven by a workflow whose next step is highlighted to the user, and the
// assign-extracts screen pre-computes best matches between file names and
// extract names so that "typically [the scientist] just needs to press the
// save button".
package importer

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/model"
	"repro/internal/provider"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/tasks"
	"repro/internal/vocab"
	"repro/internal/workflow"
)

// Mode selects between the two import styles of the paper.
type Mode int

const (
	// Copy physically copies the file bytes into the internal store.
	Copy Mode = iota
	// Link records a reference to the file at its original location.
	Link
)

// String returns the mode name.
func (m Mode) String() string {
	if m == Link {
		return "link"
	}
	return "copy"
}

// WorkflowName is the registered import workflow definition.
const WorkflowName = "data-import"

// Import workflow step ids.
const (
	stepAssignExtracts = 1
)

// Request describes one import operation.
type Request struct {
	// Provider is the configured data provider to import from.
	Provider string
	// Paths are the selected provider files; empty selects everything the
	// provider lists.
	Paths []string
	// Mode is Copy or Link.
	Mode Mode
	// WorkunitName names the resulting workunit.
	WorkunitName string
	// Project owns the workunit.
	Project int64
	// Owner is the importing user's id (optional).
	Owner int64
	// Actor is the importing user's login, recorded in events and tasks.
	Actor string
}

// Result reports what an import created.
type Result struct {
	// Workunit is the created container.
	Workunit int64
	// Resources are the created data resource ids, in listing order.
	Resources []int64
	// WorkflowInstance is the running import workflow instance.
	WorkflowInstance int64
}

// ErrNothingToImport is returned when the provider offers no matching files.
var ErrNothingToImport = errors.New("no files to import")

// Service performs imports.
type Service struct {
	db    *model.DB
	mgr   *storage.Manager
	hub   *provider.Hub
	wf    *workflow.Engine
	tasks *tasks.Engine
}

// New wires the import service and registers its workflow definition with
// the engine. The workflow has a single interactive step — assign extracts —
// whose save action only becomes available once every non-input resource of
// the workunit has an extract assigned; completing it marks the workunit
// ready.
func New(db *model.DB, mgr *storage.Manager, hub *provider.Hub, wf *workflow.Engine, te *tasks.Engine) (*Service, error) {
	s := &Service{db: db, mgr: mgr, hub: hub, wf: wf, tasks: te}
	wf.RegisterCondition("importExtractsAssigned", s.condExtractsAssigned)
	wf.RegisterFunction("importMarkReady", s.fnMarkReady)
	def := workflow.Definition{
		Name:    WorkflowName,
		Initial: stepAssignExtracts,
		Steps: []workflow.Step{
			{
				ID:   stepAssignExtracts,
				Name: "assign extracts",
				Actions: []workflow.Action{
					{
						Name:          "save",
						Result:        workflow.Finish,
						Condition:     "importExtractsAssigned",
						PostFunctions: []string{"importMarkReady"},
					},
				},
			},
		},
	}
	if err := wf.RegisterDefinition(def); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Service) workunitOf(ctx *workflow.Context) (int64, error) {
	wu, err := strconv.ParseInt(ctx.Vars["workunit"], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("importer: workflow %d has no workunit var: %w", ctx.InstanceID, err)
	}
	return wu, nil
}

// condExtractsAssigned passes when every resource of the workunit has an
// extract.
func (s *Service) condExtractsAssigned(ctx *workflow.Context) (bool, error) {
	wu, err := s.workunitOf(ctx)
	if err != nil {
		return false, err
	}
	rs, err := s.db.ResourcesOfWorkunit(ctx.Tx, wu)
	if err != nil {
		return false, err
	}
	for _, r := range rs {
		if r.Extract == 0 {
			return false, nil
		}
	}
	return true, nil
}

// fnMarkReady flips the workunit to the ready state and completes any open
// assign-extracts task.
func (s *Service) fnMarkReady(ctx *workflow.Context) error {
	wu, err := s.workunitOf(ctx)
	if err != nil {
		return err
	}
	if err := s.db.SetWorkunitState(ctx.Tx, ctx.Actor, wu, model.WorkunitReady); err != nil {
		return err
	}
	open, err := s.tasks.OpenForObject(ctx.Tx, model.KindWorkunit, wu)
	if err != nil {
		return err
	}
	for _, t := range open {
		if t.Type == tasks.TypeAssignExtracts {
			if err := s.tasks.Complete(ctx.Tx, ctx.Actor, t.ID); err != nil {
				return err
			}
		}
	}
	return nil
}

// Import performs the whole import inside the caller's transaction: it
// creates the workunit and its data resources, stores or links the bytes,
// starts the import workflow and opens an assign-extracts task for the
// importing user.
func (s *Service) Import(tx *store.Tx, req Request) (Result, error) {
	if req.WorkunitName == "" {
		return Result{}, fmt.Errorf("importer: empty workunit name")
	}
	p, err := s.hub.Get(req.Provider)
	if err != nil {
		return Result{}, err
	}
	entries, err := p.List()
	if err != nil {
		return Result{}, err
	}
	selected := entries
	if len(req.Paths) > 0 {
		byPath := make(map[string]provider.FileEntry, len(entries))
		for _, e := range entries {
			byPath[e.Path] = e
		}
		selected = selected[:0]
		for _, want := range req.Paths {
			e, ok := byPath[want]
			if !ok {
				return Result{}, fmt.Errorf("importer: provider %q does not offer %q", req.Provider, want)
			}
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		return Result{}, fmt.Errorf("importer: provider %q: %w", req.Provider, ErrNothingToImport)
	}

	wu, err := s.db.CreateWorkunit(tx, req.Actor, model.Workunit{
		Name:    req.WorkunitName,
		Project: req.Project,
		Owner:   req.Owner,
		State:   model.WorkunitPending,
		Parameters: map[string]string{
			"provider": req.Provider,
			"mode":     req.Mode.String(),
		},
		Description: fmt.Sprintf("Import of %d file(s) from %s", len(selected), req.Provider),
	})
	if err != nil {
		return Result{}, err
	}

	res := Result{Workunit: wu}
	resources := make([]model.DataResource, 0, len(selected))
	for _, e := range selected {
		data, err := p.Fetch(e.Path)
		if err != nil {
			return Result{}, fmt.Errorf("importer: fetching %s: %w", e.Path, err)
		}
		var uri string
		linked := req.Mode == Link
		if linked {
			uri = storage.MakeURI(p.StoreName(), e.Path)
		} else {
			uri, err = s.mgr.WriteInternal(fmt.Sprintf("imports/wu%d/%s", wu, path.Base(e.Path)), data)
			if err != nil {
				return Result{}, err
			}
		}
		resources = append(resources, model.DataResource{
			Name:      path.Base(e.Path),
			Workunit:  wu,
			URI:       uri,
			SizeBytes: int64(len(data)),
			Checksum:  storage.Checksum(data),
			Format:    e.Format,
			Linked:    linked,
			Content:   readableContent(e.Format, data),
		})
	}
	// One batched registration for the whole file set: a single coalesced
	// event reaches audit/search, and the store's indexed overlay keeps the
	// big transaction linear in the number of files.
	res.Resources, err = s.db.BatchCreateDataResources(tx, req.Actor, resources)
	if err != nil {
		return Result{}, err
	}

	res.WorkflowInstance, err = s.wf.Start(tx, WorkflowName, req.Actor, map[string]string{
		"workunit": strconv.FormatInt(wu, 10),
	})
	if err != nil {
		return Result{}, err
	}
	_, err = s.tasks.Create(tx, tasks.Task{
		Type:          tasks.TypeAssignExtracts,
		Title:         fmt.Sprintf("Assign extracts to workunit %q", req.WorkunitName),
		Description:   fmt.Sprintf("%d imported data resource(s) await extract assignment.", len(res.Resources)),
		AssigneeLogin: req.Actor,
		Kind:          model.KindWorkunit,
		Ref:           wu,
	})
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// readableContent decides whether imported bytes should be exposed to the
// full-text index. The synthetic instrument formats are textual.
func readableContent(format string, data []byte) string {
	switch format {
	case "cel", "raw", "csv", "txt", "tsv":
		const maxIndexed = 64 << 10
		if len(data) > maxIndexed {
			data = data[:maxIndexed]
		}
		return string(data)
	default:
		return ""
	}
}

// Match is one suggested resource→extract assignment.
type Match struct {
	Resource int64
	Extract  int64
	// Score is the name similarity in [0,1]; 0 means no candidate found.
	Score float64
}

// BestMatches computes the suggested assignment between the unassigned
// resources of a workunit and the extracts of its project, greedily pairing
// highest-similarity names first (Figure 11). Each extract is suggested at
// most once.
func (s *Service) BestMatches(tx *store.Tx, workunit int64) ([]Match, error) {
	wu, err := s.db.GetWorkunit(tx, workunit)
	if err != nil {
		return nil, err
	}
	resources, err := s.db.ResourcesOfWorkunit(tx, workunit)
	if err != nil {
		return nil, err
	}
	extracts, err := s.db.ExtractsOfProject(tx, wu.Project)
	if err != nil {
		return nil, err
	}
	type pair struct {
		r, e  int
		score float64
	}
	extractNames := make([]string, len(extracts))
	for i, e := range extracts {
		extractNames[i] = normalizeName(e.Name)
	}
	var pairs []pair
	for ri, r := range resources {
		if r.Extract != 0 {
			continue
		}
		// One scorer per resource amortizes the query side of the
		// similarity computation across all candidate extracts.
		sc := vocab.NewScorer(normalizeName(r.Name))
		for ei := range extracts {
			score := sc.Score(extractNames[ei])
			if score > 0 {
				pairs = append(pairs, pair{r: ri, e: ei, score: score})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].score != pairs[j].score {
			return pairs[i].score > pairs[j].score
		}
		if resources[pairs[i].r].ID != resources[pairs[j].r].ID {
			return resources[pairs[i].r].ID < resources[pairs[j].r].ID
		}
		return extracts[pairs[i].e].ID < extracts[pairs[j].e].ID
	})
	usedR := make(map[int]bool)
	usedE := make(map[int]bool)
	var out []Match
	for _, p := range pairs {
		if usedR[p.r] || usedE[p.e] {
			continue
		}
		usedR[p.r] = true
		usedE[p.e] = true
		out = append(out, Match{
			Resource: resources[p.r].ID,
			Extract:  extracts[p.e].ID,
			Score:    p.score,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Resource < out[j].Resource })
	return out, nil
}

// normalizeName strips the extension and lowers separators so "AT-wt-1.cel"
// matches the extract "AT_wt_1".
func normalizeName(name string) string {
	base := name
	if i := strings.LastIndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	var b strings.Builder
	for _, r := range base {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			b.WriteByte(' ')
		}
	}
	return strings.Join(strings.Fields(b.String()), " ")
}

// ApplyMatches assigns the suggested extracts — the "press the save button"
// step. Matches with zero extract are skipped.
func (s *Service) ApplyMatches(tx *store.Tx, actor string, matches []Match) error {
	for _, m := range matches {
		if m.Extract == 0 {
			continue
		}
		if err := s.db.AssignExtract(tx, actor, m.Resource, m.Extract); err != nil {
			return err
		}
	}
	return nil
}

// CompleteImport fires the save action of the import workflow, which
// requires every resource to be assigned and marks the workunit ready.
func (s *Service) CompleteImport(tx *store.Tx, actor string, workflowInstance int64) error {
	return s.wf.Fire(tx, workflowInstance, "save", actor)
}
