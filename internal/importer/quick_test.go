package importer

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

// TestQuickNormalizeNameIdempotent: normalizing twice equals normalizing
// once, and the result contains only lower-case letters, digits and single
// spaces.
func TestQuickNormalizeNameIdempotent(t *testing.T) {
	f := func(name string) bool {
		once := normalizeName(name)
		// Idempotence: treat the normalized form as a name again (it has
		// no extension, so the stem-stripping is a no-op on clean input
		// unless it contains a '.', which normalization removed).
		twice := normalizeName(once)
		if once != twice {
			return false
		}
		for _, r := range once {
			if r == ' ' {
				continue
			}
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
				return false
			}
			// Cased letters must come out lower-case. (Some letters, e.g.
			// mathematical alphanumerics, are upper-case without a
			// lowercase mapping; those pass through unchanged.)
			if unicode.IsUpper(r) && unicode.ToLower(r) != r {
				return false
			}
		}
		return !strings.Contains(once, "  ")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickNormalizeSeparatorEquivalence: names differing only in separator
// characters normalize identically.
func TestQuickNormalizeSeparatorEquivalence(t *testing.T) {
	f := func(parts []string) bool {
		clean := parts[:0]
		for _, p := range parts {
			// Keep alphanumeric-only fragments to isolate the separator
			// behaviour.
			okFragment := p != ""
			for _, r := range p {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					okFragment = false
					break
				}
			}
			if okFragment {
				clean = append(clean, p)
			}
		}
		if len(clean) == 0 {
			return true
		}
		dash := normalizeName(strings.Join(clean, "-"))
		underscore := normalizeName(strings.Join(clean, "_"))
		space := normalizeName(strings.Join(clean, " "))
		return dash == underscore && underscore == space
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
