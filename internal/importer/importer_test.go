package importer

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/entity"
	"repro/internal/events"
	"repro/internal/model"
	"repro/internal/provider"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/tasks"
	"repro/internal/workflow"
)

type fixture struct {
	svc     *Service
	db      *model.DB
	s       *store.Store
	wf      *workflow.Engine
	tasks   *tasks.Engine
	mgr     *storage.Manager
	hub     *provider.Hub
	project int64
	alice   int64
}

func newFixture(t *testing.T, samples []string) *fixture {
	t.Helper()
	s := store.New()
	bus := events.NewBus()
	rg := entity.NewRegistry(s, bus)
	if err := model.RegisterSchema(rg); err != nil {
		t.Fatal(err)
	}
	db := model.NewDB(rg)
	mgr := storage.NewManager()
	hub := provider.NewHub()
	wf := workflow.NewEngine(s)
	te := tasks.New(s, bus)

	gp, gpStore := provider.NewAffymetrixGeneChip("genechip", samples)
	mgr.Mount(gpStore)
	if err := hub.Register(gp); err != nil {
		t.Fatal(err)
	}

	svc, err := New(db, mgr, hub, wf, te)
	if err != nil {
		t.Fatal(err)
	}
	fx := &fixture{svc: svc, db: db, s: s, wf: wf, tasks: te, mgr: mgr, hub: hub}
	err = s.Update(func(tx *store.Tx) error {
		var err error
		fx.alice, err = db.CreateUser(tx, "setup", model.User{Login: "alice", Active: true})
		if err != nil {
			return err
		}
		fx.project, err = db.CreateProject(tx, "setup", model.Project{Name: "p1000"})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

func (fx *fixture) importAll(t *testing.T, mode Mode) Result {
	t.Helper()
	var res Result
	err := fx.s.Update(func(tx *store.Tx) error {
		var err error
		res, err = fx.svc.Import(tx, Request{
			Provider: "genechip", Mode: mode, WorkunitName: "import-1",
			Project: fx.project, Owner: fx.alice, Actor: "alice",
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestImportCopyCreatesWorkunitAndResources(t *testing.T) {
	fx := newFixture(t, []string{"AT-wt-1", "AT-wt-2"})
	res := fx.importAll(t, Copy)
	if len(res.Resources) != 2 {
		t.Fatalf("resources = %v", res.Resources)
	}
	_ = fx.s.View(func(tx *store.Tx) error {
		wu, err := fx.db.GetWorkunit(tx, res.Workunit)
		if err != nil {
			t.Fatal(err)
		}
		if wu.State != model.WorkunitPending || wu.Parameters["mode"] != "copy" {
			t.Errorf("workunit = %+v", wu)
		}
		rs, _ := fx.db.ResourcesOfWorkunit(tx, res.Workunit)
		for _, r := range rs {
			if r.Linked {
				t.Errorf("copy import produced linked resource: %+v", r)
			}
			if !strings.HasPrefix(r.URI, "bfabric://internal/") {
				t.Errorf("uri = %q", r.URI)
			}
			if r.SizeBytes == 0 || r.Checksum == "" || r.Format != "cel" {
				t.Errorf("resource metadata = %+v", r)
			}
			// Copied bytes readable through the storage manager.
			data, err := fx.mgr.Open(r.URI)
			if err != nil || len(data) == 0 {
				t.Errorf("Open(%q): %v", r.URI, err)
			}
		}
		return nil
	})
}

func TestImportLinkKeepsOriginalLocation(t *testing.T) {
	fx := newFixture(t, []string{"AT-wt-1"})
	res := fx.importAll(t, Link)
	_ = fx.s.View(func(tx *store.Tx) error {
		rs, _ := fx.db.ResourcesOfWorkunit(tx, res.Workunit)
		if len(rs) != 1 {
			t.Fatalf("resources = %+v", rs)
		}
		r := rs[0]
		if !r.Linked || !strings.HasPrefix(r.URI, "bfabric://genechip/") {
			t.Errorf("resource = %+v", r)
		}
		// Linked bytes transparently readable too.
		data, err := fx.mgr.Open(r.URI)
		if err != nil || !strings.Contains(string(data), "sample=AT-wt-1") {
			t.Errorf("Open: %v", err)
		}
		return nil
	})
}

func TestImportSelectedPathsOnly(t *testing.T) {
	fx := newFixture(t, []string{"a", "b", "c"})
	var res Result
	err := fx.s.Update(func(tx *store.Tx) error {
		var err error
		res, err = fx.svc.Import(tx, Request{
			Provider: "genechip", Paths: []string{"runs/b.cel"},
			WorkunitName: "partial", Project: fx.project, Actor: "alice",
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Resources) != 1 {
		t.Fatalf("resources = %v", res.Resources)
	}
}

func TestImportUnknownPathFails(t *testing.T) {
	fx := newFixture(t, []string{"a"})
	err := fx.s.Update(func(tx *store.Tx) error {
		_, err := fx.svc.Import(tx, Request{
			Provider: "genechip", Paths: []string{"runs/zzz.cel"},
			WorkunitName: "bad", Project: fx.project, Actor: "alice",
		})
		return err
	})
	if err == nil {
		t.Fatal("unknown path accepted")
	}
	// Failed import leaves nothing behind.
	if fx.s.Count(model.KindWorkunit) != 0 || fx.s.Count(model.KindDataResource) != 0 {
		t.Error("failed import leaked records")
	}
}

func TestImportEmptyProviderFails(t *testing.T) {
	fx := newFixture(t, nil)
	err := fx.s.Update(func(tx *store.Tx) error {
		_, err := fx.svc.Import(tx, Request{
			Provider: "genechip", WorkunitName: "none",
			Project: fx.project, Actor: "alice",
		})
		return err
	})
	if !errors.Is(err, ErrNothingToImport) {
		t.Fatalf("got %v, want ErrNothingToImport", err)
	}
}

func TestImportValidation(t *testing.T) {
	fx := newFixture(t, []string{"a"})
	err := fx.s.Update(func(tx *store.Tx) error {
		_, err := fx.svc.Import(tx, Request{Provider: "genechip", Project: fx.project, Actor: "a"})
		return err
	})
	if err == nil {
		t.Error("empty workunit name accepted")
	}
	err = fx.s.Update(func(tx *store.Tx) error {
		_, err := fx.svc.Import(tx, Request{Provider: "nosuch", WorkunitName: "x", Project: fx.project, Actor: "a"})
		return err
	})
	if !errors.Is(err, provider.ErrUnknownProvider) {
		t.Errorf("unknown provider: %v", err)
	}
}

func TestImportStartsWorkflowAndTask(t *testing.T) {
	fx := newFixture(t, []string{"a"})
	res := fx.importAll(t, Copy)
	_ = fx.s.View(func(tx *store.Tx) error {
		inst, err := fx.wf.Get(tx, res.WorkflowInstance)
		if err != nil {
			t.Fatal(err)
		}
		if inst.State != workflow.StateActive || inst.Definition != WorkflowName {
			t.Errorf("instance = %+v", inst)
		}
		if inst.Vars["workunit"] != fmt.Sprint(res.Workunit) {
			t.Errorf("vars = %v", inst.Vars)
		}
		open, _ := fx.tasks.ListOpen(tx, "alice")
		if len(open) != 1 || open[0].Type != tasks.TypeAssignExtracts {
			t.Errorf("tasks = %+v", open)
		}
		// Save is not yet available: no extracts assigned.
		acts, _ := fx.wf.AvailableActions(tx, res.WorkflowInstance, "alice")
		if len(acts) != 0 {
			t.Errorf("actions = %v", acts)
		}
		return nil
	})
}

func TestBestMatchesPairByName(t *testing.T) {
	fx := newFixture(t, []string{"AT-wt-1", "AT-mut-1"})
	res := fx.importAll(t, Copy)
	// Create matching extracts (names equal to file stems, different separators).
	var eWt, eMut int64
	_ = fx.s.Update(func(tx *store.Tx) error {
		sid, _ := fx.db.CreateSample(tx, "alice", model.Sample{Name: "AT", Project: fx.project})
		eWt, _ = fx.db.CreateExtract(tx, "alice", model.Extract{Name: "AT_wt_1", Sample: sid})
		eMut, _ = fx.db.CreateExtract(tx, "alice", model.Extract{Name: "AT_mut_1", Sample: sid})
		return nil
	})
	var matches []Match
	_ = fx.s.View(func(tx *store.Tx) error {
		var err error
		matches, err = fx.svc.BestMatches(tx, res.Workunit)
		if err != nil {
			t.Fatal(err)
		}
		return nil
	})
	if len(matches) != 2 {
		t.Fatalf("matches = %+v", matches)
	}
	byResource := map[int64]int64{}
	for _, m := range matches {
		byResource[m.Resource] = m.Extract
		if m.Score < 0.9 {
			t.Errorf("low score match: %+v", m)
		}
	}
	_ = fx.s.View(func(tx *store.Tx) error {
		rs, _ := fx.db.ResourcesOfWorkunit(tx, res.Workunit)
		for _, r := range rs {
			want := eWt
			if strings.Contains(r.Name, "mut") {
				want = eMut
			}
			if byResource[r.ID] != want {
				t.Errorf("resource %s matched extract %d, want %d", r.Name, byResource[r.ID], want)
			}
		}
		return nil
	})
}

func TestBestMatchesGreedyUniqueAssignment(t *testing.T) {
	// Two resources, one extract: only one match suggested.
	fx := newFixture(t, []string{"s-1", "s-2"})
	res := fx.importAll(t, Copy)
	_ = fx.s.Update(func(tx *store.Tx) error {
		sid, _ := fx.db.CreateSample(tx, "alice", model.Sample{Name: "S", Project: fx.project})
		_, err := fx.db.CreateExtract(tx, "alice", model.Extract{Name: "s-1", Sample: sid})
		return err
	})
	_ = fx.s.View(func(tx *store.Tx) error {
		matches, err := fx.svc.BestMatches(tx, res.Workunit)
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) != 1 {
			t.Fatalf("matches = %+v", matches)
		}
		return nil
	})
}

func TestBestMatchesSkipAssigned(t *testing.T) {
	fx := newFixture(t, []string{"x-1"})
	res := fx.importAll(t, Copy)
	_ = fx.s.Update(func(tx *store.Tx) error {
		sid, _ := fx.db.CreateSample(tx, "alice", model.Sample{Name: "X", Project: fx.project})
		eid, _ := fx.db.CreateExtract(tx, "alice", model.Extract{Name: "x-1", Sample: sid})
		return fx.db.AssignExtract(tx, "alice", res.Resources[0], eid)
	})
	_ = fx.s.View(func(tx *store.Tx) error {
		matches, _ := fx.svc.BestMatches(tx, res.Workunit)
		if len(matches) != 0 {
			t.Errorf("already-assigned resource matched again: %+v", matches)
		}
		return nil
	})
}

func TestFullImportFlowToReady(t *testing.T) {
	// The complete Figure 9-11 flow: import → best match → apply → save.
	fx := newFixture(t, []string{"AT-wt-1", "AT-wt-2"})
	res := fx.importAll(t, Copy)
	_ = fx.s.Update(func(tx *store.Tx) error {
		sid, _ := fx.db.CreateSample(tx, "alice", model.Sample{Name: "AT", Project: fx.project})
		_, _ = fx.db.CreateExtract(tx, "alice", model.Extract{Name: "AT-wt-1", Sample: sid})
		_, _ = fx.db.CreateExtract(tx, "alice", model.Extract{Name: "AT-wt-2", Sample: sid})
		return nil
	})
	err := fx.s.Update(func(tx *store.Tx) error {
		matches, err := fx.svc.BestMatches(tx, res.Workunit)
		if err != nil {
			return err
		}
		if err := fx.svc.ApplyMatches(tx, "alice", matches); err != nil {
			return err
		}
		return fx.svc.CompleteImport(tx, "alice", res.WorkflowInstance)
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = fx.s.View(func(tx *store.Tx) error {
		wu, _ := fx.db.GetWorkunit(tx, res.Workunit)
		if wu.State != model.WorkunitReady {
			t.Errorf("workunit state = %q", wu.State)
		}
		inst, _ := fx.wf.Get(tx, res.WorkflowInstance)
		if inst.State != workflow.StateCompleted {
			t.Errorf("workflow state = %q", inst.State)
		}
		// The assign-extracts task closed automatically.
		open, _ := fx.tasks.ListOpen(tx, "alice")
		if len(open) != 0 {
			t.Errorf("open tasks = %+v", open)
		}
		return nil
	})
}

func TestCompleteImportBlockedUntilAssigned(t *testing.T) {
	fx := newFixture(t, []string{"a"})
	res := fx.importAll(t, Copy)
	err := fx.s.Update(func(tx *store.Tx) error {
		return fx.svc.CompleteImport(tx, "alice", res.WorkflowInstance)
	})
	if !errors.Is(err, workflow.ErrConditionFalse) {
		t.Fatalf("got %v, want ErrConditionFalse", err)
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"AT-wt-1.cel":    "at wt 1",
		"AT_wt_1":        "at wt 1",
		"Run 42.RAW":     "run 42",
		"noext":          "noext",
		"weird..name.":   "weird name",
		"ÜmläutSample.x": "ümläutsample",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestModeString(t *testing.T) {
	if Copy.String() != "copy" || Link.String() != "link" {
		t.Error("mode names wrong")
	}
}

func TestReadableContent(t *testing.T) {
	if readableContent("cel", []byte("text")) != "text" {
		t.Error("cel content not indexed")
	}
	if readableContent("bin", []byte{0, 1, 2}) != "" {
		t.Error("binary content indexed")
	}
	big := make([]byte, 100<<10)
	for i := range big {
		big[i] = 'a'
	}
	if len(readableContent("txt", big)) != 64<<10 {
		t.Error("content not truncated")
	}
}
