// Package apps implements B-Fabric's on-the-fly application coupling
// (Figures 12–16): connectors abstract how a class of applications is
// executed (the original system shipped e.g. an Rserve connector for R
// scripts), applications are registered at run time with a small input
// interface, and experiments invoke registered applications on selections
// of data resources, producing result workunits whose files are also
// packaged as a zip for download.
package apps

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// InputFile is one resolved experiment input handed to a connector.
type InputFile struct {
	// Name is the data resource name (file name).
	Name string
	// Data is the file content.
	Data []byte
}

// OutputFile is one file produced by an application run.
type OutputFile struct {
	// Name is the output file name.
	Name string
	// Format tags the file format ("csv", "txt", ...).
	Format string
	// Data is the file content.
	Data []byte
}

// RunContext carries everything a connector needs for one invocation.
type RunContext struct {
	// Program identifies the registered program (e.g. an R script name).
	Program string
	// Params are the experiment-specific parameters (e.g. reference group).
	Params map[string]string
	// Inputs are the resolved input files.
	Inputs []InputFile
	// Attributes are the experiment definition's free attributes.
	Attributes map[string]string
}

// Connector executes programs of one kind. Implementations must be safe
// for concurrent use.
type Connector interface {
	// Name is the connector identifier referenced by applications.
	Name() string
	// Run executes the program and returns its output files.
	Run(ctx RunContext) ([]OutputFile, error)
}

// Sentinel errors.
var (
	// ErrUnknownConnector is returned for unregistered connector names.
	ErrUnknownConnector = errors.New("unknown connector")
	// ErrUnknownProgram is returned when a connector has no such program.
	ErrUnknownProgram = errors.New("unknown program")
)

// Program is a callable unit registered with a simulated connector. In the
// original system this would be an R script executed by Rserve; here it is
// a Go function exercising the same interface.
type Program func(ctx RunContext) ([]OutputFile, error)

// SimConnector is a program-registry connector used to simulate Rserve and
// shell execution backends.
type SimConnector struct {
	name     string
	mu       sync.RWMutex
	programs map[string]Program
}

// NewSimConnector creates an empty simulated connector.
func NewSimConnector(name string) *SimConnector {
	return &SimConnector{name: name, programs: make(map[string]Program)}
}

// Name implements Connector.
func (c *SimConnector) Name() string { return c.name }

// RegisterProgram adds a program under the given identifier.
func (c *SimConnector) RegisterProgram(id string, p Program) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.programs[id] = p
}

// Programs returns the sorted registered program identifiers.
func (c *SimConnector) Programs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.programs))
	for id := range c.programs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run implements Connector.
func (c *SimConnector) Run(ctx RunContext) ([]OutputFile, error) {
	c.mu.RLock()
	p, ok := c.programs[ctx.Program]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("apps: connector %s: program %q: %w", c.name, ctx.Program, ErrUnknownProgram)
	}
	return p(ctx)
}

// Registry holds the available connectors.
type Registry struct {
	mu         sync.RWMutex
	connectors map[string]Connector
}

// NewRegistry creates an empty connector registry.
func NewRegistry() *Registry {
	return &Registry{connectors: make(map[string]Connector)}
}

// Register adds a connector; duplicates are an error.
func (r *Registry) Register(c Connector) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.connectors[c.Name()]; ok {
		return fmt.Errorf("apps: connector %q already registered", c.Name())
	}
	r.connectors[c.Name()] = c
	return nil
}

// Get returns the named connector.
func (r *Registry) Get(name string) (Connector, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.connectors[name]
	if !ok {
		return nil, fmt.Errorf("apps: %q: %w", name, ErrUnknownConnector)
	}
	return c, nil
}

// Names returns the sorted connector names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.connectors))
	for n := range r.connectors {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
