package apps

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements the analysis programs shipped with the simulated
// Rserve connector. The headline one is the "two group analysis" shown in
// Figure 14 of the paper, run against the synthetic CEL files produced by
// the simulated Affymetrix instrument.

// NewRserveConnector builds the simulated Rserve connector with the stock
// analysis programs registered:
//
//	twogroup.R — two-group differential expression analysis
//	qc.R       — per-array quality control report
//	msqc.R     — mass-spec acquisition QC (peak counts, TIC)
func NewRserveConnector() *SimConnector {
	c := NewSimConnector("rserve")
	c.RegisterProgram("twogroup.R", TwoGroupAnalysis)
	c.RegisterProgram("qc.R", QCReport)
	c.RegisterProgram("msqc.R", MSQCReport)
	return c
}

// parseCEL extracts the probe intensity vector from a synthetic CEL file.
func parseCEL(data []byte) (sample string, probes map[string]float64, err error) {
	probes = make(map[string]float64)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "sample=") {
			sample = strings.TrimPrefix(line, "sample=")
			continue
		}
		if !strings.HasPrefix(line, "probe_") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 2 {
			return "", nil, fmt.Errorf("apps: malformed probe line %q", line)
		}
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return "", nil, fmt.Errorf("apps: bad intensity in %q: %w", line, err)
		}
		probes[parts[0]] = v
	}
	if len(probes) == 0 {
		return "", nil, fmt.Errorf("apps: no probes found in CEL input")
	}
	return sample, probes, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func variance(xs []float64, m float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// TwoGroupAnalysis implements the paper's demonstration application: it
// splits the input arrays into a reference group and a treatment group
// using the "reference_group" parameter (inputs whose file name contains
// the value form the reference group), computes per-probe group means,
// difference and Welch t-statistic, and emits results.csv plus a
// human-readable report.txt of the top differential probes.
func TwoGroupAnalysis(ctx RunContext) ([]OutputFile, error) {
	ref := ctx.Params["reference_group"]
	if ref == "" {
		return nil, fmt.Errorf("apps: twogroup.R requires parameter reference_group")
	}
	if len(ctx.Inputs) < 2 {
		return nil, fmt.Errorf("apps: twogroup.R needs at least 2 inputs, got %d", len(ctx.Inputs))
	}
	type array struct {
		name   string
		probes map[string]float64
	}
	var refGroup, trtGroup []array
	for _, in := range ctx.Inputs {
		_, probes, err := parseCEL(in.Data)
		if err != nil {
			return nil, fmt.Errorf("apps: input %s: %w", in.Name, err)
		}
		a := array{name: in.Name, probes: probes}
		if strings.Contains(strings.ToLower(in.Name), strings.ToLower(ref)) {
			refGroup = append(refGroup, a)
		} else {
			trtGroup = append(trtGroup, a)
		}
	}
	if len(refGroup) == 0 || len(trtGroup) == 0 {
		return nil, fmt.Errorf("apps: reference_group %q splits inputs %d/%d; both groups need members",
			ref, len(refGroup), len(trtGroup))
	}
	// Probe universe from the first array; all synthetic arrays share it.
	probeNames := make([]string, 0, len(refGroup[0].probes))
	for p := range refGroup[0].probes {
		probeNames = append(probeNames, p)
	}
	sort.Strings(probeNames)

	type result struct {
		probe          string
		meanRef, meanT float64
		diff, tstat    float64
	}
	results := make([]result, 0, len(probeNames))
	for _, p := range probeNames {
		var a, b []float64
		for _, arr := range refGroup {
			if v, ok := arr.probes[p]; ok {
				a = append(a, v)
			}
		}
		for _, arr := range trtGroup {
			if v, ok := arr.probes[p]; ok {
				b = append(b, v)
			}
		}
		ma, mb := mean(a), mean(b)
		va, vb := variance(a, ma), variance(b, mb)
		t := 0.0
		denom := math.Sqrt(va/float64(len(a)) + vb/float64(len(b)))
		if denom > 0 {
			t = (mb - ma) / denom
		}
		results = append(results, result{probe: p, meanRef: ma, meanT: mb, diff: mb - ma, tstat: t})
	}

	var csv strings.Builder
	csv.WriteString("probe,mean_reference,mean_treatment,difference,t_statistic\n")
	for _, r := range results {
		fmt.Fprintf(&csv, "%s,%.4f,%.4f,%.4f,%.4f\n", r.probe, r.meanRef, r.meanT, r.diff, r.tstat)
	}

	byEffect := append([]result(nil), results...)
	sort.Slice(byEffect, func(i, j int) bool {
		return math.Abs(byEffect[i].diff) > math.Abs(byEffect[j].diff)
	})
	topN := 10
	if topN > len(byEffect) {
		topN = len(byEffect)
	}
	var rep strings.Builder
	rep.WriteString("Two group analysis report\n")
	rep.WriteString("==========================\n")
	fmt.Fprintf(&rep, "reference group: %q (%d arrays)\n", ref, len(refGroup))
	fmt.Fprintf(&rep, "treatment group: %d arrays\n", len(trtGroup))
	fmt.Fprintf(&rep, "probes analysed: %d\n\n", len(results))
	rep.WriteString("Top differential probes (by |difference|):\n")
	for i := 0; i < topN; i++ {
		r := byEffect[i]
		fmt.Fprintf(&rep, "%2d. %-12s diff=%+.3f t=%+.2f\n", i+1, r.probe, r.diff, r.tstat)
	}
	for k, v := range ctx.Attributes {
		fmt.Fprintf(&rep, "attribute %s=%s\n", k, v)
	}

	return []OutputFile{
		{Name: "results.csv", Format: "csv", Data: []byte(csv.String())},
		{Name: "report.txt", Format: "txt", Data: []byte(rep.String())},
	}, nil
}

// QCReport produces a per-array quality control summary: probe count, mean
// and standard deviation of the intensities.
func QCReport(ctx RunContext) ([]OutputFile, error) {
	if len(ctx.Inputs) == 0 {
		return nil, fmt.Errorf("apps: qc.R needs at least one input")
	}
	var b strings.Builder
	b.WriteString("array,probes,mean_intensity,sd_intensity\n")
	for _, in := range ctx.Inputs {
		_, probes, err := parseCEL(in.Data)
		if err != nil {
			return nil, fmt.Errorf("apps: input %s: %w", in.Name, err)
		}
		vals := make([]float64, 0, len(probes))
		for _, v := range probes {
			vals = append(vals, v)
		}
		m := mean(vals)
		sd := math.Sqrt(variance(vals, m))
		fmt.Fprintf(&b, "%s,%d,%.4f,%.4f\n", in.Name, len(vals), m, sd)
	}
	return []OutputFile{{Name: "qc.csv", Format: "csv", Data: []byte(b.String())}}, nil
}

// MSQCReport summarises synthetic mass-spec RAW acquisitions: peak count
// and total ion current per file.
func MSQCReport(ctx RunContext) ([]OutputFile, error) {
	if len(ctx.Inputs) == 0 {
		return nil, fmt.Errorf("apps: msqc.R needs at least one input")
	}
	var b strings.Builder
	b.WriteString("acquisition,peaks,total_ion_current\n")
	for _, in := range ctx.Inputs {
		peaks := 0
		tic := 0.0
		inPeaks := false
		for _, line := range strings.Split(string(in.Data), "\n") {
			line = strings.TrimSpace(line)
			if line == "[PEAKS]" {
				inPeaks = true
				continue
			}
			if !inPeaks || line == "" {
				continue
			}
			parts := strings.Split(line, "\t")
			if len(parts) != 2 {
				continue
			}
			v, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				continue
			}
			peaks++
			tic += v
		}
		if peaks == 0 {
			return nil, fmt.Errorf("apps: input %s has no peaks", in.Name)
		}
		fmt.Fprintf(&b, "%s,%d,%.1f\n", in.Name, peaks, tic)
	}
	return []OutputFile{{Name: "msqc.csv", Format: "csv", Data: []byte(b.String())}}, nil
}
