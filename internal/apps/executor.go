package apps

import (
	"archive/zip"
	"bytes"
	"errors"
	"fmt"
	"strconv"

	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/tasks"
	"repro/internal/workflow"
)

// WorkflowName is the registered experiment-execution workflow definition
// (the "generate an R report" single-step workflow of Figure 15).
const WorkflowName = "run-experiment"

const stepGenerate = 1

// ErrInactiveApplication is returned when invoking a deactivated
// application.
var ErrInactiveApplication = errors.New("application is not active")

// RunRequest describes one experiment invocation (Figure 14).
type RunRequest struct {
	// Experiment is the experiment definition to run.
	Experiment int64
	// Application is the registered application to invoke.
	Application int64
	// WorkunitName names the result workunit.
	WorkunitName string
	// Params are the run parameters (e.g. reference group).
	Params map[string]string
	// Actor is the invoking user's login.
	Actor string
	// Owner is the invoking user's id (optional).
	Owner int64
}

// RunResult reports an experiment run.
type RunResult struct {
	// Workunit is the result container (Figures 15–16).
	Workunit int64
	// WorkflowInstance is the execution workflow instance.
	WorkflowInstance int64
	// Resources are the produced data resource ids (outputs + zip), empty
	// on failure.
	Resources []int64
	// Failed reports a connector failure; the workunit is in the failed
	// state and an error-review task exists for the administrators.
	Failed bool
	// Error is the failure message when Failed.
	Error string
}

// Executor runs experiments through registered applications.
type Executor struct {
	db       *model.DB
	mgr      *storage.Manager
	registry *Registry
	wf       *workflow.Engine
	tasks    *tasks.Engine

	// lastOutputs carries the resource ids produced by the workflow
	// post-function back to RunExperiment within a single call. Guarded by
	// the store's writer mutex (the whole run happens inside one Update
	// transaction, and Update transactions serialize).
	lastOutputs []int64
}

// NewExecutor wires the executor and registers the run-experiment workflow.
func NewExecutor(db *model.DB, mgr *storage.Manager, registry *Registry, wf *workflow.Engine, te *tasks.Engine) (*Executor, error) {
	ex := &Executor{db: db, mgr: mgr, registry: registry, wf: wf, tasks: te}
	wf.RegisterFunction("appsExecute", ex.fnExecute)
	def := workflow.Definition{
		Name:    WorkflowName,
		Initial: stepGenerate,
		Steps: []workflow.Step{
			{
				ID:   stepGenerate,
				Name: "generate report",
				Actions: []workflow.Action{
					{
						Name:          "run",
						Result:        workflow.Finish,
						Auto:          true,
						PostFunctions: []string{"appsExecute"},
					},
				},
			},
		},
	}
	if err := wf.RegisterDefinition(def); err != nil {
		return nil, err
	}
	return ex, nil
}

// RunExperiment performs the full Figure 14–16 flow inside the caller's
// transaction: a result workunit is created in the processing state, the
// experiment's input resources are recorded as input-marked members of the
// workunit, and the execution workflow runs the application through its
// connector. On success the outputs (plus a results.zip) become data
// resources and the workunit turns ready; on connector failure the workunit
// turns failed and an error-review task is opened for the administrators —
// the run failure is recorded, not rolled back.
func (ex *Executor) RunExperiment(tx *store.Tx, req RunRequest) (RunResult, error) {
	exp, err := ex.db.GetExperiment(tx, req.Experiment)
	if err != nil {
		return RunResult{}, err
	}
	app, err := ex.db.GetApplication(tx, req.Application)
	if err != nil {
		return RunResult{}, err
	}
	if !app.Active {
		return RunResult{}, fmt.Errorf("apps: %s: %w", app.Name, ErrInactiveApplication)
	}
	if req.WorkunitName == "" {
		return RunResult{}, fmt.Errorf("apps: empty result workunit name")
	}
	if _, err := ex.registry.Get(app.Connector); err != nil {
		return RunResult{}, err
	}

	wu, err := ex.db.CreateWorkunit(tx, req.Actor, model.Workunit{
		Name:        req.WorkunitName,
		Project:     exp.Project,
		Owner:       req.Owner,
		Application: app.ID,
		State:       model.WorkunitProcessing,
		Parameters:  req.Params,
		Description: fmt.Sprintf("Result of application %q on experiment %q", app.Name, exp.Name),
	})
	if err != nil {
		return RunResult{}, err
	}

	// Mark the experiment's inputs as input resources of the result
	// workunit ("some of these data resources are marked as input
	// resources meaning that they were the inputs of the processing step").
	for _, rid := range exp.Resources {
		in, err := ex.db.GetDataResource(tx, rid)
		if err != nil {
			return RunResult{}, err
		}
		if _, err := ex.db.CreateDataResource(tx, req.Actor, model.DataResource{
			Name:      in.Name,
			Workunit:  wu,
			Extract:   in.Extract,
			URI:       in.URI,
			Format:    in.Format,
			IsInput:   true,
			Linked:    true,
			SizeBytes: in.SizeBytes,
			Checksum:  in.Checksum,
		}); err != nil {
			return RunResult{}, err
		}
	}

	ex.lastOutputs = nil
	wfID, err := ex.wf.Start(tx, WorkflowName, req.Actor, map[string]string{
		"experiment":  strconv.FormatInt(req.Experiment, 10),
		"application": strconv.FormatInt(req.Application, 10),
		"workunit":    strconv.FormatInt(wu, 10),
	})
	res := RunResult{Workunit: wu, WorkflowInstance: wfID}
	if err != nil {
		// Connector (or plumbing) failure: record it rather than roll back.
		if stateErr := ex.db.SetWorkunitState(tx, req.Actor, wu, model.WorkunitFailed); stateErr != nil {
			return res, stateErr
		}
		if _, taskErr := ex.tasks.Create(tx, tasks.Task{
			Type:         tasks.TypeReviewError,
			Title:        fmt.Sprintf("Experiment run failed: %s", req.WorkunitName),
			Description:  err.Error(),
			AssigneeRole: model.RoleAdmin,
			Kind:         model.KindWorkunit,
			Ref:          wu,
		}); taskErr != nil {
			return res, taskErr
		}
		res.Failed = true
		res.Error = err.Error()
		return res, nil
	}
	res.Resources = ex.lastOutputs
	return res, nil
}

// fnExecute is the workflow post-function doing the actual work.
func (ex *Executor) fnExecute(ctx *workflow.Context) error {
	expID, err := strconv.ParseInt(ctx.Vars["experiment"], 10, 64)
	if err != nil {
		return fmt.Errorf("apps: workflow %d: bad experiment var: %w", ctx.InstanceID, err)
	}
	appID, err := strconv.ParseInt(ctx.Vars["application"], 10, 64)
	if err != nil {
		return fmt.Errorf("apps: workflow %d: bad application var: %w", ctx.InstanceID, err)
	}
	wuID, err := strconv.ParseInt(ctx.Vars["workunit"], 10, 64)
	if err != nil {
		return fmt.Errorf("apps: workflow %d: bad workunit var: %w", ctx.InstanceID, err)
	}
	exp, err := ex.db.GetExperiment(ctx.Tx, expID)
	if err != nil {
		return err
	}
	app, err := ex.db.GetApplication(ctx.Tx, appID)
	if err != nil {
		return err
	}
	conn, err := ex.registry.Get(app.Connector)
	if err != nil {
		return err
	}
	wu, err := ex.db.GetWorkunit(ctx.Tx, wuID)
	if err != nil {
		return err
	}

	inputs := make([]InputFile, 0, len(exp.Resources))
	for _, rid := range exp.Resources {
		r, err := ex.db.GetDataResource(ctx.Tx, rid)
		if err != nil {
			return err
		}
		data, err := ex.mgr.Open(r.URI)
		if err != nil {
			return fmt.Errorf("apps: reading input %s: %w", r.Name, err)
		}
		inputs = append(inputs, InputFile{Name: r.Name, Data: data})
	}

	outputs, err := conn.Run(RunContext{
		Program:    app.Program,
		Params:     wu.Parameters,
		Inputs:     inputs,
		Attributes: exp.Attributes,
	})
	if err != nil {
		return fmt.Errorf("apps: running %s via %s: %w", app.Name, app.Connector, err)
	}

	var produced []int64
	for _, out := range outputs {
		uri, err := ex.mgr.WriteInternal(fmt.Sprintf("results/wu%d/%s", wuID, out.Name), out.Data)
		if err != nil {
			return err
		}
		rid, err := ex.db.CreateDataResource(ctx.Tx, ctx.Actor, model.DataResource{
			Name:      out.Name,
			Workunit:  wuID,
			URI:       uri,
			SizeBytes: int64(len(out.Data)),
			Checksum:  storage.Checksum(out.Data),
			Format:    out.Format,
			Content:   string(out.Data),
		})
		if err != nil {
			return err
		}
		produced = append(produced, rid)
	}

	// Package the results as a zip so they "can easily be transferred to
	// another medium" (Figure 16).
	zipData, err := ZipOutputs(outputs)
	if err != nil {
		return err
	}
	zipURI, err := ex.mgr.WriteInternal(fmt.Sprintf("results/wu%d/results.zip", wuID), zipData)
	if err != nil {
		return err
	}
	zid, err := ex.db.CreateDataResource(ctx.Tx, ctx.Actor, model.DataResource{
		Name:      "results.zip",
		Workunit:  wuID,
		URI:       zipURI,
		SizeBytes: int64(len(zipData)),
		Checksum:  storage.Checksum(zipData),
		Format:    "zip",
	})
	if err != nil {
		return err
	}
	produced = append(produced, zid)

	if err := ex.db.SetWorkunitState(ctx.Tx, ctx.Actor, wuID, model.WorkunitReady); err != nil {
		return err
	}
	ex.lastOutputs = produced
	return nil
}

// ZipOutputs packages output files into a single zip archive, in order.
func ZipOutputs(outputs []OutputFile) ([]byte, error) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for _, out := range outputs {
		w, err := zw.Create(out.Name)
		if err != nil {
			return nil, err
		}
		if _, err := w.Write(out.Data); err != nil {
			return nil, err
		}
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ReadZip lists the file names and sizes inside a zip produced by
// ZipOutputs; the portal uses it to render download listings.
func ReadZip(data []byte) (map[string]int64, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64, len(zr.File))
	for _, f := range zr.File {
		out[f.Name] = int64(f.UncompressedSize64)
	}
	return out, nil
}
