package apps

import (
	"strings"
	"testing"

	"repro/internal/storage"
)

func TestShellConnectorPrograms(t *testing.T) {
	c := NewShellConnector()
	if c.Name() != "shell" {
		t.Error("name wrong")
	}
	ps := c.Programs()
	if len(ps) != 3 {
		t.Errorf("programs = %v", ps)
	}
}

func TestChecksumManifest(t *testing.T) {
	outs, err := ChecksumManifest(RunContext{Inputs: []InputFile{
		{Name: "b.txt", Data: []byte("bravo")},
		{Name: "a.txt", Data: []byte("alpha")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(outs[0].Data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	// Sorted by name, correct checksums.
	if !strings.HasSuffix(lines[0], "  a.txt") || !strings.HasSuffix(lines[1], "  b.txt") {
		t.Errorf("order = %v", lines)
	}
	if !strings.HasPrefix(lines[0], storage.Checksum([]byte("alpha"))) {
		t.Errorf("checksum wrong: %s", lines[0])
	}
	if _, err := ChecksumManifest(RunContext{}); err == nil {
		t.Error("empty input accepted")
	}
}

func TestConcatInputs(t *testing.T) {
	outs, err := ConcatInputs(RunContext{Inputs: []InputFile{
		{Name: "one", Data: []byte("first\n")},
		{Name: "two", Data: []byte("second")}, // missing trailing newline
	}})
	if err != nil {
		t.Fatal(err)
	}
	got := string(outs[0].Data)
	want := "==> one <==\nfirst\n==> two <==\nsecond\n"
	if got != want {
		t.Errorf("concat = %q, want %q", got, want)
	}
	if _, err := ConcatInputs(RunContext{}); err == nil {
		t.Error("empty input accepted")
	}
}

func TestLineCounts(t *testing.T) {
	outs, err := LineCounts(RunContext{Inputs: []InputFile{
		{Name: "f", Data: []byte("a\nb\nc\n")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(outs[0].Data), "3 f") {
		t.Errorf("linecounts = %q", outs[0].Data)
	}
	if _, err := LineCounts(RunContext{}); err == nil {
		t.Error("empty input accepted")
	}
}
