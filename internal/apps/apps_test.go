package apps

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/entity"
	"repro/internal/events"
	"repro/internal/importer"
	"repro/internal/model"
	"repro/internal/provider"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/tasks"
	"repro/internal/workflow"
)

func TestSimConnectorProgramRegistry(t *testing.T) {
	c := NewSimConnector("sim")
	if c.Name() != "sim" {
		t.Error("name wrong")
	}
	c.RegisterProgram("b.R", func(RunContext) ([]OutputFile, error) { return nil, nil })
	c.RegisterProgram("a.R", func(RunContext) ([]OutputFile, error) { return nil, nil })
	ps := c.Programs()
	if len(ps) != 2 || ps[0] != "a.R" {
		t.Errorf("Programs = %v", ps)
	}
	_, err := c.Run(RunContext{Program: "missing.R"})
	if !errors.Is(err, ErrUnknownProgram) {
		t.Errorf("missing program: %v", err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(NewSimConnector("rserve")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(NewSimConnector("rserve")); err == nil {
		t.Error("duplicate connector accepted")
	}
	if _, err := r.Get("rserve"); err != nil {
		t.Error(err)
	}
	if _, err := r.Get("nope"); !errors.Is(err, ErrUnknownConnector) {
		t.Errorf("missing connector: %v", err)
	}
	if names := r.Names(); len(names) != 1 || names[0] != "rserve" {
		t.Errorf("Names = %v", names)
	}
}

func celInput(sample string) InputFile {
	return InputFile{Name: sample + ".cel", Data: provider.CELContent(sample)}
}

func TestTwoGroupAnalysisFindsSignal(t *testing.T) {
	// Treated samples have probes 0-9 shifted +3 by construction; the
	// analysis must rank those probes on top.
	ctx := RunContext{
		Program: "twogroup.R",
		Params:  map[string]string{"reference_group": "control"},
		Inputs: []InputFile{
			celInput("s1-control"), celInput("s2-control"), celInput("s3-control"),
			celInput("s1-treated"), celInput("s2-treated"), celInput("s3-treated"),
		},
		Attributes: map[string]string{"species": "A. thaliana"},
	}
	outs, err := TwoGroupAnalysis(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("outputs = %d", len(outs))
	}
	var csv, report string
	for _, o := range outs {
		switch o.Name {
		case "results.csv":
			csv = string(o.Data)
		case "report.txt":
			report = string(o.Data)
		}
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != provider.GeneCount+1 {
		t.Errorf("csv lines = %d", len(lines))
	}
	// The top differential probes must be among probe_0..probe_9.
	topSection := false
	topHits := 0
	for _, line := range strings.Split(report, "\n") {
		if strings.HasPrefix(line, "Top differential probes") {
			topSection = true
			continue
		}
		if !topSection || !strings.Contains(line, "probe_") {
			continue
		}
		for g := 0; g < 10; g++ {
			if strings.Contains(line, fmt.Sprintf("probe_%d ", g)) {
				topHits++
				break
			}
		}
	}
	if topHits < 8 {
		t.Errorf("only %d/10 top probes are true positives:\n%s", topHits, report)
	}
	if !strings.Contains(report, "attribute species=A. thaliana") {
		t.Error("experiment attributes missing from report")
	}
}

func TestTwoGroupAnalysisValidation(t *testing.T) {
	if _, err := TwoGroupAnalysis(RunContext{Inputs: []InputFile{celInput("a"), celInput("b")}}); err == nil {
		t.Error("missing reference_group accepted")
	}
	if _, err := TwoGroupAnalysis(RunContext{
		Params: map[string]string{"reference_group": "x"},
		Inputs: []InputFile{celInput("a")},
	}); err == nil {
		t.Error("single input accepted")
	}
	// All inputs in one group.
	if _, err := TwoGroupAnalysis(RunContext{
		Params: map[string]string{"reference_group": "ctrl"},
		Inputs: []InputFile{celInput("a"), celInput("b")},
	}); err == nil {
		t.Error("degenerate grouping accepted")
	}
	// Garbage input.
	if _, err := TwoGroupAnalysis(RunContext{
		Params: map[string]string{"reference_group": "ctrl"},
		Inputs: []InputFile{{Name: "ctrl.cel", Data: []byte("junk")}, celInput("b")},
	}); err == nil {
		t.Error("garbage input accepted")
	}
}

func TestQCReport(t *testing.T) {
	outs, err := QCReport(RunContext{Inputs: []InputFile{celInput("x"), celInput("y")}})
	if err != nil {
		t.Fatal(err)
	}
	csv := string(outs[0].Data)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Errorf("qc lines = %v", lines)
	}
	if _, err := QCReport(RunContext{}); err == nil {
		t.Error("empty input accepted")
	}
}

func TestMSQCReport(t *testing.T) {
	in := InputFile{Name: "m1.raw", Data: provider.RAWContent("m1", 25)}
	outs, err := MSQCReport(RunContext{Inputs: []InputFile{in}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(outs[0].Data), "m1.raw,25,") {
		t.Errorf("msqc = %s", outs[0].Data)
	}
	if _, err := MSQCReport(RunContext{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := MSQCReport(RunContext{Inputs: []InputFile{{Name: "bad.raw", Data: []byte("no peaks")}}}); err == nil {
		t.Error("peakless input accepted")
	}
}

func TestZipRoundTrip(t *testing.T) {
	outs := []OutputFile{
		{Name: "a.txt", Data: []byte("alpha")},
		{Name: "b.csv", Data: []byte("1,2,3")},
	}
	data, err := ZipOutputs(outs)
	if err != nil {
		t.Fatal(err)
	}
	names, err := ReadZip(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names["a.txt"] != 5 || names["b.csv"] != 5 {
		t.Errorf("zip contents = %v", names)
	}
	if _, err := ReadZip([]byte("not a zip")); err == nil {
		t.Error("garbage zip accepted")
	}
}

// --- end-to-end executor fixture ------------------------------------------

type fixture struct {
	s         *store.Store
	db        *model.DB
	mgr       *storage.Manager
	wf        *workflow.Engine
	te        *tasks.Engine
	imp       *importer.Service
	ex        *Executor
	registry  *Registry
	project   int64
	appID     int64
	expID     int64
	importRes importer.Result
}

// newFixture builds the full Arabidopsis scenario: import 4 arrays
// (2 control, 2 treated), assign extracts, register the two-group app and
// an experiment over all imported resources.
func newFixture(t *testing.T) *fixture {
	t.Helper()
	s := store.New()
	bus := events.NewBus()
	rg := entity.NewRegistry(s, bus)
	if err := model.RegisterSchema(rg); err != nil {
		t.Fatal(err)
	}
	db := model.NewDB(rg)
	mgr := storage.NewManager()
	hub := provider.NewHub()
	wf := workflow.NewEngine(s)
	te := tasks.New(s, bus)
	samples := []string{"AT-1-control", "AT-2-control", "AT-1-treated", "AT-2-treated"}
	gp, gpStore := provider.NewAffymetrixGeneChip("genechip", samples)
	mgr.Mount(gpStore)
	if err := hub.Register(gp); err != nil {
		t.Fatal(err)
	}
	imp, err := importer.New(db, mgr, hub, wf, te)
	if err != nil {
		t.Fatal(err)
	}
	registry := NewRegistry()
	if err := registry.Register(NewRserveConnector()); err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(db, mgr, registry, wf, te)
	if err != nil {
		t.Fatal(err)
	}
	fx := &fixture{s: s, db: db, mgr: mgr, wf: wf, te: te, imp: imp, ex: ex, registry: registry}
	err = s.Update(func(tx *store.Tx) error {
		var err error
		fx.project, err = db.CreateProject(tx, "setup", model.Project{Name: "p1000"})
		if err != nil {
			return err
		}
		fx.importRes, err = imp.Import(tx, importer.Request{
			Provider: "genechip", Mode: importer.Copy, WorkunitName: "arrays",
			Project: fx.project, Actor: "alice",
		})
		if err != nil {
			return err
		}
		sid, err := db.CreateSample(tx, "alice", model.Sample{Name: "AT", Project: fx.project})
		if err != nil {
			return err
		}
		for _, name := range samples {
			if _, err := db.CreateExtract(tx, "alice", model.Extract{Name: name, Sample: sid}); err != nil {
				return err
			}
		}
		matches, err := imp.BestMatches(tx, fx.importRes.Workunit)
		if err != nil {
			return err
		}
		if err := imp.ApplyMatches(tx, "alice", matches); err != nil {
			return err
		}
		if err := imp.CompleteImport(tx, "alice", fx.importRes.WorkflowInstance); err != nil {
			return err
		}
		fx.appID, err = db.CreateApplication(tx, "admin", model.Application{
			Name: "two group analysis", Connector: "rserve", Program: "twogroup.R",
			InputSpec: []string{"resources"}, ParamSpec: []string{"reference_group"},
			Active: true,
		})
		if err != nil {
			return err
		}
		fx.expID, err = db.CreateExperiment(tx, "alice", model.Experiment{
			Name: "AT light response", Project: fx.project,
			Resources:  fx.importRes.Resources,
			Attributes: map[string]string{"species": "A. thaliana", "treatment": "light"},
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

func TestRunExperimentEndToEnd(t *testing.T) {
	fx := newFixture(t)
	var res RunResult
	err := fx.s.Update(func(tx *store.Tx) error {
		var err error
		res, err = fx.ex.RunExperiment(tx, RunRequest{
			Experiment: fx.expID, Application: fx.appID,
			WorkunitName: "AT analysis results",
			Params:       map[string]string{"reference_group": "control"},
			Actor:        "alice",
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("run failed: %s", res.Error)
	}
	// Outputs: results.csv, report.txt, results.zip
	if len(res.Resources) != 3 {
		t.Fatalf("resources = %v", res.Resources)
	}
	_ = fx.s.View(func(tx *store.Tx) error {
		wu, _ := fx.db.GetWorkunit(tx, res.Workunit)
		if wu.State != model.WorkunitReady {
			t.Errorf("workunit state = %q", wu.State)
		}
		if wu.Application != fx.appID {
			t.Errorf("workunit application = %d", wu.Application)
		}
		inst, _ := fx.wf.Get(tx, res.WorkflowInstance)
		if inst.State != workflow.StateCompleted {
			t.Errorf("workflow state = %q", inst.State)
		}
		all, _ := fx.db.ResourcesOfWorkunit(tx, res.Workunit)
		// 4 input markers + 3 outputs
		if len(all) != 7 {
			t.Fatalf("workunit resources = %d", len(all))
		}
		inputs, outputs := 0, 0
		var zipURI string
		for _, r := range all {
			if r.IsInput {
				inputs++
			} else {
				outputs++
				if r.Name == "results.zip" {
					zipURI = r.URI
				}
			}
		}
		if inputs != 4 || outputs != 3 {
			t.Errorf("inputs=%d outputs=%d", inputs, outputs)
		}
		// The zip is downloadable and contains both outputs.
		data, err := fx.mgr.Open(zipURI)
		if err != nil {
			t.Fatal(err)
		}
		names, err := ReadZip(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 2 || names["report.txt"] == 0 || names["results.csv"] == 0 {
			t.Errorf("zip = %v", names)
		}
		return nil
	})
}

func TestRunExperimentConnectorFailureRecorded(t *testing.T) {
	fx := newFixture(t)
	var res RunResult
	err := fx.s.Update(func(tx *store.Tx) error {
		var err error
		res, err = fx.ex.RunExperiment(tx, RunRequest{
			Experiment: fx.expID, Application: fx.appID,
			WorkunitName: "doomed",
			// Missing reference_group makes twogroup.R fail.
			Params: map[string]string{},
			Actor:  "alice",
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || !strings.Contains(res.Error, "reference_group") {
		t.Fatalf("res = %+v", res)
	}
	_ = fx.s.View(func(tx *store.Tx) error {
		wu, _ := fx.db.GetWorkunit(tx, res.Workunit)
		if wu.State != model.WorkunitFailed {
			t.Errorf("workunit state = %q", wu.State)
		}
		// An admin error-review task exists.
		open, _ := fx.te.ListOpen(tx, "", model.RoleAdmin)
		found := false
		for _, tk := range open {
			if tk.Type == tasks.TypeReviewError && tk.Ref == res.Workunit {
				found = true
			}
		}
		if !found {
			t.Errorf("no review_error task: %+v", open)
		}
		// Failed workflow instance visible to admins.
		failed, _ := fx.wf.FailedInstances(tx)
		if len(failed) != 1 {
			t.Errorf("failed instances = %v", failed)
		}
		return nil
	})
}

func TestRunExperimentValidation(t *testing.T) {
	fx := newFixture(t)
	// Unknown experiment.
	err := fx.s.Update(func(tx *store.Tx) error {
		_, err := fx.ex.RunExperiment(tx, RunRequest{Experiment: 9999, Application: fx.appID, WorkunitName: "x", Actor: "a"})
		return err
	})
	if !errors.Is(err, store.ErrNotFound) {
		t.Errorf("unknown experiment: %v", err)
	}
	// Inactive application.
	var inactive int64
	_ = fx.s.Update(func(tx *store.Tx) error {
		inactive, _ = fx.db.CreateApplication(tx, "admin", model.Application{
			Name: "retired", Connector: "rserve", Program: "twogroup.R", Active: false,
		})
		return nil
	})
	err = fx.s.Update(func(tx *store.Tx) error {
		_, err := fx.ex.RunExperiment(tx, RunRequest{Experiment: fx.expID, Application: inactive, WorkunitName: "x", Actor: "a"})
		return err
	})
	if !errors.Is(err, ErrInactiveApplication) {
		t.Errorf("inactive app: %v", err)
	}
	// Empty workunit name.
	err = fx.s.Update(func(tx *store.Tx) error {
		_, err := fx.ex.RunExperiment(tx, RunRequest{Experiment: fx.expID, Application: fx.appID, Actor: "a"})
		return err
	})
	if err == nil {
		t.Error("empty workunit name accepted")
	}
	// Unknown connector.
	var badApp int64
	_ = fx.s.Update(func(tx *store.Tx) error {
		badApp, _ = fx.db.CreateApplication(tx, "admin", model.Application{
			Name: "orphan", Connector: "galaxy", Program: "x", Active: true,
		})
		return nil
	})
	err = fx.s.Update(func(tx *store.Tx) error {
		_, err := fx.ex.RunExperiment(tx, RunRequest{Experiment: fx.expID, Application: badApp, WorkunitName: "x", Actor: "a"})
		return err
	})
	if !errors.Is(err, ErrUnknownConnector) {
		t.Errorf("unknown connector: %v", err)
	}
}

func TestResultsAreSearchableContent(t *testing.T) {
	// Output resources carry their text content for the full-text index.
	fx := newFixture(t)
	var res RunResult
	_ = fx.s.Update(func(tx *store.Tx) error {
		res, _ = fx.ex.RunExperiment(tx, RunRequest{
			Experiment: fx.expID, Application: fx.appID,
			WorkunitName: "searchable",
			Params:       map[string]string{"reference_group": "control"},
			Actor:        "alice",
		})
		return nil
	})
	_ = fx.s.View(func(tx *store.Tx) error {
		all, _ := fx.db.ResourcesOfWorkunit(tx, res.Workunit)
		for _, r := range all {
			if r.Name == "report.txt" && !strings.Contains(r.Content, "Two group analysis report") {
				t.Errorf("report content not stored: %q", r.Content[:50])
			}
		}
		return nil
	})
}
