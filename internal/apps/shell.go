package apps

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/storage"
)

// NewShellConnector builds the simulated shell connector: the second
// connector class of the deployment (the original system coupled both
// Rserve applications and command-line tools). Stock programs:
//
//	checksum.sh — emits a sha256 manifest of the inputs
//	concat.sh   — concatenates all inputs into one file
//	lines.sh    — per-input line counts
func NewShellConnector() *SimConnector {
	c := NewSimConnector("shell")
	c.RegisterProgram("checksum.sh", ChecksumManifest)
	c.RegisterProgram("concat.sh", ConcatInputs)
	c.RegisterProgram("lines.sh", LineCounts)
	return c
}

// ChecksumManifest emits "sha256  name" lines for every input, sorted by
// name, mirroring sha256sum output.
func ChecksumManifest(ctx RunContext) ([]OutputFile, error) {
	if len(ctx.Inputs) == 0 {
		return nil, fmt.Errorf("apps: checksum.sh needs at least one input")
	}
	inputs := append([]InputFile(nil), ctx.Inputs...)
	sort.Slice(inputs, func(i, j int) bool { return inputs[i].Name < inputs[j].Name })
	var b strings.Builder
	for _, in := range inputs {
		fmt.Fprintf(&b, "%s  %s\n", storage.Checksum(in.Data), in.Name)
	}
	return []OutputFile{{Name: "checksums.txt", Format: "txt", Data: []byte(b.String())}}, nil
}

// ConcatInputs concatenates the inputs (in given order) with banner lines.
func ConcatInputs(ctx RunContext) ([]OutputFile, error) {
	if len(ctx.Inputs) == 0 {
		return nil, fmt.Errorf("apps: concat.sh needs at least one input")
	}
	var b strings.Builder
	for _, in := range ctx.Inputs {
		fmt.Fprintf(&b, "==> %s <==\n", in.Name)
		b.Write(in.Data)
		if len(in.Data) > 0 && in.Data[len(in.Data)-1] != '\n' {
			b.WriteByte('\n')
		}
	}
	return []OutputFile{{Name: "concatenated.txt", Format: "txt", Data: []byte(b.String())}}, nil
}

// LineCounts emits "count name" per input, like wc -l.
func LineCounts(ctx RunContext) ([]OutputFile, error) {
	if len(ctx.Inputs) == 0 {
		return nil, fmt.Errorf("apps: lines.sh needs at least one input")
	}
	var b strings.Builder
	for _, in := range ctx.Inputs {
		n := 0
		for _, c := range in.Data {
			if c == '\n' {
				n++
			}
		}
		fmt.Fprintf(&b, "%7d %s\n", n, in.Name)
	}
	return []OutputFile{{Name: "linecounts.txt", Format: "txt", Data: []byte(b.String())}}, nil
}
