// Package vocab implements B-Fabric's annotation management: extensible
// controlled vocabularies whose terms are created by users, reviewed and
// released by experts, automatically checked for similarly-written
// duplicates, and merged with transparent re-association of every object
// referring to the losing spelling (Figures 2 and 4–7 of the paper).
package vocab

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/entity"
	"repro/internal/events"
	"repro/internal/store"
)

// Term states.
const (
	// StatePending marks a user-created term awaiting expert review.
	StatePending = "pending"
	// StateReleased marks an expert-approved term.
	StateReleased = "released"
)

// termsTable is the store table holding all vocabulary terms.
const termsTable = "annotation"

// Term is one entry of a controlled vocabulary.
type Term struct {
	ID         int64
	Vocabulary string
	Value      string
	State      string
	CreatedBy  string
	ReviewedBy string
	// Description is free-text documentation of the term.
	Description string
}

// Candidate is a merge recommendation produced by the similarity detector.
type Candidate struct {
	Term  Term
	Score float64
}

// Service owns vocabulary terms and the merge machinery. It needs the
// entity registry to find and rewrite records referring to merged terms.
type Service struct {
	rg *entity.Registry
	// annotatedFields maps kind -> fields constrained by a vocabulary.
	annotatedFields map[string][]entity.Field
	// threshold is the similarity score above which merges are recommended.
	threshold float64
}

// Sentinel errors.
var (
	// ErrDuplicate is returned when adding a term that already exists
	// (exact match) in the vocabulary.
	ErrDuplicate = errors.New("term already exists")
	// ErrUnknownVocabulary is returned for unregistered vocabulary names.
	ErrUnknownVocabulary = errors.New("unknown vocabulary")
	// ErrStateConflict is returned for invalid lifecycle transitions.
	ErrStateConflict = errors.New("invalid term state transition")
	// ErrCrossVocabulary is returned when merging terms of different
	// vocabularies.
	ErrCrossVocabulary = errors.New("terms belong to different vocabularies")
)

// New creates the vocabulary service over the given registry. The
// annotatedFields map (kind -> vocabulary-constrained fields) tells the
// merge machinery where terms are referenced; it typically comes from
// model.AnnotatedFields.
func New(rg *entity.Registry, annotatedFields map[string][]entity.Field) *Service {
	s := rg.Store()
	s.EnsureTable(termsTable)
	// Composite uniqueness over (vocabulary, value) via a derived key field.
	if !s.HasTable(termsTable + "_marker") {
		_ = s.CreateIndex(termsTable, "key", true)
		_ = s.CreateIndex(termsTable, "vocabulary", false)
		_ = s.CreateIndex(termsTable, "state", false)
		s.EnsureTable(termsTable + "_marker")
	}
	return &Service{
		rg:              rg,
		annotatedFields: annotatedFields,
		threshold:       DefaultSimilarityThreshold,
	}
}

// SetThreshold overrides the similarity recommendation threshold.
func (sv *Service) SetThreshold(th float64) { sv.threshold = th }

func termKey(vocabulary, value string) string {
	return vocabulary + "\x00" + strings.ToLower(strings.TrimSpace(value))
}

func termFromRecord(r store.Record) Term {
	return Term{
		ID:          r.ID(),
		Vocabulary:  r.String("vocabulary"),
		Value:       r.String("value"),
		State:       r.String("state"),
		CreatedBy:   r.String("created_by"),
		ReviewedBy:  r.String("reviewed_by"),
		Description: r.String("description"),
	}
}

// AddTerm creates a new term. Terms created by experts or marked released
// explicitly skip review; otherwise the term enters the pending state and
// an annotation.created event is published, which the task engine turns
// into a review task for the experts (Figure 8).
func (sv *Service) AddTerm(tx *store.Tx, actor, vocabulary, value string, released bool) (Term, error) {
	value = strings.TrimSpace(value)
	if vocabulary == "" || value == "" {
		return Term{}, fmt.Errorf("vocab: empty vocabulary or value")
	}
	state := StatePending
	reviewedBy := ""
	if released {
		state = StateReleased
		reviewedBy = actor
	}
	rec := store.Record{
		"vocabulary":  vocabulary,
		"value":       value,
		"key":         termKey(vocabulary, value),
		"state":       state,
		"created_by":  actor,
		"reviewed_by": reviewedBy,
	}
	id, err := tx.Insert(termsTable, rec)
	if err != nil {
		if errors.Is(err, store.ErrUnique) {
			return Term{}, fmt.Errorf("vocab: %s/%s: %w", vocabulary, value, ErrDuplicate)
		}
		return Term{}, err
	}
	t := termFromRecord(rec)
	t.ID = id
	sv.rg.Bus().Publish(events.Event{
		Topic: "annotation.created", Kind: termsTable, ID: id, Actor: actor, Tx: tx,
		Payload: map[string]any{"vocabulary": vocabulary, "value": value, "state": state},
	})
	return t, nil
}

// Get returns the term with the given id.
func (sv *Service) Get(tx *store.Tx, id int64) (Term, error) {
	r, err := tx.GetRef(termsTable, id)
	if err != nil {
		return Term{}, err
	}
	return termFromRecord(r), nil
}

// Lookup finds a term by vocabulary and (case-insensitive) value.
func (sv *Service) Lookup(tx *store.Tx, vocabulary, value string) (Term, error) {
	r, err := tx.FirstRef(termsTable, "key", termKey(vocabulary, value))
	if err != nil {
		return Term{}, err
	}
	return termFromRecord(r), nil
}

// Terms returns all terms of a vocabulary, optionally filtered by state
// (empty state = all), sorted by value. This backs the drop-down menus.
func (sv *Service) Terms(tx *store.Tx, vocabulary, state string) ([]Term, error) {
	rs, err := tx.FindRef(termsTable, "vocabulary", vocabulary)
	if err != nil {
		return nil, err
	}
	out := make([]Term, 0, len(rs))
	for _, r := range rs {
		t := termFromRecord(r)
		if state != "" && t.State != state {
			continue
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out, nil
}

// Pending returns every pending term across all vocabularies — the expert's
// review queue.
func (sv *Service) Pending(tx *store.Tx) ([]Term, error) {
	rs, err := tx.FindRef(termsTable, "state", StatePending)
	if err != nil {
		return nil, err
	}
	out := make([]Term, 0, len(rs))
	for _, r := range rs {
		out = append(out, termFromRecord(r))
	}
	return out, nil
}

// Release approves a pending term (Figure 4). Releasing an already-released
// term fails with ErrStateConflict.
func (sv *Service) Release(tx *store.Tx, actor string, id int64) error {
	r, err := tx.Get(termsTable, id)
	if err != nil {
		return err
	}
	if r.String("state") != StatePending {
		return fmt.Errorf("vocab: term %d is %q: %w", id, r.String("state"), ErrStateConflict)
	}
	r["state"] = StateReleased
	r["reviewed_by"] = actor
	if err := tx.Put(termsTable, id, r); err != nil {
		return err
	}
	sv.rg.Bus().Publish(events.Event{
		Topic: "annotation.released", Kind: termsTable, ID: id, Actor: actor, Tx: tx,
		Payload: map[string]any{"vocabulary": r.String("vocabulary"), "value": r.String("value")},
	})
	return nil
}

// Exists reports whether a value is a known term of the vocabulary
// (pending or released). The service layer uses it to validate annotation
// fields on entity creation.
func (sv *Service) Exists(tx *store.Tx, vocabulary, value string) bool {
	_, err := sv.Lookup(tx, vocabulary, value)
	return err == nil
}

// Similar scans the vocabulary for terms similar to value, returning
// candidates scoring at or above the service threshold, best first. The
// exact (case-insensitive) match is excluded: it is a duplicate, not a
// merge candidate.
//
// The scan is zero-copy (term records are read by reference and only their
// string values extracted) and amortizes the query side of the similarity
// computation across all comparisons via a Scorer. Run inside a View it is
// also wait-free under write load: the whole comparison loop reads the
// transaction's pinned MVCC version, so bulk term imports never stall a
// similarity check and vice versa.
func (sv *Service) Similar(tx *store.Tx, vocabulary, value string) ([]Candidate, error) {
	rs, err := tx.FindRef(termsTable, "vocabulary", vocabulary)
	if err != nil {
		return nil, err
	}
	sc := NewScorer(value)
	norm := strings.ToLower(strings.TrimSpace(value))
	var out []Candidate
	for _, r := range rs {
		tv := r.String("value")
		if strings.ToLower(tv) == norm {
			continue
		}
		if score := sc.Score(tv); score >= sv.threshold {
			out = append(out, Candidate{Term: termFromRecord(r), Score: score})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Term.Value < out[j].Term.Value
	})
	return out, nil
}

// Recommendations returns, for every pending term, its merge candidates.
// This is the annotation view of Figure 5 where the expert sees "Hopeles"
// flagged as similar to "Hopeless".
func (sv *Service) Recommendations(tx *store.Tx) (map[int64][]Candidate, error) {
	pend, err := sv.Pending(tx)
	if err != nil {
		return nil, err
	}
	out := make(map[int64][]Candidate)
	for _, t := range pend {
		cands, err := sv.Similar(tx, t.Vocabulary, t.Value)
		if err != nil {
			return nil, err
		}
		if len(cands) > 0 {
			out[t.ID] = cands
		}
	}
	return out, nil
}

// MergeResult reports what a merge did.
type MergeResult struct {
	// Winner is the surviving term after the merge.
	Winner Term
	// Reassociated counts, per entity kind, how many records were moved
	// from the losing spelling to the winner.
	Reassociated map[string]int
}

// Merge folds the term dropID into keepID (Figures 6–7): every record whose
// vocabulary-constrained field carries the losing value is rewritten to the
// winning value, the losing term is deleted, and the winner optionally takes
// over attributes chosen by the expert (newValue non-empty renames the
// winner, re-keying it). The merged term is always released: an expert
// performed the merge.
func (sv *Service) Merge(tx *store.Tx, actor string, keepID, dropID int64, newValue string) (MergeResult, error) {
	if keepID == dropID {
		return MergeResult{}, fmt.Errorf("vocab: cannot merge a term with itself")
	}
	keep, err := tx.Get(termsTable, keepID)
	if err != nil {
		return MergeResult{}, err
	}
	drop, err := tx.Get(termsTable, dropID)
	if err != nil {
		return MergeResult{}, err
	}
	if keep.String("vocabulary") != drop.String("vocabulary") {
		return MergeResult{}, fmt.Errorf("vocab: %q vs %q: %w",
			keep.String("vocabulary"), drop.String("vocabulary"), ErrCrossVocabulary)
	}
	vocabulary := keep.String("vocabulary")
	oldValues := []string{drop.String("value")}
	winnerValue := keep.String("value")
	if newValue != "" && newValue != winnerValue {
		// Expert chose a new spelling for the merged annotation; records
		// carrying the winner's old spelling must move too.
		oldValues = append(oldValues, winnerValue)
		winnerValue = newValue
	}

	// Delete the loser first so a rename to the loser's value cannot
	// collide on the unique key.
	if err := tx.Delete(termsTable, dropID); err != nil {
		return MergeResult{}, err
	}
	if winnerValue != keep.String("value") {
		keep["value"] = winnerValue
		keep["key"] = termKey(vocabulary, winnerValue)
	}
	keep["state"] = StateReleased
	keep["reviewed_by"] = actor
	if err := tx.Put(termsTable, keepID, keep); err != nil {
		return MergeResult{}, err
	}

	// Re-associate every record referring to an old spelling.
	reassoc := make(map[string]int)
	for kind, fields := range sv.annotatedFields {
		for _, f := range fields {
			if f.Vocabulary != vocabulary {
				continue
			}
			for _, old := range oldValues {
				if old == winnerValue {
					continue
				}
				ids, err := tx.Lookup(kind, f.Name, old)
				if err != nil {
					return MergeResult{}, err
				}
				for _, id := range ids {
					if err := sv.rg.Update(tx, kind, id, actor, map[string]any{f.Name: winnerValue}); err != nil {
						return MergeResult{}, err
					}
					reassoc[kind]++
				}
			}
		}
	}
	winner := termFromRecord(keep)
	winner.ID = keepID
	sv.rg.Bus().Publish(events.Event{
		Topic: "annotation.merged", Kind: termsTable, ID: keepID, Actor: actor, Tx: tx,
		Payload: map[string]any{
			"vocabulary": vocabulary, "winner": winner.Value,
			"dropped": drop.String("value"), "dropped_id": dropID,
		},
	})
	return MergeResult{Winner: winner, Reassociated: reassoc}, nil
}

// Count returns the total number of terms across all vocabularies.
func (sv *Service) Count() int { return sv.rg.Store().Count(termsTable) }
