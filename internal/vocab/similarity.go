package vocab

import "strings"

// Levenshtein returns the edit distance between a and b (unit costs),
// computed with the classic two-row dynamic program. It operates on runes
// so that multi-byte annotations ("Müller") compare correctly.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		curr[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			curr[j] = min(
				prev[j]+1,      // deletion
				curr[j-1]+1,    // insertion
				prev[j-1]+cost, // substitution
			)
		}
		prev, curr = curr, prev
	}
	return prev[len(rb)]
}

// bigrams returns the multiset of character bigrams of s (lower-cased),
// represented as a count map.
func bigrams(s string) map[string]int {
	rs := []rune(strings.ToLower(s))
	out := make(map[string]int)
	if len(rs) < 2 {
		if len(rs) == 1 {
			out[string(rs)] = 1
		}
		return out
	}
	for i := 0; i+1 < len(rs); i++ {
		out[string(rs[i:i+2])]++
	}
	return out
}

// DiceCoefficient returns the Sørensen–Dice bigram similarity of a and b in
// [0,1]. Identical strings score 1; strings sharing no bigrams score 0.
func DiceCoefficient(a, b string) float64 {
	ba, bb := bigrams(a), bigrams(b)
	if len(ba) == 0 && len(bb) == 0 {
		return 1
	}
	if len(ba) == 0 || len(bb) == 0 {
		return 0
	}
	common, total := 0, 0
	for g, ca := range ba {
		total += ca
		if cb, ok := bb[g]; ok {
			common += min(ca, cb)
		}
	}
	for _, cb := range bb {
		total += cb
	}
	return 2 * float64(common) / float64(total)
}

// Similarity combines normalized edit distance and bigram overlap into a
// single [0,1] score. This mirrors the "similarly written versions of the
// same annotation" detector of the paper: "Hopeless" vs "Hopeles" scores
// well above the recommendation threshold, while unrelated terms score low.
//
// For scoring one value against many candidates, use a Scorer, which
// amortizes the query-side work and reuses scratch buffers.
func Similarity(a, b string) float64 {
	return NewScorer(a).Score(b)
}

// Scorer scores the similarity of one fixed value against many candidates.
// It precomputes the value's normalized form, rune slice and bigram multiset
// once, and reuses DP rows and scratch maps across Score calls, so a scan
// over n candidates allocates O(1) instead of O(n). A Scorer is not safe for
// concurrent use.
type Scorer struct {
	norm  string
	runes []rune
	grams map[[2]rune]int
	total int // bigram multiset size of the value

	// Reusable per-candidate scratch.
	cand       []rune
	cgrams     map[[2]rune]int
	prev, curr []int
}

// NewScorer prepares a scorer for the given value.
func NewScorer(value string) *Scorer {
	sc := &Scorer{
		norm:   strings.ToLower(strings.TrimSpace(value)),
		grams:  make(map[[2]rune]int),
		cgrams: make(map[[2]rune]int),
	}
	sc.runes = []rune(sc.norm)
	sc.total = fillGrams(sc.grams, sc.runes)
	return sc
}

// Score returns Similarity(value, candidate) for the scorer's value.
func (sc *Scorer) Score(candidate string) float64 {
	lb := strings.ToLower(strings.TrimSpace(candidate))
	if sc.norm == lb {
		return 1
	}
	sc.cand = appendRunes(sc.cand[:0], lb)
	maxLen := len(sc.runes)
	if n := len(sc.cand); n > maxLen {
		maxLen = n
	}
	if maxLen == 0 {
		return 1
	}
	editSim := 1 - float64(sc.levenshtein())/float64(maxLen)
	dice := sc.dice()
	// Weighted blend: edit similarity dominates for short strings where a
	// single typo hurts bigram overlap disproportionately.
	return 0.6*editSim + 0.4*dice
}

// levenshtein computes the edit distance between the scorer's value and the
// current candidate (sc.cand). Shared prefixes and suffixes are trimmed
// first — vocabulary terms typically share long stems — shrinking the DP to
// the differing core; the DP rows are reused across calls.
func (sc *Scorer) levenshtein() int {
	a, b := sc.runes, sc.cand
	for len(a) > 0 && len(b) > 0 && a[0] == b[0] {
		a, b = a[1:], b[1:]
	}
	for len(a) > 0 && len(b) > 0 && a[len(a)-1] == b[len(b)-1] {
		a, b = a[:len(a)-1], b[:len(b)-1]
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	if cap(sc.prev) < len(b)+1 {
		sc.prev = make([]int, len(b)+1)
		sc.curr = make([]int, len(b)+1)
	}
	prev, curr := sc.prev[:len(b)+1], sc.curr[:len(b)+1]
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		curr[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			curr[j] = min(
				prev[j]+1,      // deletion
				curr[j-1]+1,    // insertion
				prev[j-1]+cost, // substitution
			)
		}
		prev, curr = curr, prev
	}
	return prev[len(b)]
}

// dice computes the Sørensen–Dice bigram similarity between the scorer's
// value and the current candidate, using [2]rune-keyed multisets so that no
// per-bigram strings are allocated.
func (sc *Scorer) dice() float64 {
	clear(sc.cgrams)
	ctotal := fillGrams(sc.cgrams, sc.cand)
	if sc.total == 0 && ctotal == 0 {
		return 1
	}
	if sc.total == 0 || ctotal == 0 {
		return 0
	}
	common := 0
	for g, cb := range sc.cgrams {
		if ca := sc.grams[g]; ca > 0 {
			common += min(ca, cb)
		}
	}
	return 2 * float64(common) / float64(sc.total+ctotal)
}

// fillGrams adds the bigram multiset of rs to m and returns its size. A
// single-rune string contributes one pseudo-bigram, mirroring bigrams; the
// -1 sentinel cannot collide with any real second rune.
func fillGrams(m map[[2]rune]int, rs []rune) int {
	switch len(rs) {
	case 0:
		return 0
	case 1:
		m[[2]rune{rs[0], -1}]++
		return 1
	}
	for i := 0; i+1 < len(rs); i++ {
		m[[2]rune{rs[i], rs[i+1]}]++
	}
	return len(rs) - 1
}

func appendRunes(dst []rune, s string) []rune {
	for _, r := range s {
		dst = append(dst, r)
	}
	return dst
}

// DefaultSimilarityThreshold is the score above which two annotations are
// recommended for merging.
const DefaultSimilarityThreshold = 0.75
