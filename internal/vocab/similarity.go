package vocab

import "strings"

// Levenshtein returns the edit distance between a and b (unit costs),
// computed with the classic two-row dynamic program. It operates on runes
// so that multi-byte annotations ("Müller") compare correctly.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		curr[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			curr[j] = min3(
				prev[j]+1,      // deletion
				curr[j-1]+1,    // insertion
				prev[j-1]+cost, // substitution
			)
		}
		prev, curr = curr, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// bigrams returns the multiset of character bigrams of s (lower-cased),
// represented as a count map.
func bigrams(s string) map[string]int {
	rs := []rune(strings.ToLower(s))
	out := make(map[string]int)
	if len(rs) < 2 {
		if len(rs) == 1 {
			out[string(rs)] = 1
		}
		return out
	}
	for i := 0; i+1 < len(rs); i++ {
		out[string(rs[i:i+2])]++
	}
	return out
}

// DiceCoefficient returns the Sørensen–Dice bigram similarity of a and b in
// [0,1]. Identical strings score 1; strings sharing no bigrams score 0.
func DiceCoefficient(a, b string) float64 {
	ba, bb := bigrams(a), bigrams(b)
	if len(ba) == 0 && len(bb) == 0 {
		return 1
	}
	if len(ba) == 0 || len(bb) == 0 {
		return 0
	}
	common, total := 0, 0
	for g, ca := range ba {
		total += ca
		if cb, ok := bb[g]; ok {
			common += minInt(ca, cb)
		}
	}
	for _, cb := range bb {
		total += cb
	}
	return 2 * float64(common) / float64(total)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Similarity combines normalized edit distance and bigram overlap into a
// single [0,1] score. This mirrors the "similarly written versions of the
// same annotation" detector of the paper: "Hopeless" vs "Hopeles" scores
// well above the recommendation threshold, while unrelated terms score low.
func Similarity(a, b string) float64 {
	la, lb := strings.ToLower(strings.TrimSpace(a)), strings.ToLower(strings.TrimSpace(b))
	if la == lb {
		return 1
	}
	maxLen := len([]rune(la))
	if n := len([]rune(lb)); n > maxLen {
		maxLen = n
	}
	if maxLen == 0 {
		return 1
	}
	editSim := 1 - float64(Levenshtein(la, lb))/float64(maxLen)
	dice := DiceCoefficient(la, lb)
	// Weighted blend: edit similarity dominates for short strings where a
	// single typo hurts bigram overlap disproportionately.
	return 0.6*editSim + 0.4*dice
}

// DefaultSimilarityThreshold is the score above which two annotations are
// recommended for merging.
const DefaultSimilarityThreshold = 0.75
