package vocab

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/entity"
	"repro/internal/events"
	"repro/internal/model"
	"repro/internal/store"
)

// TestQuickMergeInvariants: after any random sequence of term additions and
// merges, (1) no two live terms in a vocabulary share a normalized value,
// and (2) every sample's annotation value resolves to a live term.
func TestQuickMergeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rg := entity.NewRegistry(store.New(), events.NewBus())
		if err := model.RegisterSchema(rg); err != nil {
			return false
		}
		db := model.NewDB(rg)
		sv := New(rg, model.AnnotatedFields(rg))
		var project int64
		if err := rg.Store().Update(func(tx *store.Tx) error {
			var err error
			project, err = db.CreateProject(tx, "q", model.Project{Name: "p"})
			return err
		}); err != nil {
			return false
		}

		var termIDs []int64
		values := []string{}
		for op := 0; op < 40; op++ {
			switch rng.Intn(3) {
			case 0, 1: // add a term and maybe a sample carrying it
				value := fmt.Sprintf("term-%02d", rng.Intn(15))
				_ = rg.Store().Update(func(tx *store.Tx) error {
					term, err := sv.AddTerm(tx, "q", model.VocabDiseaseState, value, rng.Intn(2) == 0)
					if err != nil {
						return nil // duplicates are fine, skip
					}
					termIDs = append(termIDs, term.ID)
					values = append(values, term.Value)
					if rng.Intn(2) == 0 {
						_, _ = db.CreateSample(tx, "q", model.Sample{
							Name: fmt.Sprintf("s%d", op), Project: project,
							DiseaseState: term.Value,
						})
					}
					return nil
				})
			case 2: // merge two random live terms
				if len(termIDs) < 2 {
					continue
				}
				a := termIDs[rng.Intn(len(termIDs))]
				b := termIDs[rng.Intn(len(termIDs))]
				_ = rg.Store().Update(func(tx *store.Tx) error {
					_, err := sv.Merge(tx, "q", a, b, "")
					return err // self-merge / missing terms fail; fine
				})
			}
		}

		// Invariant 1: unique normalized values among live terms.
		ok := true
		_ = rg.Store().View(func(tx *store.Tx) error {
			terms, err := sv.Terms(tx, model.VocabDiseaseState, "")
			if err != nil {
				ok = false
				return nil
			}
			seen := map[string]bool{}
			for _, term := range terms {
				key := termKey(term.Vocabulary, term.Value)
				if seen[key] {
					ok = false
					return nil
				}
				seen[key] = true
			}
			// Invariant 2: every sample's disease state resolves.
			return tx.Scan(model.KindSample, func(r store.Record) bool {
				ds := r.String("disease_state")
				if ds != "" && !sv.Exists(tx, model.VocabDiseaseState, ds) {
					ok = false
					return false
				}
				return true
			})
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
