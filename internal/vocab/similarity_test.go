package vocab

import (
	"testing"
	"testing/quick"
)

func TestLevenshteinBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"Hopeless", "Hopeles", 1},
		{"same", "same", 0},
		{"abc", "cba", 2},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinUnicode(t *testing.T) {
	// One rune substitution, not a byte-level mess.
	if got := Levenshtein("Müller", "Muller"); got != 1 {
		t.Errorf("Levenshtein(Müller, Muller) = %d, want 1", got)
	}
}

func TestLevenshteinProperties(t *testing.T) {
	// Symmetry.
	sym := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	if err := quick.Check(sym, &quick.Config{MaxCount: 100}); err != nil {
		t.Error("symmetry:", err)
	}
	// Identity.
	ident := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(ident, &quick.Config{MaxCount: 100}); err != nil {
		t.Error("identity:", err)
	}
	// Distance bounded by the longer rune length.
	bound := func(a, b string) bool {
		d := Levenshtein(a, b)
		la, lb := len([]rune(a)), len([]rune(b))
		max := la
		if lb > max {
			max = lb
		}
		return d <= max
	}
	if err := quick.Check(bound, &quick.Config{MaxCount: 100}); err != nil {
		t.Error("bound:", err)
	}
	// Triangle inequality over random triples.
	tri := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(tri, &quick.Config{MaxCount: 100}); err != nil {
		t.Error("triangle:", err)
	}
}

func TestDiceCoefficient(t *testing.T) {
	if got := DiceCoefficient("night", "nacht"); got <= 0 || got >= 1 {
		// night/nacht share "ht": expect a small positive score.
		t.Errorf("Dice(night,nacht) = %v", got)
	}
	if got := DiceCoefficient("same", "same"); got != 1 {
		t.Errorf("Dice(identical) = %v", got)
	}
	if got := DiceCoefficient("abc", "xyz"); got != 0 {
		t.Errorf("Dice(disjoint) = %v", got)
	}
	if got := DiceCoefficient("", ""); got != 1 {
		t.Errorf("Dice(empty,empty) = %v", got)
	}
	if got := DiceCoefficient("", "abc"); got != 0 {
		t.Errorf("Dice(empty,abc) = %v", got)
	}
	// Case-insensitive.
	if got := DiceCoefficient("ABC", "abc"); got != 1 {
		t.Errorf("Dice(case) = %v", got)
	}
}

func TestDiceRange(t *testing.T) {
	f := func(a, b string) bool {
		d := DiceCoefficient(a, b)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSimilarityPaperExample(t *testing.T) {
	// The paper's misspelling example must cross the recommendation
	// threshold, and unrelated disease states must not.
	got := Similarity("Hopeless", "Hopeles")
	if got < DefaultSimilarityThreshold {
		t.Errorf("Similarity(Hopeless,Hopeles) = %v, want >= %v", got, DefaultSimilarityThreshold)
	}
	unrelated := Similarity("Hopeless", "Diabetes")
	if unrelated >= DefaultSimilarityThreshold {
		t.Errorf("Similarity(Hopeless,Diabetes) = %v, want < threshold", unrelated)
	}
	if identical := Similarity("Healthy", "healthy "); identical != 1 {
		t.Errorf("case/space-normalized identity = %v, want 1", identical)
	}
}

func TestSimilarityRangeAndSymmetry(t *testing.T) {
	rng := func(a, b string) bool {
		s := Similarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(rng, &quick.Config{MaxCount: 200}); err != nil {
		t.Error("range:", err)
	}
	sym := func(a, b string) bool {
		return Similarity(a, b) == Similarity(b, a)
	}
	if err := quick.Check(sym, &quick.Config{MaxCount: 200}); err != nil {
		t.Error("symmetry:", err)
	}
}
