package vocab

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/entity"
	"repro/internal/events"
	"repro/internal/model"
	"repro/internal/store"
)

type fixture struct {
	sv      *Service
	db      *model.DB
	project int64
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	rg := entity.NewRegistry(store.New(), events.NewBus())
	if err := model.RegisterSchema(rg); err != nil {
		t.Fatal(err)
	}
	db := model.NewDB(rg)
	sv := New(rg, model.AnnotatedFields(rg))
	fx := &fixture{sv: sv, db: db}
	err := rg.Store().Update(func(tx *store.Tx) error {
		var err error
		fx.project, err = db.CreateProject(tx, "setup", model.Project{Name: "p"})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

func (fx *fixture) update(t *testing.T, fn func(tx *store.Tx) error) {
	t.Helper()
	if err := fx.sv.rg.Store().Update(fn); err != nil {
		t.Fatal(err)
	}
}

func (fx *fixture) view(t *testing.T, fn func(tx *store.Tx) error) {
	t.Helper()
	if err := fx.sv.rg.Store().View(fn); err != nil {
		t.Fatal(err)
	}
}

func TestAddTermPendingLifecycle(t *testing.T) {
	fx := newFixture(t)
	var term Term
	fx.update(t, func(tx *store.Tx) error {
		var err error
		term, err = fx.sv.AddTerm(tx, "alice", model.VocabDiseaseState, "Hopeless", false)
		return err
	})
	if term.State != StatePending || term.CreatedBy != "alice" {
		t.Errorf("term = %+v", term)
	}
	fx.view(t, func(tx *store.Tx) error {
		pend, err := fx.sv.Pending(tx)
		if err != nil {
			return err
		}
		if len(pend) != 1 || pend[0].Value != "Hopeless" {
			t.Errorf("pending = %+v", pend)
		}
		return nil
	})
	fx.update(t, func(tx *store.Tx) error {
		return fx.sv.Release(tx, "eva", term.ID)
	})
	fx.view(t, func(tx *store.Tx) error {
		got, err := fx.sv.Get(tx, term.ID)
		if err != nil {
			return err
		}
		if got.State != StateReleased || got.ReviewedBy != "eva" {
			t.Errorf("released term = %+v", got)
		}
		return nil
	})
}

func TestAddTermReleasedDirectly(t *testing.T) {
	fx := newFixture(t)
	fx.update(t, func(tx *store.Tx) error {
		term, err := fx.sv.AddTerm(tx, "eva", model.VocabSpecies, "Arabidopsis thaliana", true)
		if err != nil {
			return err
		}
		if term.State != StateReleased || term.ReviewedBy != "eva" {
			t.Errorf("term = %+v", term)
		}
		return nil
	})
}

func TestAddTermDuplicateRejected(t *testing.T) {
	fx := newFixture(t)
	fx.update(t, func(tx *store.Tx) error {
		_, err := fx.sv.AddTerm(tx, "alice", model.VocabTissue, "Leaf", false)
		return err
	})
	err := fx.sv.rg.Store().Update(func(tx *store.Tx) error {
		_, err := fx.sv.AddTerm(tx, "bob", model.VocabTissue, "leaf", false) // case-insensitive dup
		return err
	})
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("got %v, want ErrDuplicate", err)
	}
	// Same value in a different vocabulary is fine.
	fx.update(t, func(tx *store.Tx) error {
		_, err := fx.sv.AddTerm(tx, "bob", model.VocabCellType, "leaf", false)
		return err
	})
}

func TestAddTermValidation(t *testing.T) {
	fx := newFixture(t)
	for _, c := range []struct{ vocab, value string }{
		{"", "x"}, {"v", ""}, {"v", "   "},
	} {
		err := fx.sv.rg.Store().Update(func(tx *store.Tx) error {
			_, err := fx.sv.AddTerm(tx, "a", c.vocab, c.value, false)
			return err
		})
		if err == nil {
			t.Errorf("AddTerm(%q,%q) accepted", c.vocab, c.value)
		}
	}
}

func TestReleaseTwiceFails(t *testing.T) {
	fx := newFixture(t)
	var id int64
	fx.update(t, func(tx *store.Tx) error {
		term, err := fx.sv.AddTerm(tx, "alice", model.VocabTissue, "Root", false)
		id = term.ID
		return err
	})
	fx.update(t, func(tx *store.Tx) error { return fx.sv.Release(tx, "eva", id) })
	err := fx.sv.rg.Store().Update(func(tx *store.Tx) error {
		return fx.sv.Release(tx, "eva", id)
	})
	if !errors.Is(err, ErrStateConflict) {
		t.Fatalf("got %v, want ErrStateConflict", err)
	}
}

func TestTermsSortedAndFiltered(t *testing.T) {
	fx := newFixture(t)
	fx.update(t, func(tx *store.Tx) error {
		if _, err := fx.sv.AddTerm(tx, "a", model.VocabTissue, "Zebra", true); err != nil {
			return err
		}
		if _, err := fx.sv.AddTerm(tx, "a", model.VocabTissue, "Alpha", false); err != nil {
			return err
		}
		_, err := fx.sv.AddTerm(tx, "a", model.VocabTissue, "Mid", true)
		return err
	})
	fx.view(t, func(tx *store.Tx) error {
		all, err := fx.sv.Terms(tx, model.VocabTissue, "")
		if err != nil {
			return err
		}
		if len(all) != 3 || all[0].Value != "Alpha" || all[2].Value != "Zebra" {
			t.Errorf("all terms = %+v", all)
		}
		rel, err := fx.sv.Terms(tx, model.VocabTissue, StateReleased)
		if err != nil {
			return err
		}
		if len(rel) != 2 {
			t.Errorf("released terms = %+v", rel)
		}
		return nil
	})
}

func TestSimilarDetectsMisspelling(t *testing.T) {
	fx := newFixture(t)
	fx.update(t, func(tx *store.Tx) error {
		if _, err := fx.sv.AddTerm(tx, "alice", model.VocabDiseaseState, "Hopeless", true); err != nil {
			return err
		}
		if _, err := fx.sv.AddTerm(tx, "eva", model.VocabDiseaseState, "Healthy", true); err != nil {
			return err
		}
		_, err := fx.sv.AddTerm(tx, "bob", model.VocabDiseaseState, "Hopeles", false)
		return err
	})
	fx.view(t, func(tx *store.Tx) error {
		cands, err := fx.sv.Similar(tx, model.VocabDiseaseState, "Hopeles")
		if err != nil {
			return err
		}
		if len(cands) != 1 || cands[0].Term.Value != "Hopeless" {
			t.Fatalf("candidates = %+v", cands)
		}
		if cands[0].Score < DefaultSimilarityThreshold {
			t.Errorf("score = %v", cands[0].Score)
		}
		return nil
	})
}

func TestRecommendationsForPendingTerms(t *testing.T) {
	fx := newFixture(t)
	var pendingID int64
	fx.update(t, func(tx *store.Tx) error {
		if _, err := fx.sv.AddTerm(tx, "alice", model.VocabDiseaseState, "Hopeless", true); err != nil {
			return err
		}
		term, err := fx.sv.AddTerm(tx, "bob", model.VocabDiseaseState, "Hopeles", false)
		pendingID = term.ID
		return err
	})
	fx.view(t, func(tx *store.Tx) error {
		recs, err := fx.sv.Recommendations(tx)
		if err != nil {
			return err
		}
		cands, ok := recs[pendingID]
		if !ok || len(cands) != 1 || cands[0].Term.Value != "Hopeless" {
			t.Errorf("recommendations = %+v", recs)
		}
		return nil
	})
}

func TestMergeReassociatesSamples(t *testing.T) {
	// The paper's scenario: samples annotated with the misspelled
	// "Hopeles" are re-associated to "Hopeless" when the expert merges.
	fx := newFixture(t)
	var keep, drop Term
	var misspelled []int64
	fx.update(t, func(tx *store.Tx) error {
		var err error
		keep, err = fx.sv.AddTerm(tx, "alice", model.VocabDiseaseState, "Hopeless", true)
		if err != nil {
			return err
		}
		drop, err = fx.sv.AddTerm(tx, "bob", model.VocabDiseaseState, "Hopeles", false)
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			id, err := fx.db.CreateSample(tx, "bob", model.Sample{
				Name: fmt.Sprintf("s%d", i), Project: fx.project, DiseaseState: "Hopeles",
			})
			if err != nil {
				return err
			}
			misspelled = append(misspelled, id)
		}
		// One sample with the correct spelling must be untouched.
		_, err = fx.db.CreateSample(tx, "alice", model.Sample{
			Name: "ok", Project: fx.project, DiseaseState: "Hopeless",
		})
		return err
	})
	var res MergeResult
	fx.update(t, func(tx *store.Tx) error {
		var err error
		res, err = fx.sv.Merge(tx, "eva", keep.ID, drop.ID, "")
		return err
	})
	if res.Winner.Value != "Hopeless" || res.Winner.State != StateReleased {
		t.Errorf("winner = %+v", res.Winner)
	}
	if res.Reassociated[model.KindSample] != 3 {
		t.Errorf("reassociated = %v", res.Reassociated)
	}
	fx.view(t, func(tx *store.Tx) error {
		for _, id := range misspelled {
			s, err := fx.db.GetSample(tx, id)
			if err != nil {
				return err
			}
			if s.DiseaseState != "Hopeless" {
				t.Errorf("sample %d disease_state = %q", id, s.DiseaseState)
			}
		}
		// The losing term is gone.
		if _, err := fx.sv.Get(tx, drop.ID); !errors.Is(err, store.ErrNotFound) {
			t.Errorf("dropped term still present: %v", err)
		}
		// Vocabulary now has exactly one disease-state term.
		terms, _ := fx.sv.Terms(tx, model.VocabDiseaseState, "")
		if len(terms) != 1 {
			t.Errorf("terms after merge = %+v", terms)
		}
		return nil
	})
}

func TestMergeWithRename(t *testing.T) {
	// The expert picks a brand-new spelling on the merge form (Figure 6):
	// records carrying either old spelling move to the new one.
	fx := newFixture(t)
	var keep, drop Term
	var sKeep, sDrop int64
	fx.update(t, func(tx *store.Tx) error {
		var err error
		keep, err = fx.sv.AddTerm(tx, "a", model.VocabTreatment, "heatshock", true)
		if err != nil {
			return err
		}
		drop, err = fx.sv.AddTerm(tx, "b", model.VocabTreatment, "heat-shok", false)
		if err != nil {
			return err
		}
		sKeep, err = fx.db.CreateSample(tx, "a", model.Sample{
			Name: "k", Project: fx.project, Treatment: "heatshock",
		})
		if err != nil {
			return err
		}
		sDrop, err = fx.db.CreateSample(tx, "b", model.Sample{
			Name: "d", Project: fx.project, Treatment: "heat-shok",
		})
		return err
	})
	var res MergeResult
	fx.update(t, func(tx *store.Tx) error {
		var err error
		res, err = fx.sv.Merge(tx, "eva", keep.ID, drop.ID, "Heat shock")
		return err
	})
	if res.Winner.Value != "Heat shock" {
		t.Errorf("winner = %+v", res.Winner)
	}
	if res.Reassociated[model.KindSample] != 2 {
		t.Errorf("reassociated = %v", res.Reassociated)
	}
	fx.view(t, func(tx *store.Tx) error {
		for _, id := range []int64{sKeep, sDrop} {
			s, _ := fx.db.GetSample(tx, id)
			if s.Treatment != "Heat shock" {
				t.Errorf("sample %d treatment = %q", id, s.Treatment)
			}
		}
		return nil
	})
}

func TestMergeErrors(t *testing.T) {
	fx := newFixture(t)
	var a, b Term
	fx.update(t, func(tx *store.Tx) error {
		var err error
		a, err = fx.sv.AddTerm(tx, "x", model.VocabTissue, "Leaf", true)
		if err != nil {
			return err
		}
		b, err = fx.sv.AddTerm(tx, "x", model.VocabSpecies, "Leafy", true)
		return err
	})
	err := fx.sv.rg.Store().Update(func(tx *store.Tx) error {
		_, err := fx.sv.Merge(tx, "eva", a.ID, a.ID, "")
		return err
	})
	if err == nil {
		t.Error("self-merge accepted")
	}
	err = fx.sv.rg.Store().Update(func(tx *store.Tx) error {
		_, err := fx.sv.Merge(tx, "eva", a.ID, b.ID, "")
		return err
	})
	if !errors.Is(err, ErrCrossVocabulary) {
		t.Errorf("cross-vocab merge: %v", err)
	}
	err = fx.sv.rg.Store().Update(func(tx *store.Tx) error {
		_, err := fx.sv.Merge(tx, "eva", a.ID, 9999, "")
		return err
	})
	if !errors.Is(err, store.ErrNotFound) {
		t.Errorf("missing loser: %v", err)
	}
}

func TestMergeEventPublished(t *testing.T) {
	fx := newFixture(t)
	var merged []events.Event
	fx.sv.rg.Bus().Subscribe("annotation.merged", func(ev events.Event) error {
		merged = append(merged, ev)
		return nil
	})
	var a, b Term
	fx.update(t, func(tx *store.Tx) error {
		var err error
		a, err = fx.sv.AddTerm(tx, "x", model.VocabTissue, "Stem", true)
		if err != nil {
			return err
		}
		b, err = fx.sv.AddTerm(tx, "x", model.VocabTissue, "Stemm", false)
		return err
	})
	fx.update(t, func(tx *store.Tx) error {
		_, err := fx.sv.Merge(tx, "eva", a.ID, b.ID, "")
		return err
	})
	if len(merged) != 1 || merged[0].Payload["dropped"] != "Stemm" {
		t.Errorf("merge events = %+v", merged)
	}
}

func TestExistsAndLookup(t *testing.T) {
	fx := newFixture(t)
	fx.update(t, func(tx *store.Tx) error {
		_, err := fx.sv.AddTerm(tx, "a", model.VocabSpecies, "Mus musculus", true)
		return err
	})
	fx.view(t, func(tx *store.Tx) error {
		if !fx.sv.Exists(tx, model.VocabSpecies, "mus musculus") {
			t.Error("case-insensitive Exists failed")
		}
		if fx.sv.Exists(tx, model.VocabSpecies, "Rattus") {
			t.Error("nonexistent term Exists")
		}
		term, err := fx.sv.Lookup(tx, model.VocabSpecies, "MUS MUSCULUS")
		if err != nil {
			return err
		}
		if term.Value != "Mus musculus" {
			t.Errorf("Lookup = %+v", term)
		}
		return nil
	})
}

func TestSetThreshold(t *testing.T) {
	fx := newFixture(t)
	fx.update(t, func(tx *store.Tx) error {
		_, err := fx.sv.AddTerm(tx, "a", model.VocabTissue, "Leaf", true)
		return err
	})
	fx.sv.SetThreshold(0.01)
	fx.view(t, func(tx *store.Tx) error {
		cands, err := fx.sv.Similar(tx, model.VocabTissue, "Loof")
		if err != nil {
			return err
		}
		if len(cands) != 1 {
			t.Errorf("low threshold candidates = %+v", cands)
		}
		return nil
	})
	fx.sv.SetThreshold(0.999)
	fx.view(t, func(tx *store.Tx) error {
		cands, err := fx.sv.Similar(tx, model.VocabTissue, "Leav")
		if err != nil {
			return err
		}
		if len(cands) != 0 {
			t.Errorf("high threshold candidates = %+v", cands)
		}
		return nil
	})
}

func TestAnnotationCreatedEvent(t *testing.T) {
	fx := newFixture(t)
	var got []events.Event
	fx.sv.rg.Bus().Subscribe("annotation.created", func(ev events.Event) error {
		got = append(got, ev)
		return nil
	})
	fx.update(t, func(tx *store.Tx) error {
		_, err := fx.sv.AddTerm(tx, "alice", model.VocabDiseaseState, "Hopeless", false)
		return err
	})
	if len(got) != 1 || got[0].Payload["value"] != "Hopeless" || got[0].Actor != "alice" {
		t.Errorf("events = %+v", got)
	}
}

func TestCount(t *testing.T) {
	fx := newFixture(t)
	if fx.sv.Count() != 0 {
		t.Error("fresh count != 0")
	}
	fx.update(t, func(tx *store.Tx) error {
		_, err := fx.sv.AddTerm(tx, "a", model.VocabTissue, "Leaf", true)
		return err
	})
	if fx.sv.Count() != 1 {
		t.Error("count != 1")
	}
}
