package provider

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/storage"
)

func TestFilterMatch(t *testing.T) {
	cases := []struct {
		f    Filter
		path string
		want bool
	}{
		{Filter{}, "anything.bin", true},
		{Filter{Suffixes: []string{".cel"}}, "a.cel", true},
		{Filter{Suffixes: []string{".cel"}}, "a.raw", false},
		{Filter{Suffixes: []string{".cel", ".raw"}}, "a.raw", true},
		{Filter{Contains: "2010"}, "runs/2010/a.cel", true},
		{Filter{Contains: "2010"}, "runs/2009/a.cel", false},
		{Filter{Contains: "2010", Suffixes: []string{".cel"}}, "2010/a.raw", false},
	}
	for _, c := range cases {
		if got := c.f.Match(c.path); got != c.want {
			t.Errorf("Filter%+v.Match(%q) = %v", c.f, c.path, got)
		}
	}
}

func TestFormatOf(t *testing.T) {
	for path, want := range map[string]string{
		"a.CEL": "cel", "b.raw": "raw", "noext": "", "dir/x.tar.gz": "gz",
		"trailingdot.": "",
	} {
		if got := FormatOf(path); got != want {
			t.Errorf("FormatOf(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestStoreProviderListAndFetch(t *testing.T) {
	ms := storage.NewMemStore("disk", true)
	_ = ms.Put("runs/b.cel", []byte("bb"))
	_ = ms.Put("runs/a.cel", []byte("a"))
	_ = ms.Put("runs/junk.tmp", []byte("x"))
	p := NewStoreProvider("local", "local disk", ms, Filter{Suffixes: []string{".cel"}})

	if p.Name() != "local" || p.StoreName() != "disk" || p.Description() == "" {
		t.Error("provider metadata wrong")
	}
	fs, err := p.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 || fs[0].Path != "runs/a.cel" || fs[1].Path != "runs/b.cel" {
		t.Errorf("List = %+v", fs)
	}
	if fs[0].Format != "cel" || fs[1].Size != 2 {
		t.Errorf("entry metadata = %+v", fs)
	}
	data, err := p.Fetch("runs/a.cel")
	if err != nil || string(data) != "a" {
		t.Errorf("Fetch = %q, %v", data, err)
	}
}

func TestStoreProviderMaxFiles(t *testing.T) {
	ms := storage.NewMemStore("disk", true)
	for i := 0; i < 20; i++ {
		_ = ms.Put(fmt.Sprintf("f%02d.cel", i), []byte("x"))
	}
	p := NewStoreProvider("local", "d", ms, Filter{MaxFiles: 5})
	fs, err := p.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 5 {
		t.Errorf("MaxFiles ignored: %d files", len(fs))
	}
}

func TestHub(t *testing.T) {
	h := NewHub()
	ms := storage.NewMemStore("m", true)
	p := NewStoreProvider("zeta", "d", ms, Filter{})
	q := NewStoreProvider("alpha", "d", ms, Filter{})
	if err := h.Register(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Register(q); err != nil {
		t.Fatal(err)
	}
	if err := h.Register(p); err == nil {
		t.Error("duplicate provider accepted")
	}
	names := h.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("Names = %v", names)
	}
	got, err := h.Get("zeta")
	if err != nil || got.Name() != "zeta" {
		t.Errorf("Get = %v, %v", got, err)
	}
	if _, err := h.Get("missing"); !errors.Is(err, ErrUnknownProvider) {
		t.Errorf("missing provider: %v", err)
	}
}

func TestExpressionProfileDeterministic(t *testing.T) {
	a := ExpressionProfile("AT-wt-1")
	b := ExpressionProfile("AT-wt-1")
	c := ExpressionProfile("AT-wt-2")
	if len(a) != GeneCount {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("profile not deterministic")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different samples produced identical profiles")
	}
	for i, v := range a {
		if v < 4 || v > 17 {
			t.Errorf("gene %d intensity %v out of range", i, v)
		}
	}
}

func TestTreatedSamplesAreShifted(t *testing.T) {
	// The synthetic signal: "treated" samples have probes 0-9 up-shifted.
	base := ExpressionProfile("s1")
	_ = base
	var meanTreated, meanControl float64
	for i := 0; i < 20; i++ {
		tr := ExpressionProfile(fmt.Sprintf("s%d-treated", i))
		ct := ExpressionProfile(fmt.Sprintf("s%d-control", i))
		for g := 0; g < 10; g++ {
			meanTreated += tr[g]
			meanControl += ct[g]
		}
	}
	meanTreated /= 200
	meanControl /= 200
	if meanTreated-meanControl < 1.5 {
		t.Errorf("treated shift too small: %v vs %v", meanTreated, meanControl)
	}
}

func TestCELContentParseable(t *testing.T) {
	data := string(CELContent("AT-xyz"))
	if !strings.Contains(data, "sample=AT-xyz") {
		t.Error("missing sample header")
	}
	lines := strings.Split(strings.TrimSpace(data), "\n")
	probeLines := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "probe_") {
			probeLines++
			parts := strings.Split(l, "\t")
			if len(parts) != 2 {
				t.Fatalf("bad probe line %q", l)
			}
		}
	}
	if probeLines != GeneCount {
		t.Errorf("probe lines = %d", probeLines)
	}
}

func TestRAWContent(t *testing.T) {
	data := string(RAWContent("ms-sample", 50))
	if !strings.Contains(data, "sample=ms-sample") || !strings.Contains(data, "peaks=50") {
		t.Error("missing headers")
	}
	lines := strings.Split(strings.TrimSpace(data), "\n")
	peakLines := 0
	inPeaks := false
	for _, l := range lines {
		if l == "[PEAKS]" {
			inPeaks = true
			continue
		}
		if inPeaks {
			peakLines++
		}
	}
	if peakLines != 50 {
		t.Errorf("peak lines = %d", peakLines)
	}
}

func TestAffymetrixProvider(t *testing.T) {
	p, _ := NewAffymetrixGeneChip("genechip", []string{"s1", "s2", "s3"})
	fs, err := p.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 {
		t.Fatalf("List = %+v", fs)
	}
	for _, f := range fs {
		if f.Format != "cel" || !strings.HasPrefix(f.Path, "runs/") {
			t.Errorf("entry = %+v", f)
		}
	}
	data, err := p.Fetch("runs/s2.cel")
	if err != nil || !strings.Contains(string(data), "sample=s2") {
		t.Errorf("Fetch = %v", err)
	}
	// The instrument store is read-only: imports must not write back.
	if _, ok := interface{}(p).(Provider); !ok {
		t.Error("not a Provider")
	}
}

func TestMassSpecProvider(t *testing.T) {
	p, _ := NewMassSpec("ltqft", []string{"m1", "m2"}, 10)
	fs, err := p.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 || fs[0].Format != "raw" {
		t.Fatalf("List = %+v", fs)
	}
}
