package provider

import (
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/storage"
)

// The instrument simulators below stand in for the real FGCZ instruments
// (the paper imports from an Affymetrix GeneChip scanner, among others).
// Each generates a deterministic synthetic inventory keyed on the sample
// names, so repeated runs — and the benchmark harness — see identical data.

// GeneCount is the number of probes per synthetic expression profile.
const GeneCount = 100

// lcg is a tiny deterministic pseudo-random sequence seeded per sample.
type lcg struct{ state uint64 }

func newLCG(seed string) *lcg {
	h := fnv.New64a()
	_, _ = h.Write([]byte(seed))
	s := h.Sum64()
	if s == 0 {
		s = 1
	}
	return &lcg{state: s}
}

func (l *lcg) next() uint64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return l.state
}

// float returns a pseudo-random float in [0,1).
func (l *lcg) float() float64 {
	return float64(l.next()>>11) / float64(1<<53)
}

// ExpressionProfile generates the deterministic synthetic expression vector
// of a sample: GeneCount intensities on a log2-like scale. Every probe has
// a fixed baseline shared by all samples plus small per-sample noise, and
// samples whose name contains "treated" get probes 0–9 up-shifted by 3 —
// a clean differential-expression signal for the two-group analysis to
// find.
func ExpressionProfile(sample string) []float64 {
	noise := newLCG(sample)
	out := make([]float64, GeneCount)
	treated := strings.Contains(strings.ToLower(sample), "treated")
	for g := range out {
		base := newLCG(fmt.Sprintf("probe_%d", g))
		v := 4 + 9*base.float() + 0.5*noise.float()
		if treated && g < 10 {
			v += 3 // differential expression in the first ten probes
		}
		out[g] = v
	}
	return out
}

// CELContent renders a synthetic Affymetrix CEL-like text file for a sample.
// The format is intentionally simple and fully parsed by the analysis
// connectors: a header followed by "probe_<i>\t<intensity>" lines.
func CELContent(sample string) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "[CEL]\nversion=3\nsample=%s\nprobes=%d\n[INTENSITY]\n", sample, GeneCount)
	for g, v := range ExpressionProfile(sample) {
		fmt.Fprintf(&b, "probe_%d\t%.4f\n", g, v)
	}
	return []byte(b.String())
}

// RAWContent renders a synthetic mass-spectrometer RAW-like text file: a
// header plus deterministic (m/z, intensity) peak pairs.
func RAWContent(sample string, peaks int) []byte {
	rng := newLCG("ms:" + sample)
	var b strings.Builder
	fmt.Fprintf(&b, "[RAW]\ninstrument=LTQ-FT\nsample=%s\npeaks=%d\n[PEAKS]\n", sample, peaks)
	for i := 0; i < peaks; i++ {
		mz := 300 + 1700*rng.float()
		intensity := 1e3 + 1e6*rng.float()
		fmt.Fprintf(&b, "%.4f\t%.1f\n", mz, intensity)
	}
	return []byte(b.String())
}

// NewAffymetrixGeneChip simulates the Affymetrix GeneChip scanner of
// Figure 9: for every sample name it produces one "<sample>.cel" file under
// runs/. The provider lists only .cel files, mirroring the configured
// relevance filter of the FGCZ deployment.
func NewAffymetrixGeneChip(name string, samples []string) (*StoreProvider, *storage.MemStore) {
	ms := storage.NewMemStore(name, false)
	for _, s := range samples {
		ms.Seed("runs/"+s+".cel", CELContent(s))
	}
	p := NewStoreProvider(
		name,
		"Affymetrix GeneChip array scanner (simulated)",
		ms,
		Filter{Suffixes: []string{".cel"}},
	)
	return p, ms
}

// NewMassSpec simulates a mass spectrometer producing "<sample>.raw" files.
func NewMassSpec(name string, samples []string, peaksPerRun int) (*StoreProvider, *storage.MemStore) {
	ms := storage.NewMemStore(name, false)
	for _, s := range samples {
		ms.Seed("acquisitions/"+s+".raw", RAWContent(s, peaksPerRun))
	}
	p := NewStoreProvider(
		name,
		"LTQ-FT mass spectrometer (simulated)",
		ms,
		Filter{Suffixes: []string{".raw"}},
	)
	return p, ms
}
