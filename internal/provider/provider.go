// Package provider implements B-Fabric's data providers: configured sources
// from which data files can be imported (Figure 9). The FGCZ deployment
// imports from local file systems and from several instruments; here the
// instruments are simulated with deterministic synthetic inventories that
// exercise the identical import code path. A provider configuration
// restricts the selectable files to the ones potentially relevant for the
// user, which matters because real inventories are huge.
package provider

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/storage"
)

// FileEntry is one importable file offered by a provider.
type FileEntry struct {
	// Path is the provider-relative file path.
	Path string
	// Size is the content length in bytes.
	Size int64
	// Format is the detected file format (extension without dot).
	Format string
}

// Provider is a configured data source.
type Provider interface {
	// Name is the unique provider name shown in the import screen.
	Name() string
	// Description documents the source for users.
	Description() string
	// StoreName returns the mounted storage.Store holding the files, so
	// link-mode imports can build URIs pointing at the original location.
	StoreName() string
	// List returns the importable files, already restricted by the
	// provider's relevance filter, sorted by path.
	List() ([]FileEntry, error)
	// Fetch reads one file's content.
	Fetch(path string) ([]byte, error)
}

// Filter restricts a provider's inventory to relevant files.
type Filter struct {
	// Suffixes keeps only files ending in one of these (e.g. ".cel").
	// Empty means all suffixes.
	Suffixes []string
	// Contains keeps only paths containing this substring. Empty means all.
	Contains string
	// MaxFiles caps the listing length; 0 means unlimited.
	MaxFiles int
}

// Match reports whether a path passes the filter.
func (f Filter) Match(path string) bool {
	if f.Contains != "" && !strings.Contains(path, f.Contains) {
		return false
	}
	if len(f.Suffixes) == 0 {
		return true
	}
	for _, s := range f.Suffixes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

// FormatOf derives the format tag from a file path ("chip01.cel" → "cel").
func FormatOf(path string) string {
	if i := strings.LastIndexByte(path, '.'); i >= 0 && i < len(path)-1 {
		return strings.ToLower(path[i+1:])
	}
	return ""
}

// ErrUnknownProvider is returned when looking up an unregistered provider.
var ErrUnknownProvider = errors.New("unknown data provider")

// StoreProvider exposes a mounted storage.Store through a relevance filter.
// It covers both the "local file system" provider and attached external
// stores.
type StoreProvider struct {
	name        string
	description string
	store       storage.Store
	filter      Filter
}

// NewStoreProvider builds a provider over a store.
func NewStoreProvider(name, description string, s storage.Store, filter Filter) *StoreProvider {
	return &StoreProvider{name: name, description: description, store: s, filter: filter}
}

// Name implements Provider.
func (p *StoreProvider) Name() string { return p.name }

// Description implements Provider.
func (p *StoreProvider) Description() string { return p.description }

// StoreName implements Provider.
func (p *StoreProvider) StoreName() string { return p.store.Name() }

// List implements Provider.
func (p *StoreProvider) List() ([]FileEntry, error) {
	fis, err := p.store.List("")
	if err != nil {
		return nil, err
	}
	out := make([]FileEntry, 0, len(fis))
	for _, fi := range fis {
		if !p.filter.Match(fi.Path) {
			continue
		}
		out = append(out, FileEntry{Path: fi.Path, Size: fi.Size, Format: FormatOf(fi.Path)})
		if p.filter.MaxFiles > 0 && len(out) >= p.filter.MaxFiles {
			break
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Fetch implements Provider.
func (p *StoreProvider) Fetch(path string) ([]byte, error) {
	return p.store.Get(path)
}

// Hub is the registry of configured providers. New providers can be added
// at run time, matching the paper's "new data providers can be added to the
// system easily".
type Hub struct {
	mu        sync.RWMutex
	providers map[string]Provider
}

// NewHub creates an empty hub.
func NewHub() *Hub {
	return &Hub{providers: make(map[string]Provider)}
}

// Register adds a provider. Registering a duplicate name is an error.
func (h *Hub) Register(p Provider) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.providers[p.Name()]; ok {
		return fmt.Errorf("provider: %q already registered", p.Name())
	}
	h.providers[p.Name()] = p
	return nil
}

// Get returns the named provider.
func (h *Hub) Get(name string) (Provider, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	p, ok := h.providers[name]
	if !ok {
		return nil, fmt.Errorf("provider: %q: %w", name, ErrUnknownProvider)
	}
	return p, nil
}

// Names returns the sorted names of all registered providers.
func (h *Hub) Names() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]string, 0, len(h.providers))
	for n := range h.providers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
