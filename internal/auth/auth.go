// Package auth implements B-Fabric's access control: password credentials,
// portal sessions, and project-scoped authorization ("B-Fabric captures
// and provides the data transparently and in access-controlled fashion").
package auth

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/store"
)

const credTable = "credential"

// SessionTTL is how long a portal session stays valid without renewal.
const SessionTTL = 8 * time.Hour

// Sentinel errors.
var (
	// ErrBadCredentials is returned for unknown logins or wrong passwords.
	ErrBadCredentials = errors.New("invalid credentials")
	// ErrNoSession is returned for unknown or expired session tokens.
	ErrNoSession = errors.New("no such session")
	// ErrForbidden is returned when a user lacks access to a resource.
	ErrForbidden = errors.New("access denied")
	// ErrInactive is returned when an inactive user tries to log in.
	ErrInactive = errors.New("user is inactive")
)

// Service implements authentication and authorization.
type Service struct {
	db *model.DB

	mu       sync.Mutex
	sessions map[string]session
}

type session struct {
	login   string
	expires time.Time

	// Cached user resolution, the portal's per-request fast path. The
	// cache is valid for a reading transaction iff the user table's
	// commit stamp at that transaction's pinned version is <= userSeq:
	// any later commit touching the user table (role change,
	// deactivation, ...) forces revalidation from the reader's own
	// snapshot. Validity is decided against the pinned version, never
	// against "now", so the cache can neither serve a user state newer
	// than the snapshot nor outlive an invalidating commit.
	user    model.User
	userSeq uint64
	userOK  bool
}

// New creates the auth service.
func New(db *model.DB) *Service {
	s := db.Store()
	s.EnsureTable(credTable)
	if !s.HasTable(credTable + "_marker") {
		_ = s.CreateIndex(credTable, "login", true)
		s.EnsureTable(credTable + "_marker")
	}
	return &Service{db: db, sessions: make(map[string]session)}
}

// hashPassword derives the stored hash from a password and hex salt.
func hashPassword(password, salt string) string {
	sum := sha256.Sum256([]byte(salt + ":" + password))
	return hex.EncodeToString(sum[:])
}

func randomHex(n int) (string, error) {
	buf := make([]byte, n)
	if _, err := rand.Read(buf); err != nil {
		return "", err
	}
	return hex.EncodeToString(buf), nil
}

// SetPassword creates or replaces the credential of a login.
func (sv *Service) SetPassword(tx *store.Tx, login, password string) error {
	if login == "" || password == "" {
		return fmt.Errorf("auth: empty login or password")
	}
	salt, err := randomHex(16)
	if err != nil {
		return err
	}
	rec := store.Record{
		"login": login,
		"salt":  salt,
		"hash":  hashPassword(password, salt),
	}
	ids, err := tx.Lookup(credTable, "login", login)
	if err != nil {
		return err
	}
	if len(ids) > 0 {
		return tx.Put(credTable, ids[0], rec)
	}
	_, err = tx.Insert(credTable, rec)
	return err
}

// verify checks a password against the stored credential. The credential
// record is read by reference; only its string values are extracted.
func (sv *Service) verify(tx *store.Tx, login, password string) error {
	r, err := tx.FirstRef(credTable, "login", login)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return ErrBadCredentials
		}
		return err
	}
	want := r.String("hash")
	got := hashPassword(password, r.String("salt"))
	if subtle.ConstantTimeCompare([]byte(want), []byte(got)) != 1 {
		return ErrBadCredentials
	}
	return nil
}

// Login authenticates and returns a fresh session token. Inactive users
// are rejected even with correct credentials.
func (sv *Service) Login(login, password string) (string, error) {
	var user model.User
	var userSeq uint64
	err := sv.db.Store().View(func(tx *store.Tx) error {
		if err := sv.verify(tx, login, password); err != nil {
			return err
		}
		u, err := sv.db.UserByLogin(tx, login)
		if err != nil {
			if errors.Is(err, store.ErrNotFound) {
				return ErrBadCredentials
			}
			return err
		}
		user = u
		userSeq = tx.TableSeq(model.KindUser)
		return nil
	})
	if err != nil {
		return "", err
	}
	if !user.Active {
		return "", fmt.Errorf("auth: %s: %w", login, ErrInactive)
	}
	token, err := randomHex(24)
	if err != nil {
		return "", err
	}
	sv.mu.Lock()
	sv.sessions[token] = session{
		login:   login,
		expires: nowFunc().Add(SessionTTL),
		user:    user,
		userSeq: userSeq,
		userOK:  true,
	}
	sv.mu.Unlock()
	return token, nil
}

// Logout invalidates a session token. Unknown tokens are ignored.
func (sv *Service) Logout(token string) {
	sv.mu.Lock()
	delete(sv.sessions, token)
	sv.mu.Unlock()
}

// SessionLogin resolves a session token to its login.
func (sv *Service) SessionLogin(token string) (string, error) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	s, ok := sv.sessions[token]
	if !ok {
		return "", ErrNoSession
	}
	if nowFunc().After(s.expires) {
		delete(sv.sessions, token)
		return "", ErrNoSession
	}
	return s.login, nil
}

// SessionUser resolves a session token to its full user record as of the
// transaction's pinned snapshot. Repeated calls on a hot session are a
// map lookup plus a table-stamp comparison — the UserByLogin index walk
// only runs when a commit has touched the user table since the cached
// resolution. Inactive users are rejected (and never cached), so a
// deactivation is enforced by every request whose snapshot includes it.
func (sv *Service) SessionUser(tx *store.Tx, token string) (model.User, error) {
	sv.mu.Lock()
	s, ok := sv.sessions[token]
	if !ok {
		sv.mu.Unlock()
		return model.User{}, ErrNoSession
	}
	if nowFunc().After(s.expires) {
		delete(sv.sessions, token)
		sv.mu.Unlock()
		return model.User{}, ErrNoSession
	}
	seq := tx.TableSeq(model.KindUser)
	if s.userOK && seq <= s.userSeq {
		u := s.user
		sv.mu.Unlock()
		return u, nil
	}
	sv.mu.Unlock()

	u, err := sv.db.UserByLogin(tx, s.login)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return model.User{}, fmt.Errorf("auth: %s: %w", s.login, ErrNoSession)
		}
		return model.User{}, err
	}
	if !u.Active {
		return model.User{}, fmt.Errorf("auth: %s: %w", s.login, ErrInactive)
	}
	sv.mu.Lock()
	// Re-check under the lock and only move the cache forward: a reader
	// pinned on an older snapshot must not clobber a newer resolution.
	if s2, ok := sv.sessions[token]; ok && (!s2.userOK || seq >= s2.userSeq) {
		s2.user, s2.userSeq, s2.userOK = u, seq, true
		sv.sessions[token] = s2
	}
	sv.mu.Unlock()
	return u, nil
}

// ActiveSessions returns the number of live sessions (expired ones are
// swept lazily).
func (sv *Service) ActiveSessions() int {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	n := 0
	now := nowFunc()
	for token, s := range sv.sessions {
		if now.After(s.expires) {
			delete(sv.sessions, token)
			continue
		}
		n++
	}
	return n
}

// HasRole reports whether the login holds the given role. Admins hold
// every role.
func (sv *Service) HasRole(tx *store.Tx, login, role string) bool {
	u, err := sv.db.UserByLogin(tx, login)
	if err != nil {
		return false
	}
	return HasRoleUser(u, role)
}

// HasRoleUser reports whether an already-resolved user holds the given
// role. Admins hold every role.
func HasRoleUser(u model.User, role string) bool {
	return u.Role == role || u.Role == model.RoleAdmin
}

// RequireRole returns ErrForbidden unless the login holds the role.
func (sv *Service) RequireRole(tx *store.Tx, login, role string) error {
	if !sv.HasRole(tx, login, role) {
		return fmt.Errorf("auth: %s lacks role %s: %w", login, role, ErrForbidden)
	}
	return nil
}

// RequireRoleUser returns ErrForbidden unless the already-resolved user
// holds the role.
func RequireRoleUser(u model.User, role string) error {
	if !HasRoleUser(u, role) {
		return fmt.Errorf("auth: %s lacks role %s: %w", u.Login, role, ErrForbidden)
	}
	return nil
}

// CanAccessProject reports whether the login may see a project's data:
// project members and the coach may, experts and admins may see everything.
func (sv *Service) CanAccessProject(tx *store.Tx, login string, project int64) bool {
	u, err := sv.db.UserByLogin(tx, login)
	if err != nil {
		return false
	}
	return sv.CanAccessProjectUser(tx, u, project)
}

// CanAccessProjectUser is CanAccessProject for an already-resolved user,
// sparing the per-call login index walk on hot paths.
func (sv *Service) CanAccessProjectUser(tx *store.Tx, u model.User, project int64) bool {
	if u.Role == model.RoleAdmin || u.Role == model.RoleExpert {
		return true
	}
	members, err := sv.db.ProjectMembers(tx, project)
	if err != nil {
		return false
	}
	for _, m := range members {
		if m == u.ID {
			return true
		}
	}
	return false
}

// RequireProject returns ErrForbidden unless the login can access the
// project.
func (sv *Service) RequireProject(tx *store.Tx, login string, project int64) error {
	if !sv.CanAccessProject(tx, login, project) {
		return fmt.Errorf("auth: %s cannot access project %d: %w", login, project, ErrForbidden)
	}
	return nil
}

// RequireProjectUser is RequireProject for an already-resolved user.
func (sv *Service) RequireProjectUser(tx *store.Tx, u model.User, project int64) error {
	if !sv.CanAccessProjectUser(tx, u, project) {
		return fmt.Errorf("auth: %s cannot access project %d: %w", u.Login, project, ErrForbidden)
	}
	return nil
}

var nowFunc = func() time.Time { return time.Now().UTC() }
