package auth

import (
	"errors"
	"testing"
	"time"

	"repro/internal/entity"
	"repro/internal/events"
	"repro/internal/model"
	"repro/internal/store"
)

type fixture struct {
	sv      *Service
	db      *model.DB
	s       *store.Store
	project int64
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	s := store.New()
	rg := entity.NewRegistry(s, events.NewBus())
	if err := model.RegisterSchema(rg); err != nil {
		t.Fatal(err)
	}
	db := model.NewDB(rg)
	sv := New(db)
	fx := &fixture{sv: sv, db: db, s: s}
	err := s.Update(func(tx *store.Tx) error {
		alice, err := db.CreateUser(tx, "setup", model.User{Login: "alice", Role: model.RoleScientist, Active: true})
		if err != nil {
			return err
		}
		if _, err := db.CreateUser(tx, "setup", model.User{Login: "eva", Role: model.RoleExpert, Active: true}); err != nil {
			return err
		}
		if _, err := db.CreateUser(tx, "setup", model.User{Login: "root", Role: model.RoleAdmin, Active: true}); err != nil {
			return err
		}
		if _, err := db.CreateUser(tx, "setup", model.User{Login: "gone", Role: model.RoleScientist, Active: false}); err != nil {
			return err
		}
		if _, err := db.CreateUser(tx, "setup", model.User{Login: "outsider", Role: model.RoleScientist, Active: true}); err != nil {
			return err
		}
		fx.project, err = db.CreateProject(tx, "setup", model.Project{Name: "p", Members: []int64{alice}})
		if err != nil {
			return err
		}
		for _, login := range []string{"alice", "eva", "root", "gone", "outsider"} {
			if err := sv.SetPassword(tx, login, login+"-secret"); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

func TestLoginLogout(t *testing.T) {
	fx := newFixture(t)
	token, err := fx.sv.Login("alice", "alice-secret")
	if err != nil {
		t.Fatal(err)
	}
	login, err := fx.sv.SessionLogin(token)
	if err != nil || login != "alice" {
		t.Fatalf("SessionLogin = %q, %v", login, err)
	}
	if fx.sv.ActiveSessions() != 1 {
		t.Error("session count wrong")
	}
	fx.sv.Logout(token)
	if _, err := fx.sv.SessionLogin(token); !errors.Is(err, ErrNoSession) {
		t.Errorf("after logout: %v", err)
	}
}

func TestLoginRejectsBadCredentials(t *testing.T) {
	fx := newFixture(t)
	if _, err := fx.sv.Login("alice", "wrong"); !errors.Is(err, ErrBadCredentials) {
		t.Errorf("wrong password: %v", err)
	}
	if _, err := fx.sv.Login("nobody", "x"); !errors.Is(err, ErrBadCredentials) {
		t.Errorf("unknown login: %v", err)
	}
}

func TestLoginRejectsInactiveUser(t *testing.T) {
	fx := newFixture(t)
	if _, err := fx.sv.Login("gone", "gone-secret"); !errors.Is(err, ErrInactive) {
		t.Errorf("inactive login: %v", err)
	}
}

func TestSessionExpiry(t *testing.T) {
	fx := newFixture(t)
	base := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	old := nowFunc
	nowFunc = func() time.Time { return base }
	defer func() { nowFunc = old }()
	token, err := fx.sv.Login("alice", "alice-secret")
	if err != nil {
		t.Fatal(err)
	}
	nowFunc = func() time.Time { return base.Add(SessionTTL + time.Minute) }
	if _, err := fx.sv.SessionLogin(token); !errors.Is(err, ErrNoSession) {
		t.Errorf("expired session: %v", err)
	}
	if fx.sv.ActiveSessions() != 0 {
		t.Error("expired session counted")
	}
}

func TestSetPasswordReplaces(t *testing.T) {
	fx := newFixture(t)
	_ = fx.s.Update(func(tx *store.Tx) error {
		return fx.sv.SetPassword(tx, "alice", "new-secret")
	})
	if _, err := fx.sv.Login("alice", "alice-secret"); !errors.Is(err, ErrBadCredentials) {
		t.Error("old password still valid")
	}
	if _, err := fx.sv.Login("alice", "new-secret"); err != nil {
		t.Errorf("new password rejected: %v", err)
	}
}

func TestSetPasswordValidation(t *testing.T) {
	fx := newFixture(t)
	err := fx.s.Update(func(tx *store.Tx) error {
		return fx.sv.SetPassword(tx, "", "x")
	})
	if err == nil {
		t.Error("empty login accepted")
	}
	err = fx.s.Update(func(tx *store.Tx) error {
		return fx.sv.SetPassword(tx, "alice", "")
	})
	if err == nil {
		t.Error("empty password accepted")
	}
}

func TestRoles(t *testing.T) {
	fx := newFixture(t)
	_ = fx.s.View(func(tx *store.Tx) error {
		if !fx.sv.HasRole(tx, "eva", model.RoleExpert) {
			t.Error("eva lacks expert")
		}
		if fx.sv.HasRole(tx, "alice", model.RoleExpert) {
			t.Error("alice has expert")
		}
		// Admins hold every role.
		if !fx.sv.HasRole(tx, "root", model.RoleExpert) || !fx.sv.HasRole(tx, "root", model.RoleScientist) {
			t.Error("admin role subsumption failed")
		}
		if err := fx.sv.RequireRole(tx, "alice", model.RoleAdmin); !errors.Is(err, ErrForbidden) {
			t.Errorf("RequireRole: %v", err)
		}
		if err := fx.sv.RequireRole(tx, "eva", model.RoleExpert); err != nil {
			t.Errorf("RequireRole expert: %v", err)
		}
		if fx.sv.HasRole(tx, "ghost", model.RoleScientist) {
			t.Error("unknown login has role")
		}
		return nil
	})
}

func TestProjectAccess(t *testing.T) {
	fx := newFixture(t)
	_ = fx.s.View(func(tx *store.Tx) error {
		if !fx.sv.CanAccessProject(tx, "alice", fx.project) {
			t.Error("member denied")
		}
		if fx.sv.CanAccessProject(tx, "outsider", fx.project) {
			t.Error("outsider allowed")
		}
		if !fx.sv.CanAccessProject(tx, "eva", fx.project) {
			t.Error("expert denied")
		}
		if !fx.sv.CanAccessProject(tx, "root", fx.project) {
			t.Error("admin denied")
		}
		if err := fx.sv.RequireProject(tx, "outsider", fx.project); !errors.Is(err, ErrForbidden) {
			t.Errorf("RequireProject: %v", err)
		}
		if fx.sv.CanAccessProject(tx, "ghost", fx.project) {
			t.Error("unknown login allowed")
		}
		return nil
	})
}

func TestCoachHasAccess(t *testing.T) {
	fx := newFixture(t)
	var coachProject int64
	_ = fx.s.Update(func(tx *store.Tx) error {
		u, _ := fx.db.UserByLogin(tx, "outsider")
		var err error
		coachProject, err = fx.db.CreateProject(tx, "setup", model.Project{Name: "coached", Coach: u.ID})
		return err
	})
	_ = fx.s.View(func(tx *store.Tx) error {
		if !fx.sv.CanAccessProject(tx, "outsider", coachProject) {
			t.Error("coach denied access")
		}
		return nil
	})
}

func TestDistinctSaltsPerUser(t *testing.T) {
	fx := newFixture(t)
	_ = fx.s.View(func(tx *store.Tx) error {
		a, _ := tx.First(credTable, "login", "alice")
		b, _ := tx.First(credTable, "login", "eva")
		if a.String("salt") == b.String("salt") {
			t.Error("salts identical")
		}
		if a.String("hash") == "" || len(a.String("hash")) != 64 {
			t.Error("hash malformed")
		}
		return nil
	})
}

func TestSessionUserResolvesAndCaches(t *testing.T) {
	fx := newFixture(t)
	token, err := fx.sv.Login("alice", "alice-secret")
	if err != nil {
		t.Fatal(err)
	}
	_ = fx.s.View(func(tx *store.Tx) error {
		u, err := fx.sv.SessionUser(tx, token)
		if err != nil || u.Login != "alice" || u.Role != model.RoleScientist {
			t.Fatalf("SessionUser = %+v, %v", u, err)
		}
		return nil
	})

	// A committed role change invalidates the cached user: the next
	// resolution on a fresh snapshot sees the new role.
	var aliceID int64
	_ = fx.s.Update(func(tx *store.Tx) error {
		u, _ := fx.db.UserByLogin(tx, "alice")
		aliceID = u.ID
		return fx.db.Registry().Update(tx, model.KindUser, u.ID, "test",
			map[string]any{"role": string(model.RoleExpert)})
	})
	_ = fx.s.View(func(tx *store.Tx) error {
		u, err := fx.sv.SessionUser(tx, token)
		if err != nil || u.Role != model.RoleExpert {
			t.Fatalf("after role change: %+v, %v", u, err)
		}
		return nil
	})

	// Deactivation is terminal for the session: ErrInactive on any later
	// snapshot, and never re-cached.
	_ = fx.s.Update(func(tx *store.Tx) error {
		return fx.db.Registry().Update(tx, model.KindUser, aliceID, "test",
			map[string]any{"active": false})
	})
	_ = fx.s.View(func(tx *store.Tx) error {
		if _, err := fx.sv.SessionUser(tx, token); !errors.Is(err, ErrInactive) {
			t.Fatalf("deactivated user: %v", err)
		}
		return nil
	})
}

func TestSessionUserPinnedSnapshot(t *testing.T) {
	// A read transaction pinned before a deactivating commit must keep
	// resolving the user as it stood at the pin — the cache's seq check
	// runs against the transaction's version, never "now".
	fx := newFixture(t)
	token, err := fx.sv.Login("alice", "alice-secret")
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := fx.s.Begin(true)
	if err != nil {
		t.Fatal(err)
	}
	defer pinned.Rollback()

	_ = fx.s.Update(func(tx *store.Tx) error {
		u, _ := fx.db.UserByLogin(tx, "alice")
		return fx.db.Registry().Update(tx, model.KindUser, u.ID, "test",
			map[string]any{"active": false})
	})

	if u, err := fx.sv.SessionUser(pinned, token); err != nil || u.Login != "alice" || !u.Active {
		t.Errorf("pinned snapshot: %+v, %v", u, err)
	}
	_ = fx.s.View(func(tx *store.Tx) error {
		if _, err := fx.sv.SessionUser(tx, token); !errors.Is(err, ErrInactive) {
			t.Errorf("fresh snapshot: %v", err)
		}
		return nil
	})
}

func TestSessionUserExpiredToken(t *testing.T) {
	fx := newFixture(t)
	base := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	old := nowFunc
	nowFunc = func() time.Time { return base }
	defer func() { nowFunc = old }()
	token, err := fx.sv.Login("alice", "alice-secret")
	if err != nil {
		t.Fatal(err)
	}
	nowFunc = func() time.Time { return base.Add(SessionTTL + time.Minute) }
	_ = fx.s.View(func(tx *store.Tx) error {
		if _, err := fx.sv.SessionUser(tx, token); !errors.Is(err, ErrNoSession) {
			t.Errorf("expired token: %v", err)
		}
		if _, err := fx.sv.SessionUser(tx, "no-such-token"); !errors.Is(err, ErrNoSession) {
			t.Errorf("unknown token: %v", err)
		}
		return nil
	})
}
