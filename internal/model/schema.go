// Package model defines B-Fabric's domain model — the "minimal" metadata
// schema of Figure 1 of the paper — and typed repositories over the entity
// layer. The schema core is:
//
//	project ← sample ← extract ← dataresource → workunit
//
// A data resource abstracts a file (or link to a file) produced by an
// instrument or application. Each data resource is connected to the extract
// that was the biological input of the measurement producing it. Extracts
// are extractions of samples; samples (and hence extracts) belong to
// projects, which scopes drop-down menus and access control. A workunit is
// a user-defined container of logically related data resources, some of
// which may be marked as inputs of the processing step that produced the
// rest.
//
// Around the core sit the organisational entities (user, organization,
// institute), the application-integration entities (application,
// experiment) and the controlled-vocabulary annotation fields.
package model

import (
	"repro/internal/entity"
)

// Entity kind names. These are the table names in the store and the kind
// names in the entity registry.
const (
	KindUser         = "user"
	KindOrganization = "organization"
	KindInstitute    = "institute"
	KindProject      = "project"
	KindSample       = "sample"
	KindExtract      = "extract"
	KindDataResource = "dataresource"
	KindWorkunit     = "workunit"
	KindApplication  = "application"
	KindExperiment   = "experiment"
)

// Vocabulary attribute names used by sample/extract annotation fields.
// Each names a controlled vocabulary managed by the vocab service.
const (
	VocabSpecies          = "species"
	VocabTissue           = "tissue"
	VocabDiseaseState     = "disease_state"
	VocabCellType         = "cell_type"
	VocabTreatment        = "treatment"
	VocabExtractionMethod = "extraction_method"
	VocabLabel            = "label"
	VocabInstrumentType   = "instrument_type"
)

// Workunit states mirror the experiment lifecycle shown in Figures 15–16.
const (
	WorkunitPending    = "pending"
	WorkunitProcessing = "processing"
	WorkunitReady      = "ready"
	WorkunitFailed     = "failed"
)

// RegisterSchema registers every B-Fabric kind with the entity registry.
// It must be called exactly once per registry.
func RegisterSchema(rg *entity.Registry) error {
	kinds := []entity.Kind{
		{
			Name: KindOrganization,
			Fields: []entity.Field{
				{Name: "name", Type: entity.String, Required: true, Unique: true},
				{Name: "country", Type: entity.String, Indexed: true},
			},
		},
		{
			Name: KindInstitute,
			Fields: []entity.Field{
				{Name: "name", Type: entity.String, Required: true, Unique: true},
				{Name: "organization", Type: entity.Ref, RefKind: KindOrganization, Required: true},
			},
		},
		{
			Name: KindUser,
			Fields: []entity.Field{
				{Name: "login", Type: entity.String, Required: true, Unique: true},
				{Name: "fullname", Type: entity.String},
				{Name: "email", Type: entity.String, Indexed: true},
				{Name: "institute", Type: entity.Ref, RefKind: KindInstitute},
				{Name: "role", Type: entity.String, Indexed: true}, // scientist|expert|admin
				{Name: "active", Type: entity.Bool},
			},
		},
		{
			Name: KindProject,
			Fields: []entity.Field{
				{Name: "name", Type: entity.String, Required: true, Indexed: true},
				{Name: "description", Type: entity.Text},
				{Name: "coach", Type: entity.Ref, RefKind: KindUser},
				{Name: "members", Type: entity.RefList, RefKind: KindUser},
				{Name: "institute", Type: entity.Ref, RefKind: KindInstitute},
				{Name: "area", Type: entity.String, Indexed: true}, // genomics|proteomics|metabolomics
			},
		},
		{
			Name: KindSample,
			Fields: []entity.Field{
				{Name: "name", Type: entity.String, Required: true, Indexed: true},
				{Name: "project", Type: entity.Ref, RefKind: KindProject, Required: true},
				{Name: "owner", Type: entity.Ref, RefKind: KindUser},
				{Name: "species", Type: entity.String, Vocabulary: VocabSpecies, Indexed: true},
				{Name: "tissue", Type: entity.String, Vocabulary: VocabTissue},
				{Name: "disease_state", Type: entity.String, Vocabulary: VocabDiseaseState, Indexed: true},
				{Name: "cell_type", Type: entity.String, Vocabulary: VocabCellType},
				{Name: "treatment", Type: entity.String, Vocabulary: VocabTreatment},
				{Name: "description", Type: entity.Text},
			},
		},
		{
			Name: KindExtract,
			Fields: []entity.Field{
				{Name: "name", Type: entity.String, Required: true, Indexed: true},
				{Name: "sample", Type: entity.Ref, RefKind: KindSample, Required: true},
				{Name: "extraction_method", Type: entity.String, Vocabulary: VocabExtractionMethod},
				{Name: "label", Type: entity.String, Vocabulary: VocabLabel},
				{Name: "concentration", Type: entity.Float},
				{Name: "volume_ul", Type: entity.Float},
				{Name: "description", Type: entity.Text},
			},
		},
		{
			Name: KindDataResource,
			Fields: []entity.Field{
				{Name: "name", Type: entity.String, Required: true, Indexed: true},
				{Name: "workunit", Type: entity.Ref, RefKind: KindWorkunit, Required: true},
				{Name: "extract", Type: entity.Ref, RefKind: KindExtract},
				{Name: "uri", Type: entity.String}, // storage location
				{Name: "size_bytes", Type: entity.Int},
				{Name: "checksum", Type: entity.String},
				{Name: "format", Type: entity.String, Indexed: true}, // cel|raw|csv|zip|...
				{Name: "is_input", Type: entity.Bool},                // input of the producing step
				{Name: "linked", Type: entity.Bool},                  // linked (true) vs copied (false)
				{Name: "content", Type: entity.Text},                 // readable content for full-text search
			},
		},
		{
			Name: KindWorkunit,
			Fields: []entity.Field{
				{Name: "name", Type: entity.String, Required: true, Indexed: true},
				{Name: "project", Type: entity.Ref, RefKind: KindProject, Required: true},
				{Name: "owner", Type: entity.Ref, RefKind: KindUser},
				{Name: "application", Type: entity.Ref, RefKind: KindApplication},
				{Name: "description", Type: entity.Text},
				{Name: "state", Type: entity.String, Indexed: true},
				{Name: "parameters", Type: entity.StringList}, // "key=value" pairs
			},
		},
		{
			Name: KindApplication,
			Fields: []entity.Field{
				{Name: "name", Type: entity.String, Required: true, Unique: true},
				{Name: "description", Type: entity.Text},
				{Name: "connector", Type: entity.String, Required: true, Indexed: true},
				{Name: "program", Type: entity.String}, // script/program identifier for the connector
				{Name: "input_spec", Type: entity.StringList},
				{Name: "param_spec", Type: entity.StringList},
				{Name: "active", Type: entity.Bool},
			},
		},
		{
			Name: KindExperiment,
			Fields: []entity.Field{
				{Name: "name", Type: entity.String, Required: true, Indexed: true},
				{Name: "project", Type: entity.Ref, RefKind: KindProject, Required: true},
				{Name: "owner", Type: entity.Ref, RefKind: KindUser},
				{Name: "resources", Type: entity.RefList, RefKind: KindDataResource},
				{Name: "samples", Type: entity.RefList, RefKind: KindSample},
				{Name: "extracts", Type: entity.RefList, RefKind: KindExtract},
				{Name: "attributes", Type: entity.StringList}, // "key=value" experiment attributes
				{Name: "description", Type: entity.Text},
			},
		},
	}
	for _, k := range kinds {
		if err := rg.Register(k); err != nil {
			return err
		}
	}
	return nil
}

// VocabularyNames returns the names of all controlled vocabularies used by
// the schema.
func VocabularyNames() []string {
	return []string{
		VocabSpecies, VocabTissue, VocabDiseaseState, VocabCellType,
		VocabTreatment, VocabExtractionMethod, VocabLabel, VocabInstrumentType,
	}
}

// AnnotatedFields returns, for each kind, the fields constrained by a
// controlled vocabulary. The vocab service uses this to locate every record
// referring to a term during merges.
func AnnotatedFields(rg *entity.Registry) map[string][]entity.Field {
	out := make(map[string][]entity.Field)
	for _, name := range rg.Kinds() {
		k := rg.Kind(name)
		for _, f := range k.Fields {
			if f.Vocabulary != "" {
				out[name] = append(out[name], f)
			}
		}
	}
	return out
}
